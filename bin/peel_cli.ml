(* peel-cli: command-line front end for the PEEL library.

   Subcommands:
     plan       — compute a multicast tree + prefix send plan for a group
     compile    — lower a batch of group plans to per-switch rule tables
     simulate   — run Broadcast workloads through the simulator
     trace      — run one workload with tracing on; export JSON/CSV
     failover   — inject a scheduled mid-run link failure and re-peel
     refine     — two-stage refinement control plane under group churn
     serve      — open-loop multicast-as-a-service controller (SVC lints)
     zoo        — generate a zoo topology, plan with the generalized
                  peeler, compare against the exact-Steiner oracle
     state      — switch-state and header accounting for a fat-tree degree
     experiment — regenerate a paper table/figure by name

   Every subcommand uses the same exit-code convention:
     0 — success, no error-severity diagnostics
     1 — the run completed but a checker diagnosed errors
     2 — command-line usage error                                        *)

open Cmdliner
open Peel_topology
open Peel_workload
open Peel_collective
module Rng = Peel_util.Rng

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let fabric_term =
  let kind =
    Arg.(
      value
      & opt
          (enum
             [ ("fat-tree", `Fat_tree); ("leaf-spine", `Leaf_spine);
               ("rail", `Rail) ])
          `Fat_tree
      & info [ "fabric" ] ~docv:"KIND"
          ~doc:"Fabric kind: fat-tree, leaf-spine or rail.")
  in
  let k =
    Arg.(value & opt int 8 & info [ "k" ] ~docv:"K" ~doc:"Fat-tree arity (even).")
  in
  let spines =
    Arg.(value & opt int 16 & info [ "spines" ] ~doc:"Leaf-spine: spine count.")
  in
  let leaves =
    Arg.(value & opt int 48 & info [ "leaves" ] ~doc:"Leaf-spine: leaf count.")
  in
  let hosts =
    Arg.(
      value & opt int 4
      & info [ "hosts" ] ~doc:"Servers per rack (fat-tree ToR or leaf).")
  in
  let gpus =
    Arg.(value & opt int 8 & info [ "gpus" ] ~doc:"GPUs per server (0 = none).")
  in
  let make kind k spines leaves hosts gpus =
    match kind with
    | `Fat_tree -> Fabric.fat_tree ~k ~hosts_per_tor:hosts ~gpus_per_host:gpus ()
    | `Leaf_spine ->
        Fabric.leaf_spine ~spines ~leaves ~hosts_per_leaf:hosts
          ~gpus_per_host:gpus ()
    | `Rail ->
        Fabric.rail ~rails:(max 1 gpus) ~groups:(max 1 (leaves / 6))
          ~servers_per_group:hosts ~spines ()
  in
  Term.(const make $ kind $ k $ spines $ leaves $ hosts $ gpus)

let seed_term =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed (reproducible).")

let jobs_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel sweeps (default: \\$(b,PEEL_JOBS) or \
           the hardware count).  Results are bit-identical for any value.")

let apply_jobs jobs = Option.iter Peel_util.Pool.set_default_jobs jobs

let scale_term =
  Arg.(value & opt int 64 & info [ "scale" ] ~doc:"Collective size in GPUs.")

(* The uniform exit-code contract, documented in every subcommand's man
   page and asserted by test_compile's CLI test. *)
let std_exits =
  [
    Cmd.Exit.info 0 ~doc:"on success (no error-severity diagnostics).";
    Cmd.Exit.info 1
      ~doc:"when the run completed but a checker diagnosed errors.";
    Cmd.Exit.info 2 ~doc:"on command-line usage errors.";
  ]

(* ------------------------------------------------------------------ *)
(* plan                                                                *)
(* ------------------------------------------------------------------ *)

let plan_cmd =
  let failures =
    Arg.(
      value & opt float 0.0
      & info [ "failures" ] ~doc:"Fraction of fabric links to fail first.")
  in
  let run fabric seed scale failures =
    let rng = Rng.create seed in
    if failures > 0.0 then begin
      let failed =
        Fabric.fail_random fabric ~rng ~tier:`All ~fraction:failures ()
      in
      Printf.printf "failed %d cables\n" (List.length failed)
    end;
    let members = Spec.place fabric rng ~scale () in
    let source = List.hd members in
    let dests = List.filter (fun m -> m <> source) members in
    Printf.printf "fabric: %s\ngroup: %d GPUs, source node %d\n"
      (Fabric.describe fabric) scale source;
    (match Peel.multicast_tree fabric ~source ~dests with
    | None -> print_endline "destinations unreachable!"
    | Some tree ->
        Printf.printf "tree: %d links, depth %d\n" (Peel.Tree.cost tree)
          (Peel.Tree.max_depth tree));
    let plan = Peel.plan fabric ~source ~dests in
    Printf.printf "plan: %d packet(s), header %d B, %d rule(s) per switch (static)\n"
      (Peel.Plan.num_packets plan) plan.Peel.Plan.header_bytes
      (Peel.switch_rules fabric);
    List.iter
      (fun p ->
        Printf.printf "  packet: %d pod(s), %d rack(s), %d endpoint(s)%s\n"
          (List.length p.Peel.Plan.pods)
          (List.length p.Peel.Plan.tors)
          (List.length p.Peel.Plan.endpoints)
          (match p.Peel.Plan.waste_tors with
          | [] -> ""
          | w -> Printf.sprintf ", %d rack(s) over-covered" (List.length w)))
      plan.Peel.Plan.packets
  in
  Cmd.v (Cmd.info "plan" ~exits:std_exits ~doc:"Compute a multicast tree and prefix send plan.")
    Term.(const run $ fabric_term $ seed_term $ scale_term $ failures)

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let failures =
    Arg.(
      value & opt float 0.0
      & info [ "failures" ] ~doc:"Fraction of fabric links to fail first.")
  in
  let budget =
    Arg.(
      value & opt (some int) None
      & info [ "budget" ]
          ~doc:"Cap on ToR prefixes per packet group (allows over-covering).")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Only print the verdict line.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the diagnostics as a machine-readable JSON document on \
             stdout instead of the human report (exit code unchanged).")
  in
  let run fabric seed scale failures budget quiet json =
    let module D = Peel_check.Diagnostic in
    let module Json = Peel_util.Json in
    let rng = Rng.create seed in
    if failures > 0.0 then
      ignore (Fabric.fail_random fabric ~rng ~tier:`All ~fraction:failures ());
    let members = Spec.place fabric rng ~scale () in
    let source = List.hd members in
    let dests = List.filter (fun m -> m <> source) members in
    let ds = Peel_check.check_scenario ?budget fabric ~source ~dests in
    let errs = D.errors ds in
    if json then begin
      let finding d =
        Json.Obj
          [
            ("severity", Json.str (D.severity_to_string d.D.severity));
            ("code", Json.str d.D.code);
            ("location", Json.str d.D.location);
            ("message", Json.str d.D.message);
          ]
      in
      let doc =
        Json.Obj
          [
            ("schema", Json.str "peel-check/1");
            ( "meta",
              Json.Obj
                [
                  ("fabric", Json.str (Fabric.describe fabric));
                  ("seed", Json.int seed);
                  ("scale", Json.int scale);
                  ("failures", Json.num failures);
                  ( "budget",
                    match budget with
                    | None -> Json.Null
                    | Some b -> Json.int b );
                ] );
            ("findings", Json.Arr (List.map finding (D.sort ds)));
            ("errors", Json.int (List.length errs));
          ]
      in
      print_endline (Json.to_string doc)
    end
    else begin
      if not quiet then Format.printf "%a" D.pp_report ds;
      Printf.printf "%s: %d-GPU group%s: %d finding(s), %d error(s)\n"
        (Fabric.describe fabric) scale
        (if failures > 0.0 then Printf.sprintf " (%.0f%% links failed)" (failures *. 100.0)
         else "")
        (List.length ds) (List.length errs)
    end;
    if errs <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "check" ~exits:std_exits
       ~doc:
         "Statically lint a scenario's invariants (tree, plan, rules, \
          schedules); exit non-zero on errors.")
    Term.(
      const run $ fabric_term $ seed_term $ scale_term $ failures $ budget
      $ quiet $ json)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let scheme =
    let parse s =
      match Scheme.of_string s with
      | Some x -> Ok x
      | None -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
    in
    let print fmt s = Format.pp_print_string fmt (Scheme.to_string s) in
    Arg.(
      value
      & opt (list (conv (parse, print))) Scheme.all
      & info [ "schemes" ] ~docv:"S1,S2"
          ~doc:"Schemes: ring, tree, optimal, orca, peel, peel+cores.")
  in
  let size_mb =
    Arg.(value & opt float 64.0 & info [ "size" ] ~doc:"Message size in MB.")
  in
  let load =
    Arg.(value & opt float 0.3 & info [ "load" ] ~doc:"Offered load (0,1].")
  in
  let n =
    Arg.(value & opt int 40 & info [ "n" ] ~doc:"Number of collectives.")
  in
  let par_sim =
    Arg.(
      value & flag
      & info [ "par-sim" ]
          ~doc:
            "Run each scheme on the conservative sharded engine (event loop \
             partitioned by pod, $(b,--jobs) worker domains) instead of the \
             sequential engine.  Schemes the sharded engine cannot express \
             (orca, peel+cores, multitree) fall back to the sequential path, \
             marked in the table.  Also enabled by \\$(b,PEEL_PAR_SIM)=1.")
  in
  let par_verify =
    Arg.(
      value & flag
      & info [ "par-verify" ]
          ~doc:
            "With the sharded engine (implies $(b,--par-sim)): run every \
             supported scheme at jobs=1 and jobs=N, require bit-identical \
             CCTs, makespan, delivery fingerprint and per-link busy time, \
             and lint the window audit for shard-boundary causality \
             (SIM008).  Exits 1 on any divergence or finding.")
  in
  let run fabric seed scale schemes size_mb load n jobs par_sim par_verify =
    apply_jobs jobs;
    let par_sim =
      par_sim || par_verify
      || (match Sys.getenv_opt "PEEL_PAR_SIM" with
         | Some ("1" | "true" | "on") -> true
         | _ -> false)
    in
    Printf.printf "fabric: %s; %d collectives of %d GPUs x %.0f MB at %.0f%% load%s\n\n"
      (Fabric.describe fabric) n scale size_mb (load *. 100.0)
      (if par_sim then
         Printf.sprintf " (sharded engine, %d jobs)" (Peel_util.Pool.default_jobs ())
       else "");
    let specs () =
      Spec.poisson_broadcasts fabric (Rng.create seed) ~n ~scale
        ~bytes:(size_mb *. 1e6) ~load ()
    in
    let verify_failed = ref false in
    if par_verify then
      List.iter
        (fun scheme ->
          if Par.supported scheme then begin
            let cs = specs () in
            let r1 = Par.run ~jobs:1 ~audit:true fabric scheme cs in
            let rn = Par.run ~audit:true fabric scheme cs in
            let module S = Peel_sim.Shard in
            let same =
              Array.for_all2 Float.equal r1.S.r_ccts rn.S.r_ccts
              && r1.S.r_fingerprint = rn.S.r_fingerprint
              && Float.equal r1.S.r_makespan rn.S.r_makespan
              && Array.for_all2 Float.equal r1.S.r_busy rn.S.r_busy
            in
            let ds =
              Peel_check.Check_sim.check_shard r1
              @ Peel_check.Check_sim.check_shard rn
            in
            if (not same) || Peel_check.Diagnostic.has_errors ds then begin
              verify_failed := true;
              Printf.printf "par-verify %s: FAILED%s\n" (Scheme.to_string scheme)
                (if same then "" else " (jobs-1 vs jobs-N diverged)");
              Format.printf "%a" Peel_check.Diagnostic.pp_report ds
            end
            else
              Printf.printf "par-verify %s: ok (%d windows, %d events)\n"
                (Scheme.to_string scheme) rn.S.r_windows rn.S.r_events
          end)
        schemes;
    if par_verify then print_newline ();
    let row scheme =
      let cs = specs () in
      let name = Scheme.to_string scheme in
      let name, outcome =
        if par_sim && Par.supported scheme then (name, Runner.run_sharded fabric scheme cs)
        else if par_sim then (name ^ " (seq)", Runner.run fabric scheme cs)
        else (name, Runner.run fabric scheme cs)
      in
      let s = Runner.summarize outcome in
      [
        name;
        Peel_util.Table.fsec s.Peel_util.Stats.mean;
        Peel_util.Table.fsec s.Peel_util.Stats.p50;
        Peel_util.Table.fsec s.Peel_util.Stats.p99;
        Peel_util.Table.fsec s.Peel_util.Stats.max;
      ]
    in
    (* Sequential engine: one worker cell per scheme (each regenerates
       the workload from the seed and shares the fabric read-only).
       Sharded engine: schemes run serially — the domains live inside
       each run. *)
    let rows =
      if par_sim then List.map row schemes else Peel_util.Pool.par_map row schemes
    in
    Peel_util.Table.print ~header:[ "scheme"; "mean"; "p50"; "p99"; "max" ] rows;
    if !verify_failed then exit 1
  in
  Cmd.v (Cmd.info "simulate" ~exits:std_exits ~doc:"Simulate Broadcast workloads.")
    Term.(
      const run $ fabric_term $ seed_term $ scale_term $ scheme $ size_mb $ load
      $ n $ jobs_term $ par_sim $ par_verify)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let module Trace = Peel_sim.Trace in
  let module Json = Peel_util.Json in
  let scheme =
    let parse s =
      match Scheme.of_string s with
      | Some x -> Ok x
      | None -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
    in
    let print fmt s = Format.pp_print_string fmt (Scheme.to_string s) in
    Arg.(
      value
      & opt (conv (parse, print)) Scheme.Peel
      & info [ "scheme" ] ~docv:"SCHEME"
          ~doc:"Scheme to trace: ring, tree, optimal, orca, peel, peel+cores.")
  in
  let size_mb =
    Arg.(value & opt float 64.0 & info [ "size" ] ~doc:"Message size in MB.")
  in
  let load =
    Arg.(value & opt float 0.3 & info [ "load" ] ~doc:"Offered load (0,1].")
  in
  let n =
    Arg.(value & opt int 8 & info [ "n" ] ~doc:"Number of collectives.")
  in
  let chunks =
    Arg.(value & opt int 8 & info [ "chunks" ] ~doc:"Pipelined chunks per message.")
  in
  let level =
    Arg.(
      value
      & opt (enum [ ("counters", Trace.Counters); ("full", Trace.Full) ]) Trace.Full
      & info [ "level" ] ~docv:"LEVEL"
          ~doc:"Trace verbosity: counters (aggregates only) or full (event log).")
  in
  let sample =
    Arg.(
      value & opt int 1
      & info [ "sample" ] ~docv:"N"
          ~doc:"Record every Nth link reservation event (counters stay exact).")
  in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Trace JSON output path.")
  in
  let csv =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also export the event log as CSV.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Only print the verdict line.")
  in
  let level_name = function
    | Trace.Off -> "off" | Trace.Counters -> "counters" | Trace.Full -> "full"
  in
  let flow_json (f : Trace.flow_stats) =
    Json.Obj
      [
        ("flow", Json.int f.Trace.f_flow);
        ("releases", Json.int f.Trace.f_releases);
        ("deliveries", Json.int f.Trace.f_deliveries);
        ("cnps", Json.int f.Trace.f_cnps);
        ("rate_cuts", Json.int f.Trace.f_rate_cuts);
        ("guard_holds", Json.int f.Trace.f_guard_holds);
        ("retransmits", Json.int f.Trace.f_retransmits);
        ("replans", Json.int f.Trace.f_replans);
        ("first_delivery", Json.num f.Trace.f_first_delivery);
        ("last_delivery", Json.num f.Trace.f_last_delivery);
        ("mean_chunk_latency", Json.num f.Trace.f_mean_chunk_latency);
        ("max_chunk_latency", Json.num f.Trace.f_max_chunk_latency);
      ]
  in
  let run fabric seed scale scheme size_mb load n chunks level sample out csv
      quiet =
    let module D = Peel_check.Diagnostic in
    let trace = Trace.create ~level ~sample () in
    let cs =
      Spec.poisson_broadcasts fabric (Rng.create seed) ~n ~scale
        ~bytes:(size_mb *. 1e6) ~load ()
    in
    let outcome = Runner.run ~chunks ~trace fabric scheme cs in
    let expected_deliveries =
      chunks
      * List.fold_left
          (fun acc (c : Spec.collective) -> acc + List.length c.Spec.dests)
          0 cs
    in
    let ds =
      Peel_check.Check_sim.check_outcome ~expected:n ~ccts:outcome.Runner.ccts
        ~makespan:outcome.Runner.makespan outcome.Runner.telemetry
      @ Peel_check.Check_sim.check_trace ~expected_deliveries trace
    in
    let s = Runner.summarize outcome in
    let c = Trace.counters trace in
    let flows = Trace.flow_stats trace in
    if not quiet then begin
      Printf.printf "fabric: %s; scheme %s; %d collectives of %d GPUs x %.0f MB\n"
        (Fabric.describe fabric) (Scheme.to_string scheme) n scale size_mb;
      Printf.printf
        "makespan %s; mean CCT %s, p99 %s; %d engine events (max queue %d)\n\n"
        (Peel_util.Table.fsec outcome.Runner.makespan)
        (Peel_util.Table.fsec s.Peel_util.Stats.mean)
        (Peel_util.Table.fsec s.Peel_util.Stats.p99)
        c.Trace.engine_events c.Trace.engine_max_pending;
      Peel_util.Table.print ~header:[ "counter"; "value" ]
        [
          [ "link reservations"; string_of_int c.Trace.reservations ];
          [ "bytes reserved"; Printf.sprintf "%.3e" c.Trace.bytes_reserved ];
          [ "chunk releases"; string_of_int c.Trace.releases ];
          [ "chunk deliveries"; string_of_int c.Trace.deliveries ];
          [ "ECN marks"; string_of_int c.Trace.ecn_marks ];
          [ "CNPs"; string_of_int c.Trace.cnps ];
          [ "rate cuts"; string_of_int c.Trace.rate_cuts ];
          [ "guard holds"; string_of_int c.Trace.guard_holds ];
          [ "drops"; string_of_int c.Trace.drops ];
          [ "retransmits"; string_of_int c.Trace.retransmits ];
        ];
      print_newline ();
      let hot = Peel_sim.Telemetry.hottest outcome.Runner.telemetry ~n:5 in
      Peel_util.Table.print
        ~header:[ "hot link"; "tier"; "util"; "chunks"; "ECN"; "max backlog" ]
        (List.map
           (fun (r : Peel_sim.Telemetry.link_report) ->
             [
               Printf.sprintf "%d->%d" r.Peel_sim.Telemetry.src
                 r.Peel_sim.Telemetry.dst;
               r.Peel_sim.Telemetry.tier;
               Printf.sprintf "%.2f" r.Peel_sim.Telemetry.utilization;
               string_of_int r.Peel_sim.Telemetry.reservations;
               string_of_int r.Peel_sim.Telemetry.ecn_marks;
               Peel_util.Table.fsec r.Peel_sim.Telemetry.max_backlog;
             ])
           hot);
      if flows <> [] then begin
        print_newline ();
        Peel_util.Table.print
          ~header:[ "flow"; "released"; "delivered"; "mean lat"; "max lat" ]
          (List.map
             (fun (f : Trace.flow_stats) ->
               [
                 string_of_int f.Trace.f_flow;
                 string_of_int f.Trace.f_releases;
                 string_of_int f.Trace.f_deliveries;
                 Peel_util.Table.fsec f.Trace.f_mean_chunk_latency;
                 Peel_util.Table.fsec f.Trace.f_max_chunk_latency;
               ])
             flows)
      end;
      print_newline ()
    end;
    let doc =
      Json.Obj
        [
          ("schema", Json.str "peel-trace/1");
          ( "meta",
            Json.Obj
              [
                ("fabric", Json.str (Fabric.describe fabric));
                ("scheme", Json.str (Scheme.to_string scheme));
                ("seed", Json.int seed);
                ("scale", Json.int scale);
                ("collectives", Json.int n);
                ("bytes", Json.num (size_mb *. 1e6));
                ("load", Json.num load);
                ("chunks", Json.int chunks);
                ("level", Json.str (level_name level));
                ("sample", Json.int sample);
              ] );
          ( "summary",
            Json.Obj
              [
                ("makespan", Json.num outcome.Runner.makespan);
                ("mean_cct", Json.num s.Peel_util.Stats.mean);
                ("p50_cct", Json.num s.Peel_util.Stats.p50);
                ("p99_cct", Json.num s.Peel_util.Stats.p99);
                ("max_cct", Json.num s.Peel_util.Stats.max);
                ( "ccts",
                  Json.Arr (List.map Json.num outcome.Runner.ccts) );
                ("expected_deliveries", Json.int expected_deliveries);
                ("diagnostics", Json.int (List.length ds));
              ] );
          ("counters", Trace.counters_to_json trace);
          ("links", Peel_sim.Telemetry.to_json outcome.Runner.telemetry);
          ("flows", Json.Arr (List.map flow_json flows));
          ("events", Trace.events_to_json trace);
        ]
    in
    Out_channel.with_open_text out (fun oc ->
        Out_channel.output_string oc (Json.to_string doc);
        Out_channel.output_char oc '\n');
    (match csv with
    | None -> ()
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Trace.events_csv trace)));
    if ds <> [] && not quiet then Format.printf "%a" D.pp_report ds;
    let errs = D.errors ds in
    Printf.printf "%s: %d events traced, %d finding(s), %d error(s)%s\n" out
      (Trace.num_events trace) (List.length ds) (List.length errs)
      (match csv with None -> "" | Some p -> Printf.sprintf "; CSV: %s" p);
    if errs <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "trace" ~exits:std_exits
       ~doc:
         "Run one Broadcast workload with structured tracing on and export \
          the trace as JSON (and optionally CSV); exit non-zero if the trace \
          fails its conservation/consistency lint.")
    Term.(
      const run $ fabric_term $ seed_term $ scale_term $ scheme $ size_mb
      $ load $ n $ chunks $ level $ sample $ out $ csv $ quiet)

(* ------------------------------------------------------------------ *)
(* failover                                                            *)
(* ------------------------------------------------------------------ *)

let failover_cmd =
  let module Trace = Peel_sim.Trace in
  let scheme =
    let parse s =
      match Failover.scheme_of_string s with
      | Some x -> Ok x
      | None -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
    in
    let print fmt s =
      Format.pp_print_string fmt (Failover.scheme_to_string s)
    in
    Arg.(
      value
      & opt (conv (parse, print)) Failover.Peel
      & info [ "scheme" ] ~docv:"SCHEME" ~doc:"Scheme: peel, ring or tree.")
  in
  let size_mb =
    Arg.(value & opt float 16.0 & info [ "size" ] ~doc:"Message size in MB.")
  in
  let chunks =
    Arg.(value & opt int 8 & info [ "chunks" ] ~doc:"Pipelined chunks per message.")
  in
  let fail_frac =
    Arg.(
      value & opt float 0.05
      & info [ "fail-frac" ]
          ~doc:"Fraction of fabric duplex links the schedule fails.")
  in
  let fail_at =
    Arg.(
      value & opt float 0.4
      & info [ "fail-at" ]
          ~doc:"Failure instant as a fraction of the clean (failure-free) CCT.")
  in
  let recover_after =
    Arg.(
      value & opt (some float) None
      & info [ "recover-after" ]
          ~doc:"Bring the links back up this many seconds after the failure.")
  in
  let detection =
    Arg.(
      value & opt float 500e-6
      & info [ "detection" ] ~doc:"Controller failure-detection delay (s).")
  in
  let reaction =
    Arg.(
      value & opt float 1e-3
      & info [ "reaction" ] ~doc:"Controller replan delay after detection (s).")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Only print the verdict line.")
  in
  let run fabric seed scale scheme size_mb chunks fail_frac fail_at
      recover_after detection reaction quiet =
    let module D = Peel_check.Diagnostic in
    let rng = Rng.create seed in
    let members = Spec.place fabric rng ~scale () in
    let source = List.hd members in
    let spec =
      {
        Spec.id = 0;
        arrival = 0.0;
        source;
        dests = List.filter (fun m -> m <> source) members;
        members;
        bytes = size_mb *. 1e6;
      }
    in
    let ctrl = { Failover.default_ctrl with detection; reaction } in
    (* Clean run first: the failure instant is a fraction of its CCT. *)
    let clean =
      List.hd (Failover.run ~chunks ~ctrl fabric scheme [ spec ]).Runner.ccts
    in
    (* Draw the victim links with connectivity ensured, then put them
       back up — only the schedule fails them, mid-run. *)
    let ids = Fabric.fail_random fabric ~rng ~tier:`All ~fraction:fail_frac () in
    List.iter (Fabric.recover_link fabric) ids;
    let fail_time = fail_at *. clean in
    let faults =
      Peel_sim.Fault.schedule_of_failures ~at:fail_time
        ?recover_at:(Option.map (fun d -> fail_time +. d) recover_after)
        ids
    in
    let trace = Trace.create ~level:Trace.Full () in
    let out = Failover.run ~chunks ~ctrl ~trace ~faults fabric scheme [ spec ] in
    let failed_cct = List.hd out.Runner.ccts in
    let c = Trace.counters trace in
    if not quiet then begin
      Printf.printf "fabric: %s; scheme %s; %d GPUs x %.0f MB in %d chunks\n"
        (Fabric.describe fabric)
        (Failover.scheme_to_string scheme)
        scale size_mb chunks;
      Printf.printf "schedule: %d duplex links fail at %s (%.0f%% of clean CCT)%s\n"
        (List.length ids)
        (Peel_util.Table.fsec fail_time)
        (fail_at *. 100.)
        (match recover_after with
        | None -> ", no recovery"
        | Some d -> Printf.sprintf ", recover after %s" (Peel_util.Table.fsec d));
      Printf.printf "controller: detection %s, reaction %s\n\n"
        (Peel_util.Table.fsec detection)
        (Peel_util.Table.fsec reaction);
      Peel_util.Table.print ~header:[ "metric"; "value" ]
        [
          [ "clean CCT"; Peel_util.Table.fsec clean ];
          [ "failover CCT"; Peel_util.Table.fsec failed_cct ];
          [ "degradation"; Printf.sprintf "%.2fx" (failed_cct /. clean) ];
          [ "link failures"; string_of_int c.Trace.link_fails ];
          [ "link recoveries"; string_of_int c.Trace.link_recovers ];
          [ "replans"; string_of_int c.Trace.replans ];
          [ "drops"; string_of_int c.Trace.drops ];
          [ "retransmits"; string_of_int c.Trace.retransmits ];
          [ "deliveries"; string_of_int c.Trace.deliveries ];
        ];
      print_newline ()
    end;
    let expected_deliveries = chunks * List.length spec.Spec.dests in
    let ds =
      Peel_check.Check_sim.check_outcome ~expected:1 ~ccts:out.Runner.ccts
        ~makespan:out.Runner.makespan out.Runner.telemetry
      @ Peel_check.Check_sim.check_trace ~expected_deliveries trace
    in
    if ds <> [] && not quiet then Format.printf "%a" D.pp_report ds;
    let errs = D.errors ds in
    Printf.printf
      "failover %s: CCT %s -> %s (%.2fx), %d replan(s), %d finding(s), %d error(s)\n"
      (Failover.scheme_to_string scheme)
      (Peel_util.Table.fsec clean)
      (Peel_util.Table.fsec failed_cct)
      (failed_cct /. clean) c.Trace.replans (List.length ds) (List.length errs);
    if errs <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "failover" ~exits:std_exits
       ~doc:
         "Run one broadcast with a scheduled mid-run link failure; the \
          controller re-peels around the cut (PEEL) or repairs end to end \
          (ring/tree). Exits non-zero if the trace fails its lint, including \
          SIM007: no traffic through a down link.")
    Term.(
      const run $ fabric_term $ seed_term $ scale_term $ scheme $ size_mb
      $ chunks $ fail_frac $ fail_at $ recover_after $ detection $ reaction
      $ quiet)

(* ------------------------------------------------------------------ *)
(* refine                                                              *)
(* ------------------------------------------------------------------ *)

let refine_cmd =
  let module Trace = Peel_sim.Trace in
  let open Peel_ctrl in
  let schemes =
    let parse s =
      match Refine.scheme_of_string s with
      | Some x -> Ok x
      | None -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
    in
    let print fmt s = Format.pp_print_string fmt (Refine.scheme_to_string s) in
    Arg.(
      value
      & opt (list (conv (parse, print))) Refine.all_schemes
      & info [ "schemes" ] ~docv:"S1,S2"
          ~doc:"Schemes: peel-static, peel-refined, ipmc.")
  in
  let n =
    Arg.(value & opt int 6 & info [ "n" ] ~doc:"Number of multicast groups.")
  in
  let size_mb =
    Arg.(value & opt float 64.0 & info [ "size" ] ~doc:"Message size in MB.")
  in
  let load =
    Arg.(value & opt float 0.5 & info [ "load" ] ~doc:"Offered load (0,1].")
  in
  let hold =
    Arg.(
      value & opt float 0.05
      & info [ "hold" ] ~doc:"Mean group lifetime after arrival (s).")
  in
  let fragmentation =
    Arg.(
      value & opt float 0.6
      & info [ "fragmentation" ]
          ~doc:"Fraction of servers relocated off the contiguous placement.")
  in
  let chunks =
    Arg.(value & opt int 16 & info [ "chunks" ] ~doc:"Pipelined chunks per message.")
  in
  let rpc =
    Arg.(
      value & opt float 2e-3
      & info [ "rpc" ] ~doc:"Controller-to-switch RPC round (s).")
  in
  let per_rule =
    Arg.(
      value & opt float 20e-6
      & info [ "per-rule" ] ~doc:"Serial install time per TCAM entry (s).")
  in
  let capacity =
    Arg.(
      value & opt int 4
      & info [ "capacity" ]
          ~doc:"Per-switch TCAM entry budget (<= 0 disables refinement).")
  in
  let policy =
    let parse s =
      match Tcam.policy_of_string s with
      | Some p -> Ok p
      | None -> Error (`Msg (Printf.sprintf "unknown eviction policy %S" s))
    in
    let print fmt p = Format.pp_print_string fmt (Tcam.policy_to_string p) in
    Arg.(
      value
      & opt (conv (parse, print)) Tcam.Lru
      & info [ "policy" ] ~docv:"POLICY" ~doc:"Eviction policy: lru or bytes.")
  in
  let budget =
    Arg.(
      value & opt int 1
      & info [ "budget" ]
          ~doc:
            "Static-stage ToR-prefix budget (over-covering cover); 0 = exact \
             covers, nothing to refine away.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Only print the verdict line.")
  in
  let run fabric seed scale schemes n size_mb load hold fragmentation chunks
      rpc per_rule capacity policy budget quiet =
    let module D = Peel_check.Diagnostic in
    let groups =
      Spec.poisson_groups fabric (Rng.create seed) ~n ~scale
        ~bytes:(size_mb *. 1e6) ~load ~hold ~fragmentation ()
    in
    let cfg =
      {
        Controller.rpc;
        per_rule;
        capacity;
        policy;
        budget = (if budget <= 0 then None else Some budget);
      }
    in
    let run_scheme scheme =
      let trace = Trace.create ~level:Trace.Full () in
      (scheme, trace, Refine.run ~chunks ~cfg ~trace fabric scheme groups)
    in
    let outs = List.map run_scheme schemes in
    if not quiet then begin
      Printf.printf
        "fabric: %s; %d groups of %d GPUs x %.0f MB in %d chunks\n"
        (Fabric.describe fabric) n scale size_mb chunks;
      Printf.printf
        "controller: rpc %s, %s/rule, TCAM budget %d (%s), prefix budget %s\n\n"
        (Peel_util.Table.fsec rpc)
        (Peel_util.Table.fsec per_rule)
        capacity
        (Tcam.policy_to_string policy)
        (match cfg.Controller.budget with
        | None -> "exact"
        | Some b -> string_of_int b);
      Peel_util.Table.print
        ~header:
          [ "scheme"; "mean CCT"; "link GB"; "waste GB"; "installs";
            "evicts"; "refined%" ]
        (List.map
           (fun (scheme, trace, out) ->
             let c = Trace.counters trace in
             let total =
               Refine.static_chunks out + Refine.refined_chunks out
             in
             [
               Refine.scheme_to_string scheme;
               Peel_util.Table.fsec
                 (Peel_util.Stats.mean out.Refine.run.Runner.ccts);
               Printf.sprintf "%.3f" (c.Trace.bytes_reserved /. 1e9);
               Printf.sprintf "%.3f"
                 (Refine.total_overcover_bytes out /. 1e9);
               string_of_int (Controller.installs out.Refine.controller);
               string_of_int (Controller.evictions out.Refine.controller);
               (if total = 0 then "-"
                else
                  Printf.sprintf "%.0f%%"
                    (100.0
                    *. float_of_int (Refine.refined_chunks out)
                    /. float_of_int total));
             ])
           outs);
      print_newline ()
    end;
    (* Full lint: the generic simulation checks plus the CTRL family,
       and a replay of peel-refined to pin CTRL004 determinism. *)
    let ds =
      List.concat_map
        (fun (scheme, trace, out) ->
          let loc_prefix = Refine.scheme_to_string scheme in
          let tag d = { d with D.location = loc_prefix ^ ": " ^ d.D.location } in
          let expected_deliveries =
            List.fold_left
              (fun acc (r : Refine.report) ->
                acc + (r.Refine.r_chunks * r.Refine.r_ndests))
              0 out.Refine.reports
          in
          List.map tag
            (Peel_check.Check_sim.check_outcome ~expected:n
               ~ccts:out.Refine.run.Runner.ccts
               ~makespan:out.Refine.run.Runner.makespan
               out.Refine.run.Runner.telemetry
            @ Peel_check.Check_sim.check_trace ~expected_deliveries trace
            @ Check_ctrl.check_handoff out.Refine.handoffs
            @ (match Controller.tcam out.Refine.controller with
              | Some tc -> Check_ctrl.check_budget tc
              | None -> [])
            @ Check_ctrl.check_trace trace))
        outs
    in
    let replay =
      if List.mem Refine.Peel_refined schemes then begin
        let fp () =
          (Refine.run ~chunks ~cfg fabric Refine.Peel_refined groups)
            .Refine.fingerprint
        in
        Check_ctrl.check_replay ~first:(fp ()) ~second:(fp ())
      end
      else []
    in
    let ds = ds @ replay in
    if ds <> [] && not quiet then Format.printf "%a" D.pp_report ds;
    let errs = D.errors ds in
    Printf.printf "refine: %d scheme(s), %d finding(s), %d error(s)\n"
      (List.length outs) (List.length ds) (List.length errs);
    if errs <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "refine" ~exits:std_exits
       ~doc:
         "Run a churning multicast group schedule through the two-stage \
          refinement control plane (static prefix rules, then exact \
          per-group rules once installs land) and lint the CTRL \
          invariants; exit non-zero on errors.")
    Term.(
      const run $ fabric_term $ seed_term $ scale_term $ schemes $ n $ size_mb
      $ load $ hold $ fragmentation $ chunks $ rpc $ per_rule $ capacity
      $ policy $ budget $ quiet)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let open Peel_ctrl in
  let events =
    Arg.(
      value & opt int 2000
      & info [ "events" ] ~doc:"Stream events to process before stopping.")
  in
  let rate =
    Arg.(
      value & opt float 400.0
      & info [ "rate" ] ~doc:"Group arrivals per second (Poisson).")
  in
  let size_mb =
    Arg.(value & opt float 1.0 & info [ "size" ] ~doc:"Message size in MB.")
  in
  let hold =
    Arg.(
      value & opt float 0.5
      & info [ "hold" ] ~doc:"Mean group lifetime after arrival (s).")
  in
  let churn =
    Arg.(
      value & opt float 80.0
      & info [ "churn" ] ~doc:"Join/leave deltas per group per second.")
  in
  let sends =
    Arg.(
      value & opt float 40.0
      & info [ "sends" ] ~doc:"Multicast sends per group per second.")
  in
  let fragmentation =
    Arg.(
      value & opt float 0.0
      & info [ "fragmentation" ]
          ~doc:"Fraction of servers relocated off the contiguous placement.")
  in
  let capacity =
    Arg.(
      value & opt int 1024
      & info [ "capacity" ]
          ~doc:"Per-switch TCAM entry budget (<= 0 = everything unicast).")
  in
  let policy =
    let parse s =
      match Tcam.policy_of_string s with
      | Some p -> Ok p
      | None -> Error (`Msg (Printf.sprintf "unknown eviction policy %S" s))
    in
    let print fmt p = Format.pp_print_string fmt (Tcam.policy_to_string p) in
    Arg.(
      value
      & opt (conv (parse, print)) Tcam.Lru
      & info [ "policy" ] ~docv:"POLICY" ~doc:"Eviction policy: lru or bytes.")
  in
  let admission =
    let parse s =
      match Service.admission_of_string s with
      | Some a -> Ok a
      | None -> Error (`Msg (Printf.sprintf "unknown admission policy %S" s))
    in
    let print fmt a =
      Format.pp_print_string fmt (Service.admission_to_string a)
    in
    Arg.(
      value
      & opt (conv (parse, print)) Service.Evict
      & info [ "admission" ] ~docv:"POLICY"
          ~doc:"Admission under saturation: evict or deny.")
  in
  let batch =
    Arg.(
      value
      & opt (some int) None
      & info [ "batch" ]
          ~doc:
            "Pending installs per compile flush (default: \\$(b,PEEL_SERVE_BATCH) \
             or 8).")
  in
  let budget =
    Arg.(
      value & opt int 1
      & info [ "budget" ] ~doc:"ToR-prefix budget for compiled plans (0 = exact).")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Only print the verdict line.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the SLO record as JSON instead of a table.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Disable the peel/plan memo caches.  Decisions are recomputed \
             from scratch; the replay fingerprint must not change.")
  in
  let run fabric seed scale events rate size_mb hold churn sends fragmentation
      capacity policy admission batch budget quiet json no_cache jobs =
    let module D = Peel_check.Diagnostic in
    let module Json = Peel_util.Json in
    apply_jobs jobs;
    let cfg =
      {
        Service.default_config with
        Service.capacity;
        policy;
        admission;
        batch = Option.value batch ~default:Service.default_config.Service.batch;
        budget = (if budget <= 0 then None else Some budget);
        use_cache = not no_cache;
      }
    in
    let tenants =
      [
        Stream.tenant ~rate ~scale ~bytes:(size_mb *. 1e6) ~hold ~churn ~sends
          ~fragmentation ();
      ]
    in
    let serve ?(cfg = cfg) jobs =
      let stream = Stream.create fabric (Rng.create seed) ~tenants () in
      Service.run ~cfg ~jobs fabric ~events stream
    in
    (* The SVC005 replay contract: a single-domain run and a pool-sized
       run must produce byte-identical decision logs — and so must a
       run with the memo caches disabled (cache neutrality). *)
    let out1 = serve 1 in
    let out = serve (Peel_util.Pool.default_jobs ()) in
    let cache_ds =
      if not cfg.Service.use_cache then []
      else
        let nc = serve ~cfg:{ cfg with Service.use_cache = false } 1 in
        Check_service.check_replay ~first:out1.Service.o_fingerprint
          ~second:nc.Service.o_fingerprint
    in
    let s = out.Service.o_slo in
    if not quiet && not json then begin
      Printf.printf "fabric: %s; %d-GPU groups at %.0f/s, %.0f MB sends\n"
        (Fabric.describe fabric) scale rate size_mb;
      Printf.printf
        "service: TCAM %d (%s, %s), batch %d, prefix budget %s, %d domain(s)\n\n"
        capacity
        (Tcam.policy_to_string policy)
        (Service.admission_to_string admission)
        cfg.Service.batch
        (match cfg.Service.budget with
        | None -> "exact"
        | Some b -> string_of_int b)
        (Peel_util.Pool.default_jobs ());
      Peel_util.Table.print
        ~header:[ "counter"; "value" ]
        [
          [ "events"; string_of_int s.Service.events ];
          [ "creates / departs";
            Printf.sprintf "%d / %d" s.Service.creates s.Service.departs ];
          [ "joins / leaves";
            Printf.sprintf "%d / %d" s.Service.joins s.Service.leaves ];
          [ "delta repeels"; string_of_int s.Service.delta_repeels ];
          [ "full repeels (fallbacks)";
            Printf.sprintf "%d (%d)" s.Service.full_repeels
              s.Service.splice_fallbacks ];
          [ "compile batches"; string_of_int s.Service.batches ];
          [ "installs / evictions / denials";
            Printf.sprintf "%d / %d / %d" s.Service.installs
              s.Service.evictions s.Service.denials ];
          [ "sends (multicast / unicast)";
            Printf.sprintf "%d / %d" s.Service.multicast_chunks
              s.Service.unicast_chunks ];
          [ "backlog (max / final)";
            Printf.sprintf "%d / %d" s.Service.max_backlog
              s.Service.final_backlog ];
          [ "plan latency p50 / p99";
            Printf.sprintf "%s / %s"
              (Peel_util.Table.fsec s.Service.plan_p50_s)
              (Peel_util.Table.fsec s.Service.plan_p99_s) ];
          [ "cache hits / misses";
            Printf.sprintf "%d / %d" s.Service.cache_hits
              s.Service.cache_misses ];
          [ "events/sec"; Printf.sprintf "%.0f" s.Service.events_per_sec ];
          [ "fingerprint"; out.Service.o_fingerprint ];
        ];
      print_newline ()
    end;
    if json then
      print_endline
        (Json.to_string
           (Json.Obj
              [
                ("events", Json.int s.Service.events);
                ("delta_repeels", Json.int s.Service.delta_repeels);
                ("full_repeels", Json.int s.Service.full_repeels);
                ("splice_fallbacks", Json.int s.Service.splice_fallbacks);
                ("installs", Json.int s.Service.installs);
                ("evictions", Json.int s.Service.evictions);
                ("denials", Json.int s.Service.denials);
                ("multicast_chunks", Json.int s.Service.multicast_chunks);
                ("unicast_chunks", Json.int s.Service.unicast_chunks);
                ("max_backlog", Json.int s.Service.max_backlog);
                ("plan_p50_s", Json.num s.Service.plan_p50_s);
                ("plan_p99_s", Json.num s.Service.plan_p99_s);
                ("cache_hits", Json.int s.Service.cache_hits);
                ("cache_misses", Json.int s.Service.cache_misses);
                ("events_per_sec", Json.num s.Service.events_per_sec);
                ("fingerprint", Json.str out.Service.o_fingerprint);
              ]));
    let ds =
      Check_service.check_state out
      @ Check_service.check_replay ~first:out1.Service.o_fingerprint
          ~second:out.Service.o_fingerprint
      @ cache_ds
    in
    if ds <> [] && not quiet then Format.printf "%a" D.pp_report ds;
    let errs = D.errors ds in
    Printf.printf "serve: %d event(s), %d finding(s), %d error(s)\n"
      s.Service.events (List.length ds) (List.length errs);
    if errs <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "serve" ~exits:std_exits
       ~doc:
         "Run the open-loop multicast-as-a-service controller over a Poisson \
          create/join/leave/send/depart stream (delta re-peeling, batched \
          pod-sharded installs, TCAM admission), lint the SVC invariants and \
          the 1-vs-N-domain replay contract; exit non-zero on errors.")
    Term.(
      const run $ fabric_term $ seed_term $ scale_term $ events $ rate
      $ size_mb $ hold $ churn $ sends $ fragmentation $ capacity $ policy
      $ admission $ batch $ budget $ quiet $ json $ no_cache $ jobs_term)

(* ------------------------------------------------------------------ *)
(* compile                                                             *)
(* ------------------------------------------------------------------ *)

(* Testing hook behind --corrupt: seed exactly the table corruption a
   given CMP code exists to catch, so the lint alias can prove the
   checker fails loudly end to end. *)
let corrupt_compiled (t : Peel_compile.Compile.t) code =
  let module C = Peel_compile.Compile in
  let map_nth n f l = List.mapi (fun i x -> if i = n then f x else x) l in
  let map_first_table f = { t with C.tables = map_nth 0 f t.C.tables } in
  match code with
  | `Cmp001 ->
      (* Drop the last table's final (shortest-prefix) entry: its
         headers have no installed ancestor left, so the packets that
         selected it are silently dropped. *)
      let n = List.length t.C.tables - 1 in
      {
        t with
        C.tables =
          map_nth n
            (fun (tb : C.table) ->
              {
                tb with
                C.entries =
                  (match List.rev tb.C.entries with
                  | [] -> []
                  | _ :: rest -> List.rev rest);
              })
            t.C.tables;
      }
  | `Cmp002 ->
      (* Append a duplicate of the highest-priority entry at the lowest
         priority: shadowed dead weight. *)
      map_first_table (fun (tb : C.table) ->
          match tb.C.entries with
          | [] -> tb
          | e :: _ -> { tb with C.entries = tb.C.entries @ [ e ] })
  | `Cmp003 ->
      (* Knock one port off an entry: it no longer replicates to its
         whole block, conflicting with the static rule for the prefix. *)
      map_first_table (fun (tb : C.table) ->
          {
            tb with
            C.entries =
              map_nth 0
                (fun (e : C.entry) ->
                  { e with C.ports = List.tl e.C.ports })
                tb.C.entries;
          })
  | `Cmp004 ->
      (* Rewrite the budget below the busiest table: the proof fails. *)
      { t with C.capacity = Some (C.max_entries t - 1) }
  | `Cmp005 ->
      (* Erase an entry's provenance: soundness becomes unprovable. *)
      map_first_table (fun (tb : C.table) ->
          {
            tb with
            C.entries =
              map_nth 0
                (fun (e : C.entry) -> { e with C.sources = [] })
                tb.C.entries;
          })

let compile_cmd =
  let module C = Peel_compile.Compile in
  let module Json = Peel_util.Json in
  let groups =
    Arg.(
      value & opt int 8
      & info [ "groups" ] ~docv:"N"
          ~doc:"Concurrent multicast groups in the batch.")
  in
  let capacity =
    Arg.(
      value
      & opt (some int) None
      & info [ "capacity" ] ~docv:"N"
          ~doc:"Per-switch TCAM entry budget to compile (and prove) against.")
  in
  let aggregate =
    Arg.(
      value & flag
      & info [ "aggregate" ]
          ~doc:
            "Merge sibling/nested prefix entries across groups when a table \
             exceeds the budget (trades over-delivery for entries).")
  in
  let fragmentation =
    Arg.(
      value & opt float 0.5
      & info [ "fragmentation" ]
          ~doc:"Fraction of servers relocated off the contiguous placement.")
  in
  let corrupt =
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("cmp001", `Cmp001); ("cmp002", `Cmp002); ("cmp003", `Cmp003);
                  ("cmp004", `Cmp004); ("cmp005", `Cmp005) ]))
          None
      & info [ "corrupt" ] ~docv:"CODE"
          ~doc:
            "Testing hook: seed the table corruption CODE (cmp001..cmp005) \
             exists to catch, then run the checker — must exit 1.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Only print the verdict line.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the compiled tables and diagnostics as JSON on stdout \
             (schema peel-compile/1) instead of the human report.")
  in
  let run fabric seed scale groups capacity aggregate fragmentation corrupt
      quiet json =
    let module D = Peel_check.Diagnostic in
    let rng = Rng.create seed in
    let batch =
      List.init groups (fun gid ->
          let members = Spec.place fabric rng ~scale ~fragmentation () in
          let source = List.hd members in
          let dests = List.filter (fun m -> m <> source) members in
          (gid, Peel.plan fabric ~source ~dests))
    in
    let t = C.compile ?capacity ~aggregate fabric batch in
    let t = match corrupt with None -> t | Some c -> corrupt_compiled t c in
    let ds = Peel_compile.Check_compile.check fabric t in
    let errs = D.errors ds in
    let waste =
      List.fold_left
        (fun acc (gid, _) ->
          acc + List.length (C.group_waste fabric t ~group:gid))
        0 batch
    in
    if json then begin
      let finding d =
        Json.Obj
          [
            ("severity", Json.str (D.severity_to_string d.D.severity));
            ("code", Json.str d.D.code);
            ("location", Json.str d.D.location);
            ("message", Json.str d.D.message);
          ]
      in
      let table_json (sw, entries, bytes) =
        Json.Obj
          [
            ("switch", Json.str (C.switch_to_string sw));
            ("entries", Json.int entries);
            ("bytes", Json.int bytes);
          ]
      in
      let doc =
        Json.Obj
          [
            ("schema", Json.str "peel-compile/1");
            ( "meta",
              Json.Obj
                [
                  ("fabric", Json.str (Fabric.describe fabric));
                  ("seed", Json.int seed);
                  ("scale", Json.int scale);
                  ("groups", Json.int groups);
                  ( "capacity",
                    match capacity with
                    | None -> Json.Null
                    | Some c -> Json.int c );
                  ("aggregate", Json.Bool aggregate);
                  ("fragmentation", Json.num fragmentation);
                ] );
            ("tables", Json.Arr (List.map table_json (C.footprint t)));
            ( "totals",
              Json.Obj
                [
                  ("entries", Json.int (C.total_entries t));
                  ("max_entries", Json.int (C.max_entries t));
                  ("merges", Json.int t.C.merges);
                  ("waste_racks", Json.int waste);
                  ("fits", Json.Bool (C.fits t));
                ] );
            ("findings", Json.Arr (List.map finding ds));
            ("errors", Json.int (List.length errs));
          ]
      in
      print_endline (Json.to_string doc)
    end
    else begin
      if not quiet then begin
        Printf.printf "fabric: %s; %d groups of %d GPUs%s%s\n"
          (Fabric.describe fabric) groups scale
          (match capacity with
          | None -> ""
          | Some c -> Printf.sprintf "; TCAM budget %d" c)
          (if aggregate then "; aggregation on" else "");
        Peel_util.Table.print ~header:[ "switch"; "entries"; "bytes" ]
          (List.map
             (fun (sw, entries, bytes) ->
               [
                 C.switch_to_string sw; string_of_int entries;
                 string_of_int bytes;
               ])
             (C.footprint t));
        print_newline ();
        if ds <> [] then Format.printf "%a" D.pp_report ds
      end;
      Printf.printf
        "compile: %d entries (max %d/switch), %d merge(s), %d waste rack \
         slot(s), fits=%b, %d finding(s), %d error(s)\n"
        (C.total_entries t) (C.max_entries t) t.C.merges waste (C.fits t)
        (List.length ds) (List.length errs)
    end;
    if errs <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "compile" ~exits:std_exits
       ~doc:
         "Compile a batch of concurrent group plans into concrete per-switch \
          rule tables (dedup + optional cross-group aggregation) and prove \
          them equivalent with the CMP static checks; exit 1 on any error.")
    Term.(
      const run $ fabric_term $ seed_term $ scale_term $ groups $ capacity
      $ aggregate $ fragmentation $ corrupt $ quiet $ json)

(* ------------------------------------------------------------------ *)
(* collective                                                          *)
(* ------------------------------------------------------------------ *)

let collective_cmd =
  let op =
    Arg.(
      value
      & opt
          (enum
             [ ("allgather", `Allgather); ("reduce", `Reduce);
               ("allreduce", `Allreduce) ])
          `Allreduce
      & info [ "op" ] ~docv:"OP" ~doc:"Collective: allgather, reduce, allreduce.")
  in
  let size_mb =
    Arg.(value & opt float 64.0 & info [ "size" ] ~doc:"Message size in MB.")
  in
  let run fabric seed scale op size_mb =
    let rng = Rng.create seed in
    let members = Spec.place fabric rng ~scale () in
    let source = List.hd members in
    let spec =
      {
        Spec.id = 0;
        arrival = 0.0;
        source;
        dests = List.filter (fun m -> m <> source) members;
        members;
        bytes = size_mb *. 1e6;
      }
    in
    Printf.printf "fabric: %s; %d workers x %.0f MB\n\n" (Fabric.describe fabric)
      scale size_mb;
    let rows =
      match op with
      | `Allgather ->
          List.map
            (fun algo ->
              ( "allgather/" ^ Allgather.algo_to_string algo,
                List.hd (Allgather.run fabric algo [ spec ]).Runner.ccts ))
            [ Allgather.Ring_exchange; Allgather.Peel_multicast ]
      | `Reduce ->
          List.map
            (fun algo ->
              ( "reduce/" ^ Reduce.algo_to_string algo,
                List.hd (Reduce.run fabric algo [ spec ]).Runner.ccts ))
            [ Reduce.Ring_pass; Reduce.Btree_reduce ]
      | `Allreduce ->
          List.map
            (fun algo ->
              ( "allreduce/" ^ Allreduce.algo_to_string algo,
                List.hd (Allreduce.run fabric algo [ spec ]).Runner.ccts ))
            [ Allreduce.Ring_rs_ag; Allreduce.Reduce_then_peel ]
    in
    Peel_util.Table.print ~header:[ "algorithm"; "CCT" ]
      (List.map (fun (name, cct) -> [ name; Peel_util.Table.fsec cct ]) rows)
  in
  Cmd.v
    (Cmd.info "collective" ~exits:std_exits ~doc:"Simulate allgather / reduce / allreduce.")
    Term.(const run $ fabric_term $ seed_term $ scale_term $ op $ size_mb)

(* ------------------------------------------------------------------ *)
(* zoo                                                                 *)
(* ------------------------------------------------------------------ *)

(* Testing hook behind --corrupt: seed exactly the malformation a given
   TOPO code exists to catch, so the lint alias can prove the zoo
   checkers fail loudly end to end (same pattern as compile's CMP
   hook). topo001/topo002 corrupt the fabric before the battery runs;
   topo003/topo004 corrupt the planner's outputs and run the dedicated
   checker directly. *)
let corrupt_zoo_fabric z code =
  match code with
  | `Topo001 ->
      (* Drag a switch down to the endpoint layer: the layering is no
         longer well formed (switches live on layers >= 1). *)
      z.Zoo.layer_of.(z.Zoo.tors.(0)) <- 0;
      z
  | `Topo002 ->
      (* Drop the last ToR from the roster: the class's size invariant
         (ToR count derived from the parameters) breaks. *)
      { z with Zoo.tors = Array.sub z.Zoo.tors 0 (Array.length z.Zoo.tors - 1) }

(* Attach one extra node to the tree through an up link that does not
   descend the BFS layering — valid by every TREE check (live link,
   right direction, reached once), caught only by TOPO003. *)
let corrupt_zoo_tree g tree ~source =
  let module Tree = Peel_steiner.Tree in
  let dist = Graph.bfs_dist g source in
  let nodes = Graph.num_nodes g in
  let found = ref None in
  for u = 0 to nodes - 1 do
    if !found = None && Tree.mem tree u then
      Array.iter
        (fun (v, lid) ->
          if
            !found = None && Graph.link_up g lid
            && (not (Tree.mem tree v))
            && dist.(v) <> Graph.unreachable
            && dist.(u) >= dist.(v)
          then found := Some (v, (u, lid)))
        (Graph.out_links g u)
  done;
  match !found with
  | None ->
      failwith
        "topo003 corruption: no non-descending attachment exists (try a \
         different seed or topology)"
  | Some binding ->
      let parents =
        binding
        :: List.map (fun (p, c, lid) -> (c, (p, lid))) (Tree.edges tree)
      in
      Tree.of_parents g ~root:source ~parents

let zoo_cmd =
  let module Zoo = Peel_topology.Zoo in
  let module Layer_peel = Peel_steiner.Layer_peel in
  let module Tree = Peel_steiner.Tree in
  let topo =
    Arg.(
      value
      & opt
          (enum (List.map (fun c -> (Zoo.cls_to_string c, c)) Zoo.all_classes))
          Zoo.Jellyfish
      & info [ "topo" ] ~docv:"CLASS"
          ~doc:"Topology class: abfattree, vl2, jellyfish or xpander.")
  in
  let k =
    Arg.(
      value & opt int 4
      & info [ "k" ] ~docv:"K" ~doc:"abfattree: pod count / arity (even, >= 4).")
  in
  let da =
    Arg.(
      value & opt int 4
      & info [ "da" ] ~doc:"vl2: aggregation port count (even).")
  in
  let di =
    Arg.(
      value & opt int 4
      & info [ "di" ] ~doc:"vl2: aggregation switch count (even).")
  in
  let size =
    Arg.(
      value & opt int 12
      & info [ "size" ] ~docv:"N" ~doc:"jellyfish: switch count.")
  in
  let degree =
    Arg.(
      value & opt int 3
      & info [ "degree" ] ~docv:"D"
          ~doc:"jellyfish / xpander: inter-switch network degree.")
  in
  let lift =
    Arg.(
      value & opt int 4
      & info [ "lift" ] ~docv:"L" ~doc:"xpander: lift order (switches = (D+1)*L).")
  in
  let group =
    Arg.(
      value & opt int 6
      & info [ "group" ] ~docv:"N" ~doc:"Multicast group size (source + dests).")
  in
  let fail_frac =
    Arg.(
      value & opt float 0.0
      & info [ "fail" ] ~docv:"F"
          ~doc:"Fraction of inter-switch links to fail before planning.")
  in
  let corrupt =
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("topo001", `Topo001); ("topo002", `Topo002);
                  ("topo003", `Topo003); ("topo004", `Topo004) ]))
          None
      & info [ "corrupt" ] ~docv:"CODE"
          ~doc:
            "Testing hook: seed the malformation CODE (topo001..topo004) \
             exists to catch, then run the checkers — must exit 1.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Only print the verdict line.")
  in
  let run topo k da di size degree lift seed group fail_frac corrupt quiet =
    let module D = Peel_check.Diagnostic in
    let z =
      match topo with
      | Zoo.Abfattree -> Zoo.abfattree ~k ()
      | Zoo.Vl2 -> Zoo.vl2 ~da ~di ()
      | Zoo.Jellyfish ->
          Zoo.jellyfish ~switches:size ~net_degree:degree ~seed ()
      | Zoo.Xpander -> Zoo.xpander ~net_degree:degree ~lift ~seed ()
    in
    let z =
      match corrupt with
      | Some ((`Topo001 | `Topo002) as c) -> corrupt_zoo_fabric z c
      | _ -> z
    in
    let fabric = Fabric.of_zoo z in
    let g = Fabric.graph fabric in
    let rng = Rng.create seed in
    if fail_frac > 0.0 then
      ignore (Fabric.fail_random fabric ~rng ~tier:`All ~fraction:fail_frac ());
    let hosts = Fabric.hosts fabric in
    let n = Array.length hosts in
    let picks =
      Rng.sample_without_replacement rng n (min n (max 2 group))
      |> List.map (fun i -> hosts.(i))
    in
    let source = List.hd picks in
    let dests = List.tl picks in
    if not quiet then begin
      Printf.printf "fabric: %s\n" (Fabric.describe fabric);
      Printf.printf "layers:";
      for l = 1 to Fabric.num_layers fabric - 1 do
        Printf.printf " L%d=%d" l
          (Array.length (Fabric.switches_at_layer fabric l))
      done;
      Printf.printf "; group: %d endpoints, source node %d\n"
        (List.length picks) source;
      (match Layer_peel.peel_general g ~source ~dests with
      | None -> print_endline "tree: destinations unreachable"
      | Some tree ->
          let cost = Tree.cost tree in
          (match Peel_steiner.Exact.oracle g ~source ~dests with
          | None ->
              Printf.printf "tree: %d links (oracle declined the instance)\n"
                cost
          | Some opt ->
              Printf.printf "tree: %d links; exact optimum %d; ratio %.3f\n"
                cost opt
                (float_of_int cost /. float_of_int (max 1 opt)));
          let rules = Layer_peel.port_set_rules g [ tree ] in
          Printf.printf "port-set rules: %d switch(es), %d total\n"
            (List.length rules)
            (List.fold_left (fun a (_, c) -> a + c) 0 rules))
    end;
    let ds = Peel_check.check_scenario fabric ~source ~dests in
    let planner_ds =
      match corrupt with
      | Some `Topo003 -> (
          match Layer_peel.peel_general g ~source ~dests with
          | None -> []
          | Some tree ->
              Peel_check.Check_topology.check_general_tree g
                (corrupt_zoo_tree g tree ~source)
                ~source ~dests)
      | Some `Topo004 -> (
          match Layer_peel.peel_general g ~source ~dests with
          | None -> []
          | Some tree -> (
              match Layer_peel.farthest_layer g ~source ~dests with
              | None -> []
              | Some far ->
                  (* An "oracle" one link better than the greedy: the
                     inconsistency TOPO004 exists to catch. *)
                  Peel_check.Check_topology.check_ratio
                    ~cost:(Tree.cost tree)
                    ~opt:(Tree.cost tree + 1)
                    ~far
                    ~ndests:(List.length dests)))
      | _ -> []
    in
    let ds = D.sort (ds @ planner_ds) in
    if ds <> [] && not quiet then Format.printf "%a" D.pp_report ds;
    let errs = D.errors ds in
    Printf.printf "zoo %s: %d finding(s), %d error(s)\n"
      (Zoo.cls_to_string (Zoo.cls z))
      (List.length ds) (List.length errs);
    if errs <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "zoo" ~exits:std_exits
       ~doc:
         "Generate a zoo topology (abfattree, VL2, Jellyfish, Xpander), plan \
          a multicast group with the generalized layer-peeling planner, \
          measure it against the exact-Steiner oracle and run the TOPO \
          lint battery; exit 1 on any error-severity diagnostic.")
    Term.(
      const run $ topo $ k $ da $ di $ size $ degree $ lift $ seed_term
      $ group $ fail_frac $ corrupt $ quiet)

(* ------------------------------------------------------------------ *)
(* state                                                               *)
(* ------------------------------------------------------------------ *)

let state_cmd =
  let k = Arg.(value & pos 0 int 64 & info [] ~docv:"K") in
  let run k =
    Printf.printf
      "k=%d fat-tree (%d hosts)\n  PEEL static rules per switch: %d\n  naive IP multicast: %.3e entries\n  reduction: %.1e x\n  header: %d bits (%d B)\n"
      k (k * k * k / 4)
      (Peel_prefix.Rules.peel_entries ~k)
      (Peel_prefix.Rules.naive_ipmc_entries ~k)
      (Peel_prefix.Rules.state_reduction_factor ~k)
      (Peel_prefix.Header.header_bits ~k)
      (Peel_prefix.Header.header_bytes ~k)
  in
  Cmd.v
    (Cmd.info "state" ~exits:std_exits ~doc:"Switch-state and header accounting for degree K.")
    Term.(const run $ k)

(* ------------------------------------------------------------------ *)
(* experiment                                                          *)
(* ------------------------------------------------------------------ *)

let experiment_cmd =
  let open Peel_experiments in
  let exps =
    [
      ("fig1", Exp_fig1.run); ("fig3", Exp_fig3.run); ("fig4", Exp_fig4.run);
      ("fig5", Exp_fig5.run); ("fig6", Exp_fig6.run); ("fig7", Exp_fig7.run);
      ("state", Exp_state.run); ("guard", Exp_guard.run);
      ("approx", Exp_approx.run); ("frag", Exp_frag.run);
      ("collectives", Exp_collectives.run); ("multipath", Exp_multipath.run);
      ("loss", Exp_loss.run); ("tenancy", Exp_tenancy.run);
      ("rail", Exp_rail.run); ("failover", Exp_failover.run);
      ("refine", Exp_refine.run); ("compile", Exp_compile.run);
      ("service", Exp_service.run); ("zoo", Exp_zoo.run);
    ]
  in
  let exp_name =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun (n, _) -> (n, n)) exps))) None
      & info [] ~docv:"NAME")
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Reduced trials.") in
  let run exp_name quick jobs =
    apply_jobs jobs;
    let mode = if quick then Common.Quick else Common.Full in
    (List.assoc exp_name exps) mode
  in
  Cmd.v
    (Cmd.info "experiment" ~exits:std_exits ~doc:"Regenerate a paper table/figure by name.")
    Term.(const run $ exp_name $ quick $ jobs_term)

let () =
  let info =
    Cmd.info "peel-cli" ~version:"0.1.0" ~exits:std_exits
      ~doc:"Scalable datacenter multicast for AI collectives (PEEL)."
  in
  (* Map cmdliner's evaluation outcome onto the documented convention:
     usage errors exit 2 rather than cmdliner's default 124.  Checker
     diagnostics exit 1 from within the subcommand itself. *)
  let cmd =
    Cmd.group info
      [
        plan_cmd; check_cmd; compile_cmd; simulate_cmd; trace_cmd;
        failover_cmd; refine_cmd; serve_cmd; collective_cmd; zoo_cmd;
        state_cmd; experiment_cmd;
      ]
  in
  exit
    (match Cmd.eval_value cmd with
    | Ok (`Ok ()) | Ok `Help | Ok `Version -> 0
    | Error (`Parse | `Term) -> 2
    | Error `Exn -> 125)
