#!/bin/sh
# Documentation and observability gate:
#   - `dune build @doc` must succeed (and, when odoc is installed,
#     render the API docs warning-free; without odoc the alias is
#     empty and this only checks the build graph)
#   - the @trace-smoke alias runs a small traced simulation end to end
#     under PEEL_CHECK=1 and lints the exported trace (SIM005/SIM006)
# Exits non-zero on the first failure.
set -eu
cd "$(dirname "$0")/.."

dune build @doc
if command -v odoc >/dev/null 2>&1; then
  dune build @doc-private
else
  echo "docs.sh: odoc not installed; skipped @doc-private rendering"
fi

dune build @trace-smoke
echo "docs.sh: OK"
