#!/bin/sh
# Documentation and observability gate:
#   - `dune build @doc` must succeed, and when odoc is installed the
#     rendering (public @doc and private @doc-private) must be
#     WARNING-FREE: odoc warnings (broken {!references}, missing
#     doc-comments on exposed items, bad markup) are promoted to
#     failures here, since odoc itself exits 0 on them. Without odoc
#     the @doc alias is empty and this only checks the build graph.
#   - the @trace-smoke alias runs a small traced simulation end to end
#     under PEEL_CHECK=1 and lints the exported trace (SIM005/SIM006)
# Exits non-zero on the first failure or odoc warning.
set -eu
cd "$(dirname "$0")/.."

build_warning_free() {
  alias=$1
  log=$(mktemp)
  # dune reports odoc warnings on stderr but still exits 0; capture
  # and grep so a warning fails the gate.
  if ! dune build "$alias" >"$log" 2>&1; then
    cat "$log"
    rm -f "$log"
    echo "docs.sh: dune build $alias failed" >&2
    exit 1
  fi
  if grep -qiE "^(File |.*[Ww]arning)" "$log"; then
    cat "$log"
    rm -f "$log"
    echo "docs.sh: odoc warnings in $alias are treated as errors" >&2
    exit 1
  fi
  rm -f "$log"
}

build_warning_free @doc
if command -v odoc >/dev/null 2>&1; then
  build_warning_free @doc-private
else
  echo "docs.sh: odoc not installed; skipped @doc-private rendering"
fi

dune build @trace-smoke
echo "docs.sh: OK"
