#!/bin/sh
# Run the static invariant lint battery: the @check-lint alias drives
# `peel_cli check` over representative fabrics (healthy, failed,
# budgeted), the @trace-smoke alias lints a traced simulation's export
# (SIM005/SIM006), the @failover-smoke alias lints mid-run failure
# injection with re-peeling (SIM007/TREE006), the @ctrl-smoke alias
# lints the two-stage refinement control plane (CTRL001-005), the
# @compile-smoke alias certifies the fleet-level rule compiler and
# proves every seeded table corruption is caught by its CMP code
# (CMP001-005), and the unit suite exercises every diagnostic code. The experiment-harness
# suite carries the parallel-sweep determinism gate: it re-runs the
# fig5 sweep under 1 and 4 worker domains and fails unless the rows
# are bit-identical. When odoc is installed the documentation gate
# (scripts/docs.sh) must also pass.
# Exits non-zero on the first violated invariant.
set -eu
cd "$(dirname "$0")/.."
dune build @check-lint
dune build @trace-smoke
dune build @failover-smoke
dune build @ctrl-smoke
dune build @compile-smoke
dune exec test/test_check.exe -- -c
dune exec test/test_compile.exe -- -c
dune exec test/test_experiments.exe -- -c
if command -v odoc >/dev/null 2>&1; then
  sh scripts/docs.sh
else
  echo "lint.sh: odoc not installed; skipped the docs gate (scripts/docs.sh)"
fi
