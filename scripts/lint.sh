#!/bin/sh
# Run the static invariant lint battery: the @check-lint alias drives
# `peel_cli check` over representative fabrics (healthy, failed,
# budgeted), the @trace-smoke alias lints a traced simulation's export
# (SIM005/SIM006), the @failover-smoke alias lints mid-run failure
# injection with re-peeling (SIM007/TREE006), and the unit suite
# exercises every diagnostic code.
# Exits non-zero on the first violated invariant.
set -eu
cd "$(dirname "$0")/.."
dune build @check-lint
dune build @trace-smoke
dune build @failover-smoke
dune exec test/test_check.exe -- -c
