#!/bin/sh
# Run the static invariant lint battery: the @check-lint alias drives
# `peel_cli check` over representative fabrics (healthy, failed,
# budgeted), the @trace-smoke alias lints a traced simulation's export
# (SIM005/SIM006), the @failover-smoke alias lints mid-run failure
# injection with re-peeling (SIM007/TREE006), the @ctrl-smoke alias
# lints the two-stage refinement control plane (CTRL001-005), the
# @par-smoke alias verifies the conservative sharded engine (jobs=1 vs
# jobs=4 bit-equality plus the SIM008 window-causality lint), the
# @compile-smoke alias certifies the fleet-level rule compiler and
# proves every seeded table corruption is caught by its CMP code
# (CMP001-005), the @zoo-smoke alias certifies generalized
# layer-peeling on every topology-zoo class and proves each seeded
# TOPO corruption is caught by its code (TOPO001-004), the
# @serve-scale-smoke alias certifies the million-group service fast
# path at a 10^5-group cell (jobs=1 vs jobs=4 vs cache-off replay
# equality, a clean SVC001-004 state lint at scale, and a seeded
# member-set corruption that must be diagnosed), and the unit suite
# exercises every diagnostic code. The experiment-harness
# suite carries the parallel-sweep determinism gate: it re-runs the
# fig5 sweep under 1 and 4 worker domains and fails unless the rows
# are bit-identical. The documentation gate lives in scripts/docs.sh
# (its own ci.sh stage).
# Exits non-zero on the first violated invariant.
set -eu
cd "$(dirname "$0")/.."
dune build @check-lint
dune build @trace-smoke
dune build @par-smoke
dune build @failover-smoke
dune build @ctrl-smoke
dune build @compile-smoke
dune build @zoo-smoke
dune build @serve-scale-smoke
dune exec test/test_check.exe -- -c
dune exec test/test_compile.exe -- -c
dune exec test/test_experiments.exe -- -c
