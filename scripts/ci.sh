#!/bin/sh
# The whole CI gate in one command, in dependency order:
#
#   1. build   — dune build (strict warnings are errors)
#   2. test    — dune runtest (unit, property, and differential suites)
#   3. lint    — scripts/lint.sh (static invariant battery: @check-lint,
#                @trace-smoke, @par-smoke, @failover-smoke, @ctrl-smoke,
#                @compile-smoke, diagnostic-code suites)
#   4. serve   — dune build @serve-smoke @serve-scale-smoke (the
#                open-loop service controller under the SVC lint
#                battery and the 1-vs-N-domain replay contract, plus
#                the million-group fast path at a 10^5-group cell)
#   5. docs    — scripts/docs.sh (@doc build; when odoc is installed
#                the rendering must be warning-free)
#   6. bench   — scripts/bench_guard.sh (deterministic drift guard
#                against the committed BENCH.json)
#
# Each stage is timed; the script exits non-zero at the first failure.
set -eu
cd "$(dirname "$0")/.."

stage() {
  name=$1
  shift
  echo "ci.sh: [$name] $*"
  start=$(date +%s)
  "$@"
  end=$(date +%s)
  echo "ci.sh: [$name] ok in $((end - start))s"
}

stage build dune build
stage test dune runtest
stage lint sh scripts/lint.sh
stage serve dune build @serve-smoke @serve-scale-smoke
stage docs sh scripts/docs.sh
stage bench sh scripts/bench_guard.sh
echo "ci.sh: all stages passed"
