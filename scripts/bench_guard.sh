#!/bin/sh
# Bench drift guard: recompute the deterministic sections of the
# benchmark record (headline CCTs, the Quick failover and refinement
# tables, and a jobs=1 vs jobs=4 sweep) and compare them against the
# committed BENCH.json.  The simulator is bit-deterministic, so any
# numeric drift beyond float round-trip tolerance means a behaviour
# change slipped in — exits non-zero so CI catches it.
#
# Equivalent to `dune build @bench-guard`.
set -eu
cd "$(dirname "$0")/.."
dune build bench/main.exe
exec ./_build/default/bench/main.exe guard
