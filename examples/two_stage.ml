(* Two-stage refinement (§3.3): a fragmented group launches instantly
   on its budget-1 static prefix rules — over-covered racks soak up
   real link bandwidth — and hands off to its exact per-group tree the
   moment the controller's TCAM installs land.  Sweeps the controller
   RPC latency and prints how much of the message rides each stage and
   what the waste costs, against the static-forever and IPMC
   (install-before-first-chunk) extremes.

   Run with:  dune exec examples/two_stage.exe *)

open Peel_topology
open Peel_workload
open Peel_ctrl
module Rng = Peel_util.Rng
module Trace = Peel_sim.Trace

let () =
  let fabric =
    Fabric.leaf_spine ~spines:4 ~leaves:8 ~hosts_per_leaf:2 ~gpus_per_host:2 ()
  in
  Printf.printf "%s\n\n" (Fabric.describe fabric);
  let groups =
    Spec.poisson_groups fabric (Rng.create 42) ~n:4 ~scale:8
      ~bytes:64e6 ~load:0.5 ~hold:0.05 ~fragmentation:0.6 ()
  in
  Printf.printf
    "4 groups of 8 GPUs x 64 MB in 16 chunks, fragmented placement\n\n";
  let run scheme rpc =
    let trace = Trace.create ~level:Trace.Counters () in
    let cfg = { Controller.default_config with Controller.rpc; capacity = 8 } in
    let out = Refine.run ~chunks:16 ~cfg ~trace fabric scheme groups in
    (out, (Trace.counters trace).Trace.bytes_reserved)
  in
  let static_out, static_bytes = run Refine.Peel_static 0.0 in
  Printf.printf
    "PEEL-static : %7.3f GB on the wire, %.3f GB of it over-cover waste\n"
    (static_bytes /. 1e9)
    (Refine.total_overcover_bytes static_out /. 1e9);
  List.iter
    (fun rpc ->
      let out, bytes = run Refine.Peel_refined rpc in
      let total = Refine.static_chunks out + Refine.refined_chunks out in
      Printf.printf
        "PEEL-refined: %7.3f GB (rpc %4.1f ms): %2d%% of chunks on exact \
         rules, %.3f GB saved vs static\n"
        (bytes /. 1e9) (rpc *. 1e3)
        (100 * Refine.refined_chunks out / max 1 total)
        ((static_bytes -. bytes) /. 1e9))
    [ 0.2e-3; 1e-3; 4e-3 ];
  let ipmc_out, ipmc_bytes = run Refine.Ipmc 1e-3 in
  Printf.printf
    "IPMC        : %7.3f GB (rpc  1.0 ms): zero waste, but every group \
     stalls %d installs before its first chunk\n"
    (ipmc_bytes /. 1e9)
    (Controller.installs ipmc_out.Refine.controller);
  Printf.printf
    "\nThe refined rows converge on static as rpc approaches the send \
     window:\nwhat refinement buys is exactly the over-cover bytes it \
     cancels in time.\n"
