(** Static equivalence checker for compiled rule tables.

    Runs entirely on the compiler's output — no simulation — and pins
    each finding to a stable CMP code (DESIGN.md invariant table):

    - {b CMP001} compiled-vs-planned delivery equivalence: replaying a
      group's headers through the compiled tables must reach every rack
      the refined exact entry ({!Peel.Dataplane.deliver_exact}) reaches;
      an unaggregated compile must match the planned static data plane
      rack-for-rack.
    - {b CMP002} no shadowed or unreachable rules under longest-prefix
      -match priority order: no duplicate entries, no entry listed after
      an ancestor that would always match first, no entry no batch
      header selects, and owner records that agree with an LPM replay.
    - {b CMP003} overlap/conflict between aggregated entries: every
      entry's port set must equal its prefix block (the group-independent
      static rule, cross-checked against {!Peel_prefix.Rules.lookup}),
      and nested entries must replicate within their ancestor's ports.
    - {b CMP004} TCAM budget proof: every compiled table within the
      declared per-switch entry budget, with exact byte footprints in
      the message.
    - {b CMP005} aggregation soundness: every entry's port set is
      exactly the union of its source prefixes' blocks — merging may
      coarsen {e which} rule serves a header, never {e where} the union
      of installed rules replicates. *)

open Peel_topology

val check_equivalence : Fabric.t -> Compile.t -> Peel_check.Diagnostic.t list
(** CMP001 over every group of the batch. *)

val check_reachability : Compile.t -> Peel_check.Diagnostic.t list
(** CMP002 over every table. *)

val check_conflicts : Compile.t -> Peel_check.Diagnostic.t list
(** CMP003 over every table. *)

val check_budget : Compile.t -> Peel_check.Diagnostic.t list
(** CMP004; empty when the compile carried no capacity. *)

val check_aggregation : Compile.t -> Peel_check.Diagnostic.t list
(** CMP005 over every entry. *)

val check : Fabric.t -> Compile.t -> Peel_check.Diagnostic.t list
(** All of the above, sorted errors-first (CMP codes ascending within a
    severity). *)
