open Peel_prefix
module D = Peel_check.Diagnostic
module Plan = Peel.Plan
module Dataplane = Peel.Dataplane

(* Total prefix renderer: the checker runs on adversarial tables, so
   an out-of-space prefix must label a finding, not crash it. *)
let pstr m (p : Cover.prefix) =
  match Cover.to_string ~m p with
  | s -> s
  | exception Invalid_argument _ ->
      Printf.sprintf "{value=%d; len=%d}" p.Cover.value p.Cover.len

let eloc (tb : Compile.table) (e : Compile.entry) =
  Printf.sprintf "%s %s"
    (Compile.switch_to_string tb.Compile.switch)
    (pstr tb.Compile.id_bits e.Compile.prefix)

let subset a b = List.for_all (fun x -> List.mem x b) a

(* ------------------------------------------------------------------ *)
(* CMP001: compiled delivery == planned delivery                       *)
(* ------------------------------------------------------------------ *)

let check_equivalence fabric (t : Compile.t) =
  List.concat_map
    (fun (gid, (plan : Plan.t)) ->
      let loc = Printf.sprintf "group %d" gid in
      if plan.Plan.dests = [] then []
      else
        match
          let exact =
            Dataplane.deliver_exact fabric
              (Dataplane.exact_entry fabric ~group:gid ~members:plan.Plan.dests)
          in
          let reached = Compile.deliver_group fabric t ~group:gid in
          let planned =
            if t.Compile.aggregated then []
            else
              Dataplane.deliver fabric plan
              |> List.concat_map (fun d -> d.Dataplane.tors_reached)
              |> List.sort_uniq compare
          in
          (exact, reached, planned)
        with
        | exception Invalid_argument msg ->
            [ D.errorf ~code:"CMP001" ~loc "replay failed: %s" msg ]
        | exact, reached, planned ->
            let missing = List.filter (fun r -> not (List.mem r reached)) exact in
            let miss_ds =
              List.map
                (fun r ->
                  D.errorf ~code:"CMP001" ~loc
                    "compiled tables never reach member rack %d" r)
                missing
            in
            if t.Compile.aggregated then miss_ds
            else if
              (* Without aggregation the compiled tables are exactly the
                 used subset of the static tables: delivery must match
                 the planned static pipeline rack-for-rack. *)
              reached <> planned
            then
                miss_ds
                @ [
                    D.errorf ~code:"CMP001" ~loc
                      "unaggregated compile reaches %d racks, the planned data \
                       plane %d: the compiled tables are not \
                       delivery-equivalent"
                      (List.length reached) (List.length planned);
                  ]
              else miss_ds)
    t.Compile.batch

(* ------------------------------------------------------------------ *)
(* CMP002: no shadowed / unreachable rules                             *)
(* ------------------------------------------------------------------ *)

(* Replay every batch header through the tables as compiled (list
   order, first-ancestor-wins) and record which entry each header
   selects and for which group. *)
let replay_owners (t : Compile.t) =
  let owner_map : (Compile.switch * Cover.prefix, int list) Hashtbl.t =
    Hashtbl.create 64
  in
  let own sw tb gid header =
    match Compile.lpm tb header with
    | None -> ()
    | Some e ->
        let key = (sw, e.Compile.prefix) in
        let prev = Option.value (Hashtbl.find_opt owner_map key) ~default:[] in
        if not (List.mem gid prev) then Hashtbl.replace owner_map key (gid :: prev)
  in
  List.iter
    (fun (gid, (plan : Plan.t)) ->
      List.iter
        (fun (p : Plan.packet) ->
          (match (p.Plan.pod_prefix, Compile.find_table t Compile.Core) with
          | Some pp, Some tb -> own Compile.Core tb gid pp
          | _ -> ());
          List.iter
            (fun pod ->
              match Compile.find_table t (Compile.Agg pod) with
              | Some tb -> own (Compile.Agg pod) tb gid p.Plan.tor_prefix
              | None -> ())
            p.Plan.pods)
        plan.Plan.packets)
    t.Compile.batch;
  owner_map

let check_reachability (t : Compile.t) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let owner_map = replay_owners t in
  List.iter
    (fun (tb : Compile.table) ->
      let seen = Hashtbl.create 16 in
      List.iteri
        (fun i (e : Compile.entry) ->
          if Hashtbl.mem seen e.Compile.prefix then
            add
              (D.errorf ~code:"CMP002" ~loc:(eloc tb e)
                 "duplicate entry: the later copy is shadowed under LPM \
                  priority order")
          else begin
            (* An earlier strict ancestor always matches first for any
               header under this entry: priority inversion. *)
            List.iteri
              (fun j (prev : Compile.entry) ->
                if
                  j < i
                  && prev.Compile.prefix <> e.Compile.prefix
                  && Cover.is_ancestor prev.Compile.prefix e.Compile.prefix
                then
                  add
                    (D.errorf ~code:"CMP002" ~loc:(eloc tb e)
                       "shadowed by earlier ancestor %s: LPM priority order \
                        requires longer prefixes first"
                       (pstr tb.Compile.id_bits prev.Compile.prefix)))
              tb.Compile.entries;
            Hashtbl.replace seen e.Compile.prefix ()
          end;
          let computed =
            List.sort compare
              (Option.value
                 (Hashtbl.find_opt owner_map (tb.Compile.switch, e.Compile.prefix))
                 ~default:[])
          in
          if computed = [] then
            add
              (D.errorf ~code:"CMP002" ~loc:(eloc tb e)
                 "unreachable: no header of the compiled batch selects this \
                  entry")
          else if computed <> e.Compile.owners then
            add
              (D.errorf ~code:"CMP002" ~loc:(eloc tb e)
                 "owner record [%s] disagrees with the LPM replay [%s]"
                 (String.concat "," (List.map string_of_int e.Compile.owners))
                 (String.concat "," (List.map string_of_int computed))))
        tb.Compile.entries)
    t.Compile.tables;
  List.rev !ds

(* ------------------------------------------------------------------ *)
(* CMP003: overlap / conflict between aggregated entries               *)
(* ------------------------------------------------------------------ *)

let check_conflicts (t : Compile.t) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  List.iter
    (fun (tb : Compile.table) ->
      (* Static rules are the per-prefix ground truth: every compiled
         entry must replicate to exactly its block. *)
      let static = Rules.static_table ~m:tb.Compile.id_bits in
      List.iter
        (fun (e : Compile.entry) ->
          (match Rules.lookup static e.Compile.prefix with
          | r ->
              if e.Compile.ports <> r.Rules.ports then
                add
                  (D.errorf ~code:"CMP003" ~loc:(eloc tb e)
                     "port set [%s] conflicts with the prefix block [%s]"
                     (String.concat "," (List.map string_of_int e.Compile.ports))
                     (String.concat "," (List.map string_of_int r.Rules.ports)))
          | exception Invalid_argument msg ->
              add (D.errorf ~code:"CMP003" ~loc:(eloc tb e) "%s" msg));
          (* Nested entries of different groups must agree where their
             blocks overlap: the inner rule's ports within the outer's. *)
          List.iter
            (fun (outer : Compile.entry) ->
              if
                outer.Compile.prefix <> e.Compile.prefix
                && Cover.is_ancestor outer.Compile.prefix e.Compile.prefix
                && not (subset e.Compile.ports outer.Compile.ports)
              then
                add
                  (D.errorf ~code:"CMP003" ~loc:(eloc tb e)
                     "replicates outside enclosing entry %s: overlapping \
                      entries conflict"
                     (pstr tb.Compile.id_bits outer.Compile.prefix)))
            tb.Compile.entries)
        tb.Compile.entries)
    t.Compile.tables;
  List.rev !ds

(* ------------------------------------------------------------------ *)
(* CMP004: TCAM budget proof                                           *)
(* ------------------------------------------------------------------ *)

let check_budget (t : Compile.t) =
  match t.Compile.capacity with
  | None -> []
  | Some cap ->
      List.filter_map
        (fun (tb : Compile.table) ->
          let n = List.length tb.Compile.entries in
          if n > cap then
            Some
              (D.errorf ~code:"CMP004"
                 ~loc:(Compile.switch_to_string tb.Compile.switch)
                 "%d entries (%d bytes) exceed the TCAM budget of %d entries" n
                 (Compile.table_bytes tb) cap)
          else None)
        t.Compile.tables

(* ------------------------------------------------------------------ *)
(* CMP005: aggregation soundness                                       *)
(* ------------------------------------------------------------------ *)

let check_aggregation (t : Compile.t) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  List.iter
    (fun (tb : Compile.table) ->
      let m = tb.Compile.id_bits in
      List.iter
        (fun (e : Compile.entry) ->
          if e.Compile.sources = [] then
            add
              (D.errorf ~code:"CMP005" ~loc:(eloc tb e)
                 "no sources recorded: cannot prove what this entry merged")
          else begin
            List.iter
              (fun s ->
                match Cover.validate ~m s with
                | exception Invalid_argument msg ->
                    add (D.errorf ~code:"CMP005" ~loc:(eloc tb e) "source: %s" msg)
                | () ->
                    if not (Cover.is_ancestor e.Compile.prefix s) then
                      add
                        (D.errorf ~code:"CMP005" ~loc:(eloc tb e)
                           "source %s lies outside the merged block"
                           (pstr m s)))
              e.Compile.sources;
            let union =
              List.concat_map
                (fun s ->
                  match Cover.expand ~m s with
                  | ports -> ports
                  | exception Invalid_argument _ -> [])
                e.Compile.sources
              |> List.sort_uniq compare
            in
            if union <> e.Compile.ports then
              add
                (D.errorf ~code:"CMP005" ~loc:(eloc tb e)
                   "port set is not the union of its sources' blocks ([%s] vs \
                    [%s]): the merge changed where the table replicates"
                   (String.concat "," (List.map string_of_int e.Compile.ports))
                   (String.concat "," (List.map string_of_int union)))
          end)
        tb.Compile.entries)
    t.Compile.tables;
  List.rev !ds

let check fabric t =
  D.sort
    (check_reachability t @ check_conflicts t @ check_budget t
   @ check_aggregation t @ check_equivalence fabric t)
