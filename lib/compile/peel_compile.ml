(** Fleet-level rule compiler: lower a batch of per-group send plans
    into concrete per-switch tables ({!Compile}), with a static
    equivalence checker over stable CMP codes ({!Check_compile}).

    {!compile} is the checked front door: under [PEEL_CHECK=1]
    ({!Peel_check.enabled}) every compile is re-proved equivalent
    before it is returned. *)

module Compile = Compile
module Check_compile = Check_compile

let compile ?capacity ?aggregate fabric batch =
  let t = Compile.compile ?capacity ?aggregate fabric batch in
  if Peel_check.enabled () then
    Peel_check.assert_valid ~what:"compiled rule tables"
      (Check_compile.check fabric t);
  t
