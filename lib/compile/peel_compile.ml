(** Fleet-level rule compiler: lower a batch of per-group send plans
    into concrete per-switch tables ({!Compile}), with a static
    equivalence checker over stable CMP codes ({!Check_compile}).

    {!compile} is the checked front door: under [PEEL_CHECK=1]
    ({!Peel_check.enabled}) every compile is re-proved equivalent
    before it is returned. *)

module Compile = Compile
module Check_compile = Check_compile

let compile ?capacity ?aggregate fabric batch =
  let t = Compile.compile ?capacity ?aggregate fabric batch in
  if Peel_check.enabled () then
    Peel_check.assert_valid ~what:"compiled rule tables"
      (Check_compile.check fabric t);
  t

(* Entry count of an unaggregated compile, for callers that discard
   the tables themselves (the service flush hot path).  In debug mode
   ([PEEL_CHECK=1]) the full checked compile runs instead, so every
   flushed batch is still re-proved equivalent — and the counts agree
   by construction. *)
let count_entries fabric batch =
  if Peel_check.enabled () then Compile.total_entries (compile fabric batch)
  else Compile.count_entries fabric batch
