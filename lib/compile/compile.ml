open Peel_topology
open Peel_prefix
module Plan = Peel.Plan
module Bits = Peel_util.Bits

type switch = Core | Agg of int

let switch_to_string = function
  | Core -> "core"
  | Agg pod -> Printf.sprintf "agg[pod %d]" pod

type entry = {
  prefix : Cover.prefix;
  ports : int list;
  owners : int list;
  sources : Cover.prefix list;
}

type table = { switch : switch; id_bits : int; entries : entry list }

type t = {
  capacity : int option;
  aggregated : bool;
  merges : int;
  m_tor : int;
  m_pod : int;
  tables : table list;
  batch : (int * Plan.t) list;
}

(* ------------------------------------------------------------------ *)
(* Longest-prefix match                                                *)
(* ------------------------------------------------------------------ *)

(* Entries are kept in LPM priority order (longer len first), so the
   first ancestor hit is the longest. *)
let lpm (tb : table) header =
  List.find_opt (fun e -> Cover.is_ancestor e.prefix header) tb.entries

let find_table t switch =
  List.find_opt (fun tb -> tb.switch = switch) t.tables

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

(* A working entry during merging: how many (packet, pod) header uses
   select it (the greedy's waste weight) and which original prefixes
   it absorbed. *)
type work = { mutable uses : int; mutable sources : Cover.prefix list }

(* One aggregation move at a working table.  [saved] is the entry-count
   reduction; [cost] the identifier-space over-delivery it introduces
   (block growth x header uses) — the greedy picks the cheapest cost
   per entry saved. *)
type move = {
  saved : int;
  cost : int;
  at : Cover.prefix; (* the resulting (parent / ancestor) entry *)
  drop : Cover.prefix list;
}

let block ~m p = Bits.pow2 (m - p.Cover.len)

(* Nearest strict ancestor of [p] present in [tbl]. *)
let nearest_ancestor tbl p =
  let rec go q =
    match Cover.parent q with
    | None -> None
    | Some a -> if Hashtbl.mem tbl a then Some a else go a
  in
  go p

let candidate_moves ~m tbl =
  let entries =
    Hashtbl.fold (fun p (w : work) l -> (p, w) :: l) tbl []
    |> List.sort (fun (a, _) (b, _) ->
           compare (a.Cover.len, a.Cover.value) (b.Cover.len, b.Cover.value))
  in
  List.concat_map
    (fun ((p : Cover.prefix), (w : work)) ->
      let fold_move =
        match nearest_ancestor tbl p with
        | None -> []
        | Some a ->
            [
              {
                saved = 1;
                cost = (block ~m a - block ~m p) * w.uses;
                at = a;
                drop = [ p ];
              };
            ]
      in
      let pair_move =
        match Cover.sibling p with
        | None -> []
        | Some s when s.Cover.value > p.Cover.value -> (
            (* Consider each sibling pair once, from the left child. *)
            match Hashtbl.find_opt tbl s with
            | None -> []
            | Some (sw : work) ->
                let parent = Option.get (Cover.parent p) in
                let saved = if Hashtbl.mem tbl parent then 2 else 1 in
                let cost =
                  ((block ~m parent - block ~m p) * w.uses)
                  + ((block ~m parent - block ~m s) * sw.uses)
                in
                [ { saved; cost; at = parent; drop = [ p; s ] } ])
        | Some _ -> []
      in
      fold_move @ pair_move)
    entries

(* Deterministic total order: min cost per entry saved first (compared
   exactly via cross-multiplication), then the bigger reduction, then
   the deeper and lower-valued target. *)
let better a b =
  let c = compare (a.cost * b.saved) (b.cost * a.saved) in
  if c <> 0 then c < 0
  else
    let c = compare b.saved a.saved in
    if c <> 0 then c < 0
    else
      compare
        (- a.at.Cover.len, a.at.Cover.value)
        (- b.at.Cover.len, b.at.Cover.value)
      < 0

let apply_move tbl mv =
  let moved_uses = ref 0 and moved_sources = ref [] in
  List.iter
    (fun p ->
      match Hashtbl.find_opt tbl p with
      | None -> assert false
      | Some (w : work) ->
          moved_uses := !moved_uses + w.uses;
          moved_sources := w.sources @ !moved_sources;
          Hashtbl.remove tbl p)
    mv.drop;
  match Hashtbl.find_opt tbl mv.at with
  | Some (w : work) ->
      w.uses <- w.uses + !moved_uses;
      w.sources <- !moved_sources @ w.sources
  | None -> Hashtbl.add tbl mv.at { uses = !moved_uses; sources = !moved_sources }

(* Merge [tbl] down to at most [target] entries (0 = as small as sound
   merging can go).  Returns the number of moves applied. *)
let merge_down ~m ~target tbl =
  let merges = ref 0 in
  let continue_ = ref true in
  while !continue_ && Hashtbl.length tbl > target do
    match candidate_moves ~m tbl with
    | [] -> continue_ := false
    | mv :: rest ->
        let best = List.fold_left (fun b c -> if better c b then c else b) mv rest in
        apply_move tbl best;
        incr merges
  done;
  !merges

let validate_batch ~m_tor ~m_pod batch =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (gid, _) ->
      if Hashtbl.mem seen gid then
        invalid_arg (Printf.sprintf "Compile.compile: duplicate group id %d" gid);
      Hashtbl.replace seen gid ())
    batch;
  (* Validate every plan prefix against the fabric's id spaces before
     touching any table — a foreign plan must not poison the batch. *)
  List.iter
    (fun (gid, (plan : Plan.t)) ->
      List.iter
        (fun (p : Plan.packet) ->
          (try Cover.validate ~m:m_tor p.Plan.tor_prefix
           with Invalid_argument msg ->
             invalid_arg
               (Printf.sprintf "Compile.compile: group %d: ToR prefix: %s" gid msg));
          match p.Plan.pod_prefix with
          | None -> ()
          | Some pp -> (
              try Cover.validate ~m:m_pod pp
              with Invalid_argument msg ->
                invalid_arg
                  (Printf.sprintf "Compile.compile: group %d: pod prefix: %s" gid
                     msg)))
        plan.Plan.packets)
    batch

let compile ?capacity ?(aggregate = false) fabric batch =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Compile.compile: capacity must be >= 1"
  | _ -> ());
  let m_tor = Plan.tor_id_bits fabric in
  let m_pod = Plan.pod_id_bits fabric in
  validate_batch ~m_tor ~m_pod batch;
  (* Collect header uses per logical switch; dedup falls out of the
     prefix-keyed working tables. *)
  let working : (switch, (Cover.prefix, work) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let use sw prefix =
    let tbl =
      match Hashtbl.find_opt working sw with
      | Some tbl -> tbl
      | None ->
          let tbl = Hashtbl.create 8 in
          Hashtbl.add working sw tbl;
          tbl
    in
    match Hashtbl.find_opt tbl prefix with
    | Some (w : work) -> w.uses <- w.uses + 1
    | None -> Hashtbl.add tbl prefix { uses = 1; sources = [ prefix ] }
  in
  List.iter
    (fun (_gid, (plan : Plan.t)) ->
      List.iter
        (fun (p : Plan.packet) ->
          (match p.Plan.pod_prefix with None -> () | Some pp -> use Core pp);
          List.iter (fun pod -> use (Agg pod) p.Plan.tor_prefix) p.Plan.pods)
        plan.Plan.packets)
    batch;
  (* Aggregate over-budget tables. *)
  let merges = ref 0 in
  if aggregate then begin
    let target = Option.value capacity ~default:0 in
    Hashtbl.iter
      (fun sw tbl ->
        let m = match sw with Core -> m_pod | Agg _ -> m_tor in
        if Hashtbl.length tbl > target then
          merges := !merges + merge_down ~m ~target tbl)
      working
  end;
  (* Freeze tables in LPM priority order, Core first then pods. *)
  let freeze sw =
    match Hashtbl.find_opt working sw with
    | None -> []
    | Some tbl ->
        let m = match sw with Core -> m_pod | Agg _ -> m_tor in
        let entries =
          Hashtbl.fold
            (fun p (w : work) l ->
              {
                prefix = p;
                ports = Cover.expand ~m p;
                owners = [];
                sources =
                  List.sort
                    (fun a b ->
                      compare
                        (a.Cover.value * Bits.pow2 (m - a.Cover.len))
                        (b.Cover.value * Bits.pow2 (m - b.Cover.len)))
                    w.sources;
              }
              :: l)
            tbl []
          |> List.sort (fun a b ->
                 compare
                   (- a.prefix.Cover.len, a.prefix.Cover.value)
                   (- b.prefix.Cover.len, b.prefix.Cover.value))
        in
        [ { switch = sw; id_bits = m; entries } ]
  in
  let pods_used =
    Hashtbl.fold
      (fun sw _ l -> match sw with Agg pod -> pod :: l | Core -> l)
      working []
    |> List.sort compare
  in
  let tables = freeze Core @ List.concat_map (fun pod -> freeze (Agg pod)) pods_used in
  (* Replay every header to stamp owners: the groups whose packets
     longest-prefix-match each entry. *)
  let owner_map : (switch * Cover.prefix, int list) Hashtbl.t = Hashtbl.create 64 in
  let own sw tb gid header =
    match lpm tb header with
    | None -> ()
    | Some e ->
        let key = (sw, e.prefix) in
        let prev = Option.value (Hashtbl.find_opt owner_map key) ~default:[] in
        if not (List.mem gid prev) then Hashtbl.replace owner_map key (gid :: prev)
  in
  let table_of sw = List.find_opt (fun tb -> tb.switch = sw) tables in
  List.iter
    (fun (gid, (plan : Plan.t)) ->
      List.iter
        (fun (p : Plan.packet) ->
          (match (p.Plan.pod_prefix, table_of Core) with
          | Some pp, Some tb -> own Core tb gid pp
          | _ -> ());
          List.iter
            (fun pod ->
              match table_of (Agg pod) with
              | Some tb -> own (Agg pod) tb gid p.Plan.tor_prefix
              | None -> ())
            p.Plan.pods)
        plan.Plan.packets)
    batch;
  let tables =
    List.map
      (fun tb ->
        {
          tb with
          entries =
            List.map
              (fun e ->
                {
                  e with
                  owners =
                    List.sort compare
                      (Option.value
                         (Hashtbl.find_opt owner_map (tb.switch, e.prefix))
                         ~default:[]);
                })
              tb.entries;
        })
      tables
  in
  { capacity; aggregated = aggregate; merges = !merges; m_tor; m_pod; tables; batch }

(* ------------------------------------------------------------------ *)
(* Compiled data plane                                                 *)
(* ------------------------------------------------------------------ *)

let deliver_group fabric t ~group =
  let plan =
    match List.assoc_opt group t.batch with
    | Some p -> p
    | None ->
        invalid_arg
          (Printf.sprintf "Compile.deliver_group: group %d not in the compiled batch"
             group)
  in
  let core = find_table t Core in
  let npods = Fabric.pods fabric in
  List.concat_map
    (fun (p : Plan.packet) ->
      let pods =
        match p.Plan.pod_prefix with
        | None -> [ 0 ]
        | Some pp -> (
            (* Wire round-trip, then LPM at the core tier. *)
            let wire = Header.encode ~m:t.m_pod pp in
            let decoded = Header.decode ~m:t.m_pod wire.Header.raw in
            match core with
            | None -> []
            | Some tb -> (
                match lpm tb decoded with
                | None -> []
                | Some e -> List.filter (fun pod -> pod < npods) e.ports))
      in
      let wire = Header.encode ~m:t.m_tor p.Plan.tor_prefix in
      let decoded = Header.decode ~m:t.m_tor wire.Header.raw in
      List.concat_map
        (fun pod ->
          match find_table t (Agg pod) with
          | None -> [] (* no rule at this pod's tier: dropped *)
          | Some tb -> (
              match lpm tb decoded with
              | None -> []
              | Some e ->
                  let racks = Fabric.tors_of_pod fabric pod in
                  List.filter_map
                    (fun idx ->
                      if idx < Array.length racks then Some racks.(idx) else None)
                    e.ports))
        pods)
    plan.Plan.packets
  |> List.sort_uniq compare

let group_waste fabric t ~group =
  let plan = List.assoc group t.batch in
  let member = Hashtbl.create 64 in
  List.iter
    (fun d -> Hashtbl.replace member (Fabric.attach_tor fabric d) ())
    plan.Plan.dests;
  List.filter (fun r -> not (Hashtbl.mem member r)) (deliver_group fabric t ~group)

(* ------------------------------------------------------------------ *)
(* Footprint accounting                                                *)
(* ------------------------------------------------------------------ *)

let entry_bytes ~m =
  Bits.ceil_div (m + Bits.ceil_log2 (m + 1)) 8 + Bits.ceil_div (Bits.pow2 m) 8

let table_bytes tb = List.length tb.entries * entry_bytes ~m:tb.id_bits

let footprint t =
  List.map (fun tb -> (tb.switch, List.length tb.entries, table_bytes tb)) t.tables

let max_entries t =
  List.fold_left (fun acc tb -> max acc (List.length tb.entries)) 0 t.tables

let total_entries t =
  List.fold_left (fun acc tb -> acc + List.length tb.entries) 0 t.tables

(* [total_entries (compile fabric batch)] without freezing tables,
   stamping owners or replaying headers: the unaggregated entry count
   is the number of distinct (switch, prefix) uses, which the
   collection pass alone determines.  Validation (duplicate gids,
   foreign prefixes) raises exactly as [compile] would. *)
let count_entries fabric batch =
  let m_tor = Plan.tor_id_bits fabric in
  let m_pod = Plan.pod_id_bits fabric in
  validate_batch ~m_tor ~m_pod batch;
  let used : (switch * Cover.prefix, unit) Hashtbl.t = Hashtbl.create 64 in
  let n = ref 0 in
  let use sw prefix =
    let key = (sw, prefix) in
    if not (Hashtbl.mem used key) then begin
      Hashtbl.replace used key ();
      incr n
    end
  in
  List.iter
    (fun (_gid, (plan : Plan.t)) ->
      List.iter
        (fun (p : Plan.packet) ->
          (match p.Plan.pod_prefix with None -> () | Some pp -> use Core pp);
          List.iter (fun pod -> use (Agg pod) p.Plan.tor_prefix) p.Plan.pods)
        plan.Plan.packets)
    batch;
  !n

let fits t =
  match t.capacity with
  | None -> true
  | Some c -> List.for_all (fun tb -> List.length tb.entries <= c) t.tables
