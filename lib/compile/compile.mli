(** Fleet-level rule compiler (ROADMAP item 5): lower a whole batch of
    per-group send plans into concrete per-switch rule tables, sharing
    state across groups.

    The seed's data plane is "deploy-once": every aggregation switch
    holds the full [2^(m+1) - 1] static prefix table whether or not any
    running group uses a given rule.  This compiler instead installs
    exactly what a batch of concurrent groups needs:

    - {b dedup} — a prefix used by several groups becomes one shared
      entry (static rules are group-independent, so sharing is free);
    - {b aggregation} — when a per-switch entry budget is exceeded,
      sibling prefix pairs collapse into their parent and entries
      nested under an installed ancestor are dropped.  Lookup is
      longest-prefix-match, so plans keep their original headers: a
      header whose exact entry was merged away falls through to the
      nearest installed ancestor and replicates to the (larger) parent
      block.  Merging preserves the {e union} of installed blocks
      exactly; the price is per-group over-delivery (waste racks),
      never a missed member.

    Every merged entry records its pre-merge [sources], so the
    {!Check_compile} equivalence checker can prove aggregation
    soundness (CMP005: a merged rule's port set is the union of its
    sources') and per-group delivery equivalence (CMP001) statically,
    without running a simulation. *)

open Peel_topology
open Peel_prefix

type switch = Core | Agg of int  (** [Agg pod] — that pod's aggregation tier *)

val switch_to_string : switch -> string
(** ["core"] / ["agg[pod 3]"]. *)

type entry = {
  prefix : Cover.prefix;
  ports : int list;
      (** replication ports — the prefix's full block, ascending *)
  owners : int list;
      (** group ids whose headers longest-prefix-match this entry,
          ascending; never empty in a well-formed table *)
  sources : Cover.prefix list;
      (** the pre-aggregation prefixes folded into this entry, sorted
          by block start; [\[prefix\]] when unmerged *)
}

type table = {
  switch : switch;
  id_bits : int;       (** match-field width [m] of this table *)
  entries : entry list;
      (** longest-prefix-match priority order: longer [len] first,
          then ascending [value] *)
}

type t = {
  capacity : int option;  (** the per-switch entry budget compiled against *)
  aggregated : bool;
  merges : int;           (** sibling collapses + ancestor folds performed *)
  m_tor : int;
  m_pod : int;
  tables : table list;    (** [Core] first (multi-pod fabrics only), then
                              [Agg] pods ascending *)
  batch : (int * Peel.Plan.t) list;  (** the compiled input, in input order *)
}

val compile :
  ?capacity:int -> ?aggregate:bool -> Fabric.t -> (int * Peel.Plan.t) list -> t
(** Compile a batch of [(group, plan)] pairs.  Entries are deduplicated
    across groups always; with [aggregate] (default false) tables over
    [capacity] are additionally merged — cheapest waste first — until
    they fit (or no sound merge remains; see {!fits}).  [aggregate]
    without [capacity] merges each table to its minimum (the canonical
    exact cover of the union of used blocks).  Raises
    [Invalid_argument] on duplicate group ids or a plan whose prefixes
    fall outside the fabric's id spaces. *)

val lpm : table -> Cover.prefix -> entry option
(** The longest installed prefix whose block contains the header's
    block — the compiled data plane's match step.  [None] = no rule,
    packet dropped. *)

val deliver_group : Fabric.t -> t -> group:int -> int list
(** Replay every packet of [group]'s plan through the compiled tables
    (encode -> LPM -> replicate): ToR node ids reached, ascending.
    Raises [Invalid_argument] if the group is not in the batch. *)

val group_waste : Fabric.t -> t -> group:int -> int list
(** Reached racks housing no destination of the group — the plan's own
    budgeted over-cover plus any aggregation-induced over-delivery. *)

val entry_bytes : m:int -> int
(** Exact hardware footprint of one entry in an [m]-bit table: the
    [<value,len>] match field plus a [2^m]-wide port bitmap, in whole
    bytes. *)

val table_bytes : table -> int
(** {!entry_bytes} summed over the table's entries. *)

val footprint : t -> (switch * int * int) list
(** Per switch: [(switch, entries, bytes)], in table order. *)

val max_entries : t -> int
(** Busiest compiled table — the number CMP004 proves against the
    budget. *)

val total_entries : t -> int
(** Entries summed over every compiled table. *)

val count_entries : Fabric.t -> (int * Peel.Plan.t) list -> int
(** [total_entries (compile fabric batch)] without building the
    tables: the unaggregated entry count is the number of distinct
    (switch, prefix) pairs the batch uses, determined by the
    collection pass alone.  Validates the batch (duplicate group ids,
    foreign prefixes) exactly as {!compile} does.  The service's flush
    hot path uses this when only the count is consumed. *)

val fits : t -> bool
(** Every table within [capacity] ([true] when no capacity was
    given). *)

val find_table : t -> switch -> table option
(** The compiled table installed at [switch], if any. *)
