(* Generic slot arena with free-list recycling and generation counters.
   Columns of actual data live outside (SoA style, as in Peel_sim.Soa);
   the arena only hands out slot indices and tracks liveness.  A slot's
   generation bumps on every [free], so a stale handle (slot, gen) from
   before recycling can be detected — the service's SVC004 departed-
   group lint leans on this. *)

type t = {
  mutable cap : int;
  mutable gen : int array;      (* generation per slot; bumped on free *)
  mutable live : Bytes.t;       (* 1 = allocated, 0 = free *)
  mutable free_list : int list; (* recycled slots, most recently freed first *)
  mutable next_fresh : int;     (* first never-allocated slot *)
  mutable n_live : int;
}

let create ?(initial = 16) () =
  let cap = max 1 initial in
  {
    cap;
    gen = Array.make cap 0;
    live = Bytes.make cap '\000';
    free_list = [];
    next_fresh = 0;
    n_live = 0;
  }

let capacity t = t.cap
let live_count t = t.n_live

let grow t want =
  let cap' = ref (max 1 t.cap) in
  while !cap' < want do
    cap' := !cap' * 2
  done;
  let gen' = Array.make !cap' 0 in
  Array.blit t.gen 0 gen' 0 t.cap;
  let live' = Bytes.make !cap' '\000' in
  Bytes.blit t.live 0 live' 0 t.cap;
  t.gen <- gen';
  t.live <- live';
  t.cap <- !cap'

let alloc t =
  let slot =
    match t.free_list with
    | s :: rest ->
        t.free_list <- rest;
        s
    | [] ->
        let s = t.next_fresh in
        if s >= t.cap then grow t (s + 1);
        t.next_fresh <- s + 1;
        s
  in
  Bytes.unsafe_set t.live slot '\001';
  t.n_live <- t.n_live + 1;
  (slot, t.gen.(slot))

let is_live t slot =
  slot >= 0 && slot < t.next_fresh && Bytes.unsafe_get t.live slot = '\001'

let generation t slot =
  if slot < 0 || slot >= t.cap then invalid_arg "Arena.generation";
  t.gen.(slot)

let valid t ~slot ~gen = is_live t slot && t.gen.(slot) = gen

let free t slot =
  if not (is_live t slot) then invalid_arg "Arena.free: slot not live";
  Bytes.unsafe_set t.live slot '\000';
  t.gen.(slot) <- t.gen.(slot) + 1;
  t.free_list <- slot :: t.free_list;
  t.n_live <- t.n_live - 1

let iter_live f t =
  for s = 0 to t.next_fresh - 1 do
    if Bytes.unsafe_get t.live s = '\001' then f s
  done

let fold_live f t init =
  let acc = ref init in
  iter_live (fun s -> acc := f !acc s) t;
  !acc
