(** Minimal JSON values: a writer and a strict parser.

    The observability layer (trace export, [BENCH.json]) needs
    machine-readable output without pulling an external dependency, so
    this is the smallest useful JSON implementation: one value type,
    a compact serializer whose output is always valid JSON, and a
    recursive-descent parser used by the round-trip tests.

    Numbers are carried as [float] (like JavaScript). The writer emits
    integral values without a fractional part and everything else with
    17 significant digits, so [parse (to_string v)] reconstructs every
    finite number exactly. Non-finite floats serialize as [null] (JSON
    has no representation for them). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val num : float -> t
(** [Num x], or [Null] when [x] is NaN or infinite. *)

val int : int -> t
(** [Num (float_of_int i)]. *)

val str : string -> t

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact (no whitespace) serialization; always valid JSON. *)

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document: rejects trailing garbage,
    unterminated literals and malformed escapes. Object key order is
    preserved. [Error] carries a message with a byte offset. *)

(** {1 Accessors} (for tests and simple consumers) *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]; [None] otherwise. *)

val get_num : t -> float option
val get_str : t -> string option
val get_arr : t -> t list option
val get_bool : t -> bool option
