type t = { jobs : int }

let hardware_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let env_jobs () =
  match Sys.getenv_opt "PEEL_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let forced_default = ref None

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  forced_default := Some n

let default_jobs () =
  match !forced_default with
  | Some n -> n
  | None -> ( match env_jobs () with Some n -> n | None -> hardware_jobs ())

let create ?jobs () =
  let jobs = match jobs with Some n -> n | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  { jobs }

let jobs t = t.jobs

(* Set while a domain is executing worker chunks, so nested [par_map]
   calls degrade to [List.map] instead of spawning domains from
   domains. *)
let inside_worker = Domain.DLS.new_key (fun () -> false)

let par_map ?pool ?chunk f l =
  let jobs = match pool with Some p -> p.jobs | None -> default_jobs () in
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Pool.par_map: chunk must be >= 1"
  | _ -> ());
  match l with
  | [] -> []
  | [ x ] -> [ f x ]
  | l when jobs = 1 || Domain.DLS.get inside_worker -> List.map f l
  | l ->
      let input = Array.of_list l in
      let n = Array.length input in
      let chunk =
        match chunk with Some c -> c | None -> max 1 (n / (8 * jobs))
      in
      (* One slot per input index: workers never write the same slot,
         so the result order is the input order by construction. *)
      let results = Array.make n None in
      let failures = Array.make n None in
      let next = Atomic.make 0 in
      let work () =
        let rec loop () =
          let start = Atomic.fetch_and_add next chunk in
          if start < n then begin
            let stop = min n (start + chunk) in
            for i = start to stop - 1 do
              match f input.(i) with
              | y -> results.(i) <- Some y
              | exception e -> failures.(i) <- Some e
            done;
            loop ()
          end
        in
        Domain.DLS.set inside_worker true;
        Fun.protect ~finally:(fun () -> Domain.DLS.set inside_worker false) loop
      in
      let nchunks = (n + chunk - 1) / chunk in
      let spawned =
        List.init (min (jobs - 1) (nchunks - 1)) (fun _ -> Domain.spawn work)
      in
      (* The calling domain is a worker too; [Domain.join] then
         publishes every spawned domain's slot writes to this one. *)
      work ();
      List.iter Domain.join spawned;
      (* Deterministic error propagation: lowest input index wins. *)
      Array.iter (function Some e -> raise e | None -> ()) failures;
      Array.to_list
        (Array.map
           (function
             | Some y -> y
             | None -> assert false (* every index ran or raised *))
           results)
