(* A flat binary heap in structure-of-arrays layout.  Each entry
   carries a monotonically increasing sequence number so that equal
   priorities pop in insertion order, keeping simulations deterministic
   across runs.

   The simulator's event queue reaches thousands of pending events on
   tree-shaped workloads, where sift-down walks ~log n levels per pop.
   Keeping priorities in an unboxed [float array] (with sequence
   numbers and payloads in parallel arrays) makes every comparison two
   adjacent array loads instead of two pointer chases through boxed
   entry records — the comparisons never touch the payload array. *)

type 'a t = {
  mutable prio : float array;
  mutable seq : int array;
  mutable value : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  { prio = [||]; seq = [||]; value = [||]; size = 0; next_seq = 0 }

(* [lt t i j]: does slot [i] order strictly before slot [j]? *)
let lt t i j =
  t.prio.(i) < t.prio.(j) || (t.prio.(i) = t.prio.(j) && t.seq.(i) < t.seq.(j))

let swap t i j =
  let p = t.prio.(i) in
  t.prio.(i) <- t.prio.(j);
  t.prio.(j) <- p;
  let s = t.seq.(i) in
  t.seq.(i) <- t.seq.(j);
  t.seq.(j) <- s;
  let v = t.value.(i) in
  t.value.(i) <- t.value.(j);
  t.value.(j) <- v

(* Grow the backing arrays, filling fresh payload slots with [seed];
   slots beyond [size] are never read. *)
let grow t seed =
  let cap = Array.length t.prio in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let prio = Array.make ncap 0.0 in
  let seq = Array.make ncap 0 in
  let value = Array.make ncap seed in
  Array.blit t.prio 0 prio 0 t.size;
  Array.blit t.seq 0 seq 0 t.size;
  Array.blit t.value 0 value 0 t.size;
  t.prio <- prio;
  t.seq <- seq;
  t.value <- value

let push t prio value =
  if t.size >= Array.length t.prio then grow t value;
  let i = ref t.size in
  t.prio.(!i) <- prio;
  t.seq.(!i) <- t.next_seq;
  t.value.(!i) <- value;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if lt t !i parent then begin
      swap t !i parent;
      i := parent
    end
    else continue := false
  done

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && lt t l !smallest then smallest := l;
    if r < t.size && lt t r !smallest then smallest := r;
    if !smallest <> !i then begin
      swap t !smallest !i;
      i := !smallest
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let prio = t.prio.(0) and value = t.value.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.prio.(0) <- t.prio.(t.size);
      t.seq.(0) <- t.seq.(t.size);
      t.value.(0) <- t.value.(t.size);
      sift_down t
    end;
    Some (prio, value)
  end

let peek t = if t.size = 0 then None else Some (t.prio.(0), t.value.(0))
let is_empty t = t.size = 0
let length t = t.size
let clear t = t.size <- 0
