(** Dependency-free multicore execution: a [Domain]-based parallel map
    for embarrassingly-parallel experiment sweeps.

    The experiment harness spends nearly all of its wall time in
    independent seeded simulation cells, so the only primitive needed
    is an order-preserving [par_map].  Work is distributed by chunked
    work-stealing over a single atomic index; results are written into
    a pre-sized array slot per input, so the output list is always in
    input order and bit-identical to [List.map f] regardless of the
    worker count or scheduling.

    Determinism contract: provided [f] is deterministic per element and
    elements share no mutable state, [par_map f l = List.map f l] for
    every [jobs] and [chunk] value.  Exceptions raised by [f] are
    re-raised in the caller, and when several elements raise, the one
    with the lowest input index wins — again independent of
    scheduling.

    Nested calls run sequentially: a [par_map] issued from inside a
    worker falls back to [List.map], so callers never deadlock or
    oversubscribe by composing parallel code. *)

type t
(** A fixed worker count to run [par_map] under. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] validates [jobs >= 1].  Default {!default_jobs}. *)

val jobs : t -> int

val hardware_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]: leave one core
    for the OS / the caller's other work. *)

val default_jobs : unit -> int
(** Worker count used when no pool is passed: the last
    {!set_default_jobs} value if any, else the [PEEL_JOBS] environment
    variable (ignored unless a positive integer), else
    {!hardware_jobs}. *)

val set_default_jobs : int -> unit
(** Override the default worker count process-wide (the [--jobs] CLI
    flag).  Raises [Invalid_argument] unless positive. *)

val par_map : ?pool:t -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [par_map f l] is [List.map f l], computed by [jobs] domains (the
    calling domain plus [jobs - 1] spawned ones) stealing chunks of
    [chunk] consecutive indices from an atomic counter.  [chunk]
    defaults to a balance-friendly [max 1 (n / (8 * jobs))]; any
    positive value yields the same result.  Runs sequentially (no
    domains spawned) when [jobs = 1], when the list has fewer than two
    elements, or when called from inside another [par_map] worker. *)
