(** Calendar-queue priority queue (Brown, CACM 1988) with the same
    interface and ordering contract as {!Pairing_heap}.

    Events hash into an array of day buckets by
    [floor (priority / width) mod days]; a pop scans forward from the
    current day and only consults the one bucket whose day matches, so
    push and pop are O(1) amortized when priorities advance roughly
    uniformly — the regime of a large discrete-event run, where the
    binary heap pays O(log n) per operation.  The bucket [width] and
    day count adapt to the live event population on resize.

    The observable ordering is {e identical} to {!Pairing_heap}: strict
    minimum-priority first, FIFO among equal priorities (a global
    insertion sequence number breaks ties).  The simulator may therefore
    substitute one queue for the other without changing any simulation
    result (property-tested in [test/test_parsim.ml]). *)

type 'a t

val create : unit -> 'a t
(** Fresh empty queue.  Bucket geometry starts small and adapts as the
    population grows past powers of two. *)

val push : 'a t -> float -> 'a -> unit
(** [push t p x] inserts [x] with priority [p].  [p] may be any finite
    float, including values below the current minimum. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element; FIFO among equal
    priorities.  [None] when empty. *)

val peek : 'a t -> (float * 'a) option
(** Like {!pop} without removing the element. *)

val is_empty : 'a t -> bool
(** [true] iff no elements are queued. *)

val length : 'a t -> int
(** Number of queued elements. *)

val clear : 'a t -> unit
(** Drop all elements; bucket geometry and the FIFO sequence counter
    are retained. *)
