type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let num x = if Float.is_finite x then Num x else Null
let int i = Num (float_of_int i)
let str s = Str s

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_num b x =
  if not (Float.is_finite x) then Buffer.add_string b "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" x)
  else Buffer.add_string b (Printf.sprintf "%.17g" x)

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num x -> add_num b x
  | Str s -> add_escaped b s
  | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          add_escaped b k;
          Buffer.add_char b ':';
          to_buffer b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* Encode a Unicode code point as UTF-8. *)
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' -> (
          advance ();
          if !pos >= n then fail "truncated escape";
          let c = s.[!pos] in
          advance ();
          match c with
          | '"' | '\\' | '/' -> Buffer.add_char b c; go ()
          | 'b' -> Buffer.add_char b '\b'; go ()
          | 'f' -> Buffer.add_char b '\012'; go ()
          | 'n' -> Buffer.add_char b '\n'; go ()
          | 'r' -> Buffer.add_char b '\r'; go ()
          | 't' -> Buffer.add_char b '\t'; go ()
          | 'u' ->
              let cp = hex4 () in
              let cp =
                (* Combine a surrogate pair into one code point. *)
                if cp >= 0xD800 && cp <= 0xDBFF && !pos + 2 <= n
                   && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo < 0xDC00 || lo > 0xDFFF then fail "bad low surrogate";
                  0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00))
                end
                else cp
              in
              add_utf8 b cp;
              go ()
          | _ -> fail "bad escape character")
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do advance () done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin advance (); digits () end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> x
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elems [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)
  | exception Failure msg ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" !pos msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let get_num = function Num x -> Some x | _ -> None
let get_str = function Str s -> Some s | _ -> None
let get_arr = function Arr xs -> Some xs | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
