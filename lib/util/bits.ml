let is_power_of_two n = n > 0 && n land (n - 1) = 0

let ilog2 n =
  if n <= 0 then invalid_arg "Bits.ilog2";
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let ceil_log2 n =
  if n <= 0 then invalid_arg "Bits.ceil_log2";
  let f = ilog2 n in
  if is_power_of_two n then f else f + 1

let pow2 n =
  if n < 0 || n >= 62 then invalid_arg "Bits.pow2";
  1 lsl n

let ceil_div a b =
  if b <= 0 then invalid_arg "Bits.ceil_div";
  (a + b - 1) / b

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

let bit x i = (x lsr i) land 1 = 1

let bits_to_string ~width x =
  String.init width (fun i -> if bit x (width - 1 - i) then '1' else '0')

(* ------------------------------------------------------------------ *)
(* Fixed-width bitsets                                                 *)
(* ------------------------------------------------------------------ *)

module Bitset = struct
  (* Bytes-backed so [equal]/[hash] are flat memory scans with no
     per-word boxing; the service's member sets (universe = fabric
     endpoints) stay a few dozen bytes each at million-group scale. *)
  type t = { width : int; bits : Bytes.t }

  let nbytes width = (width + 7) lsr 3

  let create width =
    if width < 0 then invalid_arg "Bits.Bitset.create: width must be >= 0";
    { width; bits = Bytes.make (nbytes width) '\000' }

  let width t = t.width

  let check t i op =
    if i < 0 || i >= t.width then
      invalid_arg (Printf.sprintf "Bits.Bitset.%s: %d outside [0, %d)" op i t.width)

  let mem t i =
    check t i "mem";
    Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let add t i =
    check t i "add";
    let b = i lsr 3 in
    Bytes.unsafe_set t.bits b
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bits b) lor (1 lsl (i land 7))))

  let remove t i =
    check t i "remove";
    let b = i lsr 3 in
    Bytes.unsafe_set t.bits b
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get t.bits b) land lnot (1 lsl (i land 7))))

  let clear t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'
  let copy t = { width = t.width; bits = Bytes.copy t.bits }

  let equal a b = a.width = b.width && Bytes.equal a.bits b.bits

  (* FNV-1a over the backing bytes: the memoization cache's bucket
     hash.  Collisions are survivable (callers compare with [equal]);
     the width folds in so same-pattern different-width sets split. *)
  let hash t =
    let h = ref 0xcbf29ce484222325L in
    let mix c =
      h := Int64.mul (Int64.logxor !h (Int64.of_int c)) 0x100000001b3L
    in
    mix (t.width land 0xff);
    mix ((t.width lsr 8) land 0xff);
    Bytes.iter (fun c -> mix (Char.code c)) t.bits;
    Int64.to_int !h land max_int

  let cardinal t =
    let n = ref 0 in
    Bytes.iter (fun c -> n := !n + popcount (Char.code c)) t.bits;
    !n

  let iter f t =
    for b = 0 to Bytes.length t.bits - 1 do
      let c = Char.code (Bytes.unsafe_get t.bits b) in
      if c <> 0 then
        for o = 0 to 7 do
          if c land (1 lsl o) <> 0 then f ((b lsl 3) lor o)
        done
    done

  let to_list t =
    let acc = ref [] in
    iter (fun i -> acc := i :: !acc) t;
    List.rev !acc

  let of_list ~width l =
    let t = create width in
    List.iter (fun i -> add t i) l;
    t
end
