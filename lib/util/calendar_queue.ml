(* Calendar queue (Brown 1988): an array of day buckets, each a sorted
   singly-linked list.  An event with priority [p] lives in bucket
   [day p mod days] where [day p = floor (p / width)]; the pop cursor
   walks days in order, so each pop touches only the bucket whose day
   is current.  Because [day] is a monotone function of priority, a
   bucket head whose day matches the cursor is the global minimum:
   every other queued node has a day >= the cursor's, and a strictly
   larger day implies a strictly larger priority.

   Ordering is (priority, insertion seq) lexicographic — exactly the
   Pairing_heap contract — with bucket lists kept sorted by that key,
   so FIFO tie-breaking survives bucket hashing and resizes. *)

type 'a node = {
  n_prio : float;
  n_seq : int;
  n_value : 'a;
  mutable n_next : 'a node option;
}

type 'a t = {
  mutable buckets : 'a node option array;
  mutable width : float;         (* day length in priority units *)
  mutable size : int;
  mutable next_seq : int;        (* global FIFO tie-breaker *)
  mutable vday : int;            (* scan cursor; no queued day is below it *)
  mutable scans : int;           (* empty buckets passed since last hit *)
  mutable grow_at : int;
}

let initial_days = 2
let initial_width = 1e-6

let create () =
  {
    buckets = Array.make initial_days None;
    width = initial_width;
    size = 0;
    next_seq = 0;
    vday = 0;
    scans = 0;
    grow_at = 2 * initial_days;
  }

(* Clamp so [int_of_float] stays well inside the int range even for
   absurd priority/width ratios; the clamp is monotone, which is all
   correctness needs. *)
let day t p =
  let d = Float.floor (p /. t.width) in
  if d >= 4.0e18 then max_int / 2
  else if d <= -4.0e18 then -(max_int / 2)
  else int_of_float d

let bucket_of t d =
  let n = Array.length t.buckets in
  let m = d mod n in
  if m < 0 then m + n else m

let lt_key p1 s1 p2 s2 = p1 < p2 || (p1 = p2 && s1 < s2)

(* Insert into bucket [b] keeping (prio, seq) sorted order.  [seq] is
   globally fresh, so "before the first strictly greater priority" is
   FIFO-correct. *)
let insert_sorted t b node =
  let p = node.n_prio and s = node.n_seq in
  match t.buckets.(b) with
  | None -> t.buckets.(b) <- Some node
  | Some head when lt_key p s head.n_prio head.n_seq ->
      node.n_next <- Some head;
      t.buckets.(b) <- Some node
  | Some head ->
      let cur = ref head in
      let continue = ref true in
      while !continue do
        match !cur.n_next with
        | Some nxt when not (lt_key p s nxt.n_prio nxt.n_seq) -> cur := nxt
        | _ ->
            node.n_next <- !cur.n_next;
            !cur.n_next <- Some node;
            continue := false
      done

(* Rebuild with [ndays] buckets and a width fitted to the current
   population: aim for ~1/3 of an event per day over the live span, so
   a pop rarely scans more than a few empty days.  The floor keeps
   [day] finite-ranged even when every priority coincides. *)
let resize t ndays =
  let nodes = Array.make t.size None in
  let k = ref 0 in
  Array.iter
    (fun head ->
      let cur = ref head in
      let continue = ref true in
      while !continue do
        match !cur with
        | Some nd ->
            nodes.(!k) <- Some nd;
            incr k;
            cur := nd.n_next
        | None -> continue := false
      done)
    t.buckets;
  let prio_of = function Some nd -> nd.n_prio | None -> 0.0 in
  let lo = ref infinity and hi = ref neg_infinity in
  Array.iter
    (fun nd ->
      let p = prio_of nd in
      if p < !lo then lo := p;
      if p > !hi then hi := p)
    nodes;
  let span = !hi -. !lo in
  let floor_w = (1.0 +. Float.abs !hi +. Float.abs !lo) *. 1e-12 in
  let fitted = if t.size > 0 then span *. 3.0 /. float_of_int t.size else 0.0 in
  t.width <- Float.max floor_w (Float.max fitted 1e-300);
  t.buckets <- Array.make ndays None;
  t.grow_at <- 2 * ndays;
  Array.sort
    (fun a b ->
      match (a, b) with
      | Some a, Some b ->
          let c = Float.compare a.n_prio b.n_prio in
          if c <> 0 then c else Int.compare a.n_seq b.n_seq
      | _ -> 0)
    nodes;
  (* Append in globally sorted order via per-bucket tails: each list
     comes out sorted without per-node search. *)
  let tails = Array.make ndays None in
  Array.iter
    (fun nd ->
      match nd with
      | None -> ()
      | Some node ->
          node.n_next <- None;
          let b = bucket_of t (day t node.n_prio) in
          (match tails.(b) with
          | None -> t.buckets.(b) <- Some node
          | Some tl -> tl.n_next <- Some node);
          tails.(b) <- Some node)
    nodes;
  t.vday <- (if t.size > 0 then day t !lo else 0);
  t.scans <- 0

let push t prio value =
  let node = { n_prio = prio; n_seq = t.next_seq; n_value = value; n_next = None } in
  t.next_seq <- t.next_seq + 1;
  let d = day t prio in
  if t.size = 0 || d < t.vday then t.vday <- d;
  insert_sorted t (bucket_of t d) node;
  t.size <- t.size + 1;
  if t.size > t.grow_at then resize t (2 * Array.length t.buckets)

(* Point the cursor at the bucket holding the global minimum.  Linear
   in the bucket count; only taken after a full lap of empty scans,
   i.e. when the population is much sparser than the calendar. *)
let direct_search t =
  let best = ref None in
  Array.iter
    (fun head ->
      match (head, !best) with
      | Some nd, Some b ->
          if lt_key nd.n_prio nd.n_seq b.n_prio b.n_seq then best := head
      | Some _, None -> best := head
      | None, _ -> ())
    t.buckets;
  (match !best with Some nd -> t.vday <- day t nd.n_prio | None -> ());
  t.scans <- 0

(* Advance the cursor to the bucket whose head is due and return that
   head (the global minimum).  Invariant: no queued node's day is below
   [vday], so skipping a bucket whose head is in a later day is safe. *)
let find_min t =
  if t.size = 0 then None
  else begin
    let n = Array.length t.buckets in
    let rec loop () =
      let b = bucket_of t t.vday in
      match t.buckets.(b) with
      | Some head when day t head.n_prio = t.vday ->
          t.scans <- 0;
          Some (b, head)
      | _ ->
          t.vday <- t.vday + 1;
          t.scans <- t.scans + 1;
          if t.scans > n then direct_search t;
          loop ()
    in
    loop ()
  end

let pop t =
  match find_min t with
  | None -> None
  | Some (b, head) ->
      t.buckets.(b) <- head.n_next;
      head.n_next <- None;
      t.size <- t.size - 1;
      Some (head.n_prio, head.n_value)

let peek t =
  match find_min t with
  | None -> None
  | Some (_, head) -> Some (head.n_prio, head.n_value)

let is_empty t = t.size = 0
let length t = t.size

let clear t =
  Array.fill t.buckets 0 (Array.length t.buckets) None;
  t.size <- 0;
  t.vday <- 0;
  t.scans <- 0
