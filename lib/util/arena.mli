(** Slot arena: free-list allocation of dense integer indices with
    per-slot generation counters.

    Data columns live outside the arena (SoA style); the arena only
    allocates/recycles slot indices and answers liveness questions.
    Generations let a holder of a stale [(slot, gen)] pair detect that
    the slot has been freed (and possibly recycled) since — the
    service's departed-group lint (SVC004) is built on this. *)

type t

val create : ?initial:int -> unit -> t
(** Empty arena. [initial] is the starting capacity hint (default 16);
    the arena grows geometrically on demand. *)

val alloc : t -> int * int
(** Allocate a slot; returns [(slot, generation)]. Recycles the most
    recently freed slot first, else extends the dense prefix. *)

val free : t -> int -> unit
(** Release a live slot, bumping its generation. Raises
    [Invalid_argument] if the slot is not live. *)

val is_live : t -> int -> bool

val generation : t -> int -> int
(** Current generation of [slot] (whether live or free). Raises
    [Invalid_argument] out of range. *)

val valid : t -> slot:int -> gen:int -> bool
(** [true] iff [slot] is live and its generation is still [gen]. *)

val live_count : t -> int
(** Number of live slots — O(1). *)

val capacity : t -> int
(** Current backing capacity (≥ the densest slot ever allocated). *)

val iter_live : (int -> unit) -> t -> unit
(** Iterate live slots in increasing slot order. *)

val fold_live : ('a -> int -> 'a) -> t -> 'a -> 'a
(** Fold over live slots in increasing slot order. *)
