(** Imperative binary min-heap keyed by float priority.

    This is the event queue of the discrete-event simulator, so the
    implementation favours low constant factors: flat parallel arrays
    (priorities unboxed, so sift comparisons stay inside one cache-warm
    [float array] even at thousands of pending events), no per-node
    allocation beyond the stored element.  Ties are broken by insertion
    order (FIFO) so simulation runs are fully deterministic. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> float -> 'a -> unit
(** [push t p x] inserts [x] with priority [p]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element; FIFO among equal
    priorities. *)

val peek : 'a t -> (float * 'a) option
val is_empty : 'a t -> bool
val length : 'a t -> int
val clear : 'a t -> unit
