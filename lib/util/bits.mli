(** Small integer/bit utilities used by topology addressing and the
    prefix engine. *)

val is_power_of_two : int -> bool
(** [is_power_of_two n] for [n >= 1]; [false] for [n <= 0]. *)

val ilog2 : int -> int
(** Floor of log2; raises [Invalid_argument] for [n <= 0]. *)

val ceil_log2 : int -> int
(** Ceiling of log2; [ceil_log2 1 = 0]. Raises for [n <= 0]. *)

val pow2 : int -> int
(** [pow2 n] = 2^n for [0 <= n < 62]. *)

val ceil_div : int -> int -> int
(** Integer division rounding up. *)

val popcount : int -> int
(** Number of set bits (for non-negative arguments). *)

val bit : int -> int -> bool
(** [bit x i] is the [i]-th least significant bit of [x]. *)

val bits_to_string : width:int -> int -> string
(** MSB-first binary rendering, e.g. [bits_to_string ~width:3 5 = "101"]. *)

(** Mutable fixed-width bitsets over a [Bytes.t] backing store.

    Used by the service control plane for compact group-member sets:
    membership deltas become single-bit flips, and set equality/hash —
    the memoization-cache key operations — are flat byte scans instead
    of list walks. *)
module Bitset : sig
  type t

  val create : int -> t
  (** [create width] is the empty set over universe [0, width). *)

  val width : t -> int
  (** Universe size the set was created with. *)

  val mem : t -> int -> bool
  val add : t -> int -> unit
  val remove : t -> int -> unit

  val clear : t -> unit
  (** Remove every element. *)

  val copy : t -> t
  (** Independent copy (mutations don't alias). *)

  val equal : t -> t -> bool
  (** Same width and same elements. *)

  val hash : t -> int
  (** FNV-1a over width + backing bytes; non-negative. Equal sets hash
      equal; collisions possible (pair with {!equal}). *)

  val cardinal : t -> int

  val iter : (int -> unit) -> t -> unit
  (** Elements in increasing order. *)

  val to_list : t -> int list
  (** Elements in increasing order. *)

  val of_list : width:int -> int list -> t
end
