type t = Ft of Fat_tree.t | Ls of Leaf_spine.t | Rl of Rail.t | Zo of Zoo.t

let fat_tree ?hosts_per_tor ?gpus_per_host ?link_bw ?nvlink_bw ?link_latency ~k
    () =
  Ft (Fat_tree.create ?hosts_per_tor ?gpus_per_host ?link_bw ?nvlink_bw
        ?link_latency ~k ())

let leaf_spine ?gpus_per_host ?link_bw ?nvlink_bw ?link_latency ~spines ~leaves
    ~hosts_per_leaf () =
  Ls (Leaf_spine.create ?gpus_per_host ?link_bw ?nvlink_bw ?link_latency ~spines
        ~leaves ~hosts_per_leaf ())

let rail ?link_bw ?nvlink_bw ?link_latency ~rails ~groups ~servers_per_group
    ~spines () =
  Rl (Rail.create ?link_bw ?nvlink_bw ?link_latency ~rails ~groups
        ~servers_per_group ~spines ())

let of_zoo z = Zo z

let graph = function
  | Ft f -> f.Fat_tree.graph
  | Ls l -> l.Leaf_spine.graph
  | Rl r -> r.Rail.graph
  | Zo z -> z.Zoo.graph

let gpus = function
  | Ft f -> f.Fat_tree.gpus
  | Ls l -> l.Leaf_spine.gpus
  | Rl r -> r.Rail.gpus
  | Zo _ -> [||]

let hosts = function
  | Ft f -> f.Fat_tree.hosts
  | Ls l -> l.Leaf_spine.hosts
  | Rl r -> r.Rail.hosts
  | Zo z -> z.Zoo.hosts

let tors = function
  | Ft f -> f.Fat_tree.tors
  | Ls l -> l.Leaf_spine.leaves
  | Rl r -> r.Rail.tors
  | Zo z -> z.Zoo.tors

let endpoints t =
  let g = gpus t in
  if Array.length g > 0 then g else hosts t

let host_of_gpu t gpu =
  let a =
    match t with
    | Ft f -> f.Fat_tree.host_of_gpu
    | Ls l -> l.Leaf_spine.host_of_gpu
    | Rl r -> r.Rail.host_of_gpu
    | Zo _ -> invalid_arg "Fabric.host_of_gpu: zoo fabrics carry no GPUs"
  in
  let h = a.(gpu) in
  if h < 0 then invalid_arg "Fabric.host_of_gpu: not a GPU node";
  h

let tor_of_host t host =
  match t with
  | Ft f ->
      let x = f.Fat_tree.tor_of_host.(host) in
      if x < 0 then invalid_arg "Fabric.tor_of_host: not a host node";
      x
  | Ls l ->
      let x = l.Leaf_spine.leaf_of_host.(host) in
      if x < 0 then invalid_arg "Fabric.tor_of_host: not a host node";
      x
  | Zo z ->
      let x = z.Zoo.tor_of_host.(host) in
      if x < 0 then invalid_arg "Fabric.tor_of_host: not a host node";
      x
  | Rl _ ->
      invalid_arg
        "Fabric.tor_of_host: a rail-optimized server spans every rail ToR"

let endpoint_host t v =
  match (Graph.node (graph t) v).Graph.kind with
  | Graph.Gpu -> host_of_gpu t v
  | Graph.Host -> v
  | _ -> invalid_arg "Fabric.endpoint_host: not an endpoint"

let attach_tor t v =
  match t with
  | Rl r ->
      let tor = r.Rail.tor_of_gpu.(v) in
      if tor < 0 then invalid_arg "Fabric.attach_tor: not a rail endpoint";
      tor
  | Ft _ | Ls _ | Zo _ -> tor_of_host t (endpoint_host t v)

let pods = function
  | Ft f -> f.Fat_tree.pods
  | Ls _ -> 1
  | Rl _ -> 1
  | Zo z -> z.Zoo.pods

let tors_per_pod = function
  | Ft f -> f.Fat_tree.k / 2
  | Ls l -> Array.length l.Leaf_spine.leaves
  | Rl r -> Array.length r.Rail.tors
  | Zo z ->
      Array.fold_left (fun acc p -> max acc (Array.length p)) 0 z.Zoo.tors_of_pod

let pod_of_tor t tor =
  match t with
  | Ft _ | Zo _ -> (Graph.node (graph t) tor).Graph.pod
  | Ls _ | Rl _ -> 0

let tor_idx_in_pod t tor = (Graph.node (graph t) tor).Graph.idx

let tors_of_pod t p =
  match t with
  | Ft f -> f.Fat_tree.tors_of_pod.(p)
  | Ls l ->
      if p <> 0 then invalid_arg "Fabric.tors_of_pod: leaf-spine has one pod";
      l.Leaf_spine.leaves
  | Rl r ->
      if p <> 0 then invalid_arg "Fabric.tors_of_pod: rail fabric has one pod";
      r.Rail.tors
  | Zo z ->
      if p < 0 || p >= z.Zoo.pods then
        invalid_arg "Fabric.tors_of_pod: pod outside the zoo fabric";
      z.Zoo.tors_of_pod.(p)

let failure_domain t tier =
  match t with
  | Ft f -> Fat_tree.fabric_duplex_links f tier
  | Ls l -> Leaf_spine.spine_leaf_duplex_links l
  | Rl r -> Rail.spine_tor_duplex_links r
  | Zo z -> Zoo.inter_switch_duplex_links z

let fail_random t ~rng ~tier ~fraction ?(ensure_connected = true) () =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Fabric.fail_random: fraction in [0,1]";
  let g = graph t in
  let candidates =
    Array.to_list (failure_domain t tier)
    |> List.filter (fun id -> Graph.link_up g id)
    |> Array.of_list
  in
  let n = Array.length candidates in
  let count = int_of_float (Float.round (fraction *. float_of_int n)) in
  let host_list = Array.to_list (hosts t) in
  let attempt () =
    let picks =
      Peel_util.Rng.sample_without_replacement rng n count
      |> List.map (fun i -> candidates.(i))
    in
    List.iter (Graph.fail_link g) picks;
    if (not ensure_connected) || Graph.connected g host_list then Some picks
    else begin
      List.iter (Graph.recover_link g) picks;
      None
    end
  in
  let rec retry attempts =
    if attempts = 0 then
      failwith "Fabric.fail_random: could not keep hosts connected"
    else
      match attempt () with Some picks -> picks | None -> retry (attempts - 1)
  in
  retry 100

let recover_link t id = Graph.recover_link (graph t) id

let describe t =
  match t with
  | Ft f ->
      Printf.sprintf "fat-tree k=%d (%d hosts, %d gpus)" f.Fat_tree.k
        (Fat_tree.num_hosts f) (Fat_tree.num_gpus f)
  | Ls l ->
      Printf.sprintf "leaf-spine %dx%d (%d hosts, %d gpus)"
        (Array.length l.Leaf_spine.spines)
        (Array.length l.Leaf_spine.leaves)
        (Leaf_spine.num_hosts l) (Leaf_spine.num_gpus l)
  | Rl r ->
      Printf.sprintf "rail-optimized %d rails x %d groups x %d servers (%d gpus)"
        r.Rail.rails r.Rail.groups r.Rail.servers_per_group (Rail.num_gpus r)
  | Zo z -> Zoo.describe z

(* ------------------------------------------------------------------ *)
(* Introspection helpers                                               *)
(* ------------------------------------------------------------------ *)

let layer_of t v =
  match t with
  | Zo z -> Zoo.layer_of z v
  | Ft _ | Ls _ | Rl _ -> (
      match (Graph.node (graph t) v).Graph.kind with
      | Graph.Gpu | Graph.Host -> 0
      | Graph.Tor -> 1
      | Graph.Agg | Graph.Spine -> 2
      | Graph.Core -> 3)

let num_layers = function
  | Ft _ -> 4
  | Ls _ | Rl _ -> 3
  | Zo z -> Zoo.num_layers z

let switches_at_layer t l =
  match t with
  | Zo z -> Zoo.switches_at_layer z l
  | Ft _ | Ls _ | Rl _ ->
      Graph.nodes (graph t) |> Array.to_list
      |> List.filter_map (fun (nd : Graph.node) ->
             if Graph.kind_is_switch nd.Graph.kind && layer_of t nd.Graph.id = l
             then Some nd.Graph.id
             else None)
      |> Array.of_list

let num_endpoints t = Array.length (endpoints t)
