(** Directed-graph substrate for Clos fabrics.

    Every physical cable is represented as a pair of directed links with
    ids [2n] and [2n+1]; [peer_link] maps one direction to the other.
    Links can be marked down to model failures (the paper's "asymmetric
    Clos"); all traversals honour link state.

    Node ids are dense (0..n-1) and index into arrays everywhere, which
    keeps BFS and the simulator allocation-free on the hot path. *)

type kind =
  | Gpu   (** accelerator with a dedicated NIC to the ToR plus NVLink *)
  | Host  (** server NIC (no GPUs) or the server's NVSwitch (with GPUs) *)
  | Tor   (** top-of-rack / edge / leaf switch *)
  | Agg   (** aggregation switch (fat-tree middle tier) *)
  | Core  (** fat-tree core switch *)
  | Spine (** leaf–spine spine switch *)

val kind_to_string : kind -> string
val kind_is_switch : kind -> bool

type node = {
  id : int;
  kind : kind;
  pod : int;  (** pod number; -1 when not applicable (cores, spines) *)
  idx : int;  (** index within its kind group (e.g. ToR number in pod) *)
}

type link = {
  link_id : int;
  src : int;
  dst : int;
  bandwidth : float;  (** bytes per second *)
  latency : float;    (** propagation delay, seconds *)
  mutable up : bool;
}

type t

(** {1 Construction} *)

module Builder : sig
  type graph := t
  type t

  val create : unit -> t

  val add_node : t -> kind -> pod:int -> idx:int -> int
  (** Returns the new node's id. *)

  val add_duplex : t -> ?latency:float -> bandwidth:float -> int -> int -> int
  (** [add_duplex b a c] adds links [a -> c] and [c -> a]; returns the
      id of the [a -> c] direction (the peer is that id xor 1).
      Default latency is 500 ns. *)

  val finish : t -> graph
end

(** {1 Accessors} *)

val num_nodes : t -> int
val num_links : t -> int
val node : t -> int -> node
val link : t -> int -> link
val nodes : t -> node array
val links : t -> link array

val peer_link : int -> int
(** The opposite direction of a duplex pair. *)

val out_links : t -> int -> (int * int) array
(** [out_links t v] are [(neighbor, link_id)] pairs, including links
    currently down — callers filter via [link_up]. *)

val link_up : t -> int -> bool

val degree : t -> int -> int
(** Structural out-degree (links counted whether up or down) — the
    quantity the zoo's degree invariants (TOPO002) are stated over. *)

val up_degree : t -> int -> int
(** Out-degree over links currently up. *)

val link_between : t -> int -> int -> int option
(** First (lowest-id) up link from one node to another, if any. *)

val fold_kind : t -> kind -> ('a -> node -> 'a) -> 'a -> 'a
val nodes_of_kind : t -> kind -> int array

(** {1 Failures} *)

val fail_link : t -> int -> unit
(** Marks both directions of the duplex pair containing this id down. *)

val recover_link : t -> int -> unit
(** Marks both directions of the duplex pair up again — the exact
    inverse of [fail_link]: adjacency is untouched by either, so a
    fail/recover round trip restores the graph bit-for-bit. *)

val restore_all : t -> unit

val duplex_ids : t -> int array
(** One id per duplex pair (the even direction). *)

(** {1 Traversal} *)

val unreachable : int
(** Distance marker for unreachable nodes. *)

val bfs_dist : t -> int -> int array
(** Hop distance from a source over up links. *)

val bfs_dist_filtered : t -> int -> allow:(node -> bool) -> int array
(** BFS restricted to nodes satisfying [allow] (the source is always
    allowed). *)

val hop_layers : t -> int -> int list array
(** [hop_layers t s].(d) lists node ids at distance [d] from [s],
    ascending id order; length is [max_dist + 1]. *)

val shortest_path : t -> int -> int -> int list option
(** Node ids from source to destination inclusive; deterministic
    (lowest-id parent wins). [None] if unreachable. *)

val shortest_path_ecmp : t -> int -> int -> salt:int -> int list option
(** Like [shortest_path] but hash-selects among equal-cost predecessors
    (keyed on endpoints, hop and [salt]) — the per-flow path diversity
    ECMP provides in a real Clos.  Deterministic for a given
    (src, dst, salt). *)

val shortest_path_from_dist : t -> dist:int array -> int -> int -> int list option
(** [shortest_path] given a precomputed [bfs_dist t src] array, letting
    callers amortise the BFS over every destination sharing a source.
    The array must come from [bfs_dist] on the current link state —
    stale distances give wrong (or crashing) walks. *)

val shortest_path_ecmp_from_dist :
  t -> dist:int array -> int -> int -> salt:int -> int list option
(** [shortest_path_ecmp] given a precomputed [bfs_dist t src] array;
    same contract (and same path picks) as the BFS-per-call form. *)

val connected : t -> int list -> bool
(** Whether all listed nodes are mutually reachable over up links. *)
