(** Topology zoo: non-Clos fabrics the layer-peeling planner is
    measured on (ROADMAP item 3).

    The paper proves the peeling greedy exact on symmetric Clos
    (Lemma 2.1) and [O(min(F,|D|))] under asymmetry (Theorem 2.5); this
    module supplies the fabrics where neither lemma applies so the
    approximation ratio can be {e measured} against the exact Steiner
    oracle ({!Peel_steiner.Exact.oracle}, experiment E21):

    - {b abfattree} — F10's AB fat-tree: even ("type A") pods use the
      standard aggregation-to-core striping, odd ("type B") pods the
      transpose, so one core failure hits different aggregation indices
      in A and B pods.
    - {b VL2} — ToRs dual-homed to two aggregation switches; the
      aggregation and intermediate tiers form a complete bipartite
      graph (parameters [da]/[di] = aggregation/intermediate port
      counts, as in the VL2 paper).
    - {b Jellyfish} — a seeded random [r]-regular graph over [n]
      switches (configuration-model draw, rejecting self-loops,
      parallel edges and disconnected samples).
    - {b Xpander} — a seeded random [lift]-lift of the complete graph
      K[_(d+1)]: one random perfect matching between the copy sets of
      each base edge, giving a [d]-regular near-Ramanujan expander.

    Every generator returns a value carrying a {e layer annotation}:
    structural hop layers for the layered classes (endpoints 0, ToR 1,
    aggregation 2, core/intermediate 3) and the flat pseudo-layering
    (endpoints 0, all switches 1) for the expander classes, whose
    planner layers are the per-source BFS levels instead
    ({!Peel_steiner.Layer_peel.peel_general}'s default).  Generators
    validate their own output — a disconnected or non-layered fabric
    raises a descriptive [Invalid_argument] instead of failing deep
    inside [Paths] BFS; the [*_opt] variants return [None].

    Randomized classes are deterministic in their [seed]: the same seed
    always yields the identical fabric, link ids included. *)

type cls = Abfattree | Vl2 | Jellyfish | Xpander

val cls_to_string : cls -> string
val cls_of_string : string -> cls option
val all_classes : cls list

(** Generator parameters, kept on the value so invariant checks
    (TOPO002) can recompute expected sizes and degrees. *)
type params =
  | P_abfattree of { k : int; hosts_per_tor : int }
  | P_vl2 of { da : int; di : int; hosts_per_tor : int }
  | P_jellyfish of {
      switches : int;
      net_degree : int;
      hosts_per_tor : int;
      seed : int;
    }
  | P_xpander of {
      net_degree : int;
      lift : int;
      hosts_per_tor : int;
      seed : int;
    }

type t = {
  params : params;
  graph : Graph.t;
  pods : int;  (** > 1 only for abfattree *)
  tors : int array;
  tors_of_pod : int array array;
  hosts : int array;
  tor_of_host : int array;  (** dense by node id; -1 for non-hosts *)
  layer_of : int array;  (** structural layer annotation per node id *)
  layered : bool;
      (** true when [layer_of] is a real tier hierarchy (abfattree,
          VL2); false for the expanders' flat pseudo-layering *)
}

(** {1 Generators} *)

val abfattree :
  ?hosts_per_tor:int ->
  ?link_bw:float ->
  ?link_latency:float ->
  k:int ->
  unit ->
  t
(** AB fat-tree with [k] pods of [k/2] ToRs and [k/2] aggregation
    switches over [(k/2)^2] cores; [k] even, >= 4.  Default
    [hosts_per_tor] is [k/2].  Raises [Invalid_argument] on bad
    parameters or (defensively) invalid generated output. *)

val vl2 :
  ?hosts_per_tor:int ->
  ?link_bw:float ->
  ?link_latency:float ->
  da:int ->
  di:int ->
  unit ->
  t
(** VL2 with [di] aggregation switches ([da] ports each: half down to
    ToRs, half up), [da/2] intermediate switches and [da*di/4] ToRs,
    each dual-homed to aggregation switches [2i] and [2i+1] (mod
    [di]).  [da], [di] even, >= 2.  Default [hosts_per_tor] is 2. *)

val jellyfish :
  ?hosts_per_tor:int ->
  ?link_bw:float ->
  ?link_latency:float ->
  switches:int ->
  net_degree:int ->
  seed:int ->
  unit ->
  t
(** Seeded random [net_degree]-regular graph over [switches] switches.
    Requires [2 <= net_degree < switches] and [switches * net_degree]
    even.  Default [hosts_per_tor] is 1.  Raises [Invalid_argument]
    if no connected simple regular graph is found for the seed (500
    rejection-sampling attempts). *)

val xpander :
  ?hosts_per_tor:int ->
  ?link_bw:float ->
  ?link_latency:float ->
  net_degree:int ->
  lift:int ->
  seed:int ->
  unit ->
  t
(** Seeded random [lift]-lift of K[_(net_degree+1)]:
    [(net_degree+1)*lift] switches, each of inter-switch degree
    [net_degree].  Requires [net_degree >= 2], [lift >= 1].  Default
    [hosts_per_tor] is 1. *)

val abfattree_opt :
  ?hosts_per_tor:int ->
  ?link_bw:float ->
  ?link_latency:float ->
  k:int ->
  unit ->
  t option

val vl2_opt :
  ?hosts_per_tor:int ->
  ?link_bw:float ->
  ?link_latency:float ->
  da:int ->
  di:int ->
  unit ->
  t option

val jellyfish_opt :
  ?hosts_per_tor:int ->
  ?link_bw:float ->
  ?link_latency:float ->
  switches:int ->
  net_degree:int ->
  seed:int ->
  unit ->
  t option

val xpander_opt :
  ?hosts_per_tor:int ->
  ?link_bw:float ->
  ?link_latency:float ->
  net_degree:int ->
  lift:int ->
  seed:int ->
  unit ->
  t option
(** The [*_opt] variants return [None] where the raising forms would
    raise [Invalid_argument]. *)

(** {1 Validation}

    Generators run these on their own output; {!Peel_check} re-runs
    them as the TOPO001/TOPO002 diagnostics (e.g. after fabric
    corruption).  Both use {e structural} adjacency — link up/down
    state (failures) never trips them. *)

val layering_violations : t -> string list
(** Layering well-formedness: endpoints on layer 0 attached only to
    switches, switches on layers >= 1, contiguous layer values,
    structural connectivity, and — for layered classes — every edge
    crossing exactly one layer with every layer >= 2 node wired to the
    layer below.  Empty means well-formed (TOPO001). *)

val invariant_violations : t -> string list
(** Generated degree/size invariants recomputed from [params]: node
    counts per tier and the exact structural degree of every node
    (TOPO002). *)

val validate : t -> (unit, string list) result
(** [Ok ()] iff both violation lists are empty. *)

(** {1 Accessors} *)

val cls : t -> cls
val hosts_per_tor : t -> int

val seed : t -> int option
(** The generator seed; [None] for the deterministic classes. *)

val net_degree : t -> int option
(** Regular inter-switch degree; [None] for abfattree and VL2. *)

val num_hosts : t -> int
val num_switches : t -> int

val layer_of : t -> int -> int
(** Structural layer of a node (0 = endpoints). *)

val num_layers : t -> int
(** [1 + max layer]: 4 for the layered classes, 2 for expanders. *)

val switches_at_layer : t -> int -> int array
(** Switch node ids on a layer, ascending. *)

val inter_switch_duplex_links : t -> int array
(** One duplex id per switch-to-switch cable — the failure (and
    reconfiguration) domain. *)

val describe : t -> string
(** One-line human description, e.g.
    ["zoo jellyfish n=8 r=3 seed=7 (16 hosts)"]. *)

(** {1 Reconfiguration}

    The optically-reconfigurable variant (Multicasting Optical
    Reconfigurable Switch, PAPERS.md): per epoch the optical layer
    enables all but a "dark" fraction of the inter-switch cables, and
    the dark set moves between epochs.  The schedule is expressed as
    fail/recover deltas over duplex link ids, exactly the currency of
    the E16 {!Peel_sim.Fault} machinery ([Fault.of_list] on the
    flattened events), so replanning via [repeel]/[splice] competes
    against the reconfiguration gain in the same simulator. *)

module Reconfig : sig
  type epoch = {
    at : float;  (** absolute activation time, seconds *)
    fail : int list;  (** duplex ids going dark at [at] *)
    recover : int list;  (** duplex ids coming back up at [at] *)
  }

  val schedule :
    t ->
    rng:Peel_util.Rng.t ->
    epochs:int ->
    period:float ->
    fraction:float ->
    epoch list
  (** [epochs] dark-set draws, one every [period] seconds starting at
      time 0, each darkening [fraction] of the inter-switch cables
      while provably keeping all hosts connected (up to 100 retries
      per epoch; raises [Failure] otherwise).  Deltas are relative to
      the previous epoch's dark set (epoch 0 against the fully-lit
      fabric).  The fabric's link state is left untouched — callers
      apply epochs via {!Peel_topology.Graph.fail_link} /
      [recover_link] or a [Fault] schedule.  Raises
      [Invalid_argument] unless [epochs >= 1], [period > 0] and
      [0 <= fraction < 1]. *)
end
