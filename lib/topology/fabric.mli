(** Unified view over every fabric flavour the repository evaluates.

    Upper layers (Steiner trees, the prefix engine, the simulator) are
    written against this interface so each algorithm runs unchanged on a
    fat-tree, a leaf–spine, a rail-optimized fabric or any topology-zoo
    fabric ({!Zoo}).  Single-pod fabrics (leaf–spine, rail, the flat zoo
    classes) are treated as one pod whose "ToRs" are the switches the
    endpoints attach to. *)

type t = Ft of Fat_tree.t | Ls of Leaf_spine.t | Rl of Rail.t | Zo of Zoo.t

val fat_tree :
  ?hosts_per_tor:int ->
  ?gpus_per_host:int ->
  ?link_bw:float ->
  ?nvlink_bw:float ->
  ?link_latency:float ->
  k:int ->
  unit ->
  t

val leaf_spine :
  ?gpus_per_host:int ->
  ?link_bw:float ->
  ?nvlink_bw:float ->
  ?link_latency:float ->
  spines:int ->
  leaves:int ->
  hosts_per_leaf:int ->
  unit ->
  t

val rail :
  ?link_bw:float ->
  ?nvlink_bw:float ->
  ?link_latency:float ->
  rails:int ->
  groups:int ->
  servers_per_group:int ->
  spines:int ->
  unit ->
  t
(** Rail-optimized fabric (§2.1 future work): GPU [r] of every server
    attaches to its group's rail-[r] ToR; rail ToRs connect to all
    spines. One flat pod for prefix addressing. *)

val of_zoo : Zoo.t -> t
(** Wrap a topology-zoo fabric ({!Zoo.abfattree}, {!Zoo.vl2},
    {!Zoo.jellyfish}, {!Zoo.xpander}).  The abfattree keeps its real
    pods (pod prefixes work as on a fat-tree); the flat classes are one
    pod, like a leaf–spine. *)

val graph : t -> Graph.t
val gpus : t -> int array
val hosts : t -> int array
val tors : t -> int array

val endpoints : t -> int array
(** The nodes collectives run between: GPUs when present, hosts
    otherwise. *)

val host_of_gpu : t -> int -> int
val tor_of_host : t -> int -> int
(** Raises [Invalid_argument] on rail fabrics, where a server spans
    every rail ToR — use [attach_tor] on the GPU instead. *)

val endpoint_host : t -> int -> int
(** The host NIC serving an endpoint (identity for a host node). *)

val attach_tor : t -> int -> int
(** ToR/leaf switch serving an endpoint (GPU or host). *)

val pods : t -> int
val tors_per_pod : t -> int

val pod_of_tor : t -> int -> int
val tor_idx_in_pod : t -> int -> int
(** Identifier of a ToR within its pod — the address space the prefix
    engine encodes. *)

val tors_of_pod : t -> int -> int array

val failure_domain : t -> [ `Tor_up | `Agg_up | `All ] -> int array
(** Candidate duplex link ids for failure injection.  For a leaf–spine,
    every tier maps to the spine–leaf links. *)

val fail_random :
  t ->
  rng:Peel_util.Rng.t ->
  tier:[ `Tor_up | `Agg_up | `All ] ->
  fraction:float ->
  ?ensure_connected:bool ->
  unit ->
  int list
(** Fail [fraction] of the tier's duplex links uniformly at random;
    returns the failed duplex ids.  With [ensure_connected] (default
    true) the draw is retried (up to 100 times) until all hosts remain
    mutually reachable; raises [Failure] if that proves impossible.
    Previously injected failures are untouched. *)

val recover_link : t -> int -> unit
(** Bring a duplex pair (given either direction's id) back up —
    [Graph.recover_link] on the fabric's graph, the undo of a
    [fail_random] pick. *)

val describe : t -> string
(** One-line human description, e.g. "fat-tree k=8 (128 hosts, 1024 gpus)". *)

(** {1 Introspection}

    Structural views the topology zoo and the experiment harness share,
    so callers never recount tiers or endpoints by hand. *)

val layer_of : t -> int -> int
(** Structural layer of a node: 0 for endpoints (GPUs and hosts), 1 for
    ToRs/leaves, 2 for aggregation/spine switches, 3 for cores and VL2
    intermediates.  Zoo fabrics answer from their generator's layer
    annotation ({!Zoo.layer_of}); expander classes put every switch on
    layer 1 (their planner layers are per-source BFS levels instead). *)

val num_layers : t -> int
(** [1 + max layer]: 4 on a fat-tree/abfattree/VL2, 3 on leaf–spine and
    rail fabrics, 2 on the expander classes. *)

val switches_at_layer : t -> int -> int array
(** Switch node ids on a structural layer, ascending; empty for layers
    holding no switches. *)

val num_endpoints : t -> int
(** [Array.length (endpoints t)] — the number of nodes collectives run
    between. *)
