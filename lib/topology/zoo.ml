module Rng = Peel_util.Rng

type cls = Abfattree | Vl2 | Jellyfish | Xpander

let cls_to_string = function
  | Abfattree -> "abfattree"
  | Vl2 -> "vl2"
  | Jellyfish -> "jellyfish"
  | Xpander -> "xpander"

let cls_of_string = function
  | "abfattree" -> Some Abfattree
  | "vl2" -> Some Vl2
  | "jellyfish" -> Some Jellyfish
  | "xpander" -> Some Xpander
  | _ -> None

let all_classes = [ Abfattree; Vl2; Jellyfish; Xpander ]

type params =
  | P_abfattree of { k : int; hosts_per_tor : int }
  | P_vl2 of { da : int; di : int; hosts_per_tor : int }
  | P_jellyfish of {
      switches : int;
      net_degree : int;
      hosts_per_tor : int;
      seed : int;
    }
  | P_xpander of {
      net_degree : int;
      lift : int;
      hosts_per_tor : int;
      seed : int;
    }

type t = {
  params : params;
  graph : Graph.t;
  pods : int;
  tors : int array;
  tors_of_pod : int array array;
  hosts : int array;
  tor_of_host : int array;
  layer_of : int array;
  layered : bool;
}

let cls t =
  match t.params with
  | P_abfattree _ -> Abfattree
  | P_vl2 _ -> Vl2
  | P_jellyfish _ -> Jellyfish
  | P_xpander _ -> Xpander

let hosts_per_tor t =
  match t.params with
  | P_abfattree p -> p.hosts_per_tor
  | P_vl2 p -> p.hosts_per_tor
  | P_jellyfish p -> p.hosts_per_tor
  | P_xpander p -> p.hosts_per_tor

let seed t =
  match t.params with
  | P_jellyfish p -> Some p.seed
  | P_xpander p -> Some p.seed
  | P_abfattree _ | P_vl2 _ -> None

let net_degree t =
  match t.params with
  | P_jellyfish p -> Some p.net_degree
  | P_xpander p -> Some p.net_degree
  | P_abfattree _ | P_vl2 _ -> None

let num_hosts t = Array.length t.hosts

let num_switches t =
  Array.fold_left
    (fun acc (nd : Graph.node) ->
      if Graph.kind_is_switch nd.Graph.kind then acc + 1 else acc)
    0
    (Graph.nodes t.graph)

let layer_of t v = t.layer_of.(v)
let num_layers t = 1 + Array.fold_left max 0 t.layer_of

let switches_at_layer t l =
  Graph.nodes t.graph |> Array.to_list
  |> List.filter_map (fun (nd : Graph.node) ->
         if Graph.kind_is_switch nd.Graph.kind && t.layer_of.(nd.Graph.id) = l
         then Some nd.Graph.id
         else None)
  |> Array.of_list

let inter_switch_duplex_links t =
  let g = t.graph in
  Graph.duplex_ids g |> Array.to_list
  |> List.filter (fun id ->
         let l = Graph.link g id in
         Graph.kind_is_switch (Graph.node g l.Graph.src).Graph.kind
         && Graph.kind_is_switch (Graph.node g l.Graph.dst).Graph.kind)
  |> Array.of_list

let describe t =
  match t.params with
  | P_abfattree { k; _ } ->
      Printf.sprintf "zoo abfattree k=%d (%d hosts, %d pods)" k (num_hosts t)
        t.pods
  | P_vl2 { da; di; _ } ->
      Printf.sprintf "zoo vl2 da=%d di=%d (%d hosts, %d racks)" da di
        (num_hosts t) (Array.length t.tors)
  | P_jellyfish { switches; net_degree; seed; _ } ->
      Printf.sprintf "zoo jellyfish n=%d r=%d seed=%d (%d hosts)" switches
        net_degree seed (num_hosts t)
  | P_xpander { net_degree; lift; seed; _ } ->
      Printf.sprintf "zoo xpander d=%d lift=%d seed=%d (%d switches, %d hosts)"
        net_degree lift seed (num_switches t) (num_hosts t)

(* ------------------------------------------------------------------ *)
(* Validation (structural: link up/down state never matters here)      *)
(* ------------------------------------------------------------------ *)

let structurally_connected g =
  let n = Graph.num_nodes g in
  if n = 0 then true
  else begin
    let seen = Array.make n false in
    let queue = Queue.create () in
    seen.(0) <- true;
    Queue.push 0 queue;
    let count = ref 1 in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Array.iter
        (fun (u, _) ->
          if not seen.(u) then begin
            seen.(u) <- true;
            incr count;
            Queue.push u queue
          end)
        (Graph.out_links g v)
    done;
    !count = n
  end

let layering_violations t =
  let g = t.graph in
  let n = Graph.num_nodes g in
  let viol = ref [] in
  let add fmt = Printf.ksprintf (fun s -> viol := s :: !viol) fmt in
  if Array.length t.layer_of <> n then
    add "layer_of has %d entries for a %d-node graph"
      (Array.length t.layer_of) n
  else begin
    (* Endpoints on layer 0 wired only to switches; switches above. *)
    for v = 0 to n - 1 do
      let nd = Graph.node g v in
      let lv = t.layer_of.(v) in
      if Graph.kind_is_switch nd.Graph.kind then begin
        if lv < 1 then
          add "switch %d sits on endpoint layer %d (switches live on >= 1)" v
            lv
      end
      else begin
        if lv <> 0 then add "endpoint %d sits on layer %d (endpoints are 0)" v lv;
        Array.iter
          (fun (u, _) ->
            if not (Graph.kind_is_switch (Graph.node g u).Graph.kind) then
              add "endpoint %d wired to non-switch %d" v u)
          (Graph.out_links g v)
      end
    done;
    (* Layers must be contiguous 0..top. *)
    let top = Array.fold_left max 0 t.layer_of in
    for l = 0 to top do
      if not (Array.exists (fun x -> x = l) t.layer_of) then
        add "no node on layer %d (layers must be contiguous)" l
    done;
    (* Edge discipline: layered classes cross exactly one layer per hop
       and reach downward from every upper tier; the flat pseudo
       layering allows same-layer switch cables. *)
    for v = 0 to n - 1 do
      let lv = t.layer_of.(v) in
      Array.iter
        (fun (u, _) ->
          let lu = t.layer_of.(u) in
          let d = abs (lu - lv) in
          if t.layered then begin
            if d <> 1 then
              add "edge %d(layer %d) -> %d(layer %d) does not cross one layer"
                v lv u lu
          end
          else if d > 1 then
            add "edge %d(layer %d) -> %d(layer %d) skips a pseudo-layer" v lv
              u lu)
        (Graph.out_links g v);
      if t.layered && lv >= 2 then
        if
          not
            (Array.exists
               (fun (u, _) -> t.layer_of.(u) = lv - 1)
               (Graph.out_links g v))
        then add "node %d on layer %d has no layer-%d neighbour" v lv (lv - 1)
    done
  end;
  if not (structurally_connected g) then add "generated graph is disconnected";
  List.rev !viol

let invariant_violations t =
  let g = t.graph in
  let viol = ref [] in
  let add fmt = Printf.ksprintf (fun s -> viol := s :: !viol) fmt in
  let count kind =
    Array.fold_left
      (fun acc (nd : Graph.node) -> if nd.Graph.kind = kind then acc + 1 else acc)
      0 (Graph.nodes g)
  in
  let check_count what kind expected =
    let got = count kind in
    if got <> expected then add "%s count %d, expected %d" what got expected
  in
  let check_degrees expected_of =
    Array.iter
      (fun (nd : Graph.node) ->
        let got = Array.length (Graph.out_links g nd.Graph.id) in
        let want = expected_of nd in
        if got <> want then
          add "node %d (%s) has structural degree %d, expected %d" nd.Graph.id
            (Graph.kind_to_string nd.Graph.kind)
            got want)
      (Graph.nodes g)
  in
  let check_tors expected =
    if Array.length t.tors <> expected then
      add "tors array has %d entries, expected %d" (Array.length t.tors)
        expected
  in
  let check_hosts expected =
    if Array.length t.hosts <> expected then
      add "hosts array has %d entries, expected %d" (Array.length t.hosts)
        expected
  in
  (match t.params with
  | P_abfattree { k; hosts_per_tor } ->
      let half = k / 2 in
      check_count "tor" Graph.Tor (k * half);
      check_count "agg" Graph.Agg (k * half);
      check_count "core" Graph.Core (half * half);
      check_count "host" Graph.Host (k * half * hosts_per_tor);
      check_tors (k * half);
      check_hosts (k * half * hosts_per_tor);
      if t.pods <> k then add "pods = %d, expected %d" t.pods k;
      check_degrees (fun nd ->
          match nd.Graph.kind with
          | Graph.Tor -> half + hosts_per_tor
          | Graph.Agg -> k
          | Graph.Core -> k
          | _ -> 1)
  | P_vl2 { da; di; hosts_per_tor } ->
      let ntors = da * di / 4 in
      check_count "tor" Graph.Tor ntors;
      check_count "agg" Graph.Agg di;
      check_count "intermediate" Graph.Core (da / 2);
      check_count "host" Graph.Host (ntors * hosts_per_tor);
      check_tors ntors;
      check_hosts (ntors * hosts_per_tor);
      check_degrees (fun nd ->
          match nd.Graph.kind with
          | Graph.Tor -> 2 + hosts_per_tor
          | Graph.Agg -> da
          | Graph.Core -> di
          | _ -> 1)
  | P_jellyfish { switches; net_degree; hosts_per_tor; _ } ->
      check_count "switch" Graph.Tor switches;
      check_count "host" Graph.Host (switches * hosts_per_tor);
      check_tors switches;
      check_hosts (switches * hosts_per_tor);
      check_degrees (fun nd ->
          match nd.Graph.kind with
          | Graph.Tor -> net_degree + hosts_per_tor
          | _ -> 1)
  | P_xpander { net_degree; lift; hosts_per_tor; _ } ->
      let switches = (net_degree + 1) * lift in
      check_count "switch" Graph.Tor switches;
      check_count "host" Graph.Host (switches * hosts_per_tor);
      check_tors switches;
      check_hosts (switches * hosts_per_tor);
      check_degrees (fun nd ->
          match nd.Graph.kind with
          | Graph.Tor -> net_degree + hosts_per_tor
          | _ -> 1));
  (* Every listed host hangs off the switch recorded for it. *)
  Array.iter
    (fun h ->
      let tor = t.tor_of_host.(h) in
      if tor < 0 then add "host %d has no recorded ToR" h
      else if
        not (Array.exists (fun (u, _) -> u = tor) (Graph.out_links g h))
      then add "host %d not wired to its recorded ToR %d" h tor)
    t.hosts;
  List.rev !viol

let validate t =
  match layering_violations t @ invariant_violations t with
  | [] -> Ok ()
  | vs -> Error vs

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let layer_of_kind = function
  | Graph.Gpu | Graph.Host -> 0
  | Graph.Tor -> 1
  | Graph.Agg | Graph.Spine -> 2
  | Graph.Core -> 3

let assemble b ~params ~layered ~pods ~tors ~tors_of_pod ~host_pairs =
  let graph = Graph.Builder.finish b in
  let n = Graph.num_nodes graph in
  let tor_of_host = Array.make n (-1) in
  List.iter (fun (h, tor) -> tor_of_host.(h) <- tor) host_pairs;
  let hosts = Array.of_list (List.map fst host_pairs) in
  let layer_of =
    Array.init n (fun v -> layer_of_kind (Graph.node graph v).Graph.kind)
  in
  { params; graph; pods; tors; tors_of_pod; hosts; tor_of_host; layer_of;
    layered }

let add_hosts b ~duplex ~link_bw ~hosts_per_tor ~pod tor acc =
  for j = 0 to hosts_per_tor - 1 do
    let h = Graph.Builder.add_node b Graph.Host ~pod ~idx:j in
    ignore (duplex ~bandwidth:link_bw tor h);
    acc := (h, tor) :: !acc
  done

let gen_abfattree ~k ~hosts_per_tor ~link_bw ~link_latency =
  if k < 4 || k mod 2 <> 0 then
    err "k must be even and >= 4 (got %d)" k
  else if hosts_per_tor < 1 then err "hosts_per_tor must be >= 1"
  else begin
    let half = k / 2 in
    let b = Graph.Builder.create () in
    let duplex = Graph.Builder.add_duplex b ~latency:link_latency in
    let tors_of_pod =
      Array.init k (fun p ->
          Array.init half (fun i -> Graph.Builder.add_node b Graph.Tor ~pod:p ~idx:i))
    in
    let aggs_of_pod =
      Array.init k (fun p ->
          Array.init half (fun a -> Graph.Builder.add_node b Graph.Agg ~pod:p ~idx:a))
    in
    let cores =
      Array.init (half * half) (fun c ->
          Graph.Builder.add_node b Graph.Core ~pod:(-1) ~idx:c)
    in
    Array.iteri
      (fun p tors ->
        Array.iter
          (fun tor ->
            Array.iter
              (fun agg -> ignore (duplex ~bandwidth:link_bw tor agg))
              aggs_of_pod.(p))
          tors)
      tors_of_pod;
    (* A pods (even) use the standard aggregation-to-core striping, B
       pods (odd) the transpose: core (j, a) serves aggregation index j
       in A pods but index a in B pods — F10's AB trick. *)
    Array.iteri
      (fun p aggs ->
        Array.iteri
          (fun a agg ->
            for j = 0 to half - 1 do
              let core =
                if p mod 2 = 0 then cores.((a * half) + j)
                else cores.((j * half) + a)
              in
              ignore (duplex ~bandwidth:link_bw agg core)
            done)
          aggs)
      aggs_of_pod;
    let host_pairs = ref [] in
    Array.iteri
      (fun p tors ->
        Array.iter
          (fun tor -> add_hosts b ~duplex ~link_bw ~hosts_per_tor ~pod:p tor host_pairs)
          tors)
      tors_of_pod;
    let tors = Array.concat (Array.to_list tors_of_pod) in
    Ok
      (assemble b
         ~params:(P_abfattree { k; hosts_per_tor })
         ~layered:true ~pods:k ~tors ~tors_of_pod
         ~host_pairs:(List.rev !host_pairs))
  end

let gen_vl2 ~da ~di ~hosts_per_tor ~link_bw ~link_latency =
  if da < 2 || da mod 2 <> 0 then err "da must be even and >= 2 (got %d)" da
  else if di < 2 || di mod 2 <> 0 then err "di must be even and >= 2 (got %d)" di
  else if hosts_per_tor < 1 then err "hosts_per_tor must be >= 1"
  else begin
    let nints = da / 2 and naggs = di in
    let ntors = da * di / 4 in
    let b = Graph.Builder.create () in
    let duplex = Graph.Builder.add_duplex b ~latency:link_latency in
    let tors =
      Array.init ntors (fun i -> Graph.Builder.add_node b Graph.Tor ~pod:0 ~idx:i)
    in
    let aggs =
      Array.init naggs (fun j -> Graph.Builder.add_node b Graph.Agg ~pod:(-1) ~idx:j)
    in
    let ints =
      Array.init nints (fun m -> Graph.Builder.add_node b Graph.Core ~pod:(-1) ~idx:m)
    in
    Array.iteri
      (fun i tor ->
        ignore (duplex ~bandwidth:link_bw tor aggs.(2 * i mod naggs));
        ignore (duplex ~bandwidth:link_bw tor aggs.(((2 * i) + 1) mod naggs)))
      tors;
    Array.iter
      (fun agg ->
        Array.iter (fun im -> ignore (duplex ~bandwidth:link_bw agg im)) ints)
      aggs;
    let host_pairs = ref [] in
    Array.iter
      (fun tor -> add_hosts b ~duplex ~link_bw ~hosts_per_tor ~pod:0 tor host_pairs)
      tors;
    Ok
      (assemble b
         ~params:(P_vl2 { da; di; hosts_per_tor })
         ~layered:true ~pods:1 ~tors ~tors_of_pod:[| tors |]
         ~host_pairs:(List.rev !host_pairs))
  end

(* Connectivity of a switch-only edge list before any graph is built. *)
let connected_edges n edges =
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edges;
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(0) <- true;
  Queue.push 0 queue;
  let count = ref 1 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun u ->
        if not seen.(u) then begin
          seen.(u) <- true;
          incr count;
          Queue.push u queue
        end)
      adj.(v)
  done;
  !count = n

let build_flat b ~duplex ~link_bw ~params ~ntors ~edges ~hosts_per_tor =
  let tors =
    Array.init ntors (fun i -> Graph.Builder.add_node b Graph.Tor ~pod:0 ~idx:i)
  in
  List.iter
    (fun (u, v) -> ignore (duplex ~bandwidth:link_bw tors.(u) tors.(v)))
    edges;
  let host_pairs = ref [] in
  Array.iter
    (fun tor -> add_hosts b ~duplex ~link_bw ~hosts_per_tor ~pod:0 tor host_pairs)
    tors;
  assemble b ~params ~layered:false ~pods:1 ~tors ~tors_of_pod:[| tors |]
    ~host_pairs:(List.rev !host_pairs)

let gen_jellyfish ~switches ~net_degree ~hosts_per_tor ~seed ~link_bw
    ~link_latency =
  let n = switches and r = net_degree in
  if n < 3 then err "need at least 3 switches (got %d)" n
  else if r < 2 || r >= n then
    err "net_degree must be in [2, switches) (got %d)" r
  else if n * r mod 2 <> 0 then err "switches * net_degree must be even"
  else if hosts_per_tor < 1 then err "hosts_per_tor must be >= 1"
  else begin
    let rng = Rng.create seed in
    (* Configuration-model draw: shuffle the stub multiset and pair
       adjacent stubs, rejecting self-loops, parallel edges and
       disconnected samples — standard Jellyfish construction. *)
    let attempt () =
      let stubs = Array.init (n * r) (fun i -> i / r) in
      Rng.shuffle rng stubs;
      let seen = Hashtbl.create (n * r) in
      let edges = ref [] and ok = ref true in
      for i = 0 to (n * r / 2) - 1 do
        let u = stubs.(2 * i) and v = stubs.((2 * i) + 1) in
        let key = (min u v, max u v) in
        if u = v || Hashtbl.mem seen key then ok := false
        else begin
          Hashtbl.replace seen key ();
          edges := (u, v) :: !edges
        end
      done;
      let edges = List.rev !edges in
      if !ok && connected_edges n edges then Some edges else None
    in
    let rec retry k =
      if k = 0 then None
      else match attempt () with Some e -> Some e | None -> retry (k - 1)
    in
    match retry 500 with
    | None ->
        err "no connected simple %d-regular graph found for seed %d" r seed
    | Some edges ->
        let b = Graph.Builder.create () in
        let duplex = Graph.Builder.add_duplex b ~latency:link_latency in
        Ok
          (build_flat b ~duplex ~link_bw
             ~params:(P_jellyfish { switches; net_degree; hosts_per_tor; seed })
             ~ntors:n ~edges ~hosts_per_tor)
  end

let gen_xpander ~net_degree ~lift ~hosts_per_tor ~seed ~link_bw ~link_latency =
  let d = net_degree and l = lift in
  if d < 2 then err "net_degree must be >= 2 (got %d)" d
  else if l < 1 then err "lift must be >= 1 (got %d)" l
  else if hosts_per_tor < 1 then err "hosts_per_tor must be >= 1"
  else begin
    let rng = Rng.create seed in
    let nswitch = (d + 1) * l in
    let sid u i = (u * l) + i in
    (* One random perfect matching between the copy sets of every base
       edge of K_(d+1): copies (u, i) -- (v, perm(i)). *)
    let attempt () =
      let edges = ref [] in
      for u = 0 to d do
        for v = u + 1 to d do
          let perm = Array.init l Fun.id in
          Rng.shuffle rng perm;
          for i = 0 to l - 1 do
            edges := (sid u i, sid v perm.(i)) :: !edges
          done
        done
      done;
      let edges = List.rev !edges in
      if connected_edges nswitch edges then Some edges else None
    in
    let rec retry k =
      if k = 0 then None
      else match attempt () with Some e -> Some e | None -> retry (k - 1)
    in
    match retry 100 with
    | None -> err "no connected lift found for seed %d" seed
    | Some edges ->
        let b = Graph.Builder.create () in
        let duplex = Graph.Builder.add_duplex b ~latency:link_latency in
        Ok
          (build_flat b ~duplex ~link_bw
             ~params:(P_xpander { net_degree; lift; hosts_per_tor; seed })
             ~ntors:nswitch ~edges ~hosts_per_tor)
  end

(* ------------------------------------------------------------------ *)
(* Public constructors: validate generator output before release       *)
(* ------------------------------------------------------------------ *)

let unwrap name = function
  | Error msg -> invalid_arg (Printf.sprintf "Zoo.%s: %s" name msg)
  | Ok t -> (
      match validate t with
      | Ok () -> t
      | Error vs ->
          invalid_arg
            (Printf.sprintf "Zoo.%s: generated fabric invalid: %s" name
               (String.concat "; " vs)))

let abfattree ?hosts_per_tor ?(link_bw = 12.5e9) ?(link_latency = 500e-9) ~k ()
    =
  let hosts_per_tor = Option.value hosts_per_tor ~default:(max 1 (k / 2)) in
  unwrap "abfattree" (gen_abfattree ~k ~hosts_per_tor ~link_bw ~link_latency)

let vl2 ?(hosts_per_tor = 2) ?(link_bw = 12.5e9) ?(link_latency = 500e-9) ~da
    ~di () =
  unwrap "vl2" (gen_vl2 ~da ~di ~hosts_per_tor ~link_bw ~link_latency)

let jellyfish ?(hosts_per_tor = 1) ?(link_bw = 12.5e9)
    ?(link_latency = 500e-9) ~switches ~net_degree ~seed () =
  unwrap "jellyfish"
    (gen_jellyfish ~switches ~net_degree ~hosts_per_tor ~seed ~link_bw
       ~link_latency)

let xpander ?(hosts_per_tor = 1) ?(link_bw = 12.5e9) ?(link_latency = 500e-9)
    ~net_degree ~lift ~seed () =
  unwrap "xpander"
    (gen_xpander ~net_degree ~lift ~hosts_per_tor ~seed ~link_bw ~link_latency)

let opt_of f = match f () with t -> Some t | exception Invalid_argument _ -> None

let abfattree_opt ?hosts_per_tor ?link_bw ?link_latency ~k () =
  opt_of (fun () -> abfattree ?hosts_per_tor ?link_bw ?link_latency ~k ())

let vl2_opt ?hosts_per_tor ?link_bw ?link_latency ~da ~di () =
  opt_of (fun () -> vl2 ?hosts_per_tor ?link_bw ?link_latency ~da ~di ())

let jellyfish_opt ?hosts_per_tor ?link_bw ?link_latency ~switches ~net_degree
    ~seed () =
  opt_of (fun () ->
      jellyfish ?hosts_per_tor ?link_bw ?link_latency ~switches ~net_degree
        ~seed ())

let xpander_opt ?hosts_per_tor ?link_bw ?link_latency ~net_degree ~lift ~seed
    () =
  opt_of (fun () ->
      xpander ?hosts_per_tor ?link_bw ?link_latency ~net_degree ~lift ~seed ())

(* ------------------------------------------------------------------ *)
(* Per-epoch optical reconfiguration                                   *)
(* ------------------------------------------------------------------ *)

module Reconfig = struct
  type epoch = { at : float; fail : int list; recover : int list }

  module S = Set.Make (Int)

  let schedule t ~rng ~epochs ~period ~fraction =
    if epochs < 1 then invalid_arg "Zoo.Reconfig.schedule: epochs must be >= 1";
    if period <= 0.0 || not (Float.is_finite period) then
      invalid_arg "Zoo.Reconfig.schedule: period must be positive";
    if fraction < 0.0 || fraction >= 1.0 then
      invalid_arg "Zoo.Reconfig.schedule: fraction in [0,1)";
    let g = t.graph in
    let cands = inter_switch_duplex_links t in
    let ncand = Array.length cands in
    let dark = int_of_float (Float.round (fraction *. float_of_int ncand)) in
    let hosts = Array.to_list t.hosts in
    let draw () =
      let rec attempt tries =
        if tries = 0 then
          failwith "Zoo.Reconfig.schedule: could not keep hosts connected"
        else begin
          let picks =
            Rng.sample_without_replacement rng ncand dark
            |> List.map (fun i -> cands.(i))
          in
          List.iter (Graph.fail_link g) picks;
          let ok = Graph.connected g hosts in
          List.iter (Graph.recover_link g) picks;
          if ok then S.of_list picks else attempt (tries - 1)
        end
      in
      attempt 100
    in
    let prev = ref S.empty in
    List.init epochs (fun e ->
        let d = draw () in
        let fail = S.elements (S.diff d !prev) in
        let recover = S.elements (S.diff !prev d) in
        prev := d;
        { at = float_of_int e *. period; fail; recover })
end
