type kind = Gpu | Host | Tor | Agg | Core | Spine

let kind_to_string = function
  | Gpu -> "gpu"
  | Host -> "host"
  | Tor -> "tor"
  | Agg -> "agg"
  | Core -> "core"
  | Spine -> "spine"

let kind_is_switch = function
  | Tor | Agg | Core | Spine -> true
  | Gpu | Host -> false

type node = { id : int; kind : kind; pod : int; idx : int }

type link = {
  link_id : int;
  src : int;
  dst : int;
  bandwidth : float;
  latency : float;
  mutable up : bool;
}

type t = {
  nodes : node array;
  links : link array;
  adj : (int * int) array array; (* out-edges: (dst node, link id) *)
}

module Builder = struct
  type b = {
    mutable rev_nodes : node list;
    mutable rev_links : link list;
    mutable n_nodes : int;
    mutable n_links : int;
  }

  type t = b

  let create () = { rev_nodes = []; rev_links = []; n_nodes = 0; n_links = 0 }

  let add_node b kind ~pod ~idx =
    let id = b.n_nodes in
    b.rev_nodes <- { id; kind; pod; idx } :: b.rev_nodes;
    b.n_nodes <- id + 1;
    id

  let add_duplex b ?(latency = 500e-9) ~bandwidth a c =
    if a = c then invalid_arg "Graph.Builder.add_duplex: self-loop";
    let fwd = b.n_links in
    let bwd = fwd + 1 in
    b.rev_links <-
      { link_id = bwd; src = c; dst = a; bandwidth; latency; up = true }
      :: { link_id = fwd; src = a; dst = c; bandwidth; latency; up = true }
      :: b.rev_links;
    b.n_links <- b.n_links + 2;
    fwd

  let finish b =
    let nodes = Array.of_list (List.rev b.rev_nodes) in
    let links = Array.of_list (List.rev b.rev_links) in
    let degree = Array.make (Array.length nodes) 0 in
    Array.iter (fun l -> degree.(l.src) <- degree.(l.src) + 1) links;
    let adj = Array.map (fun d -> Array.make d (0, 0)) degree in
    let fill = Array.make (Array.length nodes) 0 in
    Array.iter
      (fun l ->
        adj.(l.src).(fill.(l.src)) <- (l.dst, l.link_id);
        fill.(l.src) <- fill.(l.src) + 1)
      links;
    (* Sort out-edges by (dst, link id) so traversal order is stable and
       independent of construction order. *)
    Array.iter (fun edges -> Array.sort compare edges) adj;
    { nodes; links; adj }
end

let num_nodes t = Array.length t.nodes
let num_links t = Array.length t.links
let node t i = t.nodes.(i)
let link t i = t.links.(i)
let nodes t = t.nodes
let links t = t.links
let peer_link id = id lxor 1
let out_links t v = t.adj.(v)
let link_up t i = t.links.(i).up
let degree t v = Array.length t.adj.(v)

let up_degree t v =
  Array.fold_left
    (fun acc (_, lid) -> if link_up t lid then acc + 1 else acc)
    0 t.adj.(v)

let link_between t a c =
  let best = ref None in
  Array.iter
    (fun (dst, lid) ->
      if dst = c && t.links.(lid).up then
        match !best with
        | Some b when b <= lid -> ()
        | _ -> best := Some lid)
    t.adj.(a);
  !best

let fold_kind t kind f init =
  Array.fold_left (fun acc n -> if n.kind = kind then f acc n else acc) init t.nodes

let nodes_of_kind t kind =
  fold_kind t kind (fun acc n -> n.id :: acc) [] |> List.rev |> Array.of_list

let fail_link t i =
  t.links.(i).up <- false;
  t.links.(peer_link i).up <- false

let recover_link t i =
  t.links.(i).up <- true;
  t.links.(peer_link i).up <- true

let restore_all t = Array.iter (fun l -> l.up <- true) t.links

let duplex_ids t =
  Array.init (num_links t / 2) (fun i -> 2 * i)

let unreachable = max_int

let bfs_generic t src ~allow =
  let n = num_nodes t in
  if src < 0 || src >= n then invalid_arg "Graph.bfs: bad source";
  let dist = Array.make n unreachable in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.push src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    let dv = dist.(v) in
    Array.iter
      (fun (w, lid) ->
        if t.links.(lid).up && dist.(w) = unreachable && allow t.nodes.(w) then begin
          dist.(w) <- dv + 1;
          Queue.push w q
        end)
      t.adj.(v)
  done;
  dist

let bfs_dist t src = bfs_generic t src ~allow:(fun _ -> true)

let bfs_dist_filtered t src ~allow = bfs_generic t src ~allow:(fun n -> allow n)

let hop_layers t src =
  let dist = bfs_dist t src in
  let maxd =
    Array.fold_left
      (fun acc d -> if d <> unreachable && d > acc then d else acc)
      0 dist
  in
  let layers = Array.make (maxd + 1) [] in
  (* Walk ids downward so each layer list ends up ascending. *)
  for v = num_nodes t - 1 downto 0 do
    let d = dist.(v) in
    if d <> unreachable then layers.(d) <- v :: layers.(d)
  done;
  layers

let shortest_path_from_dist t ~dist src dst =
  let n = num_nodes t in
  if dst < 0 || dst >= n then invalid_arg "Graph.shortest_path: bad destination";
  if dist.(dst) = unreachable then None
  else begin
    (* Walk back from [dst], always taking the lowest-id predecessor at
       distance d-1; adjacency is sorted so scanning in order suffices. *)
    let rec back v acc =
      if v = src then v :: acc
      else begin
        let dv = dist.(v) in
        let pred = ref (-1) in
        Array.iter
          (fun (w, lid) ->
            if !pred = -1 && t.links.(peer_link lid).up && dist.(w) = dv - 1 then
              pred := w)
          t.adj.(v);
        assert (!pred >= 0);
        back !pred (v :: acc)
      end
    in
    Some (back dst [])
  end

let shortest_path t src dst =
  shortest_path_from_dist t ~dist:(bfs_dist t src) src dst

(* SplitMix64-style finalizer over a few ints, for ECMP hashing. *)
let mix_ints ints =
  let mix64 z =
    let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
    let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
    Int64.(logxor z (shift_right_logical z 31))
  in
  let h =
    List.fold_left
      (fun acc x -> mix64 (Int64.add acc (Int64.of_int x)))
      0x9E3779B97F4A7C15L ints
  in
  Int64.to_int (Int64.shift_right_logical h 1) land max_int

let shortest_path_ecmp_from_dist t ~dist src dst ~salt =
  let n = num_nodes t in
  if dst < 0 || dst >= n then invalid_arg "Graph.shortest_path_ecmp: bad destination";
  if dist.(dst) = unreachable then None
  else begin
    let rec back v acc =
      if v = src then v :: acc
      else begin
        let dv = dist.(v) in
        let preds = ref [] in
        Array.iter
          (fun (w, lid) ->
            if t.links.(peer_link lid).up && dist.(w) = dv - 1 then
              preds := w :: !preds)
          t.adj.(v);
        let preds = Array.of_list (List.rev !preds) in
        let count = Array.length preds in
        assert (count > 0);
        let pick = mix_ints [ src; dst; v; salt ] mod count in
        back preds.(pick) (v :: acc)
      end
    in
    Some (back dst [])
  end

let shortest_path_ecmp t src dst ~salt =
  shortest_path_ecmp_from_dist t ~dist:(bfs_dist t src) src dst ~salt

let connected t nodes =
  match nodes with
  | [] | [ _ ] -> true
  | first :: rest ->
      let dist = bfs_dist t first in
      List.for_all (fun v -> dist.(v) <> unreachable) rest
