(* Bounded keyed cache for planning results.  The service control plane
   memoizes full peels and prefix plans per (source, member-set) so the
   many identical small groups of a multi-tenant Poisson mix skip
   Layer_peel / Plan.build entirely.

   Determinism contract: a cache hit must return a value observationally
   identical to recomputing it, so hits never change behaviour — only
   time.  Two mechanisms keep that true under mutation of the fabric:
   [bump_epoch] empties the cache (fault / reconfiguration epochs), and
   the capacity bound drops *insertions* rather than evicting — the set
   of cached keys is a deterministic function of the insertion sequence,
   never of hash-order or timing. *)

type ('k, 'v) t = {
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  capacity : int;
  buckets : (int, ('k * 'v) list) Hashtbl.t;
  mutable size : int;
  mutable hits : int;
  mutable misses : int;
  mutable epoch : int;
}

let create ?(capacity = 65536) ~hash ~equal () =
  if capacity < 1 then invalid_arg "Memo.create: capacity must be >= 1";
  {
    hash;
    equal;
    capacity;
    buckets = Hashtbl.create 1024;
    size = 0;
    hits = 0;
    misses = 0;
    epoch = 0;
  }

let length t = t.size
let hits t = t.hits
let misses t = t.misses
let epoch t = t.epoch

let bump_epoch t =
  Hashtbl.reset t.buckets;
  t.size <- 0;
  t.epoch <- t.epoch + 1

let find t k =
  let h = t.hash k in
  let rec lookup = function
    | [] -> None
    | (k', v) :: rest -> if t.equal k k' then Some v else lookup rest
  in
  match Hashtbl.find_opt t.buckets h with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some chain -> (
      match lookup chain with
      | Some v ->
          t.hits <- t.hits + 1;
          Some v
      | None ->
          t.misses <- t.misses + 1;
          None)

let add t k v =
  if t.size < t.capacity then begin
    let h = t.hash k in
    let chain = Option.value (Hashtbl.find_opt t.buckets h) ~default:[] in
    if not (List.exists (fun (k', _) -> t.equal k k') chain) then begin
      Hashtbl.replace t.buckets h ((k, v) :: chain);
      t.size <- t.size + 1
    end
  end

let memoize t k compute =
  match find t k with
  | Some v -> v
  | None ->
      let v = compute () in
      add t k v;
      v
