open Peel_topology

module Imap = Map.Make (Int)

type t = {
  root : int;
  parents : (int * int) Imap.t; (* node -> (parent, link id) *)
  child_map : (int * int) list Imap.t; (* node -> (child, link id), ascending *)
}

let root t = t.root

let of_parents g ~root ~parents =
  let pmap =
    List.fold_left
      (fun acc (node, (parent, lid)) ->
        if Imap.mem node acc then
          invalid_arg "Tree.of_parents: duplicate binding for a node";
        if node = root then invalid_arg "Tree.of_parents: root cannot have a parent";
        let l = Graph.link g lid in
        if l.Graph.src <> parent || l.Graph.dst <> node then
          invalid_arg "Tree.of_parents: link does not run parent->node";
        Imap.add node (parent, lid) acc)
      Imap.empty parents
  in
  (* Every parent chain must reach the root without cycling.  Nodes on
     an already-verified chain are remembered, so the whole pass is
     O(bindings) instead of O(bindings * depth). *)
  let n = List.length parents in
  let verified = Bytes.make (Graph.num_nodes g) '\000' in
  Imap.iter
    (fun node _ ->
      let rec walk v steps path =
        if v = root || Bytes.get verified v = '\001' then
          List.iter (fun u -> Bytes.set verified u '\001') path
        else if steps > n then
          invalid_arg "Tree.of_parents: parent chain does not reach the root"
        else
          match Imap.find_opt v pmap with
          | None -> invalid_arg "Tree.of_parents: parent chain does not reach the root"
          | Some (p, _) -> walk p (steps + 1) (v :: path)
      in
      walk node 0 [])
    pmap;
  let child_map =
    Imap.fold
      (fun node (parent, lid) acc ->
        let existing = Option.value (Imap.find_opt parent acc) ~default:[] in
        Imap.add parent ((node, lid) :: existing) acc)
      pmap Imap.empty
    |> Imap.map (List.sort compare)
  in
  { root; parents = pmap; child_map }

let members t =
  t.root :: Imap.fold (fun node _ acc -> node :: acc) t.parents []
  |> List.sort_uniq compare

let mem t v = v = t.root || Imap.mem v t.parents
let parent t v = Imap.find_opt v t.parents

let children t v = Option.value (Imap.find_opt v t.child_map) ~default:[]

let edges t =
  Imap.fold (fun node (parent, lid) acc -> (parent, node, lid) :: acc) t.parents []
  |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)

let link_ids t = Imap.fold (fun _ (_, lid) acc -> lid :: acc) t.parents []
let cost t = Imap.cardinal t.parents

let switch_members g t =
  List.filter
    (fun v -> Graph.kind_is_switch (Graph.node g v).Graph.kind)
    (members t)

let depth t v =
  if not (mem t v) then raise Not_found;
  let rec up v acc =
    match Imap.find_opt v t.parents with
    | None -> acc
    | Some (p, _) -> up p (acc + 1)
  in
  up v 0

let max_depth t =
  Imap.fold (fun node _ acc -> max acc (depth t node)) t.parents 0

let path_from_root t v =
  if not (mem t v) then raise Not_found;
  let rec up v acc =
    match Imap.find_opt v t.parents with
    | None -> v :: acc
    | Some (p, _) -> up p (v :: acc)
  in
  up v []

let validate g t ~dests =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_edge node (parent, lid) =
    if lid < 0 || lid >= Graph.num_links g then
      fail "node %d: link %d out of range" node lid
    else begin
      let l = Graph.link g lid in
      if l.Graph.src <> parent || l.Graph.dst <> node then
        fail "node %d: link %d does not run %d->%d" node lid parent node
      else if not l.Graph.up then fail "node %d: link %d is down" node lid
      else Ok ()
    end
  in
  let rec first_error = function
    | [] -> Ok ()
    | (node, pe) :: rest -> (
        match check_edge node pe with Ok () -> first_error rest | e -> e)
  in
  match first_error (Imap.bindings t.parents) with
  | Error _ as e -> e
  | Ok () ->
      let missing = List.filter (fun d -> not (mem t d)) dests in
      if missing <> [] then
        fail "destinations not spanned: %s"
          (String.concat "," (List.map string_of_int missing))
      else Ok ()
