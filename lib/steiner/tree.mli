(** Multicast (Steiner) trees over a fabric graph.

    A tree is rooted at the multicast source; every other member has
    exactly one parent edge pointing toward the root.  Edges are
    directed graph links (root-to-leaf direction), so a tree doubles as
    the exact set of links a multicast packet traverses. *)

open Peel_topology

type t

val root : t -> int

val of_parents : Graph.t -> root:int -> parents:(int * (int * int)) list -> t
(** [of_parents g ~root ~parents] builds a tree from
    [(node, (parent, link_id))] bindings.  The link must run
    parent->node.  Raises [Invalid_argument] on inconsistent input
    (wrong link endpoints, duplicate binding for a node, or a parent
    chain that does not reach the root). *)

val members : t -> int list
(** All nodes in the tree (root included), ascending. *)

val mem : t -> int -> bool

val parent : t -> int -> (int * int) option
(** [(parent_node, link_id)], [None] for the root or non-members. *)

val children : t -> int -> (int * int) list
(** [(child_node, link_id)] pairs, ascending child order. *)

val edges : t -> (int * int * int) list
(** [(parent, child, link_id)] triples, ascending child order. *)

val link_ids : t -> int list
(** The directed links of the tree (one per non-root member). *)

val cost : t -> int
(** Number of edges = number of directed links used. *)

val switch_members : Graph.t -> t -> int list
(** Members that are switches (ToR/Agg/Core/Spine). *)

val depth : t -> int -> int
(** Hops from the root to a member; raises [Not_found] for
    non-members. *)

val max_depth : t -> int
(** Deepest member's hop count from the root (0 for a root-only tree) —
    the store-and-forward latency driver. *)

val path_from_root : t -> int -> int list
(** Node ids from the root down to the given member, inclusive. *)

val validate : Graph.t -> t -> dests:int list -> (unit, string) result
(** Structural check: every non-root member's parent edge exists in the
    graph, runs parent->child, and is up; parent chains terminate at the
    root (no cycles); every destination is a member. *)
