(** The paper's layer-peeling greedy Steiner heuristic (§2.3).

    Hop layers are concentric BFS rings around the source.  Starting
    from the outermost ring and peeling inward, every tree member on
    layer [i+1] that lacks a parent is attached by greedily adding the
    layer-[i] node that covers the most still-unattached members —
    a set-cover greedy constrained to the layered Clos structure.  The
    result is a loop-free multicast tree with approximation factor
    [O(min(F, |D|))] (Theorem 2.5), computed in polynomial time.

    The algorithm only uses links that are currently up, so it applies
    unchanged to asymmetric (failed) fabrics. *)

open Peel_topology

val build : ?salt:int -> Graph.t -> source:int -> dests:int list -> Tree.t option
(** [None] when some destination is unreachable from the source.
    Deterministic: greedy ties break toward the lowest node id, or — when
    [salt] is given — toward the lowest hash of (node, salt).  Different
    salts therefore yield different (equally sized) trees in symmetric
    fabrics, the edge diversity multi-tree striping needs (§2.3's
    multicast-vs-multipath question). *)

val peel_general :
  ?salt:int ->
  ?layers:int array ->
  Graph.t ->
  source:int ->
  dests:int list ->
  Tree.t option
(** The outside-in greedy over an {e arbitrary} layered graph — the
    topology-zoo generalization.  [layers] labels every node with a
    layer; candidate parents of a member are its up-link in-neighbors
    on any strictly lower layer (the Clos specialization where every
    hop crosses exactly one ring is no longer assumed).  When [layers]
    is omitted the shortest-path DAG layers ([Graph.bfs_dist]) are
    used, and the result is {e bit-identical} to {!build} — on a Clos
    an up neighbor is never more than one BFS ring closer, so "any
    lower layer" degenerates to "exactly the previous ring".

    A custom layering must be rooted: the source (and only the source)
    on layer 0, no negative labels ([Graph.unreachable] excludes a
    node); violations raise [Invalid_argument], as does a layering
    that strands a member with no lower-layer parent over up links.
    [None] when a destination is unreachable (excluded).  Any
    monotone relabeling of the BFS layers yields the same tree. *)

val port_set_rules : Graph.t -> Tree.t list -> (int * int) list
(** [(switch, rules)] per switch appearing in any tree: the number of
    {e distinct} child-port sets the switch replicates to across the
    family — the rule currency on fabrics with no pod/ToR prefix
    structure, where §3's [k-1] static prefix rules degrade to one
    rule per port set.  Sorted by switch id; switches with no
    replication fan-out are omitted. *)

val repeel :
  ?salt:int -> Graph.t -> prev:Tree.t -> source:int -> dests:int list ->
  Tree.t option
(** Re-run the greedy on the current (post-failure) graph, seeded with
    the surviving prefix of [prev]: every binding still connected to the
    root over up links keeps its exact parent edge (delivered subtrees
    keep their state, mirroring §3's static prefix rules staying valid),
    and peeling only attaches the receivers the failure cut off.
    Survivors that no longer feed any destination are pruned.  [None]
    when some destination is now unreachable.  Raises
    [Invalid_argument] if [prev] is not rooted at [source]. *)

(** {1 Membership deltas}

    The service control plane ({!Peel_ctrl.Service}) keeps one tree
    per long-lived group while subscribers join and leave.  [splice]
    extends {!repeel}'s seeded peeling to {e membership} deltas: a
    single subscriber's subtree is spliced in or out without
    re-peeling the rest of the tree, so plan latency under churn is
    O(path) instead of O(fabric).  The caller remains responsible for
    falling back to a full {!build} when the spliced tree violates the
    Theorem 2.5 cost envelope (see {!Peel_check.Check_tree}) — splice
    preserves validity, not optimality. *)

type delta = Add of int | Remove of int
    (** One membership change: a subscriber endpoint joining or
        leaving the group. *)

val delta_to_string : delta -> string
(** ["+17"] / ["-17"]. *)

val splice :
  ?salt:int ->
  ?dist:int array ->
  Graph.t ->
  prev:Tree.t ->
  source:int ->
  dests:int list ->
  delta:delta ->
  Tree.t option
(** [splice g ~prev ~source ~dests ~delta] updates [prev] for one
    membership delta, where [dests] is the destination set {e after}
    the delta.  [Add d] climbs from [d] toward the source along BFS
    layers (lowest-{!build}-rank previous-layer neighbour, preferring
    nodes already in the tree, where the climb stops), binding a fresh
    single-path subtree; existing bindings are never rewired.
    [Remove d] prunes the bindings that no longer feed any remaining
    destination.  [dist] optionally reuses a cached
    [Graph.bfs_dist g source] array for the {e current} graph.

    Returns [None] when an added member is unreachable, or when the
    climb finds no previous-layer candidate with an up reverse link at
    some hop (possible when a caller-supplied [dist] is stale or links
    went down since the BFS) — callers fall back to a full peel.
    Raises
    [Invalid_argument] if [prev] is not rooted at [source], or if
    [delta] disagrees with [dests] ([Add d] without [d] in [dests], or
    [Remove d] with [d] still present). *)

val farthest_layer : Graph.t -> source:int -> dests:int list -> int option
(** F = the largest hop distance from the source to any destination
    ([None] if unreachable) — the quantity bounding the approximation
    factor. *)
