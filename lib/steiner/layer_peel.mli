(** The paper's layer-peeling greedy Steiner heuristic (§2.3).

    Hop layers are concentric BFS rings around the source.  Starting
    from the outermost ring and peeling inward, every tree member on
    layer [i+1] that lacks a parent is attached by greedily adding the
    layer-[i] node that covers the most still-unattached members —
    a set-cover greedy constrained to the layered Clos structure.  The
    result is a loop-free multicast tree with approximation factor
    [O(min(F, |D|))] (Theorem 2.5), computed in polynomial time.

    The algorithm only uses links that are currently up, so it applies
    unchanged to asymmetric (failed) fabrics. *)

open Peel_topology

val build : ?salt:int -> Graph.t -> source:int -> dests:int list -> Tree.t option
(** [None] when some destination is unreachable from the source.
    Deterministic: greedy ties break toward the lowest node id, or — when
    [salt] is given — toward the lowest hash of (node, salt).  Different
    salts therefore yield different (equally sized) trees in symmetric
    fabrics, the edge diversity multi-tree striping needs (§2.3's
    multicast-vs-multipath question). *)

val repeel :
  ?salt:int -> Graph.t -> prev:Tree.t -> source:int -> dests:int list ->
  Tree.t option
(** Re-run the greedy on the current (post-failure) graph, seeded with
    the surviving prefix of [prev]: every binding still connected to the
    root over up links keeps its exact parent edge (delivered subtrees
    keep their state, mirroring §3's static prefix rules staying valid),
    and peeling only attaches the receivers the failure cut off.
    Survivors that no longer feed any destination are pruned.  [None]
    when some destination is now unreachable.  Raises
    [Invalid_argument] if [prev] is not rooted at [source]. *)

val farthest_layer : Graph.t -> source:int -> dests:int list -> int option
(** F = the largest hop distance from the source to any destination
    ([None] if unreachable) — the quantity bounding the approximation
    factor. *)
