(** Exact minimum Steiner tree via the Dreyfus–Wagner dynamic program.

    Exponential in the number of terminals (3^q subsets), so it is only
    usable for small groups — which is exactly its role here: a ground
    truth against which the layer-peeling greedy's approximation quality
    is measured (paper §2.3 / the "within 1.4% of the Steiner optimum"
    claim).  Unit link costs; only up links are considered. *)

open Peel_topology

val max_terminals : int
(** Hard cap on the terminal count (12). *)

val steiner_cost : Graph.t -> terminals:int list -> int option
(** Minimum number of links connecting all terminals; [None] if they
    are not mutually reachable. Raises [Invalid_argument] if more than
    [max_terminals] distinct terminals are given. Terminal lists of
    size 0 or 1 cost 0. *)

val oracle : Graph.t -> source:int -> dests:int list -> int option
(** Exact-comparison oracle for the topology zoo (E21): the minimum
    Steiner cost over [source :: dests], preceded by an exactness-
    preserving reduction.  A terminal with exactly one live neighbor is
    pendant — every spanning tree must use that edge — so it is
    replaced by its neighbor at +1 cost, and coincident replacements
    merge.  Since endpoints hang off a single ToR, a q-host group on r
    racks reduces to about r+1 switch terminals before the 3^q dynamic
    program runs, stretching the oracle well past [max_terminals]
    hosts.  [None] when a terminal is isolated, the terminals are not
    mutually reachable, or the reduced instance still exceeds
    [max_terminals] — callers skip the ratio measurement rather than
    approximate it. *)
