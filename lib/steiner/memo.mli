(** Bounded keyed cache for planning results (trees, prefix plans,
    distance arrays).

    The service control plane keys entries by (source, member bitset):
    the multi-tenant Poisson mix creates many observationally identical
    groups, and a hit skips [Layer_peel]/[Plan.build] entirely.

    Determinism contract: a hit returns a value identical to
    recomputing it, so caching changes time, never behaviour.  The
    capacity bound drops {e insertions} (no eviction) — the cached key
    set is a deterministic function of the insertion sequence, never of
    hash order or timing — and {!bump_epoch} empties the cache when the
    fabric itself changes (faults, reconfiguration epochs). *)

type ('k, 'v) t

val create :
  ?capacity:int -> hash:('k -> int) -> equal:('k -> 'k -> bool) -> unit -> ('k, 'v) t
(** [capacity] (default 65536) bounds the number of cached entries;
    once full, {!add} becomes a no-op.  [hash] must be non-negative and
    consistent with [equal]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; bumps the hit or miss counter. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert if absent and under capacity; silently skipped otherwise. *)

val memoize : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [memoize t k compute] is [find] + on-miss [compute ()] + [add]. *)

val length : ('k, 'v) t -> int
val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int

val epoch : ('k, 'v) t -> int
(** Invalidation epoch, starting at 0. *)

val bump_epoch : ('k, 'v) t -> unit
(** Empty the cache and advance {!epoch} — called on fabric fault /
    reconfiguration boundaries where cached plans may be stale. *)
