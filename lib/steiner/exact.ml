open Peel_topology
module Heap = Peel_util.Pairing_heap

let max_terminals = 12

let inf = max_int / 4

(* Dijkstra with unit weights over up links, seeded with per-node initial
   distances; relaxes dp[mask] in place. *)
let relax g dp_mask =
  let heap = Heap.create () in
  Array.iteri
    (fun v d -> if d < inf then Heap.push heap (float_of_int d) v)
    dp_mask;
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, v) ->
        let d = int_of_float d in
        if d = dp_mask.(v) then
          Array.iter
            (fun (w, lid) ->
              if Graph.link_up g lid && d + 1 < dp_mask.(w) then begin
                dp_mask.(w) <- d + 1;
                Heap.push heap (float_of_int (d + 1)) w
              end)
            (Graph.out_links g v);
        drain ()
  in
  drain ()

let steiner_cost g ~terminals =
  let terminals = List.sort_uniq compare terminals in
  let q = List.length terminals in
  if q > max_terminals then invalid_arg "Exact.steiner_cost: too many terminals";
  if q <= 1 then Some 0
  else begin
    let terms = Array.of_list terminals in
    let n = Graph.num_nodes g in
    let full = (1 lsl q) - 1 in
    let dp = Array.make (full + 1) [||] in
    (* Singletons: distance from each terminal. *)
    for i = 0 to q - 1 do
      let d = Graph.bfs_dist g terms.(i) in
      dp.(1 lsl i) <-
        Array.init n (fun v -> if d.(v) = Graph.unreachable then inf else d.(v))
    done;
    for mask = 1 to full do
      if mask land (mask - 1) <> 0 then begin
        (* At least two bits: merge sub-splits, then relax over edges. *)
        let cur = Array.make n inf in
        let low = mask land -mask in
        (* Enumerate submasks that contain the lowest bit (avoids double
           counting symmetric splits). *)
        let rest = mask lxor low in
        let sub = ref rest in
        let continue = ref true in
        while !continue do
          let s = !sub lor low in
          let t = mask lxor s in
          if s <> mask then begin
            let a = dp.(s) and b = dp.(t) in
            for v = 0 to n - 1 do
              let c = a.(v) + b.(v) in
              if c < cur.(v) then cur.(v) <- c
            done
          end;
          if !sub = 0 then continue := false else sub := (!sub - 1) land rest
        done;
        relax g cur;
        dp.(mask) <- cur
      end
    done;
    let answer = dp.(full).(terms.(0)) in
    if answer >= inf then None else Some answer
  end

(* ------------------------------------------------------------------ *)
(* Exact-comparison oracle (topology zoo, E21)                         *)
(* ------------------------------------------------------------------ *)

module Iset = Set.Make (Int)

let up_neighbors g v =
  Array.to_list (Graph.out_links g v)
  |> List.filter_map (fun (u, lid) ->
         if Graph.link_up g lid then Some u else None)
  |> List.sort_uniq compare

(* A terminal with exactly one live neighbor is {e pendant}: every
   Steiner tree spanning it must use that single edge, so replacing the
   terminal by its neighbor and charging one link is exact — and two
   terminals collapsing onto the same switch merge (their shared
   subtree is counted once by the DP).  Endpoints hang off one ToR in
   every zoo fabric, so a group of q hosts on r racks reduces to r+1
   switch terminals, well below the DP's 3^q wall. *)
let collapse_pendants g terminals =
  let exception Unreachable in
  let rec go cost terms =
    if Iset.cardinal terms <= 1 then (cost, terms)
    else begin
      let pendant =
        Iset.filter
          (fun v ->
            match up_neighbors g v with
            | [ _ ] -> true
            | [] -> raise Unreachable
            | _ -> false)
          terms
      in
      (* Keep a pendant whose sole neighbor is itself a pendant terminal
         (an isolated edge): collapsing both would orbit forever. *)
      let collapsible =
        Iset.filter
          (fun v ->
            match up_neighbors g v with
            | [ u ] -> not (Iset.mem u pendant)
            | _ -> false)
          pendant
      in
      if Iset.is_empty collapsible then (cost, terms)
      else begin
        let cost = ref cost and next = ref terms in
        Iset.iter
          (fun v ->
            match up_neighbors g v with
            | [ u ] ->
                next := Iset.add u (Iset.remove v !next);
                incr cost
            | _ -> assert false)
          collapsible;
        go !cost !next
      end
    end
  in
  match go 0 terminals with
  | result -> Some result
  | exception Unreachable -> None

let oracle g ~source ~dests =
  let terminals = Iset.of_list (source :: dests) in
  match collapse_pendants g terminals with
  | None -> None
  | Some (base, terms) ->
      if Iset.cardinal terms > max_terminals then None
      else if Iset.cardinal terms <= 1 then Some base
      else
        Option.map
          (fun c -> base + c)
          (steiner_cost g ~terminals:(Iset.elements terms))
