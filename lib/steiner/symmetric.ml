open Peel_topology

module Iset = Set.Make (Int)

(* Accumulates parent bindings, ignoring repeats for the same child. *)
type acc = { mutable bindings : (int * (int * int)) list; mutable seen : Iset.t }

let add_edge g acc ~parent ~child =
  if not (Iset.mem child acc.seen) then begin
    match Graph.link_between g parent child with
    | None ->
        invalid_arg
          (Printf.sprintf "Symmetric.build: no up link %d->%d (fabric asymmetric?)"
             parent child)
    | Some lid ->
        acc.bindings <- (child, (parent, lid)) :: acc.bindings;
        acc.seen <- Iset.add child acc.seen
  end

(* Enumerate the symmetric tree's parent bindings without constructing
   a [Tree.t].  [build] lowers them through [Tree.of_parents]; the cost
   bound only needs their count — [add_edge] already guarantees one
   binding per child over a real parent->child link, which is all
   [Tree.cost] would measure. *)
let bindings fabric ~source ~dests =
  let g = Fabric.graph fabric in
  let dests = List.sort_uniq compare (List.filter (fun d -> d <> source) dests) in
  let acc = { bindings = []; seen = Iset.add source Iset.empty } in
  let src_tor = Fabric.attach_tor fabric source in
  (* Every endpoint (host, or GPU through its dedicated NIC) hangs
     directly off its ToR, so the tree is: source -> ToR -> upper tiers
     -> destination ToRs -> destination endpoints. *)
  let by_tor = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let tor = Fabric.attach_tor fabric d in
      Hashtbl.replace by_tor tor
        (d :: Option.value (Hashtbl.find_opt by_tor tor) ~default:[]))
    dests;
  let tors_needed =
    Hashtbl.fold (fun t _ acc -> if t <> src_tor then t :: acc else acc) by_tor []
    |> List.sort compare
  in
  if dests <> [] then add_edge g acc ~parent:source ~child:src_tor;
  (* Upper tiers, only if some ToR outside the source ToR is involved. *)
  (match fabric with
  | Fabric.Ls ls when tors_needed <> [] ->
      let spine = ls.Leaf_spine.spines.(0) in
      add_edge g acc ~parent:src_tor ~child:spine;
      List.iter (fun tor -> add_edge g acc ~parent:spine ~child:tor) tors_needed
  | Fabric.Ls _ -> ()
  | Fabric.Rl rl when tors_needed <> [] ->
      (* Two-tier like a leaf-spine: one spine covers all rail ToRs. *)
      let spine = rl.Rail.spines.(0) in
      add_edge g acc ~parent:src_tor ~child:spine;
      List.iter (fun tor -> add_edge g acc ~parent:spine ~child:tor) tors_needed
  | Fabric.Rl _ -> ()
  | Fabric.Ft ft when tors_needed <> [] ->
      let by_pod = Hashtbl.create 8 in
      List.iter
        (fun tor ->
          let p = Fabric.pod_of_tor fabric tor in
          Hashtbl.replace by_pod p
            (tor :: Option.value (Hashtbl.find_opt by_pod p) ~default:[]))
        tors_needed;
      let src_pod = Fabric.pod_of_tor fabric src_tor in
      let pods_needed =
        Hashtbl.fold (fun p _ acc -> p :: acc) by_pod [] |> List.sort compare
      in
      let agg_of_pod p = ft.Fat_tree.aggs_of_pod.(p).(0) in
      let core = ft.Fat_tree.cores.(0) in
      let src_agg = agg_of_pod src_pod in
      add_edge g acc ~parent:src_tor ~child:src_agg;
      let other_pods = List.filter (fun p -> p <> src_pod) pods_needed in
      if other_pods <> [] then begin
        add_edge g acc ~parent:src_agg ~child:core;
        List.iter
          (fun p ->
            let agg = agg_of_pod p in
            add_edge g acc ~parent:core ~child:agg;
            List.iter
              (fun tor -> add_edge g acc ~parent:agg ~child:tor)
              (List.sort compare (Hashtbl.find by_pod p)))
          other_pods
      end;
      (match Hashtbl.find_opt by_pod src_pod with
      | Some tors ->
          List.iter
            (fun tor -> add_edge g acc ~parent:src_agg ~child:tor)
            (List.sort compare tors)
      | None -> ())
  | Fabric.Ft _ -> ()
  | Fabric.Zo _ ->
      (* No closed-form optimum beyond the source rack on zoo fabrics:
         force the caller (Peel.multicast_tree, TREE005's lower bound)
         onto the general layer-peeling path.  A single-rack group is
         still exact — source -> ToR -> destinations needs no upper
         tier. *)
      if tors_needed <> [] then
        invalid_arg
          "Symmetric.build: no closed-form optimal tree on a zoo fabric");
  (* Down edges: ToR -> destination endpoint (host or GPU NIC). *)
  Hashtbl.iter
    (fun tor eps ->
      List.iter (fun e -> add_edge g acc ~parent:tor ~child:e) (List.sort compare eps))
    by_tor;
  acc.bindings

let build fabric ~source ~dests =
  Tree.of_parents (Fabric.graph fabric) ~root:source
    ~parents:(bindings fabric ~source ~dests)

let cost_lower_bound fabric ~source ~dests =
  List.length (bindings fabric ~source ~dests)
