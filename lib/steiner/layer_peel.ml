open Peel_topology

let reach_info g ~source ~dests =
  let dist = Graph.bfs_dist g source in
  let unreachable = List.exists (fun d -> dist.(d) = Graph.unreachable) dests in
  if unreachable then None
  else begin
    let far = List.fold_left (fun acc d -> max acc dist.(d)) 0 dests in
    Some (dist, far)
  end

let farthest_layer g ~source ~dests =
  match reach_info g ~source ~dests with
  | None -> None
  | Some (_, far) -> Some far

(* Candidate preference: lowest id by default, lowest (salted) hash when
   diversifying. *)
let rank ?salt u =
  match salt with
  | None -> u
  | Some s ->
      let h = Hashtbl.hash (u, s) in
      (h * 65599) lxor (h lsr 7)

(* The peeling core, parameterized by a layering.  [lay] labels every
   node with a layer ([Graph.unreachable] excludes a node); [top] is the
   outermost layer holding a member.  Candidate parents of [v] are its
   up-link in-neighbors on any {e strictly lower} layer.  With BFS
   layers this degenerates to exactly [dist v - 1] — an up neighbor is
   never more than one ring closer — so [build] below is bit-identical
   to the historical BFS-only peel. *)
let peel_layers ?salt g ~lay ~top ~source ~dests ~seeds =
  let n = Graph.num_nodes g in
  (* Bucket nodes into layers 0..top. *)
  let layers = Array.make (top + 1) [] in
  for v = n - 1 downto 0 do
    let d = lay.(v) in
    if d <> Graph.unreachable && d <= top then layers.(d) <- v :: layers.(d)
  done;
  let in_tree = Array.make n false in
  let parent_of = Array.make n None in
  in_tree.(source) <- true;
  List.iter (fun d -> in_tree.(d) <- true) dests;
  (* Pre-seed surviving bindings (re-peeling): the greedy below never
     overwrites an existing parent, so seeded subtrees keep their
     exact shape and peeling only extends around them. *)
  List.iter
    (fun (v, (p, lid)) ->
      in_tree.(v) <- true;
      in_tree.(p) <- true;
      parent_of.(v) <- Some (p, lid))
    seeds;
  (* Candidate parents of [v]: in-neighbors on a lower layer over up
     links.  ([Graph.unreachable] is [max_int], so excluded nodes never
     pass the [< lay v] test.) *)
  let lower_layer_neighbors v =
    let dv = lay.(v) in
    Array.to_list (Graph.out_links g v)
    |> List.filter_map (fun (u, lid) ->
           let rev = Graph.peer_link lid in
           if Graph.link_up g rev && lay.(u) < dv then Some (u, rev) else None)
  in
  for i = top - 1 downto 0 do
    (* Members of layer i+1 still lacking a parent. *)
    let uncovered =
      List.filter (fun v -> in_tree.(v) && parent_of.(v) = None) layers.(i + 1)
    in
    (* Step 1: attach to lower-layer nodes already in the tree. *)
    let uncovered =
      List.filter
        (fun v ->
          let existing =
            List.filter (fun (u, _) -> in_tree.(u)) (lower_layer_neighbors v)
          in
          match existing with
          | [] -> true
          | first :: rest ->
              let u, lid =
                List.fold_left
                  (fun (bu, bl) (u, l) ->
                    if rank ?salt u < rank ?salt bu then (u, l) else (bu, bl))
                  first rest
              in
              parent_of.(v) <- Some (u, lid);
              false)
        uncovered
    in
    (* Step 2: greedy set cover — repeatedly add the lower-layer switch
       attaching the most still-uncovered members of layer i+1. *)
    let uncovered = ref uncovered in
    while !uncovered <> [] do
      let coverage = Hashtbl.create 16 in
      List.iter
        (fun v ->
          List.iter
            (fun (u, _) ->
              Hashtbl.replace coverage u
                (1 + Option.value (Hashtbl.find_opt coverage u) ~default:0))
            (lower_layer_neighbors v))
        !uncovered;
      let best =
        Hashtbl.fold
          (fun u c acc ->
            match acc with
            | Some (bu, bc)
              when bc > c || (bc = c && rank ?salt bu <= rank ?salt u) ->
                acc
            | _ -> Some (u, c))
          coverage None
      in
      match best with
      | None ->
          (* With BFS layers this is impossible — BFS guarantees a
             predecessor on a live shortest path.  A caller-supplied
             layering can strand a member, which is a layering bug. *)
          invalid_arg
            (Printf.sprintf
               "Layer_peel: layering not peelable — no lower-layer parent \
                for a layer-%d member"
               (i + 1))
      | Some (u, _) ->
          in_tree.(u) <- true;
          uncovered :=
            List.filter
              (fun v ->
                match List.assoc_opt u (lower_layer_neighbors v) with
                | Some lid ->
                    parent_of.(v) <- Some (u, lid);
                    false
                | None -> true)
              !uncovered
    done
  done;
  (* With seeds, survivors that no longer feed any destination are
     dead weight — prune to the union of dest-to-root chains.
     (Plain builds only ever add covering switches, so every member
     already feeds a destination.) *)
  if seeds <> [] then begin
    let needed = Array.make n false in
    needed.(source) <- true;
    let rec mark v =
      if not needed.(v) then begin
        needed.(v) <- true;
        match parent_of.(v) with Some (p, _) -> mark p | None -> ()
      end
    in
    List.iter mark dests;
    for v = 0 to n - 1 do
      if not needed.(v) then parent_of.(v) <- None
    done
  end;
  let parents = ref [] in
  for v = 0 to n - 1 do
    match parent_of.(v) with
    | Some (p, lid) -> parents := (v, (p, lid)) :: !parents
    | None -> ()
  done;
  Tree.of_parents g ~root:source ~parents:!parents

let build_seeded ?salt g ~source ~dests ~seeds =
  let dests = List.sort_uniq compare (List.filter (fun d -> d <> source) dests) in
  match reach_info g ~source ~dests with
  | None -> None
  | Some (dist, far) ->
      Some (peel_layers ?salt g ~lay:dist ~top:far ~source ~dests ~seeds)

let build ?salt g ~source ~dests = build_seeded ?salt g ~source ~dests ~seeds:[]

let peel_general ?salt ?layers g ~source ~dests =
  match layers with
  | None -> build ?salt g ~source ~dests
  | Some lay ->
      if Array.length lay <> Graph.num_nodes g then
        invalid_arg "Layer_peel.peel_general: layering length mismatch";
      if lay.(source) <> 0 then
        invalid_arg "Layer_peel.peel_general: source must sit on layer 0";
      Array.iteri
        (fun v l ->
          if l = 0 && v <> source then
            invalid_arg
              "Layer_peel.peel_general: layer 0 must hold only the source"
          else if l < 0 then
            invalid_arg "Layer_peel.peel_general: negative layer label")
        lay;
      let dests =
        List.sort_uniq compare (List.filter (fun d -> d <> source) dests)
      in
      if List.exists (fun d -> lay.(d) = Graph.unreachable) dests then None
      else begin
        let top = List.fold_left (fun acc d -> max acc lay.(d)) 0 dests in
        Some (peel_layers ?salt g ~lay ~top ~source ~dests ~seeds:[])
      end

(* Per-switch rule accounting when no pod/ToR prefix structure exists:
   a switch needs one replication rule per distinct child-port set it
   serves across the tree family (§3's static prefix rules degraded to
   port-set rules). *)
let port_set_rules g trees =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun tree ->
      List.iter
        (fun v ->
          if Graph.kind_is_switch (Graph.node g v).Graph.kind then begin
            let ports =
              Tree.children tree v |> List.map snd |> List.sort compare
            in
            if ports <> [] then begin
              let key = String.concat "," (List.map string_of_int ports) in
              let set =
                match Hashtbl.find_opt tbl v with
                | Some s -> s
                | None ->
                    let s = Hashtbl.create 4 in
                    Hashtbl.replace tbl v s;
                    s
              in
              Hashtbl.replace set key ()
            end
          end)
        (Tree.members tree))
    trees;
  Hashtbl.fold (fun v set acc -> (v, Hashtbl.length set) :: acc) tbl []
  |> List.sort compare

type delta = Add of int | Remove of int

let delta_to_string = function
  | Add d -> Printf.sprintf "+%d" d
  | Remove d -> Printf.sprintf "-%d" d

(* Bindings of [prev] as an association list, plus a membership test. *)
let bindings_of prev =
  let bs = ref [] in
  let rec walk v =
    List.iter
      (fun (child, lid) ->
        bs := (child, (v, lid)) :: !bs;
        walk child)
      (Tree.children prev v)
  in
  walk (Tree.root prev);
  !bs

(* Drop every binding that no longer feeds a destination: mark the
   root-ward chain of each dest, keep marked bindings only. *)
let prune_bindings g ~root ~bindings ~dests =
  let n = Graph.num_nodes g in
  let parent_of = Array.make n None in
  List.iter (fun (v, pl) -> parent_of.(v) <- Some pl) bindings;
  let needed = Array.make n false in
  needed.(root) <- true;
  let rec mark v =
    if not needed.(v) then begin
      needed.(v) <- true;
      match parent_of.(v) with Some (p, _) -> mark p | None -> ()
    end
  in
  List.iter mark dests;
  List.filter (fun (v, _) -> needed.(v)) bindings

let splice ?salt ?dist g ~prev ~source ~dests ~delta =
  if Tree.root prev <> source then
    invalid_arg "Layer_peel.splice: previous tree not rooted at the source";
  let dests = List.sort_uniq compare (List.filter (fun d -> d <> source) dests) in
  (match delta with
  | Add d ->
      if not (List.mem d dests) then
        invalid_arg "Layer_peel.splice: added member missing from dests"
  | Remove d ->
      if List.mem d dests then
        invalid_arg "Layer_peel.splice: removed member still in dests");
  match delta with
  | Remove d ->
      if not (Tree.mem prev d) then Some prev
      else
        let bindings =
          prune_bindings g ~root:source ~bindings:(bindings_of prev) ~dests
        in
        Some (Tree.of_parents g ~root:source ~parents:bindings)
  | Add d ->
      if d = source || Tree.mem prev d then Some prev
      else begin
        let dist = match dist with Some a -> a | None -> Graph.bfs_dist g source in
        if dist.(d) = Graph.unreachable then None
        else begin
          (* Climb from the new subscriber toward the source along BFS
             layers, binding each hop to the lowest-ranked previous-layer
             neighbour — preferring one already in the tree, where the
             climb stops.  This splices a single-path subtree in without
             touching any existing binding. *)
          let fresh = ref [] in
          let on_path = Hashtbl.create 8 in
          let exception Climb_failed in
          let rec climb v =
            if not (Tree.mem prev v) then begin
              let dv = dist.(v) in
              let candidates =
                Array.to_list (Graph.out_links g v)
                |> List.filter_map (fun (u, lid) ->
                       let rev = Graph.peer_link lid in
                       if
                         Graph.link_up g rev
                         && dist.(u) = dv - 1
                         && not (Hashtbl.mem on_path u)
                       then Some (u, rev)
                       else None)
              in
              let in_tree, fresh_cands =
                List.partition (fun (u, _) -> Tree.mem prev u) candidates
              in
              let best = function
                | [] -> None
                | first :: rest ->
                    Some
                      (List.fold_left
                         (fun (bu, bl) (u, l) ->
                           if rank ?salt u < rank ?salt bu then (u, l)
                           else (bu, bl))
                         first rest)
              in
              match best in_tree with
              | Some (u, lid) -> fresh := (v, (u, lid)) :: !fresh
              | None -> (
                  match best fresh_cands with
                  | Some (u, lid) ->
                      fresh := (v, (u, lid)) :: !fresh;
                      Hashtbl.replace on_path v ();
                      climb u
                  | None ->
                      (* A fresh BFS guarantees a shortest-path
                         predecessor at every hop, but a caller-supplied
                         [dist] may be stale and links may have gone
                         down since it was computed — honor the option
                         contract and let the caller fall back to a
                         full peel. *)
                      raise Climb_failed)
            end
          in
          match climb d with
          | exception Climb_failed -> None
          | () ->
              let bindings = !fresh @ bindings_of prev in
              (* The previous tree may carry members the shrinking side
                 of the churn already removed from [dests]; prune to the
                 chains the current membership needs. *)
              let bindings = prune_bindings g ~root:source ~bindings ~dests in
              Some (Tree.of_parents g ~root:source ~parents:bindings)
        end
      end

let repeel ?salt g ~prev ~source ~dests =
  if Tree.root prev <> source then
    invalid_arg "Layer_peel.repeel: previous tree not rooted at the source";
  (* The surviving prefix: bindings reachable from the root over edges
     that are still up.  A member below a failed edge is cut loose even
     if its own parent edge survived — its chain to the root is gone. *)
  let seeds = ref [] in
  let rec walk v =
    List.iter
      (fun (child, lid) ->
        if Graph.link_up g lid then begin
          seeds := (child, (v, lid)) :: !seeds;
          walk child
        end)
      (Tree.children prev v)
  in
  walk source;
  build_seeded ?salt g ~source ~dests ~seeds:!seeds
