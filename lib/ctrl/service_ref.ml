open Peel_topology
open Peel_workload
module Tree = Peel_steiner.Tree
module Layer_peel = Peel_steiner.Layer_peel
module Plan = Peel.Plan
module Pool = Peel_util.Pool

type admission = Evict | Deny

let admission_to_string = function Evict -> "evict" | Deny -> "deny"

let admission_of_string = function
  | "evict" -> Some Evict
  | "deny" -> Some Deny
  | _ -> None

type config = {
  capacity : int;
  policy : Tcam.policy;
  admission : admission;
  batch : int;
  install_delay : float;
  budget : int option;
  salt : int option;
}

let env_batch () =
  match Sys.getenv_opt "PEEL_SERVE_BATCH" with
  | Some s -> (
      match int_of_string_opt s with Some n when n >= 1 -> Some n | _ -> None)
  | None -> None

let default_config =
  {
    capacity = 1024;
    policy = Tcam.Lru;
    admission = Evict;
    batch = Option.value (env_batch ()) ~default:8;
    install_delay = 2e-3;
    budget = Some 1;
    salt = None;
  }

type stage = Pending | Installed | Fallback

let stage_to_string = function
  | Pending -> "pending"
  | Installed -> "installed"
  | Fallback -> "fallback"

type gstate = {
  sg_gid : int;
  sg_source : int;
  mutable sg_members : int list;
  mutable sg_tree : Tree.t;
  mutable sg_switches : int list;
  mutable sg_stage : stage;
  mutable sg_replans : int;
  sg_dist : int array;
}

type slo = {
  events : int;
  creates : int;
  joins : int;
  leaves : int;
  sends : int;
  departs : int;
  delta_repeels : int;
  full_repeels : int;
  splice_fallbacks : int;
  batches : int;
  installs : int;
  evictions : int;
  denials : int;
  compiled_entries : int;
  multicast_chunks : int;
  unicast_chunks : int;
  multicast_link_bytes : float;
  unicast_link_bytes : float;
  max_backlog : int;
  final_backlog : int;
  plan_p50_s : float;
  plan_p99_s : float;
  plan_max_s : float;
  events_per_sec : float;
  wall_s : float;
}

type outcome = {
  o_cfg : config;
  o_fabric : Fabric.t;
  o_tcam : Tcam.t option;
  o_groups : (int, gstate) Hashtbl.t;
  o_departed : (int, unit) Hashtbl.t;
  o_pending : int list;
  o_slo : slo;
  o_fingerprint : string;
}

(* ------------------------------------------------------------------ *)
(* Deterministic digest: FNV-1a over the decision log, so replays at  *)
(* any worker count can be compared byte-for-byte (SVC005).           *)
(* ------------------------------------------------------------------ *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

type digest = { mutable h : int64 }

let digest_create () = { h = fnv_offset }

let digest_string d s =
  String.iter
    (fun c ->
      d.h <- Int64.mul (Int64.logxor d.h (Int64.of_int (Char.code c))) fnv_prime)
    s

let digest_hex d = Printf.sprintf "%016Lx" d.h

(* ------------------------------------------------------------------ *)
(* The service loop                                                   *)
(* ------------------------------------------------------------------ *)

type state = {
  cfg : config;
  fabric : Fabric.t;
  graph : Graph.t;
  tcam : Tcam.t option;
  pool : Pool.t;
  groups : (int, gstate) Hashtbl.t;
  departed : (int, unit) Hashtbl.t;
  digest : digest;
  mutable pending : int list;  (* reverse enqueue order *)
  mutable pending_since : float;
  (* counters *)
  mutable creates : int;
  mutable joins : int;
  mutable leaves : int;
  mutable sends : int;
  mutable departs : int;
  mutable delta_repeels : int;
  mutable full_repeels : int;
  mutable splice_fallbacks : int;
  mutable batches : int;
  mutable denials : int;
  mutable compiled_entries : int;
  mutable multicast_chunks : int;
  mutable unicast_chunks : int;
  mutable multicast_link_bytes : float;
  mutable unicast_link_bytes : float;
  mutable max_backlog : int;
  mutable plan_lat : float list;
}

let entry_switches g tree =
  Peel_steiner.Tree.switch_members g tree
  |> List.filter (fun v -> (Graph.node g v).Graph.kind <> Graph.Tor)

let dests_of gs = List.filter (fun m -> m <> gs.sg_source) gs.sg_members

let log_event st ~(ev : Stream.event) tag =
  digest_string st.digest
    (Printf.sprintf "%d:%s:%s;" ev.Stream.ev_seq
       (Stream.kind_to_string ev.Stream.ev_kind)
       tag)

let timed st f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  st.plan_lat <- (Unix.gettimeofday () -. t0) :: st.plan_lat;
  r

let enqueue_install st ~now gid =
  if st.cfg.capacity > 0 then begin
    if st.pending = [] then st.pending_since <- now;
    if not (List.mem gid st.pending) then st.pending <- gid :: st.pending
  end

(* Evict a group everywhere: its partial entry set cannot replicate
   exactly, so it degrades to the unicast fallback path. *)
let demote st victim =
  (match st.tcam with
  | Some tc -> ignore (Tcam.remove_group tc ~group:victim)
  | None -> ());
  match Hashtbl.find_opt st.groups victim with
  | Some vs -> vs.sg_stage <- Fallback
  | None -> ()

(* Flush the pending batch: lower every live pending group's prefix
   plan through the fleet compiler — sharded across pool domains by
   the group's source pod — then claim TCAM space for the exact
   per-group entries under the admission policy. *)
let flush st ~now =
  let batch = List.rev st.pending in
  st.pending <- [];
  let backlog = List.length batch in
  if backlog > st.max_backlog then st.max_backlog <- backlog;
  let live =
    List.filter_map
      (fun gid ->
        match Hashtbl.find_opt st.groups gid with
        | Some gs -> Some (gid, gs)
        | None -> None)
      batch
  in
  if live <> [] then begin
    st.batches <- st.batches + 1;
    (* Shard by source pod; shards compile independently (pure), so
       the pool fan-out is bit-deterministic at any worker count. *)
    let shard_of (_, gs) =
      Fabric.pod_of_tor st.fabric (Fabric.attach_tor st.fabric gs.sg_source)
    in
    let shards =
      List.sort_uniq compare (List.map shard_of live)
      |> List.map (fun pod -> (pod, List.filter (fun c -> shard_of c = pod) live))
    in
    let compiled =
      Pool.par_map ~pool:st.pool
        (fun (_pod, cells) ->
          let pairs =
            List.map
              (fun (gid, gs) ->
                ( gid,
                  Plan.build ?budget:st.cfg.budget st.fabric
                    ~source:gs.sg_source ~dests:(dests_of gs) ))
              cells
          in
          Peel_compile.compile st.fabric pairs)
        shards
    in
    List.iter
      (fun c -> st.compiled_entries <- st.compiled_entries + Peel_compile.Compile.total_entries c)
      compiled;
    (* Admission, in batch order. *)
    match st.tcam with
    | None -> ()
    | Some tc ->
        List.iter
          (fun (gid, gs) ->
            match st.cfg.admission with
            | Evict ->
                List.iter
                  (fun sw ->
                    let victims = Tcam.install tc ~now ~switch:sw ~group:gid in
                    List.iter (demote st) victims)
                  gs.sg_switches;
                gs.sg_stage <- Installed
            | Deny ->
                (* All-or-nothing: probe every switch first so a denied
                   group never leaves partial entries behind. *)
                let fits =
                  List.for_all
                    (fun sw ->
                      Tcam.holds tc ~switch:sw ~group:gid
                      || Tcam.used tc ~switch:sw < Tcam.capacity tc)
                    gs.sg_switches
                in
                if fits then begin
                  List.iter
                    (fun sw ->
                      ignore (Tcam.install_strict tc ~now ~switch:sw ~group:gid))
                    gs.sg_switches;
                  gs.sg_stage <- Installed
                end
                else begin
                  (* The group may still hold entries from a previous
                     install (membership deltas only free removed
                     switches); reclaim them all so a denied group
                     never keeps a partial entry set (SVC003). *)
                  demote st gid;
                  st.denials <- st.denials + 1
                end)
          live
  end

let maybe_flush st ~now =
  if
    st.pending <> []
    && (List.length st.pending >= st.cfg.batch
       || now -. st.pending_since >= st.cfg.install_delay)
  then flush st ~now

(* Re-plan a group after a membership delta: splice the subscriber's
   subtree in/out, falling back to a full peel when the splice fails,
   breaks tree validity, or leaves the Theorem 2.5 cost envelope. *)
let replan st gs ~delta =
  let source = gs.sg_source in
  let dests = dests_of gs in
  let full () =
    st.full_repeels <- st.full_repeels + 1;
    match Layer_peel.build ?salt:st.cfg.salt st.graph ~source ~dests with
    | Some t -> t
    | None -> failwith "Service.replan: destinations unreachable"
  in
  let spliced =
    Layer_peel.splice ?salt:st.cfg.salt ~dist:gs.sg_dist st.graph
      ~prev:gs.sg_tree ~source ~dests ~delta
  in
  let tree =
    match spliced with
    | None ->
        st.splice_fallbacks <- st.splice_fallbacks + 1;
        full ()
    | Some t -> (
        let ok_shape = Result.is_ok (Tree.validate st.graph t ~dests) in
        let ok_bound =
          match
            Peel_check.Check_tree.symmetric_lower_bound st.fabric ~source ~dests
          with
          | None -> true
          | Some opt -> (
              match Layer_peel.farthest_layer st.graph ~source ~dests with
              | None -> false
              | Some f ->
                  let factor = max 1 (min f (List.length dests)) in
                  Tree.cost t <= factor * max 1 opt)
        in
        if ok_shape && ok_bound then begin
          st.delta_repeels <- st.delta_repeels + 1;
          t
        end
        else begin
          st.splice_fallbacks <- st.splice_fallbacks + 1;
          full ()
        end)
  in
  gs.sg_tree <- tree;
  gs.sg_replans <- gs.sg_replans + 1;
  tree

(* A membership delta on an installed group updates its entry set:
   switches the new tree no longer visits free their entries at once,
   new switches go through the batched install path (the group rides
   the fallback until they land). *)
let update_entries st ~now gs =
  let switches = entry_switches st.graph gs.sg_tree in
  let removed = List.filter (fun s -> not (List.mem s switches)) gs.sg_switches in
  let added = List.filter (fun s -> not (List.mem s gs.sg_switches)) switches in
  gs.sg_switches <- switches;
  (match st.tcam with
  | Some tc ->
      List.iter
        (fun sw -> ignore (Tcam.remove_at tc ~switch:sw ~group:gs.sg_gid))
        removed
  | None -> ());
  if gs.sg_stage = Installed && added <> [] then begin
    gs.sg_stage <- Pending;
    enqueue_install st ~now gs.sg_gid
  end
  else if gs.sg_stage = Fallback then begin
    (* A membership change is a fresh admission request. *)
    gs.sg_stage <- Pending;
    enqueue_install st ~now gs.sg_gid
  end

let handle st (ev : Stream.event) =
  let now = ev.Stream.ev_time in
  (match ev.Stream.ev_kind with
  | Stream.Create group ->
      st.creates <- st.creates + 1;
      let gid = group.Spec.g_id in
      let source = group.Spec.g_source in
      let dests = group.Spec.g_dests in
      let dist = Graph.bfs_dist st.graph source in
      let tree =
        timed st (fun () ->
            match Layer_peel.build ?salt:st.cfg.salt st.graph ~source ~dests with
            | Some t -> t
            | None -> failwith "Service: group unreachable at creation")
      in
      st.full_repeels <- st.full_repeels + 1;
      let gs =
        {
          sg_gid = gid;
          sg_source = source;
          sg_members = group.Spec.g_members;
          sg_tree = tree;
          sg_switches = entry_switches st.graph tree;
          sg_stage = (if st.cfg.capacity > 0 then Pending else Fallback);
          sg_replans = 0;
          sg_dist = dist;
        }
      in
      Hashtbl.replace st.groups gid gs;
      enqueue_install st ~now gid;
      log_event st ~ev (Printf.sprintf "c%d" (List.length gs.sg_switches))
  | Stream.Join { gid; endpoint } -> (
      st.joins <- st.joins + 1;
      match Hashtbl.find_opt st.groups gid with
      | None -> log_event st ~ev "?"
      | Some gs ->
          gs.sg_members <- List.sort compare (endpoint :: gs.sg_members);
          let deltas_before = st.delta_repeels in
          ignore
            (timed st (fun () ->
                 replan st gs ~delta:(Layer_peel.Add endpoint)));
          update_entries st ~now gs;
          log_event st ~ev
            (if st.delta_repeels > deltas_before then "d" else "f"))
  | Stream.Leave { gid; endpoint } -> (
      st.leaves <- st.leaves + 1;
      match Hashtbl.find_opt st.groups gid with
      | None -> log_event st ~ev "?"
      | Some gs ->
          gs.sg_members <- List.filter (fun m -> m <> endpoint) gs.sg_members;
          let deltas_before = st.delta_repeels in
          ignore
            (timed st (fun () ->
                 replan st gs ~delta:(Layer_peel.Remove endpoint)));
          update_entries st ~now gs;
          log_event st ~ev
            (if st.delta_repeels > deltas_before then "d" else "f"))
  | Stream.Send { gid; bytes } -> (
      st.sends <- st.sends + 1;
      match Hashtbl.find_opt st.groups gid with
      | None -> log_event st ~ev "?"
      | Some gs -> (
          match gs.sg_stage with
          | Installed ->
              st.multicast_chunks <- st.multicast_chunks + 1;
              st.multicast_link_bytes <-
                st.multicast_link_bytes
                +. (bytes *. float_of_int (Tree.cost gs.sg_tree));
              (match st.tcam with
              | Some tc ->
                  List.iter
                    (fun sw -> Tcam.touch tc ~now ~switch:sw ~group:gid ~bytes)
                    gs.sg_switches
              | None -> ());
              log_event st ~ev "m"
          | Pending | Fallback ->
              (* Unicast fallback: one copy per destination, each
                 riding its whole shortest path. *)
              let hops =
                List.fold_left
                  (fun acc d -> acc + gs.sg_dist.(d))
                  0 (dests_of gs)
              in
              st.unicast_chunks <- st.unicast_chunks + 1;
              st.unicast_link_bytes <-
                st.unicast_link_bytes +. (bytes *. float_of_int hops);
              log_event st ~ev "u"))
  | Stream.Depart { gid } ->
      st.departs <- st.departs + 1;
      (match st.tcam with
      | Some tc -> ignore (Tcam.remove_group tc ~group:gid)
      | None -> ());
      Hashtbl.remove st.groups gid;
      Hashtbl.replace st.departed gid ();
      (* A departed group's pending install must never land (SVC004). *)
      st.pending <- List.filter (fun g -> g <> gid) st.pending;
      log_event st ~ev "x");
  maybe_flush st ~now

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n -> sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let run ?(cfg = default_config) ?jobs fabric ~events stream =
  if cfg.batch < 1 then invalid_arg "Service.run: batch must be >= 1";
  if cfg.install_delay < 0.0 || not (Float.is_finite cfg.install_delay) then
    invalid_arg "Service.run: install_delay must be finite and >= 0";
  let pool = Pool.create ?jobs () in
  let st =
    {
      cfg;
      fabric;
      graph = Fabric.graph fabric;
      tcam =
        (if cfg.capacity > 0 then
           Some (Tcam.create ~capacity:cfg.capacity ~policy:cfg.policy)
         else None);
      pool;
      groups = Hashtbl.create 64;
      departed = Hashtbl.create 64;
      digest = digest_create ();
      pending = [];
      pending_since = 0.0;
      creates = 0;
      joins = 0;
      leaves = 0;
      sends = 0;
      departs = 0;
      delta_repeels = 0;
      full_repeels = 0;
      splice_fallbacks = 0;
      batches = 0;
      denials = 0;
      compiled_entries = 0;
      multicast_chunks = 0;
      unicast_chunks = 0;
      multicast_link_bytes = 0.0;
      unicast_link_bytes = 0.0;
      max_backlog = 0;
      plan_lat = [];
    }
  in
  let t0 = Unix.gettimeofday () in
  let last_now = ref 0.0 in
  for _ = 1 to events do
    let ev = Stream.next stream in
    last_now := ev.Stream.ev_time;
    handle st ev
  done;
  (* Drain the backlog so the final state is quiescent; what remains
     in [o_pending] is the backlog depth at the moment the stream
     stopped. *)
  let final_backlog = List.length st.pending in
  if final_backlog > 0 then flush st ~now:!last_now;
  let wall = Unix.gettimeofday () -. t0 in
  let installs, evictions =
    match st.tcam with
    | Some tc -> (Tcam.installs tc, Tcam.evictions tc)
    | None -> (0, 0)
  in
  (* Counters fold into the digest so replays must agree on totals,
     not just per-event decisions. *)
  digest_string st.digest
    (Printf.sprintf "|i%d;e%d;d%d;b%d;ce%d;mc%d;uc%d;mb%.17g;ub%.17g" installs
       evictions st.denials st.batches st.compiled_entries st.multicast_chunks
       st.unicast_chunks st.multicast_link_bytes st.unicast_link_bytes);
  let lat = Array.of_list st.plan_lat in
  Array.sort compare lat;
  let slo =
    {
      events;
      creates = st.creates;
      joins = st.joins;
      leaves = st.leaves;
      sends = st.sends;
      departs = st.departs;
      delta_repeels = st.delta_repeels;
      full_repeels = st.full_repeels;
      splice_fallbacks = st.splice_fallbacks;
      batches = st.batches;
      installs;
      evictions;
      denials = st.denials;
      compiled_entries = st.compiled_entries;
      multicast_chunks = st.multicast_chunks;
      unicast_chunks = st.unicast_chunks;
      multicast_link_bytes = st.multicast_link_bytes;
      unicast_link_bytes = st.unicast_link_bytes;
      max_backlog = st.max_backlog;
      final_backlog;
      plan_p50_s = percentile lat 0.50;
      plan_p99_s = percentile lat 0.99;
      plan_max_s = (if Array.length lat = 0 then 0.0 else lat.(Array.length lat - 1));
      events_per_sec =
        (if wall > 0.0 then float_of_int events /. wall else 0.0);
      wall_s = wall;
    }
  in
  let out =
    {
      o_cfg = cfg;
      o_fabric = fabric;
      o_tcam = st.tcam;
      o_groups = st.groups;
      o_departed = st.departed;
      o_pending = List.rev st.pending;
      o_slo = slo;
      o_fingerprint = digest_hex st.digest;
    }
  in
  out
