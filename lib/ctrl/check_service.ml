open Peel_topology
module D = Peel_check.Diagnostic
module G = Group_table

let member_racks fabric members =
  List.sort_uniq compare (List.map (Fabric.attach_tor fabric) members)

let check_group_cover (out : Service.outcome) slot =
  let fabric = out.Service.o_fabric in
  let g = Fabric.graph fabric in
  let groups = out.Service.o_groups in
  let gid = G.gid groups slot in
  let members = G.member_list groups slot in
  let loc = Printf.sprintf "group %d" gid in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let racks = member_racks fabric members in
  let entry = Peel.Dataplane.exact_entry fabric ~group:gid ~members in
  (match Peel.Dataplane.verify_exact fabric entry ~members with
  | Ok () -> ()
  | Error msg -> add (D.errorf ~code:"SVC001" ~loc "%s" msg));
  let tree_tors =
    List.filter
      (fun v -> (Graph.node g v).Graph.kind = Graph.Tor)
      (Peel_steiner.Tree.members (G.tree groups slot))
  in
  List.iter
    (fun tor ->
      if not (List.mem tor racks) then
        add
          (D.errorf ~code:"SVC001" ~loc
             "tree touches rack %d, which houses no member" tor))
    tree_tors;
  List.iter
    (fun rack ->
      if not (List.mem rack tree_tors) then
        add
          (D.errorf ~code:"SVC001" ~loc "tree misses member rack %d" rack))
    racks;
  List.rev !ds

let check_budget (out : Service.outcome) =
  match out.Service.o_tcam with
  | None -> []
  | Some tc ->
      let cap = Tcam.capacity tc in
      let over =
        List.filter_map
          (fun (sw, used) ->
            if used > cap then
              Some
                (D.errorf ~code:"SVC002"
                   ~loc:(Printf.sprintf "switch %d" sw)
                   "%d entries exceed the TCAM budget of %d" used cap)
            else None)
          (Tcam.occupancy tc)
      in
      if Tcam.max_used tc > cap then
        over
        @ [
            D.errorf ~code:"SVC002" ~loc:"tcam"
              "high-water occupancy %d exceeded the budget of %d"
              (Tcam.max_used tc) cap;
          ]
      else over

let check_stages (out : Service.outcome) =
  match out.Service.o_tcam with
  | None -> []
  | Some tc ->
      let groups = out.Service.o_groups in
      G.fold
        (fun acc slot ->
          let gid = G.gid groups slot in
          let loc = Printf.sprintf "group %d" gid in
          match G.stage groups slot with
          | G.Fallback ->
              (* An evicted or denied group must hold no entry anywhere:
                 partial sets cannot replicate exactly, so the data
                 plane must see it as pure unicast. *)
              List.filter_map
                (fun (sw, _) ->
                  if Tcam.holds tc ~switch:sw ~group:gid then
                    Some
                      (D.errorf ~code:"SVC003" ~loc
                         "fallback group still holds an entry at switch %d" sw)
                  else None)
                (Tcam.occupancy tc)
              @ acc
          | G.Installed ->
              (* Complete entry set: one entry at every switch of the
                 current tree. *)
              List.filter_map
                (fun sw ->
                  if not (Tcam.holds tc ~switch:sw ~group:gid) then
                    Some
                      (D.errorf ~code:"SVC003" ~loc
                         "installed group misses its entry at switch %d" sw)
                  else None)
                (G.switches groups slot)
              @ acc
          | G.Pending -> acc)
        groups []

let check_departed (out : Service.outcome) =
  let stale =
    match out.Service.o_tcam with
    | None -> []
    | Some tc ->
        List.concat_map
          (fun (sw, _) ->
            List.filter_map
              (fun gid ->
                if Hashtbl.mem out.Service.o_departed gid then
                  Some
                    (D.errorf ~code:"SVC004"
                       ~loc:(Printf.sprintf "group %d" gid)
                       "rule for the departed group survives at switch %d" sw)
                else None)
              (Tcam.groups_at tc ~switch:sw))
          (Tcam.occupancy tc)
  in
  let pending =
    List.filter_map
      (fun gid ->
        if Hashtbl.mem out.Service.o_departed gid then
          Some
            (D.errorf ~code:"SVC004" ~loc:(Printf.sprintf "group %d" gid)
               "departed group still sits in the install backlog")
        else None)
      out.Service.o_pending
  in
  (* Generation honesty: a departed gid must not resolve to a live
     arena slot — its slot was freed (and possibly recycled under a
     different gid, which is fine). *)
  let recycled =
    Hashtbl.fold
      (fun gid () acc ->
        match G.find out.Service.o_groups ~gid with
        | Some _ ->
            D.errorf ~code:"SVC004" ~loc:(Printf.sprintf "group %d" gid)
              "departed group still occupies a live arena slot"
            :: acc
        | None -> acc)
      out.Service.o_departed []
  in
  stale @ pending @ recycled

let check_state (out : Service.outcome) =
  let covers =
    G.fold
      (fun acc slot -> check_group_cover out slot @ acc)
      out.Service.o_groups []
  in
  D.sort (covers @ check_budget out @ check_stages out @ check_departed out)

let check_replay ~first ~second =
  if String.equal first second then []
  else
    [
      D.errorf ~code:"SVC005" ~loc:"replay"
        "two runs with the same seed and event stream diverged: %s vs %s"
        first second;
    ]
