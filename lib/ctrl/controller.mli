(** The modeled PEEL controller (§3.3): groups register on arrival,
    and after an RPC round plus serial per-entry install time their
    exact per-group rules land at the refined tree's switches.  Until
    then — and again after an eviction — the group rides the static
    prefix rules.

    Timing model: a group admitted at [at] with [n] entries becomes
    [Refined] at [at + rpc + n * per_rule], as a discrete engine
    event.  TCAM space is claimed only when the installs land;
    victims displaced by the claim revert to [Static] everywhere
    (partial entry sets cannot replicate exactly) and an [Evict]
    trace event is emitted per victim.

    With [capacity <= 0] there is no TCAM at all: every group stays
    [Static] forever — the knob that turns PEEL-refined back into
    PEEL-static. *)

open Peel_sim

(** Which rules a group's chunks currently ride: the pre-installed
    static prefixes, or its exact per-group entries. *)
type stage = Static | Refined

val stage_to_string : stage -> string
(** ["static"] / ["refined"], as printed in tables and traces. *)

type config = {
  rpc : float;       (** controller-to-switch RPC round, seconds *)
  per_rule : float;  (** serial install time per TCAM entry, seconds *)
  capacity : int;    (** per-switch entry budget; [<= 0] disables refinement *)
  policy : Tcam.policy;
  budget : int option;
      (** static-stage ToR-prefix budget handed to {!Peel.Plan.build};
          [None] = exact covers (no over-cover to refine away) *)
}

val default_config : config
(** 2 ms RPC, 20 us/rule, 1024 entries, LRU, budget 1 (one prefix per
    pod-signature group — the maximal over-cover PEEL's refinement
    targets). *)

type t
(** The controller's mutable state: group registry, pending installs
    and the optional TCAM. *)

val create : ?trace:Trace.t -> config -> t
(** Raises [Invalid_argument] on negative or non-finite latencies. *)

val config : t -> config
(** The configuration the controller was created with. *)

val tcam : t -> Tcam.t option
(** The live TCAM model ([None] when [capacity <= 0]). *)

val budget : t -> int option
(** The static-stage prefix budget from the config. *)

val install_latency : t -> nrules:int -> float
(** [rpc + nrules * per_rule]. *)

val admit : t -> Engine.t -> gid:int -> at:float -> switches:(int * int) list -> cost:int -> unit
(** Register a group arriving at [at]; [switches] lists the refined
    tree's [(switch, egress ports)] entries and [cost] its link count
    (stamped on the [Refine] trace event).  Schedules the install
    completion; with no entries to install ([switches = []]) or no
    TCAM the group stays [Static].  Raises [Invalid_argument] on a
    duplicate id. *)

val stage : t -> gid:int -> stage
(** The group's current stage ([Static] if unknown) — launchers read
    this at each chunk release to pick the stage's tree. *)

val touch : t -> now:float -> gid:int -> bytes:float -> unit
(** Account a refined-stage chunk against the group's entries (feeds
    LRU recency / byte weights); no-op unless [Refined]. *)

val release : t -> gid:int -> unit
(** Group departure: free its entries everywhere and stop any pending
    install from landing.  Voluntary, so no [Evict] event. *)

val installs : t -> int
(** Total TCAM entries ever installed. *)

val evictions : t -> int
(** Groups forced back to [Static] by TCAM pressure (departures are
    not counted). *)
