(** PEEL's control plane (§3.3): multicast group churn over a shared
    fabric, a modeled controller with install latency, bounded
    per-switch TCAM state with eviction, and the two-stage
    static-to-exact handoff.

    - {!Tcam} — bounded per-switch entry tables with LRU /
      bytes-weighted eviction.
    - {!Controller} — install scheduling, stage tracking, departures.
    - {!Refine} — the stage-switching launcher and the
      static/refined/IPMC schemes.
    - {!Group_table} — the arena-backed SoA store of live group state
      (member bitsets, slot recycling with generation counters).
    - {!Service} — the long-running open-loop multicast-as-a-service
      controller (delta re-peeling, batched sharded installs,
      admission/eviction, peel/plan memoization).
    - {!Service_ref} — the pre-arena reference implementation kept as
      the differential oracle for the fast path.
    - {!Check_ctrl} — the CTRL invariant lints.
    - {!Check_service} — the SVC invariant lints for service mode. *)

module Tcam = Tcam
module Controller = Controller
module Refine = Refine
module Group_table = Group_table
module Service = Service
module Service_ref = Service_ref
module Check_ctrl = Check_ctrl
module Check_service = Check_service
