(** PEEL's control plane (§3.3): multicast group churn over a shared
    fabric, a modeled controller with install latency, bounded
    per-switch TCAM state with eviction, and the two-stage
    static-to-exact handoff.

    - {!Tcam} — bounded per-switch entry tables with LRU /
      bytes-weighted eviction.
    - {!Controller} — install scheduling, stage tracking, departures.
    - {!Refine} — the stage-switching launcher and the
      static/refined/IPMC schemes.
    - {!Service} — the long-running open-loop multicast-as-a-service
      controller (delta re-peeling, batched sharded installs,
      admission/eviction).
    - {!Check_ctrl} — the CTRL invariant lints.
    - {!Check_service} — the SVC invariant lints for service mode. *)

module Tcam = Tcam
module Controller = Controller
module Refine = Refine
module Service = Service
module Check_ctrl = Check_ctrl
module Check_service = Check_service
