(** Reference implementation of the multicast service controller — the
    PR 8 Hashtbl/list code path, kept verbatim as the differential
    oracle for {!Service}'s arena/memoization fast path.

    The QCheck battery and E22 replay random streams through both
    implementations and require bit-identical SVC005 fingerprints; the
    E22 SLO section also reports the oracle's events/s as the speedup
    baseline.  Keep this module semantically frozen: fixes that change
    decision logs belong in {!Service} (and invalidate committed
    fingerprints deliberately), not here.

    Where {!Refine} replays a fixed batch of groups through the packet
    simulator, [Service] consumes an unbounded {!Peel_workload.Stream}
    of [create]/[join]/[leave]/[send]/[depart] requests and keeps the
    control-plane state — trees, prefix plans, TCAM occupancy —
    current at every event:

    - {b incremental planning}: membership deltas go through
      {!Peel_steiner.Layer_peel.splice}, which splices one
      subscriber's subtree in or out; the service falls back to a full
      peel only when the splice breaks tree validity or leaves the
      Theorem 2.5 cost envelope (both are counted, so the
      delta-planning hit rate is an SLO);
    - {b batched, sharded installs}: pending installs flush through
      {!Peel_compile.compile} once [batch] requests queue up or
      [install_delay] elapses, sharded across {!Peel_util.Pool}
      domains by source pod — the fan-out is bit-deterministic at any
      worker count, the SVC005 replay contract;
    - {b admission/eviction}: exact per-group entries claim bounded
      {!Tcam} space; under saturation the [admission] policy either
      evicts victims (policy-chosen, they degrade to the unicast
      fallback path) or denies the newcomer.  Groups whose entries are
      pending or gone ride unicast — one copy per subscriber.

    Determinism: for a fixed config, fabric and event stream the
    decision log is byte-identical at any pool size; wall-clock SLOs
    (plan latency percentiles, events/sec) are measured but excluded
    from the {!outcome} fingerprint. *)

open Peel_topology
open Peel_workload

(** What happens when an install hits a full switch: [Evict] displaces
    policy-chosen victims, [Deny] refuses the newcomer (all-or-nothing,
    no partial entry sets). *)
type admission = Evict | Deny

val admission_to_string : admission -> string
(** ["evict"] / ["deny"], as accepted by the CLI. *)

val admission_of_string : string -> admission option
(** Inverse of {!admission_to_string}; [None] on an unknown name. *)

type config = {
  capacity : int;        (** per-switch TCAM entries; [<= 0] = no multicast
                             installs at all (everything rides unicast) *)
  policy : Tcam.policy;  (** eviction-victim selection *)
  admission : admission;
  batch : int;           (** pending installs per compile flush (>= 1) *)
  install_delay : float; (** flush the backlog after this long even if the
                             batch is not full, seconds of stream time *)
  budget : int option;   (** prefix budget for the compiled static plans *)
  salt : int option;     (** {!Peel_steiner.Layer_peel.build} tie salt *)
}

val default_config : config
(** 1024 entries, LRU, [Evict], batch 8 (overridable via the
    [PEEL_SERVE_BATCH] environment variable), 2 ms install delay,
    budget-1 prefix plans. *)

(** Where a group's traffic rides right now: waiting for its install
    batch ([Pending], unicast), on its exact entries ([Installed],
    multicast), or displaced/denied ([Fallback], unicast). *)
type stage = Pending | Installed | Fallback

val stage_to_string : stage -> string

type gstate = {
  sg_gid : int;
  sg_source : int;
  mutable sg_members : int list;   (** current membership, ascending *)
  mutable sg_tree : Peel_steiner.Tree.t;  (** current refined tree *)
  mutable sg_switches : int list;  (** non-ToR switches of [sg_tree] —
                                       the exact-entry set *)
  mutable sg_stage : stage;
  mutable sg_replans : int;        (** membership deltas absorbed *)
  sg_dist : int array;             (** cached BFS distances from the source *)
}
(** Mutable so the SVC corruption tests can seed faults; production
    code treats it as read-only outside this module. *)

type slo = {
  events : int;            (** stream events processed *)
  creates : int;
  joins : int;
  leaves : int;
  sends : int;
  departs : int;
  delta_repeels : int;     (** membership deltas absorbed by splicing *)
  full_repeels : int;      (** full peels: creations + splice fallbacks *)
  splice_fallbacks : int;  (** deltas where the splice was rejected *)
  batches : int;           (** compile flushes *)
  installs : int;          (** TCAM entries ever installed *)
  evictions : int;         (** entries displaced under [Evict] *)
  denials : int;           (** groups refused under [Deny] *)
  compiled_entries : int;  (** prefix-table entries lowered by the compiler *)
  multicast_chunks : int;  (** sends released on exact entries *)
  unicast_chunks : int;    (** sends released on the fallback path *)
  multicast_link_bytes : float;  (** link bytes of the multicast sends *)
  unicast_link_bytes : float;    (** link bytes of the unicast sends *)
  max_backlog : int;       (** deepest install backlog at any flush *)
  final_backlog : int;     (** backlog depth when the stream stopped *)
  plan_p50_s : float;      (** median planning latency (wall seconds) *)
  plan_p99_s : float;
  plan_max_s : float;
  events_per_sec : float;  (** sustained event-processing throughput *)
  wall_s : float;
}
(** Service-side SLOs.  Everything above [plan_p50_s] is deterministic
    for a fixed seed/config; the wall-clock tail is machine-dependent
    and excluded from replay fingerprints and the guarded BENCH
    section. *)

type outcome = {
  o_cfg : config;
  o_fabric : Fabric.t;
  o_tcam : Tcam.t option;             (** [None] when [capacity <= 0] *)
  o_groups : (int, gstate) Hashtbl.t; (** groups live at stream end *)
  o_departed : (int, unit) Hashtbl.t; (** every group that departed *)
  o_pending : int list;               (** final backlog (drained after
                                          measurement; see {!slo}) *)
  o_slo : slo;
  o_fingerprint : string;             (** FNV-1a decision-log digest —
                                          the SVC005 replay witness *)
}

val run :
  ?cfg:config -> ?jobs:int -> Fabric.t -> events:int -> Stream.t -> outcome
(** Consume [events] events from the stream and return the quiescent
    state (the backlog is flushed after the final event; its depth at
    stop time is recorded first).  [jobs] sizes the install-compile
    pool (default {!Peel_util.Pool.default_jobs}); the outcome is
    bit-identical for every value.  Raises [Invalid_argument] on a
    non-positive [batch] or negative [install_delay]. *)
