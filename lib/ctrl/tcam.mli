(** Bounded per-switch TCAM state for exact per-group replication
    rules.

    Each programmable switch holds at most [capacity] per-group
    entries.  Installing a group into a full switch evicts victims
    until it fits; the victim is chosen by the eviction [policy]:

    - [Lru]: the entry with the oldest [last_used] stamp,
    - [Bytes_weighted]: the entry that has carried the fewest bytes,

    with ties broken deterministically by the lowest group id, so a
    fixed seed replays bit-identically.  Victim selection is an indexed
    binary min-heap over (score, group id) per switch — O(log n) per
    eviction instead of a table scan, with the same winner the scan
    would pick.  The controller (not this module) decides what an
    eviction means for the victim group — here it is pure table
    bookkeeping.

    Tables can be split into shards (disjoint switch sets, chosen by a
    caller-supplied [shard_of]).  Every point operation routes through
    the owning shard, so single-shard behaviour is unchanged; a batch
    of installs that provably fits ({!batch_fits}) can be applied with
    one Pool domain per shard ({!install_batch}), and the aggregate
    counters merge deterministically (sums, and a max for the
    high-water mark). *)

(** Eviction-victim selection (see the module header for the rules). *)
type policy = Lru | Bytes_weighted

val policy_to_string : policy -> string
(** ["lru"] / ["bytes"], as accepted by the CLI. *)

val policy_of_string : string -> policy option
(** Inverse of {!policy_to_string}; [None] on an unknown name. *)

type t
(** The mutable table state across every switch. *)

val create : capacity:int -> policy:policy -> t
(** Single-shard table.  Raises [Invalid_argument] if [capacity < 1]. *)

val create_sharded :
  capacity:int -> policy:policy -> shards:int -> shard_of:(int -> int) -> t
(** [create_sharded ~shards ~shard_of] partitions switch ownership:
    switch [sw] belongs to shard [shard_of sw], which must land in
    [0, shards).  [shard_of] must be pure — it is consulted on every
    operation.  Sharding is storage partitioning only; results of every
    operation are identical to the single-shard table. *)

val shards : t -> int
(** Number of shards ([1] for {!create}). *)

val capacity : t -> int
(** The per-switch entry budget. *)

val policy : t -> policy
(** The eviction policy. *)

val install : t -> now:float -> switch:int -> group:int -> int list
(** Install [group]'s entry at [switch], evicting victims as needed.
    Returns the evicted group ids (oldest victim first; [] if the
    entry fit or was already present).  The caller must finish each
    victim off with {!remove_group} — a group with entries missing at
    one switch cannot replicate exactly anywhere. *)

val install_strict : t -> now:float -> switch:int -> group:int -> bool
(** Admission-control variant of {!install}: install [group]'s entry at
    [switch] only if it fits without displacing anyone.  Returns
    whether the entry is now present ([true] if it fit or was already
    installed, [false] if the switch is full — nothing is evicted).
    The rule compiler's E18 baseline uses this to find the exact
    per-group install saturation point of a TCAM budget. *)

val touch : t -> now:float -> switch:int -> group:int -> bytes:float -> unit
(** Account a chunk of [bytes] through [group]'s entry at [switch]
    (updates the LRU stamp and the byte weight); no-op if absent. *)

val remove_at : t -> switch:int -> group:int -> bool
(** Drop [group]'s entry at [switch] only (a membership delta freeing
    a switch the updated tree no longer visits); returns whether an
    entry was removed.  Not counted as an eviction. *)

val remove_group : t -> group:int -> int
(** Drop [group]'s entries at every switch (departure or eviction
    fallout); returns how many were removed.  Not counted as
    evictions. *)

val holds : t -> switch:int -> group:int -> bool
(** Whether [group]'s entry is currently installed at [switch]. *)

val used : t -> switch:int -> int
(** Entries currently installed at [switch]. *)

val occupancy : t -> (int * int) list
(** [(switch, entries)] pairs, ascending switch id. *)

val groups_at : t -> switch:int -> int list
(** Group ids holding an entry at [switch], ascending — the full-table
    scan the SVC stale-rule lint walks. *)

val installs : t -> int
(** Total entries ever installed. *)

val evictions : t -> int
(** Total victims displaced by {!install}. *)

val max_used : t -> int
(** High-water occupancy across all switches — the CTRL002 witness.
    With shards, the max over per-shard high-water marks. *)

val batch_fits : t -> items:(int * int) list -> bool
(** [batch_fits t ~items] with [(switch, group)] pairs: would installing
    every item leave each switch within capacity, with no evictions and
    no strict-install refusals?  When true, the installs commute — the
    final table state and counters are independent of install order —
    so {!install_batch} may apply them shard-parallel. *)

val install_batch : ?pool:Peel_util.Pool.t -> t -> now:float -> items:(int * int) list -> unit
(** Install every [(switch, group)] item, fanning shards out across
    [pool] domains.  MUST only be called when [batch_fits t ~items]
    holds (checked by the caller; violating it loses the eviction
    notifications {!install} would have returned).  Equivalent to
    [List.iter] of {!install} over [items] in order. *)
