(** Arena-backed SoA store of live multicast-group state.

    Replaces the service's [(gid, gstate) Hashtbl] + member lists:
    every per-group field is a column indexed by a {!Peel_util.Arena}
    slot, member sets are {!Peel_util.Bits.Bitset}s over the fabric's
    node ids (membership deltas are single-bit flips), and departed
    slots are recycled through the arena free list.  Each recycle bumps
    the slot's generation, so a stale [(slot, gen)] handle held from
    before a departure is detectable — the SVC004 "no stale rules"
    lint is built on this.

    Trees and distance arrays are stored by reference and may be shared
    across slots (trees are immutable; distance arrays are per-source
    and never written after construction). *)

type stage = Pending | Installed | Fallback
(** Install lifecycle of a group (moved here from [Service], which
    re-exports it). *)

val stage_to_string : stage -> string

type t

val create : ?initial:int -> width:int -> unit -> t
(** [width] is the bitset universe — the fabric's node count.
    [initial] (default 1024) is the starting slot capacity; columns
    grow geometrically. *)

val width : t -> int

val live : t -> int
(** Live group count — O(1). *)

val capacity : t -> int
(** Current column capacity (diagnostics). *)

val add :
  t ->
  gid:int ->
  source:int ->
  members:int list ->
  tree:Peel_steiner.Tree.t ->
  switches:int list ->
  dist:int array ->
  stage:stage ->
  int
(** Insert a new group, returning its slot.  Raises [Invalid_argument]
    if [gid] is already present. *)

val remove : t -> gid:int -> bool
(** Free the group's slot (generation bump + recycle); [false] if the
    gid is unknown. *)

val find : t -> gid:int -> int option
(** Slot of a live gid. *)

val mem : t -> gid:int -> bool

(** {2 Per-slot accessors} — valid only for live slots (or, for
    {!generation}, any slot ever allocated). *)

val gid : t -> int -> int
val source : t -> int -> int
val stage : t -> int -> stage
val set_stage : t -> int -> stage -> unit
val replans : t -> int -> int
val bump_replans : t -> int -> unit

val in_pending : t -> int -> bool
(** Whether the group currently sits in the service's pending-install
    queue — the O(1) tombstone consulted at flush instead of an
    O(pending) filter at departure. *)

val set_in_pending : t -> int -> bool -> unit
val tree : t -> int -> Peel_steiner.Tree.t
val set_tree : t -> int -> Peel_steiner.Tree.t -> unit

val switches : t -> int -> int list
(** Entry switches of the current tree, ascending node id. *)

val set_switches : t -> int -> int list -> unit

val dist : t -> int -> int array
(** BFS distance array from the group's source (shared per source). *)

val members_bitset : t -> int -> Peel_util.Bits.Bitset.t
(** The live member set itself (mutations write through). *)

val member_list : t -> int -> int list
(** Members ascending. *)

val add_member : t -> int -> int -> unit
val remove_member : t -> int -> int -> unit

val set_members : t -> int -> int list -> unit
(** Replace the member set (test corruption hook). *)

val generation : t -> int -> int
(** Generation of a slot (live or freed). *)

val slot_live : t -> int -> bool

val valid : t -> slot:int -> gen:int -> bool
(** [true] iff [slot] is live and still on generation [gen]. *)

val iter : (int -> unit) -> t -> unit
(** Live slots, ascending slot order. *)

val fold : ('a -> int -> 'a) -> t -> 'a -> 'a

val gids_sorted : t -> int list
(** Live gids ascending — the deterministic iteration order for lints
    and reports. *)
