(** Control-plane invariant lints (CTRL codes), in the style of
    {!Peel_check}: pure functions returning
    {!Peel_check.Diagnostic.t} lists, asserted in debug mode
    ([PEEL_CHECK=1]) by {!Refine.run} and surfaced by
    [peel_cli refine].

    - [CTRL001] — a group's exact entries (and its refined tree)
      reach {e exactly} the member racks: no over-cover left, no
      member missed.
    - [CTRL002] — no switch ever held more entries than the TCAM
      budget (checked against the live tables and the high-water
      mark).
    - [CTRL003] — the mid-run stage switch conserves chunks: static
      + refined releases equal the chunk count, and deliveries equal
      [chunks x destinations].
    - [CTRL004] — two runs with the same seed and group schedule
      produce byte-identical behavioural digests.
    - [CTRL005] — trace ordering: a [Refine] is preceded by the
      group's [Rule_install]s, an [Evict] by an install. *)

open Peel_topology

val check_refined_cover :
  Fabric.t ->
  group:int ->
  members:int list ->
  tree:Peel_steiner.Tree.t option ->
  Peel_check.Diagnostic.t list
(** CTRL001: {!Peel.Dataplane.verify_exact} on the group's entries,
    plus (when [tree] is given) that the refined tree's ToRs are
    exactly the member racks. *)

val check_budget : Tcam.t -> Peel_check.Diagnostic.t list
(** CTRL002. *)

type handoff = {
  h_gid : int;
  h_ndests : int;
  h_chunks : int;
  h_static : int;      (** chunks released on static prefix rules *)
  h_refined : int;     (** chunks released on the exact tree *)
  h_deliveries : int;
}

val check_handoff : handoff list -> Peel_check.Diagnostic.t list
(** CTRL003. *)

val fingerprint :
  Peel_collective.Runner.outcome ->
  handoffs:handoff list ->
  controller:Controller.t ->
  string
(** A behavioural digest (CCTs, wire totals, control-plane activity,
    per-group handoff counts) for replay comparison. *)

val check_replay : first:string -> second:string -> Peel_check.Diagnostic.t list
(** CTRL004: the two digests must be byte-identical. *)

val check_trace : Peel_sim.Trace.t -> Peel_check.Diagnostic.t list
(** CTRL005 (needs a [Full]-level trace to see anything). *)
