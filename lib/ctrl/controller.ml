open Peel_sim

type stage = Static | Refined

let stage_to_string = function Static -> "static" | Refined -> "refined"

type config = {
  rpc : float;
  per_rule : float;
  capacity : int;
  policy : Tcam.policy;
  budget : int option;
}

let default_config =
  { rpc = 2e-3; per_rule = 20e-6; capacity = 1024; policy = Tcam.Lru; budget = Some 1 }

type group_state = {
  gs_switches : (int * int) list;
  gs_cost : int;
  mutable gs_stage : stage;
  mutable gs_live : bool;
}

type t = {
  cfg : config;
  tcam : Tcam.t option;
  trace : Trace.t;
  groups : (int, group_state) Hashtbl.t;
}

let create ?(trace = Trace.null) cfg =
  if cfg.rpc < 0.0 || not (Float.is_finite cfg.rpc) then
    invalid_arg "Controller.create: rpc must be >= 0";
  if cfg.per_rule < 0.0 || not (Float.is_finite cfg.per_rule) then
    invalid_arg "Controller.create: per_rule must be >= 0";
  let tcam =
    if cfg.capacity <= 0 then None
    else Some (Tcam.create ~capacity:cfg.capacity ~policy:cfg.policy)
  in
  { cfg; tcam; trace; groups = Hashtbl.create 16 }

let config t = t.cfg
let tcam t = t.tcam
let budget t = t.cfg.budget

let install_latency t ~nrules =
  t.cfg.rpc +. (float_of_int nrules *. t.cfg.per_rule)

let stage t ~gid =
  match Hashtbl.find_opt t.groups gid with
  | Some gs -> gs.gs_stage
  | None -> Static

let installs t = match t.tcam with Some tc -> Tcam.installs tc | None -> 0
let evictions t = match t.tcam with Some tc -> Tcam.evictions tc | None -> 0

(* The install RPC completed: claim TCAM space at every switch of the
   refined tree (evicting victims back to their static stage), then
   flip the group to Refined.  Runs as an engine event at
   [arrival + install_latency]. *)
let finish t engine gid =
  match (Hashtbl.find_opt t.groups gid, t.tcam) with
  | Some gs, Some tcam when gs.gs_live && gs.gs_stage = Static ->
      let now = Engine.now engine in
      List.iter
        (fun (sw, _ports) ->
          let victims = Tcam.install tcam ~now ~switch:sw ~group:gid in
          List.iter
            (fun v ->
              ignore (Tcam.remove_group tcam ~group:v);
              (match Hashtbl.find_opt t.groups v with
              | Some vs -> vs.gs_stage <- Static
              | None -> ());
              Trace.evict t.trace ~time:now ~group:v ~switch:sw)
            victims)
        gs.gs_switches;
      List.iter
        (fun (sw, ports) ->
          Trace.rule_install t.trace ~time:now ~group:gid ~switch:sw
            ~rules:ports)
        gs.gs_switches;
      gs.gs_stage <- Refined;
      Trace.refine t.trace ~time:now ~group:gid ~cost:gs.gs_cost
  | _ -> ()

let admit t engine ~gid ~at ~switches ~cost =
  if Hashtbl.mem t.groups gid then
    invalid_arg "Controller.admit: duplicate group id";
  let gs =
    { gs_switches = switches; gs_cost = cost; gs_stage = Static; gs_live = true }
  in
  Hashtbl.replace t.groups gid gs;
  match t.tcam with
  | None -> ()
  | Some _ ->
      let nrules = List.length switches in
      if nrules > 0 then
        Engine.schedule engine
          (at +. install_latency t ~nrules)
          (fun () -> finish t engine gid)

let touch t ~now ~gid ~bytes =
  match (t.tcam, Hashtbl.find_opt t.groups gid) with
  | Some tc, Some gs when gs.gs_stage = Refined ->
      List.iter
        (fun (sw, _) -> Tcam.touch tc ~now ~switch:sw ~group:gid ~bytes)
        gs.gs_switches
  | _ -> ()

let release t ~gid =
  (match Hashtbl.find_opt t.groups gid with
  | Some gs ->
      gs.gs_live <- false;
      gs.gs_stage <- Static
  | None -> ());
  match t.tcam with
  | Some tc -> ignore (Tcam.remove_group tc ~group:gid)
  | None -> ()
