type policy = Lru | Bytes_weighted

let policy_to_string = function Lru -> "lru" | Bytes_weighted -> "bytes"

let policy_of_string = function
  | "lru" -> Some Lru
  | "bytes" | "bytes-weighted" | "bytes_weighted" -> Some Bytes_weighted
  | _ -> None

type entry = { mutable last_used : float; mutable bytes : float }

type t = {
  capacity : int;
  policy : policy;
  tables : (int, (int, entry) Hashtbl.t) Hashtbl.t;
  mutable installs : int;
  mutable evictions : int;
  mutable max_used : int;
}

let create ~capacity ~policy =
  if capacity < 1 then invalid_arg "Tcam.create: capacity must be >= 1";
  {
    capacity;
    policy;
    tables = Hashtbl.create 16;
    installs = 0;
    evictions = 0;
    max_used = 0;
  }

let capacity t = t.capacity
let policy t = t.policy
let installs t = t.installs
let evictions t = t.evictions
let max_used t = t.max_used

let table t switch =
  match Hashtbl.find_opt t.tables switch with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.add t.tables switch tbl;
      tbl

let used t ~switch =
  match Hashtbl.find_opt t.tables switch with
  | Some tbl -> Hashtbl.length tbl
  | None -> 0

let holds t ~switch ~group =
  match Hashtbl.find_opt t.tables switch with
  | Some tbl -> Hashtbl.mem tbl group
  | None -> false

(* Deterministic victim: worst score under the policy, ties broken by
   the lowest group id (hashtable fold order never shows through). *)
let victim t tbl =
  Hashtbl.fold
    (fun g (e : entry) best ->
      let score =
        match t.policy with Lru -> e.last_used | Bytes_weighted -> e.bytes
      in
      match best with
      | None -> Some (g, score)
      | Some (bg, bs) ->
          if score < bs || (score = bs && g < bg) then Some (g, score) else best)
    tbl None

let install t ~now ~switch ~group =
  let tbl = table t switch in
  if Hashtbl.mem tbl group then []
  else begin
    let victims = ref [] in
    while Hashtbl.length tbl >= t.capacity do
      match victim t tbl with
      | None -> assert false (* capacity >= 1 and the table is full *)
      | Some (g, _) ->
          Hashtbl.remove tbl g;
          t.evictions <- t.evictions + 1;
          victims := g :: !victims
    done;
    Hashtbl.replace tbl group { last_used = now; bytes = 0.0 };
    t.installs <- t.installs + 1;
    let u = Hashtbl.length tbl in
    if u > t.max_used then t.max_used <- u;
    List.rev !victims
  end

let install_strict t ~now ~switch ~group =
  let tbl = table t switch in
  if Hashtbl.mem tbl group then true
  else if Hashtbl.length tbl >= t.capacity then false
  else begin
    Hashtbl.replace tbl group { last_used = now; bytes = 0.0 };
    t.installs <- t.installs + 1;
    let u = Hashtbl.length tbl in
    if u > t.max_used then t.max_used <- u;
    true
  end

let touch t ~now ~switch ~group ~bytes =
  match Hashtbl.find_opt t.tables switch with
  | None -> ()
  | Some tbl -> (
      match Hashtbl.find_opt tbl group with
      | None -> ()
      | Some e ->
          e.last_used <- now;
          e.bytes <- e.bytes +. bytes)

let remove_at t ~switch ~group =
  match Hashtbl.find_opt t.tables switch with
  | None -> false
  | Some tbl ->
      if Hashtbl.mem tbl group then begin
        Hashtbl.remove tbl group;
        true
      end
      else false

let remove_group t ~group =
  Hashtbl.fold
    (fun _sw tbl n ->
      if Hashtbl.mem tbl group then begin
        Hashtbl.remove tbl group;
        n + 1
      end
      else n)
    t.tables 0

let occupancy t =
  Hashtbl.fold (fun sw tbl l -> (sw, Hashtbl.length tbl) :: l) t.tables []
  |> List.sort compare

let groups_at t ~switch =
  match Hashtbl.find_opt t.tables switch with
  | None -> []
  | Some tbl ->
      Hashtbl.fold (fun g _ l -> g :: l) tbl [] |> List.sort compare
