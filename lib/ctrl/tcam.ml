module Pool = Peel_util.Pool

type policy = Lru | Bytes_weighted

let policy_to_string = function Lru -> "lru" | Bytes_weighted -> "bytes"

let policy_of_string = function
  | "lru" -> Some Lru
  | "bytes" | "bytes-weighted" | "bytes_weighted" -> Some Bytes_weighted
  | _ -> None

type entry = {
  mutable last_used : float;
  mutable bytes : float;
  mutable pos : int; (* index in the owning table's victim heap *)
}

(* Per-switch table: the entry map plus an indexed binary min-heap over
   (score, gid) so the eviction victim is O(log n) instead of the old
   O(capacity) fold.  The heap root is always the fold's answer — the
   minimum score under the policy, ties to the lowest group id — so
   victim selection is bit-identical to the scan it replaces and
   independent of insertion order.  Scores are mirrored in [hscore]
   (same index as [heap]) so sift comparisons read two flat arrays
   instead of chasing the entry map twice per comparison. *)
type table = {
  entries : (int, entry) Hashtbl.t;
  mutable heap : int array; (* group ids, heap-ordered *)
  mutable hscore : float array; (* score of [heap.(i)], kept in lockstep *)
  mutable hsize : int;
}

(* A shard owns a disjoint set of switches (tables + counters), so a
   batched install can hand each shard to its own Pool domain without
   sharing any mutable state.  The single-shard [create] is the
   degenerate case. *)
type shard = {
  tables : (int, table) Hashtbl.t;
  (* group -> switches holding its entry, within this shard: makes
     [remove_group] O(entries of the group) instead of a scan over
     every switch table in the fleet.  A group touches at most a
     handful of switches, so a plain list beats a per-group table. *)
  rev : (int, int list) Hashtbl.t;
  mutable installs : int;
  mutable evictions : int;
  mutable max_used : int;
}

type t = {
  capacity : int;
  policy : policy;
  shards : shard array;
  shard_of : int -> int;
}

let new_shard () =
  {
    tables = Hashtbl.create 16;
    rev = Hashtbl.create 64;
    installs = 0;
    evictions = 0;
    max_used = 0;
  }

let create_sharded ~capacity ~policy ~shards ~shard_of =
  if capacity < 1 then invalid_arg "Tcam.create: capacity must be >= 1";
  if shards < 1 then invalid_arg "Tcam.create_sharded: shards must be >= 1";
  {
    capacity;
    policy;
    shards = Array.init shards (fun _ -> new_shard ());
    shard_of;
  }

let create ~capacity ~policy =
  create_sharded ~capacity ~policy ~shards:1 ~shard_of:(fun _ -> 0)

let capacity t = t.capacity
let policy t = t.policy
let shards t = Array.length t.shards

let installs t =
  Array.fold_left (fun acc s -> acc + s.installs) 0 t.shards

let evictions t =
  Array.fold_left (fun acc s -> acc + s.evictions) 0 t.shards

let max_used t =
  Array.fold_left (fun acc s -> max acc s.max_used) 0 t.shards

let shard t switch =
  let i = t.shard_of switch in
  if i < 0 || i >= Array.length t.shards then
    invalid_arg "Tcam: shard_of out of range";
  t.shards.(i)

let table sh switch =
  match Hashtbl.find_opt sh.tables switch with
  | Some tbl -> tbl
  | None ->
      let tbl =
        {
          entries = Hashtbl.create 8;
          heap = Array.make 8 0;
          hscore = Array.make 8 0.0;
          hsize = 0;
        }
      in
      Hashtbl.add sh.tables switch tbl;
      tbl

(* ---------------- victim heap ---------------- *)

let score t (e : entry) =
  match t.policy with Lru -> e.last_used | Bytes_weighted -> e.bytes

let entry_of tbl g =
  match Hashtbl.find_opt tbl.entries g with
  | Some e -> e
  | None -> assert false (* heap and entry map are kept in sync *)

(* Position-based comparison over the flat (score, gid) mirrors. *)
let less tbl i j =
  let sa = tbl.hscore.(i) and sb = tbl.hscore.(j) in
  sa < sb || (sa = sb && tbl.heap.(i) < tbl.heap.(j))

let hswap tbl i j =
  let gi = tbl.heap.(i) and gj = tbl.heap.(j) in
  let si = tbl.hscore.(i) and sj = tbl.hscore.(j) in
  tbl.heap.(i) <- gj;
  tbl.heap.(j) <- gi;
  tbl.hscore.(i) <- sj;
  tbl.hscore.(j) <- si;
  (entry_of tbl gi).pos <- j;
  (entry_of tbl gj).pos <- i

let rec sift_up tbl i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if less tbl i p then begin
      hswap tbl i p;
      sift_up tbl p
    end
  end

let rec sift_down tbl i =
  let l = (2 * i) + 1 in
  if l < tbl.hsize then begin
    let r = l + 1 in
    let m = if r < tbl.hsize && less tbl r l then r else l in
    if less tbl m i then begin
      hswap tbl i m;
      sift_down tbl m
    end
  end

let heap_push t tbl g =
  if tbl.hsize = Array.length tbl.heap then begin
    let n = 2 * Array.length tbl.heap in
    let heap' = Array.make n 0 and score' = Array.make n 0.0 in
    Array.blit tbl.heap 0 heap' 0 tbl.hsize;
    Array.blit tbl.hscore 0 score' 0 tbl.hsize;
    tbl.heap <- heap';
    tbl.hscore <- score'
  end;
  let e = entry_of tbl g in
  tbl.heap.(tbl.hsize) <- g;
  tbl.hscore.(tbl.hsize) <- score t e;
  e.pos <- tbl.hsize;
  tbl.hsize <- tbl.hsize + 1;
  sift_up tbl (tbl.hsize - 1)

(* Remove the entry at heap slot [i] (swap-with-last then restore). *)
let heap_delete tbl i =
  tbl.hsize <- tbl.hsize - 1;
  if i <> tbl.hsize then begin
    let g = tbl.heap.(tbl.hsize) in
    tbl.heap.(i) <- g;
    tbl.hscore.(i) <- tbl.hscore.(tbl.hsize);
    (entry_of tbl g).pos <- i;
    sift_down tbl i;
    sift_up tbl i
  end

let reposition t tbl e =
  tbl.hscore.(e.pos) <- score t e;
  sift_down tbl e.pos;
  sift_up tbl e.pos

(* ---------------- reverse index ---------------- *)

let rev_add sh ~group ~switch =
  let sws = Option.value (Hashtbl.find_opt sh.rev group) ~default:[] in
  if not (List.mem switch sws) then Hashtbl.replace sh.rev group (switch :: sws)

let rev_remove sh ~group ~switch =
  match Hashtbl.find_opt sh.rev group with
  | None -> ()
  | Some sws -> (
      match List.filter (fun sw -> sw <> switch) sws with
      | [] -> Hashtbl.remove sh.rev group
      | sws' -> Hashtbl.replace sh.rev group sws')

(* ---------------- point operations ---------------- *)

let used t ~switch =
  match Hashtbl.find_opt (shard t switch).tables switch with
  | Some tbl -> Hashtbl.length tbl.entries
  | None -> 0

let holds t ~switch ~group =
  match Hashtbl.find_opt (shard t switch).tables switch with
  | Some tbl -> Hashtbl.mem tbl.entries group
  | None -> false

let drop_entry sh tbl ~switch ~group =
  let e = entry_of tbl group in
  heap_delete tbl e.pos;
  Hashtbl.remove tbl.entries group;
  rev_remove sh ~group ~switch

let add_entry t sh tbl ~now ~switch ~group =
  let e = { last_used = now; bytes = 0.0; pos = -1 } in
  Hashtbl.replace tbl.entries group e;
  heap_push t tbl group;
  rev_add sh ~group ~switch;
  sh.installs <- sh.installs + 1;
  let u = Hashtbl.length tbl.entries in
  if u > sh.max_used then sh.max_used <- u

let install t ~now ~switch ~group =
  let sh = shard t switch in
  let tbl = table sh switch in
  if Hashtbl.mem tbl.entries group then []
  else begin
    let victims = ref [] in
    while Hashtbl.length tbl.entries >= t.capacity do
      assert (tbl.hsize > 0);
      let g = tbl.heap.(0) in
      drop_entry sh tbl ~switch ~group:g;
      sh.evictions <- sh.evictions + 1;
      victims := g :: !victims
    done;
    add_entry t sh tbl ~now ~switch ~group;
    List.rev !victims
  end

let install_strict t ~now ~switch ~group =
  let sh = shard t switch in
  let tbl = table sh switch in
  if Hashtbl.mem tbl.entries group then true
  else if Hashtbl.length tbl.entries >= t.capacity then false
  else begin
    add_entry t sh tbl ~now ~switch ~group;
    true
  end

let touch t ~now ~switch ~group ~bytes =
  match Hashtbl.find_opt (shard t switch).tables switch with
  | None -> ()
  | Some tbl -> (
      match Hashtbl.find_opt tbl.entries group with
      | None -> ()
      | Some e ->
          e.last_used <- now;
          e.bytes <- e.bytes +. bytes;
          (* the entry's score changed under either policy *)
          reposition t tbl e)

let remove_at t ~switch ~group =
  let sh = shard t switch in
  match Hashtbl.find_opt sh.tables switch with
  | None -> false
  | Some tbl ->
      if Hashtbl.mem tbl.entries group then begin
        drop_entry sh tbl ~switch ~group;
        true
      end
      else false

let remove_group t ~group =
  let n = ref 0 in
  Array.iter
    (fun sh ->
      match Hashtbl.find_opt sh.rev group with
      | None -> ()
      | Some switches ->
          List.iter
            (fun sw ->
              let tbl = Hashtbl.find sh.tables sw in
              let e = entry_of tbl group in
              heap_delete tbl e.pos;
              Hashtbl.remove tbl.entries group;
              incr n)
            switches;
          Hashtbl.remove sh.rev group)
    t.shards;
  !n

let occupancy t =
  Array.to_list t.shards
  |> List.concat_map (fun sh ->
         Hashtbl.fold
           (fun sw tbl l -> (sw, Hashtbl.length tbl.entries) :: l)
           sh.tables [])
  |> List.sort compare

let groups_at t ~switch =
  match Hashtbl.find_opt (shard t switch).tables switch with
  | None -> []
  | Some tbl ->
      Hashtbl.fold (fun g _ l -> g :: l) tbl.entries [] |> List.sort compare

(* ---------------- batched installs ---------------- *)

let batch_fits t ~items =
  (* Count prospective new entries per switch; the batch commutes with
     itself iff no switch would exceed capacity (then neither [install]
     nor [install_strict] can evict or deny). *)
  let adds = Hashtbl.create 64 in
  List.iter
    (fun (sw, g) ->
      if not (holds t ~switch:sw ~group:g) then
        Hashtbl.replace adds sw
          (1 + Option.value (Hashtbl.find_opt adds sw) ~default:0))
    items;
  Hashtbl.fold
    (fun sw n ok -> ok && used t ~switch:sw + n <= t.capacity)
    adds true

let install_batch ?pool t ~now ~items =
  (* Precondition: [batch_fits t ~items] — every install fits without
     eviction, so per-switch (hence per-shard) installs are independent
     and each shard can run on its own Pool domain.  Shard counters are
     only ever touched by their owner; aggregate reads ([installs],
     [max_used]) are sums/maxes over shards, so the merged totals are
     identical to the sequential order. *)
  let nsh = Array.length t.shards in
  if nsh = 1 || List.length items < 2 then
    List.iter (fun (sw, g) -> ignore (install t ~now ~switch:sw ~group:g)) items
  else begin
    let per_shard = Array.make nsh [] in
    (* Keep per-shard item order = batch order (install order within a
       switch affects nothing here, but determinism is free). *)
    List.iter
      (fun (sw, g) ->
        let i = t.shard_of sw in
        per_shard.(i) <- (sw, g) :: per_shard.(i))
      items;
    let work = ref [] in
    for i = nsh - 1 downto 0 do
      if per_shard.(i) <> [] then work := (i, List.rev per_shard.(i)) :: !work
    done;
    ignore
      (Pool.par_map ?pool
         (fun (_i, its) ->
           List.iter
             (fun (sw, g) -> ignore (install t ~now ~switch:sw ~group:g))
             its)
         !work)
  end
