(** Service-mode invariant lints (SVC codes), in the style of
    {!Peel_check}: pure functions over a quiescent {!Service.outcome},
    asserted in debug mode ([PEEL_CHECK=1]) by [peel_cli serve] and
    the [@serve-smoke] battery.

    - [SVC001] — every live group's exact entries and current tree
      reach {e exactly} the member racks, through every membership
      delta the group absorbed (the delta-repeel soundness lint).
    - [SVC002] — no switch ever held more entries than the TCAM
      budget (live tables and the high-water mark).
    - [SVC003] — stage honesty: an evicted/denied ([Fallback]) group
      holds no entry anywhere; an [Installed] group holds a complete
      entry set (one per tree switch).
    - [SVC004] — no rule for a departed group survives, at any switch
      or in the install backlog, and no departed gid still resolves to
      a live {!Group_table} arena slot (generation honesty).
    - [SVC005] — two runs with the same seed and event stream produce
      byte-identical decision-log fingerprints (at any pool size). *)

val check_group_cover :
  Service.outcome -> int -> Peel_check.Diagnostic.t list
(** SVC001 for the live group at the given {!Group_table} slot. *)

val check_budget : Service.outcome -> Peel_check.Diagnostic.t list
(** SVC002. *)

val check_stages : Service.outcome -> Peel_check.Diagnostic.t list
(** SVC003. *)

val check_departed : Service.outcome -> Peel_check.Diagnostic.t list
(** SVC004. *)

val check_state : Service.outcome -> Peel_check.Diagnostic.t list
(** SVC001–004 over the whole outcome, sorted errors-first. *)

val check_replay :
  first:string -> second:string -> Peel_check.Diagnostic.t list
(** SVC005: the two fingerprints must be byte-identical. *)
