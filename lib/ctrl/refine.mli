(** The two-stage handoff (§3.3), end to end: each group launches
    immediately on its budgeted static prefix rules — over-covered
    racks receive every chunk, and that waste is real link load — and
    switches to its exact per-group tree mid-run, the moment the
    controller's installs land.  Subsequent chunks change destination
    sets on the fly; an eviction flips the group back.

    Three schemes share one group schedule:

    - [Peel_static]: stage one forever (the refinement-off baseline),
    - [Peel_refined]: the full two-stage handoff,
    - [Ipmc]: per-group rules only — no prefix fallback exists, so
      every group stalls for its installs before the first chunk
      (classic IP-multicast, with unbounded switch state; E14 prices
      that state). *)

open Peel_topology
open Peel_sim
open Peel_workload

(** The three contenders sharing one group schedule (see the module
    header). *)
type scheme = Peel_static | Peel_refined | Ipmc

val all_schemes : scheme list
(** Every scheme, in table order. *)

val scheme_to_string : scheme -> string
(** CLI/table name, e.g. ["peel-refined"]. *)

val scheme_of_string : string -> scheme option
(** Inverse of {!scheme_to_string}; [None] on an unknown name. *)

type report = {
  r_gid : int;
  r_ndests : int;
  r_chunks : int;
  mutable r_static_chunks : int;   (** released on prefix rules *)
  mutable r_refined_chunks : int;  (** released on the exact tree *)
  mutable r_deliveries : int;
  mutable r_overcover_bytes : float;
      (** bytes landed on racks with no members (static stage only) *)
}

type outcome = {
  run : Peel_collective.Runner.outcome;
  reports : report list;  (** ascending group id *)
  controller : Controller.t;
  handoffs : Check_ctrl.handoff list;
  fingerprint : string;   (** {!Check_ctrl.fingerprint} of this run *)
}

val run :
  ?chunks:int ->
  ?cfg:Controller.config ->
  ?trace:Trace.t ->
  ?ecmp:bool ->
  Fabric.t ->
  scheme ->
  Spec.group list ->
  outcome
(** Simulate the group schedule under [scheme].  Deterministic for a
    fixed fabric, config and schedule (CTRL004).  Under [PEEL_CHECK=1]
    asserts CTRL001 per group at launch and CTRL002/003/005 on the
    outcome. *)

val total_overcover_bytes : outcome -> float
(** Bytes landed on memberless racks, summed over every group. *)

val static_chunks : outcome -> int
(** Chunks released on static prefix rules, summed over every group. *)

val refined_chunks : outcome -> int
(** Chunks released on exact per-group trees, summed over every
    group. *)
