open Peel_topology
open Peel_workload
module Tree = Peel_steiner.Tree
module Layer_peel = Peel_steiner.Layer_peel
module Memo = Peel_steiner.Memo
module Plan = Peel.Plan
module Pool = Peel_util.Pool
module Bitset = Peel_util.Bits.Bitset
module Trace = Peel_sim.Trace
module G = Group_table

type admission = Evict | Deny

let admission_to_string = function Evict -> "evict" | Deny -> "deny"

let admission_of_string = function
  | "evict" -> Some Evict
  | "deny" -> Some Deny
  | _ -> None

type config = {
  capacity : int;
  policy : Tcam.policy;
  admission : admission;
  batch : int;
  install_delay : float;
  budget : int option;
  salt : int option;
  use_cache : bool;
  cache_capacity : int;
  gc_space_overhead : int option;
}

let env_batch () =
  match Sys.getenv_opt "PEEL_SERVE_BATCH" with
  | Some s -> (
      match int_of_string_opt s with Some n when n >= 1 -> Some n | _ -> None)
  | None -> None

let default_config =
  {
    capacity = 1024;
    policy = Tcam.Lru;
    admission = Evict;
    batch = Option.value (env_batch ()) ~default:8;
    install_delay = 2e-3;
    budget = Some 1;
    salt = None;
    use_cache = true;
    cache_capacity = 65536;
    gc_space_overhead = None;
  }

type stage = Group_table.stage = Pending | Installed | Fallback

let stage_to_string = Group_table.stage_to_string

type slo = {
  events : int;
  creates : int;
  joins : int;
  leaves : int;
  sends : int;
  departs : int;
  delta_repeels : int;
  full_repeels : int;
  splice_fallbacks : int;
  batches : int;
  installs : int;
  evictions : int;
  denials : int;
  compiled_entries : int;
  multicast_chunks : int;
  unicast_chunks : int;
  multicast_link_bytes : float;
  unicast_link_bytes : float;
  max_backlog : int;
  final_backlog : int;
  cache_hits : int;
  cache_misses : int;
  groups_live : int;
  plan_p50_s : float;
  plan_p99_s : float;
  plan_max_s : float;
  events_per_sec : float;
  wall_s : float;
}

type outcome = {
  o_cfg : config;
  o_fabric : Fabric.t;
  o_tcam : Tcam.t option;
  o_groups : G.t;
  o_departed : (int, unit) Hashtbl.t;
  o_pending : int list;
  o_slo : slo;
  o_fingerprint : string;
}

(* ------------------------------------------------------------------ *)
(* Deterministic digest: FNV-1a over the decision log, so replays at  *)
(* any worker count can be compared byte-for-byte (SVC005).           *)
(* ------------------------------------------------------------------ *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

type digest = { mutable h : int64 }

let digest_create () = { h = fnv_offset }

let digest_string d s =
  String.iter
    (fun c ->
      d.h <- Int64.mul (Int64.logxor d.h (Int64.of_int (Char.code c))) fnv_prime)
    s

let digest_hex d = Printf.sprintf "%016Lx" d.h

(* Allocation-free digest helpers: fold exactly the bytes the
   reference implementation's [Printf.sprintf]-built strings contain,
   without materializing them — the hot path runs one of these per
   event, and the fingerprint must stay byte-identical. *)
let digest_char d c =
  d.h <- Int64.mul (Int64.logxor d.h (Int64.of_int (Char.code c))) fnv_prime

let rec digest_int d n =
  if n < 0 then begin
    (* [%d] renders the sign first; event fields are never negative,
       but keep the fold total. *)
    digest_char d '-';
    digest_pos d (-n)
  end
  else digest_pos d n

and digest_pos d n =
  if n >= 10 then digest_pos d (n / 10);
  digest_char d (Char.chr (Char.code '0' + (n mod 10)))

(* ------------------------------------------------------------------ *)
(* The service loop                                                   *)
(* ------------------------------------------------------------------ *)

(* Planning-memo key: (source, member set).  Lookups borrow the live
   bitset; insertions freeze a copy so later membership deltas cannot
   mutate a cached key. *)
type memo_key = int * Bitset.t

let memo_hash ((s, bs) : memo_key) = ((Bitset.hash bs * 31) + s) land max_int
let memo_equal ((s, a) : memo_key) ((s', b) : memo_key) = s = s' && Bitset.equal a b
let freeze_key ((s, bs) : memo_key) : memo_key = (s, Bitset.copy bs)

type state = {
  cfg : config;
  fabric : Fabric.t;
  graph : Graph.t;
  tcam : Tcam.t option;
  pool : Pool.t;
  groups : G.t;
  departed : (int, unit) Hashtbl.t;
  digest : digest;
  (* planning caches; [dists] is exact per-source data and always on,
     the tree/plan memos honour [cfg.use_cache] *)
  dists : (int, int array) Hashtbl.t;
  trees : (memo_key, Tree.t * int list) Memo.t;
  plans : (memo_key, Plan.t) Memo.t;
  (* Theorem 2.5 envelope data per (source, member set): the symmetric
     lower bound and the farthest BFS layer.  Both are pure in the
     fabric's link state, which the service never mutates, so a hit is
     exactly the value a fresh computation would produce. *)
  bounds : (memo_key, int option * int option) Memo.t;
  (* pending-install queue: an append-only gid buffer.  Departure just
     tombstones (clears the group's in_pending flag, O(1)); the queue
     compacts when tombstones dominate and drains wholesale at flush. *)
  mutable pq : int array;
  mutable pq_len : int;
  mutable pq_tomb : int;
  mutable pending_live : int;
  mutable pending_since : float;
  (* counters *)
  mutable creates : int;
  mutable joins : int;
  mutable leaves : int;
  mutable sends : int;
  mutable departs : int;
  mutable delta_repeels : int;
  mutable full_repeels : int;
  mutable splice_fallbacks : int;
  mutable batches : int;
  mutable denials : int;
  mutable compiled_entries : int;
  mutable multicast_chunks : int;
  mutable unicast_chunks : int;
  mutable multicast_link_bytes : float;
  mutable unicast_link_bytes : float;
  mutable max_backlog : int;
  mutable plan_lat : float array;
  mutable plan_n : int;
}

let entry_switches g tree =
  Peel_steiner.Tree.switch_members g tree
  |> List.filter (fun v -> (Graph.node g v).Graph.kind <> Graph.Tor)

let dests_of st slot =
  let source = G.source st.groups slot in
  List.filter (fun m -> m <> source) (G.member_list st.groups slot)

(* Fold [Stream.kind_to_string ev.ev_kind] without the sprintf. *)
let digest_kind d (k : Stream.kind) =
  match k with
  | Stream.Create g ->
      digest_string d "create[g";
      digest_int d g.Spec.g_id;
      digest_char d ']'
  | Stream.Join { gid; endpoint } ->
      digest_string d "join[g";
      digest_int d gid;
      digest_char d '+';
      digest_int d endpoint;
      digest_char d ']'
  | Stream.Leave { gid; endpoint } ->
      digest_string d "leave[g";
      digest_int d gid;
      digest_char d '-';
      digest_int d endpoint;
      digest_char d ']'
  | Stream.Send { gid; _ } ->
      digest_string d "send[g";
      digest_int d gid;
      digest_char d ']'
  | Stream.Depart { gid } ->
      digest_string d "depart[g";
      digest_int d gid;
      digest_char d ']'

(* Byte-for-byte the reference fold of
   [sprintf "%d:%s:%s;" ev_seq (kind_to_string ev_kind) tag]. *)
let log_tagged st ~(ev : Stream.event) f =
  let d = st.digest in
  digest_int d ev.Stream.ev_seq;
  digest_char d ':';
  digest_kind d ev.Stream.ev_kind;
  digest_char d ':';
  f d;
  digest_char d ';'

let log_event st ~ev tag = log_tagged st ~ev (fun d -> digest_string d tag)

let lat_push st v =
  if st.plan_n = Array.length st.plan_lat then begin
    let a = Array.make (max 64 (2 * st.plan_n)) 0.0 in
    Array.blit st.plan_lat 0 a 0 st.plan_n;
    st.plan_lat <- a
  end;
  st.plan_lat.(st.plan_n) <- v;
  st.plan_n <- st.plan_n + 1

let timed st f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  lat_push st (Unix.gettimeofday () -. t0);
  r

let dist_of st source =
  match Hashtbl.find_opt st.dists source with
  | Some d -> d
  | None ->
      let d = Graph.bfs_dist st.graph source in
      Hashtbl.add st.dists source d;
      d

(* Memoized full peel: a hit returns the identical immutable tree a
   fresh build would produce (same graph, salt, source, dests), so
   cache-on and cache-off runs keep byte-identical decision logs.  The
   entry-switch set rides along — it is a pure function of the tree,
   and the create path consumes both. *)
let build_tree st ~source ~members_bs ~dests ~err =
  let build () =
    match Layer_peel.build ?salt:st.cfg.salt st.graph ~source ~dests with
    | Some t -> (t, entry_switches st.graph t)
    | None -> failwith err
  in
  if st.cfg.use_cache then begin
    let k = (source, members_bs) in
    match Memo.find st.trees k with
    | Some ts -> ts
    | None ->
        let ts = build () in
        Memo.add st.trees (freeze_key k) ts;
        ts
  end
  else build ()

(* Farthest BFS layer over the cached per-source distance array: the
   service never fails links, so the array [dist_of] computed at group
   creation is the BFS a fresh [Layer_peel.farthest_layer] would run —
   this just skips the BFS. *)
let farthest st ~source ~dests =
  let dist = dist_of st source in
  let rec go far = function
    | [] -> Some far
    | d :: rest ->
        if dist.(d) = Graph.unreachable then None else go (max far dist.(d)) rest
  in
  go 0 dests

(* The Theorem 2.5 envelope data, memoized by (source, member set).
   [symmetric_lower_bound] restores down links before costing, so both
   components are pure in (source, dests) for the service's static
   fabric and a memo hit equals recomputing (the SVC005 contract). *)
let bound_info st ~source ~members_bs ~dests =
  let compute () =
    let opt =
      Peel_check.Check_tree.symmetric_lower_bound st.fabric ~source ~dests
    in
    (opt, farthest st ~source ~dests)
  in
  if st.cfg.use_cache then begin
    let k = (source, members_bs) in
    match Memo.find st.bounds k with
    | Some info -> info
    | None ->
        let info = compute () in
        Memo.add st.bounds (freeze_key k) info;
        info
  end
  else compute ()

(* ---------------- pending queue ---------------- *)

let pq_compact st =
  (* Keep only gids still pending (departed tombstones drop), in order. *)
  let w = ref 0 in
  for r = 0 to st.pq_len - 1 do
    let gid = st.pq.(r) in
    let keep =
      match G.find st.groups ~gid with
      | Some slot -> G.in_pending st.groups slot
      | None -> false
    in
    if keep then begin
      st.pq.(!w) <- gid;
      incr w
    end
  done;
  st.pq_len <- !w;
  st.pq_tomb <- 0

let pq_push st gid =
  if st.pq_len = Array.length st.pq then begin
    if st.pq_len >= 64 && st.pq_tomb >= st.pq_len / 2 then pq_compact st
    else begin
      let a = Array.make (max 64 (2 * st.pq_len)) 0 in
      Array.blit st.pq 0 a 0 st.pq_len;
      st.pq <- a
    end
  end;
  st.pq.(st.pq_len) <- gid;
  st.pq_len <- st.pq_len + 1

let enqueue_install st ~now slot gid =
  if st.cfg.capacity > 0 && not (G.in_pending st.groups slot) then begin
    if st.pending_live = 0 then st.pending_since <- now;
    G.set_in_pending st.groups slot true;
    pq_push st gid;
    st.pending_live <- st.pending_live + 1
  end

(* Evict a group everywhere: its partial entry set cannot replicate
   exactly, so it degrades to the unicast fallback path. *)
let demote st victim =
  (match st.tcam with
  | Some tc -> ignore (Tcam.remove_group tc ~group:victim)
  | None -> ());
  match G.find st.groups ~gid:victim with
  | Some slot -> G.set_stage st.groups slot Fallback
  | None -> ()

(* Flush the pending batch: lower every live pending group's prefix
   plan through the fleet compiler — memo hits skip Plan.build, misses
   build in parallel across pool domains — then claim TCAM space for
   the exact per-group entries under the admission policy.  When the
   whole batch provably fits ([Tcam.batch_fits]), installs commute and
   go shard-parallel; otherwise the exact sequential admission loop of
   the reference implementation runs (evictions at one switch feed
   back into later decisions, so order is semantics there). *)
let flush st ~now =
  let backlog = st.pending_live in
  if backlog > st.max_backlog then st.max_backlog <- backlog;
  let live =
    let acc = ref [] in
    for r = st.pq_len - 1 downto 0 do
      let gid = st.pq.(r) in
      match G.find st.groups ~gid with
      | Some slot when G.in_pending st.groups slot ->
          G.set_in_pending st.groups slot false;
          acc := (gid, slot) :: !acc
      | _ -> ()
    done;
    !acc
  in
  st.pq_len <- 0;
  st.pq_tomb <- 0;
  st.pending_live <- 0;
  if live <> [] then begin
    st.batches <- st.batches + 1;
    (* Prefix plans, memoized by (source, member set). *)
    let lookup =
      List.map
        (fun (gid, slot) ->
          let k = (G.source st.groups slot, G.members_bitset st.groups slot) in
          let cached = if st.cfg.use_cache then Memo.find st.plans k else None in
          (gid, slot, k, cached))
        live
    in
    let misses = List.filter (fun (_, _, _, p) -> Option.is_none p) lookup in
    let built =
      Pool.par_map ~pool:st.pool
        (fun (_gid, slot, _k, _) ->
          Plan.build ?budget:st.cfg.budget st.fabric
            ~source:(G.source st.groups slot) ~dests:(dests_of st slot))
        misses
    in
    if st.cfg.use_cache then
      List.iter2
        (fun (_, _, k, _) p -> Memo.add st.plans (freeze_key k) p)
        misses built;
    let plans =
      let remaining = ref built in
      List.map
        (fun (gid, slot, _k, cached) ->
          match cached with
          | Some p -> (gid, slot, p)
          | None -> (
              match !remaining with
              | p :: rest ->
                  remaining := rest;
                  (gid, slot, p)
              | [] -> assert false))
        lookup
    in
    (* Shard by source pod; shards compile independently (pure), so
       the pool fan-out is bit-deterministic at any worker count. *)
    let shard_of (_, slot, _) =
      Fabric.pod_of_tor st.fabric
        (Fabric.attach_tor st.fabric (G.source st.groups slot))
    in
    let shards =
      List.sort_uniq compare (List.map shard_of plans)
      |> List.map (fun pod ->
             (pod, List.filter (fun c -> shard_of c = pod) plans))
    in
    let compiled =
      Pool.par_map ~pool:st.pool
        (fun (_pod, cells) ->
          Peel_compile.count_entries st.fabric
            (List.map (fun (gid, _, p) -> (gid, p)) cells))
        shards
    in
    List.iter (fun n -> st.compiled_entries <- st.compiled_entries + n) compiled;
    (* Admission, in batch order. *)
    match st.tcam with
    | None -> ()
    | Some tc ->
        let items =
          List.concat_map
            (fun (gid, slot) ->
              List.map (fun sw -> (sw, gid)) (G.switches st.groups slot))
            live
        in
        if Tcam.batch_fits tc ~items then begin
          (* No switch can overflow: zero evictions, zero denials, so
             both admission policies reduce to plain installs and the
             batch commutes — apply it shard-parallel. *)
          Tcam.install_batch ~pool:st.pool tc ~now ~items;
          List.iter (fun (_gid, slot) -> G.set_stage st.groups slot Installed) live
        end
        else
          List.iter
            (fun (gid, slot) ->
              match st.cfg.admission with
              | Evict ->
                  List.iter
                    (fun sw ->
                      let victims = Tcam.install tc ~now ~switch:sw ~group:gid in
                      List.iter (demote st) victims)
                    (G.switches st.groups slot);
                  G.set_stage st.groups slot Installed
              | Deny ->
                  (* All-or-nothing: probe every switch first so a denied
                     group never leaves partial entries behind. *)
                  let fits =
                    List.for_all
                      (fun sw ->
                        Tcam.holds tc ~switch:sw ~group:gid
                        || Tcam.used tc ~switch:sw < Tcam.capacity tc)
                      (G.switches st.groups slot)
                  in
                  if fits then begin
                    List.iter
                      (fun sw ->
                        ignore (Tcam.install_strict tc ~now ~switch:sw ~group:gid))
                      (G.switches st.groups slot);
                    G.set_stage st.groups slot Installed
                  end
                  else begin
                    (* The group may still hold entries from a previous
                       install (membership deltas only free removed
                       switches); reclaim them all so a denied group
                       never keeps a partial entry set (SVC003). *)
                    demote st gid;
                    st.denials <- st.denials + 1
                  end)
            live
  end

let maybe_flush st ~now =
  if
    st.pending_live > 0
    && (st.pending_live >= st.cfg.batch
       || now -. st.pending_since >= st.cfg.install_delay)
  then flush st ~now

(* Re-plan a group after a membership delta: splice the subscriber's
   subtree in/out, falling back to a full peel when the splice fails,
   breaks tree validity, or leaves the Theorem 2.5 cost envelope. *)
let replan st slot ~delta =
  let source = G.source st.groups slot in
  let dests = dests_of st slot in
  let full () =
    st.full_repeels <- st.full_repeels + 1;
    fst
      (build_tree st ~source ~members_bs:(G.members_bitset st.groups slot)
         ~dests ~err:"Service.replan: destinations unreachable")
  in
  let spliced =
    Layer_peel.splice ?salt:st.cfg.salt ~dist:(G.dist st.groups slot) st.graph
      ~prev:(G.tree st.groups slot) ~source ~dests ~delta
  in
  let tree =
    match spliced with
    | None ->
        st.splice_fallbacks <- st.splice_fallbacks + 1;
        full ()
    | Some t -> (
        let ok_shape = Result.is_ok (Tree.validate st.graph t ~dests) in
        let ok_bound =
          match
            bound_info st ~source
              ~members_bs:(G.members_bitset st.groups slot)
              ~dests
          with
          | None, _ -> true
          | Some opt, far -> (
              match far with
              | None -> false
              | Some f ->
                  let factor = max 1 (min f (List.length dests)) in
                  Tree.cost t <= factor * max 1 opt)
        in
        if ok_shape && ok_bound then begin
          st.delta_repeels <- st.delta_repeels + 1;
          t
        end
        else begin
          st.splice_fallbacks <- st.splice_fallbacks + 1;
          full ()
        end)
  in
  G.set_tree st.groups slot tree;
  G.bump_replans st.groups slot;
  tree

(* A membership delta on an installed group updates its entry set:
   switches the new tree no longer visits free their entries at once,
   new switches go through the batched install path (the group rides
   the fallback until they land). *)
let update_entries st ~now slot =
  let gid = G.gid st.groups slot in
  let prev = G.switches st.groups slot in
  let switches = entry_switches st.graph (G.tree st.groups slot) in
  let removed = List.filter (fun s -> not (List.mem s switches)) prev in
  let added = List.filter (fun s -> not (List.mem s prev)) switches in
  G.set_switches st.groups slot switches;
  (match st.tcam with
  | Some tc ->
      List.iter
        (fun sw -> ignore (Tcam.remove_at tc ~switch:sw ~group:gid))
        removed
  | None -> ());
  match G.stage st.groups slot with
  | Installed when added <> [] ->
      G.set_stage st.groups slot Pending;
      enqueue_install st ~now slot gid
  | Fallback ->
      (* A membership change is a fresh admission request. *)
      G.set_stage st.groups slot Pending;
      enqueue_install st ~now slot gid
  | _ -> ()

let handle st (ev : Stream.event) =
  let now = ev.Stream.ev_time in
  (match ev.Stream.ev_kind with
  | Stream.Create group ->
      st.creates <- st.creates + 1;
      let gid = group.Spec.g_id in
      let source = group.Spec.g_source in
      let dests = group.Spec.g_dests in
      let members = group.Spec.g_members in
      let dist = dist_of st source in
      let members_bs = Bitset.of_list ~width:(G.width st.groups) members in
      let tree, switches =
        timed st (fun () ->
            build_tree st ~source ~members_bs ~dests
              ~err:"Service: group unreachable at creation")
      in
      st.full_repeels <- st.full_repeels + 1;
      let slot =
        G.add st.groups ~gid ~source ~members ~tree ~switches ~dist
          ~stage:(if st.cfg.capacity > 0 then Pending else Fallback)
      in
      enqueue_install st ~now slot gid;
      log_tagged st ~ev (fun d ->
          digest_char d 'c';
          digest_int d (List.length switches))
  | Stream.Join { gid; endpoint } -> (
      st.joins <- st.joins + 1;
      match G.find st.groups ~gid with
      | None -> log_event st ~ev "?"
      | Some slot ->
          G.add_member st.groups slot endpoint;
          let deltas_before = st.delta_repeels in
          ignore
            (timed st (fun () -> replan st slot ~delta:(Layer_peel.Add endpoint)));
          update_entries st ~now slot;
          log_event st ~ev
            (if st.delta_repeels > deltas_before then "d" else "f"))
  | Stream.Leave { gid; endpoint } -> (
      st.leaves <- st.leaves + 1;
      match G.find st.groups ~gid with
      | None -> log_event st ~ev "?"
      | Some slot ->
          G.remove_member st.groups slot endpoint;
          let deltas_before = st.delta_repeels in
          ignore
            (timed st (fun () ->
                 replan st slot ~delta:(Layer_peel.Remove endpoint)));
          update_entries st ~now slot;
          log_event st ~ev
            (if st.delta_repeels > deltas_before then "d" else "f"))
  | Stream.Send { gid; bytes } -> (
      st.sends <- st.sends + 1;
      match G.find st.groups ~gid with
      | None -> log_event st ~ev "?"
      | Some slot -> (
          match G.stage st.groups slot with
          | Installed ->
              st.multicast_chunks <- st.multicast_chunks + 1;
              st.multicast_link_bytes <-
                st.multicast_link_bytes
                +. (bytes *. float_of_int (Tree.cost (G.tree st.groups slot)));
              (match st.tcam with
              | Some tc ->
                  List.iter
                    (fun sw -> Tcam.touch tc ~now ~switch:sw ~group:gid ~bytes)
                    (G.switches st.groups slot)
              | None -> ());
              log_event st ~ev "m"
          | Pending | Fallback ->
              (* Unicast fallback: one copy per destination, each
                 riding its whole shortest path. *)
              let source = G.source st.groups slot in
              let dist = G.dist st.groups slot in
              let hops = ref 0 in
              Bitset.iter
                (fun m -> if m <> source then hops := !hops + dist.(m))
                (G.members_bitset st.groups slot);
              st.unicast_chunks <- st.unicast_chunks + 1;
              st.unicast_link_bytes <-
                st.unicast_link_bytes +. (bytes *. float_of_int !hops);
              log_event st ~ev "u"))
  | Stream.Depart { gid } ->
      st.departs <- st.departs + 1;
      (match st.tcam with
      | Some tc -> ignore (Tcam.remove_group tc ~group:gid)
      | None -> ());
      (match G.find st.groups ~gid with
      | Some slot ->
          (* A departed group's pending install must never land
             (SVC004): tombstone its queue entry in O(1). *)
          if G.in_pending st.groups slot then begin
            st.pending_live <- st.pending_live - 1;
            st.pq_tomb <- st.pq_tomb + 1
          end;
          ignore (G.remove st.groups ~gid)
      | None -> ());
      Hashtbl.replace st.departed gid ();
      log_event st ~ev "x");
  maybe_flush st ~now

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n -> sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

(* Shard switches for the TCAM: by pod where the fabric has pods, by
   the node's index within its kind otherwise (leaf-spine spines and
   zoo cores carry pod = -1).  Pure storage partitioning — results are
   identical to a single shard; it only decides which Pool domain owns
   which switch during commuting batched installs. *)
let tcam_shards = 8

let tcam_shard_of graph sw =
  let nd = Graph.node graph sw in
  (if nd.Graph.pod >= 0 then nd.Graph.pod else nd.Graph.idx) mod tcam_shards

let run_body cfg jobs trace fabric ~events stream =
  let pool = Pool.create ?jobs () in
  let graph = Fabric.graph fabric in
  let st =
    {
      cfg;
      fabric;
      graph;
      tcam =
        (if cfg.capacity > 0 then
           Some
             (Tcam.create_sharded ~capacity:cfg.capacity ~policy:cfg.policy
                ~shards:tcam_shards ~shard_of:(tcam_shard_of graph))
         else None);
      pool;
      groups = G.create ~width:(Graph.num_nodes graph) ();
      departed = Hashtbl.create 64;
      digest = digest_create ();
      dists = Hashtbl.create 64;
      trees = Memo.create ~capacity:cfg.cache_capacity ~hash:memo_hash ~equal:memo_equal ();
      plans = Memo.create ~capacity:cfg.cache_capacity ~hash:memo_hash ~equal:memo_equal ();
      bounds = Memo.create ~capacity:cfg.cache_capacity ~hash:memo_hash ~equal:memo_equal ();
      pq = Array.make 64 0;
      pq_len = 0;
      pq_tomb = 0;
      pending_live = 0;
      pending_since = 0.0;
      creates = 0;
      joins = 0;
      leaves = 0;
      sends = 0;
      departs = 0;
      delta_repeels = 0;
      full_repeels = 0;
      splice_fallbacks = 0;
      batches = 0;
      denials = 0;
      compiled_entries = 0;
      multicast_chunks = 0;
      unicast_chunks = 0;
      multicast_link_bytes = 0.0;
      unicast_link_bytes = 0.0;
      max_backlog = 0;
      plan_lat = Array.make 1024 0.0;
      plan_n = 0;
    }
  in
  let t0 = Unix.gettimeofday () in
  let last_now = ref 0.0 in
  for _ = 1 to events do
    let ev = Stream.next stream in
    last_now := ev.Stream.ev_time;
    handle st ev
  done;
  (* Drain the backlog so the final state is quiescent; what remains
     in [o_pending] is the backlog depth at the moment the stream
     stopped. *)
  let final_backlog = st.pending_live in
  if final_backlog > 0 then flush st ~now:!last_now;
  let wall = Unix.gettimeofday () -. t0 in
  let installs, evictions =
    match st.tcam with
    | Some tc -> (Tcam.installs tc, Tcam.evictions tc)
    | None -> (0, 0)
  in
  (* Counters fold into the digest so replays must agree on totals,
     not just per-event decisions. *)
  digest_string st.digest
    (Printf.sprintf "|i%d;e%d;d%d;b%d;ce%d;mc%d;uc%d;mb%.17g;ub%.17g" installs
       evictions st.denials st.batches st.compiled_entries st.multicast_chunks
       st.unicast_chunks st.multicast_link_bytes st.unicast_link_bytes);
  let lat = Array.sub st.plan_lat 0 st.plan_n in
  Array.sort compare lat;
  let cache_hits = Memo.hits st.trees + Memo.hits st.plans + Memo.hits st.bounds in
  let cache_misses =
    Memo.misses st.trees + Memo.misses st.plans + Memo.misses st.bounds
  in
  Trace.plan_cache trace ~hits:cache_hits ~misses:cache_misses;
  let slo =
    {
      events;
      creates = st.creates;
      joins = st.joins;
      leaves = st.leaves;
      sends = st.sends;
      departs = st.departs;
      delta_repeels = st.delta_repeels;
      full_repeels = st.full_repeels;
      splice_fallbacks = st.splice_fallbacks;
      batches = st.batches;
      installs;
      evictions;
      denials = st.denials;
      compiled_entries = st.compiled_entries;
      multicast_chunks = st.multicast_chunks;
      unicast_chunks = st.unicast_chunks;
      multicast_link_bytes = st.multicast_link_bytes;
      unicast_link_bytes = st.unicast_link_bytes;
      max_backlog = st.max_backlog;
      final_backlog;
      cache_hits;
      cache_misses;
      groups_live = G.live st.groups;
      plan_p50_s = percentile lat 0.50;
      plan_p99_s = percentile lat 0.99;
      plan_max_s = (if Array.length lat = 0 then 0.0 else lat.(Array.length lat - 1));
      events_per_sec =
        (if wall > 0.0 then float_of_int events /. wall else 0.0);
      wall_s = wall;
    }
  in
  let pending_gids =
    let acc = ref [] in
    for r = st.pq_len - 1 downto 0 do
      let gid = st.pq.(r) in
      match G.find st.groups ~gid with
      | Some slot when G.in_pending st.groups slot -> acc := gid :: !acc
      | _ -> ()
    done;
    !acc
  in
  {
    o_cfg = cfg;
    o_fabric = fabric;
    o_tcam = st.tcam;
    o_groups = st.groups;
    o_departed = st.departed;
    o_pending = pending_gids;
    o_slo = slo;
    o_fingerprint = digest_hex st.digest;
  }

let run ?(cfg = default_config) ?jobs ?(trace = Trace.null) fabric ~events
    stream =
  if cfg.batch < 1 then invalid_arg "Service.run: batch must be >= 1";
  if cfg.install_delay < 0.0 || not (Float.is_finite cfg.install_delay) then
    invalid_arg "Service.run: install_delay must be finite and >= 0";
  if cfg.cache_capacity < 1 then
    invalid_arg "Service.run: cache_capacity must be >= 1";
  match cfg.gc_space_overhead with
  | None -> run_body cfg jobs trace fabric ~events stream
  | Some o ->
      (* Million-group runs keep a ~100 Mw live heap; the default
         space_overhead (120) re-marks it constantly for little
         reclaim.  The knob trades heap slack for major-GC time during
         the run and never affects decisions (GC timing is invisible
         to the decision log), so fingerprints are unchanged. *)
      if o < 1 then invalid_arg "Service.run: gc_space_overhead must be >= 1";
      let prev = (Gc.get ()).Gc.space_overhead in
      Gc.set { (Gc.get ()) with Gc.space_overhead = o };
      Fun.protect
        ~finally:(fun () ->
          Gc.set { (Gc.get ()) with Gc.space_overhead = prev })
        (fun () -> run_body cfg jobs trace fabric ~events stream)
