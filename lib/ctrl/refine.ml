open Peel_topology
open Peel_sim
open Peel_workload
open Peel_collective
module Plan = Peel.Plan

type scheme = Peel_static | Peel_refined | Ipmc

let all_schemes = [ Peel_static; Peel_refined; Ipmc ]

let scheme_to_string = function
  | Peel_static -> "peel-static"
  | Peel_refined -> "peel-refined"
  | Ipmc -> "ipmc"

let scheme_of_string = function
  | "peel-static" | "static" -> Some Peel_static
  | "peel-refined" | "refined" -> Some Peel_refined
  | "ipmc" -> Some Ipmc
  | _ -> None

let nic_rate = 12.5e9

type report = {
  r_gid : int;
  r_ndests : int;
  r_chunks : int;
  mutable r_static_chunks : int;
  mutable r_refined_chunks : int;
  mutable r_deliveries : int;
  mutable r_overcover_bytes : float;
}

type outcome = {
  run : Runner.outcome;
  reports : report list;
  controller : Controller.t;
  handoffs : Check_ctrl.handoff list;
  fingerprint : string;
}

(* Which switches hold the group's exact entries: the refined tree's
   interior (core/agg/spine) switches; classic IPMC also burns an
   entry per ToR on the tree (the E14 accounting). *)
let entry_switches g tree ~include_tors =
  Peel_steiner.Tree.switch_members g tree
  |> List.filter (fun v ->
         include_tors || (Graph.node g v).Graph.kind <> Graph.Tor)
  |> List.map (fun v ->
         (v, max 1 (List.length (Peel_steiner.Tree.children tree v))))

let launch_group controller scheme engine links fabric cfg
    ~(spec : Spec.collective) ~(group : Spec.group) ~(report : report)
    ~on_complete =
  let g = Fabric.graph fabric in
  let source = spec.Spec.source in
  let dests =
    List.sort_uniq compare (List.filter (fun d -> d <> source) spec.Spec.dests)
  in
  let trace = cfg.Broadcast.trace in
  let flow = spec.Spec.id in
  let chunks = cfg.Broadcast.chunks in
  let chunk_bytes = spec.Spec.bytes /. float_of_int chunks in
  (* Stage one: the budgeted prefix plan.  Its packet trees span the
     over-covered racks too — wasted replication is real link load. *)
  let plan =
    Peel.plan ?budget:(Controller.budget controller) fabric ~source ~dests
  in
  let static_trees =
    List.filter_map
      (fun (p : Plan.packet) ->
        match Plan.packet_tree fabric ~source p with
        | Some t -> Some (t, List.length p.Plan.waste_tors)
        | None -> None)
      plan.Plan.packets
  in
  let waste_racks =
    List.fold_left (fun acc (_, w) -> acc + w) 0 static_trees
  in
  (* Stage two: the exact per-group tree. *)
  let refined_tree =
    match Peel.multicast_tree fabric ~source ~dests with
    | Some t -> t
    | None -> failwith "Refine: destinations unreachable"
  in
  if Peel_check.enabled () then
    Peel_check.assert_valid ~what:"refined group cover"
      (Check_ctrl.check_refined_cover fabric ~group:flow
         ~members:spec.Spec.members ~tree:(Some refined_tree));
  let switches = entry_switches g refined_tree ~include_tors:(scheme = Ipmc) in
  (match scheme with
  | Peel_static -> ()
  | Peel_refined | Ipmc ->
      Controller.admit controller engine ~gid:flow ~at:spec.Spec.arrival
        ~switches
        ~cost:(Peel_steiner.Tree.cost refined_tree);
      Engine.schedule engine group.Spec.g_departure (fun () ->
          Controller.release controller ~gid:flow));
  let ndests = List.length dests in
  let dest_set = Hashtbl.create (ndests * 2) in
  List.iter (fun d -> Hashtbl.replace dest_set d ()) dests;
  let delivered = Hashtbl.create 64 in
  let remaining = ref (chunks * ndests) in
  let last = ref spec.Spec.arrival in
  let deliver node chunk time =
    if Hashtbl.mem dest_set node && not (Hashtbl.mem delivered (node, chunk))
    then begin
      Hashtbl.replace delivered (node, chunk) ();
      Trace.delivery trace ~time ~node ~flow ~chunk;
      report.r_deliveries <- report.r_deliveries + 1;
      decr remaining;
      if time > !last then last := time;
      if !remaining = 0 then on_complete (!last -. spec.Spec.arrival)
    end
  in
  let send_tree tree chunk t =
    Transfer.multicast engine links ~tree ~bytes:chunk_bytes ~start:t
      ~on_delivered:(fun ~node ~time -> deliver node chunk time)
      ()
  in
  let start =
    match scheme with
    | Peel_static | Peel_refined -> spec.Spec.arrival
    | Ipmc ->
        (* No prefix fallback to launch on: IPMC pays the install
           latency up front, on every group. *)
        spec.Spec.arrival
        +. Controller.install_latency controller
             ~nrules:(List.length switches)
  in
  (* Chunks leave back to back; the NIC serializes one copy per tree,
     so the static stage's extra packets stretch the send window. *)
  let rec release c t =
    if c < chunks then
      Engine.schedule engine t (fun () ->
          let refined =
            match scheme with
            | Peel_static -> false
            | Ipmc -> true
            | Peel_refined ->
                Controller.stage controller ~gid:flow = Controller.Refined
          in
          Trace.release trace ~time:t ~flow ~chunk:c ~rate:nic_rate;
          let copies =
            if refined then begin
              report.r_refined_chunks <- report.r_refined_chunks + 1;
              Controller.touch controller ~now:t ~gid:flow ~bytes:chunk_bytes;
              send_tree refined_tree c t;
              1
            end
            else begin
              report.r_static_chunks <- report.r_static_chunks + 1;
              report.r_overcover_bytes <-
                report.r_overcover_bytes
                +. (chunk_bytes *. float_of_int waste_racks);
              List.iter (fun (tree, _) -> send_tree tree c t) static_trees;
              max 1 (List.length static_trees)
            end
          in
          release (c + 1)
            (t +. (float_of_int copies *. chunk_bytes /. nic_rate)))
  in
  release 0 start

let run ?(chunks = 8) ?(cfg = Controller.default_config) ?(trace = Trace.null)
    ?(ecmp = true) fabric scheme groups =
  (* Classic IPMC keeps per-group state on every on-tree switch with no
     architectural bound — E14 is the experiment that prices that.  Give
     it an effectively unbounded table so no eviction masks the CCT
     comparison. *)
  let ctl_cfg =
    match scheme with
    | Ipmc -> { cfg with Controller.capacity = max_int }
    | Peel_static | Peel_refined -> cfg
  in
  let controller = Controller.create ~trace ctl_cfg in
  let by_id = Hashtbl.create 16 in
  List.iter (fun (gr : Spec.group) -> Hashtbl.replace by_id gr.Spec.g_id gr)
    groups;
  let reports = ref [] in
  let collectives = List.map Spec.collective_of_group groups in
  let out =
    Runner.run_custom ~chunks ~ecmp ~trace fabric
      ~launch:(fun engine links _paths cfg' ~spec ~on_complete ->
        if spec.Spec.dests = [] then
          Engine.schedule engine spec.Spec.arrival (fun () -> on_complete 0.0)
        else begin
          let group = Hashtbl.find by_id spec.Spec.id in
          let ndests =
            List.length
              (List.sort_uniq compare
                 (List.filter (fun d -> d <> spec.Spec.source) spec.Spec.dests))
          in
          let report =
            {
              r_gid = spec.Spec.id;
              r_ndests = ndests;
              r_chunks = chunks;
              r_static_chunks = 0;
              r_refined_chunks = 0;
              r_deliveries = 0;
              r_overcover_bytes = 0.0;
            }
          in
          reports := report :: !reports;
          launch_group controller scheme engine links fabric cfg' ~spec ~group
            ~report ~on_complete
        end)
      collectives
  in
  let reports =
    List.sort (fun a b -> compare a.r_gid b.r_gid) (List.rev !reports)
  in
  let handoffs =
    List.map
      (fun r ->
        {
          Check_ctrl.h_gid = r.r_gid;
          h_ndests = r.r_ndests;
          h_chunks = r.r_chunks;
          h_static = r.r_static_chunks;
          h_refined = r.r_refined_chunks;
          h_deliveries = r.r_deliveries;
        })
      reports
  in
  let fingerprint = Check_ctrl.fingerprint out ~handoffs ~controller in
  if Peel_check.enabled () then begin
    Peel_check.assert_valid ~what:"control-plane handoff"
      (Check_ctrl.check_handoff handoffs);
    (match Controller.tcam controller with
    | Some tc ->
        Peel_check.assert_valid ~what:"TCAM budget"
          (Check_ctrl.check_budget tc)
    | None -> ());
    if Trace.level trace = Trace.Full then
      Peel_check.assert_valid ~what:"control-plane trace"
        (Check_ctrl.check_trace trace)
  end;
  { run = out; reports; controller; handoffs; fingerprint }

let total_overcover_bytes o =
  List.fold_left (fun acc r -> acc +. r.r_overcover_bytes) 0.0 o.reports

let static_chunks o =
  List.fold_left (fun acc r -> acc + r.r_static_chunks) 0 o.reports

let refined_chunks o =
  List.fold_left (fun acc r -> acc + r.r_refined_chunks) 0 o.reports
