module Bitset = Peel_util.Bits.Bitset
module Arena = Peel_util.Arena
module Tree = Peel_steiner.Tree

type stage = Pending | Installed | Fallback

let stage_to_string = function
  | Pending -> "pending"
  | Installed -> "installed"
  | Fallback -> "fallback"

(* SoA arena of live group state (in the style of Peel_sim.Soa): every
   per-group field is a column indexed by an Arena slot, member sets
   are fixed-width bitsets over the fabric's node ids, and departed
   slots are recycled through the arena free list with a generation
   bump — a holder of a stale (slot, gen) handle can prove the group it
   knew is gone (SVC004).  Columns grow geometrically in lock-step with
   the arena. *)
type t = {
  width : int; (* bitset universe: fabric node count *)
  arena : Arena.t;
  index : (int, int) Hashtbl.t; (* gid -> slot *)
  mutable gids : int array;
  mutable sources : int array;
  mutable stages : Bytes.t;
  mutable replans : int array;
  mutable in_pending : Bytes.t;
  mutable members : Bitset.t option array;
  mutable trees : Tree.t option array;
  mutable switches : int list array;
  mutable dists : int array array;
}

let create ?(initial = 1024) ~width () =
  let cap = max 1 initial in
  {
    width;
    arena = Arena.create ~initial:cap ();
    index = Hashtbl.create cap;
    gids = Array.make cap (-1);
    sources = Array.make cap (-1);
    stages = Bytes.make cap '\000';
    replans = Array.make cap 0;
    in_pending = Bytes.make cap '\000';
    members = Array.make cap None;
    trees = Array.make cap None;
    switches = Array.make cap [];
    dists = Array.make cap [||];
  }

let width t = t.width
let live t = Arena.live_count t.arena
let capacity t = Array.length t.gids

let ensure t want =
  let cap = Array.length t.gids in
  if want > cap then begin
    let cap' = ref cap in
    while !cap' < want do
      cap' := !cap' * 2
    done;
    let grow_arr a fill =
      let a' = Array.make !cap' fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    let grow_bytes b =
      let b' = Bytes.make !cap' '\000' in
      Bytes.blit b 0 b' 0 cap;
      b'
    in
    t.gids <- grow_arr t.gids (-1);
    t.sources <- grow_arr t.sources (-1);
    t.stages <- grow_bytes t.stages;
    t.replans <- grow_arr t.replans 0;
    t.in_pending <- grow_bytes t.in_pending;
    t.members <- grow_arr t.members None;
    t.trees <- grow_arr t.trees None;
    t.switches <- grow_arr t.switches [];
    t.dists <- grow_arr t.dists [||]
  end

let find t ~gid = Hashtbl.find_opt t.index gid
let mem t ~gid = Hashtbl.mem t.index gid

let stage_code = function Pending -> '\000' | Installed -> '\001' | Fallback -> '\002'

let stage_of_code = function
  | '\000' -> Pending
  | '\001' -> Installed
  | _ -> Fallback

let add t ~gid ~source ~members ~tree ~switches ~dist ~stage =
  if Hashtbl.mem t.index gid then
    invalid_arg "Group_table.add: gid already present";
  let slot, _gen = Arena.alloc t.arena in
  ensure t (slot + 1);
  t.gids.(slot) <- gid;
  t.sources.(slot) <- source;
  Bytes.set t.stages slot (stage_code stage);
  t.replans.(slot) <- 0;
  Bytes.set t.in_pending slot '\000';
  (* Recycle the previous tenant's bitset when the slot comes off the
     free list — clearing is a short memset, allocating is garbage. *)
  let bs =
    match t.members.(slot) with
    | Some bs ->
        Bitset.clear bs;
        bs
    | None ->
        let bs = Bitset.create t.width in
        t.members.(slot) <- Some bs;
        bs
  in
  List.iter (fun m -> Bitset.add bs m) members;
  t.trees.(slot) <- Some tree;
  t.switches.(slot) <- switches;
  t.dists.(slot) <- dist;
  Hashtbl.replace t.index gid slot;
  slot

let remove t ~gid =
  match Hashtbl.find_opt t.index gid with
  | None -> false
  | Some slot ->
      Hashtbl.remove t.index gid;
      t.gids.(slot) <- -1;
      t.trees.(slot) <- None;
      t.switches.(slot) <- [];
      t.dists.(slot) <- [||];
      Arena.free t.arena slot;
      true

(* ---------------- slot accessors ---------------- *)

let gid t slot = t.gids.(slot)
let source t slot = t.sources.(slot)
let stage t slot = stage_of_code (Bytes.get t.stages slot)
let set_stage t slot s = Bytes.set t.stages slot (stage_code s)
let replans t slot = t.replans.(slot)
let bump_replans t slot = t.replans.(slot) <- t.replans.(slot) + 1
let in_pending t slot = Bytes.get t.in_pending slot <> '\000'

let set_in_pending t slot b =
  Bytes.set t.in_pending slot (if b then '\001' else '\000')

let tree t slot =
  match t.trees.(slot) with
  | Some tr -> tr
  | None -> invalid_arg "Group_table.tree: slot not live"

let set_tree t slot tr = t.trees.(slot) <- Some tr
let switches t slot = t.switches.(slot)
let set_switches t slot l = t.switches.(slot) <- l
let dist t slot = t.dists.(slot)

let members_bitset t slot =
  match t.members.(slot) with
  | Some bs -> bs
  | None -> invalid_arg "Group_table.members_bitset: slot never used"

let member_list t slot = Bitset.to_list (members_bitset t slot)
let add_member t slot m = Bitset.add (members_bitset t slot) m
let remove_member t slot m = Bitset.remove (members_bitset t slot) m

let set_members t slot ms =
  let bs = members_bitset t slot in
  Bitset.clear bs;
  List.iter (fun m -> Bitset.add bs m) ms

let generation t slot = Arena.generation t.arena slot
let slot_live t slot = Arena.is_live t.arena slot
let valid t ~slot ~gen = Arena.valid t.arena ~slot ~gen

let iter f t = Arena.iter_live (fun slot -> f slot) t.arena

let fold f t init =
  let acc = ref init in
  iter (fun slot -> acc := f !acc slot) t;
  !acc

let gids_sorted t =
  fold (fun l slot -> t.gids.(slot) :: l) t [] |> List.sort compare
