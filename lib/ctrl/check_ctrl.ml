open Peel_topology
module D = Peel_check.Diagnostic
module T = Peel_sim.Trace

let check_refined_cover fabric ~group ~members ~tree =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let loc = Printf.sprintf "group %d" group in
  let racks =
    List.sort_uniq compare
      (List.map (Fabric.attach_tor fabric) members)
  in
  let entry = Peel.Dataplane.exact_entry fabric ~group ~members in
  (match Peel.Dataplane.verify_exact fabric entry ~members with
  | Ok () -> ()
  | Error msg -> add (D.errorf ~code:"CTRL001" ~loc "%s" msg));
  (match tree with
  | None -> ()
  | Some t ->
      let g = Fabric.graph fabric in
      let tors =
        List.filter
          (fun v -> (Graph.node g v).Graph.kind = Graph.Tor)
          (Peel_steiner.Tree.members t)
      in
      List.iter
        (fun tor ->
          if not (List.mem tor racks) then
            add
              (D.errorf ~code:"CTRL001" ~loc
                 "refined tree touches rack %d, which houses no member" tor))
        tors;
      List.iter
        (fun rack ->
          if not (List.mem rack tors) then
            add
              (D.errorf ~code:"CTRL001" ~loc
                 "refined tree misses member rack %d" rack))
        racks);
  List.rev !ds

let check_budget tcam =
  let cap = Tcam.capacity tcam in
  let ds =
    List.filter_map
      (fun (sw, used) ->
        if used > cap then
          Some
            (D.errorf ~code:"CTRL002"
               ~loc:(Printf.sprintf "switch %d" sw)
               "%d entries exceed the TCAM budget of %d" used cap)
        else None)
      (Tcam.occupancy tcam)
  in
  if Tcam.max_used tcam > cap then
    ds
    @ [
        D.errorf ~code:"CTRL002" ~loc:"tcam"
          "high-water occupancy %d exceeded the budget of %d"
          (Tcam.max_used tcam) cap;
      ]
  else ds

type handoff = {
  h_gid : int;
  h_ndests : int;
  h_chunks : int;
  h_static : int;
  h_refined : int;
  h_deliveries : int;
}

let check_handoff handoffs =
  List.concat_map
    (fun h ->
      let loc = Printf.sprintf "group %d" h.h_gid in
      let ds = ref [] in
      let add d = ds := d :: !ds in
      if h.h_static + h.h_refined <> h.h_chunks then
        add
          (D.errorf ~code:"CTRL003" ~loc
             "%d static + %d refined chunks <> %d released: the stage \
              switch lost or duplicated a chunk"
             h.h_static h.h_refined h.h_chunks);
      if h.h_deliveries <> h.h_chunks * h.h_ndests then
        add
          (D.errorf ~code:"CTRL003" ~loc
             "%d deliveries, conservation needs %d (%d chunks x %d \
              destinations)"
             h.h_deliveries (h.h_chunks * h.h_ndests) h.h_chunks h.h_ndests);
      List.rev !ds)
    handoffs

(* A behavioural digest of one run: CCTs, wire totals and control-plane
   activity.  Two runs with the same seed and group schedule must
   produce byte-identical digests (CTRL004). *)
let fingerprint (out : Peel_collective.Runner.outcome) ~handoffs ~controller =
  let b = Buffer.create 256 in
  let c = T.counters out.Peel_collective.Runner.trace in
  List.iter
    (fun cct -> Buffer.add_string b (Printf.sprintf "cct=%.17g;" cct))
    out.Peel_collective.Runner.ccts;
  Buffer.add_string b
    (Printf.sprintf "makespan=%.17g;bytes=%.17g;deliveries=%d;releases=%d;"
       out.Peel_collective.Runner.makespan c.T.bytes_reserved c.T.deliveries
       c.T.releases);
  Buffer.add_string b
    (Printf.sprintf "rule_installs=%d;refines=%d;evictions=%d;"
       c.T.rule_installs c.T.refines c.T.evictions);
  Buffer.add_string b
    (Printf.sprintf "ctl_installs=%d;ctl_evictions=%d;"
       (Controller.installs controller)
       (Controller.evictions controller));
  List.iter
    (fun h ->
      Buffer.add_string b
        (Printf.sprintf "g%d=%d/%d/%d/%d;" h.h_gid h.h_static h.h_refined
           h.h_chunks h.h_deliveries))
    handoffs;
  Buffer.contents b

let check_replay ~first ~second =
  if String.equal first second then []
  else
    [
      D.errorf ~code:"CTRL004" ~loc:"replay"
        "two runs with the same seed and group schedule diverged:\n  %s\n  %s"
        first second;
    ]

let check_trace trace =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let installed = Hashtbl.create 16 in
  Array.iteri
    (fun i (ev : T.event) ->
      let loc = Printf.sprintf "event %d" i in
      match ev.T.kind with
      | T.Rule_install { group; _ } -> Hashtbl.replace installed group ()
      | T.Refine { group; _ } ->
          if not (Hashtbl.mem installed group) then
            add
              (D.errorf ~code:"CTRL005" ~loc
                 "group %d refined before any rule install landed" group)
      | T.Evict { group; _ } ->
          if not (Hashtbl.mem installed group) then
            add
              (D.errorf ~code:"CTRL005" ~loc
                 "group %d evicted without ever being installed" group)
      | _ -> ())
    (T.events trace);
  List.rev !ds
