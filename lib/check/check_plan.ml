open Peel_topology
open Peel_prefix
module Plan = Peel.Plan
module Dataplane = Peel.Dataplane
module Bits = Peel_util.Bits
module D = Diagnostic

let tor_id_bits = Plan.tor_id_bits
let pod_id_bits = Plan.pod_id_bits
let rule_budget fabric = (2 * Bits.pow2 (tor_id_bits fabric)) - 1

let ploc i = Printf.sprintf "packet %d" i

(* PLAN008 — prefixes must live inside the fabric's id spaces. *)
let check_prefixes ~m ~mp i (p : Plan.packet) =
  let bad field space prefix =
    match Cover.validate ~m:space prefix with
    | () -> []
    | exception Invalid_argument msg ->
        [ D.errorf ~code:"PLAN008" ~loc:(ploc i) "%s prefix invalid: %s" field msg ]
  in
  bad "ToR" m p.Plan.tor_prefix
  @ match p.Plan.pod_prefix with None -> [] | Some pp -> bad "pod" mp pp

(* PLAN001/2/3 — every destination in exactly one packet, nothing else. *)
let check_coverage (plan : Plan.t) =
  let seen = Hashtbl.create 64 in
  let ds = ref [] in
  List.iteri
    (fun i (p : Plan.packet) ->
      List.iter
        (fun e ->
          match Hashtbl.find_opt seen e with
          | Some j ->
              ds :=
                D.errorf ~code:"PLAN001" ~loc:(ploc i)
                  "endpoint %d already delivered by packet %d" e j
                :: !ds
          | None ->
              Hashtbl.replace seen e i;
              if not (List.mem e plan.Plan.dests) then
                ds :=
                  D.errorf ~code:"PLAN003" ~loc:(ploc i)
                    "endpoint %d is not a destination of the plan" e
                  :: !ds)
        p.Plan.endpoints)
    plan.Plan.packets;
  List.iter
    (fun d ->
      if not (Hashtbl.mem seen d) then
        ds :=
          D.errorf ~code:"PLAN002" ~loc:(Printf.sprintf "dest %d" d)
            "destination covered by no packet"
          :: !ds)
    plan.Plan.dests;
  List.rev !ds

(* PLAN004 — re-derive each packet's reach from its prefixes and
   compare against what the packet records. *)
let check_packet_reach fabric ~m (plan : Plan.t) i (p : Plan.packet) =
  let member_tors =
    List.map (fun d -> Fabric.attach_tor fabric d) plan.Plan.dests
    |> List.sort_uniq compare
  in
  let members_of_tor tor =
    List.filter (fun d -> Fabric.attach_tor fabric d = tor) plan.Plan.dests
  in
  let covered_ids = Cover.expand ~m p.Plan.tor_prefix in
  let tors, waste, endpoints =
    List.fold_left
      (fun (tors, waste, eps) pod ->
        let arr = Fabric.tors_of_pod fabric pod in
        List.fold_left
          (fun (tors, waste, eps) idx ->
            if idx >= Array.length arr then (tors, waste, eps)
            else begin
              let tor = arr.(idx) in
              if List.mem tor member_tors then
                (tor :: tors, waste, List.rev_append (members_of_tor tor) eps)
              else (tor :: tors, tor :: waste, eps)
            end)
          (tors, waste, eps) covered_ids)
      ([], [], []) p.Plan.pods
  in
  let expect name got want =
    if List.sort compare want <> got then
      [
        D.errorf ~code:"PLAN004" ~loc:(ploc i)
          "%s mismatch: packet records %d, prefixes reach %d" name
          (List.length got) (List.length want);
      ]
    else []
  in
  expect "rack set" p.Plan.tors tors
  @ expect "waste racks" p.Plan.waste_tors waste
  @ expect "endpoints" p.Plan.endpoints endpoints

(* PLAN005 — no (pod, ToR id) may be covered twice across packets. *)
let check_disjoint ~m (plan : Plan.t) =
  let covered = Hashtbl.create 64 in
  let ds = ref [] in
  List.iteri
    (fun i (p : Plan.packet) ->
      List.iter
        (fun pod ->
          List.iter
            (fun idx ->
              match Hashtbl.find_opt covered (pod, idx) with
              | Some j ->
                  ds :=
                    D.errorf ~code:"PLAN005" ~loc:(ploc i)
                      "pod %d ToR id %d already covered by packet %d (over-covering prefix)"
                      pod idx j
                    :: !ds
              | None -> Hashtbl.replace covered (pod, idx) i)
            (Cover.expand ~m p.Plan.tor_prefix))
        p.Plan.pods)
    plan.Plan.packets;
  List.rev !ds

let check_header fabric (plan : Plan.t) =
  let expected = Plan.header_bytes_for fabric in
  (if plan.Plan.header_bytes <> expected then
     [
       D.errorf ~code:"PLAN006" ~loc:"header"
         "header_bytes = %d, but this fabric needs %d" plan.Plan.header_bytes
         expected;
     ]
   else [])
  @
  if plan.Plan.header_bytes > 8 then
    [
      D.errorf ~code:"PLAN007" ~loc:"header"
        "header is %d B, over the paper's < 8 B budget" plan.Plan.header_bytes;
    ]
  else []

let check_dataplane fabric (plan : Plan.t) =
  match Dataplane.verify fabric plan with
  | Ok () -> []
  | Error msg -> [ D.errorf ~code:"PLAN009" ~loc:"dataplane" "%s" msg ]
  | exception Invalid_argument msg ->
      [ D.errorf ~code:"PLAN009" ~loc:"dataplane" "plan not executable: %s" msg ]

let check fabric (plan : Plan.t) =
  let m = tor_id_bits fabric and mp = pod_id_bits fabric in
  let prefix_ds =
    List.concat
      (List.mapi (fun i p -> check_prefixes ~m ~mp i p) plan.Plan.packets)
  in
  if prefix_ds <> [] then
    (* Invalid prefixes poison every downstream expansion — stop here. *)
    prefix_ds @ check_coverage plan @ check_header fabric plan
  else
    check_coverage plan
    @ List.concat
        (List.mapi (fun i p -> check_packet_reach fabric ~m plan i p) plan.Plan.packets)
    @ check_disjoint ~m plan
    @ check_header fabric plan
    @ check_dataplane fabric plan

let check_rules fabric table =
  let m = tor_id_bits fabric in
  let tm = Rules.id_bits table in
  let width_ds =
    if tm <> m then
      [
        D.errorf ~code:"RULE003" ~loc:"table"
          "table built for %d-bit ids, fabric uses %d bits" tm m;
      ]
    else []
  in
  let budget = rule_budget fabric in
  let size_ds =
    if Rules.size table > budget then
      [
        D.errorf ~code:"RULE001" ~loc:"table"
          "%d rules installed, over the k-1 = %d static budget"
          (Rules.size table) budget;
      ]
    else []
  in
  let port_ds =
    List.concat_map
      (fun (r : Rules.rule) ->
        match Cover.expand ~m:tm r.Rules.prefix with
        | expected when expected <> r.Rules.ports ->
            [
              D.errorf ~code:"RULE002"
                ~loc:(Printf.sprintf "rule %s" (Cover.to_string ~m:tm r.Rules.prefix))
                "port set disagrees with the prefix block";
            ]
        | _ -> []
        | exception Invalid_argument _ ->
            [
              D.errorf ~code:"RULE002" ~loc:"rule"
                "rule prefix outside the table's own id space";
            ])
      (Rules.rules table)
  in
  width_ds @ size_ds @ port_ds
