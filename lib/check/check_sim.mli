(** Static checks over simulator inputs and outputs.

    Codes:
    - [SIM001] a fabric link has non-positive bandwidth or negative
      latency
    - [SIM002] a congestion-control parameter is out of its sane range
      (non-positive line rate or guard window, negative ECN threshold;
      a guard window far above the paper's 50 µs is a warning)
    - [SIM003] a collective completion time is missing, NaN, or
      negative — some chunk was lost without recovery
    - [SIM004] a link reports utilization above 1 (busy longer than the
      observation horizon)
    - [SIM005] chunk conservation violated: the number of delivered
      chunks differs from [chunks * receivers]
    - [SIM006] a recorded trace is structurally broken: timestamps run
      backwards or are invalid, a reserve event carries non-positive
      bytes or a negative delay, or (at [Full] level) the event log
      disagrees with the aggregate counters
    - [SIM007] a link was reserved while its duplex pair was down,
      replaying the trace's [Link_fail]/[Link_recover] events — since
      delivery requires the final hop's reservation, this also enforces
      that no chunk is delivered through a failed link
    - [SIM008] shard-boundary causality in the conservative parallel
      engine: within each barrier window every executed event precedes
      the window bound, every cross-shard event received at the barrier
      lands at or past it, bounds strictly advance, and all shards
      audit the same number of epochs *)

open Peel_topology

val check_fabric : Fabric.t -> Diagnostic.t list

val check_cc_params :
  ?guard:float option ->
  ecn_delay:float ->
  line_rate:float ->
  unit ->
  Diagnostic.t list
(** [guard] defaults to the paper's 50 µs window (like
    {!Peel_sim.Dcqcn.create}); pass [Some None] for guard-less DCQCN. *)

val check_outcome :
  ?expected:int ->
  ccts:float list ->
  makespan:float ->
  Peel_sim.Telemetry.t ->
  Diagnostic.t list
(** Post-run conservation: [expected] collectives all completed with
    finite non-negative CCTs no later than [makespan], and no link was
    busy for more than the whole horizon. *)

val check_trace :
  ?expected_deliveries:int -> Peel_sim.Trace.t -> Diagnostic.t list
(** Structural lint of a recorded trace: timestamps non-decreasing and
    finite, reserve events well-formed, and — at [Full] level — the
    event log consistent with the counters (reserve events plus
    sampling skips equal reservations; delivery, release, link-fail,
    link-recover and replan events equal their counters).  Replays
    fault events to flag any reservation on a down duplex pair
    ([SIM007]).  When [expected_deliveries] is given, traced deliveries
    must equal it (chunk conservation, [SIM005]). *)

val check_shard : Peel_sim.Shard.result -> Diagnostic.t list
(** SIM008 audit of a sharded run.  Requires the run to have collected
    evidence ([Peel_sim.Shard.run ~audit:true] /
    [Peel_collective.Par.run ~audit:true]); with no audit records the
    check passes vacuously.  Verifies, per shard and window: no event
    executed at or past the window bound, no cross-shard event received
    before it, bounds strictly increasing, windows sequential, and
    barrier epoch counts identical across shards. *)

val check_chunk_conservation :
  chunks:int -> receivers:int -> delivered:int -> Diagnostic.t list
(** Every receiver must get every chunk exactly once:
    [delivered = chunks * receivers]. *)
