(** Static checks over PEEL send plans ({!Peel.Plan}) and static rule
    tables ({!Peel_prefix.Rules}).

    Plan codes:
    - [PLAN001] an endpoint is delivered by more than one packet
    - [PLAN002] a destination is covered by no packet
    - [PLAN003] a packet delivers to an endpoint outside the group
    - [PLAN004] a packet's recorded racks/waste/endpoints disagree with
      what its prefixes actually cover ([Cover.expand] minus targets)
    - [PLAN005] two packets cover the same (pod, ToR id) — prefix
      covers are not disjoint
    - [PLAN006] [header_bytes] disagrees with {!Peel.Plan.header_bytes_for}
    - [PLAN007] header exceeds the paper's < 8 B budget
    - [PLAN008] a packet prefix lies outside the fabric's identifier
      space (no static rule can match it)
    - [PLAN009] the emulated data plane ({!Peel.Dataplane}) does not
      reach exactly the racks the plan claims

    Rule-table codes:
    - [RULE001] more rules than the [k - 1] static budget per
      aggregation switch
    - [RULE002] a rule's port set disagrees with its prefix block
    - [RULE003] the table was built for a different identifier-space
      width than the fabric's *)

open Peel_topology

val rule_budget : Fabric.t -> int
(** [k - 1]: the static TCAM budget per aggregation switch,
    [2^(m+1) - 1] over the fabric's ToR-id space. *)

val check : Fabric.t -> Peel.Plan.t -> Diagnostic.t list

val check_rules : Fabric.t -> Peel_prefix.Rules.table -> Diagnostic.t list
