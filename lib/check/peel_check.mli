(** Peel_check — static invariant checking over PEEL's artifacts.

    The paper's correctness claims are structural: minimum-cost trees
    in a symmetric Clos (Lemma 2.1), the [O(min(F,|D|))] layer-peeling
    bound under asymmetry (Theorem 2.5), exact power-of-two prefix
    covers with < 8 B headers and [k - 1] static rules per aggregation
    switch.  This library verifies those invariants on the values the
    code actually produces — trees, send plans, rule tables, schedules,
    simulator inputs and outputs — without executing a simulation.

    Every checker returns a list of {!Diagnostic.t}; an empty list (or
    one with no [Error] entries) means the artifact is certified.
    Diagnostic codes are stable and documented in DESIGN.md.

    Runtime wiring: set the [PEEL_CHECK=1] environment variable and the
    collective runner and experiment harness call {!assert_valid} on
    what they are about to simulate — debug-mode assertions with zero
    cost when the flag is off. *)

module Diagnostic = Diagnostic
module Check_tree = Check_tree
module Check_plan = Check_plan
module Check_sim = Check_sim
module Check_collective = Check_collective
module Check_topology = Check_topology

val env_var : string
(** ["PEEL_CHECK"]. *)

val enabled : unit -> bool
(** True when [PEEL_CHECK] is set to 1/true/yes/on. *)

val assert_valid : what:string -> Diagnostic.t list -> unit
(** Raises [Failure] listing every [Error]-severity diagnostic;
    warnings and infos never raise. *)

val check_scenario :
  ?budget:int ->
  Peel_topology.Fabric.t ->
  source:int ->
  dests:int list ->
  Diagnostic.t list
(** The full lint battery for one multicast scenario: fabric links,
    the PEEL tree (with the Theorem 2.5 cost bound), the prefix send
    plan, the static rule table, and the ring / binary-tree baseline
    schedules for the same group.  On zoo fabrics the TOPO battery
    ({!Check_topology.check_scenario}) runs as well. *)
