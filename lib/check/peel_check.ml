module Diagnostic = Diagnostic
module Check_tree = Check_tree
module Check_plan = Check_plan
module Check_sim = Check_sim
module Check_collective = Check_collective
module Check_topology = Check_topology
module Fabric = Peel_topology.Fabric

let env_var = "PEEL_CHECK"

let enabled () =
  match Sys.getenv_opt env_var with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

let assert_valid ~what ds =
  match Diagnostic.errors ds with
  | [] -> ()
  | errs ->
      failwith
        (Printf.sprintf "Peel_check: %s failed %d invariant check(s):\n%s" what
           (List.length errs)
           (String.concat "\n" (List.map Diagnostic.to_string errs)))

let check_scenario ?budget fabric ~source ~dests =
  let dests = List.sort_uniq compare (List.filter (fun d -> d <> source) dests) in
  let g = Fabric.graph fabric in
  let fabric_ds = Check_sim.check_fabric fabric in
  let tree_ds =
    match Peel.multicast_tree fabric ~source ~dests with
    | None ->
        [
          Diagnostic.errorf ~code:"TREE003" ~loc:"tree"
            "no multicast tree: some destination is unreachable";
        ]
    | Some tree -> Check_tree.check ~fabric g tree ~source ~dests
  in
  let plan_ds = Check_plan.check fabric (Peel.plan ?budget fabric ~source ~dests) in
  let rules_ds = Check_plan.check_rules fabric (Peel.state_table fabric) in
  let members = List.sort_uniq compare (source :: dests) in
  let sched_ds =
    if List.length members < 2 then []
    else
      Check_collective.check_ring
        (Peel_baselines.Ring.schedule fabric ~source ~members)
        ~source ~members
      @ Check_collective.check_btree
          (Peel_baselines.Binary_tree.schedule fabric ~source ~members)
          ~source ~members
  in
  let topo_ds =
    match fabric with
    | Fabric.Zo z -> Check_topology.check_scenario z ~source ~dests
    | Fabric.Ft _ | Fabric.Ls _ | Fabric.Rl _ -> []
  in
  Diagnostic.sort (fabric_ds @ tree_ds @ plan_ds @ rules_ds @ sched_ds @ topo_ds)
