open Peel_topology
module D = Diagnostic

let check_fabric fabric =
  let g = Fabric.graph fabric in
  Array.fold_left
    (fun acc (l : Graph.link) ->
      let loc = Printf.sprintf "link %d (%d->%d)" l.Graph.link_id l.Graph.src l.Graph.dst in
      let acc =
        if l.Graph.bandwidth <= 0.0 || not (Float.is_finite l.Graph.bandwidth) then
          D.errorf ~code:"SIM001" ~loc "bandwidth %g must be positive and finite"
            l.Graph.bandwidth
          :: acc
        else acc
      in
      if l.Graph.latency < 0.0 || not (Float.is_finite l.Graph.latency) then
        D.errorf ~code:"SIM001" ~loc "latency %g must be non-negative and finite"
          l.Graph.latency
        :: acc
      else acc)
    [] (Graph.links g)
  |> List.rev

let check_cc_params ?(guard = Some Peel_sim.Dcqcn.default_guard) ~ecn_delay
    ~line_rate () =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  if line_rate <= 0.0 || not (Float.is_finite line_rate) then
    add (D.errorf ~code:"SIM002" ~loc:"dcqcn" "line rate %g must be positive" line_rate);
  (match guard with
  | None -> ()
  | Some g ->
      if g <= 0.0 || not (Float.is_finite g) then
        add (D.errorf ~code:"SIM002" ~loc:"dcqcn" "guard window %g must be positive" g)
      else if g > 1e-2 then
        add
          (D.warningf ~code:"SIM002" ~loc:"dcqcn"
             "guard window %g s is far above the paper's 50 us" g));
  if ecn_delay < 0.0 || Float.is_nan ecn_delay then
    add
      (D.errorf ~code:"SIM002" ~loc:"dcqcn" "ECN marking threshold %g must be >= 0"
         ecn_delay);
  List.rev !ds

let check_outcome ?expected ~ccts ~makespan telemetry =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  (match expected with
  | Some n when n <> List.length ccts ->
      add
        (D.errorf ~code:"SIM003" ~loc:"run" "%d collectives expected, %d completed" n
           (List.length ccts))
  | _ -> ());
  List.iteri
    (fun i cct ->
      let loc = Printf.sprintf "collective %d" i in
      if Float.is_nan cct then
        add (D.errorf ~code:"SIM003" ~loc "never completed (CCT is NaN)")
      else if cct < 0.0 || not (Float.is_finite cct) then
        add (D.errorf ~code:"SIM003" ~loc "invalid CCT %g" cct)
      else if cct > makespan +. 1e-12 then
        add
          (D.errorf ~code:"SIM003" ~loc "CCT %g exceeds the run makespan %g" cct
             makespan))
    ccts;
  let umax = Peel_sim.Telemetry.max_utilization telemetry in
  if umax > 1.0 +. 1e-9 then
    add
      (D.errorf ~code:"SIM004" ~loc:"telemetry"
         "a link reports utilization %.4f > 1: busy beyond the horizon" umax);
  List.rev !ds

let check_chunk_conservation ~chunks ~receivers ~delivered =
  let want = chunks * receivers in
  if delivered <> want then
    [
      D.errorf ~code:"SIM005" ~loc:"tracker"
        "%d chunk deliveries recorded, conservation needs %d (%d chunks x %d receivers)"
        delivered want chunks receivers;
    ]
  else []
