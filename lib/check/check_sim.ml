open Peel_topology
module D = Diagnostic

let check_fabric fabric =
  let g = Fabric.graph fabric in
  Array.fold_left
    (fun acc (l : Graph.link) ->
      let loc = Printf.sprintf "link %d (%d->%d)" l.Graph.link_id l.Graph.src l.Graph.dst in
      let acc =
        if l.Graph.bandwidth <= 0.0 || not (Float.is_finite l.Graph.bandwidth) then
          D.errorf ~code:"SIM001" ~loc "bandwidth %g must be positive and finite"
            l.Graph.bandwidth
          :: acc
        else acc
      in
      if l.Graph.latency < 0.0 || not (Float.is_finite l.Graph.latency) then
        D.errorf ~code:"SIM001" ~loc "latency %g must be non-negative and finite"
          l.Graph.latency
        :: acc
      else acc)
    [] (Graph.links g)
  |> List.rev

let check_cc_params ?(guard = Some Peel_sim.Dcqcn.default_guard) ~ecn_delay
    ~line_rate () =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  if line_rate <= 0.0 || not (Float.is_finite line_rate) then
    add (D.errorf ~code:"SIM002" ~loc:"dcqcn" "line rate %g must be positive" line_rate);
  (match guard with
  | None -> ()
  | Some g ->
      if g <= 0.0 || not (Float.is_finite g) then
        add (D.errorf ~code:"SIM002" ~loc:"dcqcn" "guard window %g must be positive" g)
      else if g > 1e-2 then
        add
          (D.warningf ~code:"SIM002" ~loc:"dcqcn"
             "guard window %g s is far above the paper's 50 us" g));
  if ecn_delay < 0.0 || Float.is_nan ecn_delay then
    add
      (D.errorf ~code:"SIM002" ~loc:"dcqcn" "ECN marking threshold %g must be >= 0"
         ecn_delay);
  List.rev !ds

let check_outcome ?expected ~ccts ~makespan telemetry =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  (match expected with
  | Some n when n <> List.length ccts ->
      add
        (D.errorf ~code:"SIM003" ~loc:"run" "%d collectives expected, %d completed" n
           (List.length ccts))
  | _ -> ());
  List.iteri
    (fun i cct ->
      let loc = Printf.sprintf "collective %d" i in
      if Float.is_nan cct then
        add (D.errorf ~code:"SIM003" ~loc "never completed (CCT is NaN)")
      else if cct < 0.0 || not (Float.is_finite cct) then
        add (D.errorf ~code:"SIM003" ~loc "invalid CCT %g" cct)
      else if cct > makespan +. 1e-12 then
        add
          (D.errorf ~code:"SIM003" ~loc "CCT %g exceeds the run makespan %g" cct
             makespan))
    ccts;
  let umax = Peel_sim.Telemetry.max_utilization telemetry in
  if umax > 1.0 +. 1e-9 then
    add
      (D.errorf ~code:"SIM004" ~loc:"telemetry"
         "a link reports utilization %.4f > 1: busy beyond the horizon" umax);
  List.rev !ds

let check_trace ?expected_deliveries trace =
  let module T = Peel_sim.Trace in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let c = T.counters trace in
  (match expected_deliveries with
  | Some want when c.T.deliveries <> want ->
      add
        (D.errorf ~code:"SIM005" ~loc:"trace"
           "%d chunk deliveries traced, conservation needs %d" c.T.deliveries
           want)
  | _ -> ());
  let evs = T.events trace in
  let last = ref neg_infinity in
  let counts = Hashtbl.create 8 in
  let bump k = Hashtbl.replace counts k (1 + Option.value (Hashtbl.find_opt counts k) ~default:0) in
  (* Duplex pairs currently down, replayed from the fault events.  A
     reservation on a down pair means a chunk was pushed through a dead
     link — and since delivery needs the final hop's reservation, this
     also enforces "no delivery crosses a down link". *)
  let down = Hashtbl.create 8 in
  Array.iteri
    (fun i (ev : T.event) ->
      let loc = Printf.sprintf "event %d" i in
      if Float.is_nan ev.T.time || ev.T.time < 0.0 then
        add (D.errorf ~code:"SIM006" ~loc "invalid timestamp %g" ev.T.time)
      else if ev.T.time < !last then
        add
          (D.errorf ~code:"SIM006" ~loc
             "timestamp %g runs backwards (previous event at %g)" ev.T.time
             !last);
      if ev.T.time > !last then last := ev.T.time;
      (match ev.T.kind with
      | T.Reserve { bytes; queue_delay; backlog; link } ->
          bump `Reserve;
          if bytes <= 0.0 || queue_delay < 0.0 || backlog < 0.0 || link < 0 then
            add
              (D.errorf ~code:"SIM006" ~loc
                 "malformed reserve event (link %d, %g bytes, %g queue delay, %g backlog)"
                 link bytes queue_delay backlog);
          if Hashtbl.mem down (link land lnot 1) then
            add
              (D.errorf ~code:"SIM007" ~loc
                 "link %d reserved while its duplex pair is down" link)
      | T.Delivery _ -> bump `Delivery
      | T.Release _ -> bump `Release
      | T.Link_fail { link } ->
          bump `Link_fail;
          Hashtbl.replace down (link land lnot 1) ()
      | T.Link_recover { link } ->
          bump `Link_recover;
          Hashtbl.remove down (link land lnot 1)
      | T.Replan _ -> bump `Replan
      | T.Rule_install { group; switch; rules } ->
          bump `Rule_install;
          if group < 0 || switch < 0 || rules < 1 then
            add
              (D.errorf ~code:"SIM006" ~loc
                 "malformed rule-install event (group %d, switch %d, %d rules)"
                 group switch rules)
      | T.Refine { group; cost } ->
          bump `Refine;
          if group < 0 || cost < 1 then
            add
              (D.errorf ~code:"SIM006" ~loc
                 "malformed refine event (group %d, cost %d)" group cost)
      | T.Evict { group; switch } ->
          bump `Evict;
          if group < 0 || switch < 0 then
            add
              (D.errorf ~code:"SIM006" ~loc
                 "malformed evict event (group %d, switch %d)" group switch)
      | _ -> ()))
    evs;
  (* At Full verbosity the event log and the counters must agree —
     modulo the reserve-sampling knob, whose skips are themselves
     counted. *)
  if T.level trace = T.Full then begin
    let n k = Option.value (Hashtbl.find_opt counts k) ~default:0 in
    if n `Reserve + T.sampled_out trace <> c.T.reservations then
      add
        (D.errorf ~code:"SIM006" ~loc:"trace"
           "%d reserve events + %d sampled out <> %d reservations counted"
           (n `Reserve) (T.sampled_out trace) c.T.reservations);
    if n `Delivery <> c.T.deliveries then
      add
        (D.errorf ~code:"SIM006" ~loc:"trace"
           "%d delivery events <> %d deliveries counted" (n `Delivery)
           c.T.deliveries);
    if n `Release <> c.T.releases then
      add
        (D.errorf ~code:"SIM006" ~loc:"trace"
           "%d release events <> %d releases counted" (n `Release) c.T.releases);
    if n `Link_fail <> c.T.link_fails then
      add
        (D.errorf ~code:"SIM006" ~loc:"trace"
           "%d link-fail events <> %d link failures counted" (n `Link_fail)
           c.T.link_fails);
    if n `Link_recover <> c.T.link_recovers then
      add
        (D.errorf ~code:"SIM006" ~loc:"trace"
           "%d link-recover events <> %d link recoveries counted"
           (n `Link_recover) c.T.link_recovers);
    if n `Replan <> c.T.replans then
      add
        (D.errorf ~code:"SIM006" ~loc:"trace"
           "%d replan events <> %d replans counted" (n `Replan) c.T.replans);
    if n `Rule_install <> c.T.rule_installs then
      add
        (D.errorf ~code:"SIM006" ~loc:"trace"
           "%d rule-install events <> %d rule installs counted"
           (n `Rule_install) c.T.rule_installs);
    if n `Refine <> c.T.refines then
      add
        (D.errorf ~code:"SIM006" ~loc:"trace"
           "%d refine events <> %d refines counted" (n `Refine) c.T.refines);
    if n `Evict <> c.T.evictions then
      add
        (D.errorf ~code:"SIM006" ~loc:"trace"
           "%d evict events <> %d evictions counted" (n `Evict) c.T.evictions)
  end;
  List.rev !ds

let check_shard (r : Peel_sim.Shard.result) =
  let module S = Peel_sim.Shard in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let records = r.S.r_audit in
  if Array.length records > 0 then begin
    let nshards =
      1 + Array.fold_left (fun acc a -> max acc a.S.a_shard) 0 records
    in
    let counts = Array.make nshards 0 in
    let last_window = Array.make nshards (-1) in
    let last_bound = Array.make nshards neg_infinity in
    Array.iter
      (fun (a : S.audit_record) ->
        let loc = Printf.sprintf "shard %d window %d" a.S.a_shard a.S.a_window in
        counts.(a.S.a_shard) <- counts.(a.S.a_shard) + 1;
        (* Every event executed inside a window must precede its bound:
           a popped timestamp at or past the bound means the shard ran
           ahead of what the lookahead guarantees other shards cannot
           still influence. *)
        if Float.is_finite a.S.a_max_exec && a.S.a_max_exec >= a.S.a_bound then
          add
            (D.errorf ~code:"SIM008" ~loc
               "executed an event at %.17g, at or past the window bound %.17g"
               a.S.a_max_exec a.S.a_bound);
        (* Every event received at the barrier must land at or past the
           bound — an earlier arrival would have belonged inside the
           window just executed (causality violated). *)
        if a.S.a_min_in < a.S.a_bound then
          add
            (D.errorf ~code:"SIM008" ~loc
               "received a cross-shard event at %.17g, before the window bound %.17g"
               a.S.a_min_in a.S.a_bound);
        (* Windows advance in order with strictly growing bounds (the
           global window minimum strictly increases per epoch). *)
        if a.S.a_window <> last_window.(a.S.a_shard) + 1 then
          add
            (D.errorf ~code:"SIM008" ~loc "window follows window %d (not in sequence)"
               last_window.(a.S.a_shard));
        if
          Float.is_finite last_bound.(a.S.a_shard)
          && a.S.a_bound <= last_bound.(a.S.a_shard)
        then
          add
            (D.errorf ~code:"SIM008" ~loc
               "window bound %.17g did not advance past the previous bound %.17g"
               a.S.a_bound
               last_bound.(a.S.a_shard));
        last_window.(a.S.a_shard) <- a.S.a_window;
        last_bound.(a.S.a_shard) <- a.S.a_bound)
      records;
    (* Barrier alignment: every shard sees the same number of epochs. *)
    Array.iteri
      (fun s c ->
        if c <> counts.(0) then
          add
            (D.errorf ~code:"SIM008" ~loc:(Printf.sprintf "shard %d" s)
               "%d windows audited but shard 0 audited %d (barrier epochs diverged)"
               c counts.(0)))
      counts;
    (* Event conservation: every executed event belongs to exactly one
       audited window. *)
    let audited =
      Array.fold_left (fun acc a -> acc + a.S.a_events) 0 records
    in
    if audited <> r.S.r_events then
      add
        (D.errorf ~code:"SIM008" ~loc:"run"
           "%d events audited across windows but %d executed" audited
           r.S.r_events)
  end;
  List.rev !ds

let check_chunk_conservation ~chunks ~receivers ~delivered =
  let want = chunks * receivers in
  if delivered <> want then
    [
      D.errorf ~code:"SIM005" ~loc:"tracker"
        "%d chunk deliveries recorded, conservation needs %d (%d chunks x %d receivers)"
        delivered want chunks receivers;
    ]
  else []
