(** Topology-zoo invariant checking (TOPO00x).

    The zoo generators ({!Peel_topology.Zoo}) emit fabrics with no
    symmetric-Clos structure to lean on, so their correctness story is
    different: the layering annotation must be well formed, the
    class-specific degree/size invariants must hold, general-peel trees
    must descend monotonically through the BFS layers, and the greedy's
    cost must sit between the exact Steiner optimum and the
    Theorem 2.5 envelope measured {e against that optimum} rather than
    against the closed-form Clos bound.

    Codes: TOPO001 layering malformed, TOPO002 class invariant broken,
    TOPO003 tree edge climbs the layering, TOPO004 measured
    approximation ratio out of bounds. *)

open Peel_topology

val check_layering : Zoo.t -> Diagnostic.t list
(** TOPO001 — one error per {!Zoo.layering_violations} entry:
    endpoints on layer 0 wired only to switches, contiguous layers,
    every hop crossing exactly one layer on layered classes, and
    structural connectivity. *)

val check_invariants : Zoo.t -> Diagnostic.t list
(** TOPO002 — one error per {!Zoo.invariant_violations} entry: the
    class's node counts and structural degrees (e.g. every Jellyfish
    switch has exactly [net_degree] switch ports). *)

val check_general_tree :
  Graph.t -> Peel_steiner.Tree.t -> source:int -> dests:int list ->
  Diagnostic.t list
(** The fabric-free tree battery ({!Check_tree.check} without the Clos
    cost bound) plus TOPO003: every tree edge must go from a parent
    strictly closer to the source (BFS hops) than its child — the
    validity invariant general peeling guarantees on any topology. *)

val check_ratio :
  cost:int -> opt:int -> far:int -> ndests:int -> Diagnostic.t list
(** TOPO004 — [cost] is the greedy tree's link count, [opt] the exact
    oracle's ({!Peel_steiner.Exact.oracle}), [far] the farthest layer
    F. Errors when [cost < opt] (the "exact" oracle was beaten, so it
    is not exact) or [cost > min(F, ndests) * max 1 opt] (Theorem 2.5
    measured against the true optimum). *)

val check_scenario : Zoo.t -> source:int -> dests:int list -> Diagnostic.t list
(** The full zoo battery for one scenario: layering + invariants, then
    — when the group is reachable — the general-peel tree checks and,
    when the oracle can afford the instance, the measured-ratio bound.
    Runs automatically inside {!Peel_check.check_scenario} whenever the
    fabric is a zoo fabric. *)
