(** Static checks over baseline collective schedules
    ({!Peel_baselines.Ring}, {!Peel_baselines.Binary_tree}).

    Codes:
    - [COL001] the schedule order is not a source-first permutation of
      the group members
    - [COL002] the hop/edge structure is malformed (ring hops are not
      consecutive, a binary-tree parent fans out to more than two
      children, or the edge count is not N-1)
    - [COL003] a member receives more than once, or the source receives
      (every rank must receive each chunk exactly once)
    - [COL004] a member is unreachable through the schedule *)

val check_ring :
  Peel_baselines.Ring.t -> source:int -> members:int list -> Diagnostic.t list

val check_btree :
  Peel_baselines.Binary_tree.t ->
  source:int ->
  members:int list ->
  Diagnostic.t list
