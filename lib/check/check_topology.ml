open Peel_topology
module Tree = Peel_steiner.Tree
module Layer_peel = Peel_steiner.Layer_peel
module Exact = Peel_steiner.Exact
module D = Diagnostic

let check_layering z =
  List.map
    (fun msg -> D.errorf ~code:"TOPO001" ~loc:"layering" "%s" msg)
    (Zoo.layering_violations z)

let check_invariants z =
  List.map
    (fun msg -> D.errorf ~code:"TOPO002" ~loc:"invariants" "%s" msg)
    (Zoo.invariant_violations z)

(* A peeled tree descends strictly away from the source: every binding
   attaches a member to a parent on a strictly lower BFS layer, so an
   edge whose parent is at least as far as its child can only come from
   a corrupted tree (or a tree built for a different source).  This is
   the generalization of TREE002/004 that has teeth on expanders, where
   there is no pod structure for the other checks to lean on. *)
let check_general_tree g tree ~source ~dests =
  let base = Check_tree.check g tree ~source ~dests in
  let dist = Graph.bfs_dist g source in
  let mono =
    List.filter_map
      (fun (parent, child, _lid) ->
        if
          dist.(parent) <> Graph.unreachable
          && dist.(child) <> Graph.unreachable
          && dist.(parent) >= dist.(child)
        then
          Some
            (D.errorf ~code:"TOPO003"
               ~loc:(Printf.sprintf "edge %d->%d" parent child)
               "tree edge climbs from BFS layer %d to layer %d: peeled \
                trees descend strictly away from the source"
               dist.(parent) dist.(child))
        else None)
      (Tree.edges tree)
  in
  base @ mono

let check_ratio ~cost ~opt ~far ~ndests =
  if cost < opt then
    [
      D.errorf ~code:"TOPO004" ~loc:"oracle"
        "greedy cost %d beats the exact optimum %d: oracle inconsistency"
        cost opt;
    ]
  else begin
    let factor = max 1 (min far ndests) in
    let bound = factor * max 1 opt in
    if cost > bound then
      [
        D.errorf ~code:"TOPO004" ~loc:"oracle"
          "cost %d exceeds min(F,|D|)*OPT = %d*%d = %d (Theorem 2.5 \
           against the exact oracle)"
          cost factor opt bound;
      ]
    else []
  end

let check_scenario z ~source ~dests =
  let dests =
    List.sort_uniq compare (List.filter (fun d -> d <> source) dests)
  in
  let structural = check_layering z @ check_invariants z in
  let g = z.Zoo.graph in
  match Layer_peel.peel_general g ~source ~dests with
  | None -> structural (* unreachability is the main battery's TREE003 *)
  | Some tree ->
      let tree_ds = check_general_tree g tree ~source ~dests in
      let ratio_ds =
        match Exact.oracle g ~source ~dests with
        | None -> [] (* oracle declined: too many racks for the DP *)
        | Some opt -> (
            match Layer_peel.farthest_layer g ~source ~dests with
            | None -> []
            | Some far ->
                check_ratio ~cost:(Tree.cost tree) ~opt ~far
                  ~ndests:(List.length dests))
      in
      structural @ tree_ds @ ratio_ds
