(** The uniform finding type every [Peel_check] checker emits.

    A diagnostic pins one invariant violation (or suspicion) to a
    stable, greppable code — "TREE002", "PLAN005" — so tests can assert
    on exactly which corruption was caught and operators can look the
    code up in DESIGN.md's invariant table.  Severity [Error] means a
    paper-level invariant is broken (the artifact must not be used);
    [Warning] flags values that are legal but outside the envelope the
    evaluation exercises; [Info] is advisory. *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;     (** stable short code, e.g. "TREE002" *)
  message : string;  (** human explanation of this specific finding *)
  location : string; (** where: "packet 3", "edge 12->47", "link 9" *)
}

val errorf : code:string -> loc:string -> ('a, unit, string, t) format4 -> 'a
val warningf : code:string -> loc:string -> ('a, unit, string, t) format4 -> 'a
val infof : code:string -> loc:string -> ('a, unit, string, t) format4 -> 'a

val severity_to_string : severity -> string

val to_string : t -> string
(** ["error[TREE002] edge 12->47: link 9 is down"]. *)

val errors : t list -> t list
(** Just the [Error]-severity findings. *)

val has_errors : t list -> bool

val has_code : string -> t list -> bool
(** Whether any finding carries the given code (test helper). *)

val sort : t list -> t list
(** Errors first, then warnings, then infos; stable by code within a
    severity. *)

val pp_report : Format.formatter -> t list -> unit
(** One finding per line; prints "no findings" for the empty list. *)
