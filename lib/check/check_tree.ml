open Peel_topology
module Tree = Peel_steiner.Tree
module Layer_peel = Peel_steiner.Layer_peel
module D = Diagnostic

let symmetric_lower_bound fabric ~source ~dests =
  let g = Fabric.graph fabric in
  let downs =
    Array.fold_left
      (fun acc (l : Graph.link) -> if l.Graph.up then acc else l.Graph.link_id :: acc)
      [] (Graph.links g)
  in
  List.iter (Graph.recover_link g) downs;
  Fun.protect
    ~finally:(fun () -> List.iter (Graph.fail_link g) downs)
    (fun () ->
      match Peel_steiner.Symmetric.cost_lower_bound fabric ~source ~dests with
      | cost -> Some cost
      | exception Invalid_argument _ -> None)

let check_edges g tree =
  List.concat_map
    (fun (parent, child, lid) ->
      let loc = Printf.sprintf "edge %d->%d" parent child in
      if lid < 0 || lid >= Graph.num_links g then
        [ D.errorf ~code:"TREE002" ~loc "link id %d out of range" lid ]
      else begin
        let l = Graph.link g lid in
        if l.Graph.src <> parent || l.Graph.dst <> child then
          [
            D.errorf ~code:"TREE002" ~loc "link %d runs %d->%d, not parent->child"
              lid l.Graph.src l.Graph.dst;
          ]
        else if not l.Graph.up then
          [ D.errorf ~code:"TREE002" ~loc "link %d is down" lid ]
        else []
      end)
    (Tree.edges tree)

(* Walk child edges from the root; in a well-formed tree this reaches
   every member exactly once. *)
let check_shape tree =
  let members = Tree.members tree in
  let seen = Hashtbl.create (List.length members * 2) in
  let dups = ref [] in
  let rec visit v =
    if Hashtbl.mem seen v then dups := v :: !dups
    else begin
      Hashtbl.replace seen v ();
      List.iter (fun (c, _) -> visit c) (Tree.children tree v)
    end
  in
  visit (Tree.root tree);
  let unreached = List.filter (fun v -> not (Hashtbl.mem seen v)) members in
  List.map
    (fun v ->
      D.errorf ~code:"TREE004" ~loc:(Printf.sprintf "node %d" v)
        "member reached twice from the root (cycle or shared child)")
    !dups
  @ List.map
      (fun v ->
        D.errorf ~code:"TREE004" ~loc:(Printf.sprintf "node %d" v)
          "member not reachable from the root over child edges")
      unreached

let check_cost_bound fabric g tree ~source ~dests =
  match symmetric_lower_bound fabric ~source ~dests with
  | None -> []
  | Some opt_sym -> (
      match Layer_peel.farthest_layer g ~source ~dests with
      | None -> [] (* unreachability is reported as TREE003 *)
      | Some f ->
          let factor = max 1 (min f (List.length dests)) in
          let bound = factor * max 1 opt_sym in
          let cost = Tree.cost tree in
          if cost > bound then
            [
              D.errorf ~code:"TREE005" ~loc:"tree"
                "cost %d exceeds min(F,|D|)*OPT = %d*%d = %d (Theorem 2.5)" cost
                factor opt_sym bound;
            ]
          else [])

let check ?fabric g tree ~source ~dests =
  let dests = List.sort_uniq compare (List.filter (fun d -> d <> source) dests) in
  let root_ds =
    if Tree.root tree <> source then
      [
        D.errorf ~code:"TREE001" ~loc:"root" "tree is rooted at %d, not the source %d"
          (Tree.root tree) source;
      ]
    else []
  in
  let span_ds =
    List.filter_map
      (fun d ->
        if Tree.mem tree d then None
        else
          Some
            (D.errorf ~code:"TREE003" ~loc:(Printf.sprintf "dest %d" d)
               "destination not spanned by the tree"))
      dests
  in
  let cost_ds =
    match fabric with
    | None -> []
    | Some fabric -> check_cost_bound fabric g tree ~source ~dests
  in
  root_ds @ check_edges g tree @ check_shape tree @ span_ds @ cost_ds

let check_splice ?fabric g ~prev ~tree ~source ~dests =
  let ds = check ?fabric g tree ~source ~dests in
  (* The surviving prefix of [prev]: bindings still connected to the
     root over up links.  A replan may prune a survivor that no longer
     feeds any destination, but if it keeps the member it must keep the
     exact parent edge — delivered subtrees never get rewired. *)
  let splice_ds = ref [] in
  let rec walk v =
    List.iter
      (fun (child, lid) ->
        if Graph.link_up g lid then begin
          (if Tree.mem tree child then
             match Tree.parent tree child with
             | Some (p, l) when p = v && l = lid -> ()
             | Some (p, l) ->
                 splice_ds :=
                   D.errorf ~code:"TREE006"
                     ~loc:(Printf.sprintf "node %d" child)
                     "surviving binding %d->(link %d) rewired to %d->(link %d)"
                     v lid p l
                   :: !splice_ds
             | None ->
                 splice_ds :=
                   D.errorf ~code:"TREE006"
                     ~loc:(Printf.sprintf "node %d" child)
                     "surviving member kept but left parentless (was %d->link %d)"
                     v lid
                   :: !splice_ds);
          walk child
        end)
      (Tree.children prev v)
  in
  if Tree.root prev = Tree.root tree then walk (Tree.root prev)
  else
    splice_ds :=
      [
        D.errorf ~code:"TREE006" ~loc:"root"
          "replanned tree rooted at %d, previous tree at %d" (Tree.root tree)
          (Tree.root prev);
      ];
  ds @ List.rev !splice_ds
