module Ring = Peel_baselines.Ring
module Binary_tree = Peel_baselines.Binary_tree
module D = Diagnostic

let check_order order ~source ~members =
  let members = List.sort_uniq compare members in
  let listed = List.sort compare (Array.to_list order) in
  (if listed <> members then
     [
       D.errorf ~code:"COL001" ~loc:"order"
         "schedule order is not a permutation of the %d group members"
         (List.length members);
     ]
   else [])
  @
  if Array.length order > 0 && order.(0) <> source then
    [
      D.errorf ~code:"COL001" ~loc:"order" "schedule starts at %d, not the source %d"
        order.(0) source;
    ]
  else []

(* COL003 — every non-source member receives exactly once; the source
   never receives.  [receivers] lists one entry per logical send. *)
let check_receive_once receivers ~source ~members =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun r ->
      Hashtbl.replace counts r (1 + Option.value (Hashtbl.find_opt counts r) ~default:0))
    receivers;
  List.concat_map
    (fun m ->
      let got = Option.value (Hashtbl.find_opt counts m) ~default:0 in
      let want = if m = source then 0 else 1 in
      if got <> want then
        [
          D.errorf ~code:"COL003" ~loc:(Printf.sprintf "member %d" m)
            "receives %d times, expected %d" got want;
        ]
      else [])
    (List.sort_uniq compare (source :: members))

let check_ring (r : Ring.t) ~source ~members =
  let order = r.Ring.order in
  let n = Array.length order in
  let expected_hops = List.init (max 0 (n - 1)) (fun i -> (order.(i), order.(i + 1))) in
  check_order order ~source ~members
  @ (if r.Ring.hops <> expected_hops then
       [
         D.errorf ~code:"COL002" ~loc:"hops"
           "ring hops are not the consecutive pairs of the order (%d hops, expected %d)"
           (List.length r.Ring.hops) (n - 1);
       ]
     else [])
  @ check_receive_once (List.map snd r.Ring.hops) ~source ~members

let check_btree (bt : Binary_tree.t) ~source ~members =
  let order = bt.Binary_tree.order in
  let n = Array.length order in
  let edges = bt.Binary_tree.edges in
  let order_ds = check_order order ~source ~members in
  let count_ds =
    if List.length edges <> n - 1 then
      [
        D.errorf ~code:"COL002" ~loc:"edges" "%d edges for %d members, expected %d"
          (List.length edges) n (n - 1);
      ]
    else []
  in
  let fanout_ds =
    let sends = Hashtbl.create 64 in
    List.iter
      (fun (p, _) ->
        Hashtbl.replace sends p (1 + Option.value (Hashtbl.find_opt sends p) ~default:0))
      edges;
    Hashtbl.fold
      (fun p c acc ->
        if c > 2 then
          D.errorf ~code:"COL002" ~loc:(Printf.sprintf "member %d" p)
            "fans out to %d children, binary tree allows 2" c
          :: acc
        else acc)
      sends []
  in
  let reach_ds =
    let reached = Hashtbl.create 64 in
    Hashtbl.replace reached source ();
    let rec grow () =
      let added =
        List.fold_left
          (fun added (p, c) ->
            if Hashtbl.mem reached p && not (Hashtbl.mem reached c) then begin
              Hashtbl.replace reached c ();
              true
            end
            else added)
          false edges
      in
      if added then grow ()
    in
    grow ();
    List.filter_map
      (fun m ->
        if Hashtbl.mem reached m then None
        else
          Some
            (D.errorf ~code:"COL004" ~loc:(Printf.sprintf "member %d" m)
               "unreachable from the source through the schedule"))
      (List.sort_uniq compare members)
  in
  order_ds @ count_ds @ fanout_ds
  @ check_receive_once (List.map snd edges) ~source ~members
  @ reach_ds
