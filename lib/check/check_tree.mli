(** Static checks over multicast trees ({!Peel_steiner.Tree}).

    Codes:
    - [TREE001] root is not the collective's source
    - [TREE002] a parent edge is out of range, runs the wrong way, or
      uses a link that is down in the graph
    - [TREE003] a destination is not spanned (or is unreachable)
    - [TREE004] the tree is not a tree: a member is unreachable from
      the root or reached twice over child edges
    - [TREE005] tree cost exceeds the Theorem 2.5 envelope
      [min(F, |D|) * OPT_sym], where [F] is the farthest hop layer and
      [OPT_sym] the symmetric-Clos lower bound (Lemma 2.1)
    - [TREE006] a replanned tree rewired a surviving binding: a member
      of the previous tree still connected to the root over up links
      was kept but given a different parent edge (or none) — the
      re-peel contract is that delivered subtrees keep their state *)

open Peel_topology

val check :
  ?fabric:Fabric.t ->
  Graph.t ->
  Peel_steiner.Tree.t ->
  source:int ->
  dests:int list ->
  Diagnostic.t list
(** Structural checks against the graph; when [fabric] is supplied the
    Theorem 2.5 cost bound is also checked (failures are temporarily
    restored to compute the symmetric lower bound, then re-applied). *)

val check_splice :
  ?fabric:Fabric.t ->
  Graph.t ->
  prev:Peel_steiner.Tree.t ->
  tree:Peel_steiner.Tree.t ->
  source:int ->
  dests:int list ->
  Diagnostic.t list
(** Everything {!check} verifies on the post-failure graph, plus the
    splice invariant ([TREE006]): every member of [prev]'s surviving
    prefix (reachable from the root over up links) that [tree] keeps
    must keep its exact parent edge.  Pruning a survivor that no longer
    feeds a destination is allowed; rewiring one is not. *)

val symmetric_lower_bound :
  Fabric.t -> source:int -> dests:int list -> int option
(** Lemma 2.1 optimum cost for the group on the failure-free fabric;
    [None] when the symmetric construction does not apply.  Restores
    any injected failures for the computation and re-applies them
    before returning. *)
