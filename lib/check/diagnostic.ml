type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;
  message : string;
  location : string;
}

let make severity ~code ~loc fmt =
  Printf.ksprintf
    (fun message -> { severity; code; message; location = loc })
    fmt

let errorf ~code ~loc fmt = make Error ~code ~loc fmt
let warningf ~code ~loc fmt = make Warning ~code ~loc fmt
let infof ~code ~loc fmt = make Info ~code ~loc fmt

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let to_string d =
  Printf.sprintf "%s[%s] %s: %s"
    (severity_to_string d.severity)
    d.code d.location d.message

let errors ds = List.filter (fun d -> d.severity = Error) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds
let has_code code ds = List.exists (fun d -> d.code = code) ds

let rank = function Error -> 0 | Warning -> 1 | Info -> 2

let sort ds =
  List.stable_sort
    (fun a b -> compare (rank a.severity, a.code) (rank b.severity, b.code))
    ds

let pp_report ppf = function
  | [] -> Format.fprintf ppf "no findings@."
  | ds -> List.iter (fun d -> Format.fprintf ppf "%s@." (to_string d)) ds
