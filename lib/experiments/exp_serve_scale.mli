(** E22 (ext): the million-group service fast path —
    {!Peel_ctrl.Service} (arena-backed group store, per-shard TCAM
    views, (source, member-set) peel/plan/bound memoization) driven
    past 10^6 concurrent groups by two long-hold Poisson tenants, and
    raced against the PR 8 reference implementation
    ({!Peel_ctrl.Service_ref}) on the byte-identical event stream.

    The counter rows — including the jobs=1, jobs=4 and cache-off
    replay fingerprints — are deterministic for the fixed seed and
    guarded in BENCH.json; the wall-clock rows (events/sec for both
    implementations, speedup, peak heap) are reported but unguarded.
    The reference runs only for the SLO rows, never under the bench
    guard. *)

type row = {
  events : int;
  creates : int;
  groups_held : int;       (** live groups when the stream stopped *)
  cache_hits : int;
  cache_misses : int;
  installs : int;
  evictions : int;
  batches : int;
  compiled_entries : int;
  max_backlog : int;
  fingerprint : string;          (** jobs=1, caches on *)
  fingerprint_jobs4 : string;    (** must equal [fingerprint] (SVC005) *)
  fingerprint_nocache : string;  (** must equal [fingerprint] *)
}

type slo_row = {
  s_events : int;
  s_events_per_sec : float;
  s_wall_s : float;
  s_peak_heap_mwords : float;  (** [Gc] top-of-heap after the cached run *)
  s_cache_hit_rate : float;
  s_ref_events_per_sec : float;
  s_ref_wall_s : float;
  s_speedup : float;           (** events/sec over the reference's *)
  s_ref_fingerprint_matches : bool;
}

val rows : Common.mode -> row list
val slo_rows : Common.mode -> slo_row list
val rows_json : Common.mode -> Peel_util.Json.t
val slo_json : Common.mode -> Peel_util.Json.t
val run : Common.mode -> unit
