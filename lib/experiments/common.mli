(** Shared scaffolding for the experiment harness: the paper's two
    evaluation fabrics, trial-count scaling, and table helpers. *)

open Peel_topology

type mode = Quick | Full

val trials : mode -> full:int -> int
(** [full] trials in [Full] mode, a small fraction (>= 4) in [Quick]. *)

val par_trials : ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map over independent experiment cells —
    [Peel_util.Pool.par_map] under the default worker count ([--jobs] /
    [PEEL_JOBS]).  Cells must be self-contained: own [Rng] seeded per
    cell, no mutation of shared state (a shared fabric is fine as long
    as no cell fails/recovers links).  Results are bit-identical to the
    sequential [List.map] for any worker count. *)

val fig5_fabric : unit -> Fabric.t
(** The paper's §4 fat-tree: 8-ary, 4 servers/ToR, 8 GPUs/server
    (1024 GPUs), 100 Gbps links, 900 GB/s NVLink. *)

val fig7_fabric : unit -> Fabric.t
(** The paper's failure fabric: 16 spines x 48 leaves, 2 servers/leaf,
    8 GPUs/server. *)

val fig1_fabric : unit -> Fabric.t
(** The intro figure's toy fabric: 2 spines, 2 leaves, 4 hosts/leaf
    (8 endpoints). *)

val mb : float -> float
(** Megabytes to bytes. *)

val banner : string -> unit
(** Print an experiment header. *)

val note : string -> unit

val summarize_run :
  ?cc:Peel_collective.Broadcast.cc ->
  ?controller:bool ->
  Fabric.t ->
  Peel_collective.Scheme.t ->
  Peel_workload.Spec.collective list ->
  Peel_util.Stats.summary
(** Run a workload and summarize CCTs. *)

val fsec : float -> string
val f2 : float -> string
(** Two-decimal float. *)

val micro_table_rows : (string * float option) list -> string list list
(** Format micro-benchmark estimates [(algorithm, ns-per-run)] as table
    rows: the time pretty-printed in seconds, or ["n/a"] when the
    estimate is missing or non-finite.  Total — every input produces a
    row — so a benchmark whose analysis fails still shows up. *)
