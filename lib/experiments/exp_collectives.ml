open Peel_topology
open Peel_workload
open Peel_collective
module Rng = Peel_util.Rng

type row = {
  op : string;
  algo : string;
  size_mb : float;
  mean : float;
  p99 : float;
}

let fabric () = Fabric.fat_tree ~k:8 ~hosts_per_tor:4 ~gpus_per_host:1 ()

let sizes mode =
  match mode with
  | Common.Full -> [ 8.; 64.; 256. ]
  | Common.Quick -> [ 64. ]

let compute mode =
  let f = fabric () in
  let n = Common.trials mode ~full:30 in
  let workload bytes =
    Spec.poisson_broadcasts f (Rng.create 700) ~n ~scale:64 ~bytes ~load:0.3 ()
  in
  let summary out =
    let s = Peel_collective.Runner.summarize out in
    (s.Peel_util.Stats.mean, s.Peel_util.Stats.p99)
  in
  let variants =
    [
      ("allgather", "ring", fun cs -> Allgather.run f Allgather.Ring_exchange cs);
      ("allgather", "peel", fun cs -> Allgather.run f Allgather.Peel_multicast cs);
      ("reduce", "ring", fun cs -> Reduce.run f Reduce.Ring_pass cs);
      ("reduce", "tree", fun cs -> Reduce.run f Reduce.Btree_reduce cs);
      ("allreduce", "ring", fun cs -> Allreduce.run f Allreduce.Ring_rs_ag cs);
      ( "allreduce",
        "reduce+peel",
        fun cs -> Allreduce.run f Allreduce.Reduce_then_peel cs );
    ]
  in
  List.concat_map
    (fun size_mb ->
      List.map (fun (op, algo, go) -> (size_mb, op, algo, go)) variants)
    (sizes mode)
  |> Common.par_trials (fun (size_mb, op, algo, go) ->
         let cs = workload (Common.mb size_mb) in
         let mean, p99 = summary (go cs) in
         { op; algo; size_mb; mean; p99 })

let run mode =
  Common.banner "E11 (ext): PEEL inside allgather / reduce / allreduce";
  Common.note "8-ary fat-tree, 1 GPU/server, 64-worker collectives at 30% load";
  let rows = compute mode in
  Peel_util.Table.print
    ~header:[ "collective"; "algorithm"; "size"; "mean CCT"; "p99 CCT" ]
    (List.map
       (fun r ->
         [
           r.op;
           r.algo;
           Printf.sprintf "%.0f MB" r.size_mb;
           Common.fsec r.mean;
           Common.fsec r.p99;
         ])
       rows);
  Common.note "multicast lifts allgather directly; reduce still rides unicast trees"
