open Peel_topology
open Peel_workload
module Rng = Peel_util.Rng

type row = {
  groups : int;
  ipmc_max_entries : int;
  peel_entries : int;
  overflows_4k : bool;
}

let tcam_capacity = 4096

let compute mode =
  let fabric = Common.fig5_fabric () in
  let g = Fabric.graph fabric in
  let peel_entries = Peel.switch_rules fabric in
  let group_sizes = [ 16; 32; 64; 128; 256 ] in
  let add_group rng counts =
    let scale = List.nth group_sizes (Rng.int rng (List.length group_sizes)) in
    let members = Spec.place fabric rng ~scale () in
    let source = List.hd members in
    let dests = List.tl members in
    match Peel.multicast_tree fabric ~source ~dests with
    | None -> ()
    | Some tree ->
        (* Naive IP multicast: one TCAM entry per group on every switch
           the group's tree traverses. *)
        List.iter
          (fun v -> counts.(v) <- counts.(v) + 1)
          (Peel_steiner.Tree.switch_members g tree)
  in
  let max_groups = match mode with Common.Full -> 10000 | Common.Quick -> 1000 in
  let checkpoints =
    List.filter (fun c -> c <= max_groups) [ 1; 10; 100; 1000; 10000 ]
  in
  (* Each checkpoint cell replays groups 1..checkpoint from the same
     seed: the rng stream prefix is shared, so every cell installs
     exactly the groups the cumulative sequential walk had installed —
     at the cost of redoing the (cheap) earlier installs per cell. *)
  Common.par_trials
    (fun groups ->
      let counts = Array.make (Graph.num_nodes g) 0 in
      let rng = Rng.create 1400 in
      for _ = 1 to groups do
        add_group rng counts
      done;
      let ipmc_max_entries = Array.fold_left max 0 counts in
      {
        groups;
        ipmc_max_entries;
        peel_entries;
        overflows_4k = ipmc_max_entries > tcam_capacity;
      })
    checkpoints

let run mode =
  Common.banner "E14 (ext): concurrent jobs vs switch TCAM (the §1 motivation)";
  Common.note "bin-packed jobs of 16-256 GPUs on the Fig. 5 fat-tree; 4K-entry TCAM";
  let rows = compute mode in
  Peel_util.Table.print
    ~header:
      [ "concurrent groups"; "IPMC entries (busiest switch)"; "PEEL entries";
        "IPMC overflows 4K TCAM" ]
    (List.map
       (fun r ->
         [
           string_of_int r.groups;
           string_of_int r.ipmc_max_entries;
           string_of_int r.peel_entries;
           (if r.overflows_4k then "yes" else "no");
         ])
       rows);
  Common.note "PEEL's state is deploy-once: independent of the number of groups"
