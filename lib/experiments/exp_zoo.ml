(* E21 (extension): the topology zoo under generalized layer-peeling.

   Three deterministic sections:
   - approximation: general peel vs the exact-Steiner oracle across
     topology class x failure rate x group size, plus a symmetric-Clos
     control row whose ratio must be exactly 1.0 at zero failures
     (Lemma 2.1);
   - port_set_rules: the per-switch distinct child-port-set counts a
     tree family needs on fabrics with no pod/ToR prefix structure —
     the degraded rule currency of the zoo;
   - reconfig: per-epoch link-set swaps (Zoo.Reconfig) on the two
     expander classes, re-peeled mid-run through the E16 failover
     machinery. *)

open Peel_topology
open Peel_steiner
open Peel_workload
open Peel_collective
module Rng = Peel_util.Rng
module Json = Peel_util.Json

type ratio_row = {
  cls : string;
  failure_pct : int;
  group : int;
  trials : int;
  measured : int;
  mean_ratio : float;
  max_ratio : float;
  optimal_rate : float;
}

type rules_row = {
  r_cls : string;
  r_trees : int;
  r_switches : int;
  r_total_rules : int;
  r_max_rules : int;
}

type reconfig_row = {
  c_cls : string;
  c_epochs : int;
  c_swaps : int;
  c_clean : float;
  c_reconf : float;
  c_degradation : float;
  c_replans : int;
}

(* Instances small enough that the pendant-collapsed Dreyfus–Wagner
   oracle can afford (almost) every draw. *)
let build cls ~seed =
  match cls with
  | Zoo.Abfattree -> Zoo.abfattree ~hosts_per_tor:2 ~k:4 ()
  | Zoo.Vl2 -> Zoo.vl2 ~da:4 ~di:4 ()
  | Zoo.Jellyfish -> Zoo.jellyfish ~switches:12 ~net_degree:3 ~seed ()
  | Zoo.Xpander -> Zoo.xpander ~net_degree:3 ~lift:4 ~seed ()

let fabric_for target ~seed =
  match target with
  | `Clos -> Fabric.fat_tree ~hosts_per_tor:2 ~gpus_per_host:0 ~k:4 ()
  | `Zoo cls -> Fabric.of_zoo (build cls ~seed)

let target_name = function
  | `Clos -> "clos-control"
  | `Zoo cls -> Zoo.cls_to_string cls

let all_targets = `Clos :: List.map (fun c -> `Zoo c) Zoo.all_classes

let ratio_cell ~trials target ~failure_pct ~group =
  let ratios = ref [] in
  let measured = ref 0 in
  for t = 0 to trials - 1 do
    let seed = 21000 + (1000 * failure_pct) + (100 * group) + t in
    let f = fabric_for target ~seed in
    let g = Fabric.graph f in
    let rng = Rng.create seed in
    if failure_pct > 0 then
      ignore
        (Fabric.fail_random f ~rng ~tier:`All
           ~fraction:(float_of_int failure_pct /. 100.0)
           ());
    let hosts = Fabric.hosts f in
    let n = Array.length hosts in
    let picks = Rng.sample_without_replacement rng n (min n (group + 1)) in
    match List.map (fun i -> hosts.(i)) picks with
    | [] | [ _ ] -> ()
    | source :: dests -> (
        match Layer_peel.peel_general g ~source ~dests with
        | None -> () (* the failure draw cut a destination off *)
        | Some tree -> (
            match Exact.oracle g ~source ~dests with
            | None -> () (* instance too large for the DP; skipped *)
            | Some opt ->
                incr measured;
                ratios :=
                  (float_of_int (Tree.cost tree) /. float_of_int (max 1 opt))
                  :: !ratios))
  done;
  let rs = !ratios in
  {
    cls = target_name target;
    failure_pct;
    group;
    trials;
    measured = !measured;
    mean_ratio = (if rs = [] then 0.0 else Peel_util.Stats.mean rs);
    max_ratio = List.fold_left Float.max (if rs = [] then 0.0 else 1.0) rs;
    optimal_rate =
      (if !measured = 0 then 0.0
       else
         float_of_int (List.length (List.filter (fun r -> r <= 1.0) rs))
         /. float_of_int !measured);
  }

let ratio_rows mode =
  let trials = Common.trials mode ~full:40 in
  let cells =
    List.concat_map
      (fun target ->
        List.concat_map
          (fun failure_pct ->
            List.map (fun group -> (target, failure_pct, group)) [ 4; 8 ])
          [ 0; 5; 10 ])
      all_targets
  in
  Common.par_trials
    (fun (target, failure_pct, group) ->
      ratio_cell ~trials target ~failure_pct ~group)
    cells

(* Eight salted trees per class from distinct sources: how many
   distinct replication port sets each switch must hold. *)
let rules_rows () =
  List.map
    (fun cls ->
      let z = build cls ~seed:31 in
      let f = Fabric.of_zoo z in
      let g = Fabric.graph f in
      let hosts = Fabric.hosts f in
      let n = Array.length hosts in
      let rng = Rng.create 3100 in
      let trees =
        List.init 8 (fun gid ->
            let picks = Rng.sample_without_replacement rng n (min n 7) in
            match List.map (fun i -> hosts.(i)) picks with
            | source :: (_ :: _ as dests) ->
                Layer_peel.peel_general ~salt:gid g ~source ~dests
            | _ -> None)
        |> List.filter_map Fun.id
      in
      let per_switch = Layer_peel.port_set_rules g trees in
      {
        r_cls = Zoo.cls_to_string cls;
        r_trees = List.length trees;
        r_switches = List.length per_switch;
        r_total_rules = List.fold_left (fun a (_, c) -> a + c) 0 per_switch;
        r_max_rules = List.fold_left (fun a (_, c) -> max a c) 0 per_switch;
      })
    Zoo.all_classes

let reconfig_row cls =
  let z = build cls ~seed:57 in
  let f = Fabric.of_zoo z in
  let rng = Rng.create 5700 in
  let members = Spec.place f rng ~scale:8 () in
  let source = List.hd members in
  let spec =
    {
      Spec.id = 0;
      arrival = 0.0;
      source;
      dests = List.filter (fun m -> m <> source) members;
      members;
      bytes = Common.mb 4.0;
    }
  in
  let clean = List.hd (Failover.run f Failover.Peel [ spec ]).Runner.ccts in
  let epochs = 3 in
  let period = 0.25 *. clean in
  let sched =
    Zoo.Reconfig.schedule z ~rng:(Rng.create 5701) ~epochs ~period
      ~fraction:0.15
  in
  (* Epoch [e]'s deltas land at [(e+1) * period]: the run starts on the
     undarkened fabric and rides three link-set swaps before finishing. *)
  let events =
    List.concat_map
      (fun (e : Zoo.Reconfig.epoch) ->
        let at = e.Zoo.Reconfig.at +. period in
        List.map
          (fun id -> { Peel_sim.Fault.at; duplex = id; action = Peel_sim.Fault.Fail })
          e.Zoo.Reconfig.fail
        @ List.map
            (fun id ->
              { Peel_sim.Fault.at; duplex = id; action = Peel_sim.Fault.Recover })
            e.Zoo.Reconfig.recover)
      sched
  in
  let swaps = List.length events in
  let faults = Peel_sim.Fault.of_list events in
  let trace = Peel_sim.Trace.create ~level:Counters () in
  let out = Failover.run ~trace ~faults f Failover.Peel [ spec ] in
  let reconf = List.hd out.Runner.ccts in
  let c = Peel_sim.Trace.counters trace in
  {
    c_cls = Zoo.cls_to_string cls;
    c_epochs = epochs;
    c_swaps = swaps;
    c_clean = clean;
    c_reconf = reconf;
    c_degradation = reconf /. clean;
    c_replans = c.Peel_sim.Trace.replans;
  }

let reconfig_rows () = List.map reconfig_row [ Zoo.Jellyfish; Zoo.Xpander ]

let rows_json mode =
  let ratio = ratio_rows mode in
  let rules = rules_rows () in
  let reconf = reconfig_rows () in
  Json.Obj
    [
      ( "approximation",
        Json.Arr
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("class", Json.str r.cls);
                   ("failure_pct", Json.int r.failure_pct);
                   ("group", Json.int r.group);
                   ("trials", Json.int r.trials);
                   ("measured", Json.int r.measured);
                   ("mean_ratio", Json.num r.mean_ratio);
                   ("max_ratio", Json.num r.max_ratio);
                   ("optimal_rate", Json.num r.optimal_rate);
                 ])
             ratio) );
      ( "port_set_rules",
        Json.Arr
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("class", Json.str r.r_cls);
                   ("trees", Json.int r.r_trees);
                   ("switches", Json.int r.r_switches);
                   ("total_rules", Json.int r.r_total_rules);
                   ("max_rules", Json.int r.r_max_rules);
                 ])
             rules) );
      ( "reconfig",
        Json.Arr
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("class", Json.str r.c_cls);
                   ("epochs", Json.int r.c_epochs);
                   ("swap_events", Json.int r.c_swaps);
                   ("clean_cct_s", Json.num r.c_clean);
                   ("reconf_cct_s", Json.num r.c_reconf);
                   ("degradation", Json.num r.c_degradation);
                   ("replans", Json.int r.c_replans);
                 ])
             reconf) );
    ]

let run mode =
  Common.banner "E21 (ext): topology zoo vs the exact-Steiner oracle";
  Common.note
    "general layer-peeling on abfattree / VL2 / Jellyfish / Xpander; measured \
     approximation ratio against pendant-collapsed Dreyfus-Wagner";
  let rs = ratio_rows mode in
  Peel_util.Table.print
    ~header:
      [ "class"; "failures"; "|D|"; "measured"; "mean ratio"; "max";
        "greedy = optimal" ]
    (List.map
       (fun r ->
         [
           r.cls;
           Printf.sprintf "%d%%" r.failure_pct;
           string_of_int r.group;
           Printf.sprintf "%d/%d" r.measured r.trials;
           Printf.sprintf "%.3f" r.mean_ratio;
           Printf.sprintf "%.2f" r.max_ratio;
           Printf.sprintf "%.0f%%" (100.0 *. r.optimal_rate);
         ])
       rs);
  Common.note
    "per-switch port-set rules for 8 salted trees (no pod prefixes to \
     compress into):";
  Peel_util.Table.print
    ~header:[ "class"; "trees"; "switches"; "total rules"; "max/switch" ]
    (List.map
       (fun r ->
         [
           r.r_cls;
           string_of_int r.r_trees;
           string_of_int r.r_switches;
           string_of_int r.r_total_rules;
           string_of_int r.r_max_rules;
         ])
       (rules_rows ()));
  Common.note "per-epoch link-set swaps on the expanders, re-peeled mid-run:";
  Peel_util.Table.print
    ~header:
      [ "class"; "epochs"; "swap events"; "clean CCT"; "reconf CCT";
        "degradation"; "replans" ]
    (List.map
       (fun r ->
         [
           r.c_cls;
           string_of_int r.c_epochs;
           string_of_int r.c_swaps;
           Common.fsec r.c_clean;
           Common.fsec r.c_reconf;
           Common.f2 r.c_degradation ^ "x";
           string_of_int r.c_replans;
         ])
       (reconfig_rows ()));
  Common.note
    "clos-control at 0% failures must read 1.000 (Lemma 2.1: peel is exact \
     on the symmetric Clos)"
