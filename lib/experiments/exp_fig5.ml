open Peel_workload
module Rng = Peel_util.Rng
module Scheme = Peel_collective.Scheme

type row = {
  size_mb : float;
  scheme : Scheme.t;
  mean : float;
  p99 : float;
}

let compute ?(scales = 512) ?(load = 0.3) mode sizes_mb =
  let fabric = Common.fig5_fabric () in
  let n = Common.trials mode ~full:60 in
  (* One cell per (size, scheme): each regenerates its workload from a
     fixed seed and never mutates the shared fabric, so the fan-out is
     bit-identical to the sequential sweep. *)
  List.concat_map
    (fun size_mb -> List.map (fun scheme -> (size_mb, scheme)) Scheme.all)
    sizes_mb
  |> Common.par_trials (fun (size_mb, scheme) ->
         let cs =
           Spec.poisson_broadcasts fabric (Rng.create 100) ~n ~scale:scales
             ~bytes:(Common.mb size_mb) ~load ()
         in
         let s = Common.summarize_run fabric scheme cs in
         { size_mb; scheme; mean = s.Peel_util.Stats.mean; p99 = s.Peel_util.Stats.p99 })

let print_rows rows sizes =
  let find size scheme =
    List.find (fun r -> r.size_mb = size && r.scheme = scheme) rows
  in
  let table pick label =
    Common.note label;
    Peel_util.Table.print
      ~header:("msg size" :: List.map Scheme.to_string Scheme.all)
      (List.map
         (fun size ->
           Printf.sprintf "%.0f MB" size
           :: List.map (fun s -> Common.fsec (pick (find size s))) Scheme.all)
         sizes)
  in
  table (fun r -> r.mean) "mean CCT:";
  table (fun r -> r.p99) "p99 CCT:"

let sizes_for mode =
  match mode with
  | Common.Full -> [ 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512. ]
  | Common.Quick -> [ 2.; 32.; 512. ]

let run mode =
  Common.banner "E4 / Figure 5: CCT vs message size (512-GPU Broadcast, 30% load)";
  let sizes = sizes_for mode in
  let rows = compute mode sizes in
  print_rows rows sizes;
  (* Paper-shaped headline ratios at the extremes. *)
  let at size scheme =
    List.find (fun r -> r.size_mb = size && r.scheme = scheme) rows
  in
  let small = List.hd sizes and big = List.nth sizes (List.length sizes - 1) in
  Common.note
    (Printf.sprintf "PEEL mean vs optimal: %+.0f%% at %.0f MB, %+.0f%% at %.0f MB (paper: +23%% / +18%%)"
       (100. *. ((at small Scheme.Peel).mean /. (at small Scheme.Optimal).mean -. 1.))
       small
       (100. *. ((at big Scheme.Peel).mean /. (at big Scheme.Optimal).mean -. 1.))
       big);
  Common.note
    (Printf.sprintf "PEEL p99 vs Orca: %.1fx lower at %.0f MB, %+.0f%% at %.0f MB (paper: 101x / -21%%)"
       ((at small Scheme.Orca).p99 /. (at small Scheme.Peel).p99)
       small
       (100. *. ((at big Scheme.Peel).p99 /. (at big Scheme.Orca).p99 -. 1.))
       big);
  Common.note
    (Printf.sprintf "PEEL+cores p99 vs optimal at %.0f MB: %+.1f%% (paper: +1.4%%); vs PEEL: %+.0f%%"
       big
       (100. *. ((at big Scheme.Peel_prog_cores).p99 /. (at big Scheme.Optimal).p99 -. 1.))
       (100. *. ((at big Scheme.Peel_prog_cores).p99 /. (at big Scheme.Peel).p99 -. 1.)))
