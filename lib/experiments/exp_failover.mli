(** E16 (extension) — mid-run link failure and controller re-peeling.

    A single broadcast is interrupted by a scheduled failure of a
    random slice of the fabric links (the same seeded draw for every
    combination) at a configurable fraction of the scheme's clean CCT;
    the controller notices after a detection delay, re-peels on the
    surviving fabric after a reaction delay, and the run completes via
    the new tree plus NACK repairs.  Sweeps failure time x reaction
    delay for PEEL against the ring and binary-tree baselines and
    reports CCT degradation (failed / clean). *)

type row = {
  scheme : string;
  fail_at : float;  (** failure instant, fraction of the clean CCT *)
  reaction : float;  (** controller reaction delay, seconds *)
  clean : float;  (** failure-free CCT, seconds *)
  failed : float;  (** CCT with the mid-run failure, seconds *)
  degradation : float;  (** failed / clean *)
  replans : int;  (** controller replans traced during the run *)
}

val rows : Common.mode -> row list
(** Deterministic: fixed seeds for placement and the failure draw. *)

val rows_json : Common.mode -> Peel_util.Json.t
(** The same rows as a [peel-bench/1] "failover_degradation" array. *)

val run : Common.mode -> unit
