(** E18: the fleet-level rule compiler — concurrent multicast groups
    sustained per TCAM entry budget, per-group exact installs vs.
    compiled tables (dedup) vs. compiled tables with cross-group
    aggregation, on one seeded arrival sequence.

    Pure control-plane accounting (no simulation), so the rows are
    bit-deterministic and guarded in BENCH.json's "compile" section. *)

type row = {
  capacity : int;      (** per-switch TCAM entry budget *)
  batch : int;         (** groups offered (the arrival sequence length) *)
  exact_groups : int;  (** sustained by per-group exact installs *)
  dedup_groups : int;  (** sustained by compiled tables, dedup only *)
  agg_groups : int;    (** sustained with cross-group aggregation *)
  agg_max_entries : int;  (** busiest switch at the aggregated maximum *)
  agg_merges : int;       (** merges performed at that point *)
  agg_waste : int;        (** aggregation-induced waste rack slots *)
}

val rows : Common.mode -> row list
val rows_json : Common.mode -> Peel_util.Json.t
val run : Common.mode -> unit
