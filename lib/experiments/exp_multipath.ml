open Peel_workload
open Peel_collective
module Rng = Peel_util.Rng

type row = {
  label : string;
  mean : float;
  p99 : float;
  max_link_utilization : float;
}

let workload fabric mode =
  let n = Common.trials mode ~full:40 in
  Spec.poisson_broadcasts fabric (Rng.create 800) ~n ~scale:256
    ~bytes:(Common.mb 64.) ~load:0.5 ()

let compute_striping mode =
  let fabric = Common.fig5_fabric () in
  let cs = workload fabric mode in
  (* (ecmp, suffix, scheme) cells; the workload is immutable and shared. *)
  [
    (true, "", Scheme.Peel);
    (true, "", Scheme.Peel_multitree 2);
    (true, "", Scheme.Peel_multitree 4);
    (true, "", Scheme.Peel_multitree 8);
    (true, "", Scheme.Dbtree);
    (true, "", Scheme.Ring);
    (* The unicast side of the same tension: without per-flow ECMP,
       every cross-pod flow funnels onto the lowest-id core path — the
       tree schedules, whose logical edges criss-cross pods, collapse. *)
    (false, " (no ecmp)", Scheme.Dbtree);
  ]
  |> Common.par_trials (fun (ecmp, suffix, scheme) ->
         let out = Runner.run ~ecmp fabric scheme cs in
         let s = Runner.summarize out in
         {
           label = Scheme.to_string scheme ^ suffix;
           mean = s.Peel_util.Stats.mean;
           p99 = s.Peel_util.Stats.p99;
           max_link_utilization =
             Peel_sim.Telemetry.max_utilization out.Runner.telemetry;
         })

let compute_chunks mode =
  let fabric = Common.fig5_fabric () in
  let cs = workload fabric mode in
  Common.par_trials
    (fun chunks ->
      let s = Runner.summarize (Runner.run ~chunks fabric Scheme.Peel cs) in
      (chunks, s.Peel_util.Stats.mean, s.Peel_util.Stats.p99))
    [ 1; 2; 4; 8; 16; 32 ]

let run mode =
  Common.banner "E12 (ext): multicast vs multipath (§2.3 open question)";
  Common.note "256-GPU 64 MB Broadcasts at 50% load on the Fig. 5 fat-tree";
  let rows = compute_striping mode in
  Peel_util.Table.print
    ~header:[ "scheme"; "mean CCT"; "p99 CCT"; "hottest link util" ]
    (List.map
       (fun r ->
         [
           r.label;
           Common.fsec r.mean;
           Common.fsec r.p99;
           Printf.sprintf "%.0f%%" (100.0 *. r.max_link_utilization);
         ])
       rows);
  Common.note
    "single trees funnel; striping spreads; unicast without ECMP funnels worst";
  Common.note "chunk-count ablation (the paper fixes 8):";
  Peel_util.Table.print
    ~header:[ "chunks"; "mean CCT"; "p99 CCT" ]
    (List.map
       (fun (c, mean, p99) ->
         [ string_of_int c; Common.fsec mean; Common.fsec p99 ])
       (compute_chunks mode))
