open Peel_topology
open Peel_workload
open Peel_ctrl
module Rng = Peel_util.Rng
module Json = Peel_util.Json
module Trace = Peel_sim.Trace

type row = {
  scheme : string;
  rpc : float;       (* nan = not applicable (static never installs) *)
  capacity : int;    (* 0 = not applicable *)
  mean_cct : float;
  total_bytes : float;
  overcover_bytes : float;
  installs : int;
  evictions : int;
  refined_frac : float;
}

let chunks = 16
let per_rule = 20e-6

let fabric () =
  Fabric.leaf_spine ~spines:4 ~leaves:8 ~hosts_per_leaf:2 ~gpus_per_host:2 ()

(* Fragmented 8-GPU groups over 64 MB messages: the budget-1 prefix
   cover over-covers scattered racks, and the ~5 ms send window leaves
   room for installs to land mid-run. *)
let groups_for fabric mode =
  let n = match mode with Common.Quick -> 6 | Common.Full -> 10 in
  Spec.poisson_groups fabric (Rng.create 1700) ~n ~scale:8
    ~bytes:(Common.mb 64.0) ~load:0.5 ~hold:0.05 ~fragmentation:0.6 ()

let sweep mode =
  match mode with
  | Common.Quick -> ([ 0.2e-3; 2e-3 ], [ 1; 8 ])
  | Common.Full -> ([ 0.2e-3; 1e-3; 4e-3 ], [ 1; 2; 8 ])

let run_one fabric groups scheme cfg =
  let trace = Trace.create ~level:Counters () in
  let out = Refine.run ~chunks ~cfg ~trace fabric scheme groups in
  let c = Trace.counters trace in
  let total =
    Refine.static_chunks out + Refine.refined_chunks out
  in
  {
    scheme = Refine.scheme_to_string scheme;
    rpc = cfg.Controller.rpc;
    capacity = cfg.Controller.capacity;
    mean_cct = Peel_util.Stats.mean out.Refine.run.Peel_collective.Runner.ccts;
    total_bytes = c.Trace.bytes_reserved;
    overcover_bytes = Refine.total_overcover_bytes out;
    installs = Controller.installs out.Refine.controller;
    evictions = Controller.evictions out.Refine.controller;
    refined_frac =
      (if total = 0 then 0.0
       else float_of_int (Refine.refined_chunks out) /. float_of_int total);
  }

let rows mode =
  let fabric = fabric () in
  let groups = groups_for fabric mode in
  let rpcs, capacities = sweep mode in
  let cfg_for rpc capacity =
    { Controller.default_config with Controller.rpc; per_rule; capacity }
  in
  (* Scheme-config cell descriptors, in output order; [Refine.run]
     builds all controller/simulator state per call, so cells share only
     the fabric and the immutable group specs. *)
  let cells =
    (`Static
      :: List.concat_map
           (fun rpc -> List.map (fun cap -> `Refined (rpc, cap)) capacities)
           rpcs)
    @ List.map (fun rpc -> `Ipmc rpc) rpcs
  in
  Common.par_trials
    (fun cell ->
      match cell with
      | `Static ->
          let r = run_one fabric groups Refine.Peel_static (cfg_for 0.0 1) in
          { r with rpc = nan; capacity = 0 }
      | `Refined (rpc, capacity) ->
          run_one fabric groups Refine.Peel_refined (cfg_for rpc capacity)
      | `Ipmc rpc ->
          let r = run_one fabric groups Refine.Ipmc (cfg_for rpc 1) in
          { r with capacity = 0 })
    cells

let rows_json mode =
  Json.Arr
    (List.map
       (fun r ->
         Json.Obj
           [
             ("scheme", Json.str r.scheme);
             ("rpc_s", if Float.is_nan r.rpc then Json.Null else Json.num r.rpc);
             ( "tcam_capacity",
               if r.capacity = 0 then Json.Null else Json.int r.capacity );
             ("mean_cct_s", Json.num r.mean_cct);
             ("total_link_bytes", Json.num r.total_bytes);
             ("overcover_bytes", Json.num r.overcover_bytes);
             ("rule_installs", Json.int r.installs);
             ("evictions", Json.int r.evictions);
             ("refined_frac", Json.num r.refined_frac);
           ])
       (rows mode))

let fna x = if Float.is_nan x then "-" else Common.fsec x

let run mode =
  Common.banner
    "E17: two-stage refinement vs. install latency and TCAM budget";
  Common.note
    "32-GPU leaf-spine; fragmented 8-GPU groups, 64 MB messages, budget-1 \
     prefix covers (maximal over-cover); 20 us/rule install time";
  let rs = rows mode in
  Peel_util.Table.print
    ~header:
      [ "scheme"; "rpc"; "tcam"; "mean CCT"; "link GB"; "waste GB";
        "installs"; "evicts"; "refined%" ]
    (List.map
       (fun r ->
         [
           r.scheme;
           fna r.rpc;
           (if r.capacity = 0 then "-" else string_of_int r.capacity);
           Common.fsec r.mean_cct;
           Printf.sprintf "%.2f" (r.total_bytes /. 1e9);
           Printf.sprintf "%.2f" (r.overcover_bytes /. 1e9);
           string_of_int r.installs;
           string_of_int r.evictions;
           Printf.sprintf "%.0f%%" (100.0 *. r.refined_frac);
         ])
       rs);
  Common.note
    "refined PEEL sheds the static stage's over-cover bytes once installs \
     land (gap shrinks as rpc grows); IPMC avoids all waste but stalls \
     every group on the install path and holds per-group state on every \
     on-tree switch"
