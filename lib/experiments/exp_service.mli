(** E20 (ext): the open-loop multicast-as-a-service control plane —
    {!Peel_ctrl.Service} consuming a two-tenant Poisson event stream,
    swept over per-switch TCAM capacity and admission policy
    (evict vs. deny).  The counter rows are deterministic for the
    fixed seed and guarded in BENCH.json; the wall-clock SLO rows
    (plan-latency percentiles, sustained events/sec) are reported but
    unguarded. *)

type row = {
  capacity : int;
  admission : string;        (** ["evict"] / ["deny"] *)
  events : int;
  creates : int;
  membership_deltas : int;   (** joins + leaves *)
  delta_repeels : int;       (** deltas absorbed by splicing *)
  full_repeels : int;        (** creations + splice fallbacks *)
  splice_fallbacks : int;
  batches : int;
  installs : int;
  evictions : int;
  denials : int;
  compiled_entries : int;
  multicast_chunks : int;
  unicast_chunks : int;
  multicast_link_bytes : float;
  unicast_link_bytes : float;
  max_backlog : int;
  fingerprint : string;      (** SVC005 replay witness *)
}

type slo_row = {
  s_capacity : int;
  s_admission : string;
  s_plan_p50_s : float;
  s_plan_p99_s : float;
  s_plan_max_s : float;
  s_events_per_sec : float;
  s_wall_s : float;
}

val rows : Common.mode -> row list
val slo_rows : Common.mode -> slo_row list
val rows_json : Common.mode -> Peel_util.Json.t
val slo_json : Common.mode -> Peel_util.Json.t
val run : Common.mode -> unit
