open Peel_topology
open Peel_workload
open Peel_collective
module Rng = Peel_util.Rng
module Json = Peel_util.Json

type row = {
  scheme : string;
  fail_at : float;
  reaction : float;
  clean : float;
  failed : float;
  degradation : float;
  replans : int;
}

let fabric () =
  Fabric.leaf_spine ~spines:4 ~leaves:8 ~hosts_per_leaf:2 ~gpus_per_host:2 ()

let spec_for fabric =
  let members = Spec.place fabric (Rng.create 1600) ~scale:16 () in
  let source = List.hd members in
  {
    Spec.id = 0;
    arrival = 0.0;
    source;
    dests = List.filter (fun m -> m <> source) members;
    members;
    bytes = Common.mb 8.0;
  }

(* One seeded failure draw shared by every (scheme, fail_at, reaction)
   combination: draw the duplex ids with connectivity ensured, then put
   them back up — only the schedule takes them down, mid-run. *)
let failure_draw fabric =
  let ids =
    Fabric.fail_random fabric ~rng:(Rng.create 2026) ~tier:`All ~fraction:0.25
      ()
  in
  List.iter (Fabric.recover_link fabric) ids;
  ids

let sweep mode =
  match mode with
  | Common.Quick -> ([ 0.2; 0.6 ], [ 1e-3 ])
  | Common.Full -> ([ 0.1; 0.3; 0.5; 0.7; 0.9 ], [ 0.5e-3; 2e-3; 8e-3 ])

let rows mode =
  let fail_ats, reactions = sweep mode in
  (* Failover cells inject faults (they flip link state on their
     fabric), so the fan-out is per scheme and every cell rebuilds its
     own fabric; placement and failure draws are re-derived from the
     same fixed seeds, so each cell sees the sequential sweep's exact
     spec and link ids.  The inner fail_at x reaction grid stays
     sequential within a cell — it reuses the cell's fabric. *)
  List.concat
    (Common.par_trials
       (fun scheme ->
         let fabric = fabric () in
         let spec = spec_for fabric in
         let ids = failure_draw fabric in
         let clean =
           List.hd (Failover.run fabric scheme [ spec ]).Runner.ccts
         in
      List.concat_map
        (fun fail_at ->
          List.map
            (fun reaction ->
              let faults =
                Peel_sim.Fault.schedule_of_failures ~at:(fail_at *. clean) ids
              in
              let ctrl = { Failover.default_ctrl with reaction } in
              let trace = Peel_sim.Trace.create ~level:Counters () in
              let out =
                Failover.run ~ctrl ~trace ~faults fabric scheme [ spec ]
              in
              (* The schedule leaves its links down past the run's end;
                 restore the shared fabric for the next combination. *)
              List.iter (Fabric.recover_link fabric) ids;
              let failed = List.hd out.Runner.ccts in
              let c = Peel_sim.Trace.counters trace in
              {
                scheme = Failover.scheme_to_string scheme;
                fail_at;
                reaction;
                clean;
                failed;
                degradation = failed /. clean;
                replans = c.Peel_sim.Trace.replans;
              })
            reactions)
        fail_ats)
       Failover.all_schemes)

let rows_json mode =
  Json.Arr
    (List.map
       (fun r ->
         Json.Obj
           [
             ("scheme", Json.str r.scheme);
             ("fail_at", Json.num r.fail_at);
             ("reaction_s", Json.num r.reaction);
             ("clean_cct_s", Json.num r.clean);
             ("failed_cct_s", Json.num r.failed);
             ("degradation", Json.num r.degradation);
             ("replans", Json.int r.replans);
           ])
       (rows mode))

let run mode =
  Common.banner "E16 (ext): mid-run link failure and controller re-peeling";
  Common.note
    "32-GPU leaf-spine, 16-member 8 MB broadcast; 25% of fabric links fail \
     mid-run (seeded draw); detection 500 us";
  let rs = rows mode in
  Peel_util.Table.print
    ~header:
      [ "scheme"; "fail@ (xCCT)"; "reaction"; "clean CCT"; "failed CCT";
        "degradation"; "replans" ]
    (List.map
       (fun r ->
         [
           r.scheme;
           Common.f2 r.fail_at;
           Common.fsec r.reaction;
           Common.fsec r.clean;
           Common.fsec r.failed;
           Common.f2 r.degradation ^ "x";
           string_of_int r.replans;
         ])
       rs);
  Common.note
    "PEEL re-peels around the cut (replans > 0); ring and tree fall back to \
     per-receiver unicast repairs from the source"
