open Peel_topology
open Peel_workload
open Peel_ctrl
module Rng = Peel_util.Rng
module Json = Peel_util.Json

type row = {
  events : int;
  creates : int;
  groups_held : int;
  cache_hits : int;
  cache_misses : int;
  installs : int;
  evictions : int;
  batches : int;
  compiled_entries : int;
  max_backlog : int;
  fingerprint : string;
  fingerprint_jobs4 : string;
  fingerprint_nocache : string;
}

type slo_row = {
  s_events : int;
  s_events_per_sec : float;
  s_wall_s : float;
  s_peak_heap_mwords : float;
  s_cache_hit_rate : float;
  s_ref_events_per_sec : float;
  s_ref_wall_s : float;
  s_speedup : float;
  s_ref_fingerprint_matches : bool;
}

let seed = 4200
let capacity = 1024

let fabric () = Fabric.leaf_spine ~spines:4 ~leaves:8 ~hosts_per_leaf:4 ()

(* Long-hold tenants: groups effectively never depart, so the live
   population ramps linearly with the event count — the create-heavy
   regime the arena + memo fast path is built for.  The aligned 3-GPU
   tenant dominates arrivals; the fragmented 8-GPU tenant keeps the
   prefix covers and the TCAM honest. *)
let tenants () =
  [
    Stream.tenant ~rate:4000.0 ~scale:3 ~bytes:(Common.mb 1.0) ~hold:1e6
      ~churn:5e-4 ~sends:5e-4 ();
    Stream.tenant ~rate:100.0 ~scale:8 ~bytes:(Common.mb 4.0) ~hold:1e6
      ~churn:5e-4 ~sends:1e-3 ~fragmentation:0.25 ();
  ]

(* The headline cell crosses 10^6 live groups (~0.88 creates/event).
   Full mode adds a half-scale ramp point. *)
let events_for mode =
  match mode with
  | Common.Quick -> [ 1_200_000 ]
  | Common.Full -> [ 300_000; 1_200_000 ]

let stream () = Stream.create (fabric ()) (Rng.create seed) ~tenants:(tenants ()) ()

let serve ?(use_cache = true) ~jobs events =
  let cfg = { Service.default_config with Service.capacity; use_cache } in
  Service.run ~cfg ~jobs (fabric ()) ~events (stream ())

(* One scale cell: the jobs=1 cached run carries the SLO numbers; a
   jobs=4 replay and a cache-off replay witness the SVC005 and
   cache-neutrality contracts (all three fingerprints are guarded
   columns, so drift in any replay fails the bench guard). *)
let run_cell events =
  let out = serve ~jobs:1 events in
  let heap_mw =
    float_of_int (Gc.quick_stat ()).Gc.top_heap_words /. 1e6
  in
  let out4 = serve ~jobs:4 events in
  let outnc = serve ~use_cache:false ~jobs:1 events in
  let s = out.Service.o_slo in
  let row =
    {
      events;
      creates = s.Service.creates;
      groups_held = s.Service.groups_live;
      cache_hits = s.Service.cache_hits;
      cache_misses = s.Service.cache_misses;
      installs = s.Service.installs;
      evictions = s.Service.evictions;
      batches = s.Service.batches;
      compiled_entries = s.Service.compiled_entries;
      max_backlog = s.Service.max_backlog;
      fingerprint = out.Service.o_fingerprint;
      fingerprint_jobs4 = out4.Service.o_fingerprint;
      fingerprint_nocache = outnc.Service.o_fingerprint;
    }
  in
  let hit_rate =
    let total = s.Service.cache_hits + s.Service.cache_misses in
    if total = 0 then 0.0
    else float_of_int s.Service.cache_hits /. float_of_int total
  in
  (row, s.Service.events_per_sec, s.Service.wall_s, heap_mw, hit_rate)

(* The PR 8 reference implementation over the same stream parameters
   and event count — the denominator of the headline speedup.  Kept
   out of the row cells so the bench guard (which only recomputes
   guarded rows) never pays for the slow baseline. *)
let run_ref events =
  let cfg = { Service_ref.default_config with Service_ref.capacity } in
  let out = Service_ref.run ~cfg ~jobs:1 (fabric ()) ~events (stream ()) in
  let s = out.Service_ref.o_slo in
  (s.Service_ref.events_per_sec, s.Service_ref.wall_s,
   out.Service_ref.o_fingerprint)

let cells_cache :
    (Common.mode * (row * float * float * float * float) list) list ref =
  ref []

let cells mode =
  match List.assoc_opt mode !cells_cache with
  | Some cs -> cs
  | None ->
      let cs = List.map run_cell (events_for mode) in
      cells_cache := (mode, cs) :: !cells_cache;
      cs

let ref_cache : (Common.mode * (float * float * string) list) list ref = ref []

let ref_cells mode =
  match List.assoc_opt mode !ref_cache with
  | Some cs -> cs
  | None ->
      let cs = List.map run_ref (events_for mode) in
      ref_cache := (mode, cs) :: !ref_cache;
      cs

let rows mode = List.map (fun (r, _, _, _, _) -> r) (cells mode)

let slo_rows mode =
  List.map2
    (fun (r, eps, wall, heap_mw, hit_rate) (ref_eps, ref_wall, ref_fp) ->
      {
        s_events = r.events;
        s_events_per_sec = eps;
        s_wall_s = wall;
        s_peak_heap_mwords = heap_mw;
        s_cache_hit_rate = hit_rate;
        s_ref_events_per_sec = ref_eps;
        s_ref_wall_s = ref_wall;
        s_speedup = (if ref_eps > 0.0 then eps /. ref_eps else 0.0);
        s_ref_fingerprint_matches = String.equal r.fingerprint ref_fp;
      })
    (cells mode) (ref_cells mode)

let rows_json mode =
  Json.Arr
    (List.map
       (fun r ->
         Json.Obj
           [
             ("events", Json.int r.events);
             ("creates", Json.int r.creates);
             ("groups_held", Json.int r.groups_held);
             ("cache_hits", Json.int r.cache_hits);
             ("cache_misses", Json.int r.cache_misses);
             ("rule_installs", Json.int r.installs);
             ("evictions", Json.int r.evictions);
             ("compile_batches", Json.int r.batches);
             ("compiled_entries", Json.int r.compiled_entries);
             ("max_backlog", Json.int r.max_backlog);
             ("fingerprint", Json.str r.fingerprint);
             ("fingerprint_jobs4", Json.str r.fingerprint_jobs4);
             ("fingerprint_nocache", Json.str r.fingerprint_nocache);
           ])
       (rows mode))

let slo_json mode =
  Json.Arr
    (List.map
       (fun s ->
         Json.Obj
           [
             ("events", Json.int s.s_events);
             ("events_per_sec", Json.num s.s_events_per_sec);
             ("wall_s", Json.num s.s_wall_s);
             ("peak_heap_mwords", Json.num s.s_peak_heap_mwords);
             ("cache_hit_rate", Json.num s.s_cache_hit_rate);
             ("ref_events_per_sec", Json.num s.s_ref_events_per_sec);
             ("ref_wall_s", Json.num s.s_ref_wall_s);
             ("speedup_vs_ref", Json.num s.s_speedup);
             ("ref_fingerprint_matches", Json.Bool s.s_ref_fingerprint_matches);
           ])
       (slo_rows mode))

let run mode =
  Common.banner "E22: million-group service fast path";
  Common.note
    "32-endpoint leaf-spine; two long-hold Poisson tenants ramp the live \
     population past 10^6 groups; arena-backed group store + (source, \
     member-set) peel/plan/bound memos vs the PR 8 reference \
     implementation on the byte-identical stream";
  let rs = rows mode in
  Peel_util.Table.print
    ~header:
      [ "events"; "creates"; "held"; "hits"; "misses"; "installs"; "evicts";
        "entries"; "fingerprint" ]
    (List.map
       (fun r ->
         [
           string_of_int r.events;
           string_of_int r.creates;
           string_of_int r.groups_held;
           string_of_int r.cache_hits;
           string_of_int r.cache_misses;
           string_of_int r.installs;
           string_of_int r.evictions;
           string_of_int r.compiled_entries;
           r.fingerprint;
         ])
       rs);
  List.iter
    (fun r ->
      if r.fingerprint_jobs4 <> r.fingerprint then
        Common.note "WARNING: jobs=4 replay fingerprint diverged (SVC005)";
      if r.fingerprint_nocache <> r.fingerprint then
        Common.note "WARNING: cache-off replay fingerprint diverged")
    rs;
  Common.note
    "throughput vs the PR 8 reference service (wall-clock; \
     machine-dependent, unguarded)";
  Peel_util.Table.print
    ~header:
      [ "events"; "events/s"; "ref events/s"; "speedup"; "hit rate";
        "peak heap"; "ref fp ok" ]
    (List.map
       (fun s ->
         [
           string_of_int s.s_events;
           Printf.sprintf "%.0f" s.s_events_per_sec;
           Printf.sprintf "%.0f" s.s_ref_events_per_sec;
           Printf.sprintf "%.2fx" s.s_speedup;
           Printf.sprintf "%.3f" s.s_cache_hit_rate;
           Printf.sprintf "%.0f Mw" s.s_peak_heap_mwords;
           string_of_bool s.s_ref_fingerprint_matches;
         ])
       (slo_rows mode));
  Common.note
    "the arena + memo fast path turns the create-heavy regime into cache \
     hits (one full peel per distinct (source, member set)); the \
     reference recomputes every peel, scans for eviction victims and \
     filters the pending queue per departure"
