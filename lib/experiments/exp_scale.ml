open Peel_topology
open Peel_workload
module Rng = Peel_util.Rng
module Json = Peel_util.Json
module Scheme = Peel_collective.Scheme
module Par = Peel_collective.Par
module Paths = Peel_collective.Paths
module Soa = Peel_sim.Soa
module Shard = Peel_sim.Shard

type row = {
  k : int;
  gpus : int;
  scheme : Scheme.t;
  mean : float;
  p99 : float;
  events : int;
  windows : int;
  parallelism : float;
}

let schemes = [ Scheme.Ring; Scheme.Btree; Scheme.Optimal; Scheme.Peel ]

let fabric_for k = Fabric.fat_tree ~k ~hosts_per_tor:4 ~gpus_per_host:8 ()

let ks_for = function Common.Quick -> [ 16; 32 ] | Common.Full -> [ 16; 32; 64 ]

(* Deterministic window-parallelism of a sharded run: total events over
   the critical path (the per-window maximum across shards, summed).
   This is what the barrier protocol can exploit on a given workload —
   a machine-independent ceiling on the wall-clock speedup, measurable
   even on a single-core host. *)
let window_parallelism (r : Shard.result) =
  if Array.length r.Shard.r_audit = 0 then 1.0
  else begin
    let crit = Hashtbl.create 64 in
    Array.iter
      (fun (a : Shard.audit_record) ->
        let cur = Option.value (Hashtbl.find_opt crit a.Shard.a_window) ~default:0 in
        Hashtbl.replace crit a.Shard.a_window (max cur a.Shard.a_events))
      r.Shard.r_audit;
    let path = Hashtbl.fold (fun _ m acc -> acc + m) crit 0 in
    if path = 0 then 1.0 else float_of_int r.Shard.r_events /. float_of_int path
  end

let workload fabric mode =
  let n = Common.trials mode ~full:20 in
  Spec.poisson_broadcasts fabric (Rng.create 100) ~n ~scale:512
    ~bytes:(Common.mb 64.) ~load:0.3 ()

let min_chunk_bytes flows =
  let m =
    Array.fold_left
      (fun acc (f : Soa.flow) -> Float.min acc f.Soa.f_chunk_bytes)
      infinity flows
  in
  if Float.is_finite m then m else 1.0

(* Flatten with a shared path cache (the BFS over a k=32 graph dwarfs
   the event loop, and the schemes query mostly the same sources), then
   execute on 4 shards.  The sharded engine is bit-identical for every
   jobs value, so these rows are deterministic no matter how the
   harness is parallelized — which is what lets the bench guard pin
   them. *)
let compute mode ks =
  List.concat_map
    (fun k ->
      let fabric = fabric_for k in
      let cs = workload fabric mode in
      let gpus = Fabric.num_endpoints fabric in
      let paths = Paths.create ~ecmp:true fabric in
      let links = Soa.links_of_graph (Fabric.graph fabric) in
      List.map
        (fun scheme ->
          let flows = Par.flatten fabric paths ~chunks:8 scheme cs in
          let sharding =
            Soa.shard fabric ~jobs:4 ~min_bytes:(min_chunk_bytes flows)
          in
          let r = Shard.run ~audit:true (Shard.plan ~links ~sharding flows) in
          let s = Peel_util.Stats.summarize (Array.to_list r.Shard.r_ccts) in
          {
            k;
            gpus;
            scheme;
            mean = s.Peel_util.Stats.mean;
            p99 = s.Peel_util.Stats.p99;
            events = r.Shard.r_events;
            windows = r.Shard.r_windows;
            parallelism = window_parallelism r;
          })
        schemes)
    ks

let rows_json mode =
  Json.Arr
    (List.map
       (fun r ->
         Json.Obj
           [
             ("k", Json.int r.k);
             ("gpus", Json.int r.gpus);
             ("scheme", Json.str (Scheme.to_string r.scheme));
             ("mean", Json.num r.mean);
             ("p99", Json.num r.p99);
             ("events", Json.int r.events);
             ("windows", Json.int r.windows);
             ("parallelism", Json.num r.parallelism);
           ])
       (compute mode (ks_for mode)))

(* Wall-clock of the event loop alone (flatten is hoisted out — its
   path BFS dwarfs the engine and is identical at every jobs count) at
   jobs=1 vs jobs=4, after a warmup run of each plan.  Machine-
   dependent, so this section is recorded in BENCH.json but NOT
   guarded: on a single-core host the barrier overhead makes jobs=4
   SLOWER regardless of the window parallelism above — the
   deterministic [parallelism] column is the portable capability
   number. *)
let speedup mode =
  let k = List.fold_left max 0 (ks_for mode) in
  let fabric = fabric_for k in
  let cs = workload fabric mode in
  let paths = Paths.create ~ecmp:true fabric in
  let flows = Par.flatten fabric paths ~chunks:8 Scheme.Btree cs in
  let links = Soa.links_of_graph (Fabric.graph fabric) in
  let min_bytes = min_chunk_bytes flows in
  let time jobs =
    let sharding = Soa.shard fabric ~jobs ~min_bytes in
    let plan = Shard.plan ~links ~sharding flows in
    ignore (Shard.run plan);
    let t0 = Unix.gettimeofday () in
    let r = Shard.run plan in
    (Unix.gettimeofday () -. t0, r)
  in
  let w1, r1 = time 1 in
  let wn, rn = time 4 in
  assert (r1.Shard.r_fingerprint = rn.Shard.r_fingerprint);
  (k, w1, wn, r1.Shard.r_events)

let speedup_json mode =
  let k, w1, wn, events = speedup mode in
  Json.Obj
    [
      ("k", Json.int k);
      ("scheme", Json.str (Scheme.to_string Scheme.Btree));
      ("events", Json.int events);
      ("wall_s_jobs1", Json.num w1);
      ("wall_s_jobs4", Json.num wn);
      ("speedup", Json.num (if wn > 0.0 then w1 /. wn else 1.0));
      ("host_cores", Json.int (Domain.recommended_domain_count ()));
    ]

let run mode =
  Common.banner
    "E19: sharded-engine scale sweep (fat-trees beyond fig6, 512-GPU groups, 64 MB)";
  let ks = ks_for mode in
  let rows = compute mode ks in
  Peel_util.Table.print
    ~header:[ "k"; "gpus"; "scheme"; "mean"; "p99"; "events"; "windows"; "parallelism" ]
    (List.map
       (fun r ->
         [
           string_of_int r.k;
           string_of_int r.gpus;
           Scheme.to_string r.scheme;
           Common.fsec r.mean;
           Common.fsec r.p99;
           string_of_int r.events;
           string_of_int r.windows;
           Common.f2 r.parallelism;
         ])
       rows);
  let k, w1, wn, events = speedup mode in
  Common.note
    (Printf.sprintf
       "k=%d tree event loop: %.4f s at jobs=1, %.4f s at jobs=4 (%.2fx, %d events, %d host core(s))"
       k w1 wn
       (if wn > 0.0 then w1 /. wn else 1.0)
       events
       (Domain.recommended_domain_count ()))
