open Peel_topology
open Peel_workload
module Rng = Peel_util.Rng
module Json = Peel_util.Json
module Compile = Peel_compile.Compile
module Tcam = Peel_ctrl.Tcam

type row = {
  capacity : int;
  batch : int;
  exact_groups : int;
  dedup_groups : int;
  agg_groups : int;
  agg_max_entries : int;
  agg_merges : int;
  agg_waste : int;
}

(* A 16-ary fat-tree kept light on endpoints: 8 ToRs/pod (3-bit ToR
   space), 16 pods (4-bit pod space), 512 GPUs. *)
let fabric () = Fabric.fat_tree ~k:16 ~hosts_per_tor:2 ~gpus_per_host:2 ()

(* Budgets start at 4: sound merging preserves the union of installed
   blocks exactly, and a maximally sparse 3-bit ToR table (alternating
   singletons, no complete sibling pair) bottoms out at 4 entries. *)
let batch_size = function Common.Quick -> 24 | Common.Full -> 64
let capacities = function Common.Quick -> [ 4; 8 ] | Common.Full -> [ 4; 6; 8; 12 ]

(* One seeded arrival sequence of fragmented 16-GPU groups, shared by
   every capacity cell. *)
let batch_for fabric mode =
  let rng = Rng.create 1800 in
  List.init (batch_size mode) (fun gid ->
      let members = Spec.place fabric rng ~scale:16 ~fragmentation:0.6 () in
      let source = List.hd members in
      let dests = List.filter (fun m -> m <> source) members in
      (gid, Peel.plan fabric ~source ~dests))

(* Baseline: one exact entry per group per on-path switch (the §3.3
   refined stage generalized to a whole batch).  Logical switch ids:
   0 = core tier, 1+pod = that pod's aggregation tier.  Admission
   stops at the first group that no longer fits everywhere. *)
let exact_sustained fabric ~capacity batch =
  let tcam = Tcam.create ~capacity ~policy:Tcam.Lru in
  let rec admit count = function
    | [] -> count
    | (gid, (plan : Peel.Plan.t)) :: rest ->
        let entry =
          Peel.Dataplane.exact_entry fabric ~group:gid ~members:plan.Peel.Plan.dests
        in
        let switches =
          0
          :: List.map
               (fun (pod, _) -> 1 + pod)
               entry.Peel.Dataplane.agg_ports
        in
        let ok =
          List.for_all
            (fun switch ->
              Tcam.install_strict tcam ~now:0.0 ~switch ~group:gid)
            switches
        in
        if ok then admit (count + 1) rest else count
  in
  admit 0 batch

let prefix n l = List.filteri (fun i _ -> i < n) l

(* Largest batch prefix whose compiled tables fit the budget.  Dedup
   only grows tables, so the first over-budget prefix ends the scan;
   aggregation thrives on density (a fuller identifier space has more
   complete sibling pairs to collapse), so every prefix is tried and
   the best kept. *)
let dedup_sustained fabric ~capacity batch =
  let rec scan i best =
    if i > List.length batch then best
    else
      let t = Compile.compile ~capacity fabric (prefix i batch) in
      if Compile.fits t then scan (i + 1) i else best
  in
  scan 1 0

let agg_sustained fabric ~capacity batch =
  let n = List.length batch in
  let rec scan i best =
    if i > n then best
    else
      let t = Compile.compile ~capacity ~aggregate:true fabric (prefix i batch) in
      scan (i + 1) (if Compile.fits t then Some (i, t) else best)
  in
  match scan 1 None with
  | None -> (0, 0, 0, 0)
  | Some (i, t) ->
      let waste =
        List.fold_left
          (fun acc (gid, _) ->
            acc + List.length (Compile.group_waste fabric t ~group:gid))
          0 (prefix i batch)
      in
      (i, Compile.max_entries t, t.Compile.merges, waste)

let rows mode =
  let fabric = fabric () in
  let batch = batch_for fabric mode in
  let n = batch_size mode in
  Common.par_trials
    (fun capacity ->
      let exact_groups = exact_sustained fabric ~capacity batch in
      let dedup_groups = dedup_sustained fabric ~capacity batch in
      let agg_groups, agg_max_entries, agg_merges, agg_waste =
        agg_sustained fabric ~capacity batch
      in
      {
        capacity;
        batch = n;
        exact_groups;
        dedup_groups;
        agg_groups;
        agg_max_entries;
        agg_merges;
        agg_waste;
      })
    (capacities mode)

let rows_json mode =
  Json.Arr
    (List.map
       (fun r ->
         Json.Obj
           [
             ("tcam_capacity", Json.int r.capacity);
             ("batch", Json.int r.batch);
             ("exact_groups", Json.int r.exact_groups);
             ("dedup_groups", Json.int r.dedup_groups);
             ("agg_groups", Json.int r.agg_groups);
             ("agg_max_entries", Json.int r.agg_max_entries);
             ("agg_merges", Json.int r.agg_merges);
             ("agg_waste_racks", Json.int r.agg_waste);
           ])
       (rows mode))

let run mode =
  Common.banner
    "E18: rule compiler — concurrent groups sustained per TCAM budget";
  Common.note
    "512-GPU 16-ary fat-tree; fragmented 16-GPU groups; exact per-group \
     installs vs compiled (dedup) vs compiled + cross-group aggregation";
  let rs = rows mode in
  Peel_util.Table.print
    ~header:
      [ "tcam"; "offered"; "exact"; "dedup"; "agg"; "agg max"; "merges";
        "waste racks" ]
    (List.map
       (fun r ->
         [
           string_of_int r.capacity;
           string_of_int r.batch;
           string_of_int r.exact_groups;
           string_of_int r.dedup_groups;
           string_of_int r.agg_groups;
           string_of_int r.agg_max_entries;
           string_of_int r.agg_merges;
           string_of_int r.agg_waste;
         ])
       rs);
  Common.note
    "exact installs saturate the shared core tier at `tcam` groups; \
     deduped compiled tables share each static rule across every owner; \
     aggregation folds sibling/nested blocks to stay within budget, \
     paying waste racks instead of entries"
