open Peel_workload
open Peel_collective
module Rng = Peel_util.Rng

type row = {
  loss_rate : float;
  scheme : string;
  mean : float;
  p99 : float;
  retransmissions_per_collective : float;
}

let compute mode =
  let fabric = Common.fig5_fabric () in
  let n = Common.trials mode ~full:30 in
  let cs =
    Spec.poisson_broadcasts fabric (Rng.create 900) ~n ~scale:64
      ~bytes:(Common.mb 32.) ~load:0.3 ()
  in
  List.concat_map
    (fun loss_rate ->
      List.map
        (fun scheme ->
          let out, retx =
            if loss_rate = 0.0 then (Runner.run fabric scheme cs, 0)
            else begin
              let loss = Peel_sim.Transfer.loss_model ~seed:77 ~prob:loss_rate () in
              let out = Runner.run ~loss fabric scheme cs in
              (out, loss.Peel_sim.Transfer.retransmissions)
            end
          in
          let s = Runner.summarize out in
          {
            loss_rate;
            scheme = Scheme.to_string scheme;
            mean = s.Peel_util.Stats.mean;
            p99 = s.Peel_util.Stats.p99;
            retransmissions_per_collective = float_of_int retx /. float_of_int n;
          })
        [ Scheme.Peel; Scheme.Ring ])
    [ 0.0; 1e-4; 1e-3; 1e-2 ]

let run mode =
  Common.banner "E13 (ext): chunk loss and selective-repeat recovery";
  Common.note "64-GPU 32 MB Broadcasts at 30% load; RTO 100 us";
  let rows = compute mode in
  Peel_util.Table.print
    ~header:[ "loss rate"; "scheme"; "mean CCT"; "p99 CCT"; "retx/collective" ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%.0e" r.loss_rate;
           r.scheme;
           Common.fsec r.mean;
           Common.fsec r.p99;
           Printf.sprintf "%.1f" r.retransmissions_per_collective;
         ])
       rows);
  Common.note
    "random loss is repaired hop-locally on every scheme (selective repeat at \
     the lossy edge); only down links trigger end-to-end repairs from the source"
