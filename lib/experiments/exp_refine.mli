(** E17: the two-stage refinement control plane (§3.3) under group
    churn — over-cover bytes and CCT vs. controller install latency
    and per-switch TCAM budget, PEEL-static vs. PEEL-refined vs.
    per-group IPMC on one seeded group schedule. *)

type row = {
  scheme : string;
  rpc : float;       (** nan where not applicable *)
  capacity : int;    (** 0 where not applicable *)
  mean_cct : float;
  total_bytes : float;      (** all link-bytes reserved *)
  overcover_bytes : float;  (** bytes landed on memberless racks *)
  installs : int;
  evictions : int;
  refined_frac : float;     (** chunks released on exact rules *)
}

val rows : Common.mode -> row list
val rows_json : Common.mode -> Peel_util.Json.t
val run : Common.mode -> unit
