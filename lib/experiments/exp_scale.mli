(** E19: scale sweep on the conservative sharded engine.

    Extends the fig6 story past the paper's 1024-GPU fat-tree: CCT of
    the static schemes on k=16/32 (Quick) and k=64 (Full) fat-trees,
    executed on {!Peel_collective.Par} with window audits on.  Each row
    also reports the run's {e window parallelism} — total events over
    the barrier-window critical path — a deterministic, machine-
    independent ceiling on the wall-clock speedup the sharded engine
    can reach on that workload.

    The CCT/parallelism rows are bit-deterministic (the sharded engine
    is jobs-invariant) and guarded by [bench guard]; the measured
    jobs=1 vs jobs=4 wall-clock section is machine-dependent and
    recorded unguarded. *)

val rows_json : Common.mode -> Peel_util.Json.t
(** The deterministic sweep rows (the BENCH.json ["scale"] section). *)

val speedup_json : Common.mode -> Peel_util.Json.t
(** Measured wall-clock at jobs=1 vs jobs=4 on the largest fabric of
    the mode (the BENCH.json ["scale_speedup"] section, not guarded). *)

val run : Common.mode -> unit
(** Print the sweep table and the measured-speedup note. *)
