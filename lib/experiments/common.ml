open Peel_topology

type mode = Quick | Full

let trials mode ~full =
  match mode with Full -> full | Quick -> max 4 (full / 8)

let par_trials f cells = Peel_util.Pool.par_map f cells

let fig5_fabric () = Fabric.fat_tree ~k:8 ~hosts_per_tor:4 ~gpus_per_host:8 ()

let fig7_fabric () =
  Fabric.leaf_spine ~spines:16 ~leaves:48 ~hosts_per_leaf:2 ~gpus_per_host:8 ()

let fig1_fabric () = Fabric.leaf_spine ~spines:2 ~leaves:2 ~hosts_per_leaf:4 ()

let mb x = x *. 1e6

let banner title =
  Printf.printf "\n==== %s ====\n%!" title

let note s = Printf.printf "  %s\n%!" s

let summarize_run ?cc ?controller fabric scheme collectives =
  (* Debug-mode assertions (PEEL_CHECK=1): lint the fabric and the
     first collective's whole scenario (tree, plan, rules, schedules)
     before burning simulation time on a malformed input. *)
  if Peel_check.enabled () then begin
    Peel_check.assert_valid ~what:"experiment fabric"
      (Peel_check.Check_sim.check_fabric fabric);
    match collectives with
    | [] -> ()
    | (c : Peel_workload.Spec.collective) :: _ ->
        Peel_check.assert_valid ~what:"experiment scenario"
          (Peel_check.check_scenario fabric ~source:c.Peel_workload.Spec.source
             ~dests:c.Peel_workload.Spec.dests)
  end;
  Peel_collective.Runner.summarize
    (Peel_collective.Runner.run ?cc ?controller fabric scheme collectives)

let fsec = Peel_util.Table.fsec
let f2 x = Printf.sprintf "%.2f" x

let micro_table_rows results =
  List.map
    (fun (name, ns) ->
      [
        name;
        (match ns with
        | Some ns when Float.is_finite ns -> Peel_util.Table.fsec (ns /. 1e9)
        | _ -> "n/a");
      ])
    results
