open Peel_topology
open Peel_workload
module Rng = Peel_util.Rng
module Scheme = Peel_collective.Scheme

type row = {
  failure_pct : int;
  scheme : Scheme.t;
  mean : float;
  p99 : float;
}

let schemes = [ Scheme.Ring; Scheme.Btree; Scheme.Peel ]

(* Each failure draw hosts a Poisson stream of 64-GPU Broadcasts, so the
   capacity lost to failed spine-leaf links shows up as queueing — the
   paper repeats the broadcast under each failure level. *)
let per_draw = 10

let compute mode pcts =
  let draws = Common.trials mode ~full:12 in
  (* Failure cells mutate link state ([fail_random] / [restore_all]),
     so — unlike the other sweeps — each cell builds its own fabric.
     The per-cell rng seed depends only on the failure level, so the
     draws are the ones the sequential sweep made. *)
  List.concat_map
    (fun failure_pct -> List.map (fun scheme -> (failure_pct, scheme)) schemes)
    pcts
  |> Common.par_trials (fun (failure_pct, scheme) ->
         let fabric = Common.fig7_fabric () in
         let g = Fabric.graph fabric in
         let rng = Rng.create (1000 + failure_pct) in
         let ccts =
           List.concat
             (List.init draws (fun _ ->
                  Graph.restore_all g;
                  let _ =
                    Fabric.fail_random fabric ~rng ~tier:`All
                      ~fraction:(float_of_int failure_pct /. 100.0)
                      ()
                  in
                  let cs =
                    Spec.poisson_broadcasts fabric rng ~n:per_draw ~scale:64
                      ~bytes:(Common.mb 8.) ~load:0.5 ()
                  in
                  let out = Peel_collective.Runner.run fabric scheme cs in
                  out.Peel_collective.Runner.ccts))
         in
         let s = Peel_util.Stats.summarize ccts in
         {
           failure_pct;
           scheme;
           mean = s.Peel_util.Stats.mean;
           p99 = s.Peel_util.Stats.p99;
         })

let run mode =
  Common.banner "E6 / Figure 7: robustness to failures (asymmetric leaf-spine)";
  Common.note
    "16x48 leaf-spine, 768 GPUs; streams of 64-GPU 8 MB Broadcasts; random spine-leaf failures";
  let pcts = [ 1; 2; 4; 8; 10 ] in
  let rows = compute mode pcts in
  let find pct scheme =
    List.find (fun r -> r.failure_pct = pct && r.scheme = scheme) rows
  in
  let table pick label =
    Common.note label;
    Peel_util.Table.print
      ~header:("failures" :: List.map Scheme.to_string schemes)
      (List.map
         (fun pct ->
           Printf.sprintf "%d%%" pct
           :: List.map (fun s -> Common.fsec (pick (find pct s))) schemes)
         pcts)
  in
  table (fun r -> r.mean) "mean CCT:";
  table (fun r -> r.p99) "p99 CCT:";
  let at = find 10 in
  Common.note
    (Printf.sprintf
       "at 10%% failures, PEEL p99 is %.1fx lower than Ring and %.1fx lower than Tree (paper: 3x / 30x)"
       ((at Scheme.Ring).p99 /. (at Scheme.Peel).p99)
       ((at Scheme.Btree).p99 /. (at Scheme.Peel).p99))
