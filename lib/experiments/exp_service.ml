open Peel_topology
open Peel_workload
open Peel_ctrl
module Rng = Peel_util.Rng
module Json = Peel_util.Json

type row = {
  capacity : int;
  admission : string;
  events : int;
  creates : int;
  membership_deltas : int;   (* joins + leaves *)
  delta_repeels : int;
  full_repeels : int;
  splice_fallbacks : int;
  batches : int;
  installs : int;
  evictions : int;
  denials : int;
  compiled_entries : int;
  multicast_chunks : int;
  unicast_chunks : int;
  multicast_link_bytes : float;
  unicast_link_bytes : float;
  max_backlog : int;
  fingerprint : string;
}

type slo_row = {
  s_capacity : int;
  s_admission : string;
  s_plan_p50_s : float;
  s_plan_p99_s : float;
  s_plan_max_s : float;
  s_events_per_sec : float;
  s_wall_s : float;
}

let seed = 2000

let fabric () =
  Fabric.leaf_spine ~spines:4 ~leaves:8 ~hosts_per_leaf:4 ()

(* A mixed open-loop tenant population: a high-rate small-group tenant
   (collective-style racks-aligned placement) plus a lower-rate
   fragmented tenant whose scattered groups stress the prefix cover
   and the TCAM. *)
let tenants () =
  [
    Stream.tenant ~rate:400.0 ~scale:6 ~bytes:(Common.mb 1.0) ~hold:0.5
      ~churn:80.0 ~sends:40.0 ();
    Stream.tenant ~rate:150.0 ~scale:12 ~bytes:(Common.mb 4.0) ~hold:0.3
      ~churn:30.0 ~sends:20.0 ~fragmentation:0.5 ();
  ]

let events_for mode =
  match mode with Common.Quick -> 2_000 | Common.Full -> 20_000

let sweep mode =
  let admissions = [ Service.Evict; Service.Deny ] in
  let capacities =
    match mode with
    | Common.Quick -> [ 16; 256 ]
    | Common.Full -> [ 8; 16; 64; 256 ]
  in
  List.concat_map
    (fun cap -> List.map (fun adm -> (cap, adm)) admissions)
    capacities

let run_cell mode (capacity, admission) =
  let fabric = fabric () in
  let rng = Rng.create seed in
  let stream = Stream.create fabric rng ~tenants:(tenants ()) () in
  let cfg = { Service.default_config with Service.capacity; admission } in
  let out = Service.run ~cfg fabric ~events:(events_for mode) stream in
  let s = out.Service.o_slo in
  let row =
    {
      capacity;
      admission = Service.admission_to_string admission;
      events = s.Service.events;
      creates = s.Service.creates;
      membership_deltas = s.Service.joins + s.Service.leaves;
      delta_repeels = s.Service.delta_repeels;
      full_repeels = s.Service.full_repeels;
      splice_fallbacks = s.Service.splice_fallbacks;
      batches = s.Service.batches;
      installs = s.Service.installs;
      evictions = s.Service.evictions;
      denials = s.Service.denials;
      compiled_entries = s.Service.compiled_entries;
      multicast_chunks = s.Service.multicast_chunks;
      unicast_chunks = s.Service.unicast_chunks;
      multicast_link_bytes = s.Service.multicast_link_bytes;
      unicast_link_bytes = s.Service.unicast_link_bytes;
      max_backlog = s.Service.max_backlog;
      fingerprint = out.Service.o_fingerprint;
    }
  in
  let slo =
    {
      s_capacity = capacity;
      s_admission = row.admission;
      s_plan_p50_s = s.Service.plan_p50_s;
      s_plan_p99_s = s.Service.plan_p99_s;
      s_plan_max_s = s.Service.plan_max_s;
      s_events_per_sec = s.Service.events_per_sec;
      s_wall_s = s.Service.wall_s;
    }
  in
  (row, slo)

(* The sweep is expensive and deterministic per mode; cache it so the
   bench writer (rows_json + slo_json) and the guard don't re-run it. *)
let cells_cache : (Common.mode * (row * slo_row) list) list ref = ref []

let cells mode =
  match List.assoc_opt mode !cells_cache with
  | Some cs -> cs
  | None ->
      let cs = Common.par_trials (run_cell mode) (sweep mode) in
      cells_cache := (mode, cs) :: !cells_cache;
      cs

let rows mode = List.map fst (cells mode)
let slo_rows mode = List.map snd (cells mode)

let rows_json mode =
  Json.Arr
    (List.map
       (fun r ->
         Json.Obj
           [
             ("tcam_capacity", Json.int r.capacity);
             ("admission", Json.str r.admission);
             ("events", Json.int r.events);
             ("creates", Json.int r.creates);
             ("membership_deltas", Json.int r.membership_deltas);
             ("delta_repeels", Json.int r.delta_repeels);
             ("full_repeels", Json.int r.full_repeels);
             ("splice_fallbacks", Json.int r.splice_fallbacks);
             ("compile_batches", Json.int r.batches);
             ("rule_installs", Json.int r.installs);
             ("evictions", Json.int r.evictions);
             ("denials", Json.int r.denials);
             ("compiled_entries", Json.int r.compiled_entries);
             ("multicast_chunks", Json.int r.multicast_chunks);
             ("unicast_chunks", Json.int r.unicast_chunks);
             ("multicast_link_bytes", Json.num r.multicast_link_bytes);
             ("unicast_link_bytes", Json.num r.unicast_link_bytes);
             ("max_backlog", Json.int r.max_backlog);
             ("fingerprint", Json.str r.fingerprint);
           ])
       (rows mode))

let slo_json mode =
  Json.Arr
    (List.map
       (fun s ->
         Json.Obj
           [
             ("tcam_capacity", Json.int s.s_capacity);
             ("admission", Json.str s.s_admission);
             ("plan_p50_s", Json.num s.s_plan_p50_s);
             ("plan_p99_s", Json.num s.s_plan_p99_s);
             ("plan_max_s", Json.num s.s_plan_max_s);
             ("events_per_sec", Json.num s.s_events_per_sec);
             ("wall_s", Json.num s.s_wall_s);
           ])
       (slo_rows mode))

let run mode =
  Common.banner
    "E20: open-loop multicast-as-a-service control plane";
  Common.note
    "32-host leaf-spine; two Poisson tenants (6-GPU aligned + 12-GPU \
     fragmented) streaming create/join/leave/send/depart; delta \
     re-peeling with Theorem 2.5 fallback, batched pod-sharded \
     installs, TCAM admission sweep";
  let cs = cells mode in
  Peel_util.Table.print
    ~header:
      [ "tcam"; "admit"; "events"; "deltas"; "spliced"; "full"; "installs";
        "evicts"; "denies"; "mc"; "uc"; "backlog" ]
    (List.map
       (fun (r, _) ->
         [
           string_of_int r.capacity;
           r.admission;
           string_of_int r.events;
           string_of_int r.membership_deltas;
           string_of_int r.delta_repeels;
           string_of_int r.full_repeels;
           string_of_int r.installs;
           string_of_int r.evictions;
           string_of_int r.denials;
           string_of_int r.multicast_chunks;
           string_of_int r.unicast_chunks;
           string_of_int r.max_backlog;
         ])
       cs);
  Common.note "service-side SLOs (wall-clock; machine-dependent, unguarded)";
  Peel_util.Table.print
    ~header:[ "tcam"; "admit"; "plan p50"; "plan p99"; "plan max"; "events/s" ]
    (List.map
       (fun (_, s) ->
         [
           string_of_int s.s_capacity;
           s.s_admission;
           Common.fsec s.s_plan_p50_s;
           Common.fsec s.s_plan_p99_s;
           Common.fsec s.s_plan_max_s;
           Printf.sprintf "%.0f" s.s_events_per_sec;
         ])
       cs);
  Common.note
    "delta re-peeling absorbs nearly every membership change without a \
     full peel; under saturation Evict keeps newcomers on multicast at \
     the cost of displaced groups, Deny protects the installed base and \
     sheds newcomers to unicast"
