open Peel_workload
module Rng = Peel_util.Rng
module Scheme = Peel_collective.Scheme

type row = {
  scale : int;
  scheme : Scheme.t;
  mean : float;
  p99 : float;
}

let compute mode scales =
  let fabric = Common.fig5_fabric () in
  let n = Common.trials mode ~full:60 in
  List.concat_map
    (fun scale -> List.map (fun scheme -> (scale, scheme)) Scheme.all)
    scales
  |> Common.par_trials (fun (scale, scheme) ->
         let cs =
           Spec.poisson_broadcasts fabric (Rng.create 100) ~n ~scale
             ~bytes:(Common.mb 64.) ~load:0.3 ()
         in
         let s = Common.summarize_run fabric scheme cs in
         { scale; scheme; mean = s.Peel_util.Stats.mean; p99 = s.Peel_util.Stats.p99 })

let scales_for mode =
  match mode with
  | Common.Full -> [ 32; 64; 128; 256; 512; 1024 ]
  | Common.Quick -> [ 32; 256 ]

let run mode =
  Common.banner "E5 / Figure 6: CCT vs scale (64 MB messages, 30% load)";
  let scales = scales_for mode in
  let rows = compute mode scales in
  let find scale scheme =
    List.find (fun r -> r.scale = scale && r.scheme = scheme) rows
  in
  let table pick label =
    Common.note label;
    Peel_util.Table.print
      ~header:("scale" :: List.map Scheme.to_string Scheme.all)
      (List.map
         (fun scale ->
           string_of_int scale
           :: List.map (fun s -> Common.fsec (pick (find scale s))) Scheme.all)
         scales)
  in
  table (fun r -> r.mean) "mean CCT:";
  table (fun r -> r.p99) "p99 CCT:";
  if List.mem 256 scales then begin
    let at = find 256 in
    Common.note
      (Printf.sprintf
         "at 256 GPUs, PEEL mean is %.1fx lower than Ring, %.1fx than Tree, %.1fx than Orca (paper: 5x / 13x / 2.5x)"
         ((at Scheme.Ring).mean /. (at Scheme.Peel).mean)
         ((at Scheme.Btree).mean /. (at Scheme.Peel).mean)
         ((at Scheme.Orca).mean /. (at Scheme.Peel).mean))
  end
