(** E21 (extension) — the topology zoo under generalized layer-peeling.

    Sweeps {!Peel_topology.Zoo}'s four generators (plus a symmetric
    fat-tree control) across failure rate and group size, measuring the
    general peel's approximation ratio against the exact-Steiner oracle
    ({!Peel_steiner.Exact.oracle}); counts the per-switch port-set
    rules a salted tree family needs where no pod/ToR prefix structure
    exists; and rides per-epoch link-set swaps ({!Zoo.Reconfig}) on the
    expander classes through the E16 failover machinery, reporting CCT
    degradation and controller re-peels.

    Every section is seeded and deterministic; the Quick-mode record is
    the guarded ["zoo"] section of BENCH.json. *)

type ratio_row = {
  cls : string;  (** topology class, or ["clos-control"] *)
  failure_pct : int;
  group : int;  (** destination count |D| *)
  trials : int;
  measured : int;  (** trials the oracle could afford *)
  mean_ratio : float;
  max_ratio : float;
  optimal_rate : float;  (** fraction of measured trials at ratio 1.0 *)
}

type rules_row = {
  r_cls : string;
  r_trees : int;
  r_switches : int;  (** switches holding at least one replication rule *)
  r_total_rules : int;
  r_max_rules : int;
}

type reconfig_row = {
  c_cls : string;
  c_epochs : int;
  c_swaps : int;  (** individual fail/recover events applied *)
  c_clean : float;
  c_reconf : float;
  c_degradation : float;
  c_replans : int;
}

val ratio_rows : Common.mode -> ratio_row list
(** Deterministic: per-trial seeds derive from (failure, group, index). *)

val rules_rows : unit -> rules_row list
val reconfig_rows : unit -> reconfig_row list

val rows_json : Common.mode -> Peel_util.Json.t
(** All three sections as one object — the BENCH.json ["zoo"] record. *)

val run : Common.mode -> unit
