(** Discrete-event simulation engine.

    A time-ordered queue of thunks.  Events scheduled for the same
    instant run in scheduling order (the heap breaks ties FIFO), which
    — together with the deterministic PRNG — makes every simulation
    bit-reproducible. *)

type t

val create : ?trace:Trace.t -> unit -> t
(** With a [trace] (default {!Trace.null}), the engine maintains the
    trace's [engine_events] count and [engine_max_pending] queue-depth
    high-water mark; an [Off] trace costs nothing. *)

val now : t -> float
(** Current simulation time in seconds; 0.0 before the first event. *)

val schedule : t -> float -> (unit -> unit) -> unit
(** [schedule t at f] runs [f] at absolute time [at].  Raises
    [Invalid_argument] when [at] lies in the past. *)

val schedule_in : t -> float -> (unit -> unit) -> unit
(** Relative variant: [schedule_in t dt f = schedule t (now t +. dt) f]. *)

val run : ?until:float -> t -> unit
(** Drain the event queue (or stop once the next event would exceed
    [until]; remaining events stay queued). *)

val pending : t -> int
(** Events still queued (only non-zero after a bounded [run ~until]). *)

val events_processed : t -> int
(** Total events executed so far, across all [run] calls. *)
