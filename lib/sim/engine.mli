(** Discrete-event simulation engine.

    A time-ordered queue of thunks.  Events scheduled for the same
    instant run in scheduling order (the queue breaks ties FIFO), which
    — together with the deterministic PRNG — makes every simulation
    bit-reproducible.

    Two event-queue backends share that ordering contract: the SoA
    binary heap ({!Peel_util.Pairing_heap}, lowest constants at the
    thousands-of-pending-events scale) and the calendar queue
    ({!Peel_util.Calendar_queue}, O(1) amortized push/pop for the
    10⁷+-event large-fabric runs).  Because both implement the exact
    same total order, backend choice never changes a simulation
    result — only its wall-clock time. *)

type t
(** One event loop: a clock and a time-ordered queue of thunks. *)

val create : ?trace:Trace.t -> ?queue:[ `Heap | `Calendar | `Auto ] -> unit -> t
(** With a [trace] (default {!Trace.null}), the engine maintains the
    trace's [engine_events] count and [engine_max_pending] queue-depth
    high-water mark; an [Off] trace costs nothing.

    [queue] selects the event-queue backend: [`Heap] and [`Calendar]
    force one, [`Auto] starts on the heap and migrates to a calendar
    queue the first time the pending population exceeds 2¹⁵ events
    (order-preserving drain, so results are unchanged).  When [queue]
    is omitted, the [PEEL_CALQUEUE] environment variable picks the
    default: [1]/[cal]/[calendar]/[on] force the calendar,
    [0]/[heap]/[off] force the heap, anything else (or unset) means
    [`Auto]. *)

val queue_kind : t -> [ `Heap | `Calendar ]
(** Backend currently in use (reflects any [`Auto] migration). *)

val now : t -> float
(** Current simulation time in seconds; 0.0 before the first event. *)

val schedule : t -> float -> (unit -> unit) -> unit
(** [schedule t at f] runs [f] at absolute time [at].  Raises
    [Invalid_argument] when [at] lies in the past. *)

val schedule_in : t -> float -> (unit -> unit) -> unit
(** Relative variant: [schedule_in t dt f = schedule t (now t +. dt) f]. *)

val run : ?until:float -> t -> unit
(** Drain the event queue (or stop once the next event would exceed
    [until]; remaining events stay queued). *)

val pending : t -> int
(** Events still queued (only non-zero after a bounded [run ~until]). *)

val events_processed : t -> int
(** Total events executed so far, across all [run] calls. *)
