(** Per-link FIFO transmission state.

    Every directed link is a FIFO server: a chunk reserved at time [t]
    starts transmitting at [max t free], occupies the link for
    [bytes / bandwidth] seconds, and the difference between the two is
    the queueing delay — the congestion signal ECN-style marking keys
    off.  Queues are unbounded (PFC-style lossless fabric: backpressure
    shows up as delay, never as loss). *)

open Peel_topology

type t
(** Mutable per-link state for one run: free times, busy-seconds
    accounting, up/down flags and failure epochs. *)

type reservation = {
  start : float;       (** when the first byte leaves *)
  finish : float;      (** when the last byte leaves (add propagation
                           latency for arrival at the far end) *)
  queue_delay : float; (** start - requested time *)
}

val create : ?trace:Trace.t -> Graph.t -> t
(** With a [trace] (default {!Trace.null}), every reservation emits a
    [Reserve] event carrying its queueing delay and the backlog it
    found; an [Off] trace adds one branch to the hot path. *)

val trace : t -> Trace.t
(** The trace this link state reports into ({!Trace.null} if none). *)

val up : t -> link:int -> bool
(** Whether the directed link is currently up ([Graph.link_up]). *)

val epoch : t -> link:int -> int
(** Failure epoch of a directed link: incremented every time the link
    goes down.  A chunk that reserved at epoch [e] and arrives when the
    epoch differs was in flight across a failure and is lost. *)

val set_link_up : t -> now:float -> duplex:int -> up:bool -> bool
(** Apply a fault-schedule transition to both directions of the duplex
    pair containing [duplex]: flips the graph's link state, bumps both
    epochs on a down transition, and emits a [Link_fail]/[Link_recover]
    trace event stamped [now].  Returns [false] (and does nothing) when
    the pair is already in the requested state. *)

val reserve : t -> link:int -> now:float -> bytes:float -> reservation
(** Raises [Invalid_argument] if the link is down or [bytes <= 0]. *)

val arrival : t -> link:int -> reservation -> float
(** [finish + propagation latency] — when the chunk is fully received
    by the next hop. *)

val backlog : t -> link:int -> now:float -> float
(** Seconds of queued transmission ahead of a reservation made now. *)

val busy_seconds : t -> link:int -> float
(** Cumulative transmission time, for utilization accounting. *)

val utilization : t -> link:int -> horizon:float -> float
(** [busy_seconds / horizon]. *)

val reset : t -> unit
(** Clear all free times, busy accounting and failure state for a
    fresh run on the same graph. *)
