type action = Fail | Recover

type event = { at : float; duplex : int; action : action }

type t = event list

let of_list evs =
  List.iter
    (fun ev ->
      if Float.is_nan ev.at || ev.at < 0.0 || not (Float.is_finite ev.at) then
        invalid_arg "Fault.of_list: event time must be finite and >= 0";
      if ev.duplex < 0 then invalid_arg "Fault.of_list: negative link id")
    evs;
  List.stable_sort (fun a b -> compare a.at b.at) evs

let events t = t

let is_empty t = t = []

let schedule_of_failures ~at ?recover_at ids =
  (match recover_at with
  | Some r when r <= at ->
      invalid_arg "Fault.schedule_of_failures: recovery must follow the failure"
  | _ -> ());
  let fails = List.map (fun duplex -> { at; duplex; action = Fail }) ids in
  let recovers =
    match recover_at with
    | None -> []
    | Some at -> List.map (fun duplex -> { at; duplex; action = Recover }) ids
  in
  of_list (fails @ recovers)

let install engine links t ?(on_event = fun _ -> ()) () =
  List.iter
    (fun ev ->
      Engine.schedule engine ev.at (fun () ->
          let changed =
            Link_state.set_link_up links ~now:ev.at ~duplex:ev.duplex
              ~up:(ev.action = Recover)
          in
          if changed then on_event ev))
    t
