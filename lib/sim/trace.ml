module Json = Peel_util.Json

type level = Off | Counters | Full

type kind =
  | Reserve of { link : int; bytes : float; queue_delay : float; backlog : float }
  | Ecn_mark of { link : int; flow : int; chunk : int }
  | Delivery of { node : int; flow : int; chunk : int }
  | Release of { flow : int; chunk : int; rate : float }
  | Cnp of { flow : int }
  | Rate_cut of { flow : int; rate : float }
  | Guard_hold of { flow : int }
  | Drop of { link : int }
  | Retransmit of { flow : int; node : int }
  | Link_fail of { link : int }
  | Link_recover of { link : int }
  | Replan of { flow : int; cost : int }
  | Rule_install of { group : int; switch : int; rules : int }
  | Refine of { group : int; cost : int }
  | Evict of { group : int; switch : int }

type event = { time : float; kind : kind }

type counters = {
  mutable reservations : int;
  mutable bytes_reserved : float;
  mutable ecn_marks : int;
  mutable deliveries : int;
  mutable releases : int;
  mutable cnps : int;
  mutable rate_cuts : int;
  mutable guard_holds : int;
  mutable drops : int;
  mutable retransmits : int;
  mutable link_fails : int;
  mutable link_recovers : int;
  mutable replans : int;
  mutable rule_installs : int;
  mutable refines : int;
  mutable evictions : int;
  mutable plan_cache_hits : int;
  mutable plan_cache_misses : int;
  mutable engine_events : int;
  mutable engine_max_pending : int;
}

type t = {
  level : level;
  sample_every : int;
  c : counters;
  mutable buf : event array;
  mutable n : int;
  mutable reserve_seen : int;
  mutable skipped : int;
}

let zero_counters () =
  {
    reservations = 0;
    bytes_reserved = 0.0;
    ecn_marks = 0;
    deliveries = 0;
    releases = 0;
    cnps = 0;
    rate_cuts = 0;
    guard_holds = 0;
    drops = 0;
    retransmits = 0;
    link_fails = 0;
    link_recovers = 0;
    replans = 0;
    rule_installs = 0;
    refines = 0;
    evictions = 0;
    plan_cache_hits = 0;
    plan_cache_misses = 0;
    engine_events = 0;
    engine_max_pending = 0;
  }

let create ?(level = Full) ?(sample = 1) () =
  if sample < 1 then invalid_arg "Trace.create: sample >= 1";
  {
    level;
    sample_every = sample;
    c = zero_counters ();
    buf = [||];
    n = 0;
    reserve_seen = 0;
    skipped = 0;
  }

let null = create ~level:Off ()

let enabled t = t.level <> Off
let level t = t.level
let sample t = t.sample_every
let counters t = t.c
let num_events t = t.n
let sampled_out t = t.skipped
let events t = Array.sub t.buf 0 t.n

let push t ev =
  if t.n = Array.length t.buf then begin
    let cap = max 1024 (2 * Array.length t.buf) in
    let buf = Array.make cap ev in
    Array.blit t.buf 0 buf 0 t.n;
    t.buf <- buf
  end;
  t.buf.(t.n) <- ev;
  t.n <- t.n + 1

(* ------------------------------------------------------------------ *)
(* Emitters: check the level first so an Off trace costs one branch.   *)
(* ------------------------------------------------------------------ *)

let reserve t ~time ~link ~bytes ~queue_delay ~backlog =
  if t.level <> Off then begin
    t.c.reservations <- t.c.reservations + 1;
    t.c.bytes_reserved <- t.c.bytes_reserved +. bytes;
    if t.level = Full then begin
      t.reserve_seen <- t.reserve_seen + 1;
      if (t.reserve_seen - 1) mod t.sample_every = 0 then
        push t { time; kind = Reserve { link; bytes; queue_delay; backlog } }
      else t.skipped <- t.skipped + 1
    end
  end

let ecn_mark t ~time ~link ~flow ~chunk =
  if t.level <> Off then begin
    t.c.ecn_marks <- t.c.ecn_marks + 1;
    if t.level = Full then push t { time; kind = Ecn_mark { link; flow; chunk } }
  end

let delivery t ~time ~node ~flow ~chunk =
  if t.level <> Off then begin
    t.c.deliveries <- t.c.deliveries + 1;
    if t.level = Full then push t { time; kind = Delivery { node; flow; chunk } }
  end

let release t ~time ~flow ~chunk ~rate =
  if t.level <> Off then begin
    t.c.releases <- t.c.releases + 1;
    if t.level = Full then push t { time; kind = Release { flow; chunk; rate } }
  end

let cnp t ~time ~flow =
  if t.level <> Off then begin
    t.c.cnps <- t.c.cnps + 1;
    if t.level = Full then push t { time; kind = Cnp { flow } }
  end

let rate_cut t ~time ~flow ~rate =
  if t.level <> Off then begin
    t.c.rate_cuts <- t.c.rate_cuts + 1;
    if t.level = Full then push t { time; kind = Rate_cut { flow; rate } }
  end

let guard_hold t ~time ~flow =
  if t.level <> Off then begin
    t.c.guard_holds <- t.c.guard_holds + 1;
    if t.level = Full then push t { time; kind = Guard_hold { flow } }
  end

let drop t ~time ~link =
  if t.level <> Off then begin
    t.c.drops <- t.c.drops + 1;
    if t.level = Full then push t { time; kind = Drop { link } }
  end

let retransmit t ~time ~flow ~node =
  if t.level <> Off then begin
    t.c.retransmits <- t.c.retransmits + 1;
    if t.level = Full then push t { time; kind = Retransmit { flow; node } }
  end

let link_fail t ~time ~link =
  if t.level <> Off then begin
    t.c.link_fails <- t.c.link_fails + 1;
    if t.level = Full then push t { time; kind = Link_fail { link } }
  end

let link_recover t ~time ~link =
  if t.level <> Off then begin
    t.c.link_recovers <- t.c.link_recovers + 1;
    if t.level = Full then push t { time; kind = Link_recover { link } }
  end

let replan t ~time ~flow ~cost =
  if t.level <> Off then begin
    t.c.replans <- t.c.replans + 1;
    if t.level = Full then push t { time; kind = Replan { flow; cost } }
  end

let rule_install t ~time ~group ~switch ~rules =
  if t.level <> Off then begin
    t.c.rule_installs <- t.c.rule_installs + 1;
    if t.level = Full then push t { time; kind = Rule_install { group; switch; rules } }
  end

let refine t ~time ~group ~cost =
  if t.level <> Off then begin
    t.c.refines <- t.c.refines + 1;
    if t.level = Full then push t { time; kind = Refine { group; cost } }
  end

let evict t ~time ~group ~switch =
  if t.level <> Off then begin
    t.c.evictions <- t.c.evictions + 1;
    if t.level = Full then push t { time; kind = Evict { group; switch } }
  end

let plan_cache t ~hits ~misses =
  if t.level <> Off then begin
    t.c.plan_cache_hits <- t.c.plan_cache_hits + hits;
    t.c.plan_cache_misses <- t.c.plan_cache_misses + misses
  end

let note_engine t ~events =
  if t.level <> Off && events > t.c.engine_events then
    t.c.engine_events <- events

let note_pending t depth =
  if t.level <> Off && depth > t.c.engine_max_pending then
    t.c.engine_max_pending <- depth

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

type link_stats = {
  l_reservations : int;
  l_bytes : float;
  l_ecn_marks : int;
  l_max_backlog : float;
  l_sum_queue_delay : float;
}

let link_stats t ~nlinks =
  let res = Array.make nlinks 0 in
  let bytes = Array.make nlinks 0.0 in
  let marks = Array.make nlinks 0 in
  let maxb = Array.make nlinks 0.0 in
  let sumq = Array.make nlinks 0.0 in
  for i = 0 to t.n - 1 do
    match t.buf.(i).kind with
    | Reserve { link; bytes = b; queue_delay; backlog } when link < nlinks ->
        res.(link) <- res.(link) + 1;
        bytes.(link) <- bytes.(link) +. b;
        sumq.(link) <- sumq.(link) +. queue_delay;
        if backlog > maxb.(link) then maxb.(link) <- backlog
    | Ecn_mark { link; _ } when link < nlinks -> marks.(link) <- marks.(link) + 1
    | _ -> ()
  done;
  Array.init nlinks (fun l ->
      {
        l_reservations = res.(l);
        l_bytes = bytes.(l);
        l_ecn_marks = marks.(l);
        l_max_backlog = maxb.(l);
        l_sum_queue_delay = sumq.(l);
      })

type flow_stats = {
  f_flow : int;
  f_releases : int;
  f_deliveries : int;
  f_cnps : int;
  f_rate_cuts : int;
  f_guard_holds : int;
  f_retransmits : int;
  f_replans : int;
  f_first_delivery : float;
  f_last_delivery : float;
  f_mean_chunk_latency : float;
  f_max_chunk_latency : float;
}

type flow_acc = {
  mutable releases : int;
  mutable deliveries : int;
  mutable cnps : int;
  mutable rate_cuts : int;
  mutable guard_holds : int;
  mutable retransmits : int;
  mutable replans : int;
  mutable first : float;
  mutable last : float;
  mutable lat_sum : float;
  mutable lat_max : float;
  mutable lat_n : int;
}

let flow_stats t =
  let accs : (int, flow_acc) Hashtbl.t = Hashtbl.create 16 in
  let acc flow =
    match Hashtbl.find_opt accs flow with
    | Some a -> a
    | None ->
        let a =
          {
            releases = 0; deliveries = 0; cnps = 0; rate_cuts = 0;
            guard_holds = 0; retransmits = 0; replans = 0; first = infinity;
            last = neg_infinity; lat_sum = 0.0; lat_max = 0.0; lat_n = 0;
          }
        in
        Hashtbl.add accs flow a;
        a
  in
  (* First release time per (flow, chunk), for latency pairing. *)
  let released : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  for i = 0 to t.n - 1 do
    let ev = t.buf.(i) in
    match ev.kind with
    | Release { flow; chunk; _ } when flow >= 0 ->
        let a = acc flow in
        a.releases <- a.releases + 1;
        if not (Hashtbl.mem released (flow, chunk)) then
          Hashtbl.add released (flow, chunk) ev.time
    | Delivery { flow; chunk; _ } when flow >= 0 ->
        let a = acc flow in
        a.deliveries <- a.deliveries + 1;
        if ev.time < a.first then a.first <- ev.time;
        if ev.time > a.last then a.last <- ev.time;
        (match Hashtbl.find_opt released (flow, chunk) with
        | Some t0 ->
            let lat = ev.time -. t0 in
            a.lat_sum <- a.lat_sum +. lat;
            if lat > a.lat_max then a.lat_max <- lat;
            a.lat_n <- a.lat_n + 1
        | None -> ())
    | Cnp { flow } when flow >= 0 ->
        let a = acc flow in
        a.cnps <- a.cnps + 1
    | Rate_cut { flow; _ } when flow >= 0 ->
        let a = acc flow in
        a.rate_cuts <- a.rate_cuts + 1
    | Guard_hold { flow } when flow >= 0 ->
        let a = acc flow in
        a.guard_holds <- a.guard_holds + 1
    | Retransmit { flow; _ } when flow >= 0 ->
        let a = acc flow in
        a.retransmits <- a.retransmits + 1
    | Replan { flow; _ } when flow >= 0 ->
        let a = acc flow in
        a.replans <- a.replans + 1
    | _ -> ()
  done;
  Hashtbl.fold (fun flow a l -> (flow, a) :: l) accs []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (flow, a) ->
         {
           f_flow = flow;
           f_releases = a.releases;
           f_deliveries = a.deliveries;
           f_cnps = a.cnps;
           f_rate_cuts = a.rate_cuts;
           f_guard_holds = a.guard_holds;
           f_retransmits = a.retransmits;
           f_replans = a.replans;
           f_first_delivery = (if a.deliveries = 0 then nan else a.first);
           f_last_delivery = (if a.deliveries = 0 then nan else a.last);
           f_mean_chunk_latency =
             (if a.lat_n = 0 then nan else a.lat_sum /. float_of_int a.lat_n);
           f_max_chunk_latency = (if a.lat_n = 0 then nan else a.lat_max);
         })

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let counters_to_json t =
  let c = t.c in
  Json.Obj
    [
      ("reservations", Json.int c.reservations);
      ("bytes_reserved", Json.num c.bytes_reserved);
      ("ecn_marks", Json.int c.ecn_marks);
      ("deliveries", Json.int c.deliveries);
      ("releases", Json.int c.releases);
      ("cnps", Json.int c.cnps);
      ("rate_cuts", Json.int c.rate_cuts);
      ("guard_holds", Json.int c.guard_holds);
      ("drops", Json.int c.drops);
      ("retransmits", Json.int c.retransmits);
      ("link_fails", Json.int c.link_fails);
      ("link_recovers", Json.int c.link_recovers);
      ("replans", Json.int c.replans);
      ("rule_installs", Json.int c.rule_installs);
      ("refines", Json.int c.refines);
      ("evictions", Json.int c.evictions);
      ("plan_cache_hits", Json.int c.plan_cache_hits);
      ("plan_cache_misses", Json.int c.plan_cache_misses);
      ("engine_events", Json.int c.engine_events);
      ("engine_max_pending", Json.int c.engine_max_pending);
      ("sampled_out", Json.int t.skipped);
    ]

let kind_name = function
  | Reserve _ -> "reserve"
  | Ecn_mark _ -> "ecn_mark"
  | Delivery _ -> "delivery"
  | Release _ -> "release"
  | Cnp _ -> "cnp"
  | Rate_cut _ -> "rate_cut"
  | Guard_hold _ -> "guard_hold"
  | Drop _ -> "drop"
  | Retransmit _ -> "retransmit"
  | Link_fail _ -> "link_fail"
  | Link_recover _ -> "link_recover"
  | Replan _ -> "replan"
  | Rule_install _ -> "rule_install"
  | Refine _ -> "refine"
  | Evict _ -> "evict"

let event_to_json ev =
  let base = [ ("t", Json.num ev.time); ("kind", Json.str (kind_name ev.kind)) ] in
  let rest =
    match ev.kind with
    | Reserve { link; bytes; queue_delay; backlog } ->
        [
          ("link", Json.int link); ("bytes", Json.num bytes);
          ("queue_delay", Json.num queue_delay); ("backlog", Json.num backlog);
        ]
    | Ecn_mark { link; flow; chunk } ->
        [ ("link", Json.int link); ("flow", Json.int flow); ("chunk", Json.int chunk) ]
    | Delivery { node; flow; chunk } ->
        [ ("node", Json.int node); ("flow", Json.int flow); ("chunk", Json.int chunk) ]
    | Release { flow; chunk; rate } ->
        [ ("flow", Json.int flow); ("chunk", Json.int chunk); ("rate", Json.num rate) ]
    | Cnp { flow } -> [ ("flow", Json.int flow) ]
    | Rate_cut { flow; rate } -> [ ("flow", Json.int flow); ("rate", Json.num rate) ]
    | Guard_hold { flow } -> [ ("flow", Json.int flow) ]
    | Drop { link } -> [ ("link", Json.int link) ]
    | Retransmit { flow; node } ->
        [ ("flow", Json.int flow); ("node", Json.int node) ]
    | Link_fail { link } -> [ ("link", Json.int link) ]
    | Link_recover { link } -> [ ("link", Json.int link) ]
    | Replan { flow; cost } -> [ ("flow", Json.int flow); ("cost", Json.int cost) ]
    | Rule_install { group; switch; rules } ->
        [ ("group", Json.int group); ("switch", Json.int switch);
          ("rules", Json.int rules) ]
    | Refine { group; cost } ->
        [ ("group", Json.int group); ("cost", Json.int cost) ]
    | Evict { group; switch } ->
        [ ("group", Json.int group); ("switch", Json.int switch) ]
  in
  Json.Obj (base @ rest)

let events_to_json t =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) (event_to_json t.buf.(i) :: acc)
  in
  Json.Arr (go (t.n - 1) [])

let csv_header = "time,kind,link,node,flow,chunk,bytes,queue_delay,backlog,rate"

let events_csv t =
  let b = Buffer.create (64 * (t.n + 1)) in
  Buffer.add_string b csv_header;
  Buffer.add_char b '\n';
  let fi = string_of_int in
  let ff x = Printf.sprintf "%.9g" x in
  for i = 0 to t.n - 1 do
    let ev = t.buf.(i) in
    (* columns: link node flow chunk bytes queue_delay backlog rate *)
    let cols =
      match ev.kind with
      | Reserve { link; bytes; queue_delay; backlog } ->
          [ fi link; ""; ""; ""; ff bytes; ff queue_delay; ff backlog; "" ]
      | Ecn_mark { link; flow; chunk } ->
          [ fi link; ""; fi flow; fi chunk; ""; ""; ""; "" ]
      | Delivery { node; flow; chunk } ->
          [ ""; fi node; fi flow; fi chunk; ""; ""; ""; "" ]
      | Release { flow; chunk; rate } ->
          [ ""; ""; fi flow; fi chunk; ""; ""; ""; ff rate ]
      | Cnp { flow } -> [ ""; ""; fi flow; ""; ""; ""; ""; "" ]
      | Rate_cut { flow; rate } -> [ ""; ""; fi flow; ""; ""; ""; ""; ff rate ]
      | Guard_hold { flow } -> [ ""; ""; fi flow; ""; ""; ""; ""; "" ]
      | Drop { link } -> [ fi link; ""; ""; ""; ""; ""; ""; "" ]
      | Retransmit { flow; node } ->
          [ ""; fi node; fi flow; ""; ""; ""; ""; "" ]
      | Link_fail { link } | Link_recover { link } ->
          [ fi link; ""; ""; ""; ""; ""; ""; "" ]
      | Replan { flow; _ } -> [ ""; ""; fi flow; ""; ""; ""; ""; "" ]
      (* Control-plane events reuse the fixed header: switch -> node,
         group -> flow, rules -> chunk. *)
      | Rule_install { group; switch; rules } ->
          [ ""; fi switch; fi group; fi rules; ""; ""; ""; "" ]
      | Refine { group; _ } -> [ ""; ""; fi group; ""; ""; ""; ""; "" ]
      | Evict { group; switch } ->
          [ ""; fi switch; fi group; ""; ""; ""; ""; "" ]
    in
    Buffer.add_string b (ff ev.time);
    Buffer.add_char b ',';
    Buffer.add_string b (kind_name ev.kind);
    List.iter
      (fun c ->
        Buffer.add_char b ',';
        Buffer.add_string b c)
      cols;
    Buffer.add_char b '\n'
  done;
  Buffer.contents b
