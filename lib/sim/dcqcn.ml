type t = {
  line_rate : float;
  guard : float option;
  mutable current : float;
  mutable last_update : float;
  mutable last_cut : float;
  mutable cuts : int;
  trace : Trace.t;
  flow : int;
}

let default_guard = 50e-6

(* Full recovery from the floor back to line rate takes this long. *)
let recovery_time = 2e-3

let min_fraction = 1e-3

let create ?(guard = Some default_guard) ?(trace = Trace.null) ?(flow = -1)
    ~line_rate () =
  if line_rate <= 0.0 then invalid_arg "Dcqcn.create: line_rate > 0";
  (match guard with
  | Some g when g <= 0.0 -> invalid_arg "Dcqcn.create: guard window > 0"
  | _ -> ());
  {
    line_rate;
    guard;
    current = line_rate;
    last_update = 0.0;
    last_cut = neg_infinity;
    cuts = 0;
    trace;
    flow;
  }

let recover t ~now =
  if now > t.last_update then begin
    let gain = t.line_rate *. (now -. t.last_update) /. recovery_time in
    t.current <- Float.min t.line_rate (t.current +. gain);
    t.last_update <- now
  end

let rate t ~now =
  recover t ~now;
  t.current

let on_cnp t ~now =
  recover t ~now;
  Trace.cnp t.trace ~time:now ~flow:t.flow;
  let allowed =
    match t.guard with None -> true | Some g -> now -. t.last_cut >= g
  in
  if allowed then begin
    t.current <- Float.max (t.line_rate *. min_fraction) (t.current /. 2.0);
    t.last_cut <- now;
    t.cuts <- t.cuts + 1;
    Trace.rate_cut t.trace ~time:now ~flow:t.flow ~rate:t.current
  end
  else Trace.guard_hold t.trace ~time:now ~flow:t.flow

let release_duration t ~now ~bytes =
  if bytes <= 0.0 then invalid_arg "Dcqcn.release_duration: bytes > 0";
  bytes /. rate t ~now

let cuts t = t.cuts
