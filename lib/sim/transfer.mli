(** Chunk transfer primitives: store-and-forward unicast along a path
    and replication down a multicast tree.

    Both primitives reserve each link *at the moment the chunk is ready
    to cross it* (event time), so concurrent collectives interleave in
    true FIFO order on shared links.  The optional [on_reserve] hook
    observes every reservation (link id and queueing delay) — the
    attachment point for ECN marking and telemetry.

    When the link state carries a {!Trace}, both primitives emit [Drop]
    events for chunks the loss model discards, and unicast's hop-local
    repairs emit (unattributed) [Retransmit] events; per-link [Reserve]
    events come from {!Link_state.reserve} itself. *)

open Peel_topology

val path_links : Graph.t -> int list -> int list
(** Map a node path to its directed link ids. Raises
    [Invalid_argument] on a broken or down path. *)

(** Per-link loss model with selective-repeat recovery (the RDMA
    machinery the paper's multicast inherits).  Each chunk crossing a
    link is dropped with probability [prob]; the drop is detected and
    repaired after [rto].  [retransmissions] counts repair sends. *)
type loss = {
  loss_rng : Peel_util.Rng.t;
  prob : float;
  rto : float;
  mutable retransmissions : int;
}

val loss_model : seed:int -> prob:float -> ?rto:float -> unit -> loss
(** Default [rto] is 100 us. *)

val unicast :
  Engine.t ->
  Link_state.t ->
  links:int list ->
  bytes:float ->
  start:float ->
  ?on_reserve:(link:int -> queue_delay:float -> unit) ->
  ?loss:loss ->
  ?on_lost:(time:float -> unit) ->
  on_delivered:(float -> unit) ->
  unit ->
  unit
(** Send one chunk along consecutive links; [on_delivered] fires with
    the arrival time at the final node.  An empty path delivers at
    [start].  With [loss], a dropped hop is retransmitted by that hop's
    sender after [rto] (per-hop selective repeat, as RDMA QPs do).

    A hop whose link is down — or whose link fails while the chunk is
    in flight ({!Link_state.epoch} changed between reservation and
    arrival) — loses the chunk: a [Drop] is traced and [on_lost] fires
    (once), handing recovery to the caller.  Without [on_lost] the hop
    stalls and retries every RTO until the pair recovers — so a path
    crossing a permanently dead link never delivers; callers injecting
    faults should pass [on_lost] and reroute. *)

val multicast :
  Engine.t ->
  Link_state.t ->
  tree:Peel_steiner.Tree.t ->
  bytes:float ->
  start:float ->
  ?on_reserve:(link:int -> queue_delay:float -> unit) ->
  ?loss:loss ->
  ?on_lost:(node:int -> time:float -> unit) ->
  on_delivered:(node:int -> time:float -> unit) ->
  unit ->
  unit
(** Replicate one chunk from the tree root downward (store-and-forward
    at every member).  [on_delivered] fires for every non-root member;
    callers filter for actual destinations.

    With [loss], a dropped tree edge is repaired hop-locally just like
    unicast: the edge's sender resends after [rto] and the repair is
    counted in [loss.retransmissions] — a lossy hop delays only its own
    subtree.

    A *failed* link (down at send time, or failing mid-flight per
    {!Link_state.epoch}) cannot be repaired locally: the chunk is lost
    and [on_lost] fires for every subtree member at the drop time —
    recovery is end-to-end, the caller unicasts the chunk to the
    receivers that NACK (paper §1: RDMA selective retransmissions). *)
