(** Conservative parallel discrete-event engine over pod shards.

    A {!plan} is a set of flattened flows ({!Soa.flow}) over a sharded
    fabric ({!Soa.sharding}).  Execution shards the event loop by pod:
    each worker domain owns the links whose source node lives in its
    shard and processes events in {e conservative windows}.  At a
    barrier epoch every shard publishes its local minimum timestamp;
    the global minimum [W] plus the sharding's lookahead [L] bounds the
    window, each shard executes its events with [t < W + L]
    independently, and cross-shard events (which necessarily cross a
    boundary link, hence land at or beyond [W + L]) are exchanged at
    the closing barrier.  No null messages are ever sent.

    {b Determinism.}  Every event carries a static integer key encoding
    (flow, chunk, edge), and each shard pops in (time, key) order.
    Because a link is reserved only by its owning shard, the
    per-link reservation sequence is the (time, key) total order
    restricted to that link — independent of the shard count — and the
    completion reductions (delivery counts, last-delivery max, busy
    sums, fingerprint xor) are order-insensitive.  [jobs = n] is
    therefore bit-identical to [jobs = 1], which the @par-smoke alias
    and the QCheck differential in [test/test_parsim.ml] enforce.

    Scope: fault-free, loss-free, uncontrolled-rate scenarios (the
    schemes {!Peel_collective.Par} flattens).  Faults, loss models and
    DCQCN remain on the sequential {!Engine} path. *)

type plan
(** A frozen, validated execution plan: flows, link tables, sharding
    and the static key layout. *)

val plan : links:Soa.links -> sharding:Soa.sharding -> Soa.flow array -> plan
(** Validate every flow's DAGs against the link table and freeze the
    key layout.  Raises [Invalid_argument] on a malformed DAG or a
    flow with [f_chunks < 1]. *)

val nshards : plan -> int
(** Worker count the plan will run with ([1] = sequential drain). *)

(** One conservative window as one shard saw it — the evidence SIM008
    ({!Peel_check.Check_sim.check_shard}) audits. *)
type audit_record = {
  a_shard : int;      (** shard that recorded the window *)
  a_window : int;     (** window ordinal, starting at 0 *)
  a_bound : float;    (** exclusive execution bound [W + L] *)
  a_max_exec : float; (** largest timestamp executed in the window
                          ([neg_infinity] if the shard ran nothing) *)
  a_min_in : float;   (** smallest cross-shard timestamp received at
                          the closing barrier ([infinity] if none) *)
  a_events : int;     (** events the shard executed in the window *)
}

type result = {
  r_ccts : float array;     (** per flow, plan order: last delivery −
                                arrival (0 for destination-less flows) *)
  r_events : int;           (** events executed across all shards *)
  r_makespan : float;       (** latest arrival of any edge (matches the
                                sequential engine's final clock) *)
  r_busy : float array;     (** per-link busy seconds (telemetry) *)
  r_fingerprint : int;      (** order-insensitive hash over every
                                (flow, chunk, node, time) delivery —
                                the bit-identity witness the
                                differential tests compare *)
  r_windows : int;          (** conservative windows executed *)
  r_audit : audit_record array;  (** window evidence, all shards, empty
                                     unless [run ~audit:true] *)
}

val run : ?audit:bool -> plan -> result
(** Execute the plan: sequentially when the sharding has one shard,
    otherwise on [nshards] domains with barrier-epoch windows.
    Raises [Failure] if any flow finishes with missing deliveries
    (an unreachable destination would show up here). *)

val fingerprint_delivery : int -> flow:int -> chunk:int -> node:int -> time:float -> int
(** Fold one delivery into a fingerprint accumulator — exposed so tests
    can recompute {!result.r_fingerprint} from a sequential trace. *)
