(** Link-level telemetry over a finished (or running) simulation.

    A deployable multicast service needs path observability (paper §1
    footnote; §3.4).  The simulator already accounts per-link busy
    time; this module turns it into the reports an operator would pull:
    hottest links, mean utilization per fabric tier — which is how the
    funnel-versus-fan-out asymmetry of multicast shows up — and, when
    the run carried a [Full] {!Trace}, per-link congestion detail
    (reservation counts, bytes, ECN marks, worst-case backlog, mean
    queueing delay). *)

open Peel_topology

type link_report = {
  link : int;
  src : int;
  dst : int;
  tier : string;        (** e.g. "host->tor", "agg->core" *)
  utilization : float;  (** busy seconds / horizon *)
  reservations : int;   (** chunks that crossed the link (0 without a
                            [Full] trace; subject to its sampling) *)
  bytes : float;        (** traced bytes across the link *)
  ecn_marks : int;      (** chunks marked on this link *)
  max_backlog : float;  (** worst queue depth found, in seconds *)
  mean_queue_delay : float;  (** mean queueing delay of traced chunks *)
}

type t
(** A frozen set of per-link reports over one observation horizon. *)

val snapshot : Graph.t -> Link_state.t -> horizon:float -> t
(** [horizon] is the observation window (typically the simulation
    makespan). Raises [Invalid_argument] if non-positive.  The
    trace-derived fields come from the link state's attached trace
    ({!Link_state.trace}) and are zero when tracing was off or below
    [Full]. *)

val of_busy : Graph.t -> busy:float array -> horizon:float -> t
(** Build telemetry from a per-link busy-seconds array — how the
    sharded engine ({!Peel_sim.Shard}) reports, since it accounts busy
    time directly instead of through {!Link_state}.  Trace-derived
    fields (reservations, bytes, ECN, backlog) are zero.  Raises
    [Invalid_argument] on a non-positive [horizon] or a length
    mismatch against [Graph.num_links]. *)

val reports : t -> link_report array
(** One report per directed link, indexed by link id. *)

val hottest : t -> n:int -> link_report list
(** The [n] most utilized links, descending. *)

val tier_utilization : t -> (string * float) list
(** Mean utilization per (src kind -> dst kind) tier, descending;
    tiers with zero traffic are included at 0. *)

val max_utilization : t -> float
(** The single highest per-link utilization (0 on an empty fabric);
    values above 1 mean a link stayed busy past the horizon — an
    invariant violation {!Peel_check.Check_sim.check_outcome} flags. *)

val link_report_to_json : link_report -> Peel_util.Json.t
(** One report as a flat JSON object (the [links] rows of the trace
    export). *)

val to_json : t -> Peel_util.Json.t
(** All link reports as a JSON array (the ["links"] section of the
    [peel_cli trace] export). *)
