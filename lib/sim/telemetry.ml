open Peel_topology

type link_report = {
  link : int;
  src : int;
  dst : int;
  tier : string;
  utilization : float;
  reservations : int;
  bytes : float;
  ecn_marks : int;
  max_backlog : float;
  mean_queue_delay : float;
}

type t = { reports : link_report array }

let tier_of g lid =
  let l = Graph.link g lid in
  Printf.sprintf "%s->%s"
    (Graph.kind_to_string (Graph.node g l.Graph.src).Graph.kind)
    (Graph.kind_to_string (Graph.node g l.Graph.dst).Graph.kind)

let snapshot g links ~horizon =
  if horizon <= 0.0 then invalid_arg "Telemetry.snapshot: horizon > 0";
  let n = Graph.num_links g in
  let stats = Trace.link_stats (Link_state.trace links) ~nlinks:n in
  let reports =
    Array.init n (fun lid ->
        let l = Graph.link g lid in
        let s = stats.(lid) in
        {
          link = lid;
          src = l.Graph.src;
          dst = l.Graph.dst;
          tier = tier_of g lid;
          utilization = Link_state.utilization links ~link:lid ~horizon;
          reservations = s.Trace.l_reservations;
          bytes = s.Trace.l_bytes;
          ecn_marks = s.Trace.l_ecn_marks;
          max_backlog = s.Trace.l_max_backlog;
          mean_queue_delay =
            (if s.Trace.l_reservations = 0 then 0.0
             else s.Trace.l_sum_queue_delay /. float_of_int s.Trace.l_reservations);
        })
  in
  { reports }

let of_busy g ~busy ~horizon =
  if horizon <= 0.0 then invalid_arg "Telemetry.of_busy: horizon > 0";
  let n = Graph.num_links g in
  if Array.length busy <> n then
    invalid_arg "Telemetry.of_busy: busy length <> num_links";
  let reports =
    Array.init n (fun lid ->
        let l = Graph.link g lid in
        {
          link = lid;
          src = l.Graph.src;
          dst = l.Graph.dst;
          tier = tier_of g lid;
          utilization = busy.(lid) /. horizon;
          reservations = 0;
          bytes = 0.0;
          ecn_marks = 0;
          max_backlog = 0.0;
          mean_queue_delay = 0.0;
        })
  in
  { reports }

let reports t = t.reports

let hottest t ~n =
  let sorted = Array.copy t.reports in
  Array.sort (fun a b -> compare b.utilization a.utilization) sorted;
  Array.to_list (Array.sub sorted 0 (min n (Array.length sorted)))

let tier_utilization t =
  let acc = Hashtbl.create 8 in
  Array.iter
    (fun r ->
      let sum, count = Option.value (Hashtbl.find_opt acc r.tier) ~default:(0.0, 0) in
      Hashtbl.replace acc r.tier (sum +. r.utilization, count + 1))
    t.reports;
  Hashtbl.fold
    (fun tier (sum, count) l -> (tier, sum /. float_of_int count) :: l)
    acc []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let max_utilization t =
  Array.fold_left (fun acc r -> Float.max acc r.utilization) 0.0 t.reports

let link_report_to_json r =
  let module Json = Peel_util.Json in
  Json.Obj
    [
      ("link", Json.int r.link);
      ("src", Json.int r.src);
      ("dst", Json.int r.dst);
      ("tier", Json.str r.tier);
      ("utilization", Json.num r.utilization);
      ("reservations", Json.int r.reservations);
      ("bytes", Json.num r.bytes);
      ("ecn_marks", Json.int r.ecn_marks);
      ("max_backlog", Json.num r.max_backlog);
      ("mean_queue_delay", Json.num r.mean_queue_delay);
    ]

let to_json t = Peel_util.Json.Arr (Array.to_list (Array.map link_report_to_json t.reports))
