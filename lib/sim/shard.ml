(* Conservative pod-sharded parallel DES.  See shard.mli for the model;
   the invariants here are:

   - A directed link is reserved only by the shard owning its source
     node, so [free]/[busy] writes are per-location single-writer and
     the per-link reservation sequence is the global (time, key) order
     restricted to that link.
   - Every cross-shard successor crosses a boundary link, so its
     timestamp exceeds the window bound (Soa.shard's lookahead), and
     exchanging events only at barrier epochs is causally safe — SIM008
     audits exactly this.
   - All cross-domain data flows through barrier epochs (mutex-based,
     so pre-barrier plain writes happen-before post-barrier reads). *)

type plan = {
  p_links : Soa.links;
  p_shard : Soa.sharding;
  p_flows : Soa.flow array;
  p_stride : int;   (* key stride between chunks: max edges over all DAGs *)
  p_cstride : int;  (* key stride between flows: max chunk count *)
}

let plan ~links ~sharding flows =
  Array.iter
    (fun (f : Soa.flow) ->
      if f.Soa.f_chunks < 1 then invalid_arg "Shard.plan: f_chunks >= 1";
      if Array.length f.Soa.f_dags = 0 then invalid_arg "Shard.plan: flow without DAGs";
      Array.iter
        (fun d ->
          match Soa.validate_dag links d with
          | Ok () -> ()
          | Error m -> invalid_arg ("Shard.plan: bad DAG: " ^ m))
        f.Soa.f_dags)
    flows;
  let stride =
    max 1 (Array.fold_left (fun acc f -> max acc (Soa.flow_max_edges f)) 0 flows)
  in
  let cstride =
    max 1 (Array.fold_left (fun acc (f : Soa.flow) -> max acc f.Soa.f_chunks) 0 flows)
  in
  { p_links = links; p_shard = sharding; p_flows = flows; p_stride = stride; p_cstride = cstride }

let nshards p = p.p_shard.Soa.s_n

type audit_record = {
  a_shard : int;
  a_window : int;
  a_bound : float;
  a_max_exec : float;
  a_min_in : float;
  a_events : int;
}

type result = {
  r_ccts : float array;
  r_events : int;
  r_makespan : float;
  r_busy : float array;
  r_fingerprint : int;
  r_windows : int;
  r_audit : audit_record array;
}

(* FNV-1a over the delivery tuple, xor-folded into the accumulator:
   xor keeps the fold order-insensitive, which is what lets shards
   fingerprint independently and still match the sequential run. *)
let fnv_prime = 0x100000001B3
let fnv_basis = 0x2545F4914F6CDD1D

let fnv h v = ((h lxor v) * fnv_prime) land max_int

let fingerprint_delivery acc ~flow ~chunk ~node ~time =
  let tb = Int64.to_int (Int64.bits_of_float time) in
  acc lxor (fnv (fnv (fnv (fnv fnv_basis flow) chunk) node) tb)

(* ------------------------------------------------------------------ *)
(* Per-shard event queue: a flat binary heap over (time, key) with no
   insertion sequence — keys are globally unique and statically
   ordered, which is precisely what makes jobs-n deterministic.        *)
(* ------------------------------------------------------------------ *)

type queue = {
  mutable qp : float array;
  mutable qk : int array;
  mutable qn : int;
}

let q_create () = { qp = Array.make 256 0.0; qk = Array.make 256 0; qn = 0 }

let q_less q i j = q.qp.(i) < q.qp.(j) || (q.qp.(i) = q.qp.(j) && q.qk.(i) < q.qk.(j))

let q_swap q i j =
  let p = q.qp.(i) in
  q.qp.(i) <- q.qp.(j);
  q.qp.(j) <- p;
  let k = q.qk.(i) in
  q.qk.(i) <- q.qk.(j);
  q.qk.(j) <- k

let q_push q t key =
  if q.qn >= Array.length q.qp then begin
    let ncap = 2 * Array.length q.qp in
    let qp = Array.make ncap 0.0 and qk = Array.make ncap 0 in
    Array.blit q.qp 0 qp 0 q.qn;
    Array.blit q.qk 0 qk 0 q.qn;
    q.qp <- qp;
    q.qk <- qk
  end;
  q.qp.(q.qn) <- t;
  q.qk.(q.qn) <- key;
  q.qn <- q.qn + 1;
  let i = ref (q.qn - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if q_less q !i parent then begin
      q_swap q !i parent;
      i := parent
    end
    else continue := false
  done

let q_pop q =
  (* Precondition: qn > 0. *)
  let t = q.qp.(0) and key = q.qk.(0) in
  q.qn <- q.qn - 1;
  if q.qn > 0 then begin
    q.qp.(0) <- q.qp.(q.qn);
    q.qk.(0) <- q.qk.(q.qn);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < q.qn && q_less q l !smallest then smallest := l;
      if r < q.qn && q_less q r !smallest then smallest := r;
      if !smallest <> !i then begin
        q_swap q !smallest !i;
        i := !smallest
      end
      else continue := false
    done
  end;
  (t, key)

(* Cross-shard mailboxes: written by the source shard during a window,
   drained (and reset) by the destination shard at the closing barrier. *)
type outbox = {
  mutable ot : float array;
  mutable okey : int array;
  mutable on_ : int;
}

let o_create () = { ot = Array.make 64 0.0; okey = Array.make 64 0; on_ = 0 }

let o_push o t key =
  if o.on_ >= Array.length o.ot then begin
    let ncap = 2 * Array.length o.ot in
    let ot = Array.make ncap 0.0 and okey = Array.make ncap 0 in
    Array.blit o.ot 0 ot 0 o.on_;
    Array.blit o.okey 0 okey 0 o.on_;
    o.ot <- ot;
    o.okey <- okey
  end;
  o.ot.(o.on_) <- t;
  o.okey.(o.on_) <- key;
  o.on_ <- o.on_ + 1

(* ------------------------------------------------------------------ *)
(* Barrier: blocking (mutex + condvar) rather than spinning, so
   oversubscribed runs (more shards than cores) degrade gracefully.    *)
(* ------------------------------------------------------------------ *)

type barrier = {
  b_mutex : Mutex.t;
  b_cond : Condition.t;
  b_parties : int;
  mutable b_count : int;
  mutable b_gen : int;
}

let b_create parties =
  { b_mutex = Mutex.create (); b_cond = Condition.create (); b_parties = parties;
    b_count = 0; b_gen = 0 }

let b_wait b =
  Mutex.lock b.b_mutex;
  let gen = b.b_gen in
  b.b_count <- b.b_count + 1;
  if b.b_count = b.b_parties then begin
    b.b_count <- 0;
    b.b_gen <- b.b_gen + 1;
    Condition.broadcast b.b_cond
  end
  else
    while b.b_gen = gen do
      Condition.wait b.b_cond b.b_mutex
    done;
  Mutex.unlock b.b_mutex

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type ctx = {
  c_plan : plan;
  c_free : float array;          (* per link; single-writer by owner *)
  c_busy : float array;
  c_queues : queue array;        (* per shard *)
  c_out : outbox array array;    (* c_out.(src).(dst) *)
  c_mins : float array;          (* per shard: local queue minimum *)
  c_counts : int array array;    (* c_counts.(shard).(flow) deliveries *)
  c_lasts : float array array;   (* c_lasts.(shard).(flow) last delivery *)
  c_fps : int array;             (* per-shard fingerprint accumulator *)
  c_evs : int array;             (* per-shard events executed *)
  c_mks : float array;           (* per-shard makespan *)
  c_wins : int array;            (* per-shard window count *)
  c_barrier : barrier;
  c_audit : bool;
  c_audits : audit_record list ref array;  (* per shard, newest first *)
}

let exec ctx me t key =
  let p = ctx.c_plan in
  let e = key mod p.p_stride in
  let fc = key / p.p_stride in
  let c = fc mod p.p_cstride in
  let fi = fc / p.p_cstride in
  let f = p.p_flows.(fi) in
  let d = f.Soa.f_dags.(c mod Array.length f.Soa.f_dags) in
  let lid = d.Soa.d_link.(e) in
  (* Same expressions, same order as Link_state.reserve + arrival:
     identical rounding keeps parity with the sequential engine. *)
  let start = Float.max t ctx.c_free.(lid) in
  let tx = f.Soa.f_chunk_bytes /. p.p_links.Soa.l_bw.(lid) in
  let finish = start +. tx in
  ctx.c_free.(lid) <- finish;
  ctx.c_busy.(lid) <- ctx.c_busy.(lid) +. tx;
  let arr = finish +. p.p_links.Soa.l_lat.(lid) in
  if arr > ctx.c_mks.(me) then ctx.c_mks.(me) <- arr;
  let dst = d.Soa.d_deliver.(e) in
  if dst >= 0 then begin
    ctx.c_counts.(me).(fi) <- ctx.c_counts.(me).(fi) + 1;
    if arr > ctx.c_lasts.(me).(fi) then ctx.c_lasts.(me).(fi) <- arr;
    ctx.c_fps.(me) <-
      fingerprint_delivery ctx.c_fps.(me) ~flow:f.Soa.f_id ~chunk:c ~node:dst
        ~time:arr
  end;
  let base = fc * p.p_stride in
  for i = d.Soa.d_succ_off.(e) to d.Soa.d_succ_off.(e + 1) - 1 do
    let e' = d.Soa.d_succ.(i) in
    let owner = p.p_shard.Soa.s_of_link.(d.Soa.d_link.(e')) in
    if owner = me then q_push ctx.c_queues.(me) arr (base + e')
    else o_push ctx.c_out.(me).(owner) arr (base + e')
  done;
  ctx.c_evs.(me) <- ctx.c_evs.(me) + 1

let worker ctx me =
  let p = ctx.c_plan in
  let n = p.p_shard.Soa.s_n in
  let look = p.p_shard.Soa.s_lookahead in
  let q = ctx.c_queues.(me) in
  let continue = ref true in
  while !continue do
    ctx.c_mins.(me) <- (if q.qn > 0 then q.qp.(0) else infinity);
    b_wait ctx.c_barrier;
    (* Every shard folds the same published array, so every shard takes
       the same branch — barrier counts stay aligned. *)
    let w = Array.fold_left Float.min infinity ctx.c_mins in
    if w = infinity then continue := false
    else begin
      let bound = if n = 1 then infinity else w +. look in
      let max_exec = ref neg_infinity in
      let evs0 = ctx.c_evs.(me) in
      while q.qn > 0 && q.qp.(0) < bound do
        let t, key = q_pop q in
        max_exec := t;
        exec ctx me t key
      done;
      b_wait ctx.c_barrier;
      let min_in = ref infinity in
      for s = 0 to n - 1 do
        if s <> me then begin
          let o = ctx.c_out.(s).(me) in
          for i = 0 to o.on_ - 1 do
            if o.ot.(i) < !min_in then min_in := o.ot.(i);
            q_push q o.ot.(i) o.okey.(i)
          done;
          o.on_ <- 0
        end
      done;
      if ctx.c_audit then
        ctx.c_audits.(me) :=
          {
            a_shard = me;
            a_window = ctx.c_wins.(me);
            a_bound = bound;
            a_max_exec = !max_exec;
            a_min_in = !min_in;
            a_events = ctx.c_evs.(me) - evs0;
          }
          :: !(ctx.c_audits.(me));
      ctx.c_wins.(me) <- ctx.c_wins.(me) + 1;
      b_wait ctx.c_barrier
    end
  done

let run ?(audit = false) p =
  let n = p.p_shard.Soa.s_n in
  let nflows = Array.length p.p_flows in
  let ctx =
    {
      c_plan = p;
      c_free = Array.make p.p_links.Soa.l_n 0.0;
      c_busy = Array.make p.p_links.Soa.l_n 0.0;
      c_queues = Array.init n (fun _ -> q_create ());
      c_out = Array.init n (fun _ -> Array.init n (fun _ -> o_create ()));
      c_mins = Array.make n infinity;
      c_counts = Array.init n (fun _ -> Array.make nflows 0);
      c_lasts = Array.init n (fun _ -> Array.make nflows neg_infinity);
      c_fps = Array.make n 0;
      c_evs = Array.make n 0;
      c_mks = Array.make n 0.0;
      c_wins = Array.make n 0;
      c_barrier = b_create n;
      c_audit = audit;
      c_audits = Array.init n (fun _ -> ref []);
    }
  in
  (* Seed every chunk's root edges into their owners' queues. *)
  Array.iteri
    (fun fi (f : Soa.flow) ->
      let ndags = Array.length f.Soa.f_dags in
      for c = 0 to f.Soa.f_chunks - 1 do
        let d = f.Soa.f_dags.(c mod ndags) in
        let base = ((fi * p.p_cstride) + c) * p.p_stride in
        Array.iter
          (fun r ->
            let owner = p.p_shard.Soa.s_of_link.(d.Soa.d_link.(r)) in
            q_push ctx.c_queues.(owner) f.Soa.f_arrival (base + r))
          d.Soa.d_roots
      done)
    p.p_flows;
  if n = 1 then worker ctx 0
  else begin
    let doms =
      Array.init (n - 1) (fun i -> Domain.spawn (fun () -> worker ctx (i + 1)))
    in
    worker ctx 0;
    Array.iter Domain.join doms
  end;
  (* Merge the per-shard reductions (all order-insensitive). *)
  let ccts = Array.make nflows 0.0 in
  Array.iteri
    (fun fi (f : Soa.flow) ->
      let count = ref 0 and last = ref neg_infinity in
      for s = 0 to n - 1 do
        count := !count + ctx.c_counts.(s).(fi);
        if ctx.c_lasts.(s).(fi) > !last then last := ctx.c_lasts.(s).(fi)
      done;
      if !count <> f.Soa.f_expected then
        failwith
          (Printf.sprintf
             "Shard.run: flow %d delivered %d of %d chunks" f.Soa.f_id !count
             f.Soa.f_expected);
      ccts.(fi) <- (if f.Soa.f_expected = 0 then 0.0 else !last -. f.Soa.f_arrival))
    p.p_flows;
  let events = Array.fold_left ( + ) 0 ctx.c_evs in
  let makespan =
    Array.fold_left
      (fun acc (f : Soa.flow) -> Float.max acc f.Soa.f_arrival)
      (Array.fold_left Float.max 0.0 ctx.c_mks)
      p.p_flows
  in
  let fingerprint = Array.fold_left ( lxor ) 0 ctx.c_fps in
  let audit_records =
    Array.to_list ctx.c_audits
    |> List.concat_map (fun l -> List.rev !l)
    |> Array.of_list
  in
  {
    r_ccts = ccts;
    r_events = events;
    r_makespan = makespan;
    r_busy = ctx.c_busy;
    r_fingerprint = fingerprint;
    r_windows = ctx.c_wins.(0);
    r_audit = audit_records;
  }
