module Heap = Peel_util.Pairing_heap

type t = {
  mutable now : float;
  q : (unit -> unit) Heap.t;
  mutable processed : int;
  trace : Trace.t;
  traced : bool;
      (* [Trace.enabled trace], latched at creation: [schedule] is the
         hottest call in the simulator, and with tracing off it must do
         no trace work at all — not even the [Heap.length] read that
         feeds the queue-depth high-water mark. *)
}

let create ?(trace = Trace.null) () =
  {
    now = 0.0;
    q = Heap.create ();
    processed = 0;
    trace;
    traced = Trace.enabled trace;
  }

let now t = t.now

let schedule t at f =
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %.9f is before now %.9f" at t.now);
  Heap.push t.q at f;
  if t.traced then Trace.note_pending t.trace (Heap.length t.q)

let schedule_in t dt f = schedule t (t.now +. dt) f

let run ?until t =
  let stop = Option.value until ~default:infinity in
  let rec loop () =
    match Heap.peek t.q with
    | None -> ()
    | Some (at, _) when at > stop -> ()
    | Some _ ->
        (match Heap.pop t.q with
        | Some (at, f) ->
            t.now <- at;
            t.processed <- t.processed + 1;
            f ()
        | None -> ());
        loop ()
  in
  loop ();
  if t.traced then Trace.note_engine t.trace ~events:t.processed

let pending t = Heap.length t.q
let events_processed t = t.processed
