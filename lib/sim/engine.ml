module Heap = Peel_util.Pairing_heap
module Cal = Peel_util.Calendar_queue

(* Two interchangeable event queues with the same (time, FIFO) total
   order: the SoA binary heap (best at the thousands-of-events scale)
   and the calendar queue (O(1) amortized, built for the 10^7+-event
   runs of k = 32/64 fabrics).  [`Auto] starts on the heap and migrates
   once the pending population shows the run is calendar-sized. *)
type queue = H of (unit -> unit) Heap.t | C of (unit -> unit) Cal.t

type t = {
  mutable now : float;
  mutable q : queue;
  auto : bool;
  mutable migrated : bool;
  mutable processed : int;
  trace : Trace.t;
  traced : bool;
      (* [Trace.enabled trace], latched at creation: [schedule] is the
         hottest call in the simulator, and with tracing off it must do
         no trace work at all — not even the queue-length read that
         feeds the queue-depth high-water mark. *)
}

(* Above this many pending events the calendar's O(1) push/pop beats
   the heap's O(log n) sifts; below it the heap's cache-warm float
   array wins.  Crossed only by the large-fabric runs. *)
let auto_threshold = 1 lsl 15

let env_policy () =
  match Sys.getenv_opt "PEEL_CALQUEUE" with
  | Some ("1" | "cal" | "calendar" | "on") -> `Calendar
  | Some ("0" | "heap" | "off") -> `Heap
  | Some _ | None -> `Auto

let create ?(trace = Trace.null) ?queue () =
  let policy = match queue with Some p -> p | None -> env_policy () in
  {
    now = 0.0;
    q = (match policy with `Calendar -> C (Cal.create ()) | `Heap | `Auto -> H (Heap.create ()));
    auto = (match policy with `Auto -> true | `Heap | `Calendar -> false);
    migrated = false;
    processed = 0;
    trace;
    traced = Trace.enabled trace;
  }

let now t = t.now

let queue_kind t = match t.q with H _ -> `Heap | C _ -> `Calendar

let q_len t = match t.q with H h -> Heap.length h | C c -> Cal.length c
let q_peek t = match t.q with H h -> Heap.peek h | C c -> Cal.peek c
let q_pop t = match t.q with H h -> Heap.pop h | C c -> Cal.pop c

(* Drain the heap in pop order into a fresh calendar: pushes arrive in
   (time, seq) order and receive fresh ascending seqs, so the total
   order — FIFO ties included — is preserved exactly. *)
let migrate t h =
  let c = Cal.create () in
  let continue = ref true in
  while !continue do
    match Heap.pop h with
    | Some (at, f) -> Cal.push c at f
    | None -> continue := false
  done;
  t.q <- C c;
  t.migrated <- true

let schedule t at f =
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %.9f is before now %.9f" at t.now);
  (match t.q with
  | H h ->
      Heap.push h at f;
      if t.auto && not t.migrated && Heap.length h > auto_threshold then
        migrate t h
  | C c -> Cal.push c at f);
  if t.traced then Trace.note_pending t.trace (q_len t)

let schedule_in t dt f = schedule t (t.now +. dt) f

let run ?until t =
  let stop = Option.value until ~default:infinity in
  let rec loop () =
    match q_peek t with
    | None -> ()
    | Some (at, _) when at > stop -> ()
    | Some _ ->
        (match q_pop t with
        | Some (at, f) ->
            t.now <- at;
            t.processed <- t.processed + 1;
            f ()
        | None -> ());
        loop ()
  in
  loop ();
  if t.traced then Trace.note_engine t.trace ~events:t.processed

let pending t = q_len t
let events_processed t = t.processed
