module Heap = Peel_util.Pairing_heap

type t = {
  mutable now : float;
  q : (unit -> unit) Heap.t;
  mutable processed : int;
  trace : Trace.t;
}

let create ?(trace = Trace.null) () =
  { now = 0.0; q = Heap.create (); processed = 0; trace }

let now t = t.now

let schedule t at f =
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %.9f is before now %.9f" at t.now);
  Heap.push t.q at f;
  Trace.note_pending t.trace (Heap.length t.q)

let schedule_in t dt f = schedule t (t.now +. dt) f

let run ?until t =
  let stop = Option.value until ~default:infinity in
  let rec loop () =
    match Heap.peek t.q with
    | None -> ()
    | Some (at, _) when at > stop -> ()
    | Some _ ->
        (match Heap.pop t.q with
        | Some (at, f) ->
            t.now <- at;
            t.processed <- t.processed + 1;
            f ()
        | None -> ());
        loop ()
  in
  loop ();
  Trace.note_engine t.trace ~events:t.processed

let pending t = Heap.length t.q
let events_processed t = t.processed
