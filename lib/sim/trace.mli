(** Structured, low-overhead event tracing for the simulator.

    The paper's evaluation (Figs. 5–7) argues entirely from what
    happens on the wire — queue backlog, ECN marking, DCQCN rate
    evolution, per-link utilization — so the simulator records those
    micro-events here: per-link reservations (with queueing delay and
    backlog), per-flow chunk releases and deliveries, congestion
    control activity (CNPs, rate cuts, §4 guard-timer holds) and loss
    events.

    A trace has a verbosity {!level}:

    - [Off]: every emitter returns immediately; the simulation's hot
      path does no tracing work and allocates nothing.  {!null} is a
      shared always-off trace, the default everywhere.
    - [Counters]: aggregate counters only — O(1) memory however long
      the run.
    - [Full]: counters plus the structured event log.  High-volume
      [Reserve] events can additionally be downsampled with the
      [sample] knob (record every Nth); counters stay exact.

    Events carry the simulation timestamp and are recorded in emit
    order, so a well-formed trace has non-decreasing timestamps —
    one of the invariants {!Peel_check.Check_sim.check_trace} lints.

    [flow] identifiers are the workload's collective ids
    ([Peel_workload.Spec.collective.id]); [-1] marks events the
    emitting layer cannot attribute to a flow (e.g. a per-hop unicast
    retransmission deep inside {!Transfer}). *)

(** Verbosity: [Off] does no work, [Counters] keeps the aggregate
    {!counters} in O(1) memory, [Full] additionally records the event
    log. *)
type level = Off | Counters | Full

type kind =
  | Reserve of { link : int; bytes : float; queue_delay : float; backlog : float }
      (** a chunk claimed [link]; [backlog] is the queue depth in
          seconds {e before} this reservation *)
  | Ecn_mark of { link : int; flow : int; chunk : int }
      (** queueing delay on [link] exceeded the ECN threshold *)
  | Delivery of { node : int; flow : int; chunk : int }
      (** a destination received a chunk (intermediate hops excluded) *)
  | Release of { flow : int; chunk : int; rate : float }
      (** the source emitted a chunk, paced at [rate] bytes/s *)
  | Cnp of { flow : int }  (** a congestion notification reached the sender *)
  | Rate_cut of { flow : int; rate : float }
      (** DCQCN halved the rate; [rate] is the new value *)
  | Guard_hold of { flow : int }
      (** the §4 guard timer suppressed a rate cut *)
  | Drop of { link : int }
      (** the loss model dropped a chunk on [link] (stamped at the
          chunk's reservation instant, keeping the log monotone) *)
  | Retransmit of { flow : int; node : int }
      (** a repair send (hop-local or end-to-end); [-1] = unattributed *)
  | Link_fail of { link : int }
      (** a scheduled fault took the duplex pair containing [link] down
          ([link] is the even direction's id) *)
  | Link_recover of { link : int }
      (** the duplex pair came back up *)
  | Replan of { flow : int; cost : int }
      (** the controller spliced a re-peeled tree into [flow]; [cost]
          is the new tree's link count *)
  | Rule_install of { group : int; switch : int; rules : int }
      (** the controller installed [group]'s exact replication entry at
          [switch]; [rules] is the entry's egress fan-out (ports) *)
  | Refine of { group : int; cost : int }
      (** [group]'s installs all landed — subsequent chunks ride the
          exact per-group tree of [cost] links (§3.3 stage two) *)
  | Evict of { group : int; switch : int }
      (** TCAM pressure at [switch] evicted [group]'s entries; the
          group falls back to static prefix rules *)

type event = { time : float; kind : kind }
(** One log entry, stamped with simulation time. *)

(** Aggregate counters, updated on every emit at [Counters] and [Full]
    (exact regardless of sampling).  [engine_events] and
    [engine_max_pending] are maintained by {!Engine}. *)
type counters = {
  mutable reservations : int;
  mutable bytes_reserved : float;
  mutable ecn_marks : int;
  mutable deliveries : int;
  mutable releases : int;
  mutable cnps : int;
  mutable rate_cuts : int;
  mutable guard_holds : int;
  mutable drops : int;
  mutable retransmits : int;
  mutable link_fails : int;
  mutable link_recovers : int;
  mutable replans : int;
  mutable rule_installs : int;
  mutable refines : int;
  mutable evictions : int;
  mutable plan_cache_hits : int;
      (** service planning-cache hits (trees + prefix plans) *)
  mutable plan_cache_misses : int;
  mutable engine_events : int;
  mutable engine_max_pending : int;
}

type t
(** A trace sink: a verbosity level, the counters, and (at [Full]) the
    growing event log. *)

val create : ?level:level -> ?sample:int -> unit -> t
(** [level] defaults to [Full]; [sample] (default 1) records every Nth
    [Reserve] event.  Raises [Invalid_argument] if [sample < 1]. *)

val null : t
(** The shared always-[Off] trace; all emitters are no-ops on it. *)

val enabled : t -> bool
(** [level t <> Off]. *)

val level : t -> level
(** The verbosity the trace was created with. *)

val sample : t -> int
(** The [Reserve]-sampling stride (1 = record every reservation). *)

val counters : t -> counters
(** The live counter record (all zero on an [Off] trace). *)

val events : t -> event array
(** Recorded events in emit order (a copy; empty below [Full]). *)

val num_events : t -> int
(** Number of recorded events (0 below [Full]). *)

val sampled_out : t -> int
(** [Reserve] emissions the sampling knob skipped (so
    [reservations = reserve events + sampled_out] on a [Full] trace). *)

(** {1 Emitters}

    Called from the simulator's hot paths; each checks the level first
    and returns immediately on an [Off] trace. *)

val reserve :
  t -> time:float -> link:int -> bytes:float -> queue_delay:float ->
  backlog:float -> unit
(** A chunk of [bytes] claimed [link]; subject to the sampling knob
    (counters stay exact). *)

val ecn_mark : t -> time:float -> link:int -> flow:int -> chunk:int -> unit
(** A chunk of [flow] saw over-threshold queueing delay on [link]. *)

val delivery : t -> time:float -> node:int -> flow:int -> chunk:int -> unit
(** A destination [node] received [chunk] of [flow]. *)

val release : t -> time:float -> flow:int -> chunk:int -> rate:float -> unit
(** The source of [flow] emitted [chunk], paced at [rate] bytes/s. *)

val cnp : t -> time:float -> flow:int -> unit
(** A congestion notification reached [flow]'s sender. *)

val rate_cut : t -> time:float -> flow:int -> rate:float -> unit
(** DCQCN cut [flow]'s sending rate to [rate] bytes/s. *)

val guard_hold : t -> time:float -> flow:int -> unit
(** The §4 guard timer suppressed a rate cut for [flow]. *)

val drop : t -> time:float -> link:int -> unit
(** The loss model dropped a chunk on [link]. *)

val retransmit : t -> time:float -> flow:int -> node:int -> unit
(** A repair send for [flow] from [node] ([-1] = unattributed). *)

val link_fail : t -> time:float -> link:int -> unit
(** A fault schedule took a duplex pair down; [link] should be the even
    direction's id (see {!Peel_topology.Graph.duplex_ids}). *)

val link_recover : t -> time:float -> link:int -> unit
(** The duplex pair containing [link] came back up. *)

val replan : t -> time:float -> flow:int -> cost:int -> unit
(** The controller swapped [flow]'s multicast tree for a re-peeled one
    of [cost] links. *)

val rule_install : t -> time:float -> group:int -> switch:int -> rules:int -> unit
(** The controller installed [group]'s exact entry ([rules] egress
    ports) at [switch]. *)

val refine : t -> time:float -> group:int -> cost:int -> unit
(** [group] switched from static prefix rules to its exact per-group
    tree of [cost] links. *)

val evict : t -> time:float -> group:int -> switch:int -> unit
(** [group] lost its entries to TCAM pressure at [switch] and reverted
    to static prefix rules. *)

val plan_cache : t -> hits:int -> misses:int -> unit
(** Accumulate service planning-cache hit/miss totals (counters only —
    no event-log entry). *)

val note_engine : t -> events:int -> unit
(** Record the engine's processed-event count (monotone max). *)

val note_pending : t -> int -> unit
(** Record an event-queue depth sample (keeps the high-water mark). *)

(** {1 Aggregation} *)

type link_stats = {
  l_reservations : int;
  l_bytes : float;
  l_ecn_marks : int;
  l_max_backlog : float;   (** seconds of queue ahead, worst case *)
  l_sum_queue_delay : float;
}

val link_stats : t -> nlinks:int -> link_stats array
(** Per-link aggregates from the recorded [Reserve]/[Ecn_mark] events
    (subject to sampling; all-zero below [Full]).  Events naming a link
    [>= nlinks] are ignored. *)

type flow_stats = {
  f_flow : int;
  f_releases : int;
  f_deliveries : int;
  f_cnps : int;
  f_rate_cuts : int;
  f_guard_holds : int;
  f_retransmits : int;
  f_replans : int;
  f_first_delivery : float;      (** nan if none *)
  f_last_delivery : float;       (** nan if none *)
  f_mean_chunk_latency : float;  (** release-to-delivery; nan if unknown *)
  f_max_chunk_latency : float;   (** nan if unknown *)
}

val flow_stats : t -> flow_stats list
(** Per-flow aggregates from the event log, ascending flow id
    (unattributed [-1] events excluded).  Chunk latency pairs each
    delivery with its chunk's first [Release]. *)

(** {1 Export} *)

val counters_to_json : t -> Peel_util.Json.t
(** Counters as a flat JSON object (stable key names). *)

val events_to_json : t -> Peel_util.Json.t
(** The event log as a JSON array; every event is an object with ["t"]
    and ["kind"] plus the kind's fields. *)

val csv_header : string
(** ["time,kind,link,node,flow,chunk,bytes,queue_delay,backlog,rate"]. *)

val events_csv : t -> string
(** The event log as CSV ({!csv_header} first); fields a kind lacks are
    left empty.  Control-plane events reuse the fixed columns:
    [switch] prints under [node], [group] under [flow], and a
    [Rule_install]'s [rules] under [chunk]. *)
