open Peel_topology

type t = {
  graph : Graph.t;
  free : float array;
  busy : float array;
  epochs : int array;
  trace : Trace.t;
}

type reservation = { start : float; finish : float; queue_delay : float }

let create ?(trace = Trace.null) graph =
  let n = Graph.num_links graph in
  {
    graph;
    free = Array.make n 0.0;
    busy = Array.make n 0.0;
    epochs = Array.make n 0;
    trace;
  }

let trace t = t.trace

let up t ~link = Graph.link_up t.graph link

let epoch t ~link = t.epochs.(link)

let set_link_up t ~now ~duplex ~up:want =
  let cur = Graph.link_up t.graph duplex in
  if cur = want then false
  else begin
    let even = duplex land lnot 1 in
    if want then begin
      Graph.recover_link t.graph duplex;
      Trace.link_recover t.trace ~time:now ~link:even
    end
    else begin
      Graph.fail_link t.graph duplex;
      (* Bumping the epoch invalidates every chunk currently in flight
         (or queued) on either direction: Transfer compares the epoch it
         saw at reservation time against the one at arrival. *)
      t.epochs.(duplex) <- t.epochs.(duplex) + 1;
      t.epochs.(Graph.peer_link duplex) <- t.epochs.(Graph.peer_link duplex) + 1;
      Trace.link_fail t.trace ~time:now ~link:even
    end;
    true
  end

let reserve t ~link ~now ~bytes =
  if bytes <= 0.0 then invalid_arg "Link_state.reserve: bytes must be positive";
  let l = Graph.link t.graph link in
  if not l.Graph.up then invalid_arg "Link_state.reserve: link is down";
  let backlog = Float.max 0.0 (t.free.(link) -. now) in
  let start = Float.max now t.free.(link) in
  let tx = bytes /. l.Graph.bandwidth in
  let finish = start +. tx in
  t.free.(link) <- finish;
  t.busy.(link) <- t.busy.(link) +. tx;
  let queue_delay = start -. now in
  Trace.reserve t.trace ~time:now ~link ~bytes ~queue_delay ~backlog;
  { start; finish; queue_delay }

let arrival t ~link r = r.finish +. (Graph.link t.graph link).Graph.latency

let backlog t ~link ~now = Float.max 0.0 (t.free.(link) -. now)

let busy_seconds t ~link = t.busy.(link)

let utilization t ~link ~horizon =
  if horizon <= 0.0 then invalid_arg "Link_state.utilization: horizon > 0";
  t.busy.(link) /. horizon

let reset t =
  Array.fill t.free 0 (Array.length t.free) 0.0;
  Array.fill t.busy 0 (Array.length t.busy) 0.0;
  Array.fill t.epochs 0 (Array.length t.epochs) 0
