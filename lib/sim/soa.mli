(** Structure-of-arrays views for the simulator hot path.

    The record-based {!Peel_topology.Graph} API is right for planning
    code, but inside an event loop every [Graph.link] call chases a
    pointer into a boxed record.  This module flattens what the loop
    actually touches — per-link bandwidth/latency/ownership and
    per-collective forwarding DAGs — into dense int-indexed arrays, so
    the sharded engine ({!Shard}) runs record-free: an event is one
    integer key, a link is an index into parallel float arrays.

    It also defines the pod {e sharding} of a fabric: the node → shard
    map and the conservative lookahead that makes null-message-free
    windowed execution possible (events crossing a shard boundary are
    always at least [lookahead] in the future, because they must cross
    a boundary link and therefore pay its transmission + propagation
    delay). *)

open Peel_topology

(** {1 Links} *)

type links = {
  l_n : int;                (** number of directed links *)
  l_src : int array;        (** source node per directed link *)
  l_dst : int array;        (** destination node per directed link *)
  l_bw : float array;       (** bandwidth, bytes/second *)
  l_lat : float array;      (** propagation latency, seconds *)
}

val links_of_graph : Graph.t -> links
(** Flatten every directed link's static fields.  Link state (down
    links, epochs) is deliberately not captured: the sharded engine
    runs fault-free scenarios only. *)

(** {1 Sharding} *)

type sharding = {
  s_n : int;                  (** number of shards (1 = sequential) *)
  s_of_node : int array;      (** owning shard per node *)
  s_of_link : int array;      (** owning shard per directed link — the
                                  shard of the link's source node,
                                  which is the only shard that ever
                                  reserves it *)
  s_lookahead : float;        (** conservative window extension: every
                                  cross-shard event lands at least this
                                  far after the event that created it
                                  ([infinity] when [s_n = 1]) *)
}

val shard : Fabric.t -> jobs:int -> min_bytes:float -> sharding
(** Partition the fabric into [min jobs (pods fabric)] shards: a pod's
    nodes map to [pod mod shards], core switches to [core_idx mod
    shards] so the core layer spreads evenly.  [min_bytes] is the
    smallest chunk any flow will transmit; the lookahead is
    [min over boundary links of (latency + min_bytes / bandwidth)],
    scaled by [1 - 1e-6] so float rounding in the per-hop arithmetic
    can never push a cross-shard arrival below the window bound.
    Raises [Invalid_argument] if [jobs < 1] or [min_bytes <= 0]. *)

(** {1 Flows}

    A flow is one collective flattened to a forwarding DAG whose edges
    are directed link traversals: executing an edge reserves its link
    and schedules the edge's successors at the arrival time.  This is
    the static-schedule equivalent of what {!Transfer.unicast} /
    {!Transfer.multicast} do with closures, with identical arithmetic. *)

type dag = {
  d_link : int array;      (** per edge: the directed link it crosses *)
  d_deliver : int array;   (** per edge: destination endpoint to credit
                               on arrival, or -1 when the edge ends at
                               a relay/switch *)
  d_succ_off : int array;  (** CSR offsets into [d_succ]; length
                               [edges + 1] *)
  d_succ : int array;      (** successor edge indices, fired at this
                               edge's arrival time *)
  d_roots : int array;     (** edges released at the flow's arrival *)
}

val dag_edges : dag -> int
(** Number of edges ([Array.length d_link]). *)

val validate_dag : links -> dag -> (unit, string) result
(** Structural sanity: link ids in range, offsets monotone, successor
    indices in range, every root in range. *)

type flow = {
  f_id : int;              (** collective id (trace/fingerprint key) *)
  f_arrival : float;       (** release time of every chunk, seconds *)
  f_chunks : int;          (** chunk count (>= 1) *)
  f_chunk_bytes : float;   (** bytes per chunk transmission *)
  f_expected : int;        (** deliveries to credit before complete:
                               [chunks * |dests|] *)
  f_dags : dag array;      (** chunk [c] forwards over
                               [f_dags.(c mod Array.length f_dags)] —
                               one entry for single-tree schemes, two
                               for the double binary tree's parity
                               split *)
}

val flow_max_edges : flow -> int
(** Largest [dag_edges] over the flow's DAG classes — the per-chunk
    key stride {!Shard} uses to give every (chunk, edge) a unique,
    order-preserving integer. *)
