open Peel_topology

let path_links g nodes =
  let rec go acc = function
    | a :: (b :: _ as rest) -> (
        match Graph.link_between g a b with
        | Some lid -> go (lid :: acc) rest
        | None -> invalid_arg "Transfer.path_links: missing or down link")
    | _ -> List.rev acc
  in
  go [] nodes

type loss = {
  loss_rng : Peel_util.Rng.t;
  prob : float;
  rto : float;
  mutable retransmissions : int;
}

let loss_model ~seed ~prob ?(rto = 100e-6) () =
  if prob < 0.0 || prob >= 1.0 then invalid_arg "Transfer.loss_model: prob in [0,1)";
  if rto <= 0.0 then invalid_arg "Transfer.loss_model: rto > 0";
  { loss_rng = Peel_util.Rng.create seed; prob; rto; retransmissions = 0 }

let dropped = function
  | None -> false
  | Some l -> l.prob > 0.0 && Peel_util.Rng.float l.loss_rng 1.0 < l.prob

let unicast engine links ~links:path ~bytes ~start ?on_reserve ?loss
    ~on_delivered () =
  let rec hop remaining t =
    match remaining with
    | [] -> on_delivered t
    | lid :: rest ->
        Engine.schedule engine t (fun () ->
            let r = Link_state.reserve links ~link:lid ~now:t ~bytes in
            (match on_reserve with
            | Some f -> f ~link:lid ~queue_delay:r.Link_state.queue_delay
            | None -> ());
            if dropped loss then begin
              (* This hop's sender detects the gap and resends. *)
              let l = Option.get loss in
              l.retransmissions <- l.retransmissions + 1;
              let tr = Link_state.trace links in
              Trace.drop tr ~time:t ~link:lid;
              Engine.schedule engine
                (r.Link_state.finish +. l.rto)
                (fun () ->
                  let now = Engine.now engine in
                  Trace.retransmit tr ~time:now ~flow:(-1) ~node:(-1);
                  hop remaining now)
            end
            else begin
              let arrive = Link_state.arrival links ~link:lid r in
              Engine.schedule engine arrive (fun () -> hop rest arrive)
            end)
  in
  hop path start

let multicast engine links ~tree ~bytes ~start ?on_reserve ?loss ?on_lost
    ~on_delivered () =
  (* Every member below a dropped link misses the chunk. *)
  let rec orphan v t =
    List.iter
      (fun (child, _) ->
        (match on_lost with
        | Some f -> f ~node:child ~time:t
        | None -> ());
        orphan child t)
      (Peel_steiner.Tree.children tree v)
  in
  let rec descend v t =
    List.iter
      (fun (child, lid) ->
        Engine.schedule engine t (fun () ->
            let r = Link_state.reserve links ~link:lid ~now:t ~bytes in
            (match on_reserve with
            | Some f -> f ~link:lid ~queue_delay:r.Link_state.queue_delay
            | None -> ());
            if dropped loss then begin
              Trace.drop (Link_state.trace links) ~time:t ~link:lid;
              (match on_lost with
              | Some f -> f ~node:child ~time:r.Link_state.finish
              | None -> ());
              orphan child r.Link_state.finish
            end
            else begin
              let arrive = Link_state.arrival links ~link:lid r in
              Engine.schedule engine arrive (fun () ->
                  on_delivered ~node:child ~time:arrive;
                  descend child arrive)
            end))
      (Peel_steiner.Tree.children tree v)
  in
  Engine.schedule engine start (fun () -> descend (Peel_steiner.Tree.root tree) start)
