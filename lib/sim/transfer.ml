open Peel_topology

let path_links g nodes =
  let rec go acc = function
    | a :: (b :: _ as rest) -> (
        match Graph.link_between g a b with
        | Some lid -> go (lid :: acc) rest
        | None -> invalid_arg "Transfer.path_links: missing or down link")
    | _ -> List.rev acc
  in
  go [] nodes

type loss = {
  loss_rng : Peel_util.Rng.t;
  prob : float;
  rto : float;
  mutable retransmissions : int;
}

let loss_model ~seed ~prob ?(rto = 100e-6) () =
  if prob < 0.0 || prob >= 1.0 then invalid_arg "Transfer.loss_model: prob in [0,1)";
  if rto <= 0.0 then invalid_arg "Transfer.loss_model: rto > 0";
  { loss_rng = Peel_util.Rng.create seed; prob; rto; retransmissions = 0 }

let dropped = function
  | None -> false
  | Some l -> l.prob > 0.0 && Peel_util.Rng.float l.loss_rng 1.0 < l.prob

(* Retry cadence when a hop finds its link down and nobody is listening
   for the loss: stall and probe until the pair recovers. *)
let default_rto = 100e-6

let retry_after = function Some l -> l.rto | None -> default_rto

let unicast engine links ~links:path ~bytes ~start ?on_reserve ?loss ?on_lost
    ~on_delivered () =
  let tr = Link_state.trace links in
  let rec hop remaining t =
    match remaining with
    | [] -> on_delivered t
    | lid :: rest ->
        Engine.schedule engine t (fun () ->
            if not (Link_state.up links ~link:lid) then begin
              (* The hop's link is down (a scheduled fault): the chunk is
                 lost here.  With [on_lost] the caller repairs end to
                 end; otherwise this hop stalls and retries until the
                 pair recovers. *)
              Trace.drop tr ~time:t ~link:lid;
              match on_lost with
              | Some f -> f ~time:t
              | None ->
                  Engine.schedule engine (t +. retry_after loss) (fun () ->
                      hop remaining (Engine.now engine))
            end
            else begin
              let epoch0 = Link_state.epoch links ~link:lid in
              let r = Link_state.reserve links ~link:lid ~now:t ~bytes in
              (match on_reserve with
              | Some f -> f ~link:lid ~queue_delay:r.Link_state.queue_delay
              | None -> ());
              if dropped loss then begin
                (* This hop's sender detects the gap and resends. *)
                let l = Option.get loss in
                l.retransmissions <- l.retransmissions + 1;
                Trace.drop tr ~time:t ~link:lid;
                Engine.schedule engine
                  (r.Link_state.finish +. l.rto)
                  (fun () ->
                    let now = Engine.now engine in
                    Trace.retransmit tr ~time:now ~flow:(-1) ~node:(-1);
                    hop remaining now)
              end
              else begin
                let arrive = Link_state.arrival links ~link:lid r in
                Engine.schedule engine arrive (fun () ->
                    if Link_state.epoch links ~link:lid <> epoch0 then begin
                      (* The link failed while the chunk was in flight. *)
                      Trace.drop tr ~time:arrive ~link:lid;
                      match on_lost with
                      | Some f -> f ~time:arrive
                      | None ->
                          Engine.schedule engine (arrive +. retry_after loss)
                            (fun () -> hop remaining (Engine.now engine))
                    end
                    else hop rest arrive)
              end
            end)
  in
  hop path start

let multicast engine links ~tree ~bytes ~start ?on_reserve ?loss ?on_lost
    ~on_delivered () =
  let tr = Link_state.trace links in
  (* Every member below a failed link misses the chunk. *)
  let rec orphan v t =
    List.iter
      (fun (child, _) ->
        (match on_lost with
        | Some f -> f ~node:child ~time:t
        | None -> ());
        orphan child t)
      (Peel_steiner.Tree.children tree v)
  in
  let lose child t =
    (match on_lost with Some f -> f ~node:child ~time:t | None -> ());
    orphan child t
  in
  let rec send_edge child lid t =
    Engine.schedule engine t (fun () ->
        if not (Link_state.up links ~link:lid) then begin
          Trace.drop tr ~time:t ~link:lid;
          lose child t
        end
        else begin
          let epoch0 = Link_state.epoch links ~link:lid in
          let r = Link_state.reserve links ~link:lid ~now:t ~bytes in
          (match on_reserve with
          | Some f -> f ~link:lid ~queue_delay:r.Link_state.queue_delay
          | None -> ());
          if dropped loss then begin
            (* Hop-local selective repeat, exactly as unicast does: the
               edge's sender detects the gap and resends after the RTO,
               so a lossy hop delays only its own subtree and the repair
               is accounted in [loss.retransmissions]. *)
            let l = Option.get loss in
            l.retransmissions <- l.retransmissions + 1;
            Trace.drop tr ~time:t ~link:lid;
            Engine.schedule engine
              (r.Link_state.finish +. l.rto)
              (fun () ->
                let now = Engine.now engine in
                Trace.retransmit tr ~time:now ~flow:(-1) ~node:(-1);
                send_edge child lid now)
          end
          else begin
            let arrive = Link_state.arrival links ~link:lid r in
            Engine.schedule engine arrive (fun () ->
                if Link_state.epoch links ~link:lid <> epoch0 then begin
                  Trace.drop tr ~time:arrive ~link:lid;
                  lose child arrive
                end
                else begin
                  on_delivered ~node:child ~time:arrive;
                  descend child arrive
                end)
          end
        end)
  and descend v t =
    List.iter
      (fun (child, lid) -> send_edge child lid t)
      (Peel_steiner.Tree.children tree v)
  in
  Engine.schedule engine start (fun () ->
      descend (Peel_steiner.Tree.root tree) start)
