(** DCQCN-lite sender rate control with the paper's multicast guard
    timer (§4, "Congestion control").

    In DCQCN an ECN mark on a data packet makes the receiver emit a CNP
    and the sender multiplicatively cut its rate.  Under multicast a
    single marked chunk fans out into one CNP *per receiver*, so a
    64-receiver broadcast can slash the sender's rate 64 times for one
    congestion event — the paper's motivation for replacing the
    receiver-side limiter with a sender-side guard timer that honours
    at most one rate reduction per 50 µs.

    The model: multiplicative decrease on CNP (factor 1/2), linear
    recovery back to line rate (lazy, applied on every interaction),
    and a floor at 1/1000 of line rate. *)

type t
(** One sender's rate-control state. *)

val default_guard : float
(** 50e-6 seconds, the paper's value. *)

val create :
  ?guard:float option -> ?trace:Trace.t -> ?flow:int -> line_rate:float ->
  unit -> t
(** [guard = Some g] enables the sender-side guard timer with window
    [g]; [None] reacts to every CNP (classic receiver-driven DCQCN
    behaviour under multicast). Default: [Some default_guard].

    With a [trace], every {!on_cnp} emits a [Cnp] event attributed to
    [flow] (default [-1] = unattributed), followed by a [Rate_cut]
    (carrying the new rate) or — when the guard window suppresses the
    reduction — a [Guard_hold]: the per-flow rate-evolution record the
    paper's §4 guard-timer figure is drawn from. *)

val rate : t -> now:float -> float
(** Current sending rate (bytes/s) after lazy recovery. *)

val on_cnp : t -> now:float -> unit
(** Congestion notification from one receiver. *)

val release_duration : t -> now:float -> bytes:float -> float
(** Time to pace out one chunk at the current rate. *)

val cuts : t -> int
(** Number of rate reductions actually applied (for tests/telemetry). *)
