open Peel_topology

type links = {
  l_n : int;
  l_src : int array;
  l_dst : int array;
  l_bw : float array;
  l_lat : float array;
}

let links_of_graph g =
  let n = Graph.num_links g in
  let src = Array.make n 0
  and dst = Array.make n 0
  and bw = Array.make n 0.0
  and lat = Array.make n 0.0 in
  for lid = 0 to n - 1 do
    let l = Graph.link g lid in
    src.(lid) <- l.Graph.src;
    dst.(lid) <- l.Graph.dst;
    bw.(lid) <- l.Graph.bandwidth;
    lat.(lid) <- l.Graph.latency
  done;
  { l_n = n; l_src = src; l_dst = dst; l_bw = bw; l_lat = lat }

type sharding = {
  s_n : int;
  s_of_node : int array;
  s_of_link : int array;
  s_lookahead : float;
}

(* The margin under the true minimum cross-boundary delay: large enough
   to absorb the few ulps the per-hop float arithmetic can lose, vastly
   smaller than any real event spacing. *)
let lookahead_haircut = 1.0 -. 1e-6

let shard fabric ~jobs ~min_bytes =
  if jobs < 1 then invalid_arg "Soa.shard: jobs >= 1";
  if min_bytes <= 0.0 then invalid_arg "Soa.shard: min_bytes > 0";
  let g = Fabric.graph fabric in
  let nshards = max 1 (min jobs (Fabric.pods fabric)) in
  let nnodes = Graph.num_nodes g in
  let of_node =
    Array.init nnodes (fun v ->
        let nd = Graph.node g v in
        if nd.Graph.pod >= 0 then nd.Graph.pod mod nshards
        else nd.Graph.idx mod nshards)
  in
  let nlinks = Graph.num_links g in
  let of_link = Array.make nlinks 0 in
  let look = ref infinity in
  for lid = 0 to nlinks - 1 do
    let l = Graph.link g lid in
    of_link.(lid) <- of_node.(l.Graph.src);
    if nshards > 1 && of_node.(l.Graph.src) <> of_node.(l.Graph.dst) then begin
      let d = l.Graph.latency +. (min_bytes /. l.Graph.bandwidth) in
      if d < !look then look := d
    end
  done;
  let lookahead =
    if nshards = 1 then infinity else !look *. lookahead_haircut
  in
  { s_n = nshards; s_of_node = of_node; s_of_link = of_link; s_lookahead = lookahead }

type dag = {
  d_link : int array;
  d_deliver : int array;
  d_succ_off : int array;
  d_succ : int array;
  d_roots : int array;
}

let dag_edges d = Array.length d.d_link

let validate_dag links d =
  let n = dag_edges d in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if Array.length d.d_deliver <> n then err "deliver array length %d <> %d" (Array.length d.d_deliver) n
  else if Array.length d.d_succ_off <> n + 1 then
    err "succ_off length %d <> %d" (Array.length d.d_succ_off) (n + 1)
  else begin
    let bad = ref None in
    Array.iteri
      (fun e lid ->
        if !bad = None && (lid < 0 || lid >= links.l_n) then
          bad := Some (Printf.sprintf "edge %d: link %d out of range" e lid))
      d.d_link;
    for i = 0 to n - 1 do
      if !bad = None && d.d_succ_off.(i) > d.d_succ_off.(i + 1) then
        bad := Some (Printf.sprintf "succ_off not monotone at %d" i)
    done;
    if !bad = None && n > 0 && d.d_succ_off.(n) <> Array.length d.d_succ then
      bad := Some "succ_off does not cover d_succ";
    Array.iter
      (fun s ->
        if !bad = None && (s < 0 || s >= n) then
          bad := Some (Printf.sprintf "successor %d out of range" s))
      d.d_succ;
    Array.iter
      (fun r ->
        if !bad = None && (r < 0 || r >= n) then
          bad := Some (Printf.sprintf "root %d out of range" r))
      d.d_roots;
    match !bad with None -> Ok () | Some m -> Error m
  end

type flow = {
  f_id : int;
  f_arrival : float;
  f_chunks : int;
  f_chunk_bytes : float;
  f_expected : int;
  f_dags : dag array;
}

let flow_max_edges f =
  Array.fold_left (fun acc d -> max acc (dag_edges d)) 0 f.f_dags
