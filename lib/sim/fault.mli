(** Deterministic, seeded schedules of mid-run link failures.

    The paper's asymmetric-Clos story (§2.2–2.5) is about fabrics that
    are *already* broken when a tree is built; this module supplies the
    dynamic half: a validated list of [(time, duplex link id)]
    fail/recover events that {!install} applies to the live graph while
    a collective is in flight.  Each applied transition flips both
    directions of the duplex pair ({!Link_state.set_link_up}), bumps
    the failure epoch so in-flight chunks on the pair are dropped by
    {!Transfer}, and emits a [Link_fail]/[Link_recover] trace event —
    so a traced run carries the full fault history and
    {!Peel_check.Check_sim.check_trace} can verify that nothing was
    ever reserved on a down link (SIM007).

    Schedules are plain data built from explicit event lists (or the
    {!schedule_of_failures} convenience), so the same schedule replays
    bit-identically: same seed + same schedule => same trace. *)

(** What happens to the duplex pair at the event's instant. *)
type action = Fail | Recover

type event = {
  at : float;      (** absolute simulation time, seconds *)
  duplex : int;    (** either direction's id; the whole pair flips *)
  action : action;
}

type t
(** A validated schedule: events sorted by time (stable for ties). *)

val of_list : event list -> t
(** Sorts (stably) by [at].  Raises [Invalid_argument] if any event has
    a negative or non-finite time or a negative link id. *)

val events : t -> event list
(** The schedule's events in application order. *)

val is_empty : t -> bool
(** [true] iff the schedule carries no events. *)

val schedule_of_failures :
  at:float -> ?recover_at:float -> int list -> t
(** Fail every listed duplex id at [at]; with [recover_at] (which must
    be later), bring them all back up then.  The usual recipe: draw ids
    with {!Peel_topology.Fabric.fail_random}, recover them with
    {!Peel_topology.Fabric.recover_link}, then hand the ids here so the
    failure happens mid-run instead of up front. *)

val install :
  Engine.t -> Link_state.t -> t -> ?on_event:(event -> unit) -> unit -> unit
(** Schedule every event on the engine.  Install {e before} launching
    collectives: the engine breaks same-time ties FIFO, so an installed
    fault at time [T] is applied before any transfer work scheduled for
    [T] later in the run — trace order then guarantees no reservation
    precedes the [Link_fail] it races with.  [on_event] fires after a
    transition is applied (and is skipped for no-op events, e.g.
    failing an already-down pair) — the hook controllers use to start
    their detection clock. *)
