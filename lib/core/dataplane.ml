open Peel_topology
open Peel_prefix

type delivery = {
  packet_index : int;
  pods_reached : int list;
  tors_reached : int list;
}

let deliver fabric (plan : Plan.t) =
  let m_tor = Plan.tor_id_bits fabric in
  let m_pod = Plan.pod_id_bits fabric in
  let agg_table = Rules.static_table ~m:m_tor in
  let core_table = Rules.static_table ~m:m_pod in
  List.mapi
    (fun packet_index (p : Plan.packet) ->
      (* Core tier: decode the pod field and replicate per pod rules. *)
      let pods_reached =
        match p.Plan.pod_prefix with
        | None -> [ 0 ]
        | Some pp ->
            let wire = Header.encode ~m:m_pod pp in
            let decoded = Header.decode ~m:m_pod wire.Header.raw in
            (Rules.lookup core_table decoded).Rules.ports
            |> List.filter (fun pod -> pod < Fabric.pods fabric)
      in
      (* Aggregation tier in each reached pod: decode the ToR field. *)
      let wire = Header.encode ~m:m_tor p.Plan.tor_prefix in
      let decoded = Header.decode ~m:m_tor wire.Header.raw in
      let ports = (Rules.lookup agg_table decoded).Rules.ports in
      let tors_reached =
        List.concat_map
          (fun pod ->
            let racks = Fabric.tors_of_pod fabric pod in
            List.filter_map
              (fun idx -> if idx < Array.length racks then Some racks.(idx) else None)
              ports)
          pods_reached
        |> List.sort compare
      in
      { packet_index; pods_reached = List.sort compare pods_reached; tors_reached })
    plan.Plan.packets

let over_covered fabric (plan : Plan.t) =
  let member = Hashtbl.create 64 in
  List.iter
    (fun d -> Hashtbl.replace member (Fabric.attach_tor fabric d) ())
    plan.Plan.dests;
  deliver fabric plan
  |> List.concat_map (fun d -> d.tors_reached)
  |> List.filter (fun t -> not (Hashtbl.mem member t))
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Refined stage: exact per-group entries (§3.3 stage two)             *)
(* ------------------------------------------------------------------ *)

type group_entry = {
  entry_group : int;
  core_ports : int list;
  agg_ports : (int * int list) list;
}

let exact_entry fabric ~group ~members =
  if members = [] then invalid_arg "Dataplane.exact_entry: empty group";
  let racks =
    List.sort_uniq compare (List.map (Fabric.attach_tor fabric) members)
  in
  let by_pod = Hashtbl.create 8 in
  List.iter
    (fun t ->
      let pod = Fabric.pod_of_tor fabric t in
      let prev = Option.value (Hashtbl.find_opt by_pod pod) ~default:[] in
      Hashtbl.replace by_pod pod (Fabric.tor_idx_in_pod fabric t :: prev))
    racks;
  let agg_ports =
    Hashtbl.fold (fun pod idxs l -> (pod, List.sort compare idxs) :: l) by_pod []
    |> List.sort compare
  in
  { entry_group = group; core_ports = List.map fst agg_ports; agg_ports }

let deliver_exact fabric entry =
  List.concat_map
    (fun pod ->
      if pod < 0 || pod >= Fabric.pods fabric then
        invalid_arg "Dataplane.deliver_exact: pod outside the fabric";
      let racks = Fabric.tors_of_pod fabric pod in
      match List.assoc_opt pod entry.agg_ports with
      | None -> []
      | Some idxs ->
          List.map
            (fun idx ->
              if idx < 0 || idx >= Array.length racks then
                invalid_arg "Dataplane.deliver_exact: port outside the pod";
              racks.(idx))
            idxs)
    entry.core_ports
  |> List.sort_uniq compare

let verify_exact fabric entry ~members =
  let want =
    List.sort_uniq compare (List.map (Fabric.attach_tor fabric) members)
  in
  let got = deliver_exact fabric entry in
  if got = want then Ok ()
  else
    Error
      (Printf.sprintf
         "group %d: exact entries reach racks %s but members live in %s"
         entry.entry_group
         (String.concat "," (List.map string_of_int got))
         (String.concat "," (List.map string_of_int want)))

let verify fabric (plan : Plan.t) =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let deliveries = deliver fabric plan in
  let rec check = function
    | [] -> Ok ()
    | (d, (p : Plan.packet)) :: rest ->
        if d.tors_reached <> p.Plan.tors then
          fail "packet %d: data plane reaches racks %s but plan says %s"
            d.packet_index
            (String.concat "," (List.map string_of_int d.tors_reached))
            (String.concat "," (List.map string_of_int p.Plan.tors))
        else check rest
  in
  match check (List.combine deliveries plan.Plan.packets) with
  | Error _ as e -> e
  | Ok () ->
      (* Collectively: every destination's rack receives a copy. *)
      let reached = Hashtbl.create 64 in
      List.iter
        (fun d -> List.iter (fun t -> Hashtbl.replace reached t ()) d.tors_reached)
        deliveries;
      let missing =
        List.filter
          (fun dst -> not (Hashtbl.mem reached (Fabric.attach_tor fabric dst)))
          plan.Plan.dests
      in
      if missing <> [] then
        fail "destinations with unreached racks: %s"
          (String.concat "," (List.map string_of_int missing))
      else Ok ()
