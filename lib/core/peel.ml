module Plan = Plan
module Dataplane = Dataplane
module Tree = Peel_steiner.Tree
module Layer_peel = Peel_steiner.Layer_peel
module Symmetric = Peel_steiner.Symmetric
module Exact = Peel_steiner.Exact
module Cover = Peel_prefix.Cover
module Header = Peel_prefix.Header
module Rules = Peel_prefix.Rules
module Fabric = Peel_topology.Fabric
module Graph = Peel_topology.Graph

let multicast_tree fabric ~source ~dests =
  match Symmetric.build fabric ~source ~dests with
  | tree -> Some tree
  | exception Invalid_argument _ ->
      Layer_peel.build (Fabric.graph fabric) ~source ~dests

let plan ?budget fabric ~source ~dests = Plan.build ?budget fabric ~source ~dests

let tor_id_bits = Plan.tor_id_bits

let switch_rules fabric = Peel_util.Bits.pow2 (tor_id_bits fabric + 1) - 1

let header_bytes = Plan.header_bytes_for

let state_table fabric = Rules.static_table ~m:(tor_id_bits fabric)
