open Peel_topology
open Peel_prefix
module Bits = Peel_util.Bits

type packet = {
  pod_prefix : Cover.prefix option;
  tor_prefix : Cover.prefix;
  pods : int list;
  tors : int list;
  endpoints : int list;
  waste_tors : int list;
}

type t = {
  source : int;
  dests : int list;
  packets : packet list;
  header_bytes : int;
}

let tor_id_bits fabric = Bits.ceil_log2 (max 2 (Fabric.tors_per_pod fabric))
let pod_id_bits fabric = Bits.ceil_log2 (max 2 (Fabric.pods fabric))

let header_bytes_for fabric =
  let m = tor_id_bits fabric in
  let tor_field = m + Bits.ceil_log2 (m + 1) in
  let pod_field =
    if Fabric.pods fabric <= 1 then 0
    else begin
      let mp = pod_id_bits fabric in
      mp + Bits.ceil_log2 (mp + 1)
    end
  in
  Bits.ceil_div (tor_field + pod_field) 8

let build ?budget fabric ~source ~dests =
  let dests = List.sort_uniq compare (List.filter (fun d -> d <> source) dests) in
  let m = tor_id_bits fabric in
  let mp = pod_id_bits fabric in
  let multi_pod = Fabric.pods fabric > 1 in
  (* Destination ToR-id set per pod, and endpoints per (pod, tor id). *)
  let pod_tors = Hashtbl.create 16 in (* pod -> tor idx set (sorted list) *)
  let members = Hashtbl.create 64 in (* (pod, tor idx) -> endpoints *)
  List.iter
    (fun d ->
      let tor = Fabric.attach_tor fabric d in
      let pod = Fabric.pod_of_tor fabric tor in
      let idx = Fabric.tor_idx_in_pod fabric tor in
      Hashtbl.replace pod_tors pod
        (idx :: Option.value (Hashtbl.find_opt pod_tors pod) ~default:[]);
      Hashtbl.replace members (pod, idx)
        (d :: Option.value (Hashtbl.find_opt members (pod, idx)) ~default:[]))
    dests;
  let signature pod =
    List.sort_uniq compare (Hashtbl.find pod_tors pod)
  in
  (* Group pods by identical ToR signature. *)
  let groups = Hashtbl.create 8 in (* signature -> pod list *)
  Hashtbl.iter
    (fun pod _ ->
      let s = signature pod in
      if not (List.mem pod (Option.value (Hashtbl.find_opt groups s) ~default:[]))
      then
        Hashtbl.replace groups s
          (pod :: Option.value (Hashtbl.find_opt groups s) ~default:[]))
    pod_tors;
  let cover_tors targets =
    match budget with
    | None -> Cover.exact_cover ~m targets
    | Some b -> Cover.budgeted_cover ~m ~budget:b targets
  in
  let packets = ref [] in
  let emit ~pod_prefix ~tor_prefix ~pods =
    let pods = List.sort compare pods in
    let covered_ids = Cover.expand ~m tor_prefix in
    let tors, waste, endpoints =
      List.fold_left
        (fun (tors, waste, eps) pod ->
          let pod_tors_arr = Fabric.tors_of_pod fabric pod in
          List.fold_left
            (fun (tors, waste, eps) idx ->
              if idx >= Array.length pod_tors_arr then (tors, waste, eps)
              else begin
                let tor = pod_tors_arr.(idx) in
                match Hashtbl.find_opt members (pod, idx) with
                | Some ms -> (tor :: tors, waste, List.rev_append ms eps)
                | None -> (tor :: tors, tor :: waste, eps)
              end)
            (tors, waste, eps) covered_ids)
        ([], [], []) pods
    in
    packets :=
      {
        pod_prefix;
        tor_prefix;
        pods;
        tors = List.sort compare tors;
        endpoints = List.sort compare endpoints;
        waste_tors = List.sort compare waste;
      }
      :: !packets
  in
  Hashtbl.iter
    (fun sig_tors pods ->
      let tor_covers = cover_tors sig_tors in
      if multi_pod then begin
        let pod_covers = Cover.exact_cover ~m:mp pods in
        List.iter
          (fun pp ->
            let covered_pods =
              List.filter (fun p -> List.mem p pods) (Cover.expand ~m:mp pp)
            in
            List.iter
              (fun tp -> emit ~pod_prefix:(Some pp) ~tor_prefix:tp ~pods:covered_pods)
              tor_covers)
          pod_covers
      end
      else
        List.iter (fun tp -> emit ~pod_prefix:None ~tor_prefix:tp ~pods) tor_covers)
    groups;
  let packets =
    List.sort
      (fun a b -> compare (a.pods, a.tor_prefix) (b.pods, b.tor_prefix))
      !packets
  in
  { source; dests; packets; header_bytes = header_bytes_for fabric }

let num_packets t = List.length t.packets

let waste_tor_count t =
  List.fold_left (fun acc p -> acc + List.length p.waste_tors) 0 t.packets

let packet_tree fabric ~source packet =
  let dests = packet.endpoints @ packet.waste_tors in
  if dests = [] then None
  else Peel_steiner.Layer_peel.build (Fabric.graph fabric) ~source ~dests

let packet_trees fabric ~source ~dests =
  let plan = build fabric ~source ~dests in
  List.filter_map (fun packet -> packet_tree fabric ~source packet) plan.packets

let validate fabric t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  (* Every destination in exactly one packet. *)
  let seen = Hashtbl.create 64 in
  let dup = ref None in
  List.iter
    (fun p ->
      List.iter
        (fun e ->
          if Hashtbl.mem seen e then dup := Some e else Hashtbl.replace seen e ())
        p.endpoints)
    t.packets;
  match !dup with
  | Some e -> fail "endpoint %d delivered by multiple packets" e
  | None ->
      let missing = List.filter (fun d -> not (Hashtbl.mem seen d)) t.dests in
      if missing <> [] then
        fail "endpoints not covered: %s"
          (String.concat "," (List.map string_of_int missing))
      else begin
        (* Waste racks really have no members. *)
        let member_tors =
          List.map (fun d -> Fabric.attach_tor fabric d) t.dests
          |> List.sort_uniq compare
        in
        let bad_waste =
          List.exists
            (fun p -> List.exists (fun w -> List.mem w member_tors) p.waste_tors)
            t.packets
        in
        if bad_waste then fail "a waste rack contains members" else Ok ()
      end
