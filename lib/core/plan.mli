(** PEEL's per-collective send plan: hierarchical power-of-two prefix
    packetization (paper §3.2).

    The destination set of a collective is summarized per pod as the
    set of member ToR identifiers.  Pods sharing the same ToR signature
    are grouped and cover-set-decomposed in the pod identifier space,
    while the shared ToR set is decomposed in the ToR identifier space
    — so one packet addresses a power-of-two block of pods crossed with
    a power-of-two block of racks.  The sender emits one message copy
    per packet; core and aggregation switches replicate each copy using
    only the pre-installed static prefix rules.

    With the default exact covers a plan never over-covers: redundant
    traffic appears only when a packet [budget] forces coarser
    prefixes, which is the §3.4 fragmentation trade-off. *)

open Peel_topology
open Peel_prefix

type packet = {
  pod_prefix : Cover.prefix option;
      (** [None] on single-pod fabrics (leaf–spine) *)
  tor_prefix : Cover.prefix;
  pods : int list;          (** pod numbers this packet reaches *)
  tors : int list;          (** ToR node ids reached (existing racks only) *)
  endpoints : int list;     (** member endpoints delivered to *)
  waste_tors : int list;    (** covered racks with no members (discard) *)
}

type t = {
  source : int;
  dests : int list;
  packets : packet list;
  header_bytes : int;       (** per-packet header size for this fabric *)
}

val tor_id_bits : Fabric.t -> int
(** Width of the in-pod ToR identifier space the prefix engine
    addresses: [ceil_log2 (max 2 tors_per_pod)].  The single source of
    truth for every layer that builds or replays prefix tables. *)

val pod_id_bits : Fabric.t -> int
(** Width of the pod identifier space (core-tier match field). *)

val build : ?budget:int -> Fabric.t -> source:int -> dests:int list -> t
(** [budget] caps the number of ToR prefixes per pod-signature group
    (default: unlimited, i.e. exact covers). *)

val num_packets : t -> int

val waste_tor_count : t -> int
(** Total over-covered racks across packets — each receives the whole
    message and discards it. *)

val header_bytes_for : Fabric.t -> int
(** Per-packet header bytes: pod prefix field (multi-pod fabrics) plus
    ToR prefix field, each [bits + ceil(log2(bits+1))] rounded together
    to whole bytes. *)

val packet_tree :
  Fabric.t -> source:int -> packet -> Peel_steiner.Tree.t option
(** The multicast tree one packet induces, built with the layer-peeling
    greedy so it routes around failures; spans the packet's member
    endpoints and its over-covered racks.  [None] if unreachable. *)

val packet_trees :
  Fabric.t -> source:int -> dests:int list -> Peel_steiner.Tree.t list
(** Build a plan and return every packet's tree, plan order — the
    per-packet forwarding state both the sequential broadcast scheme
    and the sharded flattener ({!Peel_collective.Par}) replay.
    Unreachable packets are dropped (an empty list means no
    destination is reachable). *)

val validate : Fabric.t -> t -> (unit, string) result
(** Cross-checks the plan: every destination is covered by exactly one
    packet, and waste racks carry no members. *)
