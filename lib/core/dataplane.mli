(** Switch data-plane emulation: runs a {!Plan} through the actual
    static rule tables, byte-for-byte the way hardware would.

    The sender wire-encodes each packet's [<prefix, len>] tuples
    ({!Peel_prefix.Header}); the core tier decodes the pod field and
    replicates to the matching pod block using its pre-installed rules;
    each pod's aggregation tier decodes the ToR field and replicates to
    the matching rack block.  [verify] cross-checks that this pipeline
    reaches *exactly* the racks the plan says it reaches — the
    end-to-end consistency between the control plane (cover-set
    computation) and the data plane (k-1 static TCAM rules). *)

open Peel_topology

type delivery = {
  packet_index : int;
  pods_reached : int list;
  tors_reached : int list;  (** ToR node ids, ascending *)
}

val deliver : Fabric.t -> Plan.t -> delivery list
(** Execute every packet of the plan through encode -> decode -> rule
    lookup -> replication.  Raises [Invalid_argument] on a malformed
    plan (prefix outside the fabric's id space). *)

val verify : Fabric.t -> Plan.t -> (unit, string) result
(** [Ok ()] iff for every packet the data plane reaches exactly
    [packet.tors] (members plus over-covered racks), and collectively
    every destination's rack is reached. *)

val over_covered : Fabric.t -> Plan.t -> int list
(** ToR node ids the static pipeline reaches that house no plan
    destination (ascending, deduped) — the wasted replication a
    budgeted cover trades for fewer rules.  Computed purely from
    {!deliver} output, so it can be differenced against the control
    plane's {!Peel_prefix.Cover} over-cover set. *)

(** {1 Refined stage (§3.3 stage two)}

    Once the controller's per-group installs land, replication no
    longer goes through the static prefix tables: each core switch
    holds one exact entry for the group listing its egress pods, and
    each reached pod's aggregation tier holds the group's member rack
    ports.  No decode, no power-of-two rounding — and so no
    over-cover. *)

type group_entry = {
  entry_group : int;
  core_ports : int list;              (** pods replicated to, ascending *)
  agg_ports : (int * int list) list;  (** pod -> member ToR indices *)
}

val exact_entry : Fabric.t -> group:int -> members:int list -> group_entry
(** The exact entry set for a group: one core rule fanning out to the
    pods with members, one agg rule per such pod listing exactly the
    member racks.  Raises [Invalid_argument] on an empty group. *)

val deliver_exact : Fabric.t -> group_entry -> int list
(** Replay the entry through the switches: ToR node ids reached
    (ascending).  Raises [Invalid_argument] if the entry names a pod or
    port outside the fabric. *)

val verify_exact : Fabric.t -> group_entry -> members:int list -> (unit, string) result
(** [Ok ()] iff the refined pipeline reaches {e exactly} the member
    racks — the CTRL001 contract. *)
