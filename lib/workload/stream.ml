open Peel_topology
module Rng = Peel_util.Rng
module Heap = Peel_util.Pairing_heap

type tenant = {
  rate : float;
  scale : int;
  bytes : float;
  hold : float;
  churn : float;
  sends : float;
  fragmentation : float;
}

let tenant ?(churn = 0.0) ?(sends = 0.0) ?(fragmentation = 0.0) ~rate ~scale
    ~bytes ~hold () =
  { rate; scale; bytes; hold; churn; sends; fragmentation }

type kind =
  | Create of Spec.group
  | Join of { gid : int; endpoint : int }
  | Leave of { gid : int; endpoint : int }
  | Send of { gid : int; bytes : float }
  | Depart of { gid : int }

type event = { ev_time : float; ev_seq : int; ev_kind : kind }

let kind_to_string = function
  | Create g -> Printf.sprintf "create[g%d]" g.Spec.g_id
  | Join { gid; endpoint } -> Printf.sprintf "join[g%d+%d]" gid endpoint
  | Leave { gid; endpoint } -> Printf.sprintf "leave[g%d-%d]" gid endpoint
  | Send { gid; _ } -> Printf.sprintf "send[g%d]" gid
  | Depart { gid } -> Printf.sprintf "depart[g%d]" gid

(* Pending timers.  Arrival timers are per tenant; the rest are per
   live group.  A timer whose group departed in the meantime is
   discarded on pop (this can only happen on exact time ties, where
   the earlier-scheduled departure drains first). *)
type timer =
  | T_arrival of int  (* tenant index *)
  | T_churn of int    (* gid *)
  | T_send of int     (* gid *)
  | T_depart of int   (* gid *)

type live = {
  l_tenant : int;
  l_source : int;
  mutable l_members : int list;  (* ascending, always contains l_source *)
  l_departure : float;
}

type t = {
  s_fabric : Fabric.t;
  s_rng : Rng.t;
  s_tenants : tenant array;
  s_timers : timer Heap.t;
  s_live : (int, live) Hashtbl.t;
  mutable s_next_gid : int;
  mutable s_next_seq : int;
}

let validate_tenant fabric i t =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let n = Fabric.num_endpoints fabric in
  if t.rate < 0.0 || not (Float.is_finite t.rate) then
    fail "Stream.create: tenant %d rate must be finite and >= 0" i;
  if t.scale < 2 || t.scale > n then
    fail "Stream.create: tenant %d scale must be in [2, #endpoints]" i;
  if t.bytes <= 0.0 || not (Float.is_finite t.bytes) then
    fail "Stream.create: tenant %d bytes must be positive" i;
  if t.hold <= 0.0 || not (Float.is_finite t.hold) then
    fail "Stream.create: tenant %d hold must be positive" i;
  if t.churn < 0.0 || not (Float.is_finite t.churn) then
    fail "Stream.create: tenant %d churn must be finite and >= 0" i;
  if t.sends < 0.0 || not (Float.is_finite t.sends) then
    fail "Stream.create: tenant %d sends must be finite and >= 0" i;
  if t.fragmentation < 0.0 || t.fragmentation > 1.0 then
    fail "Stream.create: tenant %d fragmentation in [0,1]" i

let create fabric rng ~tenants () =
  if tenants = [] then invalid_arg "Stream.create: no tenants";
  List.iteri (validate_tenant fabric) tenants;
  if not (List.exists (fun t -> t.rate > 0.0) tenants) then
    invalid_arg "Stream.create: every tenant rate is 0 — the stream is empty";
  let s =
    {
      s_fabric = fabric;
      s_rng = rng;
      s_tenants = Array.of_list tenants;
      s_timers = Heap.create ();
      s_live = Hashtbl.create 64;
      s_next_gid = 0;
      s_next_seq = 0;
    }
  in
  (* First arrival per tenant, in tenant order — one shared RNG
     stream, draws strictly in event-processing order thereafter. *)
  Array.iteri
    (fun i t ->
      if t.rate > 0.0 then
        Heap.push s.s_timers
          (Rng.exponential s.s_rng ~mean:(1.0 /. t.rate))
          (T_arrival i))
    s.s_tenants;
  s

let live_groups s =
  Hashtbl.fold (fun gid _ acc -> gid :: acc) s.s_live [] |> List.sort compare

let live_count s = Hashtbl.length s.s_live

let live_members s ~gid =
  match Hashtbl.find_opt s.s_live gid with
  | None -> None
  | Some l -> Some l.l_members

(* Schedule a per-group Poisson follow-up, unless it would land after
   the group's departure (the departure timer then retires the group
   before the follow-up could fire). *)
let reschedule s ~now ~(l : live) ~mean timer =
  if mean > 0.0 then begin
    let at = now +. Rng.exponential s.s_rng ~mean in
    if at < l.l_departure then Heap.push s.s_timers at timer
  end

let emit s ~time kind =
  let seq = s.s_next_seq in
  s.s_next_seq <- seq + 1;
  { ev_time = time; ev_seq = seq; ev_kind = kind }

let do_create s ~now ti =
  let t = s.s_tenants.(ti) in
  (* Next arrival of this tenant's Poisson process first, so the
     tenant's interarrival draws are independent of the group's own
     membership draws below. *)
  Heap.push s.s_timers
    (now +. Rng.exponential s.s_rng ~mean:(1.0 /. t.rate))
    (T_arrival ti);
  let members =
    Spec.place s.s_fabric s.s_rng ~scale:t.scale
      ~fragmentation:t.fragmentation ()
  in
  let marr = Array.of_list members in
  let source = marr.(Rng.int s.s_rng (Array.length marr)) in
  let life = max 1e-9 (Rng.exponential s.s_rng ~mean:t.hold) in
  let gid = s.s_next_gid in
  s.s_next_gid <- gid + 1;
  let l =
    { l_tenant = ti; l_source = source; l_members = members;
      l_departure = now +. life }
  in
  Hashtbl.replace s.s_live gid l;
  Heap.push s.s_timers l.l_departure (T_depart gid);
  reschedule s ~now ~l ~mean:(if t.churn > 0.0 then 1.0 /. t.churn else 0.0)
    (T_churn gid);
  reschedule s ~now ~l ~mean:(if t.sends > 0.0 then 1.0 /. t.sends else 0.0)
    (T_send gid);
  let group =
    {
      Spec.g_id = gid;
      g_arrival = now;
      g_departure = l.l_departure;
      g_source = source;
      g_dests = List.filter (fun m -> m <> source) members;
      g_members = members;
      g_bytes = t.bytes;
    }
  in
  emit s ~time:now (Create group)

(* A churn tick: join a fresh endpoint or drop a non-source member.
   Groups at the minimum size (2) always join; a join that cannot find
   a free endpoint (the group spans the whole fabric) degrades to a
   leave.  All draws come from the shared stream in a fixed order. *)
let do_churn s ~now gid (l : live) =
  let t = s.s_tenants.(l.l_tenant) in
  reschedule s ~now ~l ~mean:(1.0 /. t.churn) (T_churn gid);
  let size = List.length l.l_members in
  let eps = Fabric.endpoints s.s_fabric in
  let n = Array.length eps in
  let want_join =
    if size <= 2 then true
    else if size >= n then false
    else Rng.bool s.s_rng
  in
  let try_join () =
    let rec find tries =
      if tries = 0 then None
      else
        let e = eps.(Rng.int s.s_rng n) in
        if List.mem e l.l_members then find (tries - 1) else Some e
    in
    find 64
  in
  let do_leave () =
    let dests = List.filter (fun m -> m <> l.l_source) l.l_members in
    let victim = List.nth dests (Rng.int s.s_rng (List.length dests)) in
    l.l_members <- List.filter (fun m -> m <> victim) l.l_members;
    Some (emit s ~time:now (Leave { gid; endpoint = victim }))
  in
  if want_join then
    match try_join () with
    | Some e ->
        l.l_members <- List.sort compare (e :: l.l_members);
        Some (emit s ~time:now (Join { gid; endpoint = e }))
    | None -> if size > 2 then do_leave () else None
  else do_leave ()

let rec next s =
  match Heap.pop s.s_timers with
  | None -> invalid_arg "Stream.next: stream exhausted (no live timers)"
  | Some (now, timer) -> (
      match timer with
      | T_arrival ti -> do_create s ~now ti
      | T_depart gid ->
          Hashtbl.remove s.s_live gid;
          emit s ~time:now (Depart { gid })
      | T_churn gid -> (
          match Hashtbl.find_opt s.s_live gid with
          | None -> next s
          | Some l -> (
              match do_churn s ~now gid l with
              | Some ev -> ev
              | None -> next s))
      | T_send gid -> (
          match Hashtbl.find_opt s.s_live gid with
          | None -> next s
          | Some l ->
              let t = s.s_tenants.(l.l_tenant) in
              reschedule s ~now ~l ~mean:(1.0 /. t.sends) (T_send gid);
              emit s ~time:now (Send { gid; bytes = t.bytes })))

let take s n = List.init n (fun _ -> next s)
