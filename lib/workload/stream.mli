(** Open-loop multicast-group event streams: the "multicast as a
    service" workload (Elmo's cloud framing, ROADMAP item 2).

    Where {!Spec.poisson_groups} draws a fixed batch of groups up
    front, this module generates an {e unbounded, time-ordered} stream
    of control-plane events — group [Create]/[Depart], single-member
    [Join]/[Leave] churn, and [Send] traffic ticks — by superposing
    per-tenant Poisson processes.  {!Peel_ctrl.Service} consumes the
    stream as its request log.

    Determinism: all randomness flows through the one caller-supplied
    {!Peel_util.Rng.t}, and draws are consumed strictly in event
    order, so a seed plus a tenant list replays the exact event
    sequence byte-for-byte (the SVC005 replay contract).  Equal-time
    timers fire in scheduling order ({!Peel_util.Pairing_heap} is FIFO
    on ties). *)

open Peel_topology

type tenant = {
  rate : float;           (** group arrivals per second (>= 0) *)
  scale : int;            (** members per new group *)
  bytes : float;          (** bytes per [Send] event *)
  hold : float;           (** mean group lifetime, seconds *)
  churn : float;          (** membership deltas per live group per second *)
  sends : float;          (** send ticks per live group per second *)
  fragmentation : float;  (** {!Spec.place} fragmentation knob *)
}

val tenant :
  ?churn:float ->
  ?sends:float ->
  ?fragmentation:float ->
  rate:float ->
  scale:int ->
  bytes:float ->
  hold:float ->
  unit ->
  tenant
(** Build a tenant descriptor ([churn], [sends], [fragmentation]
    default 0). *)

type kind =
  | Create of Spec.group
      (** a new group with its initial membership and departure time *)
  | Join of { gid : int; endpoint : int }
  | Leave of { gid : int; endpoint : int }  (** never the source *)
  | Send of { gid : int; bytes : float }
  | Depart of { gid : int }

type event = { ev_time : float; ev_seq : int; ev_kind : kind }
(** [ev_seq] numbers emitted events 0, 1, 2, … — the replay-stable
    total order even across equal timestamps. *)

val kind_to_string : kind -> string
(** Compact rendering, e.g. ["join[g3+17]"], for logs and digests. *)

type t
(** Mutable generator state: pending timers, live-group memberships,
    the shared RNG. *)

val create : Fabric.t -> Peel_util.Rng.t -> tenants:tenant list -> unit -> t
(** Raises [Invalid_argument] if the tenant list is empty, every rate
    is zero, or any tenant parameter is out of range (scale outside
    [2, #endpoints], non-positive bytes/hold, negative rates,
    fragmentation outside [0,1]). *)

val next : t -> event
(** The next event in time order.  Churn ticks: groups at the minimum
    size (2) always join, groups spanning the whole fabric always
    leave, otherwise a fair coin picks; joins draw a uniformly random
    non-member endpoint, leaves a uniformly random non-source member.
    Raises [Invalid_argument] if the stream is exhausted (only
    possible when every tenant rate is 0 — prevented by {!create}). *)

val take : t -> int -> event list
(** The next [n] events. *)

val live_groups : t -> int list
(** Currently registered group ids, ascending — O(live log live); use
    {!live_count} when only the population size is needed. *)

val live_count : t -> int
(** Number of currently live groups — O(1), safe to poll every event
    at million-group scale. *)

val live_members : t -> gid:int -> int list option
(** The stream's own view of a live group's membership (ascending;
    [None] after departure) — the ground truth consumers reconcile
    against in tests. *)
