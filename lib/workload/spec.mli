(** Workload generation: Poisson collective arrivals with bin-packed
    (locality-honouring) GPU placement, per the paper's experimental
    setup (§4: "arrivals follow a Poisson process, parameterized by
    scale and message size; GPU selections honor job locality").

    Placement picks a contiguous run of endpoints aligned to server
    boundaries — the bin-packing GPU schedulers perform — with an
    optional [fragmentation] knob that relocates a fraction of the
    servers uniformly at random, for the paper's §3.4 open question. *)

open Peel_topology

type collective = {
  id : int;
  arrival : float;         (** seconds *)
  source : int;            (** a member endpoint *)
  dests : int list;        (** members except the source *)
  members : int list;      (** all group endpoints, ascending *)
  bytes : float;           (** message size *)
}

val place :
  Fabric.t ->
  Peel_util.Rng.t ->
  scale:int ->
  ?fragmentation:float ->
  unit ->
  int list
(** Pick [scale] member endpoints.  Raises [Invalid_argument] if
    [scale] exceeds the endpoint count or is < 2, or if
    [fragmentation] is outside [0, 1]. *)

val mean_interarrival :
  Fabric.t -> scale:int -> bytes:float -> load:float -> float
(** Interarrival time such that delivered bytes ([bytes * scale] per
    collective) average [load] of the aggregate endpoint NIC capacity. *)

val poisson_broadcasts :
  Fabric.t ->
  Peel_util.Rng.t ->
  n:int ->
  scale:int ->
  bytes:float ->
  load:float ->
  ?fragmentation:float ->
  unit ->
  collective list
(** [n] broadcasts with exponential interarrivals, fresh placement and
    a uniformly random member as source for each. *)

(** {1 Group churn}

    A multicast {e group} is a collective plus a lifetime: it arrives
    (Poisson), registers with the controller, and departs after an
    exponential hold, freeing any per-group switch entries it earned.
    This is the arrival/departure process the {!Peel_ctrl} control
    plane schedules installs and evictions against. *)

type group = {
  g_id : int;
  g_arrival : float;       (** seconds *)
  g_departure : float;     (** strictly after [g_arrival] *)
  g_source : int;
  g_dests : int list;
  g_members : int list;
  g_bytes : float;
}

type gen
(** A streaming group generator: mutable RNG + clock state producing
    one group per {!next_group} call.  All draws for one group
    (interarrival, placement, source, hold) are consumed consecutively
    from the single caller-supplied {!Peel_util.Rng.t}, so generators
    and any other sampling can share one deterministic stream — the
    contract the open-loop {!Peel_ctrl.Service} event generator and
    the E17 batch callers both build on. *)

val group_gen :
  Fabric.t ->
  Peel_util.Rng.t ->
  scale:int ->
  bytes:float ->
  load:float ->
  hold:float ->
  ?fragmentation:float ->
  ?first_id:int ->
  unit ->
  gen
(** Make a generator; group ids count up from [first_id] (default 0)
    and the clock starts at 0.  Raises [Invalid_argument] if
    [hold <= 0]. *)

val next_group : gen -> group
(** Draw the next group: arrival at [clock + Exp(mean_interarrival)],
    fresh placement, uniform member source, departure at
    [arrival + Exp(hold)].  Advances the generator's clock and id. *)

val gen_rng : gen -> Peel_util.Rng.t
(** The generator's RNG state — shared, not copied, so interleaved
    draws stay on one deterministic stream. *)

val gen_clock : gen -> float
(** Arrival time of the most recently generated group (0 initially). *)

val poisson_groups :
  Fabric.t ->
  Peel_util.Rng.t ->
  n:int ->
  scale:int ->
  bytes:float ->
  load:float ->
  hold:float ->
  ?fragmentation:float ->
  unit ->
  group list
(** Like {!poisson_broadcasts}, plus a departure at
    [arrival + Exp(hold)] per group.  All broadcast draws are consumed
    before any hold draw — the historical order, so same-seed batch
    workloads (E17, refine) are unchanged by the introduction of
    {!group_gen}, whose {!next_group} interleaves the hold draw per
    group instead.  Raises [Invalid_argument] if [hold <= 0]. *)

val collective_of_group : group -> collective
(** Forget the lifetime (id, arrival, members and bytes carry over). *)
