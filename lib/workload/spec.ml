open Peel_topology
module Rng = Peel_util.Rng

type collective = {
  id : int;
  arrival : float;
  source : int;
  dests : int list;
  members : int list;
  bytes : float;
}

let gpus_per_server fabric =
  match fabric with
  | Fabric.Ft f -> max 1 f.Fat_tree.gpus_per_host
  | Fabric.Ls l -> max 1 l.Leaf_spine.gpus_per_host
  | Fabric.Rl r -> r.Rail.rails
  | Fabric.Zo _ -> 1

let place fabric rng ~scale ?(fragmentation = 0.0) () =
  let endpoints = Fabric.endpoints fabric in
  let n = Array.length endpoints in
  if scale < 2 || scale > n then
    invalid_arg "Spec.place: scale must be in [2, #endpoints]";
  if fragmentation < 0.0 || fragmentation > 1.0 then
    invalid_arg "Spec.place: fragmentation in [0,1]";
  let gps = gpus_per_server fabric in
  (* Bin-packing granularity: schedulers allocate whole pods to
     pod-scale jobs, whole racks to rack-scale jobs, whole servers
     below that — the locality assumption the paper leans on [3]. *)
  let tors = Array.length (Fabric.tors fabric) in
  let eps_per_rack = max gps (n / max 1 tors) in
  let eps_per_pod = max eps_per_rack (n / max 1 (Fabric.pods fabric)) in
  let gran =
    if scale >= eps_per_pod then eps_per_pod
    else if scale >= eps_per_rack then eps_per_rack
    else gps
  in
  let max_start = (n - scale) / gran in
  let start = gran * (if max_start > 0 then Rng.int rng (max_start + 1) else 0) in
  let base = List.init scale (fun i -> start + i) in
  let members =
    if fragmentation = 0.0 then base
    else begin
      (* Relocate whole servers with probability [fragmentation]. *)
      let chosen = Array.make n false in
      List.iter (fun i -> chosen.(i) <- true) base;
      let servers = n / gps in
      let base_servers =
        List.sort_uniq compare (List.map (fun i -> i / gps) base)
      in
      let relocated =
        List.concat_map
          (fun s ->
            if Rng.float rng 1.0 < fragmentation then begin
              (* Free this server's slots... *)
              let freed =
                List.filter (fun i -> i / gps = s && chosen.(i)) base
              in
              List.iter (fun i -> chosen.(i) <- false) freed;
              (* ...and occupy the same count on a random free server. *)
              let rec find_free tries =
                if tries = 0 then None
                else begin
                  let s' = Rng.int rng servers in
                  let slots = List.init gps (fun j -> (s' * gps) + j) in
                  if List.for_all (fun i -> not chosen.(i)) slots then Some slots
                  else find_free (tries - 1)
                end
              in
              match find_free 50 with
              | Some slots ->
                  let taken = List.filteri (fun j _ -> j < List.length freed) slots in
                  List.iter (fun i -> chosen.(i) <- true) taken;
                  taken
              | None ->
                  (* No free server found: keep the original placement. *)
                  List.iter (fun i -> chosen.(i) <- true) freed;
                  freed
            end
            else List.filter (fun i -> i / gps = s && chosen.(i)) base)
          base_servers
      in
      relocated
    end
  in
  List.sort compare (List.map (fun i -> endpoints.(i)) members)

let nic_bandwidth = 12.5e9

let mean_interarrival fabric ~scale ~bytes ~load =
  if load <= 0.0 || load > 1.0 then invalid_arg "Spec.mean_interarrival: load in (0,1]";
  let n = Fabric.num_endpoints fabric in
  let capacity = float_of_int n *. nic_bandwidth in
  bytes *. float_of_int scale /. (load *. capacity)

let poisson_broadcasts fabric rng ~n ~scale ~bytes ~load ?(fragmentation = 0.0) () =
  let mean = mean_interarrival fabric ~scale ~bytes ~load in
  let rec go i t acc =
    if i >= n then List.rev acc
    else begin
      let arrival = t +. Rng.exponential rng ~mean in
      let members = place fabric rng ~scale ~fragmentation () in
      let marr = Array.of_list members in
      let source = marr.(Rng.int rng (Array.length marr)) in
      let dests = List.filter (fun m -> m <> source) members in
      let c = { id = i; arrival; source; dests; members; bytes } in
      go (i + 1) arrival (c :: acc)
    end
  in
  go 0 0.0 []

type group = {
  g_id : int;
  g_arrival : float;
  g_departure : float;
  g_source : int;
  g_dests : int list;
  g_members : int list;
  g_bytes : float;
}

type gen = {
  gen_fabric : Fabric.t;
  gen_rng : Rng.t;
  gen_scale : int;
  gen_bytes : float;
  gen_mean : float;
  gen_hold : float;
  gen_fragmentation : float;
  mutable gen_next_id : int;
  mutable gen_clock : float;
}

let group_gen fabric rng ~scale ~bytes ~load ~hold ?(fragmentation = 0.0)
    ?(first_id = 0) () =
  if hold <= 0.0 || not (Float.is_finite hold) then
    invalid_arg "Spec.group_gen: hold must be positive";
  {
    gen_fabric = fabric;
    gen_rng = rng;
    gen_scale = scale;
    gen_bytes = bytes;
    gen_mean = mean_interarrival fabric ~scale ~bytes ~load;
    gen_hold = hold;
    gen_fragmentation = fragmentation;
    gen_next_id = first_id;
    gen_clock = 0.0;
  }

let gen_rng g = g.gen_rng
let gen_clock g = g.gen_clock

let next_group gen =
  let rng = gen.gen_rng in
  let arrival = gen.gen_clock +. Rng.exponential rng ~mean:gen.gen_mean in
  let members =
    place gen.gen_fabric rng ~scale:gen.gen_scale
      ~fragmentation:gen.gen_fragmentation ()
  in
  let marr = Array.of_list members in
  let source = marr.(Rng.int rng (Array.length marr)) in
  let dests = List.filter (fun m -> m <> source) members in
  (* Group state outlives the message by an exponential hold — the
     multicast group stays registered at the controller until it
     departs and frees its switch entries. *)
  let life = max 1e-9 (Rng.exponential rng ~mean:gen.gen_hold) in
  let id = gen.gen_next_id in
  gen.gen_next_id <- id + 1;
  gen.gen_clock <- arrival;
  {
    g_id = id;
    g_arrival = arrival;
    g_departure = arrival +. life;
    g_source = source;
    g_dests = dests;
    g_members = members;
    g_bytes = gen.gen_bytes;
  }

(* Draw order matters for seed compatibility: all broadcast draws come
   first, then one hold draw per group — the order E17 and the refine
   experiments have always consumed, so same-seed batch workloads are
   unchanged.  The open-loop event stream uses [next_group], which
   interleaves the hold draw per group instead. *)
let poisson_groups fabric rng ~n ~scale ~bytes ~load ~hold
    ?(fragmentation = 0.0) () =
  if hold <= 0.0 || not (Float.is_finite hold) then
    invalid_arg "Spec.poisson_groups: hold must be positive";
  poisson_broadcasts fabric rng ~n ~scale ~bytes ~load ~fragmentation ()
  |> List.map (fun c ->
         let life = max 1e-9 (Rng.exponential rng ~mean:hold) in
         {
           g_id = c.id;
           g_arrival = c.arrival;
           g_departure = c.arrival +. life;
           g_source = c.source;
           g_dests = c.dests;
           g_members = c.members;
           g_bytes = c.bytes;
         })

let collective_of_group g =
  {
    id = g.g_id;
    arrival = g.g_arrival;
    source = g.g_source;
    dests = g.g_dests;
    members = g.g_members;
    bytes = g.g_bytes;
  }
