module Bits = Peel_util.Bits

type rule = { prefix : Cover.prefix; ports : int list }

type table = { m : int; by_prefix : (Cover.prefix, rule) Hashtbl.t }

let static_table ~m =
  if m < 0 || m > 24 then invalid_arg "Rules.static_table: m out of range";
  let by_prefix = Hashtbl.create (Bits.pow2 (m + 1)) in
  for len = 0 to m do
    for value = 0 to Bits.pow2 len - 1 do
      let prefix = { Cover.value; len } in
      Hashtbl.replace by_prefix prefix { prefix; ports = Cover.expand ~m prefix }
    done
  done;
  { m; by_prefix }

let id_bits t = t.m

let rules t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.by_prefix []
  |> List.sort (fun a b -> compare (a.prefix.Cover.len, a.prefix.Cover.value)
                    (b.prefix.Cover.len, b.prefix.Cover.value))

let size t = Hashtbl.length t.by_prefix

let lookup_opt t prefix = Hashtbl.find_opt t.by_prefix prefix

let lookup t prefix =
  match Hashtbl.find_opt t.by_prefix prefix with
  | Some r -> r
  | None ->
      invalid_arg
        (Printf.sprintf
           "Rules.lookup: prefix {value=%d; len=%d} outside the %d-bit table \
            (valid: 0 <= len <= %d, 0 <= value < 2^len)"
           prefix.Cover.value prefix.Cover.len t.m t.m)

let match_ports t header ~m =
  let prefix = Header.decode ~m header.Header.raw in
  (lookup t prefix).ports

let peel_entries ~k =
  if k < 4 then invalid_arg "Rules.peel_entries: k >= 4";
  k - 1

let naive_ipmc_entries ~k =
  if k < 4 then invalid_arg "Rules.naive_ipmc_entries: k >= 4";
  2.0 ** (float_of_int k /. 2.0)

let state_reduction_factor ~k =
  naive_ipmc_entries ~k /. float_of_int (peel_entries ~k)
