(** Static TCAM rule tables and switch-state accounting (paper §3.2).

    Every aggregation switch pre-installs one forwarding rule per
    power-of-two block of the pod's ToR identifier space: lengths
    0..m give [1 + 2 + ... + 2^m = 2^(m+1) - 1 = k - 1] rules in a
    [k]-ary fat-tree.  The data plane is fully static ("deploy-once,
    touch-never"): a packet's [<prefix,len>] header selects one rule,
    and the switch replicates to the block's ports.  Naive IP multicast
    would instead need one entry per possible receiver subset of the
    pod, [2^(k/2)] entries — the paper's 4-billion-versus-63
    comparison at [k = 64]. *)

type rule = {
  prefix : Cover.prefix;
  ports : int list;  (** ToR identifiers (= downlink ports) in the block *)
}

type table

val static_table : m:int -> table
(** All power-of-two rules over an [m]-bit identifier space. *)

val id_bits : table -> int
(** The [m] the table was built for (identifier-space width in bits). *)

val rules : table -> rule list
val size : table -> int
(** Number of installed rules = [2^(m+1) - 1]. *)

val lookup : table -> Cover.prefix -> rule
(** The unique rule matching a header.  Raises a descriptive
    [Invalid_argument] for a prefix outside the table's id space
    (wrong [m], out-of-range value) — adversarial inputs reach this
    path through the compiler's conflict checker, so the error names
    the offending prefix and the table width. *)

val lookup_opt : table -> Cover.prefix -> rule option
(** Total variant of {!lookup}: [None] for a prefix outside the
    table. *)

val match_ports : table -> Header.t -> m:int -> int list
(** Full data-plane path: decode the wire header, look up the rule,
    return the replication port set. *)

(** {1 State accounting (paper §1 and §3.2)} *)

val peel_entries : k:int -> int
(** [k - 1]. *)

val naive_ipmc_entries : k:int -> float
(** [2^(k/2)] possible groups per pod (as a float: it overflows 64-bit
    integers for k >= 128). *)

val state_reduction_factor : k:int -> float
(** naive / PEEL. *)
