(** The PEEL packet header: one [<prefix value, prefix length>] tuple
    (paper §3.2).

    For a [k]-ary fat-tree the ToR identifier space inside a pod has
    [m = log2(k/2)] bits, so the header needs [m] bits for the value
    plus [ceil(log2 (m+1))] bits for the length — [O(log k)], under 8
    bytes even at [k = 128]. *)

val id_bits : k:int -> int
(** [m = log2 (k/2)]. [k] must be an even power-of-two fat-tree arity
    (>= 4). *)

val header_bits : k:int -> int
(** [m + ceil(log2 (m+1))] — the paper's formula. *)

val header_bytes : k:int -> int
(** [header_bits] rounded up to whole bytes (what a packet actually
    carries). *)

type t = { prefix : Cover.prefix; raw : int }
(** A wire-encoded header: [raw] packs length then value. *)

val encode : m:int -> Cover.prefix -> t
(** Pack a prefix into its wire form for an [m]-bit identifier space.
    Raises [Invalid_argument] if the prefix does not fit. *)

val decode : m:int -> int -> Cover.prefix
(** Inverse of [encode] for the same [m]. Raises [Invalid_argument] on
    malformed input (length > m or value out of range). *)
