module Bits = Peel_util.Bits

type prefix = { value : int; len : int }

let validate ~m p =
  if m < 0 || m > 24 then invalid_arg "Cover: m out of range (0..24)";
  if p.len < 0 || p.len > m then invalid_arg "Cover: prefix length out of range";
  if p.value < 0 || p.value >= Bits.pow2 p.len then
    invalid_arg "Cover: prefix value out of range"

let make ~m ~value ~len =
  let p = { value; len } in
  validate ~m p;
  p

(* Validation happens at construction ([make] / the cover builders);
   the per-id helpers below sit on the data-plane hot path and trust
   their input. *)
let block_size ~m p = Bits.pow2 (m - p.len)

let block_start ~m p = p.value * Bits.pow2 (m - p.len)

let covers ~m p id =
  id >= 0 && id < Bits.pow2 m && id lsr (m - p.len) = p.value

let expand ~m p =
  let start = block_start ~m p and size = block_size ~m p in
  List.init size (fun i -> start + i)

let parent p =
  if p.len = 0 then None else Some { value = p.value / 2; len = p.len - 1 }

let sibling p =
  if p.len = 0 then None else Some { value = p.value lxor 1; len = p.len }

let is_ancestor a p =
  a.len <= p.len && p.value lsr (p.len - a.len) = a.value

let to_string ~m p =
  validate ~m p;
  String.init m (fun i ->
      if i < p.len then if Bits.bit p.value (p.len - 1 - i) then '1' else '0'
      else '*')

let check_targets ~m targets =
  let size = Bits.pow2 m in
  List.iter
    (fun t ->
      if t < 0 || t >= size then invalid_arg "Cover: target outside identifier space")
    targets;
  let tgt = Array.make size false in
  List.iter (fun t -> tgt.(t) <- true) targets;
  tgt

let exact_cover ~m targets =
  if m < 0 || m > 24 then invalid_arg "Cover: m out of range (0..24)";
  let tgt = check_targets ~m targets in
  (* Count of targets in the block of (value,len) via recursion. *)
  let rec go value len acc =
    let size = Bits.pow2 (m - len) in
    let start = value * size in
    let count = ref 0 in
    for i = start to start + size - 1 do
      if tgt.(i) then incr count
    done;
    if !count = 0 then acc
    else if !count = size then { value; len } :: acc
    else go ((2 * value) + 1) (len + 1) (go (2 * value) (len + 1) acc)
  in
  List.rev (go 0 0 [])

(* Lexicographic (over-coverage, prefix-count) objective. *)
let inf_pair = (max_int, max_int)
let pair_min a b = if a <= b then a else b
let pair_add (a1, a2) (b1, b2) =
  if (a1, a2) = inf_pair || (b1, b2) = inf_pair then inf_pair
  else (a1 + b1, a2 + b2)

let budgeted_cover ~m ~budget targets =
  if budget < 1 then invalid_arg "Cover.budgeted_cover: budget >= 1";
  if m < 0 || m > 24 then invalid_arg "Cover: m out of range (0..24)";
  let tgt = check_targets ~m targets in
  let bmax = budget in
  (* dp (value,len) = array over b in 0..bmax of best (overcov, count)
     using at most b prefixes inside this block, covering all its
     targets. *)
  let memo = Hashtbl.create 256 in
  let rec dp value len =
    match Hashtbl.find_opt memo (value, len) with
    | Some a -> a
    | None ->
        let size = Bits.pow2 (m - len) in
        let start = value * size in
        let count = ref 0 in
        for i = start to start + size - 1 do
          if tgt.(i) then incr count
        done;
        let a = Array.make (bmax + 1) inf_pair in
        if !count = 0 then Array.fill a 0 (bmax + 1) (0, 0)
        else begin
          (* One prefix over the whole block. *)
          let whole = (size - !count, 1) in
          for b = 1 to bmax do
            a.(b) <- whole
          done;
          (* Or split between the two children. *)
          if len < m then begin
            let l = dp (2 * value) (len + 1) and r = dp ((2 * value) + 1) (len + 1) in
            for b = 1 to bmax do
              for b1 = 0 to b do
                a.(b) <- pair_min a.(b) (pair_add l.(b1) r.(b - b1))
              done
            done
          end;
          (* Monotonicity: allow using fewer prefixes. *)
          for b = 1 to bmax do
            a.(b) <- pair_min a.(b) a.(b - 1)
          done
        end;
        Hashtbl.replace memo (value, len) a;
        a
  in
  let _ = dp 0 0 in
  (* Reconstruct the choice achieving dp 0 0 budget. *)
  let rec rebuild value len b acc =
    let a = (dp value len).(b) in
    if a = (0, 0) then acc
    else begin
      let size = Bits.pow2 (m - len) in
      let start = value * size in
      let count = ref 0 in
      for i = start to start + size - 1 do
        if tgt.(i) then incr count
      done;
      if !count = 0 then acc
      else if a = (size - !count, 1) then { value; len } :: acc
      else begin
        assert (len < m);
        let l = dp (2 * value) (len + 1) and r = dp ((2 * value) + 1) (len + 1) in
        (* Find a split matching the optimum. *)
        let found = ref None in
        for b1 = 0 to b do
          if !found = None && pair_add l.(b1) r.(b - b1) = a then found := Some b1
        done;
        match !found with
        | Some b1 ->
            rebuild ((2 * value) + 1) (len + 1) (b - b1)
              (rebuild (2 * value) (len + 1) b1 acc)
        | None ->
            (* The optimum came from a smaller budget. *)
            rebuild value len (b - 1) acc
      end
    end
  in
  List.rev (rebuild 0 0 budget [])

let covered_set ~m prefixes =
  List.concat_map (expand ~m) prefixes |> List.sort_uniq compare

let over_coverage ~m prefixes ~targets =
  let tgt = check_targets ~m targets in
  List.length (List.filter (fun id -> not tgt.(id)) (covered_set ~m prefixes))

let is_cover ~m prefixes ~targets =
  let covered = covered_set ~m prefixes in
  List.for_all (fun t -> List.mem t covered) (List.sort_uniq compare targets)
