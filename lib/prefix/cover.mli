(** Power-of-two cover sets over an [m]-bit ToR identifier space
    (paper §3.2).

    A prefix [{ value; len }] denotes the block of [2^(m-len)]
    identifiers whose top [len] bits equal [value] — exactly a CIDR
    block.  [exact_cover] is the canonical trie decomposition: the
    minimal set of prefixes covering the targets and nothing else
    ("outermost complete sub-trees" in the paper's example).
    [budgeted_cover] trades packets for bandwidth: at most [budget]
    prefixes, minimizing the number of over-covered (non-target)
    identifiers — the knob behind the paper's §3.4 fragmentation open
    question. *)

type prefix = { value : int; len : int }
(** [value] holds the top [len] bits (0 <= value < 2^len). The block
    covered in an [m]-bit space is [\[value*2^(m-len),
    (value+1)*2^(m-len))]. *)

val make : m:int -> value:int -> len:int -> prefix
(** Smart constructor: validates once at construction time (the hot
    helpers below trust their input and no longer re-validate per
    call). Raises [Invalid_argument] like {!validate}. *)

val block_size : m:int -> prefix -> int
val covers : m:int -> prefix -> int -> bool
val expand : m:int -> prefix -> int list
(** All identifiers in the block, ascending. *)

val parent : prefix -> prefix option
(** The double-size enclosing block: [{value/2; len-1}]. [None] for the
    root (len 0).  Independent of [m] — a valid prefix's parent is
    valid in the same space. *)

val sibling : prefix -> prefix option
(** The parent's other child (same [len], low bit flipped); [None] for
    the root.  A sibling pair's blocks partition their parent's. *)

val is_ancestor : prefix -> prefix -> bool
(** [is_ancestor a p] — does [a]'s block contain [p]'s?  Reflexive, and
    the only way two prefix blocks can overlap is containment, so
    [not (is_ancestor a b) && not (is_ancestor b a)] means disjoint. *)

val to_string : m:int -> prefix -> string
(** CIDR-ish rendering, e.g. "01*" for value=1,len=2 in a 3-bit space. *)

val validate : m:int -> prefix -> unit
(** Raises [Invalid_argument] if [len] is outside [0..m] or [value]
    outside [0..2^len). *)

val exact_cover : m:int -> int list -> prefix list
(** Minimal exact decomposition of a target set into power-of-two
    blocks; sorted by block start. Targets must lie in [0..2^m);
    duplicates are ignored. The empty set yields []. *)

val budgeted_cover : m:int -> budget:int -> int list -> prefix list
(** Cover every target with at most [budget] prefixes (budget >= 1),
    minimizing first the count of covered non-targets, then the number
    of prefixes. Falls back to [{value=0; len=0}] (the whole pod) when
    the budget forces it. *)

val covered_set : m:int -> prefix list -> int list
(** Union of the blocks, ascending, duplicates removed. *)

val over_coverage : m:int -> prefix list -> targets:int list -> int
(** Number of covered identifiers that are not targets. *)

val is_cover : m:int -> prefix list -> targets:int list -> bool
(** Do the prefixes cover every target?  (Over-covering is allowed;
    see {!over_coverage} for how much.) *)
