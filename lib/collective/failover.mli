(** Broadcast under mid-run link failures: a controller model with
    detection and reaction delays that re-peels the multicast tree on
    the surviving fabric and splices it in (§2.3's greedy re-run as the
    paper's failure story), next to ring and binary-tree baselines that
    can only repair end-to-end.

    The failure schedule itself is a {!Peel_sim.Fault.t}; this module
    supplies the launchers that *survive* it: every lost chunk is
    eventually repaired (NACK-driven unicast from the source, RDMA-style
    selective repeat), so a run completes as long as the fabric is not
    permanently partitioned. *)

open Peel_topology
open Peel_workload

(** Which broadcast scheme carries the collective.  [Peel] re-plans via
    {!Peel_steiner.Layer_peel.repeel} on every failure; [Ring] and
    [Btree] keep their fixed logical schedule and fall back to unicast
    repairs from the source. *)
type scheme = Peel | Ring | Btree

val all_schemes : scheme list

val scheme_to_string : scheme -> string
(** ["peel"], ["ring"], ["tree"]. *)

val scheme_of_string : string -> scheme option
(** Inverse of {!scheme_to_string}; also accepts ["btree"]. *)

(** Controller timing model.  [detection] is how long until a failure is
    noticed (port-down signal propagation), [reaction] how long the
    controller takes to compute and install the new tree after noticing,
    and [repair_rto] the receiver NACK timeout driving end-to-end chunk
    repairs. *)
type ctrl = { detection : float; reaction : float; repair_rto : float }

val default_ctrl : ctrl
(** 500 us detection, 1 ms reaction, 4 ms repair RTO. *)

val run :
  ?chunks:int ->
  ?ctrl:ctrl ->
  ?loss:Peel_sim.Transfer.loss ->
  ?ecmp:bool ->
  ?trace:Peel_sim.Trace.t ->
  ?faults:Peel_sim.Fault.t ->
  Fabric.t ->
  scheme ->
  Spec.collective list ->
  Runner.outcome
(** Like {!Runner.run} but failure-tolerant: the fault schedule is
    installed before launch, each applied failure notifies every live
    collective's controller, and — for [Peel] — after
    [ctrl.detection +. ctrl.reaction] the tree is re-peeled on the
    surviving fabric ({!Peel_sim.Trace.Replan} is emitted) and chunks
    with recorded losses are resent over it.  Deliveries are deduplicated,
    so chunk conservation ([SIM005]) holds exactly even when a resend
    overlaps a repair.  With [PEEL_CHECK=1] each replanned tree is
    checked against the splice invariant ([TREE006]).

    Raises [Failure] (from {!Runner.run_custom}) if a collective cannot
    complete — e.g. the schedule permanently partitions a receiver. *)
