open Peel_topology

type t = {
  fabric : Fabric.t;
  ecmp : bool;
  cache : (int * int, int list) Hashtbl.t;
  dist_cache : (int, int array) Hashtbl.t;
      (* Per-source BFS distance arrays.  A tree-shaped broadcast asks
         for thousands of distinct (src, dst) pairs but only tens of
         distinct sources; without this cache every path-cache miss
         re-runs a full-fabric BFS, which dominates the simulator's
         allocation and wall time at scale. *)
}

let create ?(ecmp = true) fabric =
  {
    fabric;
    ecmp;
    cache = Hashtbl.create 4096;
    dist_cache = Hashtbl.create 64;
  }

let dist_from t g src =
  match Hashtbl.find_opt t.dist_cache src with
  | Some d -> d
  | None ->
      let d = Graph.bfs_dist g src in
      Hashtbl.replace t.dist_cache src d;
      d

let same_server fabric a b =
  let g = Fabric.graph fabric in
  (Graph.node g a).Graph.kind = Graph.Gpu
  && (Graph.node g b).Graph.kind = Graph.Gpu
  && Fabric.host_of_gpu fabric a = Fabric.host_of_gpu fabric b

let compute t a b =
  let g = Fabric.graph t.fabric in
  let nodes =
    if same_server t.fabric a b then
      (* Prefer NVLink through the NVSwitch over the equally-short
         NIC-ToR-NIC detour: intra-server bytes are free fabric-wise. *)
      [ a; Fabric.host_of_gpu t.fabric a; b ]
    else begin
      (* Hash-diverse equal-cost path, as flow-level ECMP would pick;
         without ECMP every flow funnels onto the lowest-id path. *)
      let dist = dist_from t g a in
      let path =
        if t.ecmp then Graph.shortest_path_ecmp_from_dist g ~dist a b ~salt:0
        else Graph.shortest_path_from_dist g ~dist a b
      in
      match path with
      | Some p -> p
      | None -> invalid_arg "Paths.links: endpoints disconnected"
    end
  in
  Peel_sim.Transfer.path_links g nodes

let links t a b =
  if a = b then []
  else
    match Hashtbl.find_opt t.cache (a, b) with
    | Some l -> l
    | None ->
        let l = compute t a b in
        Hashtbl.replace t.cache (a, b) l;
        l

let invalidate t =
  Hashtbl.reset t.cache;
  Hashtbl.reset t.dist_cache
