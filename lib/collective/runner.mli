(** Drives a whole workload through the simulator and collects
    collective completion times. *)

open Peel_topology
open Peel_workload

type outcome = {
  ccts : float list;       (** one CCT per collective, arrival order *)
  events : int;            (** simulator events processed *)
  makespan : float;        (** time the last delivery happened *)
  telemetry : Peel_sim.Telemetry.t;
      (** link utilization over the whole run, enriched with per-link
          congestion detail when a [Full] trace was attached *)
  trace : Peel_sim.Trace.t;
      (** the trace the run recorded into ({!Peel_sim.Trace.null} if
          none was requested) *)
}

val run :
  ?chunks:int ->
  ?cc:Broadcast.cc ->
  ?controller_seed:int ->
  ?controller:bool ->
  ?loss:Peel_sim.Transfer.loss ->
  ?ecmp:bool ->
  ?trace:Peel_sim.Trace.t ->
  Fabric.t ->
  Scheme.t ->
  Spec.collective list ->
  outcome
(** Simulate every collective (they share the fabric and interact
    through link queues).  Raises [Failure] if any collective cannot
    complete (unreachable destinations).

    Pass a {!Peel_sim.Trace.t} (default off) to record structured
    events: the engine, link layer, congestion control and broadcast
    schemes all report into it, keyed by each collective's [spec.id].
    With [PEEL_CHECK=1] the trace is additionally linted post-run
    ({!Peel_check.Check_sim.check_trace}). *)

val run_sharded :
  ?chunks:int ->
  ?ecmp:bool ->
  ?jobs:int ->
  ?audit:bool ->
  Fabric.t ->
  Scheme.t ->
  Spec.collective list ->
  outcome
(** Like {!run}, but on the conservative sharded engine
    ({!Par.run} / {!Peel_sim.Shard}): the event loop is partitioned by
    pod and windows advance under the fabric's minimum cross-pod
    lookahead.  Results are bit-identical for every [jobs] value
    ([jobs] defaults to {!Peel_util.Pool.default_jobs}); versus {!run}
    they coincide except when two collectives' reservations collide at
    exactly equal float timestamps on a shared link, where the two
    engines apply different (each deterministic) FIFO tie orders.

    Only the static schemes are supported ({!Par.supported});
    congestion control, loss, faults and tracing are not available on
    this path — [telemetry] carries per-link utilization only and
    [trace] is {!Peel_sim.Trace.null}.  Raises [Invalid_argument] on an
    unsupported scheme.

    [audit] (default: whether [PEEL_CHECK] is armed) collects
    per-window causality evidence; with [PEEL_CHECK=1] the outcome and
    the evidence are linted post-run
    ({!Peel_check.Check_sim.check_shard}, SIM008). *)

val run_custom :
  ?chunks:int ->
  ?cc:Broadcast.cc ->
  ?controller_seed:int ->
  ?controller:bool ->
  ?loss:Peel_sim.Transfer.loss ->
  ?ecmp:bool ->
  ?trace:Peel_sim.Trace.t ->
  ?faults:Peel_sim.Fault.t ->
  ?on_fault:(Peel_sim.Fault.event -> unit) ->
  Fabric.t ->
  launch:
    (Peel_sim.Engine.t ->
    Peel_sim.Link_state.t ->
    Paths.t ->
    Broadcast.config ->
    spec:Spec.collective ->
    on_complete:(float -> unit) ->
    unit) ->
  Spec.collective list ->
  outcome
(** Same engine/link sharing as {!run}, but with a caller-provided
    launcher — how the non-broadcast collectives (allgather, reduce,
    allreduce) plug in.

    [faults] installs a deterministic link fail/recover schedule before
    any collective launches (same-instant ties resolve failure-first),
    and each applied transition invalidates the path cache and then
    fires [on_fault] — the controller's notification hook.  Launchers
    that do not reroute around dead links (plain {!Broadcast.launch})
    will stall forever on a permanent failure; use {!Failover.run} for
    fault runs. *)

val summarize : outcome -> Peel_util.Stats.summary
(** Mean/p99 CCT summary of an outcome. *)
