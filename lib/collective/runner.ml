open Peel_topology
open Peel_sim
open Peel_workload
module Rng = Peel_util.Rng

type outcome = {
  ccts : float list;
  events : int;
  makespan : float;
  telemetry : Telemetry.t;
  trace : Trace.t;
}

let run_custom ?(chunks = 8) ?(cc = Broadcast.No_cc) ?(controller_seed = 1234)
    ?(controller = true) ?loss ?(ecmp = true) ?(trace = Trace.null) ?faults
    ?on_fault fabric ~launch collectives =
  let engine = Engine.create ~trace () in
  let links = Link_state.create ~trace (Fabric.graph fabric) in
  let paths = Paths.create ~ecmp fabric in
  let cfg =
    {
      Broadcast.chunks; cc; rng = Rng.create controller_seed; controller; loss;
      trace;
    }
  in
  (* Install the fault schedule BEFORE launching any collective: the
     engine breaks same-time ties FIFO, so a failure and a transfer
     scheduled for the same instant apply the failure first — no chunk
     ever reserves a link that went down "at the same time". *)
  (match faults with
  | None -> ()
  | Some sched ->
      Fault.install engine links sched
        ~on_event:(fun ev ->
          Paths.invalidate paths;
          match on_fault with Some f -> f ev | None -> ())
        ());
  let n = List.length collectives in
  let results = Array.make n nan in
  let done_count = ref 0 in
  List.iteri
    (fun i (spec : Spec.collective) ->
      launch engine links paths cfg ~spec ~on_complete:(fun cct ->
          results.(i) <- cct;
          incr done_count))
    collectives;
  Engine.run engine;
  if !done_count <> n then
    failwith
      (Printf.sprintf "Runner.run: %d of %d collectives did not complete"
         (n - !done_count) n);
  let makespan = Engine.now engine in
  let telemetry =
    Telemetry.snapshot (Fabric.graph fabric) links
      ~horizon:(Float.max makespan 1e-9)
  in
  let ccts = Array.to_list results in
  (* Debug-mode invariant assertions (PEEL_CHECK=1): every collective
     completed with a sane CCT and no link was busy past the horizon. *)
  if Peel_check.enabled () then begin
    Peel_check.assert_valid ~what:"simulation outcome"
      (Peel_check.Check_sim.check_outcome ~expected:n ~ccts ~makespan telemetry);
    if Trace.enabled trace then
      Peel_check.assert_valid ~what:"simulation trace"
        (Peel_check.Check_sim.check_trace trace)
  end;
  { ccts; events = Engine.events_processed engine; makespan; telemetry; trace }

let run_sharded ?chunks ?ecmp ?jobs ?audit fabric scheme collectives =
  (* Collect causality evidence whenever the check layer is armed, so
     the SIM008 lint below has something to audit. *)
  let audit =
    match audit with Some a -> a | None -> Peel_check.enabled ()
  in
  let r = Par.run ?chunks ?ecmp ?jobs ~audit fabric scheme collectives in
  let makespan = r.Shard.r_makespan in
  let telemetry =
    Telemetry.of_busy (Fabric.graph fabric) ~busy:r.Shard.r_busy
      ~horizon:(Float.max makespan 1e-9)
  in
  let ccts = Array.to_list r.Shard.r_ccts in
  if Peel_check.enabled () then begin
    Peel_check.assert_valid ~what:"sharded simulation outcome"
      (Peel_check.Check_sim.check_outcome ~expected:(List.length collectives)
         ~ccts ~makespan telemetry);
    Peel_check.assert_valid ~what:"shard-boundary causality"
      (Peel_check.Check_sim.check_shard r)
  end;
  { ccts; events = r.Shard.r_events; makespan; telemetry; trace = Trace.null }

let run ?chunks ?cc ?controller_seed ?controller ?loss ?ecmp ?trace fabric
    scheme collectives =
  run_custom ?chunks ?cc ?controller_seed ?controller ?loss ?ecmp ?trace fabric
    ~launch:(fun engine links paths cfg ~spec ~on_complete ->
      Broadcast.launch engine links fabric paths cfg scheme ~spec ~on_complete)
    collectives

let summarize outcome = Peel_util.Stats.summarize outcome.ccts
