open Peel_sim
open Peel_workload
module Rng = Peel_util.Rng

type cc = No_cc | Dcqcn of { guard : float option; ecn_delay : float }

type config = {
  chunks : int;
  cc : cc;
  rng : Rng.t;
  controller : bool;
  loss : Transfer.loss option;
  trace : Trace.t;
}

let default_config ?(trace = Trace.null) ~rng () =
  { chunks = 8; cc = No_cc; rng; controller = true; loss = None; trace }

let nic_rate = 12.5e9
let cnp_delay = 5e-6

(* Tracks chunk deliveries at destinations; fires on_complete when every
   destination has every chunk. *)
type tracker = {
  dest_set : (int, unit) Hashtbl.t;
  mutable remaining : int;
  mutable last : float;
  arrival : float;
  complete : float -> unit;
  trace : Trace.t;
  flow : int;
}

let make_tracker ~trace ~flow ~arrival ~dests ~chunks ~on_complete =
  let dest_set = Hashtbl.create (List.length dests * 2) in
  List.iter (fun d -> Hashtbl.replace dest_set d ()) dests;
  {
    dest_set;
    remaining = chunks * List.length dests;
    last = arrival;
    arrival;
    complete = on_complete;
    trace;
    flow;
  }

let record tracker node chunk time =
  if Hashtbl.mem tracker.dest_set node then begin
    Trace.delivery tracker.trace ~time ~node ~flow:tracker.flow ~chunk;
    tracker.remaining <- tracker.remaining - 1;
    if time > tracker.last then tracker.last <- time;
    if tracker.remaining = 0 then tracker.complete (tracker.last -. tracker.arrival)
  end

(* Per-collective congestion control state: a DCQCN-lite sender limiter
   plus per-chunk ECN mark flags and CNP wiring. *)
type cc_state = {
  ctrl : Dcqcn.t option;
  ecn_delay : float;
  marks : bool array; (* per chunk *)
  cc_trace : Trace.t;
  cc_flow : int;
}

let make_cc_state cfg ~flow =
  match cfg.cc with
  | No_cc ->
      { ctrl = None; ecn_delay = infinity; marks = [||];
        cc_trace = cfg.trace; cc_flow = flow }
  | Dcqcn { guard; ecn_delay } ->
      {
        ctrl =
          Some (Dcqcn.create ~guard ~trace:cfg.trace ~flow ~line_rate:nic_rate ());
        ecn_delay;
        marks = Array.make cfg.chunks false;
        cc_trace = cfg.trace;
        cc_flow = flow;
      }

let on_reserve_for engine cc chunk =
  match cc.ctrl with
  | None -> None
  | Some _ ->
      Some
        (fun ~link ~queue_delay ->
          if queue_delay > cc.ecn_delay then begin
            Trace.ecn_mark cc.cc_trace ~time:(Engine.now engine) ~link
              ~flow:cc.cc_flow ~chunk;
            cc.marks.(chunk) <- true
          end)

(* A destination that received a marked chunk emits a CNP back to the
   sender — one per receiver, which is the multicast implosion the
   guard timer tames. *)
let maybe_cnp engine cc chunk time =
  match cc.ctrl with
  | Some ctrl when cc.marks.(chunk) ->
      Engine.schedule engine (time +. cnp_delay) (fun () ->
          Dcqcn.on_cnp ctrl ~now:(Engine.now engine))
  | _ -> ()

(* Release chunks 0..chunks-1 from the source: back to back without
   congestion control, paced by the current DCQCN rate with it. *)
let release_chunks engine cfg cc ~start ~chunk_bytes ~send =
  match cc.ctrl with
  | None ->
      Engine.schedule engine start (fun () ->
          for c = 0 to cfg.chunks - 1 do
            Trace.release cfg.trace ~time:start ~flow:cc.cc_flow ~chunk:c
              ~rate:nic_rate;
            send c start
          done)
  | Some ctrl ->
      let rec go c t =
        if c < cfg.chunks then
          Engine.schedule engine t (fun () ->
              Trace.release cfg.trace ~time:t ~flow:cc.cc_flow ~chunk:c
                ~rate:(Dcqcn.rate ctrl ~now:t);
              send c t;
              let dt = Dcqcn.release_duration ctrl ~now:t ~bytes:chunk_bytes in
              go (c + 1) (t +. dt))
      in
      go 0 start

(* ------------------------------------------------------------------ *)
(* Scheme bodies                                                       *)
(* ------------------------------------------------------------------ *)

let run_ring engine links fabric paths cfg cc tracker (spec : Spec.collective)
    ~chunk_bytes =
  let r = Peel_baselines.Ring.schedule fabric ~source:spec.source ~members:spec.members in
  let order = r.Peel_baselines.Ring.order in
  let n = Array.length order in
  let hop_links =
    Array.init (n - 1) (fun i -> Paths.links paths order.(i) order.(i + 1))
  in
  let rec forward idx chunk t =
    if idx < n - 1 then
      Transfer.unicast engine links ~links:hop_links.(idx) ~bytes:chunk_bytes
        ~start:t
        ?on_reserve:(on_reserve_for engine cc chunk)
        ?loss:cfg.loss
        ~on_delivered:(fun t' ->
          record tracker order.(idx + 1) chunk t';
          maybe_cnp engine cc chunk t';
          forward (idx + 1) chunk t')
        ()
  in
  release_chunks engine cfg cc ~start:spec.arrival ~chunk_bytes ~send:(fun c t ->
      forward 0 c t)

let run_btree engine links fabric paths cfg cc tracker (spec : Spec.collective)
    ~chunk_bytes =
  let bt =
    Peel_baselines.Binary_tree.schedule fabric ~source:spec.source
      ~members:spec.members
  in
  let order = bt.Peel_baselines.Binary_tree.order in
  let n = Array.length order in
  let rec forward pos chunk t =
    List.iter
      (fun child ->
        if child < n then
          Transfer.unicast engine links
            ~links:(Paths.links paths order.(pos) order.(child))
            ~bytes:chunk_bytes ~start:t
            ?on_reserve:(on_reserve_for engine cc chunk)
            ?loss:cfg.loss
            ~on_delivered:(fun t' ->
              record tracker order.(child) chunk t';
              maybe_cnp engine cc chunk t';
              forward child chunk t')
            ())
      [ (2 * pos) + 1; (2 * pos) + 2 ]
  in
  release_chunks engine cfg cc ~start:spec.arrival ~chunk_bytes ~send:(fun c t ->
      forward 0 c t)

let run_dbtree engine links fabric paths cfg cc tracker (spec : Spec.collective)
    ~chunk_bytes =
  let dt =
    Peel_baselines.Double_binary_tree.schedule fabric ~source:spec.source
      ~members:spec.members
  in
  let children_map edges =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (p, c) ->
        Hashtbl.replace tbl p (c :: Option.value (Hashtbl.find_opt tbl p) ~default:[]))
      edges;
    tbl
  in
  let tree_a = children_map dt.Peel_baselines.Double_binary_tree.edges_a in
  let tree_b = children_map dt.Peel_baselines.Double_binary_tree.edges_b in
  (* Even chunks ride tree A, odd chunks tree B: each rank is interior in
     at most one tree, so per-rank send load stays ~1 message. *)
  let rec forward tbl node chunk t =
    List.iter
      (fun child ->
        Transfer.unicast engine links
          ~links:(Paths.links paths node child)
          ~bytes:chunk_bytes ~start:t
          ?on_reserve:(on_reserve_for engine cc chunk)
          ?loss:cfg.loss
          ~on_delivered:(fun t' ->
            record tracker child chunk t';
            maybe_cnp engine cc chunk t';
            forward tbl child chunk t')
          ())
      (List.rev (Option.value (Hashtbl.find_opt tbl node) ~default:[]))
  in
  release_chunks engine cfg cc ~start:spec.arrival ~chunk_bytes ~send:(fun c t ->
      let tbl = if c land 1 = 0 then tree_a else tree_b in
      forward tbl spec.source c t)

(* Multicast a chunk over a set of trees (PEEL sends one copy per prefix
   packet; single-tree schemes pass one tree).  A receiver orphaned by a
   dropped tree link NACKs after the RTO and the source repairs it with
   a unicast retransmission — RDMA-style end-to-end selective repeat. *)
let multicast_trees engine links cfg paths ~source cc tracker ~trees ~chunk
    ~chunk_bytes ~start ~on_member =
  let recover node time =
    match cfg.loss with
    | None -> ()
    | Some l ->
        if Hashtbl.mem tracker.dest_set node then begin
          l.Transfer.retransmissions <- l.Transfer.retransmissions + 1;
          Engine.schedule engine (time +. l.Transfer.rto) (fun () ->
              Trace.retransmit tracker.trace ~time:(Engine.now engine)
                ~flow:tracker.flow ~node;
              Transfer.unicast engine links
                ~links:(Paths.links paths source node)
                ~bytes:chunk_bytes
                ~start:(Engine.now engine)
                ?loss:cfg.loss
                ~on_delivered:(fun t' ->
                  record tracker node chunk t';
                  maybe_cnp engine cc chunk t')
                ())
        end
  in
  List.iter
    (fun tree ->
      Transfer.multicast engine links ~tree ~bytes:chunk_bytes ~start
        ?on_reserve:(on_reserve_for engine cc chunk)
        ?loss:cfg.loss
        ~on_lost:(fun ~node ~time -> recover node time)
        ~on_delivered:(fun ~node ~time ->
          record tracker node chunk time;
          if Hashtbl.mem tracker.dest_set node then
            maybe_cnp engine cc chunk time;
          on_member ~node ~time ~chunk)
        ())
    trees

let no_member ~node:_ ~time:_ ~chunk:_ = ()

let run_optimal engine links fabric paths cfg cc tracker
    (spec : Spec.collective) ~chunk_bytes =
  match Peel.multicast_tree fabric ~source:spec.source ~dests:spec.dests with
  | None -> failwith "Broadcast: destinations unreachable (optimal)"
  | Some tree ->
      release_chunks engine cfg cc ~start:spec.arrival ~chunk_bytes
        ~send:(fun c t ->
          multicast_trees engine links cfg paths ~source:spec.source cc tracker
            ~trees:[ tree ] ~chunk:c ~chunk_bytes ~start:t ~on_member:no_member)

let run_orca engine links fabric paths cfg cc tracker (spec : Spec.collective)
    ~chunk_bytes =
  let plan =
    Peel_baselines.Orca.plan fabric ~rng:cfg.rng ~source:spec.source
      ~dests:spec.dests
  in
  let relays_of = Hashtbl.create 16 in
  List.iter
    (fun (agent, m) ->
      Hashtbl.replace relays_of agent
        (m :: Option.value (Hashtbl.find_opt relays_of agent) ~default:[]))
    plan.Peel_baselines.Orca.relays;
  let on_member ~node ~time ~chunk =
    match Hashtbl.find_opt relays_of node with
    | None -> ()
    | Some members ->
        List.iter
          (fun m ->
            Transfer.unicast engine links
              ~links:(Paths.links paths node m)
              ~bytes:chunk_bytes ~start:time
              ?on_reserve:(on_reserve_for engine cc chunk)
              ?loss:cfg.loss
              ~on_delivered:(fun t' ->
                record tracker m chunk t';
                maybe_cnp engine cc chunk t')
              ())
          members
  in
  let start =
    spec.arrival
    +. (if cfg.controller then plan.Peel_baselines.Orca.setup_delay else 0.0)
  in
  release_chunks engine cfg cc ~start ~chunk_bytes ~send:(fun c t ->
      multicast_trees engine links cfg paths ~source:spec.source cc tracker
        ~trees:[ plan.Peel_baselines.Orca.tree ]
        ~chunk:c ~chunk_bytes ~start:t ~on_member)

let peel_packet_trees fabric (spec : Spec.collective) =
  Peel.Plan.packet_trees fabric ~source:spec.source ~dests:spec.dests

let run_peel engine links fabric paths cfg cc tracker (spec : Spec.collective)
    ~chunk_bytes =
  let trees = peel_packet_trees fabric spec in
  if trees = [] then failwith "Broadcast: empty PEEL plan";
  release_chunks engine cfg cc ~start:spec.arrival ~chunk_bytes
    ~send:(fun c t ->
      multicast_trees engine links cfg paths ~source:spec.source cc tracker
        ~trees ~chunk:c ~chunk_bytes ~start:t ~on_member:no_member)

let run_peel_prog engine links fabric paths cfg cc tracker
    (spec : Spec.collective) ~chunk_bytes =
  let peel_trees = peel_packet_trees fabric spec in
  if peel_trees = [] then failwith "Broadcast: empty PEEL plan";
  let refined =
    match Peel.multicast_tree fabric ~source:spec.source ~dests:spec.dests with
    | Some t -> [ t ]
    | None -> peel_trees
  in
  let setup_done =
    spec.arrival +. Peel_baselines.Orca.sample_setup_delay cfg.rng
  in
  let npackets = float_of_int (List.length peel_trees) in
  release_chunks engine cfg cc ~start:spec.arrival ~chunk_bytes
    ~send:(fun c t ->
      (* Fast start on static prefixes; once the controller has
         programmed the cores, remaining chunks ride the single-copy
         refined tree.  Chunks queue on the source NIC, so chunk [c]'s
         first byte leaves no earlier than c packet-copies later — use
         that pacing estimate to decide which chunks see the refined
         state. *)
      let est_send = t +. (float_of_int c *. npackets *. chunk_bytes /. nic_rate) in
      let trees = if est_send < setup_done then peel_trees else refined in
      multicast_trees engine links cfg paths ~source:spec.source cc tracker
        ~trees ~chunk:c ~chunk_bytes ~start:t ~on_member:no_member)

let run_peel_multitree engine links fabric paths cfg cc tracker
    (spec : Spec.collective) ~chunk_bytes ~ntrees =
  (* N edge-diverse greedy trees (different salts); chunks stripe across
     them round-robin — the §2.3 multicast-vs-multipath experiment. *)
  let g = Peel_topology.Fabric.graph fabric in
  let trees =
    List.init ntrees (fun salt ->
        Peel_steiner.Layer_peel.build ~salt g ~source:spec.source
          ~dests:spec.dests)
    |> List.filter_map Fun.id
  in
  if trees = [] then failwith "Broadcast: destinations unreachable (multitree)";
  let trees = Array.of_list trees in
  release_chunks engine cfg cc ~start:spec.arrival ~chunk_bytes
    ~send:(fun c t ->
      multicast_trees engine links cfg paths ~source:spec.source cc tracker
        ~trees:[ trees.(c mod Array.length trees) ]
        ~chunk:c ~chunk_bytes ~start:t ~on_member:no_member)

let launch engine links fabric paths cfg scheme ~(spec : Spec.collective)
    ~on_complete =
  if cfg.chunks < 1 then invalid_arg "Broadcast.launch: chunks >= 1";
  if spec.dests = [] then
    Engine.schedule engine spec.arrival (fun () -> on_complete 0.0)
  else begin
    let tracker =
      make_tracker ~trace:cfg.trace ~flow:spec.id ~arrival:spec.arrival
        ~dests:spec.dests ~chunks:cfg.chunks ~on_complete
    in
    let cc = make_cc_state cfg ~flow:spec.id in
    let chunk_bytes = spec.bytes /. float_of_int cfg.chunks in
    match scheme with
    | Scheme.Ring -> run_ring engine links fabric paths cfg cc tracker spec ~chunk_bytes
    | Scheme.Btree -> run_btree engine links fabric paths cfg cc tracker spec ~chunk_bytes
    | Scheme.Dbtree -> run_dbtree engine links fabric paths cfg cc tracker spec ~chunk_bytes
    | Scheme.Optimal ->
        run_optimal engine links fabric paths cfg cc tracker spec ~chunk_bytes
    | Scheme.Orca -> run_orca engine links fabric paths cfg cc tracker spec ~chunk_bytes
    | Scheme.Peel ->
        run_peel engine links fabric paths cfg cc tracker spec ~chunk_bytes
    | Scheme.Peel_prog_cores ->
        run_peel_prog engine links fabric paths cfg cc tracker spec ~chunk_bytes
    | Scheme.Peel_multitree n ->
        run_peel_multitree engine links fabric paths cfg cc tracker spec
          ~chunk_bytes ~ntrees:(max 1 n)
  end
