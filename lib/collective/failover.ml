open Peel_topology
open Peel_sim
open Peel_workload

type scheme = Peel | Ring | Btree

let all_schemes = [ Peel; Ring; Btree ]

let scheme_to_string = function Peel -> "peel" | Ring -> "ring" | Btree -> "tree"

let scheme_of_string = function
  | "peel" -> Some Peel
  | "ring" -> Some Ring
  | "tree" | "btree" -> Some Btree
  | _ -> None

type ctrl = { detection : float; reaction : float; repair_rto : float }

let default_ctrl = { detection = 500e-6; reaction = 1e-3; repair_rto = 4e-3 }

let nic_rate = 12.5e9

(* ------------------------------------------------------------------ *)
(* PEEL with controller re-peeling                                     *)
(* ------------------------------------------------------------------ *)

let launch_peel engine links fabric paths cfg ctrl ~(spec : Spec.collective)
    ~on_complete =
  let g = Fabric.graph fabric in
  let source = spec.source in
  let dests =
    List.sort_uniq compare (List.filter (fun d -> d <> source) spec.dests)
  in
  let trace = cfg.Broadcast.trace in
  let flow = spec.id in
  let chunks = cfg.Broadcast.chunks in
  let chunk_bytes = spec.bytes /. float_of_int chunks in
  let tree0 =
    match Peel_steiner.Layer_peel.build g ~source ~dests with
    | Some t -> t
    | None -> failwith "Failover: destinations unreachable"
  in
  let current = ref tree0 in
  let ndests = List.length dests in
  let dest_set = Hashtbl.create (ndests * 2) in
  List.iter (fun d -> Hashtbl.replace dest_set d ()) dests;
  (* Deduplicated delivery state: a replan resend can overlap a NACK
     repair, but each (dest, chunk) counts exactly once — conservation
     (SIM005) stays exact. *)
  let delivered = Hashtbl.create 64 in
  let repairing = Hashtbl.create 16 in
  let missing = Array.make chunks ndests in
  let lossy = Array.make chunks false in
  let released = Array.make chunks false in
  let remaining = ref (chunks * ndests) in
  let last = ref spec.arrival in
  let finished () = !remaining = 0 in
  let deliver node chunk time =
    if Hashtbl.mem dest_set node && not (Hashtbl.mem delivered (node, chunk))
    then begin
      Hashtbl.replace delivered (node, chunk) ();
      Trace.delivery trace ~time ~node ~flow ~chunk;
      missing.(chunk) <- missing.(chunk) - 1;
      decr remaining;
      if time > !last then last := time;
      if !remaining = 0 then on_complete (!last -. spec.arrival)
    end
  in
  (* End-to-end repair: the receiver NACKs, the source unicasts over a
     live path.  Retries until it lands (or the run is abandoned). *)
  let rec repair node chunk =
    if
      (not (Hashtbl.mem delivered (node, chunk)))
      && not (Hashtbl.mem repairing (node, chunk))
    then begin
      Hashtbl.replace repairing (node, chunk) ();
      let now = Engine.now engine in
      Trace.retransmit trace ~time:now ~flow ~node;
      match Paths.links paths source node with
      | path ->
          Transfer.unicast engine links ~links:path ~bytes:chunk_bytes
            ~start:now ?loss:cfg.Broadcast.loss
            ~on_lost:(fun ~time ->
              Hashtbl.remove repairing (node, chunk);
              lost node chunk time)
            ~on_delivered:(fun t' ->
              Hashtbl.remove repairing (node, chunk);
              deliver node chunk t')
            ()
      | exception Invalid_argument _ ->
          (* No live path right now; probe again after the NACK RTO. *)
          Hashtbl.remove repairing (node, chunk);
          Engine.schedule_in engine ctrl.repair_rto (fun () ->
              repair node chunk)
    end
  and lost node chunk time =
    lossy.(chunk) <- true;
    if Hashtbl.mem dest_set node && not (Hashtbl.mem delivered (node, chunk))
    then
      Engine.schedule engine
        (time +. ctrl.detection +. ctrl.repair_rto)
        (fun () -> repair node chunk)
  in
  let send_tree tree chunk t =
    Transfer.multicast engine links ~tree ~bytes:chunk_bytes ~start:t
      ?loss:cfg.Broadcast.loss
      ~on_lost:(fun ~node ~time -> lost node chunk time)
      ~on_delivered:(fun ~node ~time -> deliver node chunk time)
      ()
  in
  (* Chunks leave the source NIC back to back at line rate. *)
  for c = 0 to chunks - 1 do
    let t = spec.arrival +. (float_of_int c *. chunk_bytes /. nic_rate) in
    Engine.schedule engine t (fun () ->
        released.(c) <- true;
        Trace.release trace ~time:t ~flow ~chunk:c ~rate:nic_rate;
        send_tree !current c t)
  done;
  (* The controller: notified of every fault, and after the detection +
     reaction delay re-peels on the surviving fabric.  Survivors keep
     their bindings (the splice invariant), so in-flight subtrees above
     the cut are untouched. *)
  fun (ev : Fault.event) ->
    match ev.Fault.action with
    | Fault.Recover -> ()
    | Fault.Fail ->
        if not (finished ()) then
          Engine.schedule_in engine
            (ctrl.detection +. ctrl.reaction)
            (fun () ->
              if not (finished ()) then
                match
                  Peel_steiner.Layer_peel.repeel g ~prev:!current ~source
                    ~dests
                with
                | None ->
                    (* Partitioned: NACK repairs keep probing until a
                       recovery restores connectivity. *)
                    ()
                | Some t' ->
                    if Peel_check.enabled () then
                      Peel_check.assert_valid ~what:"replanned tree"
                        (Peel_check.Check_tree.check_splice g ~prev:!current
                           ~tree:t' ~source ~dests);
                    current := t';
                    let now = Engine.now engine in
                    Trace.replan trace ~time:now ~flow
                      ~cost:(Peel_steiner.Tree.cost t');
                    (* Resend only the chunks with recorded losses; the
                       rest are either delivered or still in flight on
                       surviving subtrees. *)
                    for c = 0 to chunks - 1 do
                      if released.(c) && lossy.(c) && missing.(c) > 0 then begin
                        lossy.(c) <- false;
                        send_tree t' c now
                      end
                    done)

(* ------------------------------------------------------------------ *)
(* Ring / binary-tree baselines: fixed logical schedule, end-to-end     *)
(* unicast repair from the source                                       *)
(* ------------------------------------------------------------------ *)

let launch_chain engine links fabric paths cfg ctrl ~kind
    ~(spec : Spec.collective) ~on_complete =
  let source = spec.source in
  let trace = cfg.Broadcast.trace in
  let flow = spec.id in
  let chunks = cfg.Broadcast.chunks in
  let chunk_bytes = spec.bytes /. float_of_int chunks in
  let order =
    match kind with
    | `Ring ->
        (Peel_baselines.Ring.schedule fabric ~source ~members:spec.members)
          .Peel_baselines.Ring.order
    | `Btree ->
        (Peel_baselines.Binary_tree.schedule fabric ~source
           ~members:spec.members)
          .Peel_baselines.Binary_tree.order
  in
  let n = Array.length order in
  let children pos =
    match kind with
    | `Ring -> if pos + 1 < n then [ pos + 1 ] else []
    | `Btree -> List.filter (fun c -> c < n) [ (2 * pos) + 1; (2 * pos) + 2 ]
  in
  let dests =
    List.sort_uniq compare (List.filter (fun d -> d <> source) spec.dests)
  in
  let dest_set = Hashtbl.create (List.length dests * 2) in
  List.iter (fun d -> Hashtbl.replace dest_set d ()) dests;
  let got = Array.make_matrix chunks n false in
  let repairing = Hashtbl.create 16 in
  (* Guards against a repair resuming a pipeline position that the
     original schedule (or an earlier repair) already forwarded from. *)
  let forwarded = Hashtbl.create 64 in
  let remaining = ref (chunks * List.length dests) in
  let last = ref spec.arrival in
  let deliver pos chunk time =
    if not got.(chunk).(pos) then begin
      got.(chunk).(pos) <- true;
      let node = order.(pos) in
      if Hashtbl.mem dest_set node then begin
        Trace.delivery trace ~time ~node ~flow ~chunk;
        decr remaining;
        if time > !last then last := time;
        if !remaining = 0 then on_complete (!last -. spec.arrival)
      end
    end
  in
  let rec forward pos chunk t =
    List.iter
      (fun q ->
        if not (Hashtbl.mem forwarded (q, chunk)) then begin
          Hashtbl.replace forwarded (q, chunk) ();
          send pos q chunk t
        end)
      (children pos)
  and send pos q chunk t =
    (* Routes re-resolve per send: a post-failure forward takes the
       rerouted path (the cache was invalidated by the fault hook). *)
    match Paths.links paths order.(pos) order.(q) with
    | path ->
        Transfer.unicast engine links ~links:path ~bytes:chunk_bytes ~start:t
          ?loss:cfg.Broadcast.loss
          ~on_lost:(fun ~time -> lost q chunk time)
          ~on_delivered:(fun t' ->
            deliver q chunk t';
            forward q chunk t')
          ()
    | exception Invalid_argument _ -> lost q chunk t
  and lost q chunk time =
    if not got.(chunk).(q) then
      Engine.schedule engine
        (time +. ctrl.detection +. ctrl.repair_rto)
        (fun () -> repair q chunk)
  and repair q chunk =
    if (not got.(chunk).(q)) && not (Hashtbl.mem repairing (q, chunk)) then begin
      Hashtbl.replace repairing (q, chunk) ();
      let now = Engine.now engine in
      Trace.retransmit trace ~time:now ~flow ~node:order.(q);
      match Paths.links paths source order.(q) with
      | path ->
          Transfer.unicast engine links ~links:path ~bytes:chunk_bytes
            ~start:now ?loss:cfg.Broadcast.loss
            ~on_lost:(fun ~time ->
              Hashtbl.remove repairing (q, chunk);
              lost q chunk time)
            ~on_delivered:(fun t' ->
              Hashtbl.remove repairing (q, chunk);
              deliver q chunk t';
              forward q chunk t')
            ()
      | exception Invalid_argument _ ->
          Hashtbl.remove repairing (q, chunk);
          Engine.schedule_in engine ctrl.repair_rto (fun () -> repair q chunk)
    end
  in
  for c = 0 to chunks - 1 do
    let t = spec.arrival +. (float_of_int c *. chunk_bytes /. nic_rate) in
    Engine.schedule engine t (fun () ->
        Trace.release trace ~time:t ~flow ~chunk:c ~rate:nic_rate;
        forward 0 c t)
  done;
  (* No replanning: the logical schedule is fixed, losses repair
     end-to-end, and routing heals by itself once paths re-resolve. *)
  fun (_ : Fault.event) -> ()

let run ?(chunks = 8) ?(ctrl = default_ctrl) ?loss ?(ecmp = true) ?trace
    ?faults fabric scheme collectives =
  let handlers = ref [] in
  Runner.run_custom ~chunks ?loss ~ecmp ?trace ?faults
    ~on_fault:(fun ev -> List.iter (fun h -> h ev) (List.rev !handlers))
    fabric
    ~launch:(fun engine links paths cfg ~spec ~on_complete ->
      if spec.Spec.dests = [] then
        Engine.schedule engine spec.Spec.arrival (fun () -> on_complete 0.0)
      else begin
        let h =
          match scheme with
          | Peel ->
              launch_peel engine links fabric paths cfg ctrl ~spec ~on_complete
          | Ring ->
              launch_chain engine links fabric paths cfg ctrl ~kind:`Ring ~spec
                ~on_complete
          | Btree ->
              launch_chain engine links fabric paths cfg ctrl ~kind:`Btree
                ~spec ~on_complete
        in
        handlers := h :: !handlers
      end)
    collectives
