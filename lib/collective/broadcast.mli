(** Executes one Broadcast collective inside the simulator under any of
    the six schemes (paper §4).

    Messages are split into [chunks] pipelined chunks (the paper uses
    8, as NCCL-style libraries do): a chunk is forwarded as soon as it
    is fully received, so rings and trees overlap transmission along
    the schedule while multicast schemes overlap replication down the
    tree.

    Congestion control is optional: [No_cc] runs over plain FIFO links
    (lossless fabric, queueing delay only), while [Dcqcn] adds the
    DCQCN-lite sender rate limiter with ECN-style marking — the paper's
    guard-timer experiment (§4, "Congestion control"). *)

open Peel_topology
open Peel_sim
open Peel_workload

type cc =
  | No_cc
  | Dcqcn of { guard : float option; ecn_delay : float }
      (** [guard]: minimum spacing between rate cuts ([None] = react to
          every CNP); [ecn_delay]: queueing delay on any link that marks
          a chunk. *)

type config = {
  chunks : int;
  cc : cc;
  rng : Peel_util.Rng.t;  (** controller setup delays (Orca, PEEL+cores) *)
  controller : bool;
      (** when false, Orca's flow-setup delay is zeroed — the "without
          controller overhead" variant of the paper's Figure 4 *)
  loss : Peel_sim.Transfer.loss option;
      (** per-link chunk loss with selective-repeat recovery: per-hop
          retransmit on unicast schedules, end-to-end source repair for
          multicast receivers (the RDMA machinery the paper inherits) *)
  trace : Trace.t;
      (** observability sink ({!Trace.null} = off): chunk releases and
          destination deliveries, ECN marks, CNP/rate-cut/guard events
          and end-to-end repairs are recorded against the collective's
          [spec.id] as the flow id *)
}

val default_config : ?trace:Trace.t -> rng:Peel_util.Rng.t -> unit -> config
(** chunks = 8, no congestion control, controller delays on, lossless,
    tracing off. *)

val launch :
  Engine.t ->
  Link_state.t ->
  Fabric.t ->
  Paths.t ->
  config ->
  Scheme.t ->
  spec:Spec.collective ->
  on_complete:(float -> unit) ->
  unit
(** Schedules the collective's transfers starting at [spec.arrival];
    [on_complete] fires with the collective completion time (last chunk
    at the last destination minus arrival) once every destination holds
    the whole message. *)
