(** Flattening collectives into {!Peel_sim.Shard} plans.

    The sequential schemes in {!Broadcast} drive the engine with
    closures; this module precomputes the same forwarding structure —
    ring hop chains, binary/double-binary tree unicast chains, PEEL and
    optimal multicast trees — as static {!Peel_sim.Soa} DAGs, which is
    what lets the conservative sharded engine execute one large
    collective across domains.

    Edge enumeration is preorder-consistent with the sequential
    engine's FIFO tie order (chunk-major, then tree-major, then
    ascending child order), so same-instant reservations on a shared
    link serialize identically in both modes.

    Scope: the static schemes only — {!Scheme.Ring}, {!Scheme.Btree},
    {!Scheme.Dbtree}, {!Scheme.Optimal}, {!Scheme.Peel} — with
    congestion control off, no loss model and no fault schedule.
    Orca and the progressive/multitree PEEL variants depend on
    controller RNG draws interleaved with simulation time and stay on
    the sequential path. *)

open Peel_topology
open Peel_workload

val supported : Scheme.t -> bool
(** Whether {!flatten} can express the scheme. *)

val flatten :
  Fabric.t ->
  Paths.t ->
  chunks:int ->
  Scheme.t ->
  Spec.collective list ->
  Peel_sim.Soa.flow array
(** One {!Peel_sim.Soa.flow} per collective, list order.  Uses the
    given path cache (so ECMP picks match a sequential run configured
    the same way).  Raises [Invalid_argument] on an unsupported scheme
    or [chunks < 1]; [Failure] when a destination is unreachable. *)

val run :
  ?chunks:int ->
  ?ecmp:bool ->
  ?jobs:int ->
  ?audit:bool ->
  Fabric.t ->
  Scheme.t ->
  Spec.collective list ->
  Peel_sim.Shard.result
(** Flatten and execute on [min jobs (pods fabric)] shards ([jobs]
    defaults to {!Peel_util.Pool.default_jobs}; [chunks] defaults to 8
    and [ecmp] to [true], matching {!Runner.run}).  [audit] collects
    per-window causality evidence for SIM008.  The result is
    bit-identical for every [jobs] value. *)
