open Peel_topology
open Peel_sim
open Peel_workload

let supported = function
  | Scheme.Ring | Scheme.Btree | Scheme.Dbtree | Scheme.Optimal | Scheme.Peel ->
      true
  | Scheme.Orca | Scheme.Peel_prog_cores | Scheme.Peel_multitree _ -> false

(* ------------------------------------------------------------------ *)
(* DAG builder: growable edge store, frozen to the CSR form Soa wants. *)
(* ------------------------------------------------------------------ *)

type builder = {
  mutable b_links : int list;     (* reversed: head is newest edge *)
  mutable b_delivers : int list;
  mutable b_n : int;
  b_succs : (int, int list) Hashtbl.t;  (* edge -> successors, reversed *)
  mutable b_roots : int list;     (* reversed *)
}

let b_create () =
  { b_links = []; b_delivers = []; b_n = 0; b_succs = Hashtbl.create 64; b_roots = [] }

let add_edge b ~link ~deliver =
  let e = b.b_n in
  b.b_links <- link :: b.b_links;
  b.b_delivers <- deliver :: b.b_delivers;
  b.b_n <- e + 1;
  e

let add_succ b ~from ~next =
  Hashtbl.replace b.b_succs from
    (next :: Option.value (Hashtbl.find_opt b.b_succs from) ~default:[])

let add_root b e = b.b_roots <- e :: b.b_roots

let freeze b : Soa.dag =
  let n = b.b_n in
  let link = Array.make n 0 and deliver = Array.make n (-1) in
  List.iteri (fun i l -> link.(n - 1 - i) <- l) b.b_links;
  List.iteri (fun i d -> deliver.(n - 1 - i) <- d) b.b_delivers;
  let off = Array.make (n + 1) 0 in
  for e = 0 to n - 1 do
    let deg =
      match Hashtbl.find_opt b.b_succs e with
      | None -> 0
      | Some l -> List.length l
    in
    off.(e + 1) <- off.(e) + deg
  done;
  let succ = Array.make off.(n) 0 in
  for e = 0 to n - 1 do
    match Hashtbl.find_opt b.b_succs e with
    | None -> ()
    | Some l ->
        List.iteri
          (fun i s -> succ.(off.(e + 1) - 1 - i) <- s)
          l
  done;
  {
    Soa.d_link = link;
    d_deliver = deliver;
    d_succ_off = off;
    d_succ = succ;
    d_roots = Array.of_list (List.rev b.b_roots);
  }

(* A unicast logical hop: the chain of links [path], entered after
   [incoming] arrives (or at flow release when [None]); the final link
   delivers at [deliver] (or -1).  Returns the chain's last edge. *)
let chain b ~incoming ~deliver path =
  match path with
  | [] -> invalid_arg "Par.chain: empty path"
  | first :: rest ->
      let e0 = add_edge b ~link:first ~deliver:(if rest = [] then deliver else -1) in
      (match incoming with
      | None -> add_root b e0
      | Some e -> add_succ b ~from:e ~next:e0);
      let rec go prev = function
        | [] -> prev
        | lid :: rest ->
            let e = add_edge b ~link:lid ~deliver:(if rest = [] then deliver else -1) in
            add_succ b ~from:prev ~next:e;
            go e rest
      in
      go e0 rest

(* ------------------------------------------------------------------ *)
(* Scheme flatteners.  Edge enumeration is preorder (chains in sibling
   order, then their subtrees), which preserves the sequential FIFO
   order of same-instant reservations on shared links.                 *)
(* ------------------------------------------------------------------ *)

let mem_dest dest_set node = if Hashtbl.mem dest_set node then node else -1

let flatten_ring fabric paths dest_set (spec : Spec.collective) =
  let b = b_create () in
  let r =
    Peel_baselines.Ring.schedule fabric ~source:spec.source ~members:spec.members
  in
  let order = r.Peel_baselines.Ring.order in
  let n = Array.length order in
  let prev = ref None in
  for i = 0 to n - 2 do
    let path = Paths.links paths order.(i) order.(i + 1) in
    let last =
      chain b ~incoming:!prev ~deliver:(mem_dest dest_set order.(i + 1)) path
    in
    prev := Some last
  done;
  [| freeze b |]

let flatten_btree fabric paths dest_set (spec : Spec.collective) =
  let b = b_create () in
  let bt =
    Peel_baselines.Binary_tree.schedule fabric ~source:spec.source
      ~members:spec.members
  in
  let order = bt.Peel_baselines.Binary_tree.order in
  let n = Array.length order in
  let rec emit pos ~incoming =
    List.iter
      (fun child ->
        if child < n then begin
          let path = Paths.links paths order.(pos) order.(child) in
          let last =
            chain b ~incoming ~deliver:(mem_dest dest_set order.(child)) path
          in
          emit child ~incoming:(Some last)
        end)
      [ (2 * pos) + 1; (2 * pos) + 2 ]
  in
  emit 0 ~incoming:None;
  [| freeze b |]

let flatten_dbtree fabric paths dest_set (spec : Spec.collective) =
  let dt =
    Peel_baselines.Double_binary_tree.schedule fabric ~source:spec.source
      ~members:spec.members
  in
  let children_map edges =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (p, c) ->
        Hashtbl.replace tbl p
          (c :: Option.value (Hashtbl.find_opt tbl p) ~default:[]))
      edges;
    tbl
  in
  let one edges =
    let b = b_create () in
    let tbl = children_map edges in
    let rec emit node ~incoming =
      List.iter
        (fun child ->
          let path = Paths.links paths node child in
          let last = chain b ~incoming ~deliver:(mem_dest dest_set child) path in
          emit child ~incoming:(Some last))
        (List.rev (Option.value (Hashtbl.find_opt tbl node) ~default:[]))
    in
    emit spec.source ~incoming:None;
    freeze b
  in
  (* Even chunks ride tree A, odd chunks tree B (Shard indexes DAGs by
     [chunk mod 2]), mirroring the sequential parity split. *)
  [|
    one dt.Peel_baselines.Double_binary_tree.edges_a;
    one dt.Peel_baselines.Double_binary_tree.edges_b;
  |]

let flatten_trees dest_set trees =
  let b = b_create () in
  List.iter
    (fun tree ->
      let rec descend v ~incoming =
        List.iter
          (fun (child, lid) ->
            let e = add_edge b ~link:lid ~deliver:(mem_dest dest_set child) in
            (match incoming with
            | None -> add_root b e
            | Some pe -> add_succ b ~from:pe ~next:e);
            descend child ~incoming:(Some e))
          (Peel_steiner.Tree.children tree v)
      in
      descend (Peel_steiner.Tree.root tree) ~incoming:None)
    trees;
  [| freeze b |]

let flatten_spec fabric paths scheme (spec : Spec.collective) ~chunks : Soa.flow =
  let chunk_bytes = spec.bytes /. float_of_int chunks in
  let dest_set = Hashtbl.create (2 * List.length spec.dests) in
  List.iter (fun d -> Hashtbl.replace dest_set d ()) spec.dests;
  let dags =
    if spec.dests = [] then
      (* Destination-less collectives complete instantly (the
         sequential launch does the same). *)
      [|
        {
          Soa.d_link = [||];
          d_deliver = [||];
          d_succ_off = [| 0 |];
          d_succ = [||];
          d_roots = [||];
        };
      |]
    else
      match scheme with
      | Scheme.Ring -> flatten_ring fabric paths dest_set spec
      | Scheme.Btree -> flatten_btree fabric paths dest_set spec
      | Scheme.Dbtree -> flatten_dbtree fabric paths dest_set spec
      | Scheme.Optimal -> (
          match
            Peel.multicast_tree fabric ~source:spec.source ~dests:spec.dests
          with
          | None -> failwith "Par: destinations unreachable (optimal)"
          | Some tree -> flatten_trees dest_set [ tree ])
      | Scheme.Peel -> (
          match
            Peel.Plan.packet_trees fabric ~source:spec.source ~dests:spec.dests
          with
          | [] -> failwith "Par: empty PEEL plan"
          | trees -> flatten_trees dest_set trees)
      | (Scheme.Orca | Scheme.Peel_prog_cores | Scheme.Peel_multitree _) as s ->
          invalid_arg
            (Printf.sprintf "Par.flatten: scheme %s is not shardable"
               (Scheme.to_string s))
  in
  {
    Soa.f_id = spec.id;
    f_arrival = spec.arrival;
    f_chunks = chunks;
    f_chunk_bytes = chunk_bytes;
    f_expected = chunks * List.length spec.dests;
    f_dags = dags;
  }

let flatten fabric paths ~chunks scheme specs =
  if chunks < 1 then invalid_arg "Par.flatten: chunks >= 1";
  Array.of_list
    (List.map (fun spec -> flatten_spec fabric paths scheme spec ~chunks) specs)

let run ?(chunks = 8) ?(ecmp = true) ?jobs ?(audit = false) fabric scheme specs =
  let jobs =
    match jobs with Some j -> j | None -> Peel_util.Pool.default_jobs ()
  in
  let paths = Paths.create ~ecmp fabric in
  let flows = flatten fabric paths ~chunks scheme specs in
  let links = Soa.links_of_graph (Fabric.graph fabric) in
  let min_bytes =
    Array.fold_left
      (fun acc (f : Soa.flow) -> Float.min acc f.Soa.f_chunk_bytes)
      infinity flows
  in
  let min_bytes = if Float.is_finite min_bytes then min_bytes else 1.0 in
  let sharding = Soa.shard fabric ~jobs ~min_bytes in
  let plan = Shard.plan ~links ~sharding flows in
  Shard.run ~audit plan
