(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index) and times the core
   algorithms with Bechamel.

   Usage:
     dune exec bench/main.exe               # full run, all experiments
     dune exec bench/main.exe -- quick      # reduced trial counts
     dune exec bench/main.exe -- fig5 fig7  # selected experiments
     dune exec bench/main.exe -- micro      # Bechamel micro-benchmarks *)

open Peel_experiments
module Rng = Peel_util.Rng

let experiments : (string * string * (Common.mode -> unit)) list =
  [
    ("fig1", "E1: Broadcast bandwidth, Ring/Tree vs optimal", Exp_fig1.run);
    ("fig3", "E2: RSBF Bloom-filter header overhead", Exp_fig3.run);
    ("fig4", "E3: Orca controller-overhead inflation", Exp_fig4.run);
    ("fig5", "E4: CCT vs message size, all schemes", Exp_fig5.run);
    ("fig6", "E5: CCT vs scale", Exp_fig6.run);
    ("fig7", "E6: robustness to failures", Exp_fig7.run);
    ("state", "E7: switch state and header accounting", Exp_state.run);
    ("guard", "E8: DCQCN guard timer ablation", Exp_guard.run);
    ("approx", "E9: greedy quality and aggregate bandwidth", Exp_approx.run);
    ("frag", "E10: fragmentation ablation", Exp_frag.run);
    ("collectives", "E11 (ext): PEEL inside larger collectives", Exp_collectives.run);
    ("multipath", "E12 (ext): multicast vs multipath", Exp_multipath.run);
    ("loss", "E13 (ext): loss and selective repeat", Exp_loss.run);
    ("tenancy", "E14 (ext): concurrent jobs vs TCAM", Exp_tenancy.run);
    ("rail", "E15 (ext): rail-optimized fabric", Exp_rail.run);
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the paper's complexity claims            *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let fabric = Common.fig5_fabric () in
  let g = Peel_topology.Fabric.graph fabric in
  let eps = Peel_topology.Fabric.endpoints fabric in
  let members = List.init 256 (fun i -> eps.(128 + i)) in
  let source = List.hd members in
  let dests = List.tl members in
  let rng = Rng.create 9 in
  let tor_targets = List.init 24 (fun _ -> Rng.int rng 64) |> List.sort_uniq compare in
  [
    Test.make ~name:"layer_peel_tree_256_dests"
      (Staged.stage (fun () ->
           ignore (Peel_steiner.Layer_peel.build g ~source ~dests)));
    Test.make ~name:"symmetric_optimal_tree_256_dests"
      (Staged.stage (fun () ->
           ignore (Peel_steiner.Symmetric.build fabric ~source ~dests)));
    Test.make ~name:"peel_plan_256_dests"
      (Staged.stage (fun () -> ignore (Peel.Plan.build fabric ~source ~dests)));
    Test.make ~name:"exact_cover_m6_24_targets"
      (Staged.stage (fun () ->
           ignore (Peel_prefix.Cover.exact_cover ~m:6 tor_targets)));
    Test.make ~name:"budgeted_cover_m6_b4"
      (Staged.stage (fun () ->
           ignore (Peel_prefix.Cover.budgeted_cover ~m:6 ~budget:4 tor_targets)));
  ]

let run_micro () =
  let open Bechamel in
  Common.banner "Micro-benchmarks (Bechamel): tree construction is cheap";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true
      ~quota:(Time.second 0.5) ()
  in
  let rows =
    List.map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        let analyzed = Analyze.all ols instance results in
        Hashtbl.fold
          (fun name ols_result acc ->
            let ns =
              match Analyze.OLS.estimates ols_result with
              | Some (e :: _) -> e
              | _ -> nan
            in
            [ name; Peel_util.Table.fsec (ns /. 1e9) ] :: acc)
          analyzed []
        |> List.concat)
      (micro_tests ())
  in
  Peel_util.Table.print ~header:[ "algorithm"; "time per run" ]
    (List.map
       (fun row -> match row with [ a; b ] -> [ a; b ] | _ -> row)
       (List.filter (fun r -> r <> []) rows))

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "quick" args in
  let mode = if quick then Common.Quick else Common.Full in
  let exp_names = List.map (fun (n, _, _) -> n) experiments in
  let selections = List.filter (fun a -> a <> "quick") args in
  let unknown =
    List.filter (fun a -> a <> "micro" && a <> "all" && not (List.mem a exp_names))
      selections
  in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment(s): %s\navailable: %s micro all quick\n"
      (String.concat " " unknown)
      (String.concat " " exp_names);
    exit 2
  end;
  let run_all = selections = [] || List.mem "all" selections in
  let wanted name = run_all || List.mem name selections in
  let t0 = Unix.gettimeofday () in
  Printf.printf "PEEL benchmark harness (%s mode)\n"
    (match mode with Common.Quick -> "quick" | Common.Full -> "full");
  List.iter
    (fun (name, _desc, f) -> if wanted name then f mode)
    experiments;
  if run_all || List.mem "micro" selections then run_micro ();
  Printf.printf "\ntotal wall time: %.1f s\n" (Unix.gettimeofday () -. t0)
