(** Switch data-plane emulation: runs a {!Plan} through the actual
    static rule tables, byte-for-byte the way hardware would.

    The sender wire-encodes each packet's [<prefix, len>] tuples
    ({!Peel_prefix.Header}); the core tier decodes the pod field and
    replicates to the matching pod block using its pre-installed rules;
    each pod's aggregation tier decodes the ToR field and replicates to
    the matching rack block.  [verify] cross-checks that this pipeline
    reaches *exactly* the racks the plan says it reaches — the
    end-to-end consistency between the control plane (cover-set
    computation) and the data plane (k-1 static TCAM rules). *)

open Peel_topology

type delivery = {
  packet_index : int;
  pods_reached : int list;
  tors_reached : int list;  (** ToR node ids, ascending *)
}

val deliver : Fabric.t -> Plan.t -> delivery list
(** Execute every packet of the plan through encode -> decode -> rule
    lookup -> replication.  Raises [Invalid_argument] on a malformed
    plan (prefix outside the fabric's id space). *)

val verify : Fabric.t -> Plan.t -> (unit, string) result
(** [Ok ()] iff for every packet the data plane reaches exactly
    [packet.tors] (members plus over-covered racks), and collectively
    every destination's rack is reached. *)
