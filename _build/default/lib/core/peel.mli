(** PEEL — Prefix-Encoded Efficient Layering.

    The public facade of this reproduction of "One to Many: Closing the
    Bandwidth Gap in AI Datacenters with Scalable Multicast" (HotNets
    '25).  PEEL makes datacenter multicast practical with two pieces:

    - {b Trees}: [multicast_tree] builds the collective's distribution
      tree — provably optimal in a symmetric Clos (Lemma 2.1), and the
      [O(min(F,|D|))]-approximate layer-peeling greedy when links have
      failed (§2.3).
    - {b State}: [plan] compresses the downward fan-out into
      power-of-two prefix packets matched by [k-1] static TCAM rules
      per switch and a <8 B header (§3.2).

    Sub-modules re-export the underlying machinery for callers that
    need the pieces individually. *)

module Plan = Plan
(** Per-collective prefix packetization. *)

module Dataplane = Dataplane
(** Static-rule-table emulation of the switch pipeline. *)

module Tree = Peel_steiner.Tree
module Layer_peel = Peel_steiner.Layer_peel
module Symmetric = Peel_steiner.Symmetric
module Exact = Peel_steiner.Exact
module Cover = Peel_prefix.Cover
module Header = Peel_prefix.Header
module Rules = Peel_prefix.Rules
module Fabric = Peel_topology.Fabric
module Graph = Peel_topology.Graph

val multicast_tree :
  Fabric.t -> source:int -> dests:int list -> Tree.t option
(** The PEEL multicast tree for a group: the symmetric-optimal
    construction when every needed link is up, otherwise the
    layer-peeling greedy. [None] if a destination is unreachable. *)

val plan : ?budget:int -> Fabric.t -> source:int -> dests:int list -> Plan.t
(** Alias of {!Plan.build}. *)

val switch_rules : Fabric.t -> int
(** Static TCAM entries PEEL pre-installs per aggregation switch:
    [2^(m+1) - 1] over the fabric's ToR-id space ([k - 1] in a k-ary
    fat-tree). *)

val header_bytes : Fabric.t -> int
(** Per-packet header size for this fabric (see {!Plan.header_bytes_for}). *)

val state_table : Fabric.t -> Rules.table
(** The actual rule table a switch would hold. *)
