lib/core/plan.mli: Cover Fabric Peel_prefix Peel_steiner Peel_topology
