lib/core/peel.mli: Dataplane Peel_prefix Peel_steiner Peel_topology Plan
