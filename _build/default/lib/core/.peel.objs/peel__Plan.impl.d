lib/core/plan.ml: Array Cover Fabric Hashtbl List Option Peel_prefix Peel_steiner Peel_topology Peel_util Printf String
