lib/core/dataplane.mli: Fabric Peel_topology Plan
