lib/core/peel.ml: Dataplane Peel_prefix Peel_steiner Peel_topology Peel_util Plan
