lib/core/dataplane.ml: Array Fabric Hashtbl Header List Peel_prefix Peel_topology Peel_util Plan Printf Rules String
