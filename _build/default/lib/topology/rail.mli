(** Rail-optimized fabric (the paper's §2.1 future-work topology, after
    Alibaba HPN / NVIDIA rail designs).

    Servers carry [rails] GPUs each.  GPU [r] of every server in a
    group connects to the group's rail-[r] ToR, so same-rail GPUs talk
    through one switch and cross-rail traffic either rides the server's
    NVSwitch or goes up to the spine tier.  All rail ToRs connect to
    all spines (two-tier core).

    Rail ToRs are numbered globally (group-major, rail-minor) in a
    single flat identifier space, which is what the prefix engine
    addresses. *)

type t = {
  rails : int;
  groups : int;
  servers_per_group : int;
  spines : int array;
  tors : int array;            (** group-major, rail-minor *)
  hosts : int array;           (** per-server NVSwitches *)
  gpus : int array;
  graph : Graph.t;
  tor_of_gpu : int array;      (** indexed by node id; -1 otherwise *)
  host_of_gpu : int array;
  gpus_of_host : int array array;
}

val create :
  ?link_bw:float ->
  ?nvlink_bw:float ->
  ?link_latency:float ->
  rails:int ->
  groups:int ->
  servers_per_group:int ->
  spines:int ->
  unit ->
  t
(** All counts >= 1; [rails] is also the GPUs per server. *)

val num_gpus : t -> int

val spine_tor_duplex_links : t -> int array
(** Failure domain: all spine-to-rail-ToR cables. *)
