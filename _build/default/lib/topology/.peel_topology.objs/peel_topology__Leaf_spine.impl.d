lib/topology/leaf_spine.ml: Array Graph List
