lib/topology/rail.ml: Array Graph List
