lib/topology/fabric.mli: Fat_tree Graph Leaf_spine Peel_util Rail
