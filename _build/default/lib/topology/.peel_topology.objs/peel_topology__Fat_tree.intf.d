lib/topology/fat_tree.mli: Graph
