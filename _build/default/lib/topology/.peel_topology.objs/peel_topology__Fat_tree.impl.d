lib/topology/fat_tree.ml: Array Graph List Option
