lib/topology/leaf_spine.mli: Graph
