lib/topology/rail.mli: Graph
