lib/topology/graph.mli:
