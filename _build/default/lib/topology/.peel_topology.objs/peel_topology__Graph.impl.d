lib/topology/graph.ml: Array Int64 List Queue
