lib/topology/fabric.ml: Array Fat_tree Float Graph Leaf_spine List Peel_util Printf Rail
