(** Two-tier leaf–spine fabric builder.

    Every leaf switch connects to every spine switch.  Each leaf serves
    [hosts_per_leaf] hosts; each host carries [gpus_per_host] GPUs on
    NVLink-class links.  The paper's Figure 7 fabric is 16 spines x 48
    leaves, 2 servers per leaf, 8 GPUs per server, 100 Gbps links. *)

type t = {
  spines : int array;
  leaves : int array;
  hosts : int array;
  gpus : int array;
  graph : Graph.t;
  hosts_per_leaf : int;
  gpus_per_host : int;
  leaf_of_host : int array;     (** indexed by node id *)
  host_of_gpu : int array;      (** indexed by node id *)
  hosts_of_leaf : int array array;
  gpus_of_host : int array array;
}

val create :
  ?gpus_per_host:int ->
  ?link_bw:float ->
  ?nvlink_bw:float ->
  ?link_latency:float ->
  spines:int ->
  leaves:int ->
  hosts_per_leaf:int ->
  unit ->
  t

val num_hosts : t -> int
val num_gpus : t -> int

val leaf_index : t -> int -> int
(** Position of a leaf node id within [leaves]. *)

val host_index : t -> int -> int

val spine_leaf_duplex_links : t -> int array
(** Duplex ids (even direction) of all spine-leaf links — the failure
    domain of the paper's Figure 7. *)
