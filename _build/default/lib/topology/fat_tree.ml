type t = {
  k : int;
  hosts_per_tor : int;
  gpus_per_host : int;
  graph : Graph.t;
  pods : int;
  tors : int array;
  aggs : int array;
  cores : int array;
  hosts : int array;
  gpus : int array;
  tors_of_pod : int array array;
  aggs_of_pod : int array array;
  tor_of_host : int array;
  host_of_gpu : int array;
  hosts_of_tor : int array array;
  gpus_of_host : int array array;
}

let create ?hosts_per_tor ?(gpus_per_host = 0) ?(link_bw = 12.5e9)
    ?(nvlink_bw = 900e9) ?(link_latency = 500e-9) ~k () =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg "Fat_tree.create: k must be even and >= 2";
  let hosts_per_tor = Option.value hosts_per_tor ~default:(k / 2) in
  if hosts_per_tor < 1 then invalid_arg "Fat_tree.create: hosts_per_tor >= 1";
  if gpus_per_host < 0 then invalid_arg "Fat_tree.create: gpus_per_host >= 0";
  let half = k / 2 in
  let b = Graph.Builder.create () in
  let duplex = Graph.Builder.add_duplex b ~latency:link_latency in
  let tors_of_pod =
    Array.init k (fun p ->
        Array.init half (fun i -> Graph.Builder.add_node b Tor ~pod:p ~idx:i))
  in
  let aggs_of_pod =
    Array.init k (fun p ->
        Array.init half (fun i -> Graph.Builder.add_node b Agg ~pod:p ~idx:i))
  in
  let cores =
    Array.init (half * half) (fun i ->
        Graph.Builder.add_node b Core ~pod:(-1) ~idx:i)
  in
  for p = 0 to k - 1 do
    (* Intra-pod full bipartite ToR <-> Agg. *)
    Array.iter
      (fun tor ->
        Array.iter
          (fun agg -> ignore (duplex ~bandwidth:link_bw tor agg))
          aggs_of_pod.(p))
      tors_of_pod.(p);
    (* Agg a of every pod -> cores [a*half .. a*half + half - 1]. *)
    Array.iteri
      (fun a agg ->
        for j = 0 to half - 1 do
          ignore (duplex ~bandwidth:link_bw agg cores.((a * half) + j))
        done)
      aggs_of_pod.(p)
  done;
  (* Hosts under each ToR, GPUs under each host. *)
  let num_tors = k * half in
  let hosts_of_tor = Array.make num_tors [||] in
  let rev_hosts = ref [] and rev_gpus = ref [] in
  let rev_gpus_of_host = ref [] in
  let tor_pos = ref 0 in
  for p = 0 to k - 1 do
    Array.iter
      (fun tor ->
        let hosts =
          Array.init hosts_per_tor (fun i ->
              let h = Graph.Builder.add_node b Host ~pod:p ~idx:i in
              ignore (duplex ~bandwidth:link_bw tor h);
              rev_hosts := h :: !rev_hosts;
              let gpus =
                Array.init gpus_per_host (fun gi ->
                    let g = Graph.Builder.add_node b Gpu ~pod:p ~idx:gi in
                    (* NVLink to the server's NVSwitch (the Host node)
                       plus the GPU's dedicated 100G NIC to the ToR. *)
                    ignore
                      (Graph.Builder.add_duplex b ~latency:100e-9
                         ~bandwidth:nvlink_bw h g);
                    ignore (duplex ~bandwidth:link_bw tor g);
                    rev_gpus := g :: !rev_gpus;
                    g)
              in
              rev_gpus_of_host := gpus :: !rev_gpus_of_host;
              h)
        in
        hosts_of_tor.(!tor_pos) <- hosts;
        incr tor_pos)
      tors_of_pod.(p)
  done;
  let graph = Graph.Builder.finish b in
  let hosts = Array.of_list (List.rev !rev_hosts) in
  let gpus = Array.of_list (List.rev !rev_gpus) in
  let gpus_of_host = Array.of_list (List.rev !rev_gpus_of_host) in
  let tor_of_host = Array.make (Graph.num_nodes graph) (-1) in
  let host_of_gpu = Array.make (Graph.num_nodes graph) (-1) in
  let tors = Array.concat (Array.to_list tors_of_pod) in
  Array.iteri
    (fun ti hs -> Array.iter (fun h -> tor_of_host.(h) <- tors.(ti)) hs)
    hosts_of_tor;
  Array.iteri
    (fun hi gs -> Array.iter (fun g -> host_of_gpu.(g) <- hosts.(hi)) gs)
    gpus_of_host;
  {
    k;
    hosts_per_tor;
    gpus_per_host;
    graph;
    pods = k;
    tors;
    aggs = Array.concat (Array.to_list aggs_of_pod);
    cores;
    hosts;
    gpus;
    tors_of_pod;
    aggs_of_pod;
    tor_of_host;
    host_of_gpu;
    hosts_of_tor;
    gpus_of_host;
  }

let num_hosts t = Array.length t.hosts
let num_gpus t = Array.length t.gpus

let position arr v name =
  let pos = ref (-1) in
  Array.iteri (fun i x -> if x = v then pos := i) arr;
  if !pos < 0 then invalid_arg name;
  !pos

let tor_index t tor = position t.tors tor "Fat_tree.tor_index: not a ToR"
let host_index t host = position t.hosts host "Fat_tree.host_index: not a host"

let fabric_duplex_links t tier =
  let g = t.graph in
  let keep l =
    let open Graph in
    let sk = (node g l.src).kind and dk = (node g l.dst).kind in
    match tier with
    | `Tor_up -> (sk = Tor && dk = Agg) || (sk = Agg && dk = Tor)
    | `Agg_up -> (sk = Agg && dk = Core) || (sk = Core && dk = Agg)
    | `All ->
        kind_is_switch sk && kind_is_switch dk
  in
  Graph.duplex_ids g
  |> Array.to_list
  |> List.filter (fun id -> keep (Graph.link g id))
  |> Array.of_list
