type t = {
  spines : int array;
  leaves : int array;
  hosts : int array;
  gpus : int array;
  graph : Graph.t;
  hosts_per_leaf : int;
  gpus_per_host : int;
  leaf_of_host : int array;
  host_of_gpu : int array;
  hosts_of_leaf : int array array;
  gpus_of_host : int array array;
}

let create ?(gpus_per_host = 0) ?(link_bw = 12.5e9) ?(nvlink_bw = 900e9)
    ?(link_latency = 500e-9) ~spines ~leaves ~hosts_per_leaf () =
  if spines < 1 || leaves < 1 || hosts_per_leaf < 1 then
    invalid_arg "Leaf_spine.create: all counts must be >= 1";
  if gpus_per_host < 0 then invalid_arg "Leaf_spine.create: gpus_per_host >= 0";
  let b = Graph.Builder.create () in
  let duplex = Graph.Builder.add_duplex b ~latency:link_latency in
  (* Leaves are "pod 0" ToRs so the prefix engine can address them. *)
  let leaf_ids =
    Array.init leaves (fun i -> Graph.Builder.add_node b Tor ~pod:0 ~idx:i)
  in
  let spine_ids =
    Array.init spines (fun i -> Graph.Builder.add_node b Spine ~pod:(-1) ~idx:i)
  in
  Array.iter
    (fun leaf ->
      Array.iter (fun spine -> ignore (duplex ~bandwidth:link_bw leaf spine)) spine_ids)
    leaf_ids;
  let hosts_of_leaf = Array.make leaves [||] in
  let rev_hosts = ref [] and rev_gpus = ref [] and rev_gpus_of_host = ref [] in
  Array.iteri
    (fun li leaf ->
      hosts_of_leaf.(li) <-
        Array.init hosts_per_leaf (fun i ->
            let h = Graph.Builder.add_node b Host ~pod:0 ~idx:i in
            ignore (duplex ~bandwidth:link_bw leaf h);
            rev_hosts := h :: !rev_hosts;
            let gpus =
              Array.init gpus_per_host (fun gi ->
                  let g = Graph.Builder.add_node b Gpu ~pod:0 ~idx:gi in
                  (* NVLink to the server's NVSwitch (the Host node)
                     plus the GPU's dedicated 100G NIC to the leaf. *)
                  ignore
                    (Graph.Builder.add_duplex b ~latency:100e-9 ~bandwidth:nvlink_bw
                       h g);
                  ignore (duplex ~bandwidth:link_bw leaf g);
                  rev_gpus := g :: !rev_gpus;
                  g)
            in
            rev_gpus_of_host := gpus :: !rev_gpus_of_host;
            h))
    leaf_ids;
  let graph = Graph.Builder.finish b in
  let hosts = Array.of_list (List.rev !rev_hosts) in
  let gpus = Array.of_list (List.rev !rev_gpus) in
  let gpus_of_host = Array.of_list (List.rev !rev_gpus_of_host) in
  let leaf_of_host = Array.make (Graph.num_nodes graph) (-1) in
  let host_of_gpu = Array.make (Graph.num_nodes graph) (-1) in
  Array.iteri
    (fun li hs -> Array.iter (fun h -> leaf_of_host.(h) <- leaf_ids.(li)) hs)
    hosts_of_leaf;
  Array.iteri
    (fun hi gs -> Array.iter (fun g -> host_of_gpu.(g) <- hosts.(hi)) gs)
    gpus_of_host;
  {
    spines = spine_ids;
    leaves = leaf_ids;
    hosts;
    gpus;
    graph;
    hosts_per_leaf;
    gpus_per_host;
    leaf_of_host;
    host_of_gpu;
    hosts_of_leaf;
    gpus_of_host;
  }

let num_hosts t = Array.length t.hosts
let num_gpus t = Array.length t.gpus

let position arr v name =
  let pos = ref (-1) in
  Array.iteri (fun i x -> if x = v then pos := i) arr;
  if !pos < 0 then invalid_arg name;
  !pos

let leaf_index t leaf = position t.leaves leaf "Leaf_spine.leaf_index: not a leaf"
let host_index t host = position t.hosts host "Leaf_spine.host_index: not a host"

let spine_leaf_duplex_links t =
  let g = t.graph in
  Graph.duplex_ids g
  |> Array.to_list
  |> List.filter (fun id ->
         let l = Graph.link g id in
         let open Graph in
         let sk = (node g l.src).kind and dk = (node g l.dst).kind in
         (sk = Tor && dk = Spine) || (sk = Spine && dk = Tor))
  |> Array.of_list
