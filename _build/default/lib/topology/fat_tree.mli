(** k-ary fat-tree builder (Al-Fares et al. style).

    A [k]-ary fat-tree has [k] pods; each pod holds [k/2] ToR (edge)
    switches and [k/2] aggregation switches; there are [(k/2)^2] core
    switches.  Aggregation switch [a] of every pod connects to cores
    [a*(k/2) .. a*(k/2)+k/2-1].  Each ToR serves [hosts_per_tor] hosts
    (default [k/2]); each host carries [gpus_per_host] GPUs attached by
    NVLink-class links.

    The paper's evaluation uses an 8-ary fat-tree with 4 servers per ToR
    and 8 GPUs per server (1024 GPUs), 100 Gbps fabric links and
    900 GB/s NVLink. *)

type t = {
  k : int;
  hosts_per_tor : int;
  gpus_per_host : int;
  graph : Graph.t;
  pods : int;
  tors : int array;             (** all ToR node ids, pod-major order *)
  aggs : int array;             (** all aggregation switch ids *)
  cores : int array;
  hosts : int array;
  gpus : int array;
  tors_of_pod : int array array;
  aggs_of_pod : int array array;
  tor_of_host : int array;      (** indexed by node id *)
  host_of_gpu : int array;      (** indexed by node id *)
  hosts_of_tor : int array array; (** indexed by ToR position in [tors] *)
  gpus_of_host : int array array; (** indexed by host position in [hosts] *)
}

val create :
  ?hosts_per_tor:int ->
  ?gpus_per_host:int ->
  ?link_bw:float ->
  ?nvlink_bw:float ->
  ?link_latency:float ->
  k:int ->
  unit ->
  t
(** [create ~k ()] builds the fabric. [k] must be even and >= 2.
    Defaults: [hosts_per_tor = k/2], [gpus_per_host = 0],
    [link_bw = 12.5e9] B/s (100 Gbps), [nvlink_bw = 900e9] B/s,
    [link_latency = 500e-9] s. *)

val num_hosts : t -> int
val num_gpus : t -> int

val tor_index : t -> int -> int
(** Position of a ToR node id within [tors] (pod-major). *)

val host_index : t -> int -> int
(** Position of a host node id within [hosts]. *)

val fabric_duplex_links : t -> [ `Tor_up | `Agg_up | `All ] -> int array
(** Duplex link ids (even direction) for a tier: [`Tor_up] = ToR-to-Agg,
    [`Agg_up] = Agg-to-Core, [`All] = both. Host and GPU links are never
    included. *)
