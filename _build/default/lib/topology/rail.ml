type t = {
  rails : int;
  groups : int;
  servers_per_group : int;
  spines : int array;
  tors : int array;
  hosts : int array;
  gpus : int array;
  graph : Graph.t;
  tor_of_gpu : int array;
  host_of_gpu : int array;
  gpus_of_host : int array array;
}

let create ?(link_bw = 12.5e9) ?(nvlink_bw = 900e9) ?(link_latency = 500e-9)
    ~rails ~groups ~servers_per_group ~spines () =
  if rails < 1 || groups < 1 || servers_per_group < 1 || spines < 1 then
    invalid_arg "Rail.create: all counts must be >= 1";
  let b = Graph.Builder.create () in
  let duplex = Graph.Builder.add_duplex b ~latency:link_latency in
  (* Rail ToRs first so their ids (and global indices) are dense. *)
  let tors =
    Array.init (groups * rails) (fun i ->
        Graph.Builder.add_node b Tor ~pod:0 ~idx:i)
  in
  let spine_ids =
    Array.init spines (fun i -> Graph.Builder.add_node b Spine ~pod:(-1) ~idx:i)
  in
  Array.iter
    (fun tor -> Array.iter (fun sp -> ignore (duplex ~bandwidth:link_bw tor sp)) spine_ids)
    tors;
  let rev_hosts = ref [] and rev_gpus = ref [] and rev_gpus_of_host = ref [] in
  for g = 0 to groups - 1 do
    for s = 0 to servers_per_group - 1 do
      let host = Graph.Builder.add_node b Host ~pod:0 ~idx:s in
      rev_hosts := host :: !rev_hosts;
      let gpus_here =
        Array.init rails (fun r ->
            let gpu = Graph.Builder.add_node b Gpu ~pod:0 ~idx:r in
            (* NVLink to the server's NVSwitch + the rail NIC. *)
            ignore (Graph.Builder.add_duplex b ~latency:100e-9 ~bandwidth:nvlink_bw host gpu);
            ignore (duplex ~bandwidth:link_bw tors.((g * rails) + r) gpu);
            rev_gpus := gpu :: !rev_gpus;
            gpu)
      in
      rev_gpus_of_host := gpus_here :: !rev_gpus_of_host
    done
  done;
  let graph = Graph.Builder.finish b in
  let hosts = Array.of_list (List.rev !rev_hosts) in
  let gpus = Array.of_list (List.rev !rev_gpus) in
  let gpus_of_host = Array.of_list (List.rev !rev_gpus_of_host) in
  let tor_of_gpu = Array.make (Graph.num_nodes graph) (-1) in
  let host_of_gpu = Array.make (Graph.num_nodes graph) (-1) in
  Array.iteri
    (fun hi ghost ->
      let group = hi / servers_per_group in
      Array.iteri
        (fun r gpu ->
          tor_of_gpu.(gpu) <- tors.((group * rails) + r);
          host_of_gpu.(gpu) <- hosts.(hi))
        ghost)
    gpus_of_host;
  {
    rails;
    groups;
    servers_per_group;
    spines = spine_ids;
    tors;
    hosts;
    gpus;
    graph;
    tor_of_gpu;
    host_of_gpu;
    gpus_of_host;
  }

let num_gpus t = Array.length t.gpus

let spine_tor_duplex_links t =
  let g = t.graph in
  Graph.duplex_ids g
  |> Array.to_list
  |> List.filter (fun id ->
         let l = Graph.link g id in
         let open Graph in
         let sk = (node g l.src).kind and dk = (node g l.dst).kind in
         (sk = Tor && dk = Spine) || (sk = Spine && dk = Tor))
  |> Array.of_list
