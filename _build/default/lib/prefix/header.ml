module Bits = Peel_util.Bits

let id_bits ~k =
  if k < 4 || k mod 2 <> 0 || not (Bits.is_power_of_two (k / 2)) then
    invalid_arg "Header.id_bits: k/2 must be a power of two, k >= 4";
  Bits.ilog2 (k / 2)

(* Bits needed to express lengths 0..m, i.e. m+1 distinct values. *)
let len_bits m = Bits.ceil_log2 (m + 1)

let header_bits ~k =
  let m = id_bits ~k in
  m + len_bits m

let header_bytes ~k = Bits.ceil_div (header_bits ~k) 8

type t = { prefix : Cover.prefix; raw : int }

let encode ~m p =
  Cover.validate ~m p;
  (* Pack: [len] in the high field, value left-aligned in an m-bit
     field (low bits zero for short prefixes). *)
  let value_field = p.Cover.value lsl (m - p.Cover.len) in
  { prefix = p; raw = (p.Cover.len lsl m) lor value_field }

let decode ~m raw =
  if raw < 0 then invalid_arg "Header.decode: negative";
  let len = raw lsr m in
  let value_field = raw land (Bits.pow2 m - 1) in
  if len > m then invalid_arg "Header.decode: length exceeds id bits";
  let value = value_field lsr (m - len) in
  (* Reject stray bits below the prefix. *)
  if value lsl (m - len) <> value_field then
    invalid_arg "Header.decode: nonzero padding bits";
  let p = { Cover.value; len } in
  Cover.validate ~m p;
  p
