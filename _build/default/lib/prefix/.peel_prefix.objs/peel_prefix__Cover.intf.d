lib/prefix/cover.mli:
