lib/prefix/cover.ml: Array Hashtbl List Peel_util String
