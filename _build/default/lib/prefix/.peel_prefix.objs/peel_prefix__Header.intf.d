lib/prefix/header.mli: Cover
