lib/prefix/header.ml: Cover Peel_util
