lib/prefix/rules.mli: Cover Header
