lib/prefix/rules.ml: Cover Hashtbl Header List Peel_util
