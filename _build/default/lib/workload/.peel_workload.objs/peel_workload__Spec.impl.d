lib/workload/spec.ml: Array Fabric Fat_tree Leaf_spine List Peel_topology Peel_util Rail
