lib/workload/spec.mli: Fabric Peel_topology Peel_util
