(** E2 — Figure 3: RSBF Bloom-filter per-packet header overhead versus
    fat-tree degree [k], for false-positive ratios 1-20%.

    The paper's claim: the header exceeds a full 1500 B MTU once the
    degree passes the low tens regardless of FPR, while PEEL's prefix
    header stays under 8 B. *)

type row = {
  k : int;
  by_fpr : (float * float) list;  (** (fpr, header bytes) *)
  peel_bytes : int;
}

val compute : unit -> row list
val run : Common.mode -> unit
