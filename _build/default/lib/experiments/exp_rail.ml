open Peel_topology
open Peel_workload
module Rng = Peel_util.Rng
module Scheme = Peel_collective.Scheme

type row = {
  scheme : Scheme.t;
  mean : float;
  p99 : float;
}

(* 8 rails x 8 groups x 16 servers = 1024 GPUs, like the Fig. 5 scale. *)
let fabric () = Fabric.rail ~rails:8 ~groups:8 ~servers_per_group:16 ~spines:16 ()

let compute mode =
  let f = fabric () in
  let n = Common.trials mode ~full:40 in
  let cs =
    Spec.poisson_broadcasts f (Rng.create 1500) ~n ~scale:128
      ~bytes:(Common.mb 64.) ~load:0.3 ()
  in
  List.map
    (fun scheme ->
      let s = Common.summarize_run f scheme cs in
      { scheme; mean = s.Peel_util.Stats.mean; p99 = s.Peel_util.Stats.p99 })
    Scheme.all

let run mode =
  Common.banner "E15 (ext): rail-optimized fabric (§2.1 future work)";
  let f = fabric () in
  Common.note (Fabric.describe f);
  Common.note
    (Printf.sprintf "128-GPU 64 MB Broadcasts at 30%% load; PEEL state: %d rules, %d B header"
       (Peel.switch_rules f) (Peel.header_bytes f));
  let rows = compute mode in
  Peel_util.Table.print
    ~header:[ "scheme"; "mean CCT"; "p99 CCT" ]
    (List.map
       (fun r ->
         [ Scheme.to_string r.scheme; Common.fsec r.mean; Common.fsec r.p99 ])
       rows);
  Common.note "the flat rail-ToR id space drops into the same k-1-rule prefix machinery"
