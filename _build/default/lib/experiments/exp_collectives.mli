(** E11 (extension) — PEEL inside larger collectives.

    The paper's take-away is multicast as "a first-class primitive";
    this experiment measures what that buys the collectives training
    actually runs: allgather, reduce, and allreduce, comparing
    ring-based algorithms against PEEL-based compositions across
    message sizes on a one-GPU-per-server fabric (every hop on the
    fabric). *)

type row = {
  op : string;
  algo : string;
  size_mb : float;
  mean : float;
  p99 : float;
}

val compute : Common.mode -> row list
val run : Common.mode -> unit
