open Peel_workload
module Rng = Peel_util.Rng

type row = {
  size_mb : float;
  mean_with : float;
  mean_without : float;
  p99_with : float;
  p99_without : float;
}

let sizes mode =
  match mode with
  | Common.Full -> [ 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512. ]
  | Common.Quick -> [ 2.; 32.; 512. ]

let compute mode =
  let fabric = Common.fig5_fabric () in
  let n = Common.trials mode ~full:60 in
  List.map
    (fun size_mb ->
      let workload seed =
        Spec.poisson_broadcasts fabric (Rng.create seed) ~n ~scale:64
          ~bytes:(Common.mb size_mb) ~load:0.3 ()
      in
      let with_ctl =
        Common.summarize_run fabric Peel_collective.Scheme.Orca (workload 100)
      in
      let without =
        Common.summarize_run ~controller:false fabric
          Peel_collective.Scheme.Orca (workload 100)
      in
      {
        size_mb;
        mean_with = with_ctl.Peel_util.Stats.mean;
        mean_without = without.Peel_util.Stats.mean;
        p99_with = with_ctl.Peel_util.Stats.p99;
        p99_without = without.Peel_util.Stats.p99;
      })
    (sizes mode)

let run mode =
  Common.banner "E3 / Figure 4: Orca controller-overhead CCT inflation";
  Common.note "8-ary fat-tree, 1024 GPUs; 64-GPU Broadcasts at 30% load";
  let rows = compute mode in
  Peel_util.Table.print
    ~header:
      [ "msg size"; "mean CCT (ctl)"; "mean CCT (no ctl)"; "p99 (ctl)";
        "p99 (no ctl)"; "p99 inflation" ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%.0f MB" r.size_mb;
           Common.fsec r.mean_with;
           Common.fsec r.mean_without;
           Common.fsec r.p99_with;
           Common.fsec r.p99_without;
           Peel_util.Table.ffactor (r.p99_with /. r.p99_without);
         ])
       rows);
  Common.note "paper: p99 CCT of a 32 MB Broadcast rises ~8x with the controller"
