(** E6 — Figure 7: robustness to failures in an asymmetric leaf-spine.

    16 spines x 48 leaves, 2 servers/leaf, 8 GPUs/server; Poisson
    streams of 64-GPU Broadcasts of 8 MB run while 1-10% of spine-leaf
    links are failed uniformly at random (fresh draw per stream), so
    lost capacity surfaces as queueing.

    The paper's claims: PEEL's greedy trees stay fastest across the
    whole failure range; at 10% failures PEEL's p99 is ~3x lower than
    Ring and ~30x lower than Tree. *)

type row = {
  failure_pct : int;
  scheme : Peel_collective.Scheme.t;
  mean : float;
  p99 : float;
}

val compute : Common.mode -> int list -> row list
val run : Common.mode -> unit
