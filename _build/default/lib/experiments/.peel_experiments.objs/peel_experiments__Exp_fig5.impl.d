lib/experiments/exp_fig5.ml: Common List Peel_collective Peel_util Peel_workload Printf Spec
