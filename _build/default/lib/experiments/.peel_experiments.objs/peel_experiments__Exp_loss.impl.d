lib/experiments/exp_loss.ml: Common List Peel_collective Peel_sim Peel_util Peel_workload Printf Runner Scheme Spec
