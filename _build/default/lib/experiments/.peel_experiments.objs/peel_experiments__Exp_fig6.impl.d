lib/experiments/exp_fig6.ml: Common List Peel_collective Peel_util Peel_workload Printf Spec
