lib/experiments/exp_state.ml: Common Header List Peel_prefix Peel_util Printf Rules
