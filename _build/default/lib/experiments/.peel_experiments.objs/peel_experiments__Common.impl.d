lib/experiments/common.ml: Fabric Peel_collective Peel_topology Peel_util Printf
