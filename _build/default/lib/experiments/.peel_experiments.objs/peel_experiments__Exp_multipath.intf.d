lib/experiments/exp_multipath.mli: Common
