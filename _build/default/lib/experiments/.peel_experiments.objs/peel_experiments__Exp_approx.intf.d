lib/experiments/exp_approx.mli: Common
