lib/experiments/exp_fig3.ml: Common List Peel_baselines Peel_prefix Peel_util Printf Rsbf
