lib/experiments/exp_tenancy.mli: Common
