lib/experiments/exp_state.mli: Common
