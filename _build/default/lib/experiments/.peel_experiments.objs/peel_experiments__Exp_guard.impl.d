lib/experiments/exp_guard.ml: Common Peel_collective Peel_sim Peel_util Peel_workload Spec
