lib/experiments/exp_rail.mli: Common Peel_collective
