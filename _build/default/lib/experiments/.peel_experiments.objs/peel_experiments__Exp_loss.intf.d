lib/experiments/exp_loss.mli: Common
