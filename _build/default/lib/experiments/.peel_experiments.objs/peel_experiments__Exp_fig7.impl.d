lib/experiments/exp_fig7.ml: Common Fabric Graph List Peel_collective Peel_topology Peel_util Peel_workload Printf Spec
