lib/experiments/exp_frag.ml: Common List Peel Peel_collective Peel_util Peel_workload Printf Spec
