lib/experiments/exp_multipath.ml: Common List Option Peel_collective Peel_sim Peel_util Peel_workload Printf Runner Scheme Spec
