lib/experiments/exp_collectives.ml: Allgather Allreduce Common Fabric List Peel_collective Peel_topology Peel_util Peel_workload Printf Reduce Spec
