lib/experiments/exp_guard.mli: Common
