lib/experiments/exp_frag.mli: Common
