lib/experiments/exp_fig4.ml: Common List Peel_collective Peel_util Peel_workload Printf Spec
