lib/experiments/exp_rail.ml: Common Fabric List Peel Peel_collective Peel_topology Peel_util Peel_workload Printf Spec
