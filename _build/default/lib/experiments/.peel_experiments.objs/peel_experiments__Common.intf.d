lib/experiments/common.mli: Fabric Peel_collective Peel_topology Peel_util Peel_workload
