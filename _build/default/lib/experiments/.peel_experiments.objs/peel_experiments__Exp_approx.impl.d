lib/experiments/exp_approx.ml: Array Common Exact Fabric Float Graph Layer_peel List Peel Peel_baselines Peel_steiner Peel_topology Peel_util Printf Tree
