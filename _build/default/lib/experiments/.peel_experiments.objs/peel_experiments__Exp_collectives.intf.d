lib/experiments/exp_collectives.mli: Common
