lib/experiments/exp_tenancy.ml: Array Common Fabric Graph List Peel Peel_steiner Peel_topology Peel_util Peel_workload Spec
