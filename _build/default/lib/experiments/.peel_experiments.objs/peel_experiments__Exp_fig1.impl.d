lib/experiments/exp_fig1.ml: Array Binary_tree Common Fabric List Peel_baselines Peel_steiner Peel_topology Peel_util Printf Ring Traffic
