(** E7 — switch state and header accounting (paper §1, §3.2).

    The headline numbers: a 64-ary fat-tree (65,536 hosts) needs just
    63 static TCAM rules per aggregation switch instead of the ~4x10^9
    entries naive IP multicast would require, and the PEEL header stays
    under 8 B even at k = 128. *)

type row = {
  k : int;
  hosts : int;
  peel_rules : int;
  naive_entries : float;
  reduction : float;
  header_bytes : int;
}

val compute : unit -> row list
val run : Common.mode -> unit
