(** E10 — resource fragmentation (paper §3.4 open question).

    As job placement becomes less compact, prefix ranges fragment: the
    exact cover needs more packets (more copies up the funnel), while a
    budgeted cover bounds the packet count by over-covering racks that
    then discard the traffic.  This ablation quantifies both sides of
    the trade-off and its CCT impact. *)

type row = {
  fragmentation : float;
  mean_packets_exact : float;
  mean_packets_budget : float;
  mean_waste_budget : float;     (** over-covered racks per collective *)
  peel_mean_cct : float;
  optimal_mean_cct : float;
}

val budget : int
val compute : Common.mode -> row list
val run : Common.mode -> unit
