(** E12 (extension) — the §2.3 open question: multicast vs multipath.

    A single Steiner tree funnels a collective onto one set of links; a
    load balancer wants bytes striped across many.  This ablation
    measures (a) striping chunks over N edge-diverse layer-peeling
    trees, and (b) the NCCL double binary tree, against single-tree
    PEEL and the unicast baselines under load — plus the effect of the
    chunk count the paper fixes at 8. *)

type row = {
  label : string;
  mean : float;
  p99 : float;
  max_link_utilization : float;
}

val compute_striping : Common.mode -> row list
val compute_chunks : Common.mode -> (int * float * float) list
(** [(chunks, mean, p99)] for PEEL broadcast. *)

val run : Common.mode -> unit
