open Peel_workload
module Rng = Peel_util.Rng

type result = {
  mean_guard : float;
  mean_no_guard : float;
  p99_guard : float;
  p99_no_guard : float;
}

let compute mode =
  let fabric = Common.fig5_fabric () in
  let n = Common.trials mode ~full:40 in
  (* Enough offered load that queues build and chunks get marked. *)
  let cs =
    Spec.poisson_broadcasts fabric (Rng.create 300) ~n ~scale:64
      ~bytes:(Common.mb 32.) ~load:0.6 ()
  in
  let run guard =
    Common.summarize_run
      ~cc:(Peel_collective.Broadcast.Dcqcn { guard; ecn_delay = 10e-6 })
      fabric Peel_collective.Scheme.Peel cs
  in
  let g = run (Some Peel_sim.Dcqcn.default_guard) in
  let ng = run None in
  {
    mean_guard = g.Peel_util.Stats.mean;
    mean_no_guard = ng.Peel_util.Stats.mean;
    p99_guard = g.Peel_util.Stats.p99;
    p99_no_guard = ng.Peel_util.Stats.p99;
  }

let run mode =
  Common.banner "E8: DCQCN multicast guard timer (64-GPU, 32 MB, 60% load)";
  let r = compute mode in
  Peel_util.Table.print
    ~header:[ "variant"; "mean CCT"; "p99 CCT" ]
    [
      [ "guard timer (50 us)"; Common.fsec r.mean_guard; Common.fsec r.p99_guard ];
      [ "per-CNP reaction"; Common.fsec r.mean_no_guard; Common.fsec r.p99_no_guard ];
      [
        "improvement";
        Peel_util.Table.ffactor (r.mean_no_guard /. r.mean_guard);
        Peel_util.Table.ffactor (r.p99_no_guard /. r.p99_guard);
      ];
    ];
  Common.note "paper: the guard timer slashes p99 CCT by ~12x"
