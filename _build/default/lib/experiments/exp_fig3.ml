open Peel_baselines

type row = {
  k : int;
  by_fpr : (float * float) list;
  peel_bytes : int;
}

let fprs = [ 0.01; 0.05; 0.10; 0.15; 0.20 ]
let ks = [ 4; 8; 16; 32; 64 ]

let compute () =
  List.map
    (fun k ->
      {
        k;
        by_fpr = List.map (fun fpr -> (fpr, Rsbf.header_bytes ~k ~fpr)) fprs;
        peel_bytes = Peel_prefix.Header.header_bytes ~k;
      })
    ks

let run _mode =
  Common.banner "E2 / Figure 3: RSBF Bloom-filter header size vs fat-tree degree";
  Common.note "fabric-wide broadcast group; MTU = 1500 B; PEEL column for contrast";
  let rows = compute () in
  let header =
    "k"
    :: List.map (fun fpr -> Printf.sprintf "FPR=%.0f%%" (fpr *. 100.0)) fprs
    @ [ "PEEL header" ]
  in
  Peel_util.Table.print ~header
    (List.map
       (fun r ->
         string_of_int r.k
         :: List.map
              (fun (_, bytes) ->
                if bytes > 1500.0 then Printf.sprintf "%.0f B (>MTU)" bytes
                else Printf.sprintf "%.0f B" bytes)
              r.by_fpr
         @ [ Printf.sprintf "%d B" r.peel_bytes ])
       rows);
  Common.note "paper: RSBF exceeds one MTU once k > 32 even at 20% FPR"
