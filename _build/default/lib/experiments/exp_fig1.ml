open Peel_topology
open Peel_baselines

type row = {
  scheme : string;
  fabric_links : int;
  core_links : int;
  overshoot_pct : float;
}

let compute () =
  let f = Common.fig1_fabric () in
  let g = Fabric.graph f in
  let hosts = Array.to_list (Fabric.hosts f) in
  let source = List.hd hosts in
  let dests = List.tl hosts in
  let ring = Ring.schedule f ~source ~members:hosts in
  let tree = Binary_tree.schedule f ~source ~members:hosts in
  let opt = Peel_steiner.Symmetric.build f ~source ~dests in
  let measure name loads =
    (name, Traffic.total g loads, Traffic.core_load g loads)
  in
  let rows =
    [
      measure "ring" (Traffic.link_loads g ring.Ring.hops);
      measure "tree" (Traffic.link_loads g tree.Binary_tree.edges);
      measure "optimal" (Traffic.tree_loads g opt);
    ]
  in
  let opt_total =
    match List.rev rows with (_, t, _) :: _ -> t | [] -> assert false
  in
  List.map
    (fun (scheme, fabric_links, core_links) ->
      {
        scheme;
        fabric_links;
        core_links;
        overshoot_pct =
          100.0 *. Traffic.overshoot ~baseline:fabric_links ~optimal:opt_total;
      })
    rows

let run _mode =
  Common.banner "E1 / Figure 1: Broadcast bandwidth, Ring vs Tree vs Optimal";
  Common.note "2 spines x 2 leaves x 4 hosts, broadcast from host 0";
  let rows = compute () in
  Peel_util.Table.print
    ~header:[ "scheme"; "fabric link traversals"; "core traversals"; "overshoot vs optimal" ]
    (List.map
       (fun r ->
         [
           r.scheme;
           string_of_int r.fabric_links;
           string_of_int r.core_links;
           Printf.sprintf "%+.0f%%" r.overshoot_pct;
         ])
       rows);
  Common.note "paper: rings/trees overshoot the optimum by 70-80% on core links"
