(** E3 — Figure 4: Orca's SDN flow-setup delay inflates collective
    completion time.

    A 1024-GPU 8-ary fat-tree runs 64-GPU Broadcasts of 2-512 MB under
    Orca, with the controller's N(10 ms, 5 ms) flow-setup delay either
    modelled or zeroed.  The paper's claim: the p99 CCT of a 32 MB
    Broadcast rises ~8x with controller overhead. *)

type row = {
  size_mb : float;
  mean_with : float;
  mean_without : float;
  p99_with : float;
  p99_without : float;
}

val compute : Common.mode -> row list
val run : Common.mode -> unit
