open Peel_workload
module Rng = Peel_util.Rng

type row = {
  fragmentation : float;
  mean_packets_exact : float;
  mean_packets_budget : float;
  mean_waste_budget : float;
  peel_mean_cct : float;
  optimal_mean_cct : float;
}

let budget = 1

let compute mode =
  let fabric = Common.fig5_fabric () in
  let n = Common.trials mode ~full:30 in
  List.map
    (fun fragmentation ->
      let cs =
        Spec.poisson_broadcasts fabric (Rng.create 500) ~n ~scale:128
          ~bytes:(Common.mb 32.) ~load:0.3 ~fragmentation ()
      in
      let plan_stats =
        List.map
          (fun (c : Spec.collective) ->
            let exact = Peel.Plan.build fabric ~source:c.source ~dests:c.dests in
            let budgeted =
              Peel.Plan.build ~budget fabric ~source:c.source ~dests:c.dests
            in
            ( float_of_int (Peel.Plan.num_packets exact),
              float_of_int (Peel.Plan.num_packets budgeted),
              float_of_int (Peel.Plan.waste_tor_count budgeted) ))
          cs
      in
      let avg f = Peel_util.Stats.mean (List.map f plan_stats) in
      let peel = Common.summarize_run fabric Peel_collective.Scheme.Peel cs in
      let opt = Common.summarize_run fabric Peel_collective.Scheme.Optimal cs in
      {
        fragmentation;
        mean_packets_exact = avg (fun (a, _, _) -> a);
        mean_packets_budget = avg (fun (_, b, _) -> b);
        mean_waste_budget = avg (fun (_, _, w) -> w);
        peel_mean_cct = peel.Peel_util.Stats.mean;
        optimal_mean_cct = opt.Peel_util.Stats.mean;
      })
    [ 0.0; 0.2; 0.4; 0.8 ]

let run mode =
  Common.banner "E10: placement fragmentation vs prefix aggregation (§3.4)";
  Common.note
    (Printf.sprintf "128-GPU 32 MB Broadcasts; budgeted covers capped at %d prefixes/group"
       budget);
  let rows = compute mode in
  Peel_util.Table.print
    ~header:
      [ "fragmentation"; "packets (exact)"; "packets (budget)";
        "wasted racks (budget)"; "PEEL mean CCT"; "optimal mean CCT" ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%.1f" r.fragmentation;
           Common.f2 r.mean_packets_exact;
           Common.f2 r.mean_packets_budget;
           Common.f2 r.mean_waste_budget;
           Common.fsec r.peel_mean_cct;
           Common.fsec r.optimal_mean_cct;
         ])
       rows);
  Common.note "fragmentation multiplies exact-cover packets; budgets trade them for redundant rack deliveries"
