(** E4 — Figure 5: mean and p99 CCT versus message size for all six
    schemes (512-GPU Broadcasts on the 1024-GPU fat-tree, Poisson
    arrivals at 30% offered load).

    The paper's claims: PEEL tracks the bandwidth-optimal baseline
    (mean within ~20-25%), beats Ring/Tree/Orca throughout, and
    programmable cores close most of the remaining gap at large
    messages (tail within 1.4% of optimal at 512 MB). *)

type row = {
  size_mb : float;
  scheme : Peel_collective.Scheme.t;
  mean : float;
  p99 : float;
}

val compute :
  ?scales:int -> ?load:float -> Common.mode -> float list -> row list
(** [compute mode sizes_mb]; [scales] defaults to 512. *)

val run : Common.mode -> unit
