(** E14 (extension) — multi-tenant switch state (the §1/§3 motivation:
    "thousands of concurrent training jobs can spawn thousands of
    multicast groups, quickly overflowing switch TCAMs").

    Draws G concurrent jobs with bin-packed placements on the Fig. 5
    fat-tree and counts the worst-case per-switch TCAM load under naive
    per-group IP multicast (one entry per group per switch its tree
    uses) versus PEEL's fixed [k - 1] static rules.  A commodity switch
    holds a few thousand multicast entries. *)

type row = {
  groups : int;
  ipmc_max_entries : int;  (** busiest switch, per-group entries *)
  peel_entries : int;      (** constant *)
  overflows_4k : bool;     (** busiest switch exceeds a 4K TCAM *)
}

val compute : Common.mode -> row list
val run : Common.mode -> unit
