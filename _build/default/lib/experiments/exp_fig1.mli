(** E1 — Figure 1: bandwidth consumption of unicast Ring/Tree Broadcast
    versus the multicast optimum on the intro's two-tier leaf-spine.

    The paper's claim: logical rings and trees traverse the core links
    up to 80% more often than the optimal multicast tree. *)

type row = {
  scheme : string;
  fabric_links : int;   (** total directed fabric-link traversals *)
  core_links : int;     (** traversals touching a spine *)
  overshoot_pct : float; (** vs the optimal tree, percent *)
}

val compute : unit -> row list
val run : Common.mode -> unit
