(** E8 — the sender-side guard timer (paper §4, congestion control).

    Multicast turns one ECN mark into a CNP per receiver; reacting to
    every CNP collapses the sender's rate.  The paper replaces the
    receiver-side limiter with a 50 us sender-side guard timer and
    reports a 12x lower p99 CCT for a 64-GPU Broadcast of 32 MB. *)

type result = {
  mean_guard : float;
  mean_no_guard : float;
  p99_guard : float;
  p99_no_guard : float;
}

val compute : Common.mode -> result
val run : Common.mode -> unit
