(** E15 (extension) — PEEL on a rail-optimized fabric (paper §2.1
    future work, Alibaba-HPN-style).

    GPU [r] of every server attaches to a rail-[r] ToR; the prefix
    engine addresses rail ToRs as one flat pod, so PEEL works
    unchanged.  This experiment compares schemes on rails and reports
    the static state PEEL needs there. *)

type row = {
  scheme : Peel_collective.Scheme.t;
  mean : float;
  p99 : float;
}

val compute : Common.mode -> row list
val run : Common.mode -> unit
