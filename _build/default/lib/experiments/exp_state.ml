open Peel_prefix

type row = {
  k : int;
  hosts : int;
  peel_rules : int;
  naive_entries : float;
  reduction : float;
  header_bytes : int;
}

let compute () =
  List.map
    (fun k ->
      {
        k;
        hosts = k * k * k / 4;
        peel_rules = Rules.peel_entries ~k;
        naive_entries = Rules.naive_ipmc_entries ~k;
        reduction = Rules.state_reduction_factor ~k;
        header_bytes = Header.header_bytes ~k;
      })
    [ 4; 8; 16; 32; 64; 128 ]

let run _mode =
  Common.banner "E7: switch state and header size vs fat-tree degree";
  let rows = compute () in
  Peel_util.Table.print
    ~header:[ "k"; "hosts"; "PEEL rules"; "naive IPMC entries"; "reduction"; "header" ]
    (List.map
       (fun r ->
         [
           string_of_int r.k;
           string_of_int r.hosts;
           string_of_int r.peel_rules;
           Printf.sprintf "%.2e" r.naive_entries;
           Printf.sprintf "%.1e x" r.reduction;
           Printf.sprintf "%d B" r.header_bytes;
         ])
       rows);
  Common.note "paper: 63 rules instead of >4e9 at k=64; header <8 B up to k=128"
