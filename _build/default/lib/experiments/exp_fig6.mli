(** E5 — Figure 6: mean and p99 CCT versus Broadcast scale (32-1024
    GPUs) at a fixed 64 MB message size.

    The paper's claims: PEEL surpasses Ring, Tree and Orca across the
    whole range while staying closest to optimal; at 256 GPUs PEEL's
    mean CCT is ~5x lower than Ring, ~13x lower than Tree, ~2.5x lower
    than Orca. *)

type row = {
  scale : int;
  scheme : Peel_collective.Scheme.t;
  mean : float;
  p99 : float;
}

val compute : Common.mode -> int list -> row list
val run : Common.mode -> unit
