(** E13 (extension) — loss recovery (the reliability engineering the
    paper defers to future work but inherits from RDMA).

    Sweeps per-link chunk-loss rates and measures CCT inflation and the
    repair traffic for PEEL (end-to-end source retransmissions to the
    orphaned receivers) versus Ring (per-hop selective repeat). *)

type row = {
  loss_rate : float;
  scheme : string;
  mean : float;
  p99 : float;
  retransmissions_per_collective : float;
}

val compute : Common.mode -> row list
val run : Common.mode -> unit
