open Peel_topology
open Peel_steiner
module Rng = Peel_util.Rng

type cost_row = {
  failure_pct : int;
  trials : int;
  mean_ratio : float;
  max_ratio : float;
  optimal_rate : float;
}

let compute_cost mode =
  let trials = Common.trials mode ~full:200 in
  List.map
    (fun failure_pct ->
      let rng = Rng.create (7000 + failure_pct) in
      let ratios =
        List.init trials (fun _ ->
            let f = Fabric.leaf_spine ~spines:3 ~leaves:6 ~hosts_per_leaf:2 () in
            let g = Fabric.graph f in
            let _ =
              Fabric.fail_random f ~rng ~tier:`All
                ~fraction:(float_of_int failure_pct /. 100.0)
                ()
            in
            let hosts = Fabric.hosts f in
            let n = Array.length hosts in
            let source = hosts.(Rng.int rng n) in
            let dests =
              Rng.sample_without_replacement rng n 6
              |> List.map (fun i -> hosts.(i))
              |> List.filter (fun d -> d <> source)
            in
            let greedy =
              match Layer_peel.build g ~source ~dests with
              | Some t -> Tree.cost t
              | None -> assert false
            in
            let exact =
              match Exact.steiner_cost g ~terminals:(source :: dests) with
              | Some c -> c
              | None -> assert false
            in
            float_of_int greedy /. float_of_int exact)
      in
      let mean_ratio = Peel_util.Stats.mean ratios in
      let max_ratio = List.fold_left Float.max 1.0 ratios in
      let optimal_rate =
        float_of_int (List.length (List.filter (fun r -> r <= 1.0) ratios))
        /. float_of_int trials
      in
      { failure_pct; trials; mean_ratio; max_ratio; optimal_rate })
    [ 0; 5; 10; 20 ]

type bandwidth = {
  ring_traversals : int;
  peel_traversals : int;
  savings_pct : float;
}

let compute_bandwidth () =
  let f = Common.fig5_fabric () in
  let g = Fabric.graph f in
  let eps = Fabric.endpoints f in
  let members = List.init 512 (fun i -> eps.(i)) in
  let source = List.hd members in
  let dests = List.tl members in
  let ring = Peel_baselines.Ring.schedule f ~source ~members in
  let ring_loads =
    Peel_baselines.Traffic.link_loads g ring.Peel_baselines.Ring.hops
  in
  let plan = Peel.Plan.build f ~source ~dests in
  let peel_loads = Array.make (Graph.num_links g) 0 in
  List.iter
    (fun packet ->
      match Peel.Plan.packet_tree f ~source packet with
      | None -> ()
      | Some tree ->
          List.iter
            (fun lid -> peel_loads.(lid) <- peel_loads.(lid) + 1)
            (Tree.link_ids tree))
    plan.Peel.Plan.packets;
  let ring_traversals = Peel_baselines.Traffic.total g ring_loads in
  let peel_traversals = Peel_baselines.Traffic.total g peel_loads in
  {
    ring_traversals;
    peel_traversals;
    savings_pct =
      100.0
      *. (1.0 -. (float_of_int peel_traversals /. float_of_int ring_traversals));
  }

let run mode =
  Common.banner "E9: greedy tree quality and aggregate bandwidth";
  Common.note "greedy vs exact Steiner on random asymmetric leaf-spines (6 dests):";
  let rows = compute_cost mode in
  Peel_util.Table.print
    ~header:[ "failures"; "trials"; "mean cost ratio"; "max"; "greedy = optimal" ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%d%%" r.failure_pct;
           string_of_int r.trials;
           Printf.sprintf "%.3f" r.mean_ratio;
           Printf.sprintf "%.2f" r.max_ratio;
           Printf.sprintf "%.0f%%" (100.0 *. r.optimal_rate);
         ])
       rows);
  let bw = compute_bandwidth () in
  Common.note
    (Printf.sprintf
       "512-GPU Broadcast fabric traversals: ring %d, PEEL %d -> PEEL saves %.0f%% (paper: 23%%)"
       bw.ring_traversals bw.peel_traversals bw.savings_pct)
