(** E9 — approximation quality of the layer-peeling greedy (§2.3) and
    aggregate bandwidth versus unicast rings (§1).

    Two parts:
    - tree cost: on small asymmetric leaf-spines, compare the greedy
      tree's link count with the exact (Dreyfus-Wagner) Steiner
      optimum across random failure draws;
    - aggregate bytes: on the evaluation fat-tree, compare a 512-GPU
      Broadcast's total fabric-link traversals under PEEL versus a
      unicast ring (paper: PEEL uses ~23% less aggregate bandwidth). *)

type cost_row = {
  failure_pct : int;
  trials : int;
  mean_ratio : float;    (** greedy cost / exact optimum *)
  max_ratio : float;
  optimal_rate : float;  (** fraction of trials where greedy = optimum *)
}

val compute_cost : Common.mode -> cost_row list

type bandwidth = {
  ring_traversals : int;
  peel_traversals : int;
  savings_pct : float;
}

val compute_bandwidth : unit -> bandwidth

val run : Common.mode -> unit
