type t =
  | Ring
  | Btree
  | Dbtree
  | Optimal
  | Orca
  | Peel
  | Peel_prog_cores
  | Peel_multitree of int

let all = [ Ring; Btree; Optimal; Orca; Peel; Peel_prog_cores ]

let extended = all @ [ Dbtree; Peel_multitree 4 ]

let to_string = function
  | Ring -> "ring"
  | Btree -> "tree"
  | Dbtree -> "dbtree"
  | Optimal -> "optimal"
  | Orca -> "orca"
  | Peel -> "peel"
  | Peel_prog_cores -> "peel+cores"
  | Peel_multitree n -> Printf.sprintf "peel-mt%d" n

let of_string s =
  match s with
  | "ring" -> Some Ring
  | "tree" | "btree" -> Some Btree
  | "dbtree" -> Some Dbtree
  | "optimal" -> Some Optimal
  | "orca" -> Some Orca
  | "peel" -> Some Peel
  | "peel+cores" | "peel-prog" | "peel_prog_cores" -> Some Peel_prog_cores
  | _ ->
      if String.length s > 7 && String.sub s 0 7 = "peel-mt" then
        match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
        | Some n when n >= 1 -> Some (Peel_multitree n)
        | _ -> None
      else None
