open Peel_sim
open Peel_workload

type algo = Ring_exchange | Peel_multicast

let algo_to_string = function
  | Ring_exchange -> "ring"
  | Peel_multicast -> "peel"

let launch engine links fabric paths _cfg algo ~(spec : Spec.collective)
    ~on_complete =
  let members = Array.of_list spec.members in
  let n = Array.length members in
  if n < 2 then invalid_arg "Allgather.launch: need at least two members";
  let shard = spec.bytes /. float_of_int n in
  (* Everyone must receive the n-1 shards they do not own. *)
  let remaining = ref (n * (n - 1)) in
  let last = ref spec.arrival in
  let record time =
    remaining := !remaining - 1;
    if time > !last then last := time;
    if !remaining = 0 then on_complete (!last -. spec.arrival)
  in
  match algo with
  | Ring_exchange ->
      let hop_links =
        Array.init n (fun i -> Paths.links paths members.(i) members.((i + 1) mod n))
      in
      (* Shard owned by position o visits positions o+1 .. o+n-1. *)
      let rec pass o hops_left pos t =
        if hops_left > 0 then
          Transfer.unicast engine links ~links:hop_links.(pos) ~bytes:shard
            ~start:t
            ~on_delivered:(fun t' ->
              record t';
              pass o (hops_left - 1) ((pos + 1) mod n) t')
            ()
      in
      for o = 0 to n - 1 do
        pass o (n - 1) o spec.arrival
      done
  | Peel_multicast ->
      (* Each member multicasts its shard over its own prefix plan. *)
      Array.iter
        (fun owner ->
          let dests = List.filter (fun m -> m <> owner) spec.members in
          let plan = Peel.Plan.build fabric ~source:owner ~dests in
          let trees =
            List.filter_map
              (fun packet -> Peel.Plan.packet_tree fabric ~source:owner packet)
              plan.Peel.Plan.packets
          in
          if trees = [] then failwith "Allgather: empty PEEL plan";
          let dest_set = Hashtbl.create (2 * n) in
          List.iter (fun d -> Hashtbl.replace dest_set d ()) dests;
          List.iter
            (fun tree ->
              Transfer.multicast engine links ~tree ~bytes:shard
                ~start:spec.arrival
                ~on_delivered:(fun ~node ~time ->
                  if Hashtbl.mem dest_set node then record time)
                ())
            trees)
        members

let run ?chunks fabric algo collectives =
  Runner.run_custom ?chunks fabric
    ~launch:(fun engine links paths cfg ~spec ~on_complete ->
      launch engine links fabric paths cfg algo ~spec ~on_complete)
    collectives
