(** Broadcast schemes: the six the paper's evaluation compares, plus two
    extensions this reproduction adds (NCCL's double binary tree, and
    multi-tree PEEL striping for the §2.3 multicast-vs-multipath open
    question). *)

type t =
  | Ring            (** unicast ring, pipelined chunks *)
  | Btree           (** unicast binary tree, pipelined chunks *)
  | Dbtree          (** NCCL double binary tree (extension) *)
  | Optimal         (** bandwidth-optimal Steiner-tree multicast *)
  | Orca            (** controller-installed multicast + host relays *)
  | Peel            (** static prefix packets, zero setup latency *)
  | Peel_prog_cores (** PEEL fast start, controller refines at the core *)
  | Peel_multitree of int
      (** PEEL striping chunks across N edge-diverse trees (extension) *)

val all : t list
(** The paper's six. *)

val extended : t list
(** [all] plus the extensions. *)

val to_string : t -> string
val of_string : string -> t option

