open Peel_sim
open Peel_workload

type algo = Ring_pass | Btree_reduce

let algo_to_string = function
  | Ring_pass -> "ring"
  | Btree_reduce -> "tree"

let launch_with_chunk_hook engine links _fabric paths (cfg : Broadcast.config)
    algo ~(spec : Spec.collective) ~on_chunk ~on_complete =
  let members = Array.of_list (List.sort_uniq compare spec.members) in
  let n = Array.length members in
  if n < 2 then invalid_arg "Reduce.launch: need at least two members";
  if not (Array.exists (fun m -> m = spec.source) members) then
    invalid_arg "Reduce.launch: root must be a member";
  let chunks = cfg.Broadcast.chunks in
  let chunk_bytes = spec.bytes /. float_of_int chunks in
  let done_chunks = ref 0 in
  let last = ref spec.arrival in
  let finish_chunk c t =
    on_chunk c t;
    incr done_chunks;
    if t > !last then last := t;
    if !done_chunks = chunks then on_complete (!last -. spec.arrival)
  in
  match algo with
  | Ring_pass ->
      (* Accumulating chain ending at the root. *)
      let root_pos = ref 0 in
      Array.iteri (fun i m -> if m = spec.source then root_pos := i) members;
      let order =
        Array.init n (fun i -> members.((i + !root_pos + 1) mod n))
      in
      (* order.(n-1) = root. *)
      let hop_links =
        Array.init (n - 1) (fun i -> Paths.links paths order.(i) order.(i + 1))
      in
      let rec forward pos c t =
        if pos = n - 1 then finish_chunk c t
        else
          Transfer.unicast engine links ~links:hop_links.(pos) ~bytes:chunk_bytes
            ~start:t
            ~on_delivered:(fun t' -> forward (pos + 1) c t')
            ()
      in
      Engine.schedule engine spec.arrival (fun () ->
          for c = 0 to chunks - 1 do
            forward 0 c spec.arrival
          done)
  | Btree_reduce ->
      let bt =
        Peel_baselines.Binary_tree.schedule _fabric ~source:spec.source
          ~members:spec.members
      in
      let order = bt.Peel_baselines.Binary_tree.order in
      let children p =
        List.filter (fun c -> c < n) [ (2 * p) + 1; (2 * p) + 2 ]
      in
      (* pending.(p).(c) = chunks still expected from below before node p
         can forward chunk c upward. *)
      let pending =
        Array.init n (fun p -> Array.make chunks (List.length (children p)))
      in
      let rec send_up p c t =
        if p = 0 then finish_chunk c t
        else begin
          let parent = (p - 1) / 2 in
          Transfer.unicast engine links
            ~links:(Paths.links paths order.(p) order.(parent))
            ~bytes:chunk_bytes ~start:t
            ~on_delivered:(fun t' -> arrive parent c t')
            ()
        end
      and arrive p c t =
        pending.(p).(c) <- pending.(p).(c) - 1;
        if pending.(p).(c) = 0 then send_up p c t
      in
      Engine.schedule engine spec.arrival (fun () ->
          for p = 0 to n - 1 do
            if children p = [] then
              for c = 0 to chunks - 1 do
                send_up p c spec.arrival
              done
          done)

let launch engine links fabric paths cfg algo ~spec ~on_complete =
  launch_with_chunk_hook engine links fabric paths cfg algo ~spec
    ~on_chunk:(fun _ _ -> ())
    ~on_complete

let run ?chunks fabric algo collectives =
  Runner.run_custom ?chunks fabric
    ~launch:(fun engine links paths cfg ~spec ~on_complete ->
      launch engine links fabric paths cfg algo ~spec ~on_complete)
    collectives
