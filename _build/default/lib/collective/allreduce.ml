open Peel_sim
open Peel_workload

type algo = Ring_rs_ag | Reduce_then_peel

let algo_to_string = function
  | Ring_rs_ag -> "ring"
  | Reduce_then_peel -> "reduce+peel"

let launch engine links fabric paths (cfg : Broadcast.config) algo
    ~(spec : Spec.collective) ~on_complete =
  let members = Array.of_list (List.sort_uniq compare spec.members) in
  let n = Array.length members in
  if n < 2 then invalid_arg "Allreduce.launch: need at least two members";
  match algo with
  | Ring_rs_ag ->
      (* Shard s is reduced along positions s+1..s (n-1 hops), then
         gathered along s..s+n-2 (n-1 more hops).  Each shard's chain is
         independent; the collective is done when every chain ends. *)
      let shard = spec.bytes /. float_of_int n in
      let hop_links =
        Array.init n (fun i -> Paths.links paths members.(i) members.((i + 1) mod n))
      in
      let chains = ref n in
      let last = ref spec.arrival in
      let rec pass hops_left pos t =
        if hops_left = 0 then begin
          if t > !last then last := t;
          decr chains;
          if !chains = 0 then on_complete (!last -. spec.arrival)
        end
        else
          Transfer.unicast engine links ~links:hop_links.(pos) ~bytes:shard
            ~start:t
            ~on_delivered:(fun t' -> pass (hops_left - 1) ((pos + 1) mod n) t')
            ()
      in
      Engine.schedule engine spec.arrival (fun () ->
          for s = 0 to n - 1 do
            pass (2 * (n - 1)) ((s + 1) mod n) spec.arrival
          done)
  | Reduce_then_peel ->
      let chunks = cfg.Broadcast.chunks in
      let chunk_bytes = spec.bytes /. float_of_int chunks in
      let dests = List.filter (fun m -> m <> spec.source) spec.members in
      let plan = Peel.Plan.build fabric ~source:spec.source ~dests in
      let trees =
        List.filter_map
          (fun packet -> Peel.Plan.packet_tree fabric ~source:spec.source packet)
          plan.Peel.Plan.packets
      in
      if trees = [] then failwith "Allreduce: empty PEEL plan";
      let dest_set = Hashtbl.create (2 * n) in
      List.iter (fun d -> Hashtbl.replace dest_set d ()) dests;
      let remaining = ref (chunks * List.length dests) in
      let reduce_done = ref false in
      let last = ref spec.arrival in
      let maybe_finish () =
        if !remaining = 0 && !reduce_done then on_complete (!last -. spec.arrival)
      in
      let record time =
        remaining := !remaining - 1;
        if time > !last then last := time;
        maybe_finish ()
      in
      (* Each chunk's broadcast launches the moment its reduction
         reaches the root: the two phases pipeline. *)
      Reduce.launch_with_chunk_hook engine links fabric paths cfg
        Reduce.Btree_reduce ~spec
        ~on_chunk:(fun _c t ->
          List.iter
            (fun tree ->
              Transfer.multicast engine links ~tree ~bytes:chunk_bytes ~start:t
                ~on_delivered:(fun ~node ~time ->
                  if Hashtbl.mem dest_set node then record time)
                ())
            trees)
        ~on_complete:(fun _ ->
          reduce_done := true;
          let now = Engine.now engine in
          if now > !last then last := now;
          maybe_finish ())

let run ?chunks fabric algo collectives =
  Runner.run_custom ?chunks fabric
    ~launch:(fun engine links paths cfg ~spec ~on_complete ->
      launch engine links fabric paths cfg algo ~spec ~on_complete)
    collectives
