(** Endpoint-to-endpoint unicast paths with a global cache.

    Sibling GPUs talk over NVLink through the server's NVSwitch; all
    other pairs take the deterministic shortest fabric path.  Paths are
    cached per (fabric, src, dst) — ring and tree schedules revisit the
    same consecutive-id pairs across thousands of collectives. *)

open Peel_topology

type t

val create : ?ecmp:bool -> Fabric.t -> t
(** [ecmp] (default true) hash-selects among equal-cost paths per flow;
    [false] models a fabric that always picks the deterministic
    lowest-id path — the funneling ablation of E12. *)

val links : t -> int -> int -> int list
(** Directed link ids from one endpoint to another.  Raises
    [Invalid_argument] if disconnected. *)

val invalidate : t -> unit
(** Drop the cache (after failing/restoring links). *)
