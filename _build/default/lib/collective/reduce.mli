(** Reduce: every member contributes [bytes] of data; the element-wise
    combination lands at the root ([spec.source]).

    Reduction happens at hosts (the paper claims no in-network compute),
    so multicast does not help this direction — these are the unicast
    algorithms PEEL-based Allreduce composes with:
    - [Ring_pass]: the accumulating chain — member i combines its
      contribution and forwards, N-1 sequential full-size hops (chunked
      and pipelined);
    - [Btree_reduce]: the reversed binary tree — a node forwards chunk
      [c] upward once it arrives from both children. *)

open Peel_topology
open Peel_workload

type algo = Ring_pass | Btree_reduce

val algo_to_string : algo -> string

val launch :
  Peel_sim.Engine.t ->
  Peel_sim.Link_state.t ->
  Fabric.t ->
  Paths.t ->
  Broadcast.config ->
  algo ->
  spec:Spec.collective ->
  on_complete:(float -> unit) ->
  unit
(** [on_complete] fires when the root holds the fully reduced message
    (all chunks combined from all members). *)

val launch_with_chunk_hook :
  Peel_sim.Engine.t ->
  Peel_sim.Link_state.t ->
  Fabric.t ->
  Paths.t ->
  Broadcast.config ->
  algo ->
  spec:Spec.collective ->
  on_chunk:(int -> float -> unit) ->
  on_complete:(float -> unit) ->
  unit
(** Like {!launch}, additionally reporting when each reduced chunk
    becomes available at the root — the hand-off point for a pipelined
    reduce-then-broadcast Allreduce. *)

val run :
  ?chunks:int ->
  Fabric.t ->
  algo ->
  Spec.collective list ->
  Runner.outcome
