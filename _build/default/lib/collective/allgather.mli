(** Allgather: every member contributes a shard ([bytes / N]) and ends
    holding all shards — the second collective the paper's motivation
    cites (Khalilov et al., "bandwidth-optimal Broadcast and
    Allgather").

    Two algorithms:
    - [Ring_exchange]: the NCCL ring — shard [s] travels [N-1]
      consecutive logical hops, every link carries [(N-1)/N * bytes];
    - [Peel_multicast]: every member multicasts its shard over its own
      PEEL plan; each fabric link in a tree carries the shard once. *)

open Peel_topology
open Peel_workload

type algo = Ring_exchange | Peel_multicast

val algo_to_string : algo -> string

val launch :
  Peel_sim.Engine.t ->
  Peel_sim.Link_state.t ->
  Fabric.t ->
  Paths.t ->
  Broadcast.config ->
  algo ->
  spec:Spec.collective ->
  on_complete:(float -> unit) ->
  unit
(** [spec.bytes] is the total gathered size; each member contributes
    [bytes / N].  [spec.members] must have at least 2 entries.
    [on_complete] fires when every member holds every shard. *)

val run :
  ?chunks:int ->
  Fabric.t ->
  algo ->
  Spec.collective list ->
  Runner.outcome
