lib/collective/allgather.ml: Array Hashtbl List Paths Peel Peel_sim Peel_workload Runner Spec Transfer
