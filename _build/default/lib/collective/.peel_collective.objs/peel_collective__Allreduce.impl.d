lib/collective/allreduce.ml: Array Broadcast Engine Hashtbl List Paths Peel Peel_sim Peel_workload Reduce Runner Spec Transfer
