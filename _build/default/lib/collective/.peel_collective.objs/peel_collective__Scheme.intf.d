lib/collective/scheme.mli:
