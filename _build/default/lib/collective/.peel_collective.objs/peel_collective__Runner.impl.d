lib/collective/runner.ml: Array Broadcast Engine Fabric Float Link_state List Paths Peel_sim Peel_topology Peel_util Peel_workload Printf Spec Telemetry
