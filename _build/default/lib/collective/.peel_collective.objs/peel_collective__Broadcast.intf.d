lib/collective/broadcast.mli: Engine Fabric Link_state Paths Peel_sim Peel_topology Peel_util Peel_workload Scheme Spec
