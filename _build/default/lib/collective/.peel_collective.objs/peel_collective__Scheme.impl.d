lib/collective/scheme.ml: Printf String
