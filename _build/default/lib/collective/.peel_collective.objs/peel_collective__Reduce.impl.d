lib/collective/reduce.ml: Array Broadcast Engine List Paths Peel_baselines Peel_sim Peel_workload Runner Spec Transfer
