lib/collective/paths.ml: Fabric Graph Hashtbl Peel_sim Peel_topology
