lib/collective/runner.mli: Broadcast Fabric Paths Peel_sim Peel_topology Peel_util Peel_workload Scheme Spec
