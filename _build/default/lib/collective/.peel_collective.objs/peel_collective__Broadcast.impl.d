lib/collective/broadcast.ml: Array Dcqcn Engine Fun Hashtbl List Option Paths Peel Peel_baselines Peel_sim Peel_steiner Peel_topology Peel_util Peel_workload Scheme Spec Transfer
