lib/collective/reduce.mli: Broadcast Fabric Paths Peel_sim Peel_topology Peel_workload Runner Spec
