lib/collective/paths.mli: Fabric Peel_topology
