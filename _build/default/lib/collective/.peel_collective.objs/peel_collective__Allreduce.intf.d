lib/collective/allreduce.mli: Broadcast Fabric Paths Peel_sim Peel_topology Peel_workload Runner Spec
