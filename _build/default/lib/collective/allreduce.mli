(** Allreduce: every member contributes [bytes]; everyone ends with the
    element-wise combination — the collective that dominates data-
    parallel training traffic.

    Two algorithms:
    - [Ring_rs_ag]: the canonical ring — reduce-scatter then allgather,
      2(N-1) shard hops per shard, every NIC moves ~2*bytes;
    - [Reduce_then_peel]: a binary-tree reduce into a root pipelined
      into a PEEL multicast broadcast — each reduced chunk starts its
      broadcast the moment it is available, so the two phases overlap.
      This is the composition the paper's thesis enables: multicast as
      a first-class primitive inside larger collectives. *)

open Peel_topology
open Peel_workload

type algo = Ring_rs_ag | Reduce_then_peel

val algo_to_string : algo -> string

val launch :
  Peel_sim.Engine.t ->
  Peel_sim.Link_state.t ->
  Fabric.t ->
  Paths.t ->
  Broadcast.config ->
  algo ->
  spec:Spec.collective ->
  on_complete:(float -> unit) ->
  unit
(** [on_complete] fires when every member holds the fully reduced
    message. *)

val run :
  ?chunks:int ->
  Fabric.t ->
  algo ->
  Spec.collective list ->
  Runner.outcome
