open Peel_topology

type link_report = {
  link : int;
  src : int;
  dst : int;
  tier : string;
  utilization : float;
}

type t = { reports : link_report array }

let tier_of g lid =
  let l = Graph.link g lid in
  Printf.sprintf "%s->%s"
    (Graph.kind_to_string (Graph.node g l.Graph.src).Graph.kind)
    (Graph.kind_to_string (Graph.node g l.Graph.dst).Graph.kind)

let snapshot g links ~horizon =
  if horizon <= 0.0 then invalid_arg "Telemetry.snapshot: horizon > 0";
  let reports =
    Array.init (Graph.num_links g) (fun lid ->
        let l = Graph.link g lid in
        {
          link = lid;
          src = l.Graph.src;
          dst = l.Graph.dst;
          tier = tier_of g lid;
          utilization = Link_state.utilization links ~link:lid ~horizon;
        })
  in
  { reports }

let hottest t ~n =
  let sorted = Array.copy t.reports in
  Array.sort (fun a b -> compare b.utilization a.utilization) sorted;
  Array.to_list (Array.sub sorted 0 (min n (Array.length sorted)))

let tier_utilization t =
  let acc = Hashtbl.create 8 in
  Array.iter
    (fun r ->
      let sum, count = Option.value (Hashtbl.find_opt acc r.tier) ~default:(0.0, 0) in
      Hashtbl.replace acc r.tier (sum +. r.utilization, count + 1))
    t.reports;
  Hashtbl.fold
    (fun tier (sum, count) l -> (tier, sum /. float_of_int count) :: l)
    acc []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let max_utilization t =
  Array.fold_left (fun acc r -> Float.max acc r.utilization) 0.0 t.reports
