lib/sim/dcqcn.ml: Float
