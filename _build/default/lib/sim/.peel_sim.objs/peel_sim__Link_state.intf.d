lib/sim/link_state.mli: Graph Peel_topology
