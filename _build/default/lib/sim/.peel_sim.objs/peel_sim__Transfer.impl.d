lib/sim/transfer.ml: Engine Graph Link_state List Option Peel_steiner Peel_topology Peel_util
