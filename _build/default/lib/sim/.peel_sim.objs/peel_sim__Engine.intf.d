lib/sim/engine.mli:
