lib/sim/engine.ml: Option Peel_util Printf
