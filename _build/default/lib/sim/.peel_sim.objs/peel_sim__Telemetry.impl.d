lib/sim/telemetry.ml: Array Float Graph Hashtbl Link_state List Option Peel_topology Printf
