lib/sim/transfer.mli: Engine Graph Link_state Peel_steiner Peel_topology Peel_util
