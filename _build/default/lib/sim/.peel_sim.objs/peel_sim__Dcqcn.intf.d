lib/sim/dcqcn.mli:
