lib/sim/link_state.ml: Array Float Graph Peel_topology
