lib/sim/telemetry.mli: Graph Link_state Peel_topology
