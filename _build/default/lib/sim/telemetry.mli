(** Link-level telemetry over a finished (or running) simulation.

    A deployable multicast service needs path observability (paper §1
    footnote; §3.4).  The simulator already accounts per-link busy
    time; this module turns it into the reports an operator would pull:
    hottest links, and mean utilization per fabric tier — which is how
    the funnel-versus-fan-out asymmetry of multicast shows up. *)

open Peel_topology

type link_report = {
  link : int;
  src : int;
  dst : int;
  tier : string;        (** e.g. "host->tor", "agg->core" *)
  utilization : float;  (** busy seconds / horizon *)
}

type t

val snapshot : Graph.t -> Link_state.t -> horizon:float -> t
(** [horizon] is the observation window (typically the simulation
    makespan). Raises [Invalid_argument] if non-positive. *)

val hottest : t -> n:int -> link_report list
(** The [n] most utilized links, descending. *)

val tier_utilization : t -> (string * float) list
(** Mean utilization per (src kind -> dst kind) tier, descending;
    tiers with zero traffic are included at 0. *)

val max_utilization : t -> float
