(* A flat-array binary heap.  Each entry carries a monotonically
   increasing sequence number so that equal priorities pop in insertion
   order, keeping simulations deterministic across runs. *)

type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let lt a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

(* Grow the backing array, filling fresh slots with [seed]; slots beyond
   [size] are never read. *)
let grow t seed =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let bigger = Array.make ncap seed in
  Array.blit t.data 0 bigger 0 t.size;
  t.data <- bigger

let push t prio value =
  let e = { prio; seq = t.next_seq; value } in
  if t.size >= Array.length t.data then grow t e;
  t.next_seq <- t.next_seq + 1;
  let i = ref t.size in
  t.size <- t.size + 1;
  t.data.(!i) <- e;
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if lt t.data.(!i) t.data.(parent) then begin
      let tmp = t.data.(parent) in
      t.data.(parent) <- t.data.(!i);
      t.data.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && lt t.data.(l) t.data.(!smallest) then smallest := l;
    if r < t.size && lt t.data.(r) t.data.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = t.data.(!smallest) in
      t.data.(!smallest) <- t.data.(!i);
      t.data.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t
    end;
    Some (top.prio, top.value)
  end

let peek t = if t.size = 0 then None else Some (t.data.(0).prio, t.data.(0).value)
let is_empty t = t.size = 0
let length t = t.size
let clear t = t.size <- 0
