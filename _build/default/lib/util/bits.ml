let is_power_of_two n = n > 0 && n land (n - 1) = 0

let ilog2 n =
  if n <= 0 then invalid_arg "Bits.ilog2";
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let ceil_log2 n =
  if n <= 0 then invalid_arg "Bits.ceil_log2";
  let f = ilog2 n in
  if is_power_of_two n then f else f + 1

let pow2 n =
  if n < 0 || n >= 62 then invalid_arg "Bits.pow2";
  1 lsl n

let ceil_div a b =
  if b <= 0 then invalid_arg "Bits.ceil_div";
  (a + b - 1) / b

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

let bit x i = (x lsr i) land 1 = 1

let bits_to_string ~width x =
  String.init width (fun i -> if bit x (width - 1 - i) then '1' else '0')
