type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.percentile: q out of range";
  if n = 1 then sorted.(0)
  else begin
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else begin
      let w = rank -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. w)) +. (sorted.(hi) *. w)
    end
  end

let summarize_array a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let sum = Array.fold_left ( +. ) 0.0 sorted in
  let mean = sum /. float_of_int n in
  let sq = Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 sorted in
  let stddev = if n > 1 then sqrt (sq /. float_of_int (n - 1)) else 0.0 in
  {
    count = n;
    mean;
    stddev;
    min = sorted.(0);
    max = sorted.(n - 1);
    p50 = percentile sorted 0.50;
    p90 = percentile sorted 0.90;
    p99 = percentile sorted 0.99;
  }

let summarize l = summarize_array (Array.of_list l)

let mean l =
  match l with
  | [] -> invalid_arg "Stats.mean: empty sample"
  | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

module Online = struct
  type t = {
    mutable n : int;
    mutable mu : float;
    mutable m2 : float;
    mutable mn : float;
    mutable mx : float;
  }

  let create () = { n = 0; mu = 0.0; m2 = 0.0; mn = infinity; mx = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mu in
    t.mu <- t.mu +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mu));
    if x < t.mn then t.mn <- x;
    if x > t.mx then t.mx <- x

  let count t = t.n
  let mean t = t.mu
  let variance t = if t.n > 1 then t.m2 /. float_of_int (t.n - 1) else 0.0
  let stddev t = sqrt (variance t)
  let min t = t.mn
  let max t = t.mx
end

module Histogram = struct
  type t = { lo : float; hi : float; counts : int array; mutable total : int }

  let create ~lo ~hi ~bins =
    if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
    if hi <= lo then invalid_arg "Histogram.create: empty range";
    { lo; hi; counts = Array.make bins 0; total = 0 }

  let add t x =
    let bins = Array.length t.counts in
    let raw =
      int_of_float (Float.floor ((x -. t.lo) /. (t.hi -. t.lo) *. float_of_int bins))
    in
    let i = if raw < 0 then 0 else if raw >= bins then bins - 1 else raw in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1

  let counts t = Array.copy t.counts
  let total t = t.total

  let bin_edges t =
    let bins = Array.length t.counts in
    Array.init (bins + 1) (fun i ->
        t.lo +. ((t.hi -. t.lo) *. float_of_int i /. float_of_int bins))
end
