type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let nl = Int64.of_int n in
  let rec go () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r nl in
    if Int64.(sub (add r (sub nl 1L)) v) < 0L then go () else Int64.to_int v
  in
  go ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 random bits into [0,1). *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r /. 9007199254740992.0 *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let rec positive_uniform () =
    let u = float t 1.0 in
    if u > 0.0 then u else positive_uniform ()
  in
  -.mean *. log (positive_uniform ())

let normal t ~mu ~sigma =
  let rec draw () =
    let u1 = float t 1.0 and u2 = float t 1.0 in
    if u1 <= 0.0 then draw ()
    else mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
  in
  draw ()

let normal_pos t ~mu ~sigma = Float.max 0.0 (normal t ~mu ~sigma)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t n k =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Floyd's algorithm: O(k) expected insertions. *)
  let chosen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    if Hashtbl.mem chosen r then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen r ()
  done;
  Hashtbl.fold (fun x () acc -> x :: acc) chosen []
  |> List.sort compare

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
