(** Deterministic pseudo-random number generation.

    All randomness in this repository flows through this module so that
    every experiment is reproducible from a single integer seed.  The
    generator is SplitMix64 (Steele, Lea & Flood, OOPSLA'14): a tiny,
    statistically strong, splittable generator.  Splitting lets each
    collective / failure draw use an independent stream, so adding more
    sampling to one part of an experiment never perturbs another. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from [seed]. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future draws). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Raises [Invalid_argument] if
    [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian sample (Box–Muller). *)

val normal_pos : t -> mu:float -> sigma:float -> float
(** Gaussian sample truncated below at 0 (used for controller delays,
    which cannot be negative). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t n k] draws [k] distinct integers from
    [\[0, n)], in increasing order. Raises [Invalid_argument] if
    [k > n] or [k < 0]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
