(** Small integer/bit utilities used by topology addressing and the
    prefix engine. *)

val is_power_of_two : int -> bool
(** [is_power_of_two n] for [n >= 1]; [false] for [n <= 0]. *)

val ilog2 : int -> int
(** Floor of log2; raises [Invalid_argument] for [n <= 0]. *)

val ceil_log2 : int -> int
(** Ceiling of log2; [ceil_log2 1 = 0]. Raises for [n <= 0]. *)

val pow2 : int -> int
(** [pow2 n] = 2^n for [0 <= n < 62]. *)

val ceil_div : int -> int -> int
(** Integer division rounding up. *)

val popcount : int -> int
(** Number of set bits (for non-negative arguments). *)

val bit : int -> int -> bool
(** [bit x i] is the [i]-th least significant bit of [x]. *)

val bits_to_string : width:int -> int -> string
(** MSB-first binary rendering, e.g. [bits_to_string ~width:3 5 = "101"]. *)
