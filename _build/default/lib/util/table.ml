let render ~header rows =
  let ncols = List.length header in
  let pad_row r =
    let len = List.length r in
    if len >= ncols then r else r @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map pad_row rows in
  let all = header :: rows in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols && String.length cell > widths.(i) then
            widths.(i) <- String.length cell)
        row)
    all;
  let buf = Buffer.create 1024 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < ncols - 1 then
          Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  emit_row (List.mapi (fun i _ -> String.make widths.(i) '-') header);
  List.iter emit_row rows;
  Buffer.contents buf

let print ~header rows = print_string (render ~header rows)

let fsec s =
  if s = 0.0 then "0 s"
  else if Float.abs s >= 1.0 then Printf.sprintf "%.3f s" s
  else if Float.abs s >= 1e-3 then Printf.sprintf "%.3f ms" (s *. 1e3)
  else if Float.abs s >= 1e-6 then Printf.sprintf "%.1f us" (s *. 1e6)
  else Printf.sprintf "%.1f ns" (s *. 1e9)

let fbytes b =
  let abs = Float.abs b in
  if abs >= 1e9 then Printf.sprintf "%.2f GB" (b /. 1e9)
  else if abs >= 1e6 then Printf.sprintf "%.2f MB" (b /. 1e6)
  else if abs >= 1e3 then Printf.sprintf "%.2f KB" (b /. 1e3)
  else Printf.sprintf "%.0f B" b

let ffactor r = Printf.sprintf "%.1fx" r
