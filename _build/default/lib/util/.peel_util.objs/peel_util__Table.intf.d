lib/util/table.mli:
