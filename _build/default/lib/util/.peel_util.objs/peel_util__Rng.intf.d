lib/util/rng.mli:
