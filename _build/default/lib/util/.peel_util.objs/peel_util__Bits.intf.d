lib/util/bits.mli:
