lib/util/stats.mli:
