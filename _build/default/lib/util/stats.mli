(** Summary statistics for experiment outputs.

    The paper reports mean and 99th-percentile collective completion
    times; this module provides exact percentiles over collected samples
    plus streaming (Welford) moments for cheap online accounting. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : float list -> summary
(** Exact summary of a non-empty sample list. Raises
    [Invalid_argument] on an empty list. *)

val summarize_array : float array -> summary
(** Same over an array (the array is not modified). *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0,1\]] using linear
    interpolation between closest ranks. The input must be sorted. *)

val mean : float list -> float
(** Arithmetic mean; raises on empty input. *)

(** Streaming mean/variance accumulator (Welford's algorithm). *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end

(** Fixed-bin histogram over [\[lo, hi)] for distribution shaping. *)
module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  val add : t -> float -> unit

  val counts : t -> int array
  (** Per-bin counts; samples outside the range land in the first or
      last bin. *)

  val total : t -> int
  val bin_edges : t -> float array
end
