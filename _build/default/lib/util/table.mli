(** Aligned plain-text tables, used by the benchmark harness to print
    paper-shaped rows. *)

val render : header:string list -> string list list -> string
(** [render ~header rows] returns a text table with columns padded to
    the widest cell. Rows shorter than the header are padded with empty
    cells. *)

val print : header:string list -> string list list -> unit
(** [render] followed by [print_string]. *)

val fsec : float -> string
(** Format seconds with engineering-friendly precision (e.g. "0.0123 s",
    "85.1 us"). *)

val fbytes : float -> string
(** Format a byte count ("1.5 KB", "8 B", "2.0 MB"). *)

val ffactor : float -> string
(** Format a ratio like "5.2x". *)
