type t = {
  order : int array;
  edges_a : (int * int) list;
  edges_b : (int * int) list;
}

(* In-order binary tree over labels 1..m (NCCL's ncclGetBtree shape):
   odd labels are leaves; an even label v with lowest set bit b has left
   child v - b/2 and right child v + b/2 (halving the offset until it
   fits under m).  The root is the highest power of two <= m. *)
let btree_children m v =
  if v land 1 = 1 then []
  else begin
    let b = v land -v in
    let left = v - (b / 2) in
    let rec fit_right off =
      if off = 0 then None
      else begin
        let r = v + off in
        if r <= m then Some r else fit_right (off / 2)
      end
    in
    match fit_right (b / 2) with
    | Some right -> [ left; right ]
    | None -> [ left ]
  end

let btree_root m =
  let rec go p = if p * 2 <= m then go (p * 2) else p in
  go 1

let schedule fabric ~source ~members =
  ignore fabric;
  let members = List.sort_uniq compare members in
  if List.length members < 2 then
    invalid_arg "Double_binary_tree.schedule: need at least two members";
  if not (List.mem source members) then
    invalid_arg "Double_binary_tree.schedule: source must be a member";
  let arr = Array.of_list members in
  let n = Array.length arr in
  let src_pos = ref 0 in
  Array.iteri (fun i v -> if v = source then src_pos := i) arr;
  let order = Array.init n (fun i -> arr.((i + !src_pos) mod n)) in
  let m = n - 1 in
  (* Tree A lives directly on labels 1..m. *)
  let edges_of label_map =
    let edges = ref [] in
    for v = 1 to m do
      List.iter
        (fun c -> edges := (order.(label_map v), order.(label_map c)) :: !edges)
        (btree_children m v)
    done;
    (order.(0), order.(label_map (btree_root m))) :: List.rev !edges
  in
  let id v = v in
  (* Tree B is the same structure on labels rotated by one, so interior
     (even) positions of A become leaves of B. *)
  let unshift v = if v = 1 then m else v - 1 in
  { order; edges_a = edges_of id; edges_b = edges_of unshift }

let max_fanout t =
  let count edges v =
    List.length (List.filter (fun (p, _) -> p = v) edges)
  in
  Array.fold_left
    (fun acc v -> max acc (max (count t.edges_a v) (count t.edges_b v)))
    0 t.order

let send_load t v =
  let count edges = List.length (List.filter (fun (p, _) -> p = v) edges) in
  count t.edges_a + count t.edges_b
