(** Unicast binary-tree schedule (the paper's "Tree" baseline, after
    NCCL's tree topologies).

    Members in locality order are arranged as an implicit heap rooted
    at the source: position [i] forwards to positions [2i+1] and
    [2i+2].  Interior nodes therefore send the message twice over their
    own NIC, which is exactly the bandwidth overshoot Figure 1 of the
    paper illustrates. *)

open Peel_topology

type t = {
  order : int array;          (** members, source at position 0 *)
  edges : (int * int) list;   (** (parent, child) logical sends *)
  depth : int;                (** levels below the root *)
}

val schedule : Fabric.t -> source:int -> members:int list -> t
(** Same contract as {!Ring.schedule}. *)

val children : t -> int -> int list
(** Logical children of a member (by node id). *)
