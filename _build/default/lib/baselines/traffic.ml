open Peel_topology

let link_loads g hops =
  let loads = Array.make (Graph.num_links g) 0 in
  List.iter
    (fun (src, dst) ->
      match Graph.shortest_path g src dst with
      | None -> invalid_arg "Traffic.link_loads: disconnected pair"
      | Some path ->
          let rec walk = function
            | a :: (b :: _ as rest) ->
                (match Graph.link_between g a b with
                | Some lid -> loads.(lid) <- loads.(lid) + 1
                | None -> invalid_arg "Traffic.link_loads: broken path");
                walk rest
            | _ -> ()
          in
          walk path)
    hops;
  loads

let tree_loads g tree =
  let loads = Array.make (Graph.num_links g) 0 in
  List.iter (fun lid -> loads.(lid) <- loads.(lid) + 1) (Peel_steiner.Tree.link_ids tree);
  loads

let nvlink_threshold = 100e9

let total g ?(fabric_only = true) loads =
  let sum = ref 0 in
  Array.iteri
    (fun lid c ->
      if c > 0 then begin
        let l = Graph.link g lid in
        if (not fabric_only) || l.Graph.bandwidth <= nvlink_threshold then
          sum := !sum + c
      end)
    loads;
  !sum

let core_load g loads =
  let touches_core lid =
    let l = Graph.link g lid in
    let k v = (Graph.node g v).Graph.kind in
    match (k l.Graph.src, k l.Graph.dst) with
    | (Graph.Core | Graph.Spine), _ | _, (Graph.Core | Graph.Spine) -> true
    | _ -> false
  in
  let sum = ref 0 in
  Array.iteri (fun lid c -> if c > 0 && touches_core lid then sum := !sum + c) loads;
  !sum

let overshoot ~baseline ~optimal =
  if optimal <= 0 then invalid_arg "Traffic.overshoot: optimal must be positive";
  float_of_int (baseline - optimal) /. float_of_int optimal
