
type t = { order : int array; edges : (int * int) list; depth : int }

let schedule fabric ~source ~members =
  ignore fabric;
  let members = List.sort_uniq compare members in
  if List.length members < 2 then
    invalid_arg "Binary_tree.schedule: need at least two members";
  if not (List.mem source members) then
    invalid_arg "Binary_tree.schedule: source must be a member";
  let arr = Array.of_list members in
  let n = Array.length arr in
  let src_pos = ref 0 in
  Array.iteri (fun i v -> if v = source then src_pos := i) arr;
  let order = Array.init n (fun i -> arr.((i + !src_pos) mod n)) in
  let edges = ref [] in
  for i = n - 1 downto 1 do
    let parent = (i - 1) / 2 in
    edges := (order.(parent), order.(i)) :: !edges
  done;
  let depth =
    let rec lvl i acc = if i = 0 then acc else lvl ((i - 1) / 2) (acc + 1) in
    lvl (n - 1) 0
  in
  { order; edges = !edges; depth }

let children t v =
  List.filter_map (fun (p, c) -> if p = v then Some c else None) t.edges
