(** NCCL-style double binary tree broadcast (the algorithm the paper's
    citation [3] actually describes).

    Two complementary binary trees are built over the members; each
    carries half of the chunks.  A rank that is interior in one tree is
    a leaf in the other, so per-rank send load is ~1 message instead of
    the plain binary tree's 2 — the fix NCCL 2.4 introduced.  The
    construction follows the classic scheme: tree A is the binary tree
    over positions 1..n-1 built from the bit structure of the rank,
    tree B is the same tree over positions shifted by one, and the
    source (position 0) feeds both roots. *)

type t = {
  order : int array;             (** members, source at position 0 *)
  edges_a : (int * int) list;    (** (parent, child) sends, tree A *)
  edges_b : (int * int) list;    (** (parent, child) sends, tree B *)
}

val schedule : Peel_topology.Fabric.t -> source:int -> members:int list -> t
(** Same contract as {!Ring.schedule}. *)

val max_fanout : t -> int
(** Largest number of children any member has in one tree (<= 2). *)

val send_load : t -> int -> int
(** Total sends a member performs across both trees. *)
