
type t = { order : int array; hops : (int * int) list }

let schedule fabric ~source ~members =
  ignore fabric;
  let members = List.sort_uniq compare members in
  if List.length members < 2 then
    invalid_arg "Ring.schedule: need at least two members";
  if not (List.mem source members) then
    invalid_arg "Ring.schedule: source must be a member";
  (* Ascending node ids group GPUs by server, servers by rack, racks by
     pod — the locality order the fabric builders lay out. *)
  let arr = Array.of_list members in
  let n = Array.length arr in
  let src_pos = ref 0 in
  Array.iteri (fun i v -> if v = source then src_pos := i) arr;
  let order = Array.init n (fun i -> arr.((i + !src_pos) mod n)) in
  let hops = List.init (n - 1) (fun i -> (order.(i), order.(i + 1))) in
  { order; hops }

let logical_hops t = t.hops
