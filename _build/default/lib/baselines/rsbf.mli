(** Analytic model of RSBF-style Bloom-filter multicast headers
    (paper §3.1, Figure 3).

    Bloom-filter schemes push the multicast tree into the packet: the
    header encodes every (switch, outgoing port) pair of the tree in a
    Bloom filter sized for a target false-positive ratio.  The filter
    needs [log2(1/p) / ln 2 ~ 1.44 * log2(1/p)] bits per element, and
    for a fabric-wide broadcast in a [k]-ary fat-tree the element count
    grows like [k^3/4] — so the header blows through a 1500 B MTU in
    the tens of [k] regardless of how generous [p] is, and the
    surviving false positives additionally spray traffic onto links
    outside the tree. *)

val bits_per_element : fpr:float -> float
(** Optimal Bloom-filter bits per element for false-positive rate
    [fpr] in (0, 1). *)

val broadcast_tree_elements : k:int -> ?hosts_per_tor:int -> unit -> int
(** Forwarding entries (directed down-links plus the up path) of a
    fabric-wide broadcast tree in a [k]-ary fat-tree with
    [hosts_per_tor] (default [k/2]) hosts per rack. *)

val header_bytes : k:int -> fpr:float -> float
(** Bloom-filter header size for a fabric-wide broadcast. *)

val exceeds_mtu : k:int -> fpr:float -> ?mtu:int -> unit -> bool
(** Default MTU 1500 B. *)

val bandwidth_overhead : k:int -> fpr:float -> payload:int -> float
(** Header bytes / payload bytes — the fraction of link capacity spent
    on the header itself (>1 = more header than payload). *)

val expected_false_positive_links : k:int -> fpr:float -> float
(** Expected number of non-tree switch ports that falsely match the
    filter during one broadcast — redundant traffic injected per
    message. *)
