(** Behavioural model of Orca (NSDI'22), the paper's state-of-the-art
    controller-based comparator (§3.1, §4).

    Orca installs multicast rules on demand through a centralized SDN
    controller and shrinks switch fan-out state by delegating the last
    hop to a host-side agent: the fabric tree delivers one copy per
    involved server to an agent endpoint, which then relays the message
    to the server's remaining member GPUs over NVLink.

    Two behaviours matter for the evaluation and are modelled here:
    - flow-setup latency: every collective waits for the controller,
      sampled from N(10 ms, 5 ms) truncated at 0 (He et al., per the
      paper's setup);
    - agent relays: extra unicasts that re-cross the ToR for every
      member beyond the agent, costing rack-local bandwidth. *)

open Peel_topology
open Peel_steiner

type plan = {
  setup_delay : float;        (** seconds before the first byte moves *)
  tree : Tree.t;              (** fabric tree to one agent per server *)
  relays : (int * int) list;  (** (agent, member) intra-server relays *)
}

val setup_delay_mu : float
val setup_delay_sigma : float

val sample_setup_delay : Peel_util.Rng.t -> float

val plan :
  Fabric.t -> rng:Peel_util.Rng.t -> source:int -> dests:int list -> plan
(** Build the delivery plan for one Broadcast.  The agent for each
    server is its lowest-id destination endpoint.  The fabric tree uses
    the symmetric-optimal construction, falling back to the
    layer-peeling greedy when links are down. *)
