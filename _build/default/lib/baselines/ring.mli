(** Unicast ring schedule, the most common NCCL-style Broadcast
    baseline.

    Members are ordered for locality (GPUs of one server, then servers
    of one rack, then racks — which is ascending node-id order by
    construction) and rotated so the source leads.  A broadcast then
    flows around the ring: member [i] forwards to member [i+1]; the
    last member only receives.  Messages are pipelined in chunks by the
    collective layer, so total time approaches [(N-1+C)/C * T] where
    [T] is the per-hop message serialization time. *)

open Peel_topology

type t = {
  order : int array;        (** members, source first *)
  hops : (int * int) list;  (** (sender, receiver), N-1 entries *)
}

val schedule : Fabric.t -> source:int -> members:int list -> t
(** [members] must include the source. Raises [Invalid_argument]
    otherwise or on groups smaller than 2. *)

val logical_hops : t -> (int * int) list
