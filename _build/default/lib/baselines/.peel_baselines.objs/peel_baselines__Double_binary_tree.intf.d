lib/baselines/double_binary_tree.mli: Peel_topology
