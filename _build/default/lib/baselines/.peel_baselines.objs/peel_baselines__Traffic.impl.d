lib/baselines/traffic.ml: Array Graph List Peel_steiner Peel_topology
