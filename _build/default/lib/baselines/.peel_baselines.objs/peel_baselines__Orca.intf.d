lib/baselines/orca.mli: Fabric Peel_steiner Peel_topology Peel_util Tree
