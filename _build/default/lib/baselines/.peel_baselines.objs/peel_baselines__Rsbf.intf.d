lib/baselines/rsbf.mli:
