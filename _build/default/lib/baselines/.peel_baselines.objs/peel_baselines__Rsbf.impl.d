lib/baselines/rsbf.ml: Option
