lib/baselines/traffic.mli: Graph Peel_steiner Peel_topology
