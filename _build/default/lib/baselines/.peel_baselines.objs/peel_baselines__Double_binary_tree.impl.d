lib/baselines/double_binary_tree.ml: Array List
