lib/baselines/binary_tree.ml: Array List
