lib/baselines/ring.mli: Fabric Peel_topology
