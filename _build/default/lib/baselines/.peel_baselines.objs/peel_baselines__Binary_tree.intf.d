lib/baselines/binary_tree.mli: Fabric Peel_topology
