lib/baselines/orca.ml: Fabric Hashtbl Layer_peel List Option Peel_steiner Peel_topology Peel_util Symmetric Tree
