open Peel_topology
open Peel_steiner

type plan = {
  setup_delay : float;
  tree : Tree.t;
  relays : (int * int) list;
}

let setup_delay_mu = 0.010
let setup_delay_sigma = 0.005

let sample_setup_delay rng =
  Peel_util.Rng.normal_pos rng ~mu:setup_delay_mu ~sigma:setup_delay_sigma

let plan fabric ~rng ~source ~dests =
  let dests = List.sort_uniq compare (List.filter (fun d -> d <> source) dests) in
  (* Group destinations per server; the lowest-id member is the agent
     and relays its siblings over NVLink. *)
  let by_server = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let server = Fabric.endpoint_host fabric d in
      Hashtbl.replace by_server server
        (d :: Option.value (Hashtbl.find_opt by_server server) ~default:[]))
    dests;
  let agents = ref [] and relays = ref [] in
  Hashtbl.iter
    (fun _server members ->
      match List.sort compare members with
      | [] -> ()
      | agent :: rest ->
          agents := agent :: !agents;
          List.iter (fun m -> relays := (agent, m) :: !relays) rest)
    by_server;
  let agents = List.sort compare !agents in
  let tree =
    try Symmetric.build fabric ~source ~dests:agents
    with Invalid_argument _ -> (
      match Layer_peel.build (Fabric.graph fabric) ~source ~dests:agents with
      | Some t -> t
      | None -> failwith "Orca.plan: agents unreachable")
  in
  { setup_delay = sample_setup_delay rng; tree; relays = List.sort compare !relays }
