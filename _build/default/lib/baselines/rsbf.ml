let bits_per_element ~fpr =
  if fpr <= 0.0 || fpr >= 1.0 then invalid_arg "Rsbf.bits_per_element: fpr in (0,1)";
  -.log fpr /. (log 2.0 *. log 2.0)

let broadcast_tree_elements ~k ?hosts_per_tor () =
  if k < 4 || k mod 2 <> 0 then invalid_arg "Rsbf: k must be even, >= 4";
  let half = k / 2 in
  let hpt = Option.value hosts_per_tor ~default:half in
  let tors = k * half in
  let hosts = tors * hpt in
  (* Up path: host->tor, tor->agg, agg->core (3 entries).  Down:
     core->agg for the k-1 other pods; one agg->tor per ToR (the source
     pod's aggregation switch covers its own ToRs); tor->host for every
     host except the source. *)
  3 + (k - 1) + tors + (hosts - 1)

let header_bytes ~k ~fpr =
  let n = float_of_int (broadcast_tree_elements ~k ()) in
  n *. bits_per_element ~fpr /. 8.0

let exceeds_mtu ~k ~fpr ?(mtu = 1500) () = header_bytes ~k ~fpr > float_of_int mtu

let bandwidth_overhead ~k ~fpr ~payload =
  if payload <= 0 then invalid_arg "Rsbf.bandwidth_overhead: payload > 0";
  header_bytes ~k ~fpr /. float_of_int payload

let expected_false_positive_links ~k ~fpr =
  if k < 4 || k mod 2 <> 0 then invalid_arg "Rsbf: k must be even, >= 4";
  let half = float_of_int (k / 2) in
  let kf = float_of_int k in
  (* Ports of switches on the tree that are NOT tree links get tested
     against the filter.  ToRs: k/2 uplinks each, of which 1 is used on
     the broadcast's down path (and hosts all covered).  Aggs: k/2
     core uplinks + k/2 tor downlinks, ~1 uplink + k/2 downlinks used.
     Cores: k pod links, all used in a broadcast.  The dominant
     non-tree port population is the ToR and Agg spare uplinks. *)
  let tor_spare = kf *. half *. (half -. 1.0) in
  let agg_spare = kf *. half *. (half -. 1.0) in
  fpr *. (tor_spare +. agg_spare)
