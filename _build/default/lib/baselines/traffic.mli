(** Bandwidth accounting for logical (unicast) schedules — the
    machinery behind the paper's Figure 1 comparison, where Ring and
    Tree traverse core links up to 80% more than the multicast
    optimum. *)

open Peel_topology

val link_loads : Graph.t -> (int * int) list -> int array
(** [link_loads g hops] routes every [(src, dst)] pair over its
    (deterministic) shortest path and returns the per-directed-link
    traversal count, indexed by link id.  Raises [Invalid_argument] if
    some pair is disconnected. *)

val tree_loads : Graph.t -> Peel_steiner.Tree.t -> int array
(** Each tree link is traversed exactly once per message. *)

val total : Graph.t -> ?fabric_only:bool -> int array -> int
(** Sum of traversals; with [fabric_only] (default true) NVLink-class
    links (bandwidth above [100e9] B/s) are excluded, since intra-server
    bandwidth is not the contended resource. *)

val core_load : Graph.t -> int array -> int
(** Traversals of links touching a Core or Spine switch only. *)

val overshoot : baseline:int -> optimal:int -> float
(** [(baseline - optimal) / optimal], e.g. 0.8 = 80% more traffic. *)
