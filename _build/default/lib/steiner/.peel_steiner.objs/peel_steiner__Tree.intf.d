lib/steiner/tree.mli: Graph Peel_topology
