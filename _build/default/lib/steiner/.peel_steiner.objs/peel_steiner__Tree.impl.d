lib/steiner/tree.ml: Graph Int List Map Option Peel_topology Printf String
