lib/steiner/symmetric.ml: Array Fabric Fat_tree Graph Hashtbl Int Leaf_spine List Option Peel_topology Printf Rail Set Tree
