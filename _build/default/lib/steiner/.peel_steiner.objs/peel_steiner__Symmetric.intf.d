lib/steiner/symmetric.mli: Fabric Peel_topology Tree
