lib/steiner/layer_peel.mli: Graph Peel_topology Tree
