lib/steiner/exact.ml: Array Graph List Peel_topology Peel_util
