lib/steiner/exact.mli: Graph Peel_topology
