lib/steiner/layer_peel.ml: Array Graph Hashtbl List Option Peel_topology Tree
