(** Optimal multicast tree in a failure-free (symmetric) Clos.

    Implements Lemma 2.1 of the paper: in a symmetric fabric the core
    tier collapses into a logical super-node, so the minimum-cost
    multicast tree is the unique layered tree through one (arbitrary)
    spine/core, built in [O(|D|)] time.  For a fat-tree the analogous
    construction routes through one aggregation switch per involved pod
    and a single core switch; edges are only added for tiers the
    destination set actually needs (same-ToR, same-pod and cross-pod
    destinations each stop at the lowest sufficient tier).

    Endpoints may be GPUs or hosts; either way each endpoint hangs
    directly off its ToR (GPUs through their dedicated NIC), which is
    where in-network multicast replicates the last copy. *)

open Peel_topology

val build : Fabric.t -> source:int -> dests:int list -> Tree.t
(** Raises [Invalid_argument] if a required link is down (the fabric is
    not symmetric) or if [source]/[dests] are not endpoints.  The source
    is removed from [dests] if present. *)

val cost_lower_bound : Fabric.t -> source:int -> dests:int list -> int
(** The bandwidth-optimal link count for the group, i.e. the cost of the
    tree [build] returns; exposed separately so benchmarks can report
    the optimum without materializing the tree. *)
