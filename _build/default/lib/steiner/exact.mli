(** Exact minimum Steiner tree via the Dreyfus–Wagner dynamic program.

    Exponential in the number of terminals (3^q subsets), so it is only
    usable for small groups — which is exactly its role here: a ground
    truth against which the layer-peeling greedy's approximation quality
    is measured (paper §2.3 / the "within 1.4% of the Steiner optimum"
    claim).  Unit link costs; only up links are considered. *)

open Peel_topology

val max_terminals : int
(** Hard cap on the terminal count (12). *)

val steiner_cost : Graph.t -> terminals:int list -> int option
(** Minimum number of links connecting all terminals; [None] if they
    are not mutually reachable. Raises [Invalid_argument] if more than
    [max_terminals] distinct terminals are given. Terminal lists of
    size 0 or 1 cost 0. *)
