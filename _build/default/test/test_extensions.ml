(* Tests for the extensions beyond the paper's six broadcast schemes:
   NCCL double binary tree, multi-tree PEEL striping, telemetry, and the
   allgather / reduce / allreduce collectives. *)

open Peel_topology
open Peel_workload
open Peel_collective
open Peel_baselines
module Rng = Peel_util.Rng

let fat4 () = Fabric.fat_tree ~k:4 ~hosts_per_tor:2 ~gpus_per_host:4 ()

let one_collective fabric ~scale ~bytes ~seed =
  let rng = Rng.create seed in
  let members = Spec.place fabric rng ~scale () in
  let source = List.hd members in
  {
    Spec.id = 0;
    arrival = 0.0;
    source;
    dests = List.filter (fun m -> m <> source) members;
    members;
    bytes;
  }

(* ------------------------------------------------------------------ *)
(* Double binary tree                                                  *)
(* ------------------------------------------------------------------ *)

let test_dbtree_structure () =
  let f = fat4 () in
  let eps = Fabric.endpoints f in
  let members = List.init 16 (fun i -> eps.(i)) in
  let source = List.hd members in
  let dt = Double_binary_tree.schedule f ~source ~members in
  (* Both trees span all non-source members. *)
  let spans edges =
    let receivers = List.map snd edges |> List.sort_uniq compare in
    receivers = List.sort compare (List.filter (fun m -> m <> source) members)
  in
  Alcotest.(check bool) "tree A spans" true (spans dt.Double_binary_tree.edges_a);
  Alcotest.(check bool) "tree B spans" true (spans dt.Double_binary_tree.edges_b);
  Alcotest.(check bool) "fanout <= 2" true (Double_binary_tree.max_fanout dt <= 2)

let test_dbtree_balanced_send_load () =
  (* The defining property: a non-source rank is interior in at most
     one tree, so its combined send load is at most 2 half-messages
     (vs the plain binary tree's 2 full messages). *)
  let f = fat4 () in
  let eps = Fabric.endpoints f in
  let members = List.init 16 (fun i -> eps.(i)) in
  let source = List.hd members in
  let dt = Double_binary_tree.schedule f ~source ~members in
  List.iter
    (fun m ->
      if m <> source then
        Alcotest.(check bool)
          (Printf.sprintf "member %d load <= 2" m)
          true
          (Double_binary_tree.send_load dt m <= 2))
    members

let test_dbtree_various_sizes () =
  let f = Fabric.fat_tree ~k:4 ~hosts_per_tor:4 ~gpus_per_host:4 () in
  let eps = Fabric.endpoints f in
  List.iter
    (fun n ->
      let members = List.init n (fun i -> eps.(i)) in
      let source = List.hd members in
      let dt = Double_binary_tree.schedule f ~source ~members in
      let receivers =
        List.map snd dt.Double_binary_tree.edges_a |> List.sort_uniq compare
      in
      Alcotest.(check int)
        (Printf.sprintf "n=%d tree A receivers" n)
        (n - 1) (List.length receivers))
    [ 2; 3; 5; 8; 13; 16; 17; 31; 32 ]

(* Property: for any member count, both trees span every non-source
   member, fanout stays <= 2, and no member is interior in both trees
   (send load <= 2 half-message children). *)
let prop_dbtree_invariants =
  QCheck.Test.make ~name:"double binary tree invariants" ~count:60
    QCheck.(int_range 2 100)
    (fun n ->
      let f = Fabric.leaf_spine ~spines:2 ~leaves:13 ~hosts_per_leaf:8 () in
      let eps = Fabric.endpoints f in
      let members = List.init n (fun i -> eps.(i)) in
      let source = List.hd members in
      let dt = Double_binary_tree.schedule f ~source ~members in
      let spans edges =
        List.sort_uniq compare (List.map snd edges)
        = List.sort compare (List.filter (fun m -> m <> source) members)
      in
      spans dt.Double_binary_tree.edges_a
      && spans dt.Double_binary_tree.edges_b
      && Double_binary_tree.max_fanout dt <= 2
      && List.for_all
           (fun m -> m = source || Double_binary_tree.send_load dt m <= 2)
           members)

let test_dbtree_scheme_runs () =
  let f = fat4 () in
  let spec = one_collective f ~scale:16 ~bytes:8e6 ~seed:1 in
  let out = Runner.run f Scheme.Dbtree [ spec ] in
  let cct = List.hd out.Runner.ccts in
  Alcotest.(check bool) "completes" true (cct > 0.0 && Float.is_finite cct);
  (* Double tree halves the interior send bottleneck: never slower than
     the plain binary tree on an idle fabric. *)
  let plain = List.hd (Runner.run f Scheme.Btree [ spec ]).Runner.ccts in
  Alcotest.(check bool) "not slower than plain tree" true (cct <= plain +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Multi-tree PEEL                                                     *)
(* ------------------------------------------------------------------ *)

let test_multitree_salts_diversify () =
  let f = Fabric.fat_tree ~k:8 ~hosts_per_tor:4 () in
  let hosts = Fabric.hosts f in
  let source = hosts.(0) in
  let dests = List.init 32 (fun i -> hosts.(64 + i)) in
  let g = Fabric.graph f in
  let t0 = Option.get (Peel_steiner.Layer_peel.build ~salt:0 g ~source ~dests) in
  let t1 = Option.get (Peel_steiner.Layer_peel.build ~salt:1 g ~source ~dests) in
  (* Different tie-breaks may shift greedy choices slightly; costs must
     stay within a few links of each other, and both trees valid. *)
  let c0 = Peel_steiner.Tree.cost t0 and c1 = Peel_steiner.Tree.cost t1 in
  Alcotest.(check bool) "costs close" true (abs (c0 - c1) <= 4);
  List.iter
    (fun t ->
      match Peel_steiner.Tree.validate g t ~dests with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ t0; t1 ];
  Alcotest.(check bool) "different links" true
    (List.sort compare (Peel_steiner.Tree.link_ids t0)
    <> List.sort compare (Peel_steiner.Tree.link_ids t1))

let test_multitree_valid_and_complete () =
  let f = fat4 () in
  let spec = one_collective f ~scale:32 ~bytes:8e6 ~seed:3 in
  let out = Runner.run f (Scheme.Peel_multitree 4) [ spec ] in
  Alcotest.(check bool) "completes" true (List.hd out.Runner.ccts > 0.0)

let test_multitree_spreads_load () =
  (* Striping across 4 trees must not use fewer distinct links than one
     tree. *)
  let f = Fabric.fat_tree ~k:8 ~hosts_per_tor:4 () in
  let spec = one_collective f ~scale:64 ~bytes:64e6 ~seed:4 in
  let used out =
    List.length
      (List.filter
         (fun r -> r.Peel_sim.Telemetry.utilization > 0.0)
         (Peel_sim.Telemetry.hottest out.Runner.telemetry
            ~n:(Graph.num_links (Fabric.graph f))))
  in
  let single = Runner.run f Scheme.Peel [ spec ] in
  let multi = Runner.run f (Scheme.Peel_multitree 4) [ spec ] in
  Alcotest.(check bool) "multi-tree touches >= links" true
    (used multi >= used single)

let test_scheme_string_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Scheme.to_string s ^ " roundtrips")
        true
        (Scheme.of_string (Scheme.to_string s) = Some s))
    Scheme.extended

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

let test_telemetry_utilization_bounds () =
  let f = fat4 () in
  let spec = one_collective f ~scale:16 ~bytes:8e6 ~seed:5 in
  let out = Runner.run f Scheme.Peel [ spec ] in
  let t = out.Runner.telemetry in
  Alcotest.(check bool) "max utilization in (0,1]" true
    (Peel_sim.Telemetry.max_utilization t > 0.0
    && Peel_sim.Telemetry.max_utilization t <= 1.0 +. 1e-9);
  let hottest = Peel_sim.Telemetry.hottest t ~n:5 in
  Alcotest.(check int) "asked for 5" 5 (List.length hottest);
  let rec descending = function
    | a :: (b :: _ as rest) ->
        a.Peel_sim.Telemetry.utilization >= b.Peel_sim.Telemetry.utilization
        && descending rest
    | _ -> true
  in
  Alcotest.(check bool) "descending" true (descending hottest)

let test_telemetry_tiers () =
  let f = fat4 () in
  let spec = one_collective f ~scale:16 ~bytes:8e6 ~seed:6 in
  let out = Runner.run f Scheme.Ring [ spec ] in
  let tiers = Peel_sim.Telemetry.tier_utilization out.Runner.telemetry in
  Alcotest.(check bool) "has gpu->tor tier" true
    (List.mem_assoc "gpu->tor" tiers);
  List.iter
    (fun (_, u) -> Alcotest.(check bool) "util >= 0" true (u >= 0.0))
    tiers

(* ------------------------------------------------------------------ *)
(* Allgather                                                           *)
(* ------------------------------------------------------------------ *)

let test_allgather_both_algos_complete () =
  let f = fat4 () in
  let spec = one_collective f ~scale:16 ~bytes:16e6 ~seed:7 in
  List.iter
    (fun algo ->
      let out = Allgather.run f algo [ spec ] in
      let cct = List.hd out.Runner.ccts in
      Alcotest.(check bool)
        (Allgather.algo_to_string algo ^ " completes")
        true
        (cct > 0.0 && Float.is_finite cct))
    [ Allgather.Ring_exchange; Allgather.Peel_multicast ]

let test_allgather_peel_beats_ring_at_scale () =
  let f = Fabric.fat_tree ~k:4 ~hosts_per_tor:4 ~gpus_per_host:4 () in
  let spec = one_collective f ~scale:64 ~bytes:64e6 ~seed:8 in
  let ring = List.hd (Allgather.run f Allgather.Ring_exchange [ spec ]).Runner.ccts in
  let peel = List.hd (Allgather.run f Allgather.Peel_multicast [ spec ]).Runner.ccts in
  Alcotest.(check bool) "peel allgather faster" true (peel < ring)

let test_allgather_ring_closed_form_small () =
  (* 2 members on the same rack: each shard makes 1 hop of bytes/2 over
     gpu->tor->gpu; CCT ~ serialization of two shards on disjoint NICs:
     both complete in about shard/bw + 2 hops of latency. *)
  let f = fat4 () in
  let eps = Fabric.endpoints f in
  let members = [ eps.(0); eps.(1) ] in
  let spec =
    {
      Spec.id = 0;
      arrival = 0.0;
      source = eps.(0);
      dests = [ eps.(1) ];
      members;
      bytes = 2e6;
    }
  in
  let out = Allgather.run f Allgather.Ring_exchange [ spec ] in
  let cct = List.hd out.Runner.ccts in
  (* shard = 1 MB; sibling GPUs share a server: NVLink via NVSwitch at
     900 GB/s, two hops. *)
  let expected = 2. *. (1e6 /. 900e9) +. 2e-7 in
  Alcotest.(check bool) "close to closed form" true
    (Float.abs (cct -. expected) < expected *. 0.5)

(* ------------------------------------------------------------------ *)
(* Reduce                                                              *)
(* ------------------------------------------------------------------ *)

let test_reduce_both_algos_complete () =
  let f = fat4 () in
  let spec = one_collective f ~scale:16 ~bytes:16e6 ~seed:9 in
  List.iter
    (fun algo ->
      let out = Reduce.run f algo [ spec ] in
      let cct = List.hd out.Runner.ccts in
      Alcotest.(check bool)
        (Reduce.algo_to_string algo ^ " completes")
        true
        (cct > 0.0 && Float.is_finite cct))
    [ Reduce.Ring_pass; Reduce.Btree_reduce ]

let test_reduce_tree_beats_ring_at_scale () =
  (* The accumulating ring is O(N) serial hops; the tree is O(log N).
     With one GPU per server every ring hop crosses the fabric, so the
     asymptotics dominate.  (With 8 GPUs/server most ring hops ride
     NVLink and the ring wins — which is exactly why NCCL uses rings.) *)
  let f = Fabric.fat_tree ~k:8 ~hosts_per_tor:4 ~gpus_per_host:1 () in
  let spec = one_collective f ~scale:64 ~bytes:32e6 ~seed:10 in
  let ring = List.hd (Reduce.run f Reduce.Ring_pass [ spec ]).Runner.ccts in
  let tree = List.hd (Reduce.run f Reduce.Btree_reduce [ spec ]).Runner.ccts in
  Alcotest.(check bool) "tree reduce faster" true (tree < ring)

let test_reduce_ring_wins_with_nvlink () =
  (* The complementary fact: dense NVLink placements favour the ring. *)
  let f = Fabric.fat_tree ~k:4 ~hosts_per_tor:4 ~gpus_per_host:4 () in
  let spec = one_collective f ~scale:64 ~bytes:32e6 ~seed:10 in
  let ring = List.hd (Reduce.run f Reduce.Ring_pass [ spec ]).Runner.ccts in
  let tree = List.hd (Reduce.run f Reduce.Btree_reduce [ spec ]).Runner.ccts in
  Alcotest.(check bool) "ring faster with NVLink" true (ring < tree)

let test_reduce_deterministic () =
  let f = fat4 () in
  let spec = one_collective f ~scale:16 ~bytes:8e6 ~seed:11 in
  let a = List.hd (Reduce.run f Reduce.Btree_reduce [ spec ]).Runner.ccts in
  let b = List.hd (Reduce.run f Reduce.Btree_reduce [ spec ]).Runner.ccts in
  Alcotest.(check (float 0.0)) "reproducible" a b

(* ------------------------------------------------------------------ *)
(* Allreduce                                                           *)
(* ------------------------------------------------------------------ *)

let test_allreduce_both_algos_complete () =
  let f = fat4 () in
  let spec = one_collective f ~scale:16 ~bytes:16e6 ~seed:12 in
  List.iter
    (fun algo ->
      let out = Allreduce.run f algo [ spec ] in
      let cct = List.hd out.Runner.ccts in
      Alcotest.(check bool)
        (Allreduce.algo_to_string algo ^ " completes")
        true
        (cct > 0.0 && Float.is_finite cct))
    [ Allreduce.Ring_rs_ag; Allreduce.Reduce_then_peel ]

let test_allreduce_slower_than_its_parts () =
  (* Sanity: allreduce cannot beat a bare broadcast of the same bytes. *)
  let f = fat4 () in
  let spec = one_collective f ~scale:32 ~bytes:32e6 ~seed:13 in
  let ar = List.hd (Allreduce.run f Allreduce.Reduce_then_peel [ spec ]).Runner.ccts in
  let bc = List.hd (Runner.run f Scheme.Peel [ spec ]).Runner.ccts in
  Alcotest.(check bool) "allreduce >= broadcast" true (ar >= bc -. 1e-9)

let test_allreduce_peel_competitive_at_scale () =
  (* With one GPU per server (every hop on the fabric) the pipelined
     reduce+multicast sits within ~2x of the bandwidth-optimal ring. *)
  let f = Fabric.fat_tree ~k:8 ~hosts_per_tor:4 ~gpus_per_host:1 () in
  let spec = one_collective f ~scale:64 ~bytes:64e6 ~seed:14 in
  let ring = List.hd (Allreduce.run f Allreduce.Ring_rs_ag [ spec ]).Runner.ccts in
  let peel = List.hd (Allreduce.run f Allreduce.Reduce_then_peel [ spec ]).Runner.ccts in
  Alcotest.(check bool) "within 2.5x of ring" true (peel < 2.5 *. ring)

(* ------------------------------------------------------------------ *)
(* Rail-optimized fabric end to end                                    *)
(* ------------------------------------------------------------------ *)

let rail_fabric () = Fabric.rail ~rails:4 ~groups:4 ~servers_per_group:4 ~spines:4 ()

let test_rail_plan_and_dataplane () =
  let f = rail_fabric () in
  let rng = Rng.create 61 in
  let members = Spec.place f rng ~scale:32 () in
  let source = List.hd members in
  let dests = List.tl members in
  let plan = Peel.Plan.build f ~source ~dests in
  (match Peel.Plan.validate f plan with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Peel.Dataplane.verify f plan with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_rail_broadcast_all_schemes () =
  let f = rail_fabric () in
  let spec = one_collective f ~scale:32 ~bytes:8e6 ~seed:62 in
  List.iter
    (fun scheme ->
      (* Orca's symmetric fallback and relays also must work on rails. *)
      let out = Runner.run f scheme [ spec ] in
      let cct = List.hd out.Runner.ccts in
      Alcotest.(check bool)
        (Scheme.to_string scheme ^ " on rails")
        true
        (cct > 0.0 && Float.is_finite cct))
    Scheme.all

let test_rail_multicast_beats_ring () =
  let f = rail_fabric () in
  let spec = one_collective f ~scale:64 ~bytes:64e6 ~seed:63 in
  let peel = List.hd (Runner.run f Scheme.Peel [ spec ]).Runner.ccts in
  let ring = List.hd (Runner.run f Scheme.Ring [ spec ]).Runner.ccts in
  Alcotest.(check bool) "peel < ring on rails" true (peel < ring)

let test_rail_failure_injection () =
  let f = rail_fabric () in
  let rng = Rng.create 64 in
  let failed = Fabric.fail_random f ~rng ~tier:`All ~fraction:0.1 () in
  Alcotest.(check bool) "failed some" true (List.length failed > 0);
  let spec = one_collective f ~scale:32 ~bytes:8e6 ~seed:65 in
  let cct = List.hd (Runner.run f Scheme.Peel [ spec ]).Runner.ccts in
  Alcotest.(check bool) "peel routes around" true (cct > 0.0);
  Graph.restore_all (Fabric.graph f)

let () =
  Alcotest.run "peel_extensions"
    [
      ( "double_binary_tree",
        [
          Alcotest.test_case "structure" `Quick test_dbtree_structure;
          Alcotest.test_case "balanced send load" `Quick test_dbtree_balanced_send_load;
          Alcotest.test_case "various sizes" `Quick test_dbtree_various_sizes;
          QCheck_alcotest.to_alcotest prop_dbtree_invariants;
          Alcotest.test_case "scheme runs" `Quick test_dbtree_scheme_runs;
        ] );
      ( "multitree",
        [
          Alcotest.test_case "salts diversify" `Quick test_multitree_salts_diversify;
          Alcotest.test_case "valid and complete" `Quick test_multitree_valid_and_complete;
          Alcotest.test_case "spreads load" `Quick test_multitree_spreads_load;
          Alcotest.test_case "scheme strings" `Quick test_scheme_string_roundtrip;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "utilization bounds" `Quick test_telemetry_utilization_bounds;
          Alcotest.test_case "tiers" `Quick test_telemetry_tiers;
        ] );
      ( "allgather",
        [
          Alcotest.test_case "both complete" `Quick test_allgather_both_algos_complete;
          Alcotest.test_case "peel beats ring at scale" `Quick
            test_allgather_peel_beats_ring_at_scale;
          Alcotest.test_case "closed form small" `Quick test_allgather_ring_closed_form_small;
        ] );
      ( "reduce",
        [
          Alcotest.test_case "both complete" `Quick test_reduce_both_algos_complete;
          Alcotest.test_case "tree beats ring at scale" `Quick
            test_reduce_tree_beats_ring_at_scale;
          Alcotest.test_case "ring wins with NVLink" `Quick
            test_reduce_ring_wins_with_nvlink;
          Alcotest.test_case "deterministic" `Quick test_reduce_deterministic;
        ] );
      ( "rail",
        [
          Alcotest.test_case "plan + dataplane" `Quick test_rail_plan_and_dataplane;
          Alcotest.test_case "all schemes run" `Quick test_rail_broadcast_all_schemes;
          Alcotest.test_case "multicast beats ring" `Quick test_rail_multicast_beats_ring;
          Alcotest.test_case "failure injection" `Quick test_rail_failure_injection;
        ] );
      ( "allreduce",
        [
          Alcotest.test_case "both complete" `Quick test_allreduce_both_algos_complete;
          Alcotest.test_case "not faster than broadcast" `Quick
            test_allreduce_slower_than_its_parts;
          Alcotest.test_case "competitive at scale" `Quick
            test_allreduce_peel_competitive_at_scale;
        ] );
    ]
