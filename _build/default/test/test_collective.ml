(* Tests for peel_collective: end-to-end broadcast execution for all six
   schemes, relative performance invariants the paper predicts, and the
   DCQCN guard-timer effect. *)

open Peel_topology
open Peel_workload
open Peel_collective
module Rng = Peel_util.Rng

let fat4 () = Fabric.fat_tree ~k:4 ~hosts_per_tor:2 ~gpus_per_host:4 ()

let one_broadcast fabric ~scale ~bytes ~seed =
  let rng = Rng.create seed in
  let members = Spec.place fabric rng ~scale () in
  let source = List.hd members in
  {
    Spec.id = 0;
    arrival = 0.0;
    source;
    dests = List.filter (fun m -> m <> source) members;
    members;
    bytes;
  }

let run_one fabric scheme spec =
  let out = Runner.run fabric scheme [ spec ] in
  match out.Runner.ccts with
  | [ cct ] -> cct
  | _ -> Alcotest.fail "expected one CCT"

(* ------------------------------------------------------------------ *)
(* Basic execution                                                     *)
(* ------------------------------------------------------------------ *)

let test_all_schemes_complete () =
  let f = fat4 () in
  let spec = one_broadcast f ~scale:16 ~bytes:1e6 ~seed:1 in
  List.iter
    (fun scheme ->
      let cct = run_one f scheme spec in
      Alcotest.(check bool)
        (Scheme.to_string scheme ^ " positive CCT")
        true
        (cct > 0.0 && Float.is_finite cct))
    Scheme.all

let test_deterministic_rerun () =
  let f = fat4 () in
  let spec = one_broadcast f ~scale:16 ~bytes:4e6 ~seed:2 in
  List.iter
    (fun scheme ->
      let a = run_one f scheme spec and b = run_one f scheme spec in
      Alcotest.(check (float 0.0)) (Scheme.to_string scheme ^ " reproducible") a b)
    Scheme.all

let test_empty_dests_completes_instantly () =
  let f = fat4 () in
  let eps = Fabric.endpoints f in
  let spec =
    {
      Spec.id = 0;
      arrival = 1.0;
      source = eps.(0);
      dests = [];
      members = [ eps.(0) ];
      bytes = 1e6;
    }
  in
  Alcotest.(check (float 0.0)) "zero CCT" 0.0 (run_one f Scheme.Optimal spec)

(* ------------------------------------------------------------------ *)
(* Paper-shaped relative performance (single collective, no load)      *)
(* ------------------------------------------------------------------ *)

let test_multicast_beats_unicast () =
  let f = fat4 () in
  let spec = one_broadcast f ~scale:32 ~bytes:8e6 ~seed:3 in
  let opt = run_one f Scheme.Optimal spec in
  let ring = run_one f Scheme.Ring spec in
  let tree = run_one f Scheme.Btree spec in
  Alcotest.(check bool) "optimal < ring" true (opt < ring);
  Alcotest.(check bool) "optimal < tree" true (opt < tree)

let test_peel_close_to_optimal () =
  let f = fat4 () in
  let spec = one_broadcast f ~scale:32 ~bytes:8e6 ~seed:4 in
  let opt = run_one f Scheme.Optimal spec in
  let peel = run_one f Scheme.Peel spec in
  Alcotest.(check bool) "peel >= optimal" true (peel >= opt -. 1e-12);
  Alcotest.(check bool) "peel within 2x of optimal" true (peel <= 2.0 *. opt)

let test_orca_pays_setup_delay () =
  let f = fat4 () in
  (* Small message: controller setup (~10 ms) dominates transfers. *)
  let spec = one_broadcast f ~scale:16 ~bytes:1e6 ~seed:5 in
  let opt = run_one f Scheme.Optimal spec in
  let orca = run_one f Scheme.Orca spec in
  Alcotest.(check bool) "orca >> optimal on small messages" true
    (orca > opt +. 1e-3)

let test_peel_no_setup_delay () =
  let f = fat4 () in
  let spec = one_broadcast f ~scale:16 ~bytes:1e6 ~seed:6 in
  let peel = run_one f Scheme.Peel spec in
  (* 1 MB over 100 Gbps fabric: well under a millisecond. *)
  Alcotest.(check bool) "peel starts immediately" true (peel < 2e-3)

let test_peel_prog_cores_between () =
  let f = fat4 () in
  (* Large message: the refinement kicks in mid-flight. *)
  let spec = one_broadcast f ~scale:32 ~bytes:256e6 ~seed:7 in
  let peel = run_one f Scheme.Peel spec in
  let prog = run_one f Scheme.Peel_prog_cores spec in
  let opt = run_one f Scheme.Optimal spec in
  Alcotest.(check bool) "prog >= optimal" true (prog >= opt -. 1e-12);
  Alcotest.(check bool) "prog <= peel + eps" true (prog <= peel +. 1e-6)

let test_ring_scales_linearly_tree_logarithmically () =
  (* Ring CCT grows roughly linearly in member count; at identical size
     the 64-member ring should be much slower than the 16-member one. *)
  let f = Fabric.fat_tree ~k:4 ~hosts_per_tor:4 ~gpus_per_host:4 () in
  let small = one_broadcast f ~scale:16 ~bytes:8e6 ~seed:8 in
  let big = one_broadcast f ~scale:64 ~bytes:8e6 ~seed:8 in
  let r16 = run_one f Scheme.Ring small in
  let r64 = run_one f Scheme.Ring big in
  Alcotest.(check bool) "ring grows superlinearly-ish" true (r64 > 1.5 *. r16);
  let o16 = run_one f Scheme.Optimal small in
  let o64 = run_one f Scheme.Optimal big in
  Alcotest.(check bool) "optimal is scale-insensitive" true (o64 < 2.0 *. o16)

(* ------------------------------------------------------------------ *)
(* Workload runs                                                       *)
(* ------------------------------------------------------------------ *)

let test_workload_all_complete () =
  let f = fat4 () in
  let rng = Rng.create 11 in
  let cs = Spec.poisson_broadcasts f rng ~n:20 ~scale:16 ~bytes:1e6 ~load:0.3 () in
  let out = Runner.run f Scheme.Peel cs in
  Alcotest.(check int) "20 CCTs" 20 (List.length out.Runner.ccts);
  List.iter
    (fun c -> Alcotest.(check bool) "finite" true (Float.is_finite c && c > 0.0))
    out.Runner.ccts;
  Alcotest.(check bool) "events counted" true (out.Runner.events > 0)

let test_load_inflates_tail () =
  (* The same workload at higher offered load must not finish faster on
     average. *)
  let f = fat4 () in
  let run load seed =
    let rng = Rng.create seed in
    let cs = Spec.poisson_broadcasts f rng ~n:30 ~scale:32 ~bytes:8e6 ~load () in
    (Runner.summarize (Runner.run f Scheme.Ring cs)).Peel_util.Stats.mean
  in
  let light = run 0.05 21 in
  let heavy = run 0.9 21 in
  Alcotest.(check bool) "heavier load is slower" true (heavy >= light *. 0.99)

(* ------------------------------------------------------------------ *)
(* Guard timer (paper: 12x p99 improvement for 64-GPU 32 MB broadcast)  *)
(* ------------------------------------------------------------------ *)

let test_guard_timer_improves_cct () =
  let f = Fabric.fat_tree ~k:4 ~hosts_per_tor:4 ~gpus_per_host:4 () in
  let rng = Rng.create 31 in
  (* Enough load that queues form and chunks get marked. *)
  let cs = Spec.poisson_broadcasts f rng ~n:15 ~scale:64 ~bytes:32e6 ~load:0.6 () in
  let run guard =
    let cc = Broadcast.Dcqcn { guard; ecn_delay = 10e-6 } in
    Runner.summarize (Runner.run ~cc f Scheme.Peel cs)
  in
  let with_guard = run (Some 50e-6) in
  let without = run None in
  Alcotest.(check bool) "guard lowers p99" true
    (with_guard.Peel_util.Stats.p99 < without.Peel_util.Stats.p99);
  Alcotest.(check bool) "guard lowers mean" true
    (with_guard.Peel_util.Stats.mean < without.Peel_util.Stats.mean)

let test_cc_noop_when_uncongested () =
  (* A single small broadcast never queues, so DCQCN must not slow it
     down (no marks, full line rate). *)
  let f = fat4 () in
  let spec = one_broadcast f ~scale:16 ~bytes:1e6 ~seed:41 in
  let plain = run_one f Scheme.Optimal spec in
  let out =
    Runner.run ~cc:(Broadcast.Dcqcn { guard = Some 50e-6; ecn_delay = 10e-6 })
      f Scheme.Optimal [ spec ]
  in
  match out.Runner.ccts with
  | [ cct ] ->
      Alcotest.(check bool) "within 25% of plain" true
        (cct < plain *. 1.25 +. 1e-6)
  | _ -> Alcotest.fail "expected one CCT"

(* ------------------------------------------------------------------ *)
(* Loss recovery end to end                                            *)
(* ------------------------------------------------------------------ *)

let test_broadcast_completes_under_loss () =
  let f = fat4 () in
  let spec = one_broadcast f ~scale:32 ~bytes:8e6 ~seed:51 in
  List.iter
    (fun scheme ->
      let loss = Peel_sim.Transfer.loss_model ~seed:7 ~prob:0.02 () in
      let out = Runner.run ~loss f scheme [ spec ] in
      let cct = List.hd out.Runner.ccts in
      Alcotest.(check bool)
        (Scheme.to_string scheme ^ " completes under loss")
        true
        (cct > 0.0 && Float.is_finite cct))
    [ Scheme.Ring; Scheme.Btree; Scheme.Optimal; Scheme.Peel ]

let test_loss_never_speeds_things_up () =
  let f = fat4 () in
  let spec = one_broadcast f ~scale:32 ~bytes:8e6 ~seed:52 in
  let clean = run_one f Scheme.Peel spec in
  let loss = Peel_sim.Transfer.loss_model ~seed:8 ~prob:0.05 () in
  let lossy = List.hd (Runner.run ~loss f Scheme.Peel [ spec ]).Runner.ccts in
  Alcotest.(check bool) "lossy >= clean" true (lossy >= clean -. 1e-12);
  Alcotest.(check bool) "repairs happened" true
    (loss.Peel_sim.Transfer.retransmissions > 0)

let () =
  Alcotest.run "peel_collective"
    [
      ( "execution",
        [
          Alcotest.test_case "all schemes complete" `Quick test_all_schemes_complete;
          Alcotest.test_case "deterministic" `Quick test_deterministic_rerun;
          Alcotest.test_case "empty dests" `Quick test_empty_dests_completes_instantly;
        ] );
      ( "paper_shape",
        [
          Alcotest.test_case "multicast beats unicast" `Quick test_multicast_beats_unicast;
          Alcotest.test_case "peel close to optimal" `Quick test_peel_close_to_optimal;
          Alcotest.test_case "orca pays setup" `Quick test_orca_pays_setup_delay;
          Alcotest.test_case "peel no setup" `Quick test_peel_no_setup_delay;
          Alcotest.test_case "prog cores between" `Quick test_peel_prog_cores_between;
          Alcotest.test_case "scaling shapes" `Quick test_ring_scales_linearly_tree_logarithmically;
        ] );
      ( "workload",
        [
          Alcotest.test_case "all complete" `Quick test_workload_all_complete;
          Alcotest.test_case "load inflates CCT" `Slow test_load_inflates_tail;
        ] );
      ( "ecmp",
        [
          Alcotest.test_case "no-ecmp funnels tree traffic" `Quick
            (fun () ->
              (* Tree schedules criss-cross pods: without per-flow hash
                 diversity, their flows pile onto the lowest-id core
                 path and CCT inflates. *)
              let f = Fabric.fat_tree ~k:4 ~hosts_per_tor:4 ~gpus_per_host:4 () in
              let rng = Rng.create 71 in
              let cs =
                Spec.poisson_broadcasts f rng ~n:10 ~scale:64 ~bytes:32e6
                  ~load:0.5 ()
              in
              let mean ecmp =
                (Runner.summarize (Runner.run ~ecmp f Scheme.Dbtree cs))
                  .Peel_util.Stats.mean
              in
              Alcotest.(check bool) "ecmp strictly helps trees" true
                (mean true < mean false));
        ] );
      ( "loss",
        [
          Alcotest.test_case "completes under loss" `Quick test_broadcast_completes_under_loss;
          Alcotest.test_case "loss never helps" `Quick test_loss_never_speeds_things_up;
        ] );
      ( "congestion",
        [
          Alcotest.test_case "guard timer improves" `Slow test_guard_timer_improves_cct;
          Alcotest.test_case "cc noop when idle" `Quick test_cc_noop_when_uncongested;
        ] );
    ]
