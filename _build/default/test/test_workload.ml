(* Tests for peel_workload: locality placement, offered-load
   calibration, Poisson arrival generation, fragmentation knob. *)

open Peel_topology
open Peel_workload
module Rng = Peel_util.Rng

let fat8 () = Fabric.fat_tree ~k:8 ~hosts_per_tor:4 ~gpus_per_host:8 ()

let test_place_contiguous_aligned () =
  let f = fat8 () in
  let rng = Rng.create 5 in
  let members = Spec.place f rng ~scale:64 () in
  Alcotest.(check int) "64 members" 64 (List.length members);
  (* Contiguous run in the endpoints array (locality order). *)
  let eps = Fabric.endpoints f in
  let pos = Hashtbl.create 1024 in
  Array.iteri (fun i e -> Hashtbl.replace pos e i) eps;
  let indices = List.map (Hashtbl.find pos) members |> List.sort compare in
  let first = List.hd indices in
  List.iteri
    (fun i idx -> Alcotest.(check int) "contiguous" (first + i) idx)
    indices;
  Alcotest.(check int) "server aligned" 0 (first mod 8)

let test_place_full_fabric () =
  let f = fat8 () in
  let rng = Rng.create 1 in
  let members = Spec.place f rng ~scale:1024 () in
  Alcotest.(check int) "everyone" 1024 (List.length members)

let test_place_errors () =
  let f = fat8 () in
  let rng = Rng.create 1 in
  Alcotest.(check bool) "too big" true
    (try ignore (Spec.place f rng ~scale:2048 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "too small" true
    (try ignore (Spec.place f rng ~scale:1 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad fragmentation" true
    (try ignore (Spec.place f rng ~scale:8 ~fragmentation:1.5 ()); false
     with Invalid_argument _ -> true)

let test_place_fragmentation_preserves_count () =
  let f = fat8 () in
  let rng = Rng.create 9 in
  for _ = 1 to 20 do
    let members = Spec.place f rng ~scale:64 ~fragmentation:0.5 () in
    Alcotest.(check int) "still 64" 64 (List.length members);
    Alcotest.(check int) "distinct" 64 (List.length (List.sort_uniq compare members))
  done

let test_fragmentation_spreads_racks () =
  let f = fat8 () in
  let count_racks members =
    List.map (fun e -> Fabric.attach_tor f e) members
    |> List.sort_uniq compare |> List.length
  in
  let rng = Rng.create 42 in
  let compact = Spec.place f rng ~scale:128 () in
  let spread = Spec.place f rng ~scale:128 ~fragmentation:0.8 () in
  Alcotest.(check bool) "fragmented uses >= racks" true
    (count_racks spread >= count_racks compact)

let test_mean_interarrival_formula () =
  let f = fat8 () in
  (* 1024 endpoints x 12.5e9 B/s capacity; scale 512, 8 MB, load 0.3. *)
  let expect = 8e6 *. 512.0 /. (0.3 *. 1024.0 *. 12.5e9) in
  Alcotest.(check (float 1e-12)) "formula" expect
    (Spec.mean_interarrival f ~scale:512 ~bytes:8e6 ~load:0.3)

let test_poisson_broadcasts_shape () =
  let f = fat8 () in
  let rng = Rng.create 77 in
  let cs = Spec.poisson_broadcasts f rng ~n:50 ~scale:64 ~bytes:1e6 ~load:0.3 () in
  Alcotest.(check int) "50 collectives" 50 (List.length cs);
  let rec check_monotone prev = function
    | [] -> ()
    | (c : Spec.collective) :: rest ->
        Alcotest.(check bool) "arrivals increase" true (c.arrival > prev);
        check_monotone c.arrival rest
  in
  check_monotone (-1.0) cs;
  List.iter
    (fun (c : Spec.collective) ->
      Alcotest.(check int) "ids unique members" 64 (List.length c.members);
      Alcotest.(check bool) "source is member" true (List.mem c.source c.members);
      Alcotest.(check bool) "source not in dests" false (List.mem c.source c.dests);
      Alcotest.(check int) "dests = members - 1" 63 (List.length c.dests))
    cs

let test_poisson_interarrival_statistics () =
  let f = fat8 () in
  let rng = Rng.create 123 in
  let cs = Spec.poisson_broadcasts f rng ~n:3000 ~scale:64 ~bytes:1e6 ~load:0.3 () in
  let mean_expected = Spec.mean_interarrival f ~scale:64 ~bytes:1e6 ~load:0.3 in
  let arr = List.map (fun (c : Spec.collective) -> c.Spec.arrival) cs in
  let last = List.nth arr (List.length arr - 1) in
  let empirical = last /. 3000.0 in
  Alcotest.(check bool) "empirical mean within 10%" true
    (Float.abs (empirical -. mean_expected) /. mean_expected < 0.1)

let test_poisson_deterministic () =
  let f = fat8 () in
  let gen seed =
    Spec.poisson_broadcasts f (Rng.create seed) ~n:10 ~scale:32 ~bytes:1e6
      ~load:0.3 ()
    |> List.map (fun (c : Spec.collective) -> (c.arrival, c.source))
  in
  Alcotest.(check bool) "same seed same workload" true (gen 4 = gen 4);
  Alcotest.(check bool) "different seed differs" true (gen 4 <> gen 5)

let prop_place_members_are_endpoints =
  QCheck.Test.make ~name:"placement picks real endpoints" ~count:50
    QCheck.(pair (int_range 0 10000) (int_range 2 96))
    (fun (seed, scale) ->
      let f = Fabric.leaf_spine ~spines:2 ~leaves:6 ~hosts_per_leaf:2 ~gpus_per_host:8 () in
      let rng = Rng.create seed in
      let members = Spec.place f rng ~scale () in
      let eps = Array.to_list (Fabric.endpoints f) in
      List.length members = scale && List.for_all (fun m -> List.mem m eps) members)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "peel_workload"
    [
      ( "place",
        [
          Alcotest.test_case "contiguous aligned" `Quick test_place_contiguous_aligned;
          Alcotest.test_case "full fabric" `Quick test_place_full_fabric;
          Alcotest.test_case "errors" `Quick test_place_errors;
          Alcotest.test_case "fragmentation count" `Quick test_place_fragmentation_preserves_count;
          Alcotest.test_case "fragmentation spreads" `Quick test_fragmentation_spreads_racks;
          qt prop_place_members_are_endpoints;
        ] );
      ( "poisson",
        [
          Alcotest.test_case "interarrival formula" `Quick test_mean_interarrival_formula;
          Alcotest.test_case "workload shape" `Quick test_poisson_broadcasts_shape;
          Alcotest.test_case "interarrival statistics" `Slow test_poisson_interarrival_statistics;
          Alcotest.test_case "deterministic" `Quick test_poisson_deterministic;
        ] );
    ]
