(* Tests for peel_baselines: ring and binary-tree schedules, traffic
   accounting (paper Fig. 1), the RSBF Bloom-filter header model
   (Fig. 3) and the Orca behavioural model. *)

open Peel_topology
open Peel_baselines
module Rng = Peel_util.Rng

let fabric_small () = Fabric.leaf_spine ~spines:2 ~leaves:2 ~hosts_per_leaf:4 ()

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)
(* ------------------------------------------------------------------ *)

let test_ring_order_and_hops () =
  let f = fabric_small () in
  let hosts = Array.to_list (Fabric.hosts f) in
  let source = List.nth hosts 2 in
  let r = Ring.schedule f ~source ~members:hosts in
  Alcotest.(check int) "order size" 8 (Array.length r.Ring.order);
  Alcotest.(check int) "source first" source r.Ring.order.(0);
  Alcotest.(check int) "N-1 hops" 7 (List.length r.Ring.hops);
  (* Every member except the source receives exactly once. *)
  let receivers = List.map snd r.Ring.hops |> List.sort compare in
  Alcotest.(check (list int)) "receivers"
    (List.sort compare (List.filter (fun h -> h <> source) hosts))
    receivers

let test_ring_wraps_around () =
  let f = fabric_small () in
  let hosts = Array.to_list (Fabric.hosts f) in
  let source = List.nth hosts 5 in
  let r = Ring.schedule f ~source ~members:hosts in
  (* Locality: successor of the last id wraps to the first id. *)
  let sorted = Array.of_list (List.sort compare hosts) in
  let last = sorted.(Array.length sorted - 1) in
  let first = sorted.(0) in
  Alcotest.(check bool) "wrap edge present" true
    (List.mem (last, first) r.Ring.hops)

let test_ring_rejects_singleton () =
  let f = fabric_small () in
  let h = (Fabric.hosts f).(0) in
  Alcotest.(check bool) "raises" true
    (try ignore (Ring.schedule f ~source:h ~members:[ h ]); false
     with Invalid_argument _ -> true)

let test_ring_rejects_nonmember_source () =
  let f = fabric_small () in
  let hosts = Array.to_list (Fabric.hosts f) in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Ring.schedule f ~source:(List.nth hosts 0) ~members:(List.tl hosts));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Binary tree                                                         *)
(* ------------------------------------------------------------------ *)

let test_tree_edges_count () =
  let f = fabric_small () in
  let hosts = Array.to_list (Fabric.hosts f) in
  let source = List.hd hosts in
  let t = Binary_tree.schedule f ~source ~members:hosts in
  Alcotest.(check int) "N-1 edges" 7 (List.length t.Binary_tree.edges);
  Alcotest.(check int) "depth log2" 3 t.Binary_tree.depth

let test_tree_fanout_at_most_two () =
  let f = fabric_small () in
  let hosts = Array.to_list (Fabric.hosts f) in
  let source = List.nth hosts 3 in
  let t = Binary_tree.schedule f ~source ~members:hosts in
  List.iter
    (fun m ->
      Alcotest.(check bool) "fanout <= 2" true
        (List.length (Binary_tree.children t m) <= 2))
    hosts

let test_tree_every_member_reached_once () =
  let f = fabric_small () in
  let hosts = Array.to_list (Fabric.hosts f) in
  let source = List.nth hosts 6 in
  let t = Binary_tree.schedule f ~source ~members:hosts in
  let receivers = List.map snd t.Binary_tree.edges |> List.sort compare in
  Alcotest.(check (list int)) "each non-source once"
    (List.sort compare (List.filter (fun h -> h <> source) hosts))
    receivers

let test_tree_root_is_source () =
  let f = fabric_small () in
  let hosts = Array.to_list (Fabric.hosts f) in
  let source = List.nth hosts 4 in
  let t = Binary_tree.schedule f ~source ~members:hosts in
  Alcotest.(check int) "root" source t.Binary_tree.order.(0);
  (* The source never appears as a child. *)
  Alcotest.(check bool) "source not a receiver" false
    (List.exists (fun (_, c) -> c = source) t.Binary_tree.edges)

(* ------------------------------------------------------------------ *)
(* Traffic accounting (Fig. 1)                                         *)
(* ------------------------------------------------------------------ *)

let test_fig1_ring_tree_overshoot () =
  (* The paper's Fig. 1 fabric: 2 spines, 2 leaves, 8 GPUs total (4 per
     leaf as hosts here), Broadcast from G0. *)
  let f = fabric_small () in
  let g = Fabric.graph f in
  let hosts = Array.to_list (Fabric.hosts f) in
  let source = List.hd hosts in
  let dests = List.tl hosts in
  let ring = Ring.schedule f ~source ~members:hosts in
  let tree = Binary_tree.schedule f ~source ~members:hosts in
  let opt = Peel_steiner.Symmetric.build f ~source ~dests in
  let ring_total = Traffic.total g (Traffic.link_loads g ring.Ring.hops) in
  let tree_total = Traffic.total g (Traffic.link_loads g tree.Binary_tree.edges) in
  let opt_total = Traffic.total g (Traffic.tree_loads g opt) in
  (* Optimal: 1 up + 1 to spine + 1 to other leaf + 7 down = 10 links. *)
  Alcotest.(check int) "optimal total" 10 opt_total;
  Alcotest.(check bool) "ring overshoots" true (ring_total > opt_total);
  Alcotest.(check bool) "tree overshoots" true (tree_total > opt_total);
  let ring_over = Traffic.overshoot ~baseline:ring_total ~optimal:opt_total in
  let tree_over = Traffic.overshoot ~baseline:tree_total ~optimal:opt_total in
  (* Paper: 70-80% more bandwidth; allow a generous band around it. *)
  Alcotest.(check bool) "ring overshoot 40-120%" true
    (ring_over >= 0.4 && ring_over <= 1.2);
  Alcotest.(check bool) "tree overshoot 40-200%" true
    (tree_over >= 0.4 && tree_over <= 2.0)

let test_link_loads_simple_path () =
  let f = fabric_small () in
  let g = Fabric.graph f in
  let hosts = Fabric.hosts f in
  let loads = Traffic.link_loads g [ (hosts.(0), hosts.(1)) ] in
  (* host0 -> leaf -> host1: two directed links. *)
  Alcotest.(check int) "2 links" 2 (Array.fold_left ( + ) 0 loads)

let test_core_load_counts_only_spine_links () =
  let f = fabric_small () in
  let g = Fabric.graph f in
  let hosts = Fabric.hosts f in
  (* Cross-leaf pair: host -> leaf -> spine -> leaf -> host. *)
  let loads = Traffic.link_loads g [ (hosts.(0), hosts.(7)) ] in
  Alcotest.(check int) "total 4" 4 (Array.fold_left ( + ) 0 loads);
  Alcotest.(check int) "core 2" 2 (Traffic.core_load g loads)

let test_overshoot_math () =
  Alcotest.(check (float 1e-9)) "80%" 0.8 (Traffic.overshoot ~baseline:18 ~optimal:10)

(* ------------------------------------------------------------------ *)
(* RSBF model (Fig. 3)                                                 *)
(* ------------------------------------------------------------------ *)

let test_rsbf_bits_per_element () =
  (* 1% fpr ~ 9.57 bits/element, the classic Bloom filter figure. *)
  let b = Rsbf.bits_per_element ~fpr:0.01 in
  Alcotest.(check bool) "9.5 +- 0.2" true (Float.abs (b -. 9.57) < 0.2)

let test_rsbf_header_growth_in_k () =
  let sizes =
    List.map (fun k -> Rsbf.header_bytes ~k ~fpr:0.05) [ 4; 8; 16; 32; 64 ]
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone in k" true (increasing sizes)

let test_rsbf_mtu_crossing () =
  (* Paper Fig. 3: even at 20% FPR the header exceeds one MTU once the
     degree passes 32; at small k it fits easily. *)
  Alcotest.(check bool) "k=8 fits" false (Rsbf.exceeds_mtu ~k:8 ~fpr:0.20 ());
  Alcotest.(check bool) "k=16 fits" false (Rsbf.exceeds_mtu ~k:16 ~fpr:0.20 ());
  Alcotest.(check bool) "k=64 explodes" true (Rsbf.exceeds_mtu ~k:64 ~fpr:0.20 ());
  (* Stricter FPRs cross earlier. *)
  Alcotest.(check bool) "k=32 at 1% explodes" true (Rsbf.exceeds_mtu ~k:32 ~fpr:0.01 ())

let test_rsbf_bandwidth_overhead_over_100pct () =
  (* Paper: "bandwidth overhead surpasses 100%" — with MTU-sized
     payloads at k=64 the header is bigger than the payload. *)
  Alcotest.(check bool) "over 100%" true
    (Rsbf.bandwidth_overhead ~k:64 ~fpr:0.20 ~payload:1500 > 1.0)

let test_rsbf_false_positive_links () =
  let fp = Rsbf.expected_false_positive_links ~k:16 ~fpr:0.10 in
  Alcotest.(check bool) "positive" true (fp > 0.0);
  let fp_low = Rsbf.expected_false_positive_links ~k:16 ~fpr:0.01 in
  Alcotest.(check bool) "scales with fpr" true (fp > fp_low)

let prop_rsbf_monotone_in_fpr =
  QCheck.Test.make ~name:"rsbf header shrinks as fpr grows" ~count:50
    QCheck.(pair (int_range 1 5) (float_range 0.01 0.15))
    (fun (i, fpr) ->
      let k = 4 * (1 lsl i) in
      let k = if k > 64 then 64 else k in
      Rsbf.header_bytes ~k ~fpr > Rsbf.header_bytes ~k ~fpr:(fpr +. 0.05))

(* ------------------------------------------------------------------ *)
(* Orca model                                                          *)
(* ------------------------------------------------------------------ *)

let test_orca_plan_agents_one_per_server () =
  let f = Fabric.leaf_spine ~spines:2 ~leaves:4 ~hosts_per_leaf:2 ~gpus_per_host:4 () in
  let gpus = Fabric.gpus f in
  let source = gpus.(0) in
  (* Destinations: all GPUs of servers 2 and 3 (8 GPUs). *)
  let dests = List.init 8 (fun i -> gpus.(8 + i)) in
  let rng = Rng.create 7 in
  let plan = Orca.plan f ~rng ~source ~dests in
  (* Fabric tree reaches exactly 2 agents (one per server); 6 members
     come via NVLink relays. *)
  let tree_dests =
    List.filter (fun d -> Peel_steiner.Tree.mem plan.Orca.tree d) dests
  in
  Alcotest.(check int) "2 agents in tree" 2 (List.length tree_dests);
  Alcotest.(check int) "6 relays" 6 (List.length plan.Orca.relays);
  (* Every dest is either in the tree or relayed to. *)
  List.iter
    (fun d ->
      let covered =
        Peel_steiner.Tree.mem plan.Orca.tree d
        || List.exists (fun (_, m) -> m = d) plan.Orca.relays
      in
      Alcotest.(check bool) "covered" true covered)
    dests

let test_orca_setup_delay_distribution () =
  let rng = Rng.create 11 in
  let acc = Peel_util.Stats.Online.create () in
  for _ = 1 to 5000 do
    let d = Orca.sample_setup_delay rng in
    Alcotest.(check bool) "nonneg" true (d >= 0.0);
    Peel_util.Stats.Online.add acc d
  done;
  (* Truncation at 0 pulls the mean slightly above 10 ms. *)
  let mu = Peel_util.Stats.Online.mean acc in
  Alcotest.(check bool) "mean near 10-11 ms" true (mu > 0.009 && mu < 0.013)

let test_orca_relays_within_server () =
  let f = Fabric.leaf_spine ~spines:2 ~leaves:4 ~hosts_per_leaf:2 ~gpus_per_host:4 () in
  let gpus = Fabric.gpus f in
  let source = gpus.(0) in
  let dests = List.init 8 (fun i -> gpus.(8 + i)) in
  let rng = Rng.create 7 in
  let plan = Orca.plan f ~rng ~source ~dests in
  Alcotest.(check bool) "has relays" true (plan.Orca.relays <> []);
  List.iter
    (fun (agent, member) ->
      Alcotest.(check int) "same server"
        (Fabric.endpoint_host f agent)
        (Fabric.endpoint_host f member))
    plan.Orca.relays

let test_orca_host_fabric_no_relays () =
  (* Without GPUs the server is the endpoint: one agent per host, no
     relays — Orca degenerates to tree + setup delay. *)
  let f = Fabric.leaf_spine ~spines:2 ~leaves:4 ~hosts_per_leaf:4 () in
  let hosts = Fabric.hosts f in
  let source = hosts.(0) in
  let dests = List.init 8 (fun i -> hosts.(4 + i)) in
  let plan = Orca.plan f ~rng:(Rng.create 7) ~source ~dests in
  Alcotest.(check int) "no relays" 0 (List.length plan.Orca.relays);
  List.iter
    (fun d ->
      Alcotest.(check bool) "in tree" true (Peel_steiner.Tree.mem plan.Orca.tree d))
    dests

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "peel_baselines"
    [
      ( "ring",
        [
          Alcotest.test_case "order and hops" `Quick test_ring_order_and_hops;
          Alcotest.test_case "wraps around" `Quick test_ring_wraps_around;
          Alcotest.test_case "rejects singleton" `Quick test_ring_rejects_singleton;
          Alcotest.test_case "rejects bad source" `Quick test_ring_rejects_nonmember_source;
        ] );
      ( "binary_tree",
        [
          Alcotest.test_case "edge count/depth" `Quick test_tree_edges_count;
          Alcotest.test_case "fanout <= 2" `Quick test_tree_fanout_at_most_two;
          Alcotest.test_case "members reached once" `Quick test_tree_every_member_reached_once;
          Alcotest.test_case "root is source" `Quick test_tree_root_is_source;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "fig1 overshoot" `Quick test_fig1_ring_tree_overshoot;
          Alcotest.test_case "simple path" `Quick test_link_loads_simple_path;
          Alcotest.test_case "core load" `Quick test_core_load_counts_only_spine_links;
          Alcotest.test_case "overshoot math" `Quick test_overshoot_math;
        ] );
      ( "rsbf",
        [
          Alcotest.test_case "bits per element" `Quick test_rsbf_bits_per_element;
          Alcotest.test_case "header grows in k" `Quick test_rsbf_header_growth_in_k;
          Alcotest.test_case "MTU crossing" `Quick test_rsbf_mtu_crossing;
          Alcotest.test_case "bandwidth overhead" `Quick test_rsbf_bandwidth_overhead_over_100pct;
          Alcotest.test_case "false positive links" `Quick test_rsbf_false_positive_links;
          qt prop_rsbf_monotone_in_fpr;
        ] );
      ( "orca",
        [
          Alcotest.test_case "one agent per server" `Quick test_orca_plan_agents_one_per_server;
          Alcotest.test_case "setup delay distribution" `Slow test_orca_setup_delay_distribution;
          Alcotest.test_case "relays within server" `Quick test_orca_relays_within_server;
          Alcotest.test_case "host fabric no relays" `Quick test_orca_host_fabric_no_relays;
        ] );
    ]
