test/test_collective.ml: Alcotest Array Broadcast Fabric Float List Peel_collective Peel_sim Peel_topology Peel_util Peel_workload Runner Scheme Spec
