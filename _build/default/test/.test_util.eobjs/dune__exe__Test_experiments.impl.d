test/test_experiments.ml: Alcotest Common Exp_approx Exp_fig1 Exp_fig3 Exp_state Exp_tenancy List Peel_experiments
