test/test_workload.ml: Alcotest Array Fabric Float Hashtbl List Peel_topology Peel_util Peel_workload QCheck QCheck_alcotest Spec
