test/test_baselines.ml: Alcotest Array Binary_tree Fabric Float List Orca Peel_baselines Peel_steiner Peel_topology Peel_util QCheck QCheck_alcotest Ring Rsbf Traffic
