test/test_plan.ml: Alcotest Array Fabric Fat_tree Graph List Peel Peel_prefix Peel_steiner Peel_topology Peel_util QCheck QCheck_alcotest
