test/test_sim.ml: Alcotest Array Dcqcn Engine Float Graph Hashtbl Link_state List Peel_sim Peel_steiner Peel_topology QCheck QCheck_alcotest Transfer
