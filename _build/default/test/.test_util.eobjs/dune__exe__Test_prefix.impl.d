test/test_prefix.ml: Alcotest Array Cover Header List Peel_prefix Peel_util Printf QCheck QCheck_alcotest Rules
