test/test_util.ml: Alcotest Array Bits Float Gen List Pairing_heap Peel_util QCheck QCheck_alcotest Rng Stats String Table
