test/test_topology.ml: Alcotest Array Fabric Fat_tree Graph Leaf_spine List Peel_topology Peel_util QCheck QCheck_alcotest Rail
