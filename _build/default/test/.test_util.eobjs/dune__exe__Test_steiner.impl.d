test/test_steiner.ml: Alcotest Array Exact Fabric Fat_tree Graph Layer_peel Leaf_spine List Option Peel_steiner Peel_topology Peel_util QCheck QCheck_alcotest String Symmetric Tree
