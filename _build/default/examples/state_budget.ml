(* State budget: why PEEL fits where IP multicast and Bloom filters do
   not.  Sweeps fat-tree degrees and placement fragmentation, printing
   the switch-state and header numbers the paper's §3 argues from.

   Run with:  dune exec examples/state_budget.exe *)

open Peel_prefix
module Rng = Peel_util.Rng

let () =
  print_endline "switch state per aggregation switch, by fat-tree degree:";
  Peel_util.Table.print
    ~header:[ "k"; "hosts"; "PEEL static rules"; "naive IP multicast"; "RSBF header @5% FPR" ]
    (List.map
       (fun k ->
         [
           string_of_int k;
           string_of_int (k * k * k / 4);
           string_of_int (Rules.peel_entries ~k);
           Printf.sprintf "%.1e entries" (Rules.naive_ipmc_entries ~k);
           Printf.sprintf "%.0f B" (Peel_baselines.Rsbf.header_bytes ~k ~fpr:0.05);
         ])
       [ 8; 16; 32; 64; 128 ]);
  print_newline ();

  (* Fragmentation: how scattered placements inflate the send plan. *)
  print_endline "cover sets for one pod of a 64-ary fat-tree (m = 5, 32 racks):";
  let rng = Rng.create 11 in
  let m = 5 in
  List.iter
    (fun (label, targets) ->
      let exact = Cover.exact_cover ~m targets in
      let budgeted = Cover.budgeted_cover ~m ~budget:4 targets in
      Printf.printf
        "  %-28s exact: %2d prefixes | budget 4: %d prefixes, %2d racks over-covered\n"
        label (List.length exact) (List.length budgeted)
        (Cover.over_coverage ~m budgeted ~targets))
    [
      ("contiguous racks 0-15", List.init 16 (fun i -> i));
      ("contiguous racks 5-20", List.init 16 (fun i -> 5 + i));
      ("every other rack", List.init 16 (fun i -> 2 * i));
      ( "random 16 of 32",
        Rng.sample_without_replacement rng 32 16 );
    ];
  print_newline ();

  (* Header: the wire cost of selecting those rules. *)
  print_endline "PEEL header size (prefix value + length fields):";
  Peel_util.Table.print
    ~header:[ "k"; "header bits"; "header bytes" ]
    (List.map
       (fun k ->
         [
           string_of_int k;
           string_of_int (Header.header_bits ~k);
           string_of_int (Header.header_bytes ~k);
         ])
       [ 8; 16; 32; 64; 128 ]);
  print_endline "(the paper's budget: under 8 B per packet — all rows qualify)"
