examples/training_step.ml: Allgather Allreduce Fabric Float List Peel_collective Peel_sim Peel_topology Peel_util Peel_workload Printf Reduce Runner Scheme Spec
