examples/gradient_broadcast.mli:
