examples/quickstart.ml: Array List Peel Printf
