examples/failure_drill.ml: Fabric Graph List Peel Peel_collective Peel_steiner Peel_topology Peel_util Peel_workload Printf Runner Scheme Spec
