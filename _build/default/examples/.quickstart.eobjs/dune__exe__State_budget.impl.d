examples/state_budget.ml: Cover Header List Peel_baselines Peel_prefix Peel_util Printf Rules
