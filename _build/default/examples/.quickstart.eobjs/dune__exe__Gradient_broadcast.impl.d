examples/gradient_broadcast.ml: Fabric Float List Option Peel Peel_baselines Peel_collective Peel_topology Peel_util Peel_workload Printf Runner Scheme Spec
