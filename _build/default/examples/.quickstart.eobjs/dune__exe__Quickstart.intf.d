examples/quickstart.mli:
