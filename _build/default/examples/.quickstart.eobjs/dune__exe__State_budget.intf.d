examples/state_budget.mli:
