(* Failure drill: watch the layer-peeling greedy route a collective
   around dead links in an asymmetric leaf-spine, and what that does to
   completion time versus unicast baselines.

   Run with:  dune exec examples/failure_drill.exe *)

open Peel_topology
open Peel_workload
open Peel_collective
module Rng = Peel_util.Rng

let () =
  let fabric =
    Fabric.leaf_spine ~spines:16 ~leaves:48 ~hosts_per_leaf:2 ~gpus_per_host:8 ()
  in
  let g = Fabric.graph fabric in
  Printf.printf "%s\n\n" (Fabric.describe fabric);
  let rng = Rng.create 7 in
  let members = Spec.place fabric rng ~scale:64 () in
  let source = List.hd members in
  let dests = List.filter (fun m -> m <> source) members in
  let spec = { Spec.id = 0; arrival = 0.0; source; dests; members; bytes = 8e6 } in
  List.iter
    (fun pct ->
      Graph.restore_all g;
      let failed =
        if pct = 0 then []
        else
          Fabric.fail_random fabric ~rng:(Rng.create (100 + pct)) ~tier:`All
            ~fraction:(float_of_int pct /. 100.0)
            ()
      in
      let tree =
        match Peel_steiner.Layer_peel.build g ~source ~dests with
        | Some t -> t
        | None -> failwith "unreachable"
      in
      (match Peel_steiner.Tree.validate g tree ~dests with
      | Ok () -> ()
      | Error e -> failwith e);
      let cct scheme = List.hd (Runner.run fabric scheme [ spec ]).Runner.ccts in
      Printf.printf
        "%2d%% links down (%3d cables): greedy tree %d links, depth %d | CCT peel %s, ring %s, tree %s\n%!"
        pct (List.length failed)
        (Peel_steiner.Tree.cost tree)
        (Peel_steiner.Tree.max_depth tree)
        (Peel_util.Table.fsec (cct Scheme.Peel))
        (Peel_util.Table.fsec (cct Scheme.Ring))
        (Peel_util.Table.fsec (cct Scheme.Btree)))
    [ 0; 1; 2; 4; 8; 10; 20 ];
  Graph.restore_all g;
  print_newline ();
  Printf.printf
    "the greedy tree never needs switch-state updates: the same %d static rules serve every draw\n"
    (Peel.switch_rules fabric)
