(* Training step: the collectives a data-parallel training iteration
   actually issues — allreduce for gradients, allgather for sharded
   parameters, broadcast for checkpoints — compared across ring-based
   and PEEL-based algorithms, with link telemetry.

   Run with:  dune exec examples/training_step.exe *)

open Peel_topology
open Peel_workload
open Peel_collective
module Rng = Peel_util.Rng

let collective fabric ~scale ~bytes =
  let rng = Rng.create 99 in
  let members = Spec.place fabric rng ~scale () in
  let source = List.hd members in
  {
    Spec.id = 0;
    arrival = 0.0;
    source;
    dests = List.filter (fun m -> m <> source) members;
    members;
    bytes;
  }

let () =
  (* One NIC'd GPU per server: every hop crosses the fabric, the regime
     where algorithm choice matters most. *)
  let fabric = Fabric.fat_tree ~k:8 ~hosts_per_tor:4 ~gpus_per_host:1 () in
  Printf.printf "%s — 64 workers, 64 MB gradients\n\n" (Fabric.describe fabric);
  let spec = collective fabric ~scale:64 ~bytes:64e6 in
  let cct out = List.hd out.Runner.ccts in
  let rows =
    [
      ( "broadcast (checkpoint push)",
        [
          ("ring", cct (Runner.run fabric Scheme.Ring [ spec ]));
          ("double tree", cct (Runner.run fabric Scheme.Dbtree [ spec ]));
          ("peel multicast", cct (Runner.run fabric Scheme.Peel [ spec ]));
        ] );
      ( "allgather (sharded params)",
        [
          ("ring", cct (Allgather.run fabric Allgather.Ring_exchange [ spec ]));
          ("peel multicast", cct (Allgather.run fabric Allgather.Peel_multicast [ spec ]));
        ] );
      ( "reduce (loss/metrics)",
        [
          ("ring", cct (Reduce.run fabric Reduce.Ring_pass [ spec ]));
          ("tree", cct (Reduce.run fabric Reduce.Btree_reduce [ spec ]));
        ] );
      ( "allreduce (gradients)",
        [
          ("ring (rs+ag)", cct (Allreduce.run fabric Allreduce.Ring_rs_ag [ spec ]));
          ("tree-reduce + peel", cct (Allreduce.run fabric Allreduce.Reduce_then_peel [ spec ]));
        ] );
    ]
  in
  List.iter
    (fun (title, entries) ->
      Printf.printf "%s\n" title;
      let best = List.fold_left (fun a (_, c) -> Float.min a c) infinity entries in
      List.iter
        (fun (name, c) ->
          Printf.printf "  %-20s %10s  %s\n" name (Peel_util.Table.fsec c)
            (if c = best then "<- fastest" else Peel_util.Table.ffactor (c /. best)))
        entries;
      print_newline ())
    rows;
  (* Where do the bytes actually go?  Telemetry from the allreduce runs. *)
  let show title algo =
    let out = Allreduce.run fabric algo [ spec ] in
    Printf.printf "%s — mean utilization by tier over the run:\n" title;
    List.iter
      (fun (tier, u) ->
        if u > 1e-6 then Printf.printf "  %-12s %5.1f%%\n" tier (100.0 *. u))
      (Peel_sim.Telemetry.tier_utilization out.Runner.telemetry);
    print_newline ()
  in
  show "ring allreduce" Allreduce.Ring_rs_ag;
  show "tree-reduce + peel broadcast" Allreduce.Reduce_then_peel
