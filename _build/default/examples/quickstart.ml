(* Quickstart: build a fabric, plan a multicast, inspect what PEEL
   installs and sends.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* An 8-ary fat-tree with 4 servers per rack and 8 GPUs per server —
     the paper's evaluation fabric (1024 GPUs). *)
  let fabric = Peel.Fabric.fat_tree ~k:8 ~hosts_per_tor:4 ~gpus_per_host:8 () in
  Printf.printf "fabric: %s\n" (Peel.Fabric.describe fabric);

  (* A training job bin-packed onto GPUs 256..383 (one pod). *)
  let gpus = Peel.Fabric.endpoints fabric in
  let members = List.init 128 (fun i -> gpus.(256 + i)) in
  let source = List.hd members in
  let dests = List.tl members in

  (* 1. The multicast tree (optimal here: the fabric is healthy). *)
  (match Peel.multicast_tree fabric ~source ~dests with
  | None -> failwith "destinations unreachable"
  | Some tree ->
      Printf.printf "multicast tree: %d links, depth %d (vs %d unicast sends)\n"
        (Peel.Tree.cost tree) (Peel.Tree.max_depth tree) (List.length dests));

  (* 2. The prefix plan: what the source actually emits. *)
  let plan = Peel.plan fabric ~source ~dests in
  Printf.printf "send plan: %d packet(s), %d B header each\n"
    (Peel.Plan.num_packets plan) plan.Peel.Plan.header_bytes;
  List.iter
    (fun p ->
      let pod_str =
        match p.Peel.Plan.pod_prefix with
        | Some pp -> Printf.sprintf "pods %s" (Peel.Cover.to_string ~m:3 pp)
        | None -> "single pod"
      in
      Printf.printf "  packet -> %s, racks %s (%d endpoints)\n" pod_str
        (Peel.Cover.to_string ~m:2 p.Peel.Plan.tor_prefix)
        (List.length p.Peel.Plan.endpoints))
    plan.Peel.Plan.packets;

  (* 3. The static switch state making that work: k-1 rules, installed
     once, never touched again. *)
  Printf.printf "static TCAM rules per aggregation switch: %d\n"
    (Peel.switch_rules fabric);
  List.iter
    (fun r ->
      Printf.printf "  match %s -> %d port(s)\n"
        (Peel.Cover.to_string ~m:2 r.Peel.Rules.prefix)
        (List.length r.Peel.Rules.ports))
    (Peel.Rules.rules (Peel.state_table fabric))
