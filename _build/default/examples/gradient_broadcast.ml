(* Gradient broadcast for a large model: a parameter server pushes a
   512 MB shard to 512 GPUs, the workload the paper's introduction
   motivates.  Simulates the push under all six schemes and prints the
   collective completion times.

   Run with:  dune exec examples/gradient_broadcast.exe *)

open Peel_topology
open Peel_workload
open Peel_collective
module Rng = Peel_util.Rng

let () =
  let fabric = Fabric.fat_tree ~k:8 ~hosts_per_tor:4 ~gpus_per_host:8 () in
  let rng = Rng.create 2024 in
  let members = Spec.place fabric rng ~scale:512 () in
  let source = List.hd members in
  let spec =
    {
      Spec.id = 0;
      arrival = 0.0;
      source;
      dests = List.filter (fun m -> m <> source) members;
      members;
      bytes = 512e6;
    }
  in
  Printf.printf "%s — broadcasting 512 MB to 512 GPUs\n\n"
    (Fabric.describe fabric);
  let rows =
    List.map
      (fun scheme ->
        let out = Runner.run fabric scheme [ spec ] in
        let cct = List.hd out.Runner.ccts in
        (scheme, cct, out.Runner.events))
      Scheme.all
  in
  let best = List.fold_left (fun acc (_, c, _) -> Float.min acc c) infinity rows in
  Peel_util.Table.print
    ~header:[ "scheme"; "CCT"; "vs best"; "sim events" ]
    (List.map
       (fun (scheme, cct, events) ->
         [
           Scheme.to_string scheme;
           Peel_util.Table.fsec cct;
           Peel_util.Table.ffactor (cct /. best);
           string_of_int events;
         ])
       rows);
  print_newline ();
  (* The punchline the paper opens with: unicast schedules move the same
     bytes many times; multicast moves them once. *)
  let g = Fabric.graph fabric in
  let ring = Peel_baselines.Ring.schedule fabric ~source ~members in
  let ring_links =
    Peel_baselines.Traffic.total g
      (Peel_baselines.Traffic.link_loads g ring.Peel_baselines.Ring.hops)
  in
  let tree = Option.get (Peel.multicast_tree fabric ~source ~dests:spec.dests) in
  let tree_links =
    Peel_baselines.Traffic.total g (Peel_baselines.Traffic.tree_loads g tree)
  in
  Printf.printf
    "fabric-link traversals: ring %d vs multicast %d — every traversal is 512 MB on the wire\n"
    ring_links tree_links
