(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index) and times the core
   algorithms with Bechamel.

   Usage:
     dune exec bench/main.exe               # full run, all experiments
     dune exec bench/main.exe -- quick      # reduced trial counts
     dune exec bench/main.exe -- fig5 fig7  # selected experiments
     dune exec bench/main.exe -- micro      # Bechamel micro-benchmarks
     dune exec bench/main.exe -- -j 4 quick # 4 worker domains
     dune exec bench/main.exe -- guard      # drift check vs BENCH.json

   Every run (except [guard]) also writes BENCH.json (schema
   peel-bench/2) to the invocation directory: per-experiment wall time
   (plus speedup against the committed baseline when comparable),
   Bechamel ns/run per algorithm, the worker count, and a headline CCT
   comparison across the schemes.

   [guard] recomputes the deterministic sections (headline CCTs, the
   Quick failover and refinement tables) plus a jobs=1 vs jobs=4 sweep
   and compares them against the committed BENCH.json: any numeric
   drift means a simulation-behaviour change and exits non-zero.  It
   writes nothing. *)

open Peel_experiments
module Rng = Peel_util.Rng
module Json = Peel_util.Json
module Pool = Peel_util.Pool

let experiments : (string * string * (Common.mode -> unit)) list =
  [
    ("fig1", "E1: Broadcast bandwidth, Ring/Tree vs optimal", Exp_fig1.run);
    ("fig3", "E2: RSBF Bloom-filter header overhead", Exp_fig3.run);
    ("fig4", "E3: Orca controller-overhead inflation", Exp_fig4.run);
    ("fig5", "E4: CCT vs message size, all schemes", Exp_fig5.run);
    ("fig6", "E5: CCT vs scale", Exp_fig6.run);
    ("fig7", "E6: robustness to failures", Exp_fig7.run);
    ("state", "E7: switch state and header accounting", Exp_state.run);
    ("guard", "E8: DCQCN guard timer ablation", Exp_guard.run);
    ("approx", "E9: greedy quality and aggregate bandwidth", Exp_approx.run);
    ("frag", "E10: fragmentation ablation", Exp_frag.run);
    ("collectives", "E11 (ext): PEEL inside larger collectives", Exp_collectives.run);
    ("multipath", "E12 (ext): multicast vs multipath", Exp_multipath.run);
    ("loss", "E13 (ext): loss and selective repeat", Exp_loss.run);
    ("tenancy", "E14 (ext): concurrent jobs vs TCAM", Exp_tenancy.run);
    ("rail", "E15 (ext): rail-optimized fabric", Exp_rail.run);
    ("failover", "E16 (ext): mid-run failures and re-peeling", Exp_failover.run);
    ("refine", "E17 (ext): two-stage refinement control plane", Exp_refine.run);
    ("compile", "E18 (ext): rule compiler vs TCAM budget", Exp_compile.run);
    ("scale", "E19 (ext): sharded-engine scale sweep, k=16/32/64", Exp_scale.run);
    ("service", "E20 (ext): open-loop service control plane", Exp_service.run);
    ("zoo", "E21 (ext): topology zoo vs exact-Steiner oracle", Exp_zoo.run);
    ( "serve-scale",
      "E22 (ext): million-group service fast path",
      Exp_serve_scale.run );
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the paper's complexity claims            *)
(* ------------------------------------------------------------------ *)

let heap_priorities =
  lazy
    (let rng = Rng.create 13 in
     Array.init 10_000 (fun _ -> Rng.float rng 1.0))

(* 10k no-op events through a fresh engine; [traced] toggles whether
   [Engine.schedule] pays the per-event trace bookkeeping, so the two
   rows measure exactly what the Trace.Off fast path saves. *)
let engine_churn ~traced () =
  let trace =
    if traced then Peel_sim.Trace.create ~level:Counters ()
    else Peel_sim.Trace.null
  in
  let engine = Peel_sim.Engine.create ~trace () in
  let prios = Lazy.force heap_priorities in
  Array.iter (fun p -> Peel_sim.Engine.schedule engine p ignore) prios;
  Peel_sim.Engine.run engine

let micro_tests () =
  let open Bechamel in
  let fabric = Common.fig5_fabric () in
  let g = Peel_topology.Fabric.graph fabric in
  let eps = Peel_topology.Fabric.endpoints fabric in
  let members = List.init 256 (fun i -> eps.(128 + i)) in
  let source = List.hd members in
  let dests = List.tl members in
  let rng = Rng.create 9 in
  let tor_targets = List.init 24 (fun _ -> Rng.int rng 64) |> List.sort_uniq compare in
  [
    Test.make ~name:"layer_peel_tree_256_dests"
      (Staged.stage (fun () ->
           ignore (Peel_steiner.Layer_peel.build g ~source ~dests)));
    Test.make ~name:"symmetric_optimal_tree_256_dests"
      (Staged.stage (fun () ->
           ignore (Peel_steiner.Symmetric.build fabric ~source ~dests)));
    Test.make ~name:"peel_plan_256_dests"
      (Staged.stage (fun () -> ignore (Peel.Plan.build fabric ~source ~dests)));
    Test.make ~name:"exact_cover_m6_24_targets"
      (Staged.stage (fun () ->
           ignore (Peel_prefix.Cover.exact_cover ~m:6 tor_targets)));
    Test.make ~name:"budgeted_cover_m6_b4"
      (Staged.stage (fun () ->
           ignore (Peel_prefix.Cover.budgeted_cover ~m:6 ~budget:4 tor_targets)));
    (* 1k installs into a full LRU table: every install pops the heap
       root and sifts the newcomer — the operation the old O(capacity)
       victim scan made linear. *)
    Test.make ~name:"tcam_evict_1k"
      (Staged.stage (fun () ->
           let t = Peel_ctrl.Tcam.create ~capacity:1024 ~policy:Peel_ctrl.Tcam.Lru in
           for g = 0 to 1023 do
             ignore
               (Peel_ctrl.Tcam.install t ~now:(float_of_int g) ~switch:0 ~group:g)
           done;
           for g = 1024 to 2047 do
             ignore
               (Peel_ctrl.Tcam.install t ~now:(float_of_int g) ~switch:0 ~group:g)
           done));
    Test.make ~name:"heap_push_pop_10k"
      (Staged.stage (fun () ->
           let h = Peel_util.Pairing_heap.create () in
           let prios = Lazy.force heap_priorities in
           Array.iter (fun p -> Peel_util.Pairing_heap.push h p ()) prios;
           while Peel_util.Pairing_heap.pop h <> None do
             ()
           done));
    Test.make ~name:"calqueue_push_pop_10k"
      (Staged.stage (fun () ->
           let c = Peel_util.Calendar_queue.create () in
           let prios = Lazy.force heap_priorities in
           Array.iter (fun p -> Peel_util.Calendar_queue.push c p ()) prios;
           while Peel_util.Calendar_queue.pop c <> None do
             ()
           done));
    Test.make ~name:"engine_10k_events_trace_off"
      (Staged.stage (engine_churn ~traced:false));
    Test.make ~name:"engine_10k_events_traced"
      (Staged.stage (engine_churn ~traced:true));
    (* One fig6-style cell on a k=32 fat-tree (16384 GPUs), flattened
       and executed on the sharded engine end to end. *)
    (let k32 = Peel_topology.Fabric.fat_tree ~k:32 ~hosts_per_tor:4 ~gpus_per_host:8 () in
     let cs =
       Peel_workload.Spec.poisson_broadcasts k32 (Rng.create 100) ~n:4
         ~scale:256 ~bytes:(Common.mb 64.) ~load:0.3 ()
     in
     Test.make ~name:"shard_k32_peel_256_dests"
       (Staged.stage (fun () ->
            ignore (Peel_collective.Par.run ~jobs:4 k32 Peel_collective.Scheme.Peel cs))));
  ]

(* Total extraction: every declared test element yields one row, even
   when Bechamel's analysis comes back empty for it — we look names up
   from [Test.elements] instead of folding over whatever keys the
   result table happens to hold. *)
let run_micro () =
  let open Bechamel in
  Common.banner "Micro-benchmarks (Bechamel): tree construction is cheap";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true
      ~quota:(Time.second 0.5) ()
  in
  let results =
    List.concat_map
      (fun test ->
        let raw = Benchmark.all cfg [ instance ] test in
        let analyzed = Analyze.all ols instance raw in
        List.map
          (fun elt ->
            let name = Test.Elt.name elt in
            let ns =
              match Hashtbl.find_opt analyzed name with
              | None -> None
              | Some ols_result -> (
                  match Analyze.OLS.estimates ols_result with
                  | Some (e :: _) when Float.is_finite e -> Some e
                  | _ -> None)
            in
            (name, ns))
          (Test.elements test))
      (micro_tests ())
  in
  Peel_util.Table.print ~header:[ "algorithm"; "time per run" ]
    (Common.micro_table_rows results);
  results

(* ------------------------------------------------------------------ *)
(* BENCH.json: machine-readable run record                             *)
(* ------------------------------------------------------------------ *)

(* A cheap scheme comparison on the intro fabric so the JSON carries
   headline CCT numbers even when no CCT experiment was selected. *)
let headline_ccts () =
  let fabric = Common.fig1_fabric () in
  let open Peel_collective in
  List.map
    (fun scheme ->
      let cs =
        Peel_workload.Spec.poisson_broadcasts fabric (Rng.create 7) ~n:4
          ~scale:8 ~bytes:(Common.mb 8.0) ~load:0.3 ()
      in
      let s = Runner.summarize (Runner.run fabric scheme cs) in
      (Scheme.to_string scheme, s))
    Scheme.all

let headline_json headline =
  Json.Arr
    (List.map
       (fun (scheme, (s : Peel_util.Stats.summary)) ->
         Json.Obj
           [
             ("scheme", Json.str scheme);
             ("mean", Json.num s.Peel_util.Stats.mean);
             ("p50", Json.num s.Peel_util.Stats.p50);
             ("p99", Json.num s.Peel_util.Stats.p99);
             ("max", Json.num s.Peel_util.Stats.max);
           ])
       headline)

let mode_string = function Common.Quick -> "quick" | Common.Full -> "full"

let load_baseline () =
  if not (Sys.file_exists "BENCH.json") then None
  else
    let text = In_channel.with_open_text "BENCH.json" In_channel.input_all in
    match Json.parse text with Ok doc -> Some doc | Error _ -> None

(* The committed baseline is only comparable when it was produced at
   the same trial counts. *)
let baseline_wall_for baseline ~mode name =
  match baseline with
  | None -> None
  | Some doc -> (
      match Json.member "mode" doc with
      | Some (Json.Str m) when m = mode_string mode -> (
          match Option.bind (Json.member "experiments" doc) Json.get_arr with
          | None -> None
          | Some entries ->
              List.find_map
                (fun e ->
                  match (Json.member "name" e, Json.member "wall_s" e) with
                  | Some (Json.Str n), Some w when n = name -> Json.get_num w
                  | _ -> None)
                entries)
      | _ -> None)

let write_bench_json ~mode ~baseline ~exp_times ~micro ~headline ~failover
    ~refinement ~compile ~scale ~scale_speedup ~service ~service_slo
    ~serve_scale ~serve_scale_slo ~zoo ~total =
  let opt_num = function Some x -> Json.num x | None -> Json.Null in
  let experiment_entry (name, wall) =
    let speedup =
      match baseline_wall_for baseline ~mode name with
      | Some base when wall > 0.0 -> [ ("speedup_vs_baseline", Json.num (base /. wall)) ]
      | _ -> []
    in
    Json.Obj
      ([ ("name", Json.str name); ("wall_s", Json.num wall) ] @ speedup)
  in
  let baseline_total =
    match baseline with
    | Some doc
      when Json.member "mode" doc = Some (Json.Str (mode_string mode)) ->
        Option.bind (Json.member "total_wall_s" doc) Json.get_num
    | _ -> None
  in
  let doc =
    Json.Obj
      ([
         ("schema", Json.str "peel-bench/2");
         ("mode", Json.str (mode_string mode));
         ("jobs", Json.int (Pool.default_jobs ()));
         ("experiments", Json.Arr (List.map experiment_entry exp_times));
         ( "micro_ns_per_run",
           Json.Obj (List.map (fun (name, ns) -> (name, opt_num ns)) micro) );
         ("headline_cct", headline_json headline);
         ("failover_degradation", failover);
         ("refinement", refinement);
         ("compile", compile);
         ("scale", scale);
         ("scale_speedup", scale_speedup);
         ("service", service);
         ("service_slo", service_slo);
         ("serve_scale", serve_scale);
         ("serve_scale_slo", serve_scale_slo);
         ("zoo", zoo);
         ("total_wall_s", Json.num total);
       ]
      @
      match baseline_total with
      | Some t -> [ ("baseline_total_wall_s", Json.num t) ]
      | None -> [])
  in
  Out_channel.with_open_text "BENCH.json" (fun oc ->
      Out_channel.output_string oc (Json.to_string doc);
      Out_channel.output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* guard: recompute the deterministic sections and diff the baseline   *)
(* ------------------------------------------------------------------ *)

(* Tolerance for float round-trips through the JSON writer; the
   simulation itself is bit-deterministic, so any genuine behaviour
   change drifts far beyond this. *)
let guard_tol = 1e-9

let rec json_drift path a b =
  match (a, b) with
  | Json.Null, Json.Null -> []
  | Json.Bool x, Json.Bool y when x = y -> []
  | Json.Str x, Json.Str y when x = y -> []
  | Json.Num x, Json.Num y ->
      let scale = Float.max 1.0 (Float.max (Float.abs x) (Float.abs y)) in
      if Float.abs (x -. y) <= guard_tol *. scale then []
      else [ Printf.sprintf "%s: committed %.17g, recomputed %.17g" path x y ]
  | Json.Arr xs, Json.Arr ys ->
      if List.length xs <> List.length ys then
        [
          Printf.sprintf "%s: committed %d entries, recomputed %d" path
            (List.length xs) (List.length ys);
        ]
      else
        List.concat
          (List.mapi
             (fun i (x, y) -> json_drift (Printf.sprintf "%s[%d]" path i) x y)
             (List.combine xs ys))
  | Json.Obj xs, Json.Obj ys ->
      if List.map fst xs <> List.map fst ys then
        [ Printf.sprintf "%s: object keys differ" path ]
      else
        List.concat
          (List.map2
             (fun (k, x) (_, y) -> json_drift (path ^ "." ^ k) x y)
             xs ys)
  | _ -> [ Printf.sprintf "%s: JSON kinds differ" path ]

let guard_section name committed recomputed =
  match committed with
  | None ->
      Printf.printf "  %-22s MISSING in committed BENCH.json\n" name;
      1
  | Some c -> (
      match json_drift name c recomputed with
      | [] ->
          Printf.printf "  %-22s ok\n" name;
          0
      | drifts ->
          Printf.printf "  %-22s DRIFT (%d value(s)):\n" name
            (List.length drifts);
          List.iter (fun d -> Printf.printf "    %s\n" d) drifts;
          1)

(* A small fig5 sweep under 1 and 4 workers; the parallel fan-out
   contract says the rows must match exactly. *)
let guard_jobs_determinism () =
  let sweep jobs =
    Pool.set_default_jobs jobs;
    Exp_fig5.compute ~scales:64 Common.Quick [ 2.; 32. ]
  in
  let r1 = sweep 1 in
  let r4 = sweep 4 in
  Pool.set_default_jobs 1;
  if r1 = r4 then begin
    Printf.printf "  %-22s ok\n" "jobs 1 vs 4";
    0
  end
  else begin
    Printf.printf "  %-22s DRIFT: jobs=1 and jobs=4 rows differ\n"
      "jobs 1 vs 4";
    1
  end

let run_guard () =
  match load_baseline () with
  | None ->
      prerr_endline
        "bench guard: no parseable BENCH.json in the current directory";
      exit 2
  | Some doc ->
      Printf.printf "bench guard: recomputing deterministic sections\n";
      let headline =
        guard_section "headline_cct"
          (Json.member "headline_cct" doc)
          (headline_json (headline_ccts ()))
      in
      let failover =
        guard_section "failover_degradation"
          (Json.member "failover_degradation" doc)
          (Exp_failover.rows_json Common.Quick)
      in
      let refinement =
        guard_section "refinement"
          (Json.member "refinement" doc)
          (Exp_refine.rows_json Common.Quick)
      in
      let compile =
        guard_section "compile"
          (Json.member "compile" doc)
          (Exp_compile.rows_json Common.Quick)
      in
      (* The scale rows come off the sharded engine, whose results are
         jobs-invariant — so this section both guards E19 against drift
         and doubles as a determinism gate for the parallel DES.  The
         machine-dependent "scale_speedup" section is NOT guarded. *)
      let scale =
        guard_section "scale"
          (Json.member "scale" doc)
          (Exp_scale.rows_json Common.Quick)
      in
      (* The service rows fold delta re-peeling, sharded compiles and
         TCAM admission into one fingerprinted record; the wall-clock
         "service_slo" section is NOT guarded. *)
      let service =
        guard_section "service"
          (Json.member "service" doc)
          (Exp_service.rows_json Common.Quick)
      in
      (* The scale rows pin the arena-backed service's counters and all
         three replay fingerprints (jobs=1 / jobs=4 / cache-off) at the
         10^6-group cell; the wall-clock "serve_scale_slo" section —
         where the reference baseline runs — is NOT guarded. *)
      let serve_scale =
        guard_section "serve_scale"
          (Json.member "serve_scale" doc)
          (Exp_serve_scale.rows_json Common.Quick)
      in
      (* The zoo record folds the approximation ratios, the port-set
         rule accounting and the expander reconfiguration runs into one
         seeded, jobs-invariant object. *)
      let zoo =
        guard_section "zoo"
          (Json.member "zoo" doc)
          (Exp_zoo.rows_json Common.Quick)
      in
      let failures =
        headline + failover + refinement + compile + scale + service
        + serve_scale + zoo
        + guard_jobs_determinism ()
      in
      if failures > 0 then begin
        Printf.printf
          "bench guard: %d section(s) drifted from the committed BENCH.json\n"
          failures;
        exit 1
      end;
      Printf.printf "bench guard: all sections match the committed BENCH.json\n"

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let () =
  let rec split_jobs acc = function
    | [] -> (List.rev acc, None)
    | ("--jobs" | "-j") :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> (List.rev_append acc rest, Some n)
        | _ ->
            Printf.eprintf "bad --jobs value: %s (want a positive integer)\n" v;
            exit 2)
    | [ ("--jobs" | "-j") ] ->
        prerr_endline "--jobs needs a value";
        exit 2
    | a :: rest -> split_jobs (a :: acc) rest
  in
  let args, jobs = split_jobs [] (List.tl (Array.to_list Sys.argv)) in
  Option.iter Pool.set_default_jobs jobs;
  if args = [ "guard" ] then run_guard ()
  else begin
    let quick = List.mem "quick" args in
    let mode = if quick then Common.Quick else Common.Full in
    let exp_names = List.map (fun (n, _, _) -> n) experiments in
    let selections = List.filter (fun a -> a <> "quick") args in
    let unknown =
      List.filter
        (fun a -> a <> "micro" && a <> "all" && not (List.mem a exp_names))
        selections
    in
    if unknown <> [] then begin
      Printf.eprintf "unknown experiment(s): %s\navailable: %s micro all quick guard\n"
        (String.concat " " unknown)
        (String.concat " " exp_names);
      exit 2
    end;
    let run_all = selections = [] || List.mem "all" selections in
    let wanted name = run_all || List.mem name selections in
    let baseline = load_baseline () in
    let t0 = Unix.gettimeofday () in
    Printf.printf "PEEL benchmark harness (%s mode, %d worker%s)\n"
      (mode_string mode) (Pool.default_jobs ())
      (if Pool.default_jobs () = 1 then "" else "s");
    let exp_times =
      List.filter_map
        (fun (name, _desc, f) ->
          if wanted name then begin
            let t = Unix.gettimeofday () in
            f mode;
            Some (name, Unix.gettimeofday () -. t)
          end
          else None)
        experiments
    in
    let micro =
      if run_all || List.mem "micro" selections then run_micro () else []
    in
    let headline = headline_ccts () in
    (* Always at Quick scale: a deterministic CCT-degradation record for
       PEEL and the baselines, regardless of which experiments ran. *)
    let failover = Exp_failover.rows_json Common.Quick in
    let refinement = Exp_refine.rows_json Common.Quick in
    let compile = Exp_compile.rows_json Common.Quick in
    let scale = Exp_scale.rows_json Common.Quick in
    let scale_speedup = Exp_scale.speedup_json Common.Quick in
    let service = Exp_service.rows_json Common.Quick in
    let service_slo = Exp_service.slo_json Common.Quick in
    let serve_scale = Exp_serve_scale.rows_json Common.Quick in
    let serve_scale_slo = Exp_serve_scale.slo_json Common.Quick in
    let zoo = Exp_zoo.rows_json Common.Quick in
    let total = Unix.gettimeofday () -. t0 in
    write_bench_json ~mode ~baseline ~exp_times ~micro ~headline ~failover
      ~refinement ~compile ~scale ~scale_speedup ~service ~service_slo
      ~serve_scale ~serve_scale_slo ~zoo ~total;
    Printf.printf "\ntotal wall time: %.1f s (BENCH.json written)\n" total
  end
