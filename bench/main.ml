(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index) and times the core
   algorithms with Bechamel.

   Usage:
     dune exec bench/main.exe               # full run, all experiments
     dune exec bench/main.exe -- quick      # reduced trial counts
     dune exec bench/main.exe -- fig5 fig7  # selected experiments
     dune exec bench/main.exe -- micro      # Bechamel micro-benchmarks

   Every run also writes BENCH.json (schema peel-bench/1) to the
   invocation directory: per-experiment wall time, Bechamel ns/run per
   algorithm, and a headline CCT comparison across the schemes. *)

open Peel_experiments
module Rng = Peel_util.Rng

let experiments : (string * string * (Common.mode -> unit)) list =
  [
    ("fig1", "E1: Broadcast bandwidth, Ring/Tree vs optimal", Exp_fig1.run);
    ("fig3", "E2: RSBF Bloom-filter header overhead", Exp_fig3.run);
    ("fig4", "E3: Orca controller-overhead inflation", Exp_fig4.run);
    ("fig5", "E4: CCT vs message size, all schemes", Exp_fig5.run);
    ("fig6", "E5: CCT vs scale", Exp_fig6.run);
    ("fig7", "E6: robustness to failures", Exp_fig7.run);
    ("state", "E7: switch state and header accounting", Exp_state.run);
    ("guard", "E8: DCQCN guard timer ablation", Exp_guard.run);
    ("approx", "E9: greedy quality and aggregate bandwidth", Exp_approx.run);
    ("frag", "E10: fragmentation ablation", Exp_frag.run);
    ("collectives", "E11 (ext): PEEL inside larger collectives", Exp_collectives.run);
    ("multipath", "E12 (ext): multicast vs multipath", Exp_multipath.run);
    ("loss", "E13 (ext): loss and selective repeat", Exp_loss.run);
    ("tenancy", "E14 (ext): concurrent jobs vs TCAM", Exp_tenancy.run);
    ("rail", "E15 (ext): rail-optimized fabric", Exp_rail.run);
    ("failover", "E16 (ext): mid-run failures and re-peeling", Exp_failover.run);
    ("refine", "E17 (ext): two-stage refinement control plane", Exp_refine.run);
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the paper's complexity claims            *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let fabric = Common.fig5_fabric () in
  let g = Peel_topology.Fabric.graph fabric in
  let eps = Peel_topology.Fabric.endpoints fabric in
  let members = List.init 256 (fun i -> eps.(128 + i)) in
  let source = List.hd members in
  let dests = List.tl members in
  let rng = Rng.create 9 in
  let tor_targets = List.init 24 (fun _ -> Rng.int rng 64) |> List.sort_uniq compare in
  [
    Test.make ~name:"layer_peel_tree_256_dests"
      (Staged.stage (fun () ->
           ignore (Peel_steiner.Layer_peel.build g ~source ~dests)));
    Test.make ~name:"symmetric_optimal_tree_256_dests"
      (Staged.stage (fun () ->
           ignore (Peel_steiner.Symmetric.build fabric ~source ~dests)));
    Test.make ~name:"peel_plan_256_dests"
      (Staged.stage (fun () -> ignore (Peel.Plan.build fabric ~source ~dests)));
    Test.make ~name:"exact_cover_m6_24_targets"
      (Staged.stage (fun () ->
           ignore (Peel_prefix.Cover.exact_cover ~m:6 tor_targets)));
    Test.make ~name:"budgeted_cover_m6_b4"
      (Staged.stage (fun () ->
           ignore (Peel_prefix.Cover.budgeted_cover ~m:6 ~budget:4 tor_targets)));
  ]

(* Total extraction: every declared test element yields one row, even
   when Bechamel's analysis comes back empty for it — we look names up
   from [Test.elements] instead of folding over whatever keys the
   result table happens to hold. *)
let run_micro () =
  let open Bechamel in
  Common.banner "Micro-benchmarks (Bechamel): tree construction is cheap";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true
      ~quota:(Time.second 0.5) ()
  in
  let results =
    List.concat_map
      (fun test ->
        let raw = Benchmark.all cfg [ instance ] test in
        let analyzed = Analyze.all ols instance raw in
        List.map
          (fun elt ->
            let name = Test.Elt.name elt in
            let ns =
              match Hashtbl.find_opt analyzed name with
              | None -> None
              | Some ols_result -> (
                  match Analyze.OLS.estimates ols_result with
                  | Some (e :: _) when Float.is_finite e -> Some e
                  | _ -> None)
            in
            (name, ns))
          (Test.elements test))
      (micro_tests ())
  in
  Peel_util.Table.print ~header:[ "algorithm"; "time per run" ]
    (Common.micro_table_rows results);
  results

(* ------------------------------------------------------------------ *)
(* BENCH.json: machine-readable run record                             *)
(* ------------------------------------------------------------------ *)

(* A cheap scheme comparison on the intro fabric so the JSON carries
   headline CCT numbers even when no CCT experiment was selected. *)
let headline_ccts () =
  let fabric = Common.fig1_fabric () in
  let open Peel_collective in
  List.map
    (fun scheme ->
      let cs =
        Peel_workload.Spec.poisson_broadcasts fabric (Rng.create 7) ~n:4
          ~scale:8 ~bytes:(Common.mb 8.0) ~load:0.3 ()
      in
      let s = Runner.summarize (Runner.run fabric scheme cs) in
      (Scheme.to_string scheme, s))
    Scheme.all

let write_bench_json ~mode ~exp_times ~micro ~headline ~failover ~refinement
    ~total =
  let module Json = Peel_util.Json in
  let opt_num = function Some x -> Json.num x | None -> Json.Null in
  let doc =
    Json.Obj
      [
        ("schema", Json.str "peel-bench/1");
        ( "mode",
          Json.str (match mode with Common.Quick -> "quick" | Common.Full -> "full")
        );
        ( "experiments",
          Json.Arr
            (List.map
               (fun (name, wall) ->
                 Json.Obj [ ("name", Json.str name); ("wall_s", Json.num wall) ])
               exp_times) );
        ( "micro_ns_per_run",
          Json.Obj (List.map (fun (name, ns) -> (name, opt_num ns)) micro) );
        ( "headline_cct",
          Json.Arr
            (List.map
               (fun (scheme, (s : Peel_util.Stats.summary)) ->
                 Json.Obj
                   [
                     ("scheme", Json.str scheme);
                     ("mean", Json.num s.Peel_util.Stats.mean);
                     ("p50", Json.num s.Peel_util.Stats.p50);
                     ("p99", Json.num s.Peel_util.Stats.p99);
                     ("max", Json.num s.Peel_util.Stats.max);
                   ])
               headline) );
        ("failover_degradation", failover);
        ("refinement", refinement);
        ("total_wall_s", Json.num total);
      ]
  in
  Out_channel.with_open_text "BENCH.json" (fun oc ->
      Out_channel.output_string oc (Json.to_string doc);
      Out_channel.output_char oc '\n')

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "quick" args in
  let mode = if quick then Common.Quick else Common.Full in
  let exp_names = List.map (fun (n, _, _) -> n) experiments in
  let selections = List.filter (fun a -> a <> "quick") args in
  let unknown =
    List.filter (fun a -> a <> "micro" && a <> "all" && not (List.mem a exp_names))
      selections
  in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment(s): %s\navailable: %s micro all quick\n"
      (String.concat " " unknown)
      (String.concat " " exp_names);
    exit 2
  end;
  let run_all = selections = [] || List.mem "all" selections in
  let wanted name = run_all || List.mem name selections in
  let t0 = Unix.gettimeofday () in
  Printf.printf "PEEL benchmark harness (%s mode)\n"
    (match mode with Common.Quick -> "quick" | Common.Full -> "full");
  let exp_times =
    List.filter_map
      (fun (name, _desc, f) ->
        if wanted name then begin
          let t = Unix.gettimeofday () in
          f mode;
          Some (name, Unix.gettimeofday () -. t)
        end
        else None)
      experiments
  in
  let micro =
    if run_all || List.mem "micro" selections then run_micro () else []
  in
  let headline = headline_ccts () in
  (* Always at Quick scale: a deterministic CCT-degradation record for
     PEEL and the baselines, regardless of which experiments ran. *)
  let failover = Exp_failover.rows_json Common.Quick in
  let refinement = Exp_refine.rows_json Common.Quick in
  let total = Unix.gettimeofday () -. t0 in
  write_bench_json ~mode ~exp_times ~micro ~headline ~failover ~refinement
    ~total;
  Printf.printf "\ntotal wall time: %.1f s (BENCH.json written)\n" total
