(* Tests for Peel_compile: the fleet-level rule compiler must lower any
   batch of plans into tables the static checker certifies, stay
   delivery-equivalent to the per-plan data plane, and catch each
   injected table corruption with the right CMP code.  Also pins the
   peel_cli 0/1/2 exit-code convention through the compile subcommand. *)

open Peel_topology
module D = Peel_check.Diagnostic
module Compile = Peel_compile.Compile
module Check_compile = Peel_compile.Check_compile
module Cover = Peel_prefix.Cover
module Plan = Peel.Plan
module Rng = Peel_util.Rng

let ft8 () = Fabric.fat_tree ~k:8 ~hosts_per_tor:2 ~gpus_per_host:2 ()
let ls () = Fabric.leaf_spine ~spines:4 ~leaves:8 ~hosts_per_leaf:2 ~gpus_per_host:2 ()

let batch_for fabric rng ~n ~scale =
  List.init n (fun gid ->
      let members =
        Peel_workload.Spec.place fabric rng ~scale ~fragmentation:0.5 ()
      in
      let source = List.hd members in
      let dests = List.filter (fun m -> m <> source) members in
      (gid, Peel.plan fabric ~source ~dests))

let member_racks fabric (plan : Plan.t) =
  List.sort_uniq compare
    (List.map (Fabric.attach_tor fabric) plan.Plan.dests)

let check_no_errors what ds =
  Alcotest.(check (list string))
    what []
    (List.map D.to_string (D.errors ds))

let check_code what code ds =
  Alcotest.(check bool) (what ^ " flags " ^ code) true (D.has_code code ds);
  Alcotest.(check bool) (what ^ " has errors") true (D.has_errors ds)

(* ------------------------------------------------------------------ *)
(* Clean compiles are certified and delivery-equivalent                *)
(* ------------------------------------------------------------------ *)

let test_clean_fat_tree () =
  let fabric = ft8 () in
  let batch = batch_for fabric (Rng.create 1) ~n:6 ~scale:24 in
  let t = Compile.compile fabric batch in
  check_no_errors "fat-tree compile" (Check_compile.check fabric t);
  Alcotest.(check bool) "fits without capacity" true (Compile.fits t)

let test_clean_leaf_spine () =
  let fabric = ls () in
  let batch = batch_for fabric (Rng.create 2) ~n:4 ~scale:12 in
  let t = Compile.compile fabric batch in
  check_no_errors "leaf-spine compile" (Check_compile.check fabric t);
  (* Single-pod fabrics never compile a core table. *)
  Alcotest.(check bool)
    "no core table" true
    (Compile.find_table t Compile.Core = None)

let test_clean_aggregated () =
  let fabric = ft8 () in
  let batch = batch_for fabric (Rng.create 3) ~n:8 ~scale:32 in
  let t = Compile.compile ~capacity:4 ~aggregate:true fabric batch in
  check_no_errors "aggregated compile" (Check_compile.check fabric t);
  Alcotest.(check bool) "fits the budget" true (Compile.fits t);
  Alcotest.(check bool) "capped at 4/switch" true (Compile.max_entries t <= 4);
  Alcotest.(check bool) "performed merges" true (t.Compile.merges > 0)

let test_exact_delivery_matches_plan () =
  let fabric = ft8 () in
  let batch = batch_for fabric (Rng.create 4) ~n:5 ~scale:16 in
  let t = Compile.compile fabric batch in
  List.iter
    (fun (gid, plan) ->
      (* Exact (unbudgeted) plans over-cover nothing, so the compiled
         tables must reach exactly the member racks. *)
      Alcotest.(check (list int))
        (Printf.sprintf "group %d racks" gid)
        (member_racks fabric plan)
        (Compile.deliver_group fabric t ~group:gid);
      Alcotest.(check (list int))
        (Printf.sprintf "group %d waste" gid)
        []
        (Compile.group_waste fabric t ~group:gid))
    batch

let test_aggregated_delivery_superset () =
  let fabric = ft8 () in
  let batch = batch_for fabric (Rng.create 5) ~n:8 ~scale:32 in
  let t = Compile.compile ~capacity:3 ~aggregate:true fabric batch in
  List.iter
    (fun (gid, plan) ->
      let reached = Compile.deliver_group fabric t ~group:gid in
      List.iter
        (fun r ->
          Alcotest.(check bool)
            (Printf.sprintf "group %d reaches rack %d" gid r)
            true (List.mem r reached))
        (member_racks fabric plan))
    batch

let test_dedup_shares_entries () =
  let fabric = ft8 () in
  let batch = batch_for fabric (Rng.create 6) ~n:1 ~scale:24 in
  let plan = List.assoc 0 batch in
  let solo = Compile.compile fabric [ (0, plan) ] in
  let dup = Compile.compile fabric [ (0, plan); (1, plan) ] in
  (* The same plan under a second group id adds zero entries... *)
  Alcotest.(check int)
    "identical plans share every entry"
    (Compile.total_entries solo) (Compile.total_entries dup);
  (* ...and every entry is co-owned by both groups. *)
  List.iter
    (fun (tb : Compile.table) ->
      List.iter
        (fun (e : Compile.entry) ->
          Alcotest.(check (list int))
            "both groups own the shared entry" [ 0; 1 ] e.Compile.owners)
        tb.Compile.entries)
    dup.Compile.tables

let test_compile_rejects_bad_input () =
  let fabric = ft8 () in
  let batch = batch_for fabric (Rng.create 7) ~n:1 ~scale:8 in
  let plan = List.assoc 0 batch in
  Alcotest.check_raises "duplicate group ids"
    (Invalid_argument "Compile.compile: duplicate group id 3") (fun () ->
      ignore (Compile.compile fabric [ (3, plan); (3, plan) ]));
  Alcotest.check_raises "capacity < 1"
    (Invalid_argument "Compile.compile: capacity must be >= 1") (fun () ->
      ignore (Compile.compile ~capacity:0 fabric [ (0, plan) ]))

let test_entry_bytes () =
  (* m=3: 3 value bits + 2 length bits -> 1 byte, 8-wide bitmap -> 1. *)
  Alcotest.(check int) "m=3 entry" 2 (Compile.entry_bytes ~m:3);
  (* m=6: 6+3 bits -> 2 bytes, 64-wide bitmap -> 8. *)
  Alcotest.(check int) "m=6 entry" 10 (Compile.entry_bytes ~m:6)

let test_checked_front_door () =
  let fabric = ft8 () in
  let batch = batch_for fabric (Rng.create 8) ~n:3 ~scale:16 in
  Unix.putenv "PEEL_CHECK" "1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "PEEL_CHECK" "0")
    (fun () ->
      (* A clean compile passes the boundary assertion... *)
      ignore (Peel_compile.compile ~capacity:4 ~aggregate:true fabric batch);
      (* ...and the assertion actually fires on corrupted findings. *)
      Alcotest.check_raises "assert_valid raises"
        (Failure
           "Peel_check: boom failed 1 invariant check(s):\n\
            error[CMP001] here: detail") (fun () ->
          Peel_check.assert_valid ~what:"boom"
            [ D.errorf ~code:"CMP001" ~loc:"here" "detail" ]))

(* ------------------------------------------------------------------ *)
(* Corruptions: one per CMP code                                       *)
(* ------------------------------------------------------------------ *)

let compiled_for_corruption seed =
  let fabric = ft8 () in
  let batch = batch_for fabric (Rng.create seed) ~n:6 ~scale:24 in
  (fabric, Compile.compile fabric batch)

let map_table n f (t : Compile.t) =
  { t with Compile.tables = List.mapi (fun i tb -> if i = n then f tb else tb) t.Compile.tables }

let map_entry n f (tb : Compile.table) =
  { tb with Compile.entries = List.mapi (fun i e -> if i = n then f e else e) tb.Compile.entries }

let test_corrupt_missing_entry () =
  let fabric, t = compiled_for_corruption 10 in
  (* Drop the last table's shortest-prefix entry: its headers have no
     installed ancestor, so those packets are dropped on the floor. *)
  let last = List.length t.Compile.tables - 1 in
  let t' =
    map_table last
      (fun tb ->
        {
          tb with
          Compile.entries =
            List.rev (List.tl (List.rev tb.Compile.entries));
        })
      t
  in
  check_code "missing entry" "CMP001" (Check_compile.check fabric t')

let test_corrupt_shadowed_rule () =
  let fabric, t = compiled_for_corruption 11 in
  let t' =
    map_table 0
      (fun tb ->
        { tb with Compile.entries = tb.Compile.entries @ [ List.hd tb.Compile.entries ] })
      t
  in
  check_code "duplicate entry" "CMP002" (Check_compile.check fabric t')

let test_corrupt_owner_record () =
  let fabric, t = compiled_for_corruption 12 in
  let t' =
    map_table 0 (map_entry 0 (fun e -> { e with Compile.owners = [ 999 ] })) t
  in
  check_code "tampered owners" "CMP002" (Check_compile.check fabric t')

let test_corrupt_conflicting_ports () =
  let fabric, t = compiled_for_corruption 13 in
  let t' =
    map_table 0
      (map_entry 0 (fun e -> { e with Compile.ports = List.tl e.Compile.ports }))
      t
  in
  check_code "tampered ports" "CMP003" (Check_compile.check fabric t')

let test_corrupt_out_of_space_prefix () =
  let fabric, t = compiled_for_corruption 14 in
  (* A prefix deeper than the table's id space: Rules.lookup's
     descriptive Invalid_argument surfaces as the CMP003 finding. *)
  let bad (tb : Compile.table) =
    map_entry 0
      (fun e ->
        {
          e with
          Compile.prefix = { Cover.value = 0; len = tb.Compile.id_bits + 1 };
        })
      tb
  in
  let t' = map_table 0 bad t in
  let ds = Check_compile.check fabric t' in
  check_code "out-of-space prefix" "CMP003" ds;
  let msg =
    List.find (fun d -> d.D.code = "CMP003") ds |> fun d -> d.D.message
  in
  Alcotest.(check bool)
    "error names the offending width" true
    (let sub = "outside the" in
     let rec has i =
       i + String.length sub <= String.length msg
       && (String.sub msg i (String.length sub) = sub || has (i + 1))
     in
     has 0)

let test_corrupt_over_budget () =
  let fabric, t = compiled_for_corruption 15 in
  let t' = { t with Compile.capacity = Some (Compile.max_entries t - 1) } in
  check_code "over budget" "CMP004" (Check_compile.check fabric t')

let test_corrupt_unsound_merge () =
  let fabric, t = compiled_for_corruption 16 in
  let t' = map_table 0 (map_entry 0 (fun e -> { e with Compile.sources = [] })) t in
  check_code "no sources" "CMP005" (Check_compile.check fabric t');
  (* A source outside the merged block is equally unsound. *)
  let deep (tb : Compile.table) =
    map_entry 0
      (fun e ->
        let m = tb.Compile.id_bits in
        let outside =
          { Cover.value = Peel_util.Bits.pow2 m - 1; len = m }
        in
        if Cover.is_ancestor e.Compile.prefix outside then e
        else { e with Compile.sources = [ outside ] })
      tb
  in
  let t'' = map_table 0 deep t in
  if t'' <> t then
    check_code "foreign source" "CMP005" (Check_compile.check fabric t'')

(* ------------------------------------------------------------------ *)
(* QCheck: compile . deliver == per-plan exact delivery                *)
(* ------------------------------------------------------------------ *)

let qcheck_differential =
  let fat = ft8 () in
  let spine = ls () in
  QCheck.Test.make ~name:"compile/deliver differential vs Dataplane" ~count:60
    QCheck.(
      quad (int_range 0 10_000) (int_range 1 5) (int_range 4 32) bool)
    (fun (seed, n, scale, aggregate) ->
      let fabric = if seed mod 2 = 0 then fat else spine in
      let scale = min scale (2 * scale) in
      let batch = batch_for fabric (Rng.create seed) ~n ~scale in
      let capacity = if aggregate then Some (4 + (seed mod 5)) else None in
      let t = Compile.compile ?capacity ~aggregate fabric batch in
      (* The compiler's own checker must certify every output... *)
      if D.has_errors (Check_compile.check fabric t) then false
      else
        (* ...and compiled delivery must cover per-plan exact delivery,
           exactly when unaggregated. *)
        List.for_all
          (fun (gid, (plan : Plan.t)) ->
            let exact =
              Peel.Dataplane.deliver_exact fabric
                (Peel.Dataplane.exact_entry fabric ~group:gid
                   ~members:plan.Plan.dests)
            in
            let reached = Compile.deliver_group fabric t ~group:gid in
            if aggregate then List.for_all (fun r -> List.mem r reached) exact
            else reached = exact)
          batch)

(* ------------------------------------------------------------------ *)
(* CLI exit-code convention                                            *)
(* ------------------------------------------------------------------ *)

(* peel_cli documents 0 = ok, 1 = diagnosed errors, 2 = usage error on
   every subcommand; drive the compile subcommand through all three. *)
let test_cli_exit_codes () =
  (* Resolve the binary from either cwd dune uses: _build/default/test
     under `dune runtest`, the workspace root under `dune exec`. *)
  let candidates = [ "../bin/peel_cli.exe"; "_build/default/bin/peel_cli.exe" ] in
  match List.find_opt Sys.file_exists candidates with
  | None -> Alcotest.skip ()
  | Some exe ->
    let code args = Sys.command (Filename.quote_command exe args ^ " >/dev/null 2>&1") in
    Alcotest.(check int) "clean compile exits 0" 0
      (code [ "compile"; "--quiet"; "-k"; "4"; "--scale"; "8"; "--groups"; "2" ]);
    Alcotest.(check int) "diagnosed corruption exits 1" 1
      (code
         [
           "compile"; "--quiet"; "-k"; "4"; "--scale"; "8"; "--groups"; "2";
           "--corrupt"; "cmp005";
         ]);
    Alcotest.(check int) "usage error exits 2" 2
      (code [ "compile"; "--corrupt"; "bogus" ]);
    Alcotest.(check int) "unknown option exits 2" 2
      (code [ "check"; "--no-such-flag" ])

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "peel_compile"
    [
      ( "clean",
        [
          Alcotest.test_case "fat-tree compile" `Quick test_clean_fat_tree;
          Alcotest.test_case "leaf-spine compile" `Quick test_clean_leaf_spine;
          Alcotest.test_case "aggregated compile" `Quick test_clean_aggregated;
          Alcotest.test_case "exact delivery" `Quick test_exact_delivery_matches_plan;
          Alcotest.test_case "aggregated superset" `Quick
            test_aggregated_delivery_superset;
          Alcotest.test_case "dedup shares entries" `Quick test_dedup_shares_entries;
          Alcotest.test_case "input validation" `Quick test_compile_rejects_bad_input;
          Alcotest.test_case "entry bytes" `Quick test_entry_bytes;
          Alcotest.test_case "PEEL_CHECK front door" `Quick test_checked_front_door;
        ] );
      ( "corruptions",
        [
          Alcotest.test_case "missing entry (CMP001)" `Quick test_corrupt_missing_entry;
          Alcotest.test_case "shadowed rule (CMP002)" `Quick test_corrupt_shadowed_rule;
          Alcotest.test_case "owner record (CMP002)" `Quick test_corrupt_owner_record;
          Alcotest.test_case "conflicting ports (CMP003)" `Quick
            test_corrupt_conflicting_ports;
          Alcotest.test_case "out-of-space prefix (CMP003)" `Quick
            test_corrupt_out_of_space_prefix;
          Alcotest.test_case "over budget (CMP004)" `Quick test_corrupt_over_budget;
          Alcotest.test_case "unsound merge (CMP005)" `Quick test_corrupt_unsound_merge;
        ] );
      ("differential", [ qt qcheck_differential ]);
      ("cli", [ Alcotest.test_case "exit codes 0/1/2" `Quick test_cli_exit_codes ]);
    ]
