(* Tests for the experiment harness itself: the analytic experiments are
   cheap enough to verify their computed rows against the paper's
   qualitative claims directly; the simulation-heavy ones are covered by
   the bench run and the collective tests. *)

open Peel_experiments

(* E1 — Fig. 1 *)

let test_fig1_rows () =
  let rows = Exp_fig1.compute () in
  Alcotest.(check int) "3 schemes" 3 (List.length rows);
  let find s = List.find (fun r -> r.Exp_fig1.scheme = s) rows in
  let opt = find "optimal" and ring = find "ring" and tree = find "tree" in
  Alcotest.(check (float 1e-9)) "optimal overshoot 0" 0.0 opt.Exp_fig1.overshoot_pct;
  Alcotest.(check bool) "ring overshoots" true (ring.Exp_fig1.overshoot_pct > 0.0);
  Alcotest.(check bool) "tree overshoots more" true
    (tree.Exp_fig1.overshoot_pct > ring.Exp_fig1.overshoot_pct);
  Alcotest.(check bool) "tree core-heavy" true
    (tree.Exp_fig1.core_links > opt.Exp_fig1.core_links)

(* E2 — Fig. 3 *)

let test_fig3_rows () =
  let rows = Exp_fig3.compute () in
  Alcotest.(check int) "5 degrees" 5 (List.length rows);
  List.iter
    (fun r ->
      (* Within a row, stricter FPR always means a bigger header. *)
      let rec decreasing = function
        | (_, a) :: ((_, b) :: _ as rest) -> a > b && decreasing rest
        | _ -> true
      in
      Alcotest.(check bool) "header shrinks with laxer fpr" true
        (decreasing r.Exp_fig3.by_fpr);
      Alcotest.(check bool) "peel header tiny" true (r.Exp_fig3.peel_bytes <= 2))
    rows;
  (* The paper's crossing: at 20% FPR, k=64 exceeds the MTU. *)
  let k64 = List.find (fun r -> r.Exp_fig3.k = 64) rows in
  let _, bytes20 = List.nth k64.Exp_fig3.by_fpr 4 in
  Alcotest.(check bool) "k=64 over MTU at 20%" true (bytes20 > 1500.0)

(* E7 — state table *)

let test_state_rows () =
  let rows = Exp_state.compute () in
  let k64 = List.find (fun r -> r.Exp_state.k = 64) rows in
  Alcotest.(check int) "63 rules" 63 k64.Exp_state.peel_rules;
  Alcotest.(check int) "65536 hosts" 65536 k64.Exp_state.hosts;
  Alcotest.(check bool) "naive > 4e9" true (k64.Exp_state.naive_entries > 4e9);
  List.iter
    (fun r ->
      Alcotest.(check bool) "header under 8 B" true (r.Exp_state.header_bytes < 8);
      Alcotest.(check int) "rules = k-1" (r.Exp_state.k - 1) r.Exp_state.peel_rules)
    rows

(* E9 — bandwidth accounting *)

let test_approx_bandwidth () =
  let bw = Exp_approx.compute_bandwidth () in
  Alcotest.(check bool) "peel uses fewer traversals" true
    (bw.Exp_approx.peel_traversals < bw.Exp_approx.ring_traversals);
  Alcotest.(check bool) "positive savings" true (bw.Exp_approx.savings_pct > 0.0)

(* E14 — tenancy accounting (quick mode: up to 1000 groups) *)

let test_tenancy_rows () =
  let rows = Exp_tenancy.compute Common.Quick in
  let rec increasing = function
    | a :: (b :: _ as rest) ->
        a.Exp_tenancy.ipmc_max_entries <= b.Exp_tenancy.ipmc_max_entries
        && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "ipmc grows with groups" true (increasing rows);
  List.iter
    (fun r ->
      Alcotest.(check int) "peel constant" 7 r.Exp_tenancy.peel_entries)
    rows

(* Modes *)

let test_trials_scaling () =
  Alcotest.(check int) "full" 40 (Common.trials Common.Full ~full:40);
  Alcotest.(check int) "quick" 5 (Common.trials Common.Quick ~full:40);
  Alcotest.(check int) "quick floor" 4 (Common.trials Common.Quick ~full:8)

(* Parallel sweep determinism: the fig5 sweep fanned out over 4 worker
   domains must produce the exact rows of the sequential (jobs = 1)
   sweep — same order, bit-equal floats. *)

let test_fig5_jobs_deterministic () =
  let sweep jobs =
    Peel_util.Pool.set_default_jobs jobs;
    Exp_fig5.compute ~scales:64 Common.Quick [ 2.; 32. ]
  in
  let seq = sweep 1 in
  let par = sweep 4 in
  Peel_util.Pool.set_default_jobs 1;
  Alcotest.(check int) "row count" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Exp_fig5.row) (b : Exp_fig5.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "row %.0fMB/%s bit-equal" a.Exp_fig5.size_mb
           (Peel_collective.Scheme.to_string a.Exp_fig5.scheme))
        true (a = b))
    seq par

(* Micro-benchmark table formatting: total over its input — a missing
   or non-finite estimate must still yield a row, never drop one. *)

let test_micro_table_rows () =
  let rows =
    Common.micro_table_rows
      [
        ("fast", Some 150.0);          (* 150 ns *)
        ("slow", Some 2.5e9);          (* 2.5 s *)
        ("failed", None);
        ("diverged", Some nan);
        ("overflowed", Some infinity);
      ]
  in
  Alcotest.(check int) "one row per input" 5 (List.length rows);
  Alcotest.(check (list (list string)))
    "formatting"
    [
      [ "fast"; "150.0 ns" ]; [ "slow"; "2.500 s" ]; [ "failed"; "n/a" ];
      [ "diverged"; "n/a" ]; [ "overflowed"; "n/a" ];
    ]
    rows

let () =
  Alcotest.run "peel_experiments"
    [
      ( "analytic",
        [
          Alcotest.test_case "fig1 rows" `Quick test_fig1_rows;
          Alcotest.test_case "fig3 rows" `Quick test_fig3_rows;
          Alcotest.test_case "state rows" `Quick test_state_rows;
          Alcotest.test_case "approx bandwidth" `Quick test_approx_bandwidth;
          Alcotest.test_case "tenancy rows" `Slow test_tenancy_rows;
          Alcotest.test_case "trials scaling" `Quick test_trials_scaling;
          Alcotest.test_case "fig5 jobs deterministic" `Slow
            test_fig5_jobs_deterministic;
          Alcotest.test_case "micro table rows" `Quick test_micro_table_rows;
        ] );
    ]
