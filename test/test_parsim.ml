(* Tests for the conservative parallel DES path: calendar-queue vs
   binary-heap ordering, queue grow-boundary FIFO regressions, the
   Par/Shard flattened engine against the sequential Runner, and
   jobs-1 vs jobs-n bit-identity. *)

open Peel_topology
open Peel_workload
module Rng = Peel_util.Rng
module Heap = Peel_util.Pairing_heap
module Cal = Peel_util.Calendar_queue
module Scheme = Peel_collective.Scheme
module Runner = Peel_collective.Runner
module Par = Peel_collective.Par
module Shard = Peel_sim.Shard

(* ------------------------------------------------------------------ *)
(* Calendar queue vs pairing heap                                      *)
(* ------------------------------------------------------------------ *)

let drain_heap h =
  let rec go acc = match Heap.pop h with
    | None -> List.rev acc
    | Some (p, v) -> go ((p, v) :: acc)
  in
  go []

let drain_cal c =
  let rec go acc = match Cal.pop c with
    | None -> List.rev acc
    | Some (p, v) -> go ((p, v) :: acc)
  in
  go []

let test_calqueue_basic () =
  let c = Cal.create () in
  Alcotest.(check bool) "empty" true (Cal.is_empty c);
  Cal.push c 3.0 "c";
  Cal.push c 1.0 "a";
  Cal.push c 2.0 "b";
  Alcotest.(check int) "length" 3 (Cal.length c);
  Alcotest.(check (option (pair (float 0.0) string))) "peek" (Some (1.0, "a")) (Cal.peek c);
  Alcotest.(check (list (pair (float 0.0) string)))
    "sorted" [ (1.0, "a"); (2.0, "b"); (3.0, "c") ] (drain_cal c)

let test_calqueue_fifo_ties () =
  let c = Cal.create () in
  for i = 0 to 99 do
    Cal.push c (float_of_int (i mod 3)) i
  done;
  let out = drain_cal c in
  let expected =
    List.init 100 (fun i -> i)
    |> List.stable_sort (fun a b -> compare (a mod 3) (b mod 3))
    |> List.map (fun i -> (float_of_int (i mod 3), i))
  in
  Alcotest.(check (list (pair (float 0.0) int))) "FIFO among equal" expected out

let test_calqueue_reinsert_below_min () =
  let c = Cal.create () in
  Cal.push c 10.0 1;
  Alcotest.(check (option (pair (float 0.0) int))) "peek 10" (Some (10.0, 1)) (Cal.peek c);
  (* Push below the scan cursor after peek advanced it. *)
  Cal.push c 1.0 2;
  Alcotest.(check (option (pair (float 0.0) int))) "peek 1" (Some (1.0, 2)) (Cal.peek c);
  Alcotest.(check (list (pair (float 0.0) int)))
    "order" [ (1.0, 2); (10.0, 1) ] (drain_cal c)

let test_calqueue_clear () =
  let c = Cal.create () in
  for i = 0 to 999 do Cal.push c (float_of_int i) i done;
  Cal.clear c;
  Alcotest.(check bool) "cleared" true (Cal.is_empty c);
  Cal.push c 5.0 42;
  Alcotest.(check (list (pair (float 0.0) int))) "usable after clear" [ (5.0, 42) ] (drain_cal c)

(* Interleaved push/pop must agree with the heap even as the calendar
   resizes and the cursor wraps. *)
let qcheck_cal_vs_heap =
  QCheck.Test.make ~count:200 ~name:"calendar queue == pairing heap order"
    QCheck.(
      pair (int_range 0 1000)
        (small_list (pair (int_range 0 2) (int_range 0 100))))
    (fun (seed, ops_tail) ->
      let rng = Rng.create seed in
      let nops = 300 + List.length ops_tail in
      let h = Heap.create () and c = Cal.create () in
      let ok = ref true in
      for i = 0 to nops - 1 do
        let op = Rng.int rng 3 in
        if op < 2 then begin
          (* Mixed magnitudes force resizes and bucket wraps. *)
          let p =
            match Rng.int rng 4 with
            | 0 -> float_of_int (Rng.int rng 10)
            | 1 -> Rng.float rng 1.0
            | 2 -> Rng.float rng 1e-6
            | _ -> 1e3 +. Rng.float rng 1e3
          in
          Heap.push h p i;
          Cal.push c p i
        end
        else begin
          let a = Heap.pop h and b = Cal.pop c in
          if a <> b then ok := false
        end
      done;
      let rest_h = drain_heap h and rest_c = drain_cal c in
      !ok && rest_h = rest_c)

(* ------------------------------------------------------------------ *)
(* Grow-path boundary: capacity doublings with equal priorities.       *)
(* The heap starts at capacity 16 and doubles; pushing equal-priority  *)
(* elements across 16/32/64… boundaries must preserve FIFO exactly.    *)
(* ------------------------------------------------------------------ *)

let test_heap_grow_boundary_fifo () =
  List.iter
    (fun n ->
      let h = Heap.create () in
      for i = 0 to n - 1 do Heap.push h 1.0 i done;
      let out = drain_heap h in
      let expected = List.init n (fun i -> (1.0, i)) in
      Alcotest.(check (list (pair (float 0.0) int)))
        (Printf.sprintf "heap FIFO across grow at %d" n)
        expected out)
    [ 15; 16; 17; 31; 32; 33; 63; 64; 65; 1024 ]

let test_calqueue_grow_boundary_fifo () =
  (* The calendar resizes at 2x bucket count (4, 8, 16…): equal
     priorities must stay FIFO through every rebuild. *)
  List.iter
    (fun n ->
      let c = Cal.create () in
      for i = 0 to n - 1 do Cal.push c 1.0 i done;
      let out = drain_cal c in
      let expected = List.init n (fun i -> (1.0, i)) in
      Alcotest.(check (list (pair (float 0.0) int)))
        (Printf.sprintf "calendar FIFO across resize at %d" n)
        expected out)
    [ 3; 4; 5; 8; 9; 16; 17; 1024 ]

let test_heap_grow_boundary_mixed () =
  (* Exactly at the doubling boundary, interleave two priority classes
     and verify the merged order; a grow-path swap bug shows up as a
     FIFO inversion inside a class. *)
  List.iter
    (fun n ->
      let h = Heap.create () and c = Cal.create () in
      for i = 0 to n - 1 do
        let p = if i land 1 = 0 then 2.0 else 1.0 in
        Heap.push h p i;
        Cal.push c p i
      done;
      let expected =
        List.init n (fun i -> i)
        |> List.filter (fun i -> i land 1 = 1)
        |> List.map (fun i -> (1.0, i))
      in
      let expected2 =
        List.init n (fun i -> i)
        |> List.filter (fun i -> i land 1 = 0)
        |> List.map (fun i -> (2.0, i))
      in
      let want = expected @ expected2 in
      Alcotest.(check (list (pair (float 0.0) int)))
        (Printf.sprintf "heap mixed classes at %d" n) want (drain_heap h);
      Alcotest.(check (list (pair (float 0.0) int)))
        (Printf.sprintf "calendar mixed classes at %d" n) want (drain_cal c))
    [ 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* Engine backend equivalence                                          *)
(* ------------------------------------------------------------------ *)

let test_engine_calendar_matches_heap () =
  let run queue =
    let e = Peel_sim.Engine.create ~queue () in
    let log = ref [] in
    let rng = Rng.create 7 in
    for i = 0 to 499 do
      let at = Rng.float rng 1.0 in
      Peel_sim.Engine.schedule e at (fun () ->
          log := (at, i) :: !log;
          if i land 3 = 0 then
            Peel_sim.Engine.schedule_in e 0.01 (fun () -> log := (-1.0, i) :: !log))
    done;
    Peel_sim.Engine.run e;
    List.rev !log
  in
  let a = run `Heap and b = run `Calendar in
  Alcotest.(check int) "same event count" (List.length a) (List.length b);
  Alcotest.(check bool) "same order" true (a = b)

(* ------------------------------------------------------------------ *)
(* Sharded engine vs sequential Runner                                 *)
(* ------------------------------------------------------------------ *)

let par_schemes =
  [ Scheme.Ring; Scheme.Btree; Scheme.Dbtree; Scheme.Optimal; Scheme.Peel ]

let specs_for fabric ~seed ~n ~scale ~bytes =
  Spec.poisson_broadcasts fabric (Rng.create seed) ~n ~scale ~bytes ~load:0.3 ()

let check_ccts_equal what expected got =
  Alcotest.(check int) (what ^ ": count") (List.length expected) (List.length got);
  List.iteri
    (fun i (a, b) ->
      if not (Float.equal a b) then
        Alcotest.failf "%s: cct %d differs: %.17g vs %.17g" what i a b)
    (List.combine expected got)

(* Order-insensitive comparisons (per-link busy sums) tolerate
   summation-order ulps. *)
let near a b =
  Float.equal a b
  || Float.abs (a -. b) <= 1e-12 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

(* Every cell here is tie-free (no two distinct (flow, chunk)
   reservations collide at exactly equal float timestamps on a shared
   link), so legacy and sharded schedules coincide bit for bit.  The
   one known tie cell of this sweep — leaf-spine with Btree — is pinned
   separately in [test_cross_flow_tie_divergence]. *)
let test_par_matches_sequential () =
  let cells =
    [
      ("ft-k4", Fabric.fat_tree ~k:4 ~hosts_per_tor:2 ~gpus_per_host:2 (), par_schemes);
      ("ft-k8", Fabric.fat_tree ~k:8 ~hosts_per_tor:4 (), par_schemes);
      ( "ls",
        Fabric.leaf_spine ~spines:4 ~leaves:8 ~hosts_per_leaf:4 (),
        [ Scheme.Ring; Scheme.Dbtree; Scheme.Optimal; Scheme.Peel ] );
    ]
  in
  List.iter
    (fun (fname, fabric, schemes) ->
      List.iter
        (fun scheme ->
          let specs = specs_for fabric ~seed:42 ~n:4 ~scale:8 ~bytes:8e6 in
          let seq = Runner.run fabric scheme specs in
          let par = Par.run ~jobs:1 fabric scheme specs in
          let what = fname ^ "/" ^ Scheme.to_string scheme in
          check_ccts_equal what seq.Runner.ccts (Array.to_list par.Shard.r_ccts);
          if not (Float.equal seq.Runner.makespan par.Shard.r_makespan) then
            Alcotest.failf "%s: makespan %.17g vs %.17g" what seq.Runner.makespan
              par.Shard.r_makespan)
        schemes)
    cells

(* The leaf-spine/Btree cell of the sweep above hits a cross-flow tie:
   two reservations from different collectives land on a shared link at
   exactly equal float times.  The legacy closure engine serializes the
   tie by dynamic insertion order (a history-dependent property no
   static key can reproduce); the sharded engine serializes by its
   static (flow, chunk, edge) key.  Both are valid FIFO schedules, so
   individual CCTs may legitimately differ — here by one chunk
   transmission time.  What must still hold: the sharded engine agrees
   with itself for every jobs count, single flows (which cannot
   cross-flow-tie) match the legacy engine exactly, and order-
   insensitive aggregates — per-link busy time — agree across engines
   because the multiset of (link, bytes) transfers is identical. *)
let test_cross_flow_tie_divergence () =
  let fabric = Fabric.leaf_spine ~spines:4 ~leaves:8 ~hosts_per_leaf:4 () in
  let specs = specs_for fabric ~seed:42 ~n:4 ~scale:8 ~bytes:8e6 in
  let seq = Runner.run fabric Scheme.Btree specs in
  let r1 = Par.run ~jobs:1 fabric Scheme.Btree specs in
  let r4 = Par.run ~jobs:4 fabric Scheme.Btree specs in
  check_ccts_equal "tie: jobs1 == jobs4"
    (Array.to_list r1.Shard.r_ccts)
    (Array.to_list r4.Shard.r_ccts);
  Alcotest.(check bool) "tie: fingerprint" true
    (r1.Shard.r_fingerprint = r4.Shard.r_fingerprint);
  (* Per-link busy: utilization * horizon on the legacy side. *)
  let reports = Peel_sim.Telemetry.reports seq.Runner.telemetry in
  Array.iteri
    (fun lid (rep : Peel_sim.Telemetry.link_report) ->
      let legacy_busy = rep.Peel_sim.Telemetry.utilization *. seq.Runner.makespan in
      if not (near legacy_busy r1.Shard.r_busy.(lid)) then
        Alcotest.failf "tie: link %d busy %.17g vs %.17g" lid legacy_busy
          r1.Shard.r_busy.(lid))
    reports;
  (* Single flows cannot cross-flow-tie: each must match legacy exactly. *)
  List.iter
    (fun (spec : Spec.collective) ->
      let one = [ spec ] in
      let s = Runner.run fabric Scheme.Btree one in
      let p = Par.run ~jobs:1 fabric Scheme.Btree one in
      check_ccts_equal
        (Printf.sprintf "tie: single flow %d" spec.id)
        s.Runner.ccts
        (Array.to_list p.Shard.r_ccts))
    specs

let test_par_jobs_bit_identical () =
  let fabric = Fabric.fat_tree ~k:8 ~hosts_per_tor:4 ~gpus_per_host:2 () in
  List.iter
    (fun scheme ->
      let specs = specs_for fabric ~seed:11 ~n:6 ~scale:16 ~bytes:16e6 in
      let r1 = Par.run ~jobs:1 fabric scheme specs in
      let r4 = Par.run ~jobs:4 fabric scheme specs in
      let what = Scheme.to_string scheme in
      check_ccts_equal what
        (Array.to_list r1.Shard.r_ccts)
        (Array.to_list r4.Shard.r_ccts);
      Alcotest.(check int)
        (what ^ ": events") r1.Shard.r_events r4.Shard.r_events;
      Alcotest.(check bool)
        (what ^ ": fingerprint") true
        (r1.Shard.r_fingerprint = r4.Shard.r_fingerprint);
      Alcotest.(check bool)
        (what ^ ": makespan") true
        (Float.equal r1.Shard.r_makespan r4.Shard.r_makespan);
      Alcotest.(check bool)
        (what ^ ": busy") true
        (Array.for_all2 Float.equal r1.Shard.r_busy r4.Shard.r_busy))
    par_schemes

let random_config seed =
  let rng = Rng.create seed in
  let fabric =
    match Rng.int rng 3 with
    | 0 -> Fabric.fat_tree ~k:4 ~hosts_per_tor:2 ~gpus_per_host:2 ()
    | 1 -> Fabric.fat_tree ~k:4 ~hosts_per_tor:4 ()
    | _ -> Fabric.leaf_spine ~spines:2 ~leaves:4 ~hosts_per_leaf:4 ()
  in
  let scheme = List.nth par_schemes (Rng.int rng 5) in
  let bytes = 1e5 +. Rng.float rng 3e7 in
  let n = 1 + Rng.int rng 4 in
  let chunks = 1 + Rng.int rng 8 in
  let scale = 2 + Rng.int rng 7 in
  (fabric, scheme, bytes, n, chunks, scale)

(* Differential sweep: 60 deterministically derived configurations.
   seq == par exactness holds except at cross-flow timestamp ties
   (see [test_cross_flow_tie_divergence]) — so this sweep is a fixed,
   verified-tie-free corpus rather than a QCheck property: unseeded
   randomness could legitimately land on a tie and fail without a bug
   being present.  jobs-1 == jobs-n stays bit-exact unconditionally. *)
let test_par_differential_sweep () =
  for seed = 0 to 59 do
    let fabric, scheme, bytes, n, chunks, scale = random_config (1000 + seed) in
    let jobs = 2 + (seed mod 5) in
    let specs = specs_for fabric ~seed:(seed + 1) ~n ~scale ~bytes in
    let seq = Runner.run ~chunks fabric scheme specs in
    let r1 = Par.run ~chunks ~jobs:1 fabric scheme specs in
    let rn = Par.run ~chunks ~jobs fabric scheme specs in
    let what = Printf.sprintf "sweep %d (%s)" seed (Scheme.to_string scheme) in
    check_ccts_equal (what ^ ": seq == par") seq.Runner.ccts
      (Array.to_list r1.Shard.r_ccts);
    check_ccts_equal
      (what ^ ": jobs1 == jobsN")
      (Array.to_list r1.Shard.r_ccts)
      (Array.to_list rn.Shard.r_ccts);
    if r1.Shard.r_fingerprint <> rn.Shard.r_fingerprint then
      Alcotest.failf "%s: fingerprint" what;
    if not (Float.equal r1.Shard.r_makespan rn.Shard.r_makespan) then
      Alcotest.failf "%s: makespan" what;
    if not (Float.equal seq.Runner.makespan r1.Shard.r_makespan) then
      Alcotest.failf "%s: seq makespan" what;
    if not (Array.for_all2 Float.equal r1.Shard.r_busy rn.Shard.r_busy) then
      Alcotest.failf "%s: busy" what
  done

(* ------------------------------------------------------------------ *)
(* SIM008: shard-boundary causality audit                              *)
(* ------------------------------------------------------------------ *)

module D = Peel_check.Diagnostic

(* A live multi-shard run with audits on must lint clean. *)
let test_sim008_clean_run () =
  let fabric = Fabric.fat_tree ~k:8 ~hosts_per_tor:4 ~gpus_per_host:2 () in
  let specs = specs_for fabric ~seed:11 ~n:6 ~scale:16 ~bytes:16e6 in
  List.iter
    (fun scheme ->
      let r = Par.run ~audit:true ~jobs:4 fabric scheme specs in
      Alcotest.(check bool)
        (Scheme.to_string scheme ^ ": audit present") true
        (Array.length r.Shard.r_audit > 0);
      let ds = Peel_check.Check_sim.check_shard r in
      if ds <> [] then
        Alcotest.failf "%s: %s" (Scheme.to_string scheme)
          (String.concat "; " (List.map D.to_string ds)))
    par_schemes

(* Each causality violation, injected into an otherwise-consistent
   audit, must be diagnosed as SIM008. *)
let test_sim008_detects_violations () =
  let base = Par.run ~audit:true ~jobs:4
    (Fabric.fat_tree ~k:8 ~hosts_per_tor:4 ~gpus_per_host:2 ())
    Scheme.Btree
    (specs_for
       (Fabric.fat_tree ~k:8 ~hosts_per_tor:4 ~gpus_per_host:2 ())
       ~seed:11 ~n:6 ~scale:16 ~bytes:16e6)
  in
  Alcotest.(check bool) "base is clean" true
    (Peel_check.Check_sim.check_shard base = []);
  let corrupt name f =
    let audit = Array.map (fun a -> a) base.Shard.r_audit in
    let r = f { base with Shard.r_audit = audit } in
    let ds = Peel_check.Check_sim.check_shard r in
    Alcotest.(check bool) (name ^ ": flagged as SIM008") true
      (D.has_code "SIM008" ds)
  in
  (* An event executed at (or past) its window bound. *)
  corrupt "max_exec >= bound" (fun r ->
      let a = r.Shard.r_audit.(0) in
      r.Shard.r_audit.(0) <- { a with Shard.a_max_exec = a.Shard.a_bound };
      r);
  (* A cross-shard event arriving before the bound it was promised
     not to precede. *)
  corrupt "min_in < bound" (fun r ->
      let a = r.Shard.r_audit.(0) in
      r.Shard.r_audit.(0) <-
        { a with Shard.a_min_in = a.Shard.a_bound -. 1e-9 };
      r);
  (* A shard skipping a window ordinal. *)
  corrupt "window gap" (fun r ->
      let a = r.Shard.r_audit.(0) in
      r.Shard.r_audit.(0) <- { a with Shard.a_window = a.Shard.a_window + 1 };
      r);
  (* A window bound that fails to advance. *)
  corrupt "stuck bound" (fun r ->
      let per_shard = Hashtbl.create 8 in
      Array.iteri
        (fun i (a : Shard.audit_record) ->
          match Hashtbl.find_opt per_shard a.Shard.a_shard with
          | None -> Hashtbl.add per_shard a.Shard.a_shard i
          | Some first when i > first && Float.is_finite a.Shard.a_bound ->
              let b = r.Shard.r_audit.(first).Shard.a_bound in
              if Float.is_finite b then
                r.Shard.r_audit.(i) <- { a with Shard.a_bound = b }
          | Some _ -> ())
        r.Shard.r_audit;
      r);
  (* A dropped record desynchronizes the barrier-epoch counts. *)
  corrupt "unequal epochs" (fun r ->
      {
        r with
        Shard.r_audit =
          Array.sub r.Shard.r_audit 0 (Array.length r.Shard.r_audit - 1);
      });
  (* Events that no audited window accounts for. *)
  corrupt "event conservation" (fun r ->
      { r with Shard.r_events = r.Shard.r_events + 1 });
  (* An empty audit is vacuously clean (audits off). *)
  Alcotest.(check bool) "empty audit passes" true
    (Peel_check.Check_sim.check_shard { base with Shard.r_audit = [||] } = [])

(* The universal property — sharded execution is bit-identical for
   every jobs count — holds for ALL inputs (ties included), so it is
   safe under QCheck's own randomness. *)
let qcheck_par_jobs_invariant =
  QCheck.Test.make ~count:40 ~name:"sharded jobs-1 == jobs-n (random)"
    QCheck.(pair (int_range 0 100000) (int_range 2 6))
    (fun (seed, jobs) ->
      let fabric, scheme, bytes, n, chunks, scale = random_config seed in
      let specs = specs_for fabric ~seed:(seed + 1) ~n ~scale ~bytes in
      let r1 = Par.run ~chunks ~jobs:1 fabric scheme specs in
      let rn = Par.run ~chunks ~jobs fabric scheme specs in
      List.for_all2 Float.equal
        (Array.to_list r1.Shard.r_ccts)
        (Array.to_list rn.Shard.r_ccts)
      && r1.Shard.r_fingerprint = rn.Shard.r_fingerprint
      && Float.equal r1.Shard.r_makespan rn.Shard.r_makespan
      && Array.for_all2 Float.equal r1.Shard.r_busy rn.Shard.r_busy)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "parsim"
    [
      ( "calendar_queue",
        [
          Alcotest.test_case "basic order" `Quick test_calqueue_basic;
          Alcotest.test_case "fifo ties" `Quick test_calqueue_fifo_ties;
          Alcotest.test_case "reinsert below min" `Quick test_calqueue_reinsert_below_min;
          Alcotest.test_case "clear" `Quick test_calqueue_clear;
          qt qcheck_cal_vs_heap;
        ] );
      ( "grow_boundary",
        [
          Alcotest.test_case "heap equal-prio FIFO" `Quick test_heap_grow_boundary_fifo;
          Alcotest.test_case "calendar equal-prio FIFO" `Quick test_calqueue_grow_boundary_fifo;
          Alcotest.test_case "mixed classes at boundary" `Quick test_heap_grow_boundary_mixed;
        ] );
      ( "engine_backend",
        [ Alcotest.test_case "calendar == heap" `Quick test_engine_calendar_matches_heap ] );
      ( "sharded",
        [
          Alcotest.test_case "par == sequential (fixed)" `Quick test_par_matches_sequential;
          Alcotest.test_case "cross-flow tie divergence" `Quick test_cross_flow_tie_divergence;
          Alcotest.test_case "jobs-1 == jobs-4" `Quick test_par_jobs_bit_identical;
          Alcotest.test_case "differential sweep" `Quick test_par_differential_sweep;
          qt qcheck_par_jobs_invariant;
        ] );
      ( "sim008",
        [
          Alcotest.test_case "clean run lints clean" `Quick test_sim008_clean_run;
          Alcotest.test_case "violations diagnosed" `Quick
            test_sim008_detects_violations;
        ] );
    ]
