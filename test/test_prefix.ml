(* Tests for peel_prefix: power-of-two cover sets (paper §3.2), wire
   header encoding, static TCAM rule tables, and state accounting. *)

open Peel_prefix
module Rng = Peel_util.Rng

let prefix value len = { Cover.value; len }

(* ------------------------------------------------------------------ *)
(* Cover: basics                                                       *)
(* ------------------------------------------------------------------ *)

let test_block_size () =
  Alcotest.(check int) "whole pod" 8 (Cover.block_size ~m:3 (prefix 0 0));
  Alcotest.(check int) "half" 4 (Cover.block_size ~m:3 (prefix 1 1));
  Alcotest.(check int) "single" 1 (Cover.block_size ~m:3 (prefix 5 3))

let test_covers () =
  (* 1** covers 4..7 in a 3-bit space. *)
  let p = prefix 1 1 in
  List.iter
    (fun id ->
      Alcotest.(check bool) (Printf.sprintf "1** covers %d" id) (id >= 4)
        (Cover.covers ~m:3 p id))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let test_expand () =
  Alcotest.(check (list int)) "01*" [ 2; 3 ] (Cover.expand ~m:3 (prefix 1 2));
  Alcotest.(check (list int)) "whole" [ 0; 1; 2; 3 ] (Cover.expand ~m:2 (prefix 0 0))

let test_to_string () =
  Alcotest.(check string) "1**" "1**" (Cover.to_string ~m:3 (prefix 1 1));
  Alcotest.(check string) "01*" "01*" (Cover.to_string ~m:3 (prefix 1 2));
  Alcotest.(check string) "101" "101" (Cover.to_string ~m:3 (prefix 5 3));
  Alcotest.(check string) "***" "***" (Cover.to_string ~m:3 (prefix 0 0))

let test_validate_rejects () =
  Alcotest.(check bool) "len too long" true
    (try Cover.validate ~m:3 (prefix 0 4); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "value too big" true
    (try Cover.validate ~m:3 (prefix 2 1); false with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Cover: exact decomposition                                          *)
(* ------------------------------------------------------------------ *)

let test_exact_cover_paper_example () =
  (* Paper §3.2: ToRs 010,011,100,101,110,111 in an 8-ary pod ->
     prefixes 1** and 01*. *)
  let cover = Cover.exact_cover ~m:3 [ 2; 3; 4; 5; 6; 7 ] in
  let rendered = List.map (Cover.to_string ~m:3) cover in
  Alcotest.(check (list string)) "paper cover" [ "01*"; "1**" ] rendered

let test_exact_cover_everything () =
  Alcotest.(check (list string)) "all tors = 1 prefix" [ "***" ]
    (List.map (Cover.to_string ~m:3) (Cover.exact_cover ~m:3 [ 0; 1; 2; 3; 4; 5; 6; 7 ]))

let test_exact_cover_empty () =
  Alcotest.(check int) "empty" 0 (List.length (Cover.exact_cover ~m:3 []))

let test_exact_cover_singleton () =
  Alcotest.(check (list string)) "single tor" [ "101" ]
    (List.map (Cover.to_string ~m:3) (Cover.exact_cover ~m:3 [ 5 ]))

let test_exact_cover_worst_case_fragmentation () =
  (* Alternating ids defeat aggregation completely: every other ToR. *)
  let targets = [ 0; 2; 4; 6 ] in
  let cover = Cover.exact_cover ~m:3 targets in
  Alcotest.(check int) "4 prefixes" 4 (List.length cover);
  Alcotest.(check bool) "exact" true
    (Cover.covered_set ~m:3 cover = List.sort compare targets)

let test_exact_cover_duplicates_ignored () =
  Alcotest.(check (list string)) "dups" [ "01*" ]
    (List.map (Cover.to_string ~m:3) (Cover.exact_cover ~m:3 [ 2; 3; 3; 2 ]))

let prop_exact_cover_exact =
  QCheck.Test.make ~name:"exact_cover covers targets exactly" ~count:200
    QCheck.(pair (int_range 1 6) (list small_nat))
    (fun (m, raw) ->
      let size = 1 lsl m in
      let targets = List.sort_uniq compare (List.map (fun x -> x mod size) raw) in
      let cover = Cover.exact_cover ~m targets in
      Cover.covered_set ~m cover = targets
      && Cover.over_coverage ~m cover ~targets = 0)

let prop_exact_cover_disjoint =
  QCheck.Test.make ~name:"exact_cover blocks are disjoint" ~count:200
    QCheck.(pair (int_range 1 6) (list small_nat))
    (fun (m, raw) ->
      let size = 1 lsl m in
      let targets = List.sort_uniq compare (List.map (fun x -> x mod size) raw) in
      let cover = Cover.exact_cover ~m targets in
      let all = List.concat_map (Cover.expand ~m) cover in
      List.length all = List.length (List.sort_uniq compare all))

let prop_exact_cover_minimal_vs_merging =
  (* Canonical decomposition is minimal among exact covers: no two
     blocks in the result can be merged into a bigger aligned block. *)
  QCheck.Test.make ~name:"exact_cover has no mergeable siblings" ~count:200
    QCheck.(pair (int_range 1 6) (list small_nat))
    (fun (m, raw) ->
      let size = 1 lsl m in
      let targets = List.sort_uniq compare (List.map (fun x -> x mod size) raw) in
      let cover = Cover.exact_cover ~m targets in
      List.for_all
        (fun p ->
          p.Cover.len = 0
          || not
               (List.exists
                  (fun q ->
                    q.Cover.len = p.Cover.len
                    && q.Cover.value = p.Cover.value lxor 1
                    && q.Cover.value / 2 = p.Cover.value / 2)
                  cover))
        cover)

(* Property-style sweep driven by the repo's own seeded PRNG: for
   random target sets, the exact cover must be disjoint, exact (covers
   the targets and nothing else) and minimal.  Minimality is checked
   against a brute-force search over every prefix subset at small m,
   and against the no-mergeable-siblings criterion at larger m. *)
let test_exact_cover_random_sweep () =
  let rng = Rng.create 2025 in
  for trial = 1 to 200 do
    let m = Rng.int_in rng 1 6 in
    let size = 1 lsl m in
    let k = Rng.int_in rng 0 size in
    let targets = Rng.sample_without_replacement rng size k in
    let cover = Cover.exact_cover ~m targets in
    let name fmt = Printf.sprintf ("trial %d (m=%d): " ^^ fmt) trial m in
    (* Exact: the union of blocks is the target set, no over-coverage. *)
    Alcotest.(check (list int)) (name "exact") targets (Cover.covered_set ~m cover);
    Alcotest.(check int)
      (name "no over-coverage")
      0
      (Cover.over_coverage ~m cover ~targets);
    (* Disjoint: expanding the blocks yields no duplicate identifier. *)
    let all = List.concat_map (Cover.expand ~m) cover in
    Alcotest.(check int)
      (name "disjoint")
      (List.length all)
      (List.length (List.sort_uniq compare all));
    (* Minimal: no two sibling blocks could merge into the parent. *)
    List.iter
      (fun p ->
        if p.Cover.len > 0 then
          Alcotest.(check bool)
            (name "no mergeable siblings")
            false
            (List.mem { Cover.value = p.Cover.value lxor 1; len = p.Cover.len } cover))
      cover;
    (* Minimal, independently: brute force at small m. *)
    if m <= 3 && targets <> [] then begin
      let all_prefixes =
        List.concat
          (List.init (m + 1) (fun len ->
               List.init (1 lsl len) (fun value -> { Cover.value; len })))
      in
      let arr = Array.of_list all_prefixes in
      let np = Array.length arr in
      let best = ref max_int in
      for mask = 1 to (1 lsl np) - 1 do
        let subset = ref [] in
        for i = 0 to np - 1 do
          if mask land (1 lsl i) <> 0 then subset := arr.(i) :: !subset
        done;
        if
          Cover.is_cover ~m !subset ~targets
          && Cover.over_coverage ~m !subset ~targets = 0
        then best := min !best (List.length !subset)
      done;
      Alcotest.(check int) (name "minimal (brute force)") !best (List.length cover)
    end
  done

(* ------------------------------------------------------------------ *)
(* Cover: budgeted decomposition                                       *)
(* ------------------------------------------------------------------ *)

let test_budgeted_equals_exact_when_budget_ample () =
  let targets = [ 0; 2; 4; 6 ] in
  let exact = Cover.exact_cover ~m:3 targets in
  let budgeted = Cover.budgeted_cover ~m:3 ~budget:8 targets in
  Alcotest.(check int) "same overcoverage" 0
    (Cover.over_coverage ~m:3 budgeted ~targets);
  Alcotest.(check int) "same count" (List.length exact) (List.length budgeted)

let test_budgeted_tight_budget_overcovers () =
  (* 4 scattered targets, budget 1: must take the whole pod. *)
  let targets = [ 0; 2; 4; 6 ] in
  let cover = Cover.budgeted_cover ~m:3 ~budget:1 targets in
  Alcotest.(check int) "one prefix" 1 (List.length cover);
  Alcotest.(check bool) "covers" true (Cover.is_cover ~m:3 cover ~targets);
  Alcotest.(check int) "overcovers 4" 4 (Cover.over_coverage ~m:3 cover ~targets)

let test_budgeted_intermediate () =
  (* Targets 0,1,2,7: exact needs 01*? no: exact = {00*, 010? ...}
     targets 0,1,2,7 -> exact {00*, 010, 111} = 3 prefixes.  Budget 2
     should pick e.g. {0**, 111} with 1 over-covered id (3). *)
  let targets = [ 0; 1; 2; 7 ] in
  Alcotest.(check int) "exact is 3" 3 (List.length (Cover.exact_cover ~m:3 targets));
  let cover = Cover.budgeted_cover ~m:3 ~budget:2 targets in
  Alcotest.(check int) "two prefixes" 2 (List.length cover);
  Alcotest.(check bool) "covers" true (Cover.is_cover ~m:3 cover ~targets);
  Alcotest.(check int) "overcovers exactly 1" 1
    (Cover.over_coverage ~m:3 cover ~targets)

let test_budgeted_empty_targets () =
  Alcotest.(check int) "empty" 0
    (List.length (Cover.budgeted_cover ~m:3 ~budget:2 []))

let test_budgeted_invalid_budget () =
  Alcotest.(check bool) "raises" true
    (try ignore (Cover.budgeted_cover ~m:3 ~budget:0 [ 1 ]); false
     with Invalid_argument _ -> true)

let prop_budgeted_always_covers =
  QCheck.Test.make ~name:"budgeted_cover covers within budget" ~count:200
    QCheck.(triple (int_range 1 5) (int_range 1 6) (list small_nat))
    (fun (m, budget, raw) ->
      let size = 1 lsl m in
      let targets = List.sort_uniq compare (List.map (fun x -> x mod size) raw) in
      let cover = Cover.budgeted_cover ~m ~budget targets in
      List.length cover <= budget && Cover.is_cover ~m cover ~targets)

(* Property: the budgeted-cover DP is actually optimal — cross-check
   against brute force over every subset of the prefix space for small
   m (15 prefixes at m=3 -> 32767 candidate covers). *)
let prop_budgeted_matches_bruteforce =
  QCheck.Test.make ~name:"budgeted_cover matches brute force" ~count:60
    QCheck.(triple (int_range 1 3) (int_range 1 4) (list small_nat))
    (fun (m, budget, raw) ->
      let size = 1 lsl m in
      let targets = List.sort_uniq compare (List.map (fun x -> x mod size) raw) in
      if targets = [] then true
      else begin
        let all_prefixes =
          List.concat
            (List.init (m + 1) (fun len ->
                 List.init (1 lsl len) (fun value -> { Cover.value; len })))
        in
        let arr = Array.of_list all_prefixes in
        let np = Array.length arr in
        (* Brute force: best (over-coverage, count) among subsets of
           size <= budget that cover the targets. *)
        let best = ref None in
        for mask = 1 to (1 lsl np) - 1 do
          let subset = ref [] in
          for i = 0 to np - 1 do
            if mask land (1 lsl i) <> 0 then subset := arr.(i) :: !subset
          done;
          let cnt = List.length !subset in
          if cnt <= budget && Cover.is_cover ~m !subset ~targets then begin
            let oc = Cover.over_coverage ~m !subset ~targets in
            match !best with
            | Some (boc, bcnt) when (boc, bcnt) <= (oc, cnt) -> ()
            | _ -> best := Some (oc, cnt)
          end
        done;
        let dp = Cover.budgeted_cover ~m ~budget targets in
        let dp_score =
          (Cover.over_coverage ~m dp ~targets, List.length dp)
        in
        match !best with
        | None -> false (* budget >= 1 always admits the whole space *)
        | Some b -> dp_score = b
      end)

let prop_budgeted_monotone_in_budget =
  QCheck.Test.make ~name:"budgeted_cover overcoverage non-increasing in budget"
    ~count:100
    QCheck.(pair (int_range 1 5) (list small_nat))
    (fun (m, raw) ->
      let size = 1 lsl m in
      let targets = List.sort_uniq compare (List.map (fun x -> x mod size) raw) in
      let oc b = Cover.over_coverage ~m (Cover.budgeted_cover ~m ~budget:b targets) ~targets in
      let rec check prev b =
        if b > 5 then true
        else begin
          let cur = oc b in
          cur <= prev && check cur (b + 1)
        end
      in
      check (oc 1) 2)

(* ------------------------------------------------------------------ *)
(* Header                                                              *)
(* ------------------------------------------------------------------ *)

let test_header_bits_formula () =
  (* k=8: m = 2, len bits = ceil(log2 3) = 2 -> 4 bits. *)
  Alcotest.(check int) "k=8" 4 (Header.header_bits ~k:8);
  (* k=64: m = 5, len bits = ceil(log2 6) = 3 -> 8 bits = 1 byte. *)
  Alcotest.(check int) "k=64" 8 (Header.header_bits ~k:64);
  (* k=128: m = 6, len bits = 3 -> 9 bits; still well under 8 bytes. *)
  Alcotest.(check int) "k=128" 9 (Header.header_bits ~k:128);
  Alcotest.(check bool) "k=128 under 8 B" true (Header.header_bytes ~k:128 < 8)

let test_header_bytes () =
  Alcotest.(check int) "k=8 -> 1 byte" 1 (Header.header_bytes ~k:8);
  Alcotest.(check int) "k=128 -> 2 bytes" 2 (Header.header_bytes ~k:128)

let test_header_roundtrip_examples () =
  List.iter
    (fun (m, p) ->
      let enc = Header.encode ~m p in
      let dec = Header.decode ~m enc.Header.raw in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip m=%d %s" m (Cover.to_string ~m p))
        true (dec = p))
    [ (3, prefix 1 1); (3, prefix 1 2); (3, prefix 5 3); (3, prefix 0 0); (5, prefix 17 5) ]

let test_header_decode_rejects_garbage () =
  (* len=1 but padding bits set below the prefix. *)
  let bad = (1 lsl 3) lor 0b011 in
  Alcotest.(check bool) "padding rejected" true
    (try ignore (Header.decode ~m:3 bad); false with Invalid_argument _ -> true);
  let too_long = 7 lsl 3 in
  Alcotest.(check bool) "len > m rejected" true
    (try ignore (Header.decode ~m:3 too_long); false with Invalid_argument _ -> true)

let test_header_invalid_k () =
  Alcotest.(check bool) "k=6 not power-of-two pod" true
    (try ignore (Header.id_bits ~k:6); false with Invalid_argument _ -> true)

let prop_header_roundtrip =
  QCheck.Test.make ~name:"header encode/decode roundtrip" ~count:500
    QCheck.(triple (int_range 1 6) small_nat small_nat)
    (fun (m, lraw, vraw) ->
      let len = lraw mod (m + 1) in
      let value = vraw mod (1 lsl len) in
      let p = prefix value len in
      Header.decode ~m (Header.encode ~m p).Header.raw = p)

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

let test_static_table_size () =
  (* m=2 (k=8): 1+2+4 = 7 = k-1 rules. *)
  Alcotest.(check int) "m=2" 7 (Rules.size (Rules.static_table ~m:2));
  (* m=5 (k=64): 63 rules — the paper's headline number. *)
  Alcotest.(check int) "m=5 (64-ary: 63 rules)" 63 (Rules.size (Rules.static_table ~m:5));
  (* m=6 (k=128): 127 rules. *)
  Alcotest.(check int) "m=6" 127 (Rules.size (Rules.static_table ~m:6))

let test_rule_lookup_ports () =
  let t = Rules.static_table ~m:3 in
  let r = Rules.lookup t (prefix 1 1) in
  Alcotest.(check (list int)) "1** -> upper half" [ 4; 5; 6; 7 ] r.Rules.ports;
  let r0 = Rules.lookup t (prefix 0 0) in
  Alcotest.(check int) "*** -> all" 8 (List.length r0.Rules.ports)

let test_rule_lookup_missing () =
  let t = Rules.static_table ~m:2 in
  (* An out-of-space prefix raises a descriptive Invalid_argument that
     names the offending prefix and the table width — not a bare
     Not_found the caller cannot act on. *)
  Alcotest.(check bool) "invalid_arg names the prefix" true
    (try
       ignore (Rules.lookup t (prefix 0 3));
       false
     with Invalid_argument msg ->
       let has needle =
         let nl = String.length needle and ml = String.length msg in
         let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
         go 0
       in
       has "len=3" && has "2-bit");
  Alcotest.(check bool) "lookup_opt total" true
    (Rules.lookup_opt t (prefix 0 3) = None
    && Rules.lookup_opt t (prefix 1 1) <> None)

let test_match_ports_end_to_end () =
  (* Sender encodes 01*; switch decodes and replicates to ToRs 2,3. *)
  let m = 3 in
  let t = Rules.static_table ~m in
  let hdr = Header.encode ~m (prefix 1 2) in
  Alcotest.(check (list int)) "ports" [ 2; 3 ] (Rules.match_ports t hdr ~m)

let test_state_accounting_headline () =
  (* Paper §1: 64-ary fat-tree needs 63 entries instead of over 4e9. *)
  Alcotest.(check int) "peel entries" 63 (Rules.peel_entries ~k:64);
  Alcotest.(check bool) "naive over 4e9" true (Rules.naive_ipmc_entries ~k:64 > 4e9);
  Alcotest.(check bool) "reduction over 6e7" true
    (Rules.state_reduction_factor ~k:64 > 6e7)

let test_state_k128 () =
  Alcotest.(check int) "127 rules at k=128" 127 (Rules.peel_entries ~k:128);
  Alcotest.(check bool) "naive astronomically large" true
    (Rules.naive_ipmc_entries ~k:128 > 1e19)

let prop_rules_cover_every_subset_via_exact_cover =
  (* Any destination ToR subset is expressible: the exact cover's
     prefixes all hit installed rules whose ports reassemble exactly
     the subset. *)
  QCheck.Test.make ~name:"static rules realize every subset" ~count:200
    QCheck.(pair (int_range 1 5) (list small_nat))
    (fun (m, raw) ->
      let size = 1 lsl m in
      let targets = List.sort_uniq compare (List.map (fun x -> x mod size) raw) in
      let table = Rules.static_table ~m in
      let cover = Cover.exact_cover ~m targets in
      let delivered =
        List.concat_map (fun p -> (Rules.lookup table p).Rules.ports) cover
        |> List.sort_uniq compare
      in
      delivered = targets)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "peel_prefix"
    [
      ( "cover_basics",
        [
          Alcotest.test_case "block_size" `Quick test_block_size;
          Alcotest.test_case "covers" `Quick test_covers;
          Alcotest.test_case "expand" `Quick test_expand;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "validate rejects" `Quick test_validate_rejects;
        ] );
      ( "exact_cover",
        [
          Alcotest.test_case "paper example (010..111)" `Quick test_exact_cover_paper_example;
          Alcotest.test_case "whole pod" `Quick test_exact_cover_everything;
          Alcotest.test_case "empty" `Quick test_exact_cover_empty;
          Alcotest.test_case "singleton" `Quick test_exact_cover_singleton;
          Alcotest.test_case "worst-case fragmentation" `Quick
            test_exact_cover_worst_case_fragmentation;
          Alcotest.test_case "duplicates" `Quick test_exact_cover_duplicates_ignored;
          Alcotest.test_case "random sweep (seeded Rng)" `Quick
            test_exact_cover_random_sweep;
          qt prop_exact_cover_exact;
          qt prop_exact_cover_disjoint;
          qt prop_exact_cover_minimal_vs_merging;
        ] );
      ( "budgeted_cover",
        [
          Alcotest.test_case "ample budget = exact" `Quick
            test_budgeted_equals_exact_when_budget_ample;
          Alcotest.test_case "budget 1 over-covers" `Quick
            test_budgeted_tight_budget_overcovers;
          Alcotest.test_case "intermediate budget" `Quick test_budgeted_intermediate;
          Alcotest.test_case "empty targets" `Quick test_budgeted_empty_targets;
          Alcotest.test_case "invalid budget" `Quick test_budgeted_invalid_budget;
          qt prop_budgeted_always_covers;
          qt prop_budgeted_matches_bruteforce;
          qt prop_budgeted_monotone_in_budget;
        ] );
      ( "header",
        [
          Alcotest.test_case "bits formula" `Quick test_header_bits_formula;
          Alcotest.test_case "bytes" `Quick test_header_bytes;
          Alcotest.test_case "roundtrip examples" `Quick test_header_roundtrip_examples;
          Alcotest.test_case "decode rejects garbage" `Quick test_header_decode_rejects_garbage;
          Alcotest.test_case "invalid k" `Quick test_header_invalid_k;
          qt prop_header_roundtrip;
        ] );
      ( "rules",
        [
          Alcotest.test_case "table size k-1" `Quick test_static_table_size;
          Alcotest.test_case "lookup ports" `Quick test_rule_lookup_ports;
          Alcotest.test_case "lookup missing" `Quick test_rule_lookup_missing;
          Alcotest.test_case "match end-to-end" `Quick test_match_ports_end_to_end;
          Alcotest.test_case "headline state numbers" `Quick test_state_accounting_headline;
          Alcotest.test_case "k=128 state" `Quick test_state_k128;
          qt prop_rules_cover_every_subset_via_exact_cover;
        ] );
    ]
